// Cross-module integration tests: the full pipeline — target system,
// generated watchdog, fault injection, alarm, capsule capture, recovery —
// wired together the way a deployment would run it.
package gowatchdog

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gowatchdog/internal/capsule"
	"gowatchdog/internal/coord"
	"gowatchdog/internal/dfs"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/kvs"
	"gowatchdog/internal/recovery"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

// TestIntegrationKVSFullLoop drives kvs end to end: client traffic over
// TCP, replication to a live replica, a scheduled watchdog, an injected
// gray failure, alarm -> capsule -> recovery -> verified healthy again.
func TestIntegrationKVSFullLoop(t *testing.T) {
	dir := t.TempDir()
	factory := watchdog.NewFactory()

	// Replica.
	replicaStore, err := kvs.Open(kvs.Config{Dir: filepath.Join(dir, "replica")})
	if err != nil {
		t.Fatal(err)
	}
	defer replicaStore.Close()
	rs, err := kvs.ServeReplica("127.0.0.1:0", replicaStore)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	// Primary with watchdog, capsule recorder and recovery manager.
	store, err := kvs.Open(kvs.Config{
		Dir:                 filepath.Join(dir, "primary"),
		ReplicaAddr:         rs.Addr(),
		FlushThresholdBytes: 1 << 30,
		WatchdogFactory:     factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	store.Start()
	srv, err := kvs.Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	shadow, err := wdio.NewFS(filepath.Join(dir, "shadow"), 0)
	if err != nil {
		t.Fatal(err)
	}
	driver := watchdog.New(
		watchdog.WithFactory(factory),
		watchdog.WithInterval(25*time.Millisecond),
		watchdog.WithTimeout(250*time.Millisecond),
	)
	store.InstallWatchdog(driver, shadow)

	rec, err := capsule.NewRecorder(filepath.Join(dir, "capsules"))
	if err != nil {
		t.Fatal(err)
	}
	var recMu sync.Mutex
	driver.OnReport(func(rep watchdog.Report) {
		recMu.Lock()
		rec.OnReport(rep)
		recMu.Unlock()
	})

	mgr := recovery.New()
	mgr.Register(recovery.ForSiteOp("quarantine", "sstable.VerifyChecksum",
		func(watchdog.Report) error {
			for i := 0; i < store.Partitions(); i++ {
				if _, err := store.RepairPartition(i); err != nil {
					return err
				}
			}
			return nil
		}))
	driver.OnAlarm(mgr.HandleAlarm)
	driver.Start()
	defer driver.Stop()

	// Client workload over the real TCP protocol.
	client, err := kvs.Dial(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 100; i++ {
		if err := client.Set(fmt.Sprintf("it/key%03d", i), fmt.Sprintf("value-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	store.FlushAll(true)
	for i := 0; i < 100; i += 7 {
		v, err := client.Get(fmt.Sprintf("it/key%03d", i))
		if err != nil || v != fmt.Sprintf("value-%d", i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, err)
		}
	}
	// Replication converged.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok, _ := replicaStore.Get([]byte("it/key099")); ok && string(v) == "value-99" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replication never converged")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The scheduled watchdog has been running healthy.
	time.Sleep(100 * time.Millisecond)
	if !driver.Healthy() {
		t.Fatalf("driver unhealthy on healthy system: %v", lastAbnormal(driver))
	}

	// Inject silent corruption into whichever partition holds "it/" keys.
	var corrupted string
	for i := 0; i < store.Partitions(); i++ {
		if paths := store.TablePaths(i); len(paths) > 0 {
			data, err := os.ReadFile(paths[0])
			if err != nil {
				t.Fatal(err)
			}
			data[9] ^= 0x20
			os.WriteFile(paths[0], data, 0o644)
			corrupted = paths[0]
			break
		}
	}
	if corrupted == "" {
		t.Fatal("no table to corrupt")
	}

	// The scheduled watchdog detects; recovery quarantines; health returns.
	deadline = time.Now().Add(10 * time.Second)
	for {
		evs := mgr.Events()
		if len(evs) > 0 && evs[0].Kind == recovery.EventRecovered {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery never ran; driver history: %v", lastAbnormal(driver))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := os.Stat(corrupted + ".corrupt"); err != nil {
		t.Fatalf("corrupt table not quarantined: %v", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for !driver.Healthy() {
		if time.Now().After(deadline) {
			t.Fatalf("driver never recovered: %v", lastAbnormal(driver))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A capsule was cut for the corruption report and replays meaningfully.
	recMu.Lock()
	captured := rec.Captured()
	recMu.Unlock()
	if captured == 0 {
		t.Fatal("no capsule captured")
	}
	entries, err := os.ReadDir(filepath.Join(dir, "capsules"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("capsule files: %v, %v", entries, err)
	}
	var found bool
	for _, e := range entries {
		c, err := capsule.ReadFile(filepath.Join(dir, "capsules", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(c.Site.Op, "VerifyChecksum") {
			found = true
		}
	}
	if !found {
		t.Fatal("no capsule pinpoints the checksum site")
	}

	// Client data covered by healthy state still readable after repair (the
	// memtable was flushed into the quarantined table, so re-set a key and
	// confirm the store still serves).
	if err := client.Set("post/repair", "ok"); err != nil {
		t.Fatal(err)
	}
	if v, err := client.Get("post/repair"); err != nil || v != "ok" {
		t.Fatalf("post-repair Get = %q, %v", v, err)
	}
}

// TestIntegrationCoordAndDFSWatchdogsCoexist runs coord and dfs watchdogs
// in one process against simultaneous faults in both systems, verifying
// independent detection with correct pinpoints.
func TestIntegrationCoordAndDFSWatchdogsCoexist(t *testing.T) {
	dir := t.TempDir()

	// coord leader + follower.
	follower, err := coord.NewFollower("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	coordFactory := watchdog.NewFactory()
	leader := coord.NewLeader(coord.LeaderConfig{
		FollowerAddr:    follower.Addr(),
		WatchdogFactory: coordFactory,
	})
	leader.Start()
	defer leader.Close()

	// dfs DataNode (its own factory/driver — one watchdog per system).
	dfsStore, dfsDriver := newDFSWithWatchdog(t, dir)

	coordShadow, err := wdio.NewFS(filepath.Join(dir, "coord-shadow"), 0)
	if err != nil {
		t.Fatal(err)
	}
	coordDriver := watchdog.New(
		watchdog.WithFactory(coordFactory),
		watchdog.WithTimeout(200*time.Millisecond),
	)
	leader.InstallWatchdog(coordDriver, coordShadow)

	// Healthy traffic on both systems.
	if err := leader.SubmitWait(coord.OpCreate, "/it", []byte("x"), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := dfsStore.WriteBlock([]byte("block")); err != nil {
		t.Fatal(err)
	}

	// Simultaneous faults: coord network hang + dfs volume errors.
	leader.Injector().Arm(coord.FaultSyncSend, faultinject.Fault{Kind: faultinject.Hang})
	defer leader.Injector().Clear()
	dfsStore.Injector().Arm("dfs.volume.write.0", faultinject.Fault{Kind: faultinject.Error})
	defer dfsStore.Injector().Clear()

	// coord detects its hang with the network pinpoint.
	coordRep := make(chan watchdog.Report, 1)
	go func() {
		rep, _ := coordDriver.CheckNow("coord.sync")
		coordRep <- rep
	}()
	// dfs detects its disk fault with the volume pinpoint.
	dfsReport, err := dfsDriver.CheckNow("dfs.disk")
	if err != nil {
		t.Fatal(err)
	}
	if dfsReport.Status != watchdog.StatusError ||
		!strings.Contains(dfsReport.Site.Op, "volume0") {
		t.Fatalf("dfs report = %v site=%v", dfsReport.Status, dfsReport.Site)
	}
	select {
	case rep := <-coordRep:
		if rep.Status != watchdog.StatusStuck || rep.Site.Op != "net.Write" {
			t.Fatalf("coord report = %v site=%v", rep.Status, rep.Site)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coord watchdog never detected")
	}
}

func lastAbnormal(d *watchdog.Driver) []string {
	var out []string
	for _, rep := range d.History() {
		if rep.Status.Abnormal() {
			out = append(out, rep.String())
		}
	}
	if len(out) > 5 {
		out = out[len(out)-5:]
	}
	return out
}

// newDFSWithWatchdog builds a two-volume DataNode with its watchdog, fed by
// one real write so the mimic checker's context is ready.
func newDFSWithWatchdog(t *testing.T, dir string) (*dfs.DataNode, *watchdog.Driver) {
	t.Helper()
	factory := watchdog.NewFactory()
	dn, err := dfs.New(dfs.Config{
		VolumeDirs:      []string{filepath.Join(dir, "vol0"), filepath.Join(dir, "vol1")},
		WatchdogFactory: factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := watchdog.New(watchdog.WithFactory(factory), watchdog.WithTimeout(200*time.Millisecond))
	dn.InstallWatchdog(d)
	return dn, d
}
