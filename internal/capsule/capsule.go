// Package capsule implements the paper's §5.2 failure-reproduction
// opportunity: "since mimic-type watchdogs not only isolate the faulty code
// regions but also capture the failure-inducing context (e.g., a corrupt
// message), developers can leverage the recorded information for failure
// reproduction and postmortem analysis."
//
// A Capsule serializes a watchdog report — the checker, the pinpointed
// site, and the hook-captured payload — to JSON. Replay rebuilds the
// checker's context from the capsule and re-executes the checker, so a
// production failure can be reproduced on a developer machine with the
// exact payload that triggered it.
package capsule

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"gowatchdog/internal/watchdog"
)

// Value is one payload entry with a type tag so JSON round trips preserve
// Go types for the kinds hooks capture.
type Value struct {
	// Type is one of "string", "int", "float", "bool", "bytes", "strings",
	// or "other" (rendered with %v, not replayable precisely).
	Type string `json:"type"`
	// Data is the encoded value (base64 for bytes).
	Data json.RawMessage `json:"data"`
}

// Capsule is the serialized failure record.
type Capsule struct {
	// Checker is the reporting checker's name.
	Checker string `json:"checker"`
	// Status is the report status string.
	Status string `json:"status"`
	// Error is the report error text.
	Error string `json:"error,omitempty"`
	// Site is the pinpointed vulnerable operation.
	Site watchdog.Site `json:"site"`
	// Payload is the typed failure-inducing context.
	Payload map[string]Value `json:"payload"`
	// Time is when the report was produced.
	Time time.Time `json:"time"`
	// Latency is the checker latency in nanoseconds.
	Latency time.Duration `json:"latency_ns"`
}

// FromReport captures a report into a capsule.
func FromReport(rep watchdog.Report) *Capsule {
	c := &Capsule{
		Checker: rep.Checker,
		Status:  rep.Status.String(),
		Site:    rep.Site,
		Payload: make(map[string]Value, len(rep.Payload)),
		Time:    rep.Time,
		Latency: rep.Latency,
	}
	if rep.Err != nil {
		c.Error = rep.Err.Error()
	}
	for k, v := range rep.Payload {
		c.Payload[k] = encodeValue(v)
	}
	return c
}

func encodeValue(v any) Value {
	marshal := func(t string, x any) Value {
		data, err := json.Marshal(x)
		if err != nil {
			data, _ = json.Marshal(fmt.Sprint(x))
			t = "other"
		}
		return Value{Type: t, Data: data}
	}
	switch x := v.(type) {
	case string:
		return marshal("string", x)
	case []byte:
		return marshal("bytes", base64.StdEncoding.EncodeToString(x))
	case bool:
		return marshal("bool", x)
	case int:
		return marshal("int", int64(x))
	case int8:
		return marshal("int", int64(x))
	case int16:
		return marshal("int", int64(x))
	case int32:
		return marshal("int", int64(x))
	case int64:
		return marshal("int", x)
	case uint:
		return marshal("int", int64(x))
	case uint8:
		return marshal("int", int64(x))
	case uint16:
		return marshal("int", int64(x))
	case uint32:
		return marshal("int", int64(x))
	case uint64:
		return marshal("int", int64(x))
	case float32:
		return marshal("float", float64(x))
	case float64:
		return marshal("float", x)
	case []string:
		return marshal("strings", x)
	default:
		return marshal("other", fmt.Sprint(x))
	}
}

// decodeValue reverses encodeValue.
func decodeValue(v Value) (any, error) {
	switch v.Type {
	case "string", "other":
		var s string
		err := json.Unmarshal(v.Data, &s)
		return s, err
	case "bytes":
		var s string
		if err := json.Unmarshal(v.Data, &s); err != nil {
			return nil, err
		}
		return base64.StdEncoding.DecodeString(s)
	case "bool":
		var b bool
		err := json.Unmarshal(v.Data, &b)
		return b, err
	case "int":
		var n int64
		err := json.Unmarshal(v.Data, &n)
		return n, err
	case "float":
		var f float64
		err := json.Unmarshal(v.Data, &f)
		return f, err
	case "strings":
		var ss []string
		err := json.Unmarshal(v.Data, &ss)
		return ss, err
	default:
		return nil, fmt.Errorf("capsule: unknown value type %q", v.Type)
	}
}

// Marshal renders the capsule as indented JSON.
func (c *Capsule) Marshal() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// Unmarshal parses a capsule from JSON.
func Unmarshal(data []byte) (*Capsule, error) {
	var c Capsule
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("capsule: %w", err)
	}
	return &c, nil
}

// WriteFile stores the capsule at path.
func (c *Capsule) WriteFile(path string) error {
	data, err := c.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads a capsule from path.
func ReadFile(path string) (*Capsule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// RestoreContext rebuilds a ready checker context carrying the capsule's
// payload — the state the hooks had captured when the failure occurred.
func (c *Capsule) RestoreContext() (*watchdog.Context, error) {
	ctx := watchdog.NewContext()
	vals := make(map[string]any, len(c.Payload))
	for k, v := range c.Payload {
		dv, err := decodeValue(v)
		if err != nil {
			return nil, fmt.Errorf("capsule: payload %q: %w", k, err)
		}
		vals[k] = dv
	}
	ctx.PutAll(vals)
	if len(vals) == 0 {
		ctx.MarkReady()
	}
	return ctx, nil
}

// Replay re-executes the checker against the capsule's restored context and
// returns the resulting report. If the fault was environmental and the
// environment has recovered, Replay comes back healthy — itself a useful
// postmortem datum.
func Replay(chk watchdog.Checker, c *Capsule) (watchdog.Report, error) {
	ctx, err := c.RestoreContext()
	if err != nil {
		return watchdog.Report{}, err
	}
	d := watchdog.New()
	d.Register(chk, watchdog.WithContext(ctx))
	return d.CheckNow(chk.Name())
}

// Recorder subscribes to a driver's reports and persists a capsule for
// every abnormal one, named <dir>/<checker>-<seq>.json.
type Recorder struct {
	dir string
	seq int
}

// NewRecorder creates dir and returns a recorder.
func NewRecorder(dir string) (*Recorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Recorder{dir: dir}, nil
}

// OnReport implements the driver report-listener signature; wire it with
// driver.OnReport(rec.OnReport). It is not safe for concurrent use by
// multiple drivers.
func (r *Recorder) OnReport(rep watchdog.Report) {
	if !rep.Status.Abnormal() {
		return
	}
	r.seq++
	path := fmt.Sprintf("%s/%s-%04d.json", r.dir, sanitizeName(rep.Checker), r.seq)
	_ = FromReport(rep).WriteFile(path)
}

// Captured returns how many capsules have been written.
func (r *Recorder) Captured() int { return r.seq }

func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '-':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
