package capsule

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/kvs"
	"gowatchdog/internal/watchdog"
)

func sampleReport() watchdog.Report {
	return watchdog.Report{
		Checker: "kvs.flusher",
		Status:  watchdog.StatusError,
		Err:     errors.New("sstable write: EIO"),
		Site:    watchdog.Site{Function: "kvs.flush", Op: "sstable.Write", File: "flush.go", Line: 56},
		Payload: map[string]any{
			"partition": int64(2),
			"path":      "/data/p002/000007.sst",
			"sample":    []byte{0x01, 0x02, 0xFF},
			"entries":   42,
			"ratio":     0.5,
			"forced":    true,
			"tags":      []string{"a", "b"},
		},
		Latency: 120 * time.Millisecond,
		Time:    time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
	}
}

func TestCapsuleRoundTrip(t *testing.T) {
	c := FromReport(sampleReport())
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Checker != "kvs.flusher" || back.Status != "error" ||
		back.Error != "sstable write: EIO" {
		t.Fatalf("capsule = %+v", back)
	}
	if back.Site.Op != "sstable.Write" || back.Site.Line != 56 {
		t.Fatalf("site = %+v", back.Site)
	}
	ctx, err := back.RestoreContext()
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.Ready() {
		t.Fatal("restored context not ready")
	}
	if ctx.GetInt("partition") != 2 {
		t.Fatalf("partition = %d", ctx.GetInt("partition"))
	}
	if ctx.GetString("path") != "/data/p002/000007.sst" {
		t.Fatalf("path = %q", ctx.GetString("path"))
	}
	if b := ctx.GetBytes("sample"); len(b) != 3 || b[2] != 0xFF {
		t.Fatalf("sample = %v", b)
	}
	if v, _ := ctx.Get("forced"); v != true {
		t.Fatalf("forced = %v", v)
	}
	if v, _ := ctx.Get("ratio"); v != 0.5 {
		t.Fatalf("ratio = %v", v)
	}
	if v, _ := ctx.Get("tags"); len(v.([]string)) != 2 {
		t.Fatalf("tags = %v", v)
	}
}

func TestCapsuleFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "failure.json")
	if err := FromReport(sampleReport()).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Checker != "kvs.flusher" {
		t.Fatalf("checker = %q", back.Checker)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Fatal("garbage unmarshalled")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file read")
	}
}

func TestRestoreContextUnknownType(t *testing.T) {
	c := &Capsule{Payload: map[string]Value{
		"bad": {Type: "alien", Data: []byte(`"x"`)},
	}}
	if _, err := c.RestoreContext(); err == nil {
		t.Fatal("unknown type restored")
	}
}

func TestEmptyPayloadStillReady(t *testing.T) {
	c := FromReport(watchdog.Report{Checker: "c", Status: watchdog.StatusStuck})
	ctx, err := c.RestoreContext()
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.Ready() {
		t.Fatal("empty-payload context not ready")
	}
}

// TestReplayReproducesEnvironmentalFault is the full §5.2 story: capture a
// capsule from a failing kvs checker, then replay it — with the fault still
// present it reproduces; with the environment recovered it comes back
// healthy.
func TestReplayReproducesEnvironmentalFault(t *testing.T) {
	store, err := kvs.Open(kvs.Config{Dir: t.TempDir(), FlushThresholdBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	chk := watchdog.NewChecker("repro.flush", func(ctx *watchdog.Context) error {
		site := watchdog.Site{Function: "kvs.flush", Op: "sstable.Write"}
		return watchdog.Op(ctx, site, func() error {
			return store.Injector().Fire(kvs.FaultFlushWrite)
		})
	})

	// Production: the fault fires; the watchdog reports; a capsule is cut.
	store.Injector().Arm(kvs.FaultFlushWrite, faultinject.Fault{Kind: faultinject.Error})
	d := watchdog.New()
	readyCtx := watchdog.NewContext()
	readyCtx.Put("batch", []byte("the failure-inducing payload"))
	d.Register(chk, watchdog.WithContext(readyCtx))
	rep, _ := d.CheckNow("repro.flush")
	if rep.Status != watchdog.StatusError {
		t.Fatalf("production report = %v", rep.Status)
	}
	c := FromReport(rep)

	// Postmortem, fault still present: replay reproduces.
	replayed, err := Replay(chk, c)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Status != watchdog.StatusError {
		t.Fatalf("replay with live fault = %v", replayed.Status)
	}
	if string(replayed.Payload["batch"].([]byte)) != "the failure-inducing payload" {
		t.Fatalf("replay lost payload: %v", replayed.Payload)
	}

	// Environment recovered: replay is healthy.
	store.Injector().Clear()
	replayed, err = Replay(chk, c)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Status != watchdog.StatusHealthy {
		t.Fatalf("replay after recovery = %v", replayed.Status)
	}
}

func TestRecorderPersistsAbnormalReports(t *testing.T) {
	dir := t.TempDir()
	rec, err := NewRecorder(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec.OnReport(watchdog.Report{Checker: "ok", Status: watchdog.StatusHealthy})
	rec.OnReport(watchdog.Report{Checker: "kvs.wal", Status: watchdog.StatusError,
		Err: errors.New("x"), Payload: map[string]any{"k": "v"}})
	rec.OnReport(watchdog.Report{Checker: "coord/sync", Status: watchdog.StatusStuck})
	if rec.Captured() != 2 {
		t.Fatalf("Captured = %d", rec.Captured())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("files = %d", len(entries))
	}
	// Filenames are sanitized and parseable capsules.
	for _, e := range entries {
		c, err := ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if c.Status == "healthy" {
			t.Fatal("healthy report persisted")
		}
	}
}

// Property: payload values of every supported kind survive the round trip.
func TestPayloadRoundTripProperty(t *testing.T) {
	f := func(s string, n int64, fl float64, b bool, raw []byte) bool {
		rep := watchdog.Report{
			Checker: "p", Status: watchdog.StatusError,
			Payload: map[string]any{
				"s": s, "n": n, "f": fl, "b": b, "raw": raw,
			},
		}
		data, err := FromReport(rep).Marshal()
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		ctx, err := back.RestoreContext()
		if err != nil {
			return false
		}
		if ctx.GetString("s") != s || ctx.GetInt("n") != n {
			return false
		}
		gotF, _ := ctx.Get("f")
		if gotF != fl && !(fl != fl && gotF != gotF) { // NaN-tolerant
			// json cannot encode NaN/Inf; encodeValue falls back to string
			if _, isStr := gotF.(string); !isStr {
				return false
			}
		}
		gotRaw := ctx.GetBytes("raw")
		if len(gotRaw) != len(raw) {
			return false
		}
		for i := range raw {
			if gotRaw[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
