// Package gauge provides a small metric registry that main programs export
// and signal-style watchdog checkers read.
//
// The paper's signal checkers (§3.3, Table 2) monitor system health
// indicators: queue lengths, memory usage, load averages. Those indicators
// have to come from somewhere — this registry is the contract between the
// monitored program (which updates gauges and counters on its hot paths,
// cheaply) and the watchdog (which samples them on its own schedule).
package gauge

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	gauges   map[string]*Gauge
	counters map[string]*Counter
	windows  map[string]*Window
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		gauges:   make(map[string]*Gauge),
		counters: make(map[string]*Counter),
		windows:  make(map[string]*Window),
	}
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Window returns the sliding window with the given name, creating it with the
// given capacity on first use. Capacity is ignored for an existing window.
func (r *Registry) Window(name string, capacity int) *Window {
	r.mu.RLock()
	w, ok := r.windows[name]
	r.mu.RUnlock()
	if ok {
		return w
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok = r.windows[name]; ok {
		return w
	}
	w = NewWindow(capacity)
	r.windows[name] = w
	return w
}

// LookupGauge returns the named gauge, or false if it was never created.
func (r *Registry) LookupGauge(name string) (*Gauge, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.gauges[name]
	return g, ok
}

// LookupCounter returns the named counter, or false if it was never created.
func (r *Registry) LookupCounter(name string) (*Counter, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.counters[name]
	return c, ok
}

// LookupWindow returns the named window, or false if it was never created.
func (r *Registry) LookupWindow(name string) (*Window, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	w, ok := r.windows[name]
	return w, ok
}

// Names returns the sorted names of all registered metrics.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.gauges)+len(r.counters)+len(r.windows))
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.windows {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a point-in-time copy of every metric's primary value:
// gauges and counters report their current value, windows their mean.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := make(map[string]float64, len(r.gauges)+len(r.counters)+len(r.windows))
	for n, g := range r.gauges {
		snap[n] = g.Value()
	}
	for n, c := range r.counters {
		snap[n] = float64(c.Value())
	}
	for n, w := range r.windows {
		snap[n] = w.Mean()
	}
	return snap
}

// Gauge is a settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Counter is a monotonically increasing int64.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d, which must be non-negative.
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("gauge: negative counter add %d", d))
	}
	c.n.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Window is a fixed-capacity sliding window of float64 observations with
// cheap summary statistics. It is used for latency and rate indicators.
type Window struct {
	mu   sync.Mutex
	buf  []float64
	next int
	full bool
}

// NewWindow returns a window keeping the last capacity observations.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = 64
	}
	return &Window{buf: make([]float64, capacity)}
}

// Observe records v, evicting the oldest observation when full.
func (w *Window) Observe(v float64) {
	w.mu.Lock()
	w.buf[w.next] = v
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
	w.mu.Unlock()
}

// Len reports the number of live observations.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lenLocked()
}

func (w *Window) lenLocked() int {
	if w.full {
		return len(w.buf)
	}
	return w.next
}

// Mean returns the mean of the live observations, or 0 when empty.
func (w *Window) Mean() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.lenLocked()
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += w.buf[i]
	}
	return sum / float64(n)
}

// Max returns the maximum live observation, or 0 when empty.
func (w *Window) Max() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.lenLocked()
	if n == 0 {
		return 0
	}
	m := w.buf[0]
	for i := 1; i < n; i++ {
		if w.buf[i] > m {
			m = w.buf[i]
		}
	}
	return m
}

// Std returns the population standard deviation of the live observations,
// or 0 when fewer than two are present.
func (w *Window) Std() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.lenLocked()
	if n < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += w.buf[i]
	}
	mean := sum / float64(n)
	var sq float64
	for i := 0; i < n; i++ {
		d := w.buf[i] - mean
		sq += d * d
	}
	return math.Sqrt(sq / float64(n))
}

// Quantile returns the q-quantile (0 <= q <= 1) of the live observations
// using nearest-rank on a sorted copy, or 0 when empty.
func (w *Window) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("gauge: quantile %v out of range", q))
	}
	w.mu.Lock()
	n := w.lenLocked()
	tmp := make([]float64, n)
	copy(tmp, w.buf[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Float64s(tmp)
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return tmp[idx]
}

// Default is a process-wide registry for programs that don't need isolation.
var Default = NewRegistry()
