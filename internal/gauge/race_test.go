package gauge

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers a registry from writer goroutines (the
// monitored program's hot paths) while readers snapshot and query (the
// watchdog's sampling schedule), the exact concurrency pattern the package
// exists for. Run under -race via `make race`.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Mix shared and per-worker names so create-on-first-use races
			// with lookups on both hot and cold map paths.
			own := fmt.Sprintf("worker%d.latency", w)
			for i := 0; i < iters; i++ {
				r.Counter("shared.ops").Inc()
				r.Gauge("shared.depth").Set(float64(i))
				r.Gauge("shared.depth").Add(1)
				r.Window(own, 32).Observe(float64(i))
				r.Window("shared.lat", 64).Observe(float64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			if got := r.Counter("shared.ops").Value(); got != workers*iters {
				t.Fatalf("shared.ops = %d, want %d", got, workers*iters)
			}
			if n := r.Window("shared.lat", 64).Len(); n != 64 {
				t.Fatalf("shared.lat len = %d, want full window", n)
			}
			if len(r.Names()) < 3+workers {
				t.Fatalf("Names() = %v", r.Names())
			}
			return
		default:
		}
		// Concurrent reads while writers run.
		_ = r.Snapshot()
		_ = r.Names()
		if w, ok := r.LookupWindow("shared.lat"); ok {
			_ = w.Mean()
			_ = w.Max()
			_ = w.Std()
			_ = w.Quantile(0.95)
		}
		_, _ = r.LookupGauge("shared.depth")
		_, _ = r.LookupCounter("shared.ops")
	}
}
