package gauge

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestGaugeSetAndValue(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue.len")
	if g.Value() != 0 {
		t.Fatalf("fresh gauge = %v, want 0", g.Value())
	}
	g.Set(42.5)
	if g.Value() != 42.5 {
		t.Fatalf("gauge = %v, want 42.5", g.Value())
	}
	g.Add(-2.5)
	if g.Value() != 40 {
		t.Fatalf("gauge after Add = %v, want 40", g.Value())
	}
}

func TestGaugeSameNameSameInstance(t *testing.T) {
	r := NewRegistry()
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("same name returned different gauges")
	}
	if r.Counter("x") == nil || r.Window("x", 8) == nil {
		t.Fatal("counter/window with same name should coexist")
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("hot")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 8000 {
		t.Fatalf("concurrent adds lost updates: %v", g.Value())
	}
}

func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestCounterNegativeAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("c").Add(-1)
}

func TestWindowMeanMax(t *testing.T) {
	w := NewWindow(4)
	if w.Mean() != 0 || w.Max() != 0 || w.Len() != 0 {
		t.Fatal("empty window stats not zero")
	}
	for _, v := range []float64{1, 2, 3} {
		w.Observe(v)
	}
	if w.Mean() != 2 {
		t.Fatalf("mean = %v, want 2", w.Mean())
	}
	if w.Max() != 3 {
		t.Fatalf("max = %v, want 3", w.Max())
	}
	// Overflow evicts the oldest.
	w.Observe(4)
	w.Observe(5)
	if w.Len() != 4 {
		t.Fatalf("len = %d, want 4", w.Len())
	}
	if w.Mean() != (2+3+4+5)/4.0 {
		t.Fatalf("mean after wrap = %v", w.Mean())
	}
}

func TestWindowQuantile(t *testing.T) {
	w := NewWindow(10)
	for i := 1; i <= 10; i++ {
		w.Observe(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{{0, 1}, {0.5, 5}, {0.9, 9}, {1, 10}}
	for _, c := range cases {
		if got := w.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestWindowQuantileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(2) did not panic")
		}
	}()
	NewWindow(4).Quantile(2)
}

func TestWindowDefaultCapacity(t *testing.T) {
	w := NewWindow(0)
	for i := 0; i < 100; i++ {
		w.Observe(1)
	}
	if w.Len() != 64 {
		t.Fatalf("default capacity = %d, want 64", w.Len())
	}
}

func TestRegistryNamesAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Gauge("b").Set(2)
	r.Counter("a").Add(3)
	r.Window("c", 4).Observe(7)
	names := r.Names()
	want := []string{"a", "b", "c"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	snap := r.Snapshot()
	if snap["a"] != 3 || snap["b"] != 2 || snap["c"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestRegistryLookupMissing(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.LookupGauge("nope"); ok {
		t.Fatal("LookupGauge found missing metric")
	}
	if _, ok := r.LookupCounter("nope"); ok {
		t.Fatal("LookupCounter found missing metric")
	}
	if _, ok := r.LookupWindow("nope"); ok {
		t.Fatal("LookupWindow found missing metric")
	}
	r.Gauge("g")
	if _, ok := r.LookupGauge("g"); !ok {
		t.Fatal("LookupGauge missed existing metric")
	}
}

// Property: a window's mean always lies within [min, max] of its inputs, and
// max equals the true max over the last `cap` observations.
func TestWindowMeanBoundedProperty(t *testing.T) {
	f := func(vals []float64) bool {
		w := NewWindow(8)
		live := make([]float64, 0, 8)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue // keep the sum well inside float64 range
			}
			w.Observe(v)
			live = append(live, v)
			if len(live) > 8 {
				live = live[1:]
			}
		}
		if len(live) == 0 {
			return w.Mean() == 0
		}
		lo, hi := live[0], live[0]
		for _, v := range live {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		m := w.Mean()
		const eps = 1e-6
		return m >= lo-eps-math.Abs(lo)*eps && m <= hi+eps+math.Abs(hi)*eps && w.Max() == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: counter value equals the sum of its Adds.
func TestCounterSumProperty(t *testing.T) {
	f := func(deltas []uint8) bool {
		r := NewRegistry()
		c := r.Counter("p")
		var want int64
		for _, d := range deltas {
			c.Add(int64(d))
			want += int64(d)
		}
		return c.Value() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
