package coord

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

func TestTxnCodecRoundTrip(t *testing.T) {
	cases := []struct {
		op   byte
		path string
		data []byte
		zxid int64
	}{
		{proposalCreate, "/a", []byte("data"), 1},
		{proposalSet, "/a/b/c", nil, 42},
		{proposalDelete, "/gone", []byte{}, 1 << 40},
	}
	for _, c := range cases {
		op, path, data, zxid, err := decodeTxn(encodeTxn(c.op, c.path, c.data, c.zxid))
		if err != nil {
			t.Fatal(err)
		}
		if op != c.op || path != c.path || !bytes.Equal(data, c.data) || zxid != c.zxid {
			t.Fatalf("round trip %+v -> op=%d path=%q data=%q zxid=%d", c, op, path, data, zxid)
		}
	}
}

func TestTxnCodecRejectsMalformed(t *testing.T) {
	for i, bad := range [][]byte{nil, {1}, {1, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0}} {
		if _, _, _, _, err := decodeTxn(bad); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
}

// Property: the txn codec round-trips arbitrary inputs.
func TestTxnCodecProperty(t *testing.T) {
	f := func(opRaw uint8, path string, data []byte, zxid int64) bool {
		op := []byte{proposalCreate, proposalSet, proposalDelete}[int(opRaw)%3]
		gotOp, gotPath, gotData, gotZxid, err := decodeTxn(encodeTxn(op, path, data, zxid))
		return err == nil && gotOp == op && gotPath == path &&
			bytes.Equal(gotData, data) && gotZxid == zxid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTxnLogDurabilityAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	l := NewLeader(LeaderConfig{})
	if err := l.OpenTxnLog(dir); err != nil {
		t.Fatal(err)
	}
	l.Start()
	if err := l.SubmitWait(OpCreate, "/durable", []byte("v1"), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := l.SubmitWait(OpCreate, "/gone", []byte("x"), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := l.SubmitWait(OpDelete, "/gone", nil, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := l.SubmitWait(OpSet, "/durable", []byte("v2"), time.Second); err != nil {
		t.Fatal(err)
	}
	if l.TxnLogRecords() != 4 {
		t.Fatalf("log records = %d", l.TxnLogRecords())
	}
	l.Close() // simulated crash+restart boundary

	l2 := NewLeader(LeaderConfig{})
	if err := l2.OpenTxnLog(dir); err != nil {
		t.Fatal(err)
	}
	l2.Start()
	t.Cleanup(l2.Close)
	v, _, err := l2.Tree().Get("/durable")
	if err != nil || string(v) != "v2" {
		t.Fatalf("recovered Get = %q, %v", v, err)
	}
	if _, _, err := l2.Tree().Get("/gone"); err == nil {
		t.Fatal("deleted node resurrected")
	}
	// Recovery advanced the zxid so new writes don't reuse IDs.
	assigned, _ := l2.Zxids()
	if assigned < 4 {
		t.Fatalf("zxid after recovery = %d", assigned)
	}
	if err := l2.SubmitWait(OpCreate, "/after", nil, time.Second); err != nil {
		t.Fatal(err)
	}
	newAssigned, _ := l2.Zxids()
	if newAssigned != assigned+1 {
		t.Fatalf("zxid progression %d -> %d", assigned, newAssigned)
	}
}

func TestTxnLogDoubleOpenRejected(t *testing.T) {
	l := NewLeader(LeaderConfig{})
	t.Cleanup(l.Close)
	if err := l.OpenTxnLog(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := l.OpenTxnLog(t.TempDir()); err == nil {
		t.Fatal("double OpenTxnLog succeeded")
	}
}

func TestTxnLogFaultFailsWrites(t *testing.T) {
	l := NewLeader(LeaderConfig{})
	if err := l.OpenTxnLog(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	l.Start()
	t.Cleanup(l.Close)
	l.Injector().Arm(FaultLogAppend, faultinject.Fault{Kind: faultinject.Error})
	t.Cleanup(l.Injector().Clear)
	if err := l.SubmitWait(OpCreate, "/x", nil, time.Second); err == nil {
		t.Fatal("write succeeded with failing txn log")
	}
	// The failed transaction must not be applied to the tree.
	if _, _, err := l.Tree().Get("/x"); err == nil {
		t.Fatal("unlogged transaction applied")
	}
}

func TestSnapshotTruncatesTxnLog(t *testing.T) {
	l := NewLeader(LeaderConfig{})
	if err := l.OpenTxnLog(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	l.Start()
	t.Cleanup(l.Close)
	l.SubmitWait(OpCreate, "/a", nil, time.Second)
	l.SubmitWait(OpCreate, "/b", nil, time.Second)
	if l.TxnLogRecords() != 2 {
		t.Fatalf("records = %d", l.TxnLogRecords())
	}
	svc, err := l.StartSnapshotService(t.TempDir(), time.Hour, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	if err := svc.SnapshotOnce(1); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateTxnLog(); err != nil {
		t.Fatal(err)
	}
	if l.TxnLogRecords() != 0 {
		t.Fatalf("records after snapshot+truncate = %d", l.TxnLogRecords())
	}
}

func TestTxnLogCheckerDetectsLogVolumeFault(t *testing.T) {
	factory := watchdog.NewFactory()
	l := NewLeader(LeaderConfig{WatchdogFactory: factory})
	if err := l.OpenTxnLog(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	l.Start()
	t.Cleanup(l.Close)
	shadow, _ := wdio.NewFS(filepath.Join(t.TempDir(), "shadow"), 0)
	d := watchdog.New(watchdog.WithFactory(factory), watchdog.WithTimeout(time.Second))
	l.InstallWatchdog(d, shadow)

	// Healthy traffic feeds the hook; the checker passes.
	if err := l.SubmitWait(OpCreate, "/hooked", nil, time.Second); err != nil {
		t.Fatal(err)
	}
	rep, err := d.CheckNow("coord.log")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != watchdog.StatusHealthy {
		t.Fatalf("healthy = %v err=%v", rep.Status, rep.Err)
	}

	// Log volume starts erroring: the mimic checker detects with pinpoint.
	l.Injector().Arm(FaultLogAppend, faultinject.Fault{Kind: faultinject.Error})
	t.Cleanup(l.Injector().Clear)
	rep, _ = d.CheckNow("coord.log")
	if rep.Status != watchdog.StatusError || rep.Site.Op != "wal.Append" {
		t.Fatalf("fault = %v site=%v", rep.Status, rep.Site)
	}
}

func TestTxnLogWithoutLogIsNoop(t *testing.T) {
	l := standaloneLeader(t, nil)
	if l.TxnLogRecords() != 0 {
		t.Fatal("records without log")
	}
	if err := l.TruncateTxnLog(); err != nil {
		t.Fatal(err)
	}
	if err := l.SubmitWait(OpCreate, "/nolog", nil, time.Second); err != nil {
		t.Fatal(err)
	}
}
