package coord

import (
	"errors"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/detect"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

func standaloneLeader(t *testing.T, mutate func(*LeaderConfig)) *Leader {
	t.Helper()
	cfg := LeaderConfig{}
	if mutate != nil {
		mutate(&cfg)
	}
	l := NewLeader(cfg)
	l.Start()
	t.Cleanup(l.Close)
	return l
}

func TestLeaderStandaloneWrites(t *testing.T) {
	l := standaloneLeader(t, nil)
	if err := l.SubmitWait(OpCreate, "/svc", []byte("v1"), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := l.SubmitWait(OpSet, "/svc", []byte("v2"), time.Second); err != nil {
		t.Fatal(err)
	}
	v, _, err := l.Tree().Get("/svc")
	if err != nil || string(v) != "v2" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := l.SubmitWait(OpDelete, "/svc", nil, time.Second); err != nil {
		t.Fatal(err)
	}
	assigned, committed := l.Zxids()
	if assigned != 3 || committed != 3 {
		t.Fatalf("zxids = %d/%d", assigned, committed)
	}
}

func TestLeaderRejectsBadRequests(t *testing.T) {
	l := standaloneLeader(t, nil)
	if err := l.SubmitWait("chmod", "/x", nil, time.Second); err == nil ||
		!strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("unknown op: %v", err)
	}
	if err := l.SubmitWait(OpCreate, "not-absolute", nil, time.Second); !errors.Is(err, ErrBadPath) {
		t.Fatalf("bad path: %v", err)
	}
	if err := l.SubmitWait(OpSet, "/missing", nil, time.Second); !errors.Is(err, ErrNoNode) {
		t.Fatalf("missing node: %v", err)
	}
}

func TestLeaderFollowerReplication(t *testing.T) {
	f, err := NewFollower("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	l := standaloneLeader(t, func(c *LeaderConfig) { c.FollowerAddr = f.Addr() })
	if err := l.SubmitWait(OpCreate, "/repl", []byte("data"), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if v, _, err := f.Tree().Get("/repl"); err == nil && string(v) == "data" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never applied the proposal")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if f.Applied() != 1 {
		t.Fatalf("Applied = %d", f.Applied())
	}
}

func TestHeartbeatThreadBeatsDetector(t *testing.T) {
	v := clock.NewVirtual()
	l := NewLeader(LeaderConfig{Clock: v, HeartbeatInterval: time.Second})
	hb := detect.NewHeartbeat(v, 3*time.Second)
	l.OnHeartbeat(hb.Beat)
	l.Start()
	defer l.Close()
	v.BlockUntil(1)
	for i := 0; i < 5; i++ {
		v.Advance(time.Second)
	}
	deadline := time.Now().Add(2 * time.Second)
	for hb.Beats() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat thread never beat the detector")
		}
		time.Sleep(time.Millisecond)
	}
	if hb.Suspect() {
		t.Fatal("detector suspects a healthy leader")
	}
}

func TestSessionLifecycle(t *testing.T) {
	v := clock.NewVirtual()
	st := NewSessionTable(v, 10*time.Second)
	id := st.Open()
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
	v.Advance(8 * time.Second)
	if !st.Touch(id) {
		t.Fatal("Touch on live session failed")
	}
	v.Advance(8 * time.Second)
	if n := st.ExpireIdle(); n != 0 {
		t.Fatalf("expired %d, want 0 (was touched)", n)
	}
	v.Advance(11 * time.Second)
	if n := st.ExpireIdle(); n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	if st.Touch(id) {
		t.Fatal("Touch on expired session succeeded")
	}
	if st.Expired() != 1 {
		t.Fatalf("Expired = %d", st.Expired())
	}
	st.Close(st.Open())
	if st.Len() != 0 {
		t.Fatalf("Len after Close = %d", st.Len())
	}
}

func TestAdminServerRuokAndStat(t *testing.T) {
	l := standaloneLeader(t, nil)
	a, err := ServeAdmin("127.0.0.1:0", l)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	if err := AdminRuok(a.Addr()); err != nil {
		t.Fatal(err)
	}
	// stat includes the committed zxid.
	l.SubmitWait(OpCreate, "/x", nil, time.Second)
	conn, err := dialTCP(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("stat\n"))
	buf := make([]byte, 512)
	n, _ := conn.Read(buf)
	out := string(buf[:n])
	if !strings.Contains(out, "Mode: leader") || !strings.Contains(out, "Committed: 1") {
		t.Fatalf("stat = %q", out)
	}
}

// TestZK2201GrayFailure reproduces the paper's §4.2 case study end to end:
// a network fault blocks the remote sync inside the commit critical
// section. All write processing hangs; the heartbeat detector and the admin
// command keep reporting the leader healthy; the generated mimic watchdog
// detects the blocked call and pinpoints it.
func TestZK2201GrayFailure(t *testing.T) {
	f, err := NewFollower("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })

	factory := watchdog.NewFactory()
	l := NewLeader(LeaderConfig{
		FollowerAddr:      f.Addr(),
		HeartbeatInterval: 10 * time.Millisecond,
		WatchdogFactory:   factory,
	})
	hb := detect.NewHeartbeat(clock.Real(), 500*time.Millisecond)
	l.OnHeartbeat(hb.Beat)
	l.Start()
	t.Cleanup(l.Close)

	admin, err := ServeAdmin("127.0.0.1:0", l)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { admin.Close() })

	shadow, err := wdio.NewFS(filepath.Join(t.TempDir(), "shadow"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Scaled-down paper parameters: interval 50ms, timeout 300ms (paper: 1s/6s).
	d := watchdog.New(watchdog.WithFactory(factory),
		watchdog.WithInterval(50*time.Millisecond),
		watchdog.WithTimeout(300*time.Millisecond))
	l.InstallWatchdog(d, shadow)

	// Healthy traffic populates hooks and proves the pipeline works.
	if err := l.SubmitWait(OpCreate, "/app", []byte("x"), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if rep, _ := d.CheckNow("coord.sync"); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("sync checker unhealthy before fault: %v", rep)
	}

	// The network to the follower becomes a black hole.
	l.Injector().Arm(FaultSyncSend, faultinject.Fault{Kind: faultinject.Hang})
	defer l.Injector().Clear()

	// Write processing hangs (the request never completes).
	writeDone := l.Submit(OpCreate, "/app/hung", nil)
	select {
	case err := <-writeDone:
		t.Fatalf("write completed during black hole: %v", err)
	case <-time.After(300 * time.Millisecond):
	}
	// A second write queues behind the held commit lock.
	l.Submit(OpCreate, "/app/hung2", nil)

	// Reads still work — this is a partial failure.
	if _, _, err := l.Tree().Get("/app"); err != nil {
		t.Fatalf("reads broken during ZK-2201: %v", err)
	}

	// Extrinsic detectors stay green.
	time.Sleep(200 * time.Millisecond) // several heartbeat periods into the fault
	if hb.Suspect() {
		t.Fatal("heartbeat detector suspected the leader (it should not)")
	}
	if err := AdminRuok(admin.Addr()); err != nil {
		t.Fatalf("admin command failed (it should report healthy): %v", err)
	}

	// The mimic watchdog detects the hang and pinpoints the blocked call.
	start := time.Now()
	rep := make(chan watchdog.Report, 1)
	go func() {
		r, _ := d.CheckNow("coord.sync")
		rep <- r
	}()
	select {
	case r := <-rep:
		if r.Status != watchdog.StatusStuck {
			t.Fatalf("watchdog status = %v, want stuck", r.Status)
		}
		if r.Site.Function != "coord.(*Leader).syncToFollower" || r.Site.Op != "net.Write" {
			t.Fatalf("pinpoint = %v", r.Site)
		}
		if r.Payload["follower"] == nil || r.Payload["path"] == nil {
			t.Fatalf("payload missing concrete context: %v", r.Payload)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("detection took %v with 300ms timeout", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never detected the blocked sync")
	}

	// Recovery: releasing the network lets the wedged write complete.
	l.Injector().Clear()
	select {
	case err := <-writeDone:
		if err != nil {
			t.Fatalf("wedged write failed after recovery: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wedged write never completed after recovery")
	}
}

func TestPipelineSignalCheckerDetectsStall(t *testing.T) {
	f, err := NewFollower("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	factory := watchdog.NewFactory()
	l := NewLeader(LeaderConfig{FollowerAddr: f.Addr(), WatchdogFactory: factory})
	l.Start()
	t.Cleanup(l.Close)
	shadow, _ := wdio.NewFS(filepath.Join(t.TempDir(), "shadow"), 0)
	d := watchdog.New(watchdog.WithFactory(factory))
	l.InstallWatchdog(d, shadow)

	// Seed the progress checker.
	if rep, _ := d.CheckNow("coord.pipeline"); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("seed run: %v", rep)
	}
	l.Injector().Arm(FaultSyncSend, faultinject.Fault{Kind: faultinject.Hang})
	defer l.Injector().Clear()
	l.Submit(OpCreate, "/a", nil)
	l.Submit(OpCreate, "/b", nil) // stays queued behind the wedged request
	deadline := time.Now().Add(2 * time.Second)
	for l.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never backed up")
		}
		time.Sleep(time.Millisecond)
	}
	rep, _ := d.CheckNow("coord.pipeline")
	if rep.Status != watchdog.StatusError {
		t.Fatalf("pipeline checker = %v, want error", rep.Status)
	}
}

func TestSnapshotCheckerMirrorsFigure3(t *testing.T) {
	factory := watchdog.NewFactory()
	l := NewLeader(LeaderConfig{WatchdogFactory: factory})
	l.Start()
	t.Cleanup(l.Close)
	shadow, _ := wdio.NewFS(filepath.Join(t.TempDir(), "shadow"), 0)
	d := watchdog.New(watchdog.WithFactory(factory))
	l.InstallWatchdog(d, shadow)

	// Before any snapshot ran, the checker context is not ready (Figure 3:
	// "checker context not ready").
	rep, _ := d.CheckNow("coord.snapshot")
	if rep.Status != watchdog.StatusContextPending {
		t.Fatalf("status before snapshot = %v", rep.Status)
	}

	// A real snapshot executes the hook; the checker then runs the reduced
	// function.
	l.SubmitWait(OpCreate, "/cfg", []byte("payload"), time.Second)
	snapPath := filepath.Join(t.TempDir(), "snap.bin")
	if err := l.Tree().SnapshotToFile(snapPath, l.Injector(), factory); err != nil {
		t.Fatal(err)
	}
	rep, _ = d.CheckNow("coord.snapshot")
	if rep.Status != watchdog.StatusHealthy {
		t.Fatalf("status after snapshot = %v err=%v", rep.Status, rep.Err)
	}

	// Snapshot volume fault: the checker detects and pinpoints WriteRecord.
	l.Injector().Arm(FaultSnapshotWrite, faultinject.Fault{Kind: faultinject.Error})
	rep, _ = d.CheckNow("coord.snapshot")
	if rep.Status != watchdog.StatusError || rep.Site.Op != "WriteRecord" {
		t.Fatalf("status = %v site = %v", rep.Status, rep.Site)
	}
}

func dialTCP(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
