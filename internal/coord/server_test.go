package coord

import (
	"strings"
	"testing"
	"time"

	"gowatchdog/internal/faultinject"
)

func clientServer(t *testing.T) (*Client, *Leader) {
	t.Helper()
	l := standaloneLeader(t, nil)
	srv, err := ServeClients("127.0.0.1:0", l, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := DialClient(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, l
}

func TestClientCreateGetSetDel(t *testing.T) {
	c, _ := clientServer(t)
	if err := c.Create("/svc", "v1"); err != nil {
		t.Fatal(err)
	}
	data, ver, err := c.Get("/svc")
	if err != nil || data != "v1" || ver != 0 {
		t.Fatalf("Get = %q v%d %v", data, ver, err)
	}
	if err := c.Set("/svc", "v2"); err != nil {
		t.Fatal(err)
	}
	data, ver, _ = c.Get("/svc")
	if data != "v2" || ver != 1 {
		t.Fatalf("after Set: %q v%d", data, ver)
	}
	if err := c.Del("/svc"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("/svc"); err == nil {
		t.Fatal("Get after Del succeeded")
	}
}

func TestClientChildren(t *testing.T) {
	c, _ := clientServer(t)
	c.Create("/app", "")
	c.Create("/app/b", "")
	c.Create("/app/a", "")
	kids, err := c.Children("/app")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 || kids[0] != "a" || kids[1] != "b" {
		t.Fatalf("kids = %v", kids)
	}
	if _, err := c.Children("/missing"); err == nil {
		t.Fatal("Children of missing node succeeded")
	}
}

func TestClientSessionPing(t *testing.T) {
	c, l := clientServer(t)
	id, err := c.OpenSession()
	if err != nil || id == 0 {
		t.Fatalf("OpenSession = %d, %v", id, err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	l.Sessions().Close(id)
	if err := c.Ping(); err == nil || !strings.Contains(err.Error(), "expired") {
		t.Fatalf("Ping on closed session: %v", err)
	}
}

func TestClientErrors(t *testing.T) {
	c, _ := clientServer(t)
	if err := c.Create("relative", "x"); err == nil {
		t.Fatal("bad path accepted")
	}
	if err := c.Set("/missing", "x"); err == nil {
		t.Fatal("Set on missing node accepted")
	}
	resp, err := c.roundTrip("WAT")
	if err != nil || !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("unknown command: %q %v", resp, err)
	}
	resp, _ = c.roundTrip("PING abc")
	if !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("bad ping: %q", resp)
	}
}

func TestClientWritesTimeOutDuringZK2201ButReadsServe(t *testing.T) {
	f, err := NewFollower("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	l := standaloneLeader(t, func(cfg *LeaderConfig) { cfg.FollowerAddr = f.Addr() })
	srv, err := ServeClients("127.0.0.1:0", l, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := DialClient(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	if err := c.Create("/app", "x"); err != nil {
		t.Fatal(err)
	}
	l.Injector().Arm(FaultSyncSend, faultinject.Fault{Kind: faultinject.Hang})
	defer l.Injector().Clear()

	// Client-visible symptom: writes time out...
	if err := c.Create("/app/hung", "x"); err == nil ||
		!strings.Contains(err.Error(), "timed out") {
		t.Fatalf("write during black hole: %v", err)
	}
	// ...while reads keep answering on the same connection.
	data, _, err := c.Get("/app")
	if err != nil || data != "x" {
		t.Fatalf("read during black hole = %q, %v", data, err)
	}
}
