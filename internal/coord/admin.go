package coord

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
)

// AdminServer serves ZooKeeper-style four-letter admin commands ("ruok",
// "stat") from a dedicated listener that shares no state with the write
// pipeline — which is why, as in the paper's case study, it reports the
// leader healthy throughout ZK-2201.
type AdminServer struct {
	ln     net.Listener
	leader *Leader
	wg     sync.WaitGroup
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	stop   bool
}

// ServeAdmin starts the admin listener on addr.
func ServeAdmin(addr string, leader *Leader) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &AdminServer{ln: ln, leader: leader, conns: make(map[net.Conn]struct{})}
	a.wg.Add(1)
	go a.acceptLoop()
	return a, nil
}

// Addr returns the admin listener address.
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close stops the admin server.
func (a *AdminServer) Close() error {
	a.mu.Lock()
	a.stop = true
	for c := range a.conns {
		c.Close()
	}
	a.mu.Unlock()
	err := a.ln.Close()
	a.wg.Wait()
	return err
}

func (a *AdminServer) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return
		}
		a.mu.Lock()
		if a.stop {
			a.mu.Unlock()
			conn.Close()
			return
		}
		a.conns[conn] = struct{}{}
		a.mu.Unlock()
		a.wg.Add(1)
		go a.handle(conn)
	}
}

func (a *AdminServer) handle(conn net.Conn) {
	defer a.wg.Done()
	defer func() {
		a.mu.Lock()
		delete(a.conns, conn)
		a.mu.Unlock()
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		cmd := strings.TrimSpace(strings.ToLower(sc.Text()))
		var resp string
		switch cmd {
		case "ruok":
			// "Are you ok?" — answered from this dedicated thread using no
			// pipeline state: the answer is yes as long as the process and
			// this listener are alive.
			resp = "imok\n"
		case "stat":
			assigned, committed := a.leader.Zxids()
			resp = fmt.Sprintf(
				"Mode: leader\nZxid: %d\nCommitted: %d\nSessions: %d\nNodes: %d\nHeartbeats: %d\n",
				assigned, committed, a.leader.Sessions().Len(),
				a.leader.Tree().Count(),
				a.leader.Metrics().Counter("coord.heartbeats").Value())
		default:
			resp = "unknown command\n"
		}
		if _, err := conn.Write([]byte(resp)); err != nil {
			return
		}
	}
}

// AdminRuok issues a "ruok" probe to an admin server and reports whether it
// answered "imok" — the external admin monitoring command from §4.2.
func AdminRuok(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ruok\n")); err != nil {
		return err
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return err
	}
	if strings.TrimSpace(line) != "imok" {
		return fmt.Errorf("coord: admin answered %q", strings.TrimSpace(line))
	}
	return nil
}
