package coord

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"time"

	"gowatchdog/internal/wal"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

// This file is the hand-checked twin of what cmd/awgen generates for the
// coord package (see internal/autowatchdog and examples/autogen): reduced
// versions of the long-running regions' vulnerable operations, a checker
// per region, and context plumbing in the style of the paper's Figure 3.

// SerializeSnapshotReduced is the reduced serializeSnapshot of Figure 3: of
// the whole serialize/serializeNode call chain, program logic reduction
// keeps only the vulnerable writeRecord invocation, executed once with
// hook-captured arguments.
func SerializeSnapshotReduced(w *bufio.Writer, nodePath string, data []byte) error {
	return WriteRecord(w, nodePath, data)
}

// InstallWatchdog registers the coord checker suite on d. The driver's
// factory must be the leader's WatchdogFactory. shadow receives checker
// disk I/O.
func (l *Leader) InstallWatchdog(d *watchdog.Driver, shadow *wdio.FS) {
	if l.cfg.FollowerAddr != "" {
		d.Register(l.syncChecker())
	}
	d.Register(l.snapshotChecker(shadow))
	if l.txnLog != nil {
		d.Register(l.txnLogChecker(shadow))
	}
	d.Register(l.pipelineChecker(), watchdog.WithContext(wdReadyContext()))
}

func wdReadyContext() *watchdog.Context {
	ctx := watchdog.NewContext()
	ctx.MarkReady()
	return ctx
}

// syncChecker mimics the sync processor's remote send: it fires the same
// network fault point and performs a real proposal round trip (a ping
// proposal, acknowledged but never applied). When the network path black-
// holes, this checker hangs exactly like the main pipeline's send — shared
// fate — and the driver's timeout pinpoints the blocked call with the
// zxid/path context captured by the hook (§4.2: "detected the timeout fault
// in around seven seconds and pinpointed the blocked function call with a
// concrete context").
func (l *Leader) syncChecker() watchdog.Checker {
	site := watchdog.Site{
		Function: "coord.(*Leader).syncToFollower",
		Op:       "net.Write",
		File:     "internal/coord/leader.go",
		Line:     316,
	}
	return watchdog.NewChecker("coord.sync", func(ctx *watchdog.Context) error {
		addr := ctx.GetString("follower")
		if addr == "" {
			addr = l.cfg.FollowerAddr
		}
		return watchdog.Op(ctx, site, func() error {
			if err := l.inj.Fire(FaultSyncSend); err != nil {
				return err
			}
			conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				return err
			}
			defer conn.Close()
			return sendProposal(conn, 5*time.Second, proposalPing, "/__wd__/ping", nil)
		})
	})
}

// snapshotChecker is the generated checker of Figure 3
// (SyncRequestProcessor$Checker.serializeSnapshot_invoke): once the hook has
// prepared the context, it invokes the reduced serializeSnapshot against the
// shadow filesystem — one real writeRecord with the captured node.
func (l *Leader) snapshotChecker(shadow *wdio.FS) watchdog.Checker {
	site := watchdog.Site{
		Function: "coord.(*DataTree).SerializeSnapshot",
		Op:       "WriteRecord",
		File:     "internal/coord/snapshot.go",
		Line:     106,
	}
	return watchdog.NewChecker("coord.snapshot", func(ctx *watchdog.Context) error {
		// Figure 3: if ctx.status != READY the driver never calls us, so the
		// args are present here.
		nodePath := ctx.GetString("path")
		data := ctx.GetBytes("data")
		return watchdog.Op(ctx, site, func() error {
			if err := l.inj.Fire(FaultSnapshotWrite); err != nil {
				return err
			}
			full, err := shadow.PreparePath("snapshot/probe.snap")
			if err != nil {
				return err
			}
			f, err := os.OpenFile(full, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
			if err != nil {
				return err
			}
			w := bufio.NewWriter(f)
			if err := SerializeSnapshotReduced(w, nodePath, data); err != nil {
				f.Close()
				return err
			}
			if err := w.Flush(); err != nil {
				f.Close()
				return err
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
	})
}

// txnLogChecker mimics the sync processor's durable log write: it appends
// the hook-captured transaction shape to a shadow WAL, syncs, and verifies
// the frames — real disk I/O through the txn-log fault point.
func (l *Leader) txnLogChecker(shadow *wdio.FS) watchdog.Checker {
	site := watchdog.Site{
		Function: "coord.(*Leader).logTxn",
		Op:       "wal.Append",
		File:     "internal/coord/txnlog.go",
		Line:     103,
	}
	return watchdog.NewChecker("coord.log", func(ctx *watchdog.Context) error {
		path := ctx.GetString("path")
		if path == "" {
			path = "/__wd__/log-probe"
		}
		return watchdog.Op(ctx, site, func() error {
			if err := l.inj.Fire(FaultLogAppend); err != nil {
				return err
			}
			full, err := shadow.PreparePath("txnlog/probe.log")
			if err != nil {
				return err
			}
			log, err := wal.Open(full)
			if err != nil {
				return err
			}
			defer log.Close()
			rec := encodeTxn(proposalPing, path, nil, ctx.GetInt("zxid"))
			if err := log.Append(rec); err != nil {
				return err
			}
			if err := log.Sync(); err != nil {
				return err
			}
			if err := log.Verify(); err != nil {
				return err
			}
			if log.Size() > 1<<20 {
				return log.Reset()
			}
			return nil
		})
	})
}

// pipelineChecker is a signal checker on write-pipeline progress: queued
// requests with no committed-zxid advancement since the previous check
// indicate a wedged pipeline. Weak accuracy (a slow client burst can trip
// it), good coverage — the signal row of Table 2.
func (l *Leader) pipelineChecker() watchdog.Checker {
	var lastCommitted int64
	var seeded bool
	return watchdog.NewChecker("coord.pipeline", func(*watchdog.Context) error {
		_, committed := l.Zxids()
		queued := l.QueueLen()
		defer func() {
			lastCommitted = committed
			seeded = true
		}()
		if !seeded {
			return nil
		}
		if queued > 0 && committed == lastCommitted {
			return &watchdog.OpError{
				Site: watchdog.Site{Op: "signal:pipeline-progress"},
				Err: fmt.Errorf("coord: %d requests queued, committed zxid stalled at %d",
					queued, committed),
			}
		}
		return nil
	})
}
