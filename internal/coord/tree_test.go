package coord

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTreeCreateGetSetDelete(t *testing.T) {
	tr := NewDataTree()
	if err := tr.Create("/a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ver, err := tr.Get("/a")
	if err != nil || string(v) != "1" || ver != 0 {
		t.Fatalf("Get = %q v%d %v", v, ver, err)
	}
	if err := tr.Set("/a", []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, ver, _ = tr.Get("/a")
	if string(v) != "2" || ver != 1 {
		t.Fatalf("after Set: %q v%d", v, ver)
	}
	if err := tr.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Get("/a"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("Get after Delete: %v", err)
	}
}

func TestTreeHierarchyRules(t *testing.T) {
	tr := NewDataTree()
	if err := tr.Create("/a/b", nil); !errors.Is(err, ErrNoNode) {
		t.Fatalf("orphan create: %v", err)
	}
	tr.Create("/a", nil)
	if err := tr.Create("/a", nil); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	tr.Create("/a/b", nil)
	if err := tr.Delete("/a"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("delete non-empty: %v", err)
	}
	kids, err := tr.Children("/a")
	if err != nil || len(kids) != 1 || kids[0] != "b" {
		t.Fatalf("Children = %v, %v", kids, err)
	}
	if err := tr.Delete("/"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("delete root: %v", err)
	}
}

func TestTreeBadPaths(t *testing.T) {
	tr := NewDataTree()
	for _, p := range []string{"", "relative", "/trailing/", "//double", "/a/../b"} {
		if err := tr.Create(p, nil); !errors.Is(err, ErrBadPath) {
			t.Errorf("Create(%q) = %v, want ErrBadPath", p, err)
		}
	}
}

func TestTreeChildrenSorted(t *testing.T) {
	tr := NewDataTree()
	for _, n := range []string{"/c", "/a", "/b"} {
		tr.Create(n, nil)
	}
	kids, _ := tr.Children("/")
	if !sort.StringsAreSorted(kids) {
		t.Fatalf("children unsorted: %v", kids)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	tr := NewDataTree()
	tr.Create("/app", []byte("root"))
	tr.Create("/app/config", []byte("c=1"))
	tr.Create("/app/locks", nil)
	tr.Create("/app/locks/l1", []byte("holder"))

	var buf bytes.Buffer
	if err := tr.SerializeSnapshot(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if tr.SerializedCount() != int64(tr.Count()) {
		t.Fatalf("scount = %d, nodes = %d", tr.SerializedCount(), tr.Count())
	}
	restored, err := RestoreSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != tr.Count() {
		t.Fatalf("restored %d nodes, want %d", restored.Count(), tr.Count())
	}
	v, _, err := restored.Get("/app/locks/l1")
	if err != nil || string(v) != "holder" {
		t.Fatalf("restored Get = %q, %v", v, err)
	}
}

func TestSnapshotRestoreRejectsGarbage(t *testing.T) {
	_, err := RestoreSnapshot(strings.NewReader("\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("err = %v", err)
	}
}

func TestSnapshotToFileAndBack(t *testing.T) {
	tr := NewDataTree()
	tr.Create("/x", []byte("data"))
	path := t.TempDir() + "/snap.bin"
	if err := tr.SnapshotToFile(path, nil, nil); err != nil {
		t.Fatal(err)
	}
	f, err := openFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := RestoreSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	v, _, _ := restored.Get("/x")
	if string(v) != "data" {
		t.Fatalf("restored = %q", v)
	}
}

// Property: snapshot round trip preserves every node and its data.
func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(names []uint8, blobs [][]byte) bool {
		tr := NewDataTree()
		model := map[string][]byte{}
		for i, n := range names {
			p := fmt.Sprintf("/n%03d", n)
			var data []byte
			if i < len(blobs) {
				data = blobs[i]
			}
			if err := tr.Create(p, data); err == nil {
				model[p] = data
			}
		}
		var buf bytes.Buffer
		if tr.SerializeSnapshot(&buf, nil, nil) != nil {
			return false
		}
		restored, err := RestoreSnapshot(&buf)
		if err != nil {
			return false
		}
		if restored.Count() != tr.Count() {
			return false
		}
		for p, want := range model {
			got, _, err := restored.Get(p)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func openFile(path string) (*os.File, error) { return os.Open(path) }
