package coord

import (
	"encoding/binary"
	"fmt"
	"path/filepath"

	"gowatchdog/internal/wal"
)

// FaultLogAppend models the transaction-log volume: the disk write the
// sync request processor performs before replicating (ZooKeeper's
// SyncRequestProcessor exists to sync the txn log — hence its name).
const FaultLogAppend = "coord.log.append"

// encodeTxn renders one committed operation for the transaction log:
// op byte | uvarint pathLen | path | uvarint dataLen | data | 8B zxid.
func encodeTxn(op byte, path string, data []byte, zxid int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	out := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(path)+len(data)+8)
	out = append(out, op)
	n := binary.PutUvarint(tmp[:], uint64(len(path)))
	out = append(out, tmp[:n]...)
	out = append(out, path...)
	n = binary.PutUvarint(tmp[:], uint64(len(data)))
	out = append(out, tmp[:n]...)
	out = append(out, data...)
	var z [8]byte
	binary.BigEndian.PutUint64(z[:], uint64(zxid))
	out = append(out, z[:]...)
	return out
}

// decodeTxn reverses encodeTxn.
func decodeTxn(payload []byte) (op byte, path string, data []byte, zxid int64, err error) {
	if len(payload) < 1+8 {
		return 0, "", nil, 0, fmt.Errorf("coord: short txn record")
	}
	op = payload[0]
	rest := payload[1 : len(payload)-8]
	plen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < plen {
		return 0, "", nil, 0, fmt.Errorf("coord: bad txn path length")
	}
	rest = rest[n:]
	path = string(rest[:plen])
	rest = rest[plen:]
	dlen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) != dlen {
		return 0, "", nil, 0, fmt.Errorf("coord: bad txn data length")
	}
	data = append([]byte(nil), rest[n:]...)
	zxid = int64(binary.BigEndian.Uint64(payload[len(payload)-8:]))
	return op, path, data, zxid, nil
}

// openTxnLog opens (or recovers) the leader's transaction log and replays
// committed transactions into the tree. It returns the highest zxid seen.
func (l *Leader) openTxnLog(dir string) (int64, error) {
	log, err := wal.Open(filepath.Join(dir, "txn.log"))
	if err != nil {
		return 0, err
	}
	var maxZxid int64
	err = log.Replay(func(payload []byte) error {
		op, path, data, zxid, err := decodeTxn(payload)
		if err != nil {
			return err
		}
		// Replay is idempotent-ish: recovery applies in commit order; an
		// individual application error (e.g. create of an existing node
		// after a snapshot restore) is tolerated.
		switch op {
		case proposalCreate:
			l.tree.Create(path, data)
		case proposalSet:
			l.tree.Set(path, data)
		case proposalDelete:
			l.tree.Delete(path)
		}
		if zxid > maxZxid {
			maxZxid = zxid
		}
		return nil
	})
	if err != nil {
		log.Close()
		return 0, fmt.Errorf("coord: txn log replay: %w", err)
	}
	l.txnLog = log
	return maxZxid, nil
}

// logTxn appends one transaction durably — the sync processor's disk write.
func (l *Leader) logTxn(req *request) error {
	if l.txnLog == nil {
		return nil
	}
	if l.factory != nil {
		l.factory.Context("coord.log").PutAll(map[string]any{
			"path": req.path,
			"zxid": req.zxid,
		})
	}
	if err := l.inj.Fire(FaultLogAppend); err != nil {
		return err
	}
	if err := l.txnLog.Append(encodeTxn(proposalOp(req.op), req.path, req.data, req.zxid)); err != nil {
		return err
	}
	return l.txnLog.Sync()
}

// TruncateTxnLog resets the transaction log; the snapshot service calls it
// after a successful snapshot makes the logged transactions redundant.
func (l *Leader) TruncateTxnLog() error {
	if l.txnLog == nil {
		return nil
	}
	return l.txnLog.Reset()
}

// TxnLogRecords returns the number of intact transactions in the log (0
// when no log is configured).
func (l *Leader) TxnLogRecords() int64 {
	if l.txnLog == nil {
		return 0
	}
	return l.txnLog.Records()
}
