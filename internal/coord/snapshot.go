package coord

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
)

// FaultSnapshotWrite is the fault point on the snapshot record write — the
// vulnerable operation AutoWatchdog identifies at Figure 2 line 20
// (oa.writeRecord(node, "node")).
const FaultSnapshotWrite = "coord.snapshot.write"

// ErrSnapshotCorrupt is returned when a snapshot fails to parse.
var ErrSnapshotCorrupt = errors.New("coord: corrupt snapshot")

// WriteRecord serializes one node record — the analog of
// OutputArchive.writeRecord from Figure 2. It is exported because the
// reduced checker (Figure 3) invokes exactly this operation.
func WriteRecord(w io.Writer, nodePath string, data []byte) error {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(nodePath)))
	if _, err := w.Write(tmp[:n]); err != nil {
		return err
	}
	if _, err := w.Write([]byte(nodePath)); err != nil {
		return err
	}
	n = binary.PutUvarint(tmp[:], uint64(len(data)))
	if _, err := w.Write(tmp[:n]); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return nil
}

// readRecord decodes one WriteRecord frame.
func readRecord(r *bufio.Reader) (string, []byte, error) {
	plen, err := binary.ReadUvarint(r)
	if err == io.EOF {
		return "", nil, io.EOF // clean end of snapshot
	}
	if err != nil {
		return "", nil, fmt.Errorf("%w: path length: %v", ErrSnapshotCorrupt, err)
	}
	if plen > 1<<20 {
		return "", nil, fmt.Errorf("%w: path length %d", ErrSnapshotCorrupt, plen)
	}
	pbuf := make([]byte, plen)
	if _, err := io.ReadFull(r, pbuf); err != nil {
		return "", nil, fmt.Errorf("%w: path", ErrSnapshotCorrupt)
	}
	dlen, err := binary.ReadUvarint(r)
	if err != nil {
		return "", nil, fmt.Errorf("%w: data length", ErrSnapshotCorrupt)
	}
	if dlen > 1<<30 {
		return "", nil, fmt.Errorf("%w: data length %d", ErrSnapshotCorrupt, dlen)
	}
	data := make([]byte, dlen)
	if _, err := io.ReadFull(r, data); err != nil {
		return "", nil, fmt.Errorf("%w: data", ErrSnapshotCorrupt)
	}
	return string(pbuf), data, nil
}

// SerializeSnapshot walks the tree and writes every node record to w — the
// analog of Figure 2's SyncRequestProcessor.serializeSnapshot /
// DataTree.serialize / serializeNode chain. Before each vulnerable
// writeRecord it executes the watchdog hook (Figure 2's inserted
// ContextFactory.serializeSnapshot_reduced_args_setter), then fires the
// fault point modelling the snapshot volume.
func (t *DataTree) SerializeSnapshot(w io.Writer, inj *faultinject.Injector,
	factory *watchdog.Factory) error {
	t.mu.Lock()
	t.scount = 0
	t.mu.Unlock()
	for _, p := range t.Paths() {
		data, _, err := t.Get(p)
		if err != nil {
			continue // concurrently deleted
		}
		// Watchdog hook: capture the writeRecord arguments (§4.1 "insert
		// context API hooks in P to synchronize state").
		if factory != nil {
			factory.Context("coord.snapshot").PutAll(map[string]any{
				"path": p,
				"data": data,
			})
		}
		t.mu.Lock()
		t.scount++
		t.mu.Unlock()
		if inj != nil {
			if err := inj.Fire(FaultSnapshotWrite); err != nil {
				return fmt.Errorf("serialize %s: %w", p, err)
			}
		}
		if err := WriteRecord(w, p, data); err != nil {
			return fmt.Errorf("serialize %s: %w", p, err)
		}
	}
	return nil
}

// SerializedCount returns the number of nodes written by the last snapshot —
// Figure 2's scount.
func (t *DataTree) SerializedCount() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.scount
}

// SnapshotToFile serializes the tree to a file with fsync.
func (t *DataTree) SnapshotToFile(path string, inj *faultinject.Injector,
	factory *watchdog.Factory) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := t.SerializeSnapshot(bw, inj, factory); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RestoreSnapshot rebuilds a tree from a serialized snapshot.
func RestoreSnapshot(r io.Reader) (*DataTree, error) {
	t := NewDataTree()
	br := bufio.NewReader(r)
	for {
		p, data, err := readRecord(br)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		if p == "/" {
			continue
		}
		if err := t.Create(p, data); err != nil {
			return nil, fmt.Errorf("%w: restore %s: %v", ErrSnapshotCorrupt, p, err)
		}
	}
}
