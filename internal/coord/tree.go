// Package coord implements a miniature coordination service with the
// structure of ZooKeeper's write path, built to reproduce the paper's §4.2
// case study (ZOOKEEPER-2201) and the Figure 2–3 snapshot-serialization
// example.
//
// A Leader runs a request-processor pipeline (prep → sync → final). The sync
// stage replicates each committed write to a follower over TCP *while
// holding the commit lock*; a network fault that blocks that send therefore
// wedges every subsequent write — while the heartbeat thread and the admin
// command keep answering, exactly the gray failure of ZK-2201.
package coord

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// Tree errors.
var (
	// ErrNodeExists is returned by Create for an existing path.
	ErrNodeExists = errors.New("coord: node exists")
	// ErrNoNode is returned for operations on absent paths.
	ErrNoNode = errors.New("coord: no such node")
	// ErrNotEmpty is returned by Delete when the node has children.
	ErrNotEmpty = errors.New("coord: node has children")
	// ErrBadPath is returned for paths that are not clean absolute paths.
	ErrBadPath = errors.New("coord: bad path")
)

// znode is one node in the data tree.
type znode struct {
	data     []byte
	children map[string]struct{}
	version  int64
}

// DataTree is the hierarchical namespace (the paper's DataTree class). It is
// safe for concurrent use.
type DataTree struct {
	mu     sync.RWMutex
	nodes  map[string]*znode
	scount int64 // serialized-node counter, mirroring Figure 2's scount
}

// NewDataTree returns a tree containing only the root node "/".
func NewDataTree() *DataTree {
	return &DataTree{nodes: map[string]*znode{
		"/": {children: make(map[string]struct{})},
	}}
}

// validatePath checks that p is a clean absolute path.
func validatePath(p string) error {
	if p == "" || p[0] != '/' || (p != "/" && strings.HasSuffix(p, "/")) || path.Clean(p) != p {
		return fmt.Errorf("%w: %q", ErrBadPath, p)
	}
	return nil
}

// Create adds a node. The parent must exist.
func (t *DataTree) Create(p string, data []byte) error {
	if err := validatePath(p); err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("%w: /", ErrNodeExists)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.nodes[p]; ok {
		return fmt.Errorf("%w: %s", ErrNodeExists, p)
	}
	parent := path.Dir(p)
	pn, ok := t.nodes[parent]
	if !ok {
		return fmt.Errorf("%w: parent %s", ErrNoNode, parent)
	}
	t.nodes[p] = &znode{data: append([]byte(nil), data...), children: make(map[string]struct{})}
	pn.children[path.Base(p)] = struct{}{}
	return nil
}

// Set replaces a node's data and bumps its version.
func (t *DataTree) Set(p string, data []byte) error {
	if err := validatePath(p); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[p]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoNode, p)
	}
	n.data = append([]byte(nil), data...)
	n.version++
	return nil
}

// Get returns a copy of a node's data and its version.
func (t *DataTree) Get(p string) ([]byte, int64, error) {
	if err := validatePath(p); err != nil {
		return nil, 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[p]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNoNode, p)
	}
	return append([]byte(nil), n.data...), n.version, nil
}

// Delete removes a childless node.
func (t *DataTree) Delete(p string) error {
	if err := validatePath(p); err != nil {
		return err
	}
	if p == "/" {
		return fmt.Errorf("%w: cannot delete root", ErrBadPath)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[p]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoNode, p)
	}
	if len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, p)
	}
	delete(t.nodes, p)
	if pn, ok := t.nodes[path.Dir(p)]; ok {
		delete(pn.children, path.Base(p))
	}
	return nil
}

// Children returns the sorted child names of a node.
func (t *DataTree) Children(p string) ([]string, error) {
	if err := validatePath(p); err != nil {
		return nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[p]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoNode, p)
	}
	out := make([]string, 0, len(n.children))
	for c := range n.children {
		out = append(out, c)
	}
	sort.Strings(out)
	return out, nil
}

// Count returns the number of nodes including the root.
func (t *DataTree) Count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.nodes)
}

// Paths returns every path in the tree, sorted; used by snapshot
// serialization for a deterministic walk.
func (t *DataTree) Paths() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.nodes))
	for p := range t.nodes {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
