package coord

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Server exposes the leader over a line-based client protocol:
//
//	CREATE <path> <data>   -> OK | ERR <msg>
//	SET <path> <data>      -> OK | ERR <msg>
//	DEL <path>             -> OK | ERR <msg>
//	GET <path>             -> DATA <ver> <data> | ERR <msg>
//	CHILDREN <path>        -> COUNT <n> then n name lines | ERR <msg>
//	SESSION                -> SESSION <id>
//	PING <session-id>      -> PONG | ERR expired
//
// Writes go through the request pipeline (and thus wedge during ZK-2201);
// reads are served directly from the data tree (and thus keep working).
type Server struct {
	ln     net.Listener
	leader *Leader
	// WriteTimeout bounds how long a client write waits on the pipeline.
	writeTimeout time.Duration

	wg    sync.WaitGroup
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	stop  bool
}

// ServeClients starts the client listener on addr.
func ServeClients(addr string, leader *Leader, writeTimeout time.Duration) (*Server, error) {
	if writeTimeout <= 0 {
		writeTimeout = 10 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, leader: leader, writeTimeout: writeTimeout,
		conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the client listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	s.stop = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.stop {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		resp := s.dispatch(sc.Text())
		if _, err := w.WriteString(resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(line string) string {
	cmd, rest, _ := strings.Cut(line, " ")
	switch strings.ToUpper(cmd) {
	case "CREATE", "SET":
		path, data, ok := strings.Cut(rest, " ")
		if !ok && rest == "" {
			return "ERR usage: " + cmd + " <path> <data>\n"
		}
		if !ok {
			path = rest
		}
		op := OpCreate
		if strings.EqualFold(cmd, "SET") {
			op = OpSet
		}
		if err := s.leader.SubmitWait(op, path, []byte(data), s.writeTimeout); err != nil {
			return "ERR " + err.Error() + "\n"
		}
		return "OK\n"
	case "DEL":
		if rest == "" {
			return "ERR usage: DEL <path>\n"
		}
		if err := s.leader.SubmitWait(OpDelete, rest, nil, s.writeTimeout); err != nil {
			return "ERR " + err.Error() + "\n"
		}
		return "OK\n"
	case "GET":
		if rest == "" {
			return "ERR usage: GET <path>\n"
		}
		data, ver, err := s.leader.Tree().Get(rest)
		if err != nil {
			return "ERR " + err.Error() + "\n"
		}
		return fmt.Sprintf("DATA %d %s\n", ver, data)
	case "CHILDREN":
		if rest == "" {
			return "ERR usage: CHILDREN <path>\n"
		}
		kids, err := s.leader.Tree().Children(rest)
		if err != nil {
			return "ERR " + err.Error() + "\n"
		}
		var b strings.Builder
		fmt.Fprintf(&b, "COUNT %d\n", len(kids))
		for _, k := range kids {
			b.WriteString(k + "\n")
		}
		return b.String()
	case "SESSION":
		id := s.leader.Sessions().Open()
		return fmt.Sprintf("SESSION %d\n", id)
	case "PING":
		var id int64
		if _, err := fmt.Sscanf(rest, "%d", &id); err != nil {
			return "ERR usage: PING <session-id>\n"
		}
		if !s.leader.Sessions().Touch(id) {
			return "ERR session expired\n"
		}
		return "PONG\n"
	default:
		return "ERR unknown command\n"
	}
}

// Client is a synchronous client for the coord client protocol. Not safe
// for concurrent use.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	timeout time.Duration
	session int64
}

// DialClient connects to a coord client server.
func DialClient(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), timeout: timeout}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(line string) (string, error) {
	c.conn.SetDeadline(time.Now().Add(c.timeout))
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		return "", err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSuffix(resp, "\n"), nil
}

func coordExpectOK(resp string, err error) error {
	if err != nil {
		return err
	}
	if resp == "OK" {
		return nil
	}
	return fmt.Errorf("coord: %s", strings.TrimPrefix(resp, "ERR "))
}

// Create creates a node.
func (c *Client) Create(path, data string) error {
	return coordExpectOK(c.roundTrip("CREATE " + path + " " + data))
}

// Set replaces a node's data.
func (c *Client) Set(path, data string) error {
	return coordExpectOK(c.roundTrip("SET " + path + " " + data))
}

// Del deletes a node.
func (c *Client) Del(path string) error {
	return coordExpectOK(c.roundTrip("DEL " + path))
}

// Get reads a node.
func (c *Client) Get(path string) (data string, version int64, err error) {
	resp, err := c.roundTrip("GET " + path)
	if err != nil {
		return "", 0, err
	}
	if strings.HasPrefix(resp, "ERR ") {
		return "", 0, fmt.Errorf("coord: %s", strings.TrimPrefix(resp, "ERR "))
	}
	var ver int64
	rest := strings.TrimPrefix(resp, "DATA ")
	verStr, data, _ := strings.Cut(rest, " ")
	if _, err := fmt.Sscanf(verStr, "%d", &ver); err != nil {
		return "", 0, fmt.Errorf("coord: bad response %q", resp)
	}
	return data, ver, nil
}

// Children lists a node's children.
func (c *Client) Children(path string) ([]string, error) {
	resp, err := c.roundTrip("CHILDREN " + path)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(resp, "ERR ") {
		return nil, fmt.Errorf("coord: %s", strings.TrimPrefix(resp, "ERR "))
	}
	var n int
	if _, err := fmt.Sscanf(resp, "COUNT %d", &n); err != nil {
		return nil, fmt.Errorf("coord: bad response %q", resp)
	}
	kids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		kids = append(kids, strings.TrimSuffix(line, "\n"))
	}
	return kids, nil
}

// OpenSession opens a session and remembers its ID for Ping.
func (c *Client) OpenSession() (int64, error) {
	resp, err := c.roundTrip("SESSION")
	if err != nil {
		return 0, err
	}
	var id int64
	if _, err := fmt.Sscanf(resp, "SESSION %d", &id); err != nil {
		return 0, fmt.Errorf("coord: bad response %q", resp)
	}
	c.session = id
	return id, nil
}

// Ping touches the client's session.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(fmt.Sprintf("PING %d", c.session))
	if err != nil {
		return err
	}
	if resp != "PONG" {
		return fmt.Errorf("coord: %s", strings.TrimPrefix(resp, "ERR "))
	}
	return nil
}
