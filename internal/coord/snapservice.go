package coord

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// SnapshotService periodically serializes the leader's data tree to disk —
// the long-running snapshot region of Figure 2 (ZooKeeper's
// SyncRequestProcessor snapshot path). Each run executes the watchdog hook
// per node and passes through the FaultSnapshotWrite point, so the
// coord.snapshot checker's context stays synchronized with real snapshot
// activity.
type SnapshotService struct {
	leader   *Leader
	dir      string
	interval time.Duration
	keep     int

	stop chan struct{}
	done chan struct{}
}

// StartSnapshotService begins periodic snapshots into dir, keeping the most
// recent `keep` snapshot files (default 2). It returns an error if dir
// cannot be created.
func (l *Leader) StartSnapshotService(dir string, interval time.Duration, keep int) (*SnapshotService, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("coord: snapshot dir: %w", err)
	}
	if interval <= 0 {
		interval = 30 * time.Second
	}
	if keep <= 0 {
		keep = 2
	}
	s := &SnapshotService{
		leader:   l,
		dir:      dir,
		interval: interval,
		keep:     keep,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.run()
	return s, nil
}

// Close stops the service.
func (s *SnapshotService) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	select {
	case <-s.done:
	case <-time.After(2 * time.Second):
		// A snapshot wedged on an injected fault is abandoned.
	}
}

// Dir returns the snapshot directory.
func (s *SnapshotService) Dir() string { return s.dir }

func (s *SnapshotService) run() {
	defer close(s.done)
	tick := s.leader.clk.NewTicker(s.interval)
	defer tick.Stop()
	seq := 0
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C():
			seq++
			if err := s.SnapshotOnce(seq); err != nil {
				s.leader.mets.Counter("coord.snapshot.errors").Inc()
				continue
			}
			s.leader.mets.Counter("coord.snapshots").Inc()
			// A durable snapshot makes the logged transactions redundant.
			if err := s.leader.TruncateTxnLog(); err != nil {
				s.leader.mets.Counter("coord.snapshot.errors").Inc()
			}
			s.prune()
		}
	}
}

// SnapshotOnce serializes one snapshot with the given sequence number.
func (s *SnapshotService) SnapshotOnce(seq int) error {
	path := filepath.Join(s.dir, fmt.Sprintf("snapshot-%08d.snap", seq))
	return s.leader.tree.SnapshotToFile(path, s.leader.inj, s.leader.factory)
}

// Snapshots returns the snapshot file names, oldest first.
func (s *SnapshotService) Snapshots() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "snapshot-") && strings.HasSuffix(e.Name(), ".snap") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// prune removes all but the newest `keep` snapshots.
func (s *SnapshotService) prune() {
	snaps, err := s.Snapshots()
	if err != nil {
		return
	}
	for len(snaps) > s.keep {
		os.Remove(filepath.Join(s.dir, snaps[0]))
		snaps = snaps[1:]
	}
}

// RestoreLatest loads the newest snapshot from dir into a fresh tree; ok is
// false when no snapshot exists.
func RestoreLatest(dir string) (*DataTree, bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, false, err
	}
	var newest string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".snap") && name > newest {
			newest = name
		}
	}
	if newest == "" {
		return nil, false, nil
	}
	f, err := os.Open(filepath.Join(dir, newest))
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	tree, err := RestoreSnapshot(f)
	if err != nil {
		return nil, false, err
	}
	return tree, true, nil
}
