package coord

import (
	"path/filepath"
	"testing"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

func TestSnapshotServicePeriodicAndPruned(t *testing.T) {
	v := clock.NewVirtual()
	l := NewLeader(LeaderConfig{Clock: v})
	l.Start()
	t.Cleanup(l.Close)
	l.tree.Create("/data", []byte("x"))

	dir := t.TempDir()
	svc, err := l.StartSnapshotService(dir, 10*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)

	// Wait for both background waiters (heartbeat ticker + snapshot ticker).
	v.BlockUntil(2)
	for i := 0; i < 5; i++ {
		v.Advance(10 * time.Second)
		// Give the goroutine wall time to consume the tick.
		waitFor(t, time.Second, func() bool {
			return l.Metrics().Counter("coord.snapshots").Value() >= int64(i+1)
		})
	}
	snaps, err := svc.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("snapshots kept = %d, want 2 (pruned)", len(snaps))
	}

	// The newest snapshot restores the tree.
	tree, ok, err := RestoreLatest(dir)
	if err != nil || !ok {
		t.Fatalf("RestoreLatest: %v ok=%v", err, ok)
	}
	if data, _, err := tree.Get("/data"); err != nil || string(data) != "x" {
		t.Fatalf("restored Get = %q, %v", data, err)
	}
}

func TestSnapshotServiceFaultCountsError(t *testing.T) {
	v := clock.NewVirtual()
	l := NewLeader(LeaderConfig{Clock: v})
	l.Start()
	t.Cleanup(l.Close)
	l.Injector().Arm(FaultSnapshotWrite, faultinject.Fault{Kind: faultinject.Error})
	t.Cleanup(l.Injector().Clear)

	svc, err := l.StartSnapshotService(t.TempDir(), 10*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	v.BlockUntil(2)
	v.Advance(10 * time.Second)
	waitFor(t, time.Second, func() bool {
		return l.Metrics().Counter("coord.snapshot.errors").Value() >= 1
	})
	snaps, _ := svc.Snapshots()
	// The failed snapshot file may exist partially; the success counter must
	// stay zero.
	if l.Metrics().Counter("coord.snapshots").Value() != 0 {
		t.Fatalf("snapshots succeeded under fault: %v", snaps)
	}
}

func TestSnapshotServiceFeedsWatchdogContext(t *testing.T) {
	factory := watchdog.NewFactory()
	l := NewLeader(LeaderConfig{WatchdogFactory: factory})
	l.Start()
	t.Cleanup(l.Close)
	l.tree.Create("/hooked", []byte("payload"))

	shadow, _ := wdio.NewFS(filepath.Join(t.TempDir(), "shadow"), 0)
	d := watchdog.New(watchdog.WithFactory(factory))
	l.InstallWatchdog(d, shadow)

	// Before any snapshot, the checker is gated.
	rep, _ := d.CheckNow("coord.snapshot")
	if rep.Status != watchdog.StatusContextPending {
		t.Fatalf("pre-snapshot = %v", rep.Status)
	}
	svc, err := l.StartSnapshotService(t.TempDir(), time.Hour, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	if err := svc.SnapshotOnce(1); err != nil {
		t.Fatal(err)
	}
	rep, _ = d.CheckNow("coord.snapshot")
	if rep.Status != watchdog.StatusHealthy {
		t.Fatalf("post-snapshot = %v err=%v", rep.Status, rep.Err)
	}
}

func TestRestoreLatestEmptyDir(t *testing.T) {
	_, ok, err := RestoreLatest(t.TempDir())
	if err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never satisfied")
		}
		time.Sleep(time.Millisecond)
	}
}
