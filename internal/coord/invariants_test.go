package coord

import "testing"

// TestLeaderZxidInvariant pins the zxid ordering law that holds at every
// moment of a leader's life, busy or idle: the committed zxid never runs
// ahead of the assigned one, and neither goes negative. Phrased as a
// workload-independent guard so that awgen -from-tests can mine it into a
// runtime checker (DESIGN.md §8).
func TestLeaderZxidInvariant(t *testing.T) {
	l := standaloneLeader(t, nil)

	assigned, committed := l.Zxids()
	if committed > assigned || assigned < 0 {
		t.Fatalf("zxid ordering violated: assigned=%d committed=%d", assigned, committed)
	}
}
