package coord

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/gauge"
	"gowatchdog/internal/wal"
	"gowatchdog/internal/watchdog"
)

// Fault points in the leader's long-running regions.
const (
	// FaultSyncSend models the network path to the follower, fired inside
	// the commit critical section — the ZK-2201 mechanism.
	FaultSyncSend = "coord.sync.send"
	// FaultTreeApply models a defect in the final processor.
	FaultTreeApply = "coord.tree.apply"
)

// Proposal op codes on the leader→follower wire.
const (
	proposalCreate byte = 1
	proposalSet    byte = 2
	proposalDelete byte = 3
	// proposalPing is acknowledged but not applied; the watchdog's mimic
	// sync checker ships these.
	proposalPing byte = 9
)

const proposalAck = 0x06

// Request op codes accepted by Leader.Submit.
const (
	OpCreate = "create"
	OpSet    = "set"
	OpDelete = "delete"
)

// request travels through the processor pipeline.
type request struct {
	op   string
	path string
	data []byte
	zxid int64
	resp chan error
}

// ErrShutdown is returned for requests submitted after Close.
var ErrShutdown = errors.New("coord: leader shut down")

// LeaderConfig configures a Leader.
type LeaderConfig struct {
	// FollowerAddr is the follower's proposal listener; empty runs
	// standalone (no replication).
	FollowerAddr string
	// HeartbeatInterval is the cadence of the leader's heartbeat thread
	// (default 500ms).
	HeartbeatInterval time.Duration
	// SessionTimeout is the idle session expiry (default 10s).
	SessionTimeout time.Duration
	// SendTimeout bounds one proposal round trip (default 30s — generous,
	// like ZooKeeper's; the point of ZK-2201 is that a blocked send wedges
	// the pipeline far longer than any detector's horizon).
	SendTimeout time.Duration
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Injector defaults to a disabled injector.
	Injector *faultinject.Injector
	// Metrics defaults to a private registry.
	Metrics *gauge.Registry
	// WatchdogFactory receives hook updates when set.
	WatchdogFactory *watchdog.Factory
}

// Leader is the coordination service's write path: a request-processor
// pipeline over a DataTree, with synchronous replication to one follower
// inside the commit critical section.
type Leader struct {
	cfg      LeaderConfig
	clk      clock.Clock
	inj      *faultinject.Injector
	mets     *gauge.Registry
	factory  *watchdog.Factory
	tree     *DataTree
	sessions *SessionTable

	reqCh chan *request

	commitMu sync.Mutex // ZK-2201's critical section
	connMu   sync.Mutex
	follower net.Conn
	txnLog   *wal.Log // durable transaction log; nil when not configured

	zxidMu    sync.Mutex
	nextZxid  int64
	committed int64

	// heartbeat sinks (crash failure detectors subscribed to this leader)
	hbMu    sync.Mutex
	hbSinks []func()

	stop     chan struct{}
	pipeDone chan struct{}
	hbDone   chan struct{}
	started  bool
}

// NewLeader returns an unstarted leader.
func NewLeader(cfg LeaderConfig) *Leader {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 500 * time.Millisecond
	}
	if cfg.SessionTimeout <= 0 {
		cfg.SessionTimeout = 10 * time.Second
	}
	if cfg.SendTimeout <= 0 {
		cfg.SendTimeout = 30 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.Injector == nil {
		cfg.Injector = faultinject.New(cfg.Clock)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = gauge.NewRegistry()
	}
	return &Leader{
		cfg:      cfg,
		clk:      cfg.Clock,
		inj:      cfg.Injector,
		mets:     cfg.Metrics,
		factory:  cfg.WatchdogFactory,
		tree:     NewDataTree(),
		sessions: NewSessionTable(cfg.Clock, cfg.SessionTimeout),
		reqCh:    make(chan *request, 1024),
		stop:     make(chan struct{}),
		pipeDone: make(chan struct{}),
		hbDone:   make(chan struct{}),
	}
}

// Tree exposes the leader's data tree (reads bypass the pipeline, as in
// ZooKeeper, which is why reads keep working during ZK-2201).
func (l *Leader) Tree() *DataTree { return l.tree }

// Sessions exposes the session table.
func (l *Leader) Sessions() *SessionTable { return l.sessions }

// Metrics returns the leader's metric registry.
func (l *Leader) Metrics() *gauge.Registry { return l.mets }

// Injector returns the leader's fault injector.
func (l *Leader) Injector() *faultinject.Injector { return l.inj }

// OnHeartbeat subscribes fn to the leader's heartbeat thread; crash failure
// detectors register their Beat method here.
func (l *Leader) OnHeartbeat(fn func()) {
	l.hbMu.Lock()
	l.hbSinks = append(l.hbSinks, fn)
	l.hbMu.Unlock()
}

// Start launches the request pipeline and the heartbeat thread.
func (l *Leader) Start() {
	if l.started {
		return
	}
	l.started = true
	go l.pipeline()
	go l.heartbeatLoop()
}

// Close shuts the leader down. A pipeline wedged in a blocked send is
// abandoned rather than awaited.
func (l *Leader) Close() {
	select {
	case <-l.stop:
	default:
		close(l.stop)
	}
	if l.started {
		select {
		case <-l.hbDone:
		case <-time.After(2 * time.Second):
		}
		select {
		case <-l.pipeDone:
		case <-time.After(2 * time.Second):
		}
	}
	l.connMu.Lock()
	if l.follower != nil {
		l.follower.Close()
		l.follower = nil
	}
	l.connMu.Unlock()
	if l.txnLog != nil {
		l.txnLog.Close()
	}
}

// OpenTxnLog attaches a durable transaction log rooted at dir, replaying
// any recovered transactions into the data tree and advancing the zxid
// counter past them. It must be called before Start.
func (l *Leader) OpenTxnLog(dir string) error {
	if l.txnLog != nil {
		return fmt.Errorf("coord: txn log already open")
	}
	maxZxid, err := l.openTxnLog(dir)
	if err != nil {
		return err
	}
	l.zxidMu.Lock()
	if maxZxid > l.nextZxid {
		l.nextZxid = maxZxid
		l.committed = maxZxid
	}
	l.zxidMu.Unlock()
	return nil
}

// heartbeatLoop is the leader's liveness thread: it beats every subscribed
// failure detector and expires idle sessions. Crucially it shares no lock
// with the write pipeline, so it keeps running during ZK-2201.
func (l *Leader) heartbeatLoop() {
	defer close(l.hbDone)
	tick := l.clk.NewTicker(l.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-tick.C():
			l.hbMu.Lock()
			sinks := append([]func(){}, l.hbSinks...)
			l.hbMu.Unlock()
			for _, fn := range sinks {
				fn()
			}
			l.sessions.ExpireIdle()
			l.mets.Counter("coord.heartbeats").Inc()
		}
	}
}

// Submit enqueues a write request and returns a channel that delivers its
// outcome. Reads go directly to Tree().
func (l *Leader) Submit(op, path string, data []byte) <-chan error {
	resp := make(chan error, 1)
	req := &request{op: op, path: path, data: data, resp: resp}
	select {
	case <-l.stop:
		resp <- ErrShutdown
	case l.reqCh <- req:
		l.mets.Gauge("coord.queue.len").Set(float64(len(l.reqCh)))
	}
	return resp
}

// SubmitWait submits and waits up to timeout for the result.
func (l *Leader) SubmitWait(op, path string, data []byte, timeout time.Duration) error {
	resp := l.Submit(op, path, data)
	timer := l.clk.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-resp:
		return err
	case <-timer.C():
		return fmt.Errorf("coord: %s %s timed out after %v", op, path, timeout)
	}
}

// pipeline is the single request-processor chain: prep (assign zxid) → sync
// (replicate under the commit lock) → final (apply to the tree).
func (l *Leader) pipeline() {
	defer close(l.pipeDone)
	for {
		select {
		case <-l.stop:
			return
		case req := <-l.reqCh:
			l.mets.Gauge("coord.queue.len").Set(float64(len(l.reqCh)))
			req.resp <- l.process(req)
		}
	}
}

// process runs one request through the three processors.
func (l *Leader) process(req *request) error {
	// PrepRequestProcessor: validate and assign the zxid.
	switch req.op {
	case OpCreate, OpSet, OpDelete:
	default:
		return fmt.Errorf("coord: unknown op %q", req.op)
	}
	if err := validatePath(req.path); err != nil {
		return err
	}
	l.zxidMu.Lock()
	l.nextZxid++
	req.zxid = l.nextZxid
	l.zxidMu.Unlock()

	// SyncRequestProcessor: log durably, then replicate, inside the commit
	// critical section. ZK-2201: if the follower link degrades into a black
	// hole, the send blocks while holding commitMu, wedging every later
	// write.
	l.commitMu.Lock()
	err := l.logTxn(req)
	if err == nil {
		err = l.syncToFollower(req)
	}
	l.commitMu.Unlock()
	if err != nil {
		l.mets.Counter("coord.sync.errors").Inc()
		return err
	}

	// FinalRequestProcessor: apply to the data tree.
	if err := l.inj.Fire(FaultTreeApply); err != nil {
		return err
	}
	if err := l.applyToTree(req.op, req.path, req.data); err != nil {
		return err
	}
	l.zxidMu.Lock()
	l.committed = req.zxid
	l.zxidMu.Unlock()
	l.mets.Counter("coord.commits").Inc()
	return nil
}

func (l *Leader) applyToTree(op, path string, data []byte) error {
	switch op {
	case OpCreate:
		return l.tree.Create(path, data)
	case OpSet:
		return l.tree.Set(path, data)
	case OpDelete:
		return l.tree.Delete(path)
	default:
		return fmt.Errorf("coord: unknown op %q", op)
	}
}

// syncToFollower ships one proposal and waits for the ACK. It executes the
// watchdog hook first, then the vulnerable network send.
func (l *Leader) syncToFollower(req *request) error {
	if l.cfg.FollowerAddr == "" {
		return nil
	}
	if l.factory != nil {
		l.factory.Context("coord.sync").PutAll(map[string]any{
			"follower": l.cfg.FollowerAddr,
			"op":       req.op,
			"path":     req.path,
			"zxid":     req.zxid,
		})
	}
	// Vulnerable operation: the remote sync. The fault point models the
	// network path, shared with the mimic checker.
	if err := l.inj.Fire(FaultSyncSend); err != nil {
		return err
	}
	conn, err := l.followerConn()
	if err != nil {
		return err
	}
	if err := sendProposal(conn, l.cfg.SendTimeout, proposalOp(req.op), req.path, req.data); err != nil {
		l.dropFollowerConn()
		return err
	}
	return nil
}

func proposalOp(op string) byte {
	switch op {
	case OpCreate:
		return proposalCreate
	case OpSet:
		return proposalSet
	default:
		return proposalDelete
	}
}

// followerConn returns the cached follower connection, dialing on demand.
func (l *Leader) followerConn() (net.Conn, error) {
	l.connMu.Lock()
	defer l.connMu.Unlock()
	if l.follower != nil {
		return l.follower, nil
	}
	conn, err := net.DialTimeout("tcp", l.cfg.FollowerAddr, 2*time.Second)
	if err != nil {
		return nil, fmt.Errorf("coord: dial follower: %w", err)
	}
	l.follower = conn
	return conn, nil
}

// ReconnectFollower drops the cached follower connection so the next sync
// dials afresh — the connection-level microreboot a recovery manager
// applies when the watchdog pinpoints a wedged or erroring sync (§5.2).
func (l *Leader) ReconnectFollower() {
	l.dropFollowerConn()
	l.mets.Counter("coord.reconnects").Inc()
}

func (l *Leader) dropFollowerConn() {
	l.connMu.Lock()
	if l.follower != nil {
		l.follower.Close()
		l.follower = nil
	}
	l.connMu.Unlock()
}

// sendProposal writes one framed proposal and reads its ACK byte.
func sendProposal(conn net.Conn, timeout time.Duration, op byte, path string, data []byte) error {
	payload := make([]byte, 0, 1+4+len(path)+4+len(data))
	payload = append(payload, op)
	var l4 [4]byte
	binary.BigEndian.PutUint32(l4[:], uint32(len(path)))
	payload = append(payload, l4[:]...)
	payload = append(payload, path...)
	binary.BigEndian.PutUint32(l4[:], uint32(len(data)))
	payload = append(payload, l4[:]...)
	payload = append(payload, data...)

	conn.SetDeadline(time.Now().Add(timeout))
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := conn.Write(payload); err != nil {
		return err
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return err
	}
	if ack[0] != proposalAck {
		return fmt.Errorf("coord: bad proposal ack %#x", ack[0])
	}
	return nil
}

// Zxids returns the last assigned and last committed transaction IDs; the
// gap between them is the pipeline-progress signal.
func (l *Leader) Zxids() (assigned, committed int64) {
	l.zxidMu.Lock()
	defer l.zxidMu.Unlock()
	return l.nextZxid, l.committed
}

// QueueLen returns the number of requests waiting in the pipeline.
func (l *Leader) QueueLen() int { return len(l.reqCh) }
