package coord

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Follower applies the leader's proposal stream to its own DataTree and
// answers ping proposals, over the framed TCP protocol of sendProposal.
type Follower struct {
	ln   net.Listener
	tree *DataTree
	wg   sync.WaitGroup
	mu   sync.Mutex
	conn map[net.Conn]struct{}
	stop bool

	applied int64
}

// NewFollower listens on addr (e.g. "127.0.0.1:0").
func NewFollower(addr string) (*Follower, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	f := &Follower{ln: ln, tree: NewDataTree(), conn: make(map[net.Conn]struct{})}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Addr returns the proposal listener address.
func (f *Follower) Addr() string { return f.ln.Addr().String() }

// Tree exposes the follower's data tree.
func (f *Follower) Tree() *DataTree { return f.tree }

// Applied returns the number of proposals applied.
func (f *Follower) Applied() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// Close stops the follower.
func (f *Follower) Close() error {
	f.mu.Lock()
	f.stop = true
	for c := range f.conn {
		c.Close()
	}
	f.mu.Unlock()
	err := f.ln.Close()
	f.wg.Wait()
	return err
}

func (f *Follower) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.mu.Lock()
		if f.stop {
			f.mu.Unlock()
			conn.Close()
			return
		}
		f.conn[conn] = struct{}{}
		f.mu.Unlock()
		f.wg.Add(1)
		go f.handle(conn)
	}
}

func (f *Follower) handle(conn net.Conn) {
	defer f.wg.Done()
	defer func() {
		f.mu.Lock()
		delete(f.conn, conn)
		f.mu.Unlock()
		conn.Close()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > 1<<26 || n < 1 {
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		if err := f.apply(payload); err != nil {
			// A proposal the follower cannot apply is acknowledged anyway;
			// divergence repair is out of scope (the leader retries convey
			// the same state).
			_ = err
		}
		if _, err := conn.Write([]byte{proposalAck}); err != nil {
			return
		}
	}
}

// apply decodes and applies one proposal.
func (f *Follower) apply(payload []byte) error {
	op := payload[0]
	rest := payload[1:]
	if len(rest) < 4 {
		return fmt.Errorf("coord: short proposal")
	}
	plen := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if uint32(len(rest)) < plen+4 {
		return fmt.Errorf("coord: short proposal path")
	}
	path := string(rest[:plen])
	rest = rest[plen:]
	dlen := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if uint32(len(rest)) != dlen {
		return fmt.Errorf("coord: short proposal data")
	}
	data := rest

	var err error
	switch op {
	case proposalPing:
		return nil // liveness probe from the watchdog; ACK only
	case proposalCreate:
		err = f.tree.Create(path, data)
	case proposalSet:
		err = f.tree.Set(path, data)
	case proposalDelete:
		err = f.tree.Delete(path)
	default:
		return fmt.Errorf("coord: unknown proposal op %d", op)
	}
	if err == nil {
		f.mu.Lock()
		f.applied++
		f.mu.Unlock()
	}
	return err
}
