package coord

import (
	"sync"
	"time"

	"gowatchdog/internal/clock"
)

// Session is one client session tracked by the leader.
type Session struct {
	// ID identifies the session.
	ID int64
	// LastSeen is the time of the most recent touch.
	LastSeen time.Time
}

// SessionTable tracks client sessions with idle expiry, mirroring
// ZooKeeper's session tracker. It is safe for concurrent use.
type SessionTable struct {
	clk     clock.Clock
	timeout time.Duration

	mu       sync.Mutex
	sessions map[int64]*Session
	nextID   int64
	expired  int64
}

// NewSessionTable returns a table expiring sessions idle longer than
// timeout.
func NewSessionTable(clk clock.Clock, timeout time.Duration) *SessionTable {
	return &SessionTable{clk: clk, timeout: timeout, sessions: make(map[int64]*Session)}
}

// Open creates a new session and returns its ID.
func (st *SessionTable) Open() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.nextID++
	id := st.nextID
	st.sessions[id] = &Session{ID: id, LastSeen: st.clk.Now()}
	return id
}

// Touch refreshes a session; it reports whether the session is live.
func (st *SessionTable) Touch(id int64) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.sessions[id]
	if !ok {
		return false
	}
	s.LastSeen = st.clk.Now()
	return true
}

// Close removes a session.
func (st *SessionTable) Close(id int64) {
	st.mu.Lock()
	delete(st.sessions, id)
	st.mu.Unlock()
}

// Len returns the number of live sessions.
func (st *SessionTable) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// Expired returns the total number of sessions expired so far.
func (st *SessionTable) Expired() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.expired
}

// ExpireIdle removes sessions idle past the timeout and returns how many it
// expired. The leader's heartbeat thread calls it periodically.
func (st *SessionTable) ExpireIdle() int {
	now := st.clk.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for id, s := range st.sessions {
		if now.Sub(s.LastSeen) > st.timeout {
			delete(st.sessions, id)
			st.expired++
			n++
		}
	}
	return n
}
