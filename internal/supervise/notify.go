package supervise

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"gowatchdog/internal/sdnotify"
)

// NotifyListener is the supervisor side of the sd_notify feed/disarm
// contract: it owns the NOTIFY_SOCKET a supervised child is pointed at and
// turns the datagram stream into supervision signals.
//
//	READY=1 / WATCHDOG=1   count as liveness — Probe succeeds while the last
//	                       feed is within the window. wdruntime only feeds
//	                       while its intrinsic watchdog verdict is healthy,
//	                       so feed silence means hung OR failing, not just
//	                       descheduled.
//	STOPPING=1             disarms the probe: a deliberate drain must never
//	                       be diagnosed as a hang.
//	WATCHDOG=trigger       is delivered on Trigger(): the child's in-process
//	                       recovery gave up and demands an immediate restart.
//
// Wire Probe into Config.HealthProbe, Trigger() into Config.Trigger, and
// Reset into Config.OnSpawn (a dead child's feeds must not vouch for its
// replacement).
type NotifyListener struct {
	conn      *net.UnixConn
	path      string
	window    time.Duration
	trigger   chan string
	closeOnce sync.Once

	mu       sync.Mutex
	lastFeed time.Time
	ready    bool
	stopping bool
}

// ListenNotify binds a notify socket under dir. window is the feed timeout
// advertised to the child as WATCHDOG_USEC and enforced by Probe.
func ListenNotify(dir string, window time.Duration) (*NotifyListener, error) {
	if window <= 0 {
		return nil, errors.New("supervise: notify window must be positive")
	}
	path := filepath.Join(dir, fmt.Sprintf("notify-%d.sock", os.Getpid()))
	_ = os.Remove(path)
	conn, err := net.ListenUnixgram("unixgram", &net.UnixAddr{Name: path, Net: "unixgram"})
	if err != nil {
		return nil, fmt.Errorf("supervise: listen notify: %w", err)
	}
	nl := &NotifyListener{
		conn:    conn,
		path:    path,
		window:  window,
		trigger: make(chan string, 4),
	}
	go nl.loop()
	return nl, nil
}

// Env returns the environment entries for a supervised child: the socket
// address and the watchdog timeout (sd_watchdog_enabled(3) form).
func (nl *NotifyListener) Env() []string {
	return []string{
		sdnotify.EnvSocket + "=" + nl.path,
		sdnotify.EnvWatchdogUsec + "=" + strconv.FormatInt(nl.window.Microseconds(), 10),
	}
}

// Path returns the socket path.
func (nl *NotifyListener) Path() string { return nl.path }

// Trigger returns the channel delivering WATCHDOG=trigger causes.
func (nl *NotifyListener) Trigger() <-chan string { return nl.trigger }

// Probe implements Config.HealthProbe over the feed stream: healthy while
// the child has fed within the window, or has declared STOPPING (the disarm
// half of the contract).
func (nl *NotifyListener) Probe() error {
	nl.mu.Lock()
	defer nl.mu.Unlock()
	if nl.stopping {
		return nil
	}
	if nl.lastFeed.IsZero() {
		return errors.New("no watchdog feed yet")
	}
	if since := time.Since(nl.lastFeed); since > nl.window {
		return fmt.Errorf("last watchdog feed %v ago (window %v)", since.Round(time.Millisecond), nl.window)
	}
	return nil
}

// Reset clears per-child state; wire it into Config.OnSpawn.
func (nl *NotifyListener) Reset(int) {
	nl.mu.Lock()
	defer nl.mu.Unlock()
	nl.lastFeed = time.Time{}
	nl.ready = false
	nl.stopping = false
}

// State reports the current child's notify state.
func (nl *NotifyListener) State() (ready, stopping bool, lastFeed time.Time) {
	nl.mu.Lock()
	defer nl.mu.Unlock()
	return nl.ready, nl.stopping, nl.lastFeed
}

// Close stops the listener and removes the socket.
func (nl *NotifyListener) Close() error {
	var err error
	nl.closeOnce.Do(func() {
		err = nl.conn.Close()
		_ = os.Remove(nl.path)
	})
	return err
}

// loop drains datagrams until the socket closes.
func (nl *NotifyListener) loop() {
	buf := make([]byte, 4096)
	for {
		n, err := nl.conn.Read(buf)
		if err != nil {
			close(nl.trigger)
			return
		}
		nl.handle(string(buf[:n]))
	}
}

// handle applies one datagram (possibly several KEY=VALUE lines).
func (nl *NotifyListener) handle(dgram string) {
	for _, line := range strings.Split(dgram, "\n") {
		switch strings.TrimSpace(line) {
		case "READY=1":
			nl.mu.Lock()
			nl.ready = true
			nl.lastFeed = time.Now()
			nl.mu.Unlock()
		case "WATCHDOG=1":
			nl.mu.Lock()
			nl.lastFeed = time.Now()
			nl.mu.Unlock()
		case "STOPPING=1":
			nl.mu.Lock()
			nl.stopping = true
			nl.mu.Unlock()
		case "WATCHDOG=trigger":
			select {
			case nl.trigger <- CauseWatchdogTrigger:
			default: // a trigger is already pending; one restart is enough
			}
		}
	}
}
