package supervise

import (
	"context"
	"strings"
	"testing"
	"time"

	"gowatchdog/internal/sdnotify"
	"gowatchdog/internal/supervise/episode"
)

// TestNotifyProbeLifecycle walks the feed/disarm contract end to end with the
// real client: no feed → unhealthy, feed → healthy, silence past the window →
// unhealthy, STOPPING → disarmed.
func TestNotifyProbeLifecycle(t *testing.T) {
	nl, err := ListenNotify(t.TempDir(), 80*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer nl.Close()
	if err := nl.Probe(); err == nil {
		t.Fatal("probe should fail before any feed")
	}

	client := sdnotify.At(nl.Path())
	if err := client.Ready(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "ready counted as liveness", func() bool { return nl.Probe() == nil })
	ready, _, _ := nl.State()
	if !ready {
		t.Fatal("READY=1 not recorded")
	}

	waitFor(t, "feed silence past window", func() bool { return nl.Probe() != nil })

	if err := client.Feed(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "feed restores health", func() bool { return nl.Probe() == nil })

	if err := client.Stopping(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stopping disarms", func() bool {
		_, stopping, _ := nl.State()
		return stopping
	})
	time.Sleep(100 * time.Millisecond) // well past the window
	if err := nl.Probe(); err != nil {
		t.Fatalf("probe after STOPPING = %v, want disarmed nil", err)
	}

	nl.Reset(0)
	if err := nl.Probe(); err == nil {
		t.Fatal("reset should rearm the probe for the next child")
	}
}

func TestNotifyTriggerDelivery(t *testing.T) {
	nl, err := ListenNotify(t.TempDir(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nl.Close()
	if err := sdnotify.At(nl.Path()).Trigger(); err != nil {
		t.Fatal(err)
	}
	select {
	case cause := <-nl.Trigger():
		if cause != CauseWatchdogTrigger {
			t.Fatalf("cause = %q", cause)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("trigger datagram not delivered")
	}
}

func TestNotifyEnv(t *testing.T) {
	nl, err := ListenNotify(t.TempDir(), 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nl.Close()
	env := strings.Join(nl.Env(), "\n")
	if !strings.Contains(env, sdnotify.EnvSocket+"="+nl.Path()) {
		t.Fatalf("env missing socket: %s", env)
	}
	if !strings.Contains(env, sdnotify.EnvWatchdogUsec+"=3000000") {
		t.Fatalf("env missing usec: %s", env)
	}
}

// TestTriggerForcesRestart: a WATCHDOG=trigger datagram makes the supervisor
// kill and restart the child, recording the watchdog-trigger cause — the
// process-boundary rung of the escalation ladder.
func TestTriggerForcesRestart(t *testing.T) {
	nl, err := ListenNotify(t.TempDir(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nl.Close()
	l := newLedger(t)
	cfg := testConfig("/bin/sh", "-c", "sleep 60")
	cfg.Ledger = l
	cfg.Env = nl.Env()
	cfg.HealthProbe = nl.Probe
	cfg.ProbeEvery = 10 * time.Millisecond
	cfg.Trigger = nl.Trigger()
	cfg.OnSpawn = nl.Reset
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()

	waitFor(t, "first spawn", func() bool { return s.Spawns() == 1 })
	// The "daemon" feeds once, then its recovery gives up and fires a trigger.
	client := sdnotify.At(nl.Path())
	if err := client.Feed(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "feed observed", func() bool { return s.Restarts() == 0 && nl.Probe() == nil })
	if err := client.Trigger(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "trigger restart", func() bool { return s.Spawns() == 2 })
	// The replacement feeds; the episode closes healthy.
	waitFor(t, "episode closed after replacement feeds", func() bool {
		if err := client.Feed(); err != nil {
			return false
		}
		eps := l.Episodes()
		return len(eps) == 1 && eps[0].Closed
	})
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run = %v", err)
	}
	e := l.Episodes()[0]
	if e.Cause != CauseWatchdogTrigger || e.Resolution != episode.ResolutionHealthy {
		t.Fatalf("episode = %+v", e)
	}
}
