// Package episode is the persistent outage-episode ledger of the supervision
// plane: a durable, queryable record of every period a supervised daemon was
// down, surviving the very restarts that resolve it.
//
// An episode opens when the supervisor observes the daemon leave service
// (crash, kill signal, watchdog-trigger exit, or a stuck health probe) and
// closes when a replacement instance is healthy again — or when the
// restart-storm breaker gives up. Respawns that die before health close
// nothing; they increment the open episode's restart count, so one outage is
// one episode no matter how many attempts it took.
//
// Episode state machine:
//
//	       daemon leaves service
//	(none) ────────────────────────▶ open ──┐ respawn dies before healthy
//	                                   ▲    │ (restart record, count++)
//	                                   └────┘
//	     open ── replacement healthy ─────▶ closed (resolution "healthy")
//	     open ── storm breaker trips ─────▶ closed (resolution "gave-up")
//
// Persistence is an append-only JSONL file of open/restart/close records.
// On Open the ledger replays the file; episodes with no close record are
// *adopted* — they stay open in memory and the new supervisor closes them
// once it has the daemon healthy, so an outage that outlives the supervisor
// itself is still recorded as exactly one open/close pair.
package episode

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Record kinds in the JSONL ledger.
const (
	KindOpen    = "open"
	KindRestart = "restart"
	KindClose   = "close"
)

// Close resolutions.
const (
	ResolutionHealthy = "healthy" // a replacement instance reached health
	ResolutionGaveUp  = "gave-up" // the restart-storm breaker tripped
)

// Record is one JSONL ledger line. Durations are pinned to nanosecond
// integers so the on-disk schema is stable across Go versions.
type Record struct {
	Kind   string    `json:"kind"`
	ID     int64     `json:"id"`
	Daemon string    `json:"daemon"`
	Time   time.Time `json:"time"`
	// Cause classifies why the episode opened (open records): "crash",
	// "signal:killed", "watchdog-trigger", "stuck", ...
	Cause string `json:"cause,omitempty"`
	// Restarts is the total respawns during the episode (close records).
	Restarts int `json:"restarts,omitempty"`
	// Resolution says how the episode ended (close records).
	Resolution string `json:"resolution,omitempty"`
	// OutageNS is open→close (close records); HealthyNS is the last
	// respawn→healthy recovery time (close records with a healthy probe).
	OutageNS  int64 `json:"outage_ns,omitempty"`
	HealthyNS int64 `json:"healthy_ns,omitempty"`
	// Adopted marks a close written by a different supervisor run than the
	// one that opened the episode.
	Adopted bool `json:"adopted,omitempty"`
}

// Episode is the assembled view of one outage.
type Episode struct {
	ID       int64     `json:"id"`
	Daemon   string    `json:"daemon"`
	Cause    string    `json:"cause"`
	OpenedAt time.Time `json:"opened_at"`
	Restarts int       `json:"restarts"`
	Closed   bool      `json:"closed"`
	ClosedAt time.Time `json:"closed_at"`
	// Resolution, Outage, and Healthy are meaningful once Closed.
	Resolution string `json:"resolution,omitempty"`
	OutageNS   int64  `json:"outage_ns,omitempty"`
	HealthyNS  int64  `json:"healthy_ns,omitempty"`
	Adopted    bool   `json:"adopted,omitempty"`
}

// Ledger is the writing side, owned by one supervisor at a time. All methods
// are safe for concurrent use. Appends are flushed per record — an episode
// boundary that only exists in a buffer would not survive the crashes this
// ledger exists to record.
type Ledger struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	nextID   int64
	episodes []*Episode // replayed + live, in open order
	open     map[int64]*Episode
	adopted  map[int64]bool // IDs opened by an earlier supervisor run
	torn     int            // malformed/torn lines skipped during replay
}

// Open replays the ledger at path (creating it if absent) and returns it
// ready for appends. Unclosed episodes are adopted: they stay open and the
// caller is expected to close them once the daemon is back in service.
func Open(path string) (*Ledger, error) {
	l := &Ledger{
		path:    path,
		open:    make(map[int64]*Episode),
		adopted: make(map[int64]bool),
	}
	records, torn, err := readRecords(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	l.torn = torn
	l.episodes, l.open = assemble(records)
	for id := range l.open {
		l.adopted[id] = true
	}
	for _, e := range l.episodes {
		if e.ID >= l.nextID {
			l.nextID = e.ID + 1
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("episode: open ledger: %w", err)
	}
	l.f = f
	return l, nil
}

// Path returns the ledger file path.
func (l *Ledger) Path() string {
	return l.path
}

// CloseFile releases the ledger file. Open episodes stay open on disk — that
// is the point: the next supervisor adopts them.
func (l *Ledger) CloseFile() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// OpenEpisode records the start of an outage and returns its ID.
func (l *Ledger) OpenEpisode(daemon, cause string, at time.Time) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	id := l.nextID
	l.nextID++
	e := &Episode{ID: id, Daemon: daemon, Cause: cause, OpenedAt: at}
	l.episodes = append(l.episodes, e)
	l.open[id] = e
	return id, l.append(Record{Kind: KindOpen, ID: id, Daemon: daemon, Cause: cause, Time: at})
}

// Restart records one respawn attempt during an open episode.
func (l *Ledger) Restart(id int64, at time.Time) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.open[id]
	if !ok {
		return fmt.Errorf("episode: restart on unknown or closed episode %d", id)
	}
	e.Restarts++
	return l.append(Record{Kind: KindRestart, ID: id, Daemon: e.Daemon, Time: at})
}

// CloseEpisode ends an open episode. healthyDelay is the final
// respawn→healthy recovery time (0 when the close is not health-driven).
func (l *Ledger) CloseEpisode(id int64, resolution string, at time.Time, healthyDelay time.Duration) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.open[id]
	if !ok {
		return fmt.Errorf("episode: close on unknown or closed episode %d", id)
	}
	delete(l.open, id)
	e.Closed = true
	e.ClosedAt = at
	e.Resolution = resolution
	e.OutageNS = int64(at.Sub(e.OpenedAt))
	e.HealthyNS = int64(healthyDelay)
	e.Adopted = l.adopted[id]
	return l.append(Record{
		Kind: KindClose, ID: id, Daemon: e.Daemon, Time: at,
		Restarts: e.Restarts, Resolution: resolution,
		OutageNS: e.OutageNS, HealthyNS: e.HealthyNS, Adopted: e.Adopted,
	})
}

// OpenFor returns the open episode for daemon, or nil. With one supervisor
// per daemon there is at most one.
func (l *Ledger) OpenFor(daemon string) *Episode {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.open {
		if e.Daemon == daemon {
			cp := *e
			return &cp
		}
	}
	return nil
}

// Episodes returns a copy of every episode, oldest first.
func (l *Ledger) Episodes() []Episode {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Episode, 0, len(l.episodes))
	for _, e := range l.episodes {
		out = append(out, *e)
	}
	return out
}

// TornRecords reports malformed or torn-tail lines skipped during replay.
func (l *Ledger) TornRecords() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.torn
}

// append writes one record and flushes it to the OS.
func (l *Ledger) append(r Record) error {
	if l.f == nil {
		return errors.New("episode: ledger file is closed")
	}
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if _, err := l.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("episode: append: %w", err)
	}
	return l.f.Sync()
}

// Read loads the ledger at path read-only and assembles its episodes, oldest
// first. Lenient: malformed lines and a torn tail are skipped (and counted),
// since a live supervisor may be mid-append. A missing file is an empty
// history, not an error — the daemon simply has no recorded outages yet.
func Read(path string) ([]Episode, int, error) {
	records, torn, err := readRecords(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	eps, _ := assemble(records)
	out := make([]Episode, 0, len(eps))
	for _, e := range eps {
		out = append(out, *e)
	}
	return out, torn, nil
}

// readRecords parses the JSONL file leniently, counting skipped lines.
func readRecords(path string) ([]Record, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var (
		records []Record
		torn    int
	)
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			var rec Record
			if jsonErr := json.Unmarshal(line, &rec); jsonErr != nil || rec.Kind == "" {
				torn++
			} else {
				records = append(records, rec)
			}
		}
		if err == io.EOF {
			return records, torn, nil
		}
		if err != nil {
			return records, torn, err
		}
	}
}

// assemble folds records into episodes plus the still-open subset.
func assemble(records []Record) ([]*Episode, map[int64]*Episode) {
	var eps []*Episode
	open := make(map[int64]*Episode)
	byID := make(map[int64]*Episode)
	for _, r := range records {
		switch r.Kind {
		case KindOpen:
			e := &Episode{ID: r.ID, Daemon: r.Daemon, Cause: r.Cause, OpenedAt: r.Time}
			eps = append(eps, e)
			open[r.ID] = e
			byID[r.ID] = e
		case KindRestart:
			if e := open[r.ID]; e != nil {
				e.Restarts++
			}
		case KindClose:
			e := byID[r.ID]
			if e == nil || e.Closed {
				continue
			}
			delete(open, r.ID)
			e.Closed = true
			e.ClosedAt = r.Time
			e.Resolution = r.Resolution
			e.Restarts = r.Restarts
			e.OutageNS = r.OutageNS
			e.HealthyNS = r.HealthyNS
			e.Adopted = r.Adopted
		}
	}
	return eps, open
}

// Snapshot is the operator-facing summary served in the /watchdog JSON
// report and rendered by wdstat.
type Snapshot struct {
	// Total and Open count all recorded episodes and the still-open subset.
	Total int `json:"total"`
	Open  int `json:"open"`
	// Episodes holds the most recent entries, oldest first (capped).
	Episodes []Episode `json:"episodes,omitempty"`
	// TornRecords counts malformed ledger lines skipped while reading.
	TornRecords int `json:"torn_records,omitempty"`
}

// SnapshotOf summarizes eps, retaining at most max entries (0 = all).
func SnapshotOf(eps []Episode, torn, max int) *Snapshot {
	s := &Snapshot{Total: len(eps), TornRecords: torn}
	for _, e := range eps {
		if !e.Closed {
			s.Open++
		}
	}
	if max > 0 && len(eps) > max {
		eps = eps[len(eps)-max:]
	}
	s.Episodes = append(s.Episodes, eps...)
	return s
}
