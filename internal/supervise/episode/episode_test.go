package episode

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func t0() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }

func TestOpenRestartClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "episodes.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	at := t0()
	id, err := l.OpenEpisode("kvsd", "signal:killed", at)
	if err != nil {
		t.Fatal(err)
	}
	if e := l.OpenFor("kvsd"); e == nil || e.ID != id {
		t.Fatalf("OpenFor = %+v, want open episode %d", e, id)
	}
	if err := l.Restart(id, at.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := l.CloseEpisode(id, ResolutionHealthy, at.Add(3*time.Second), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if e := l.OpenFor("kvsd"); e != nil {
		t.Fatalf("episode still open after close: %+v", e)
	}
	eps := l.Episodes()
	if len(eps) != 1 {
		t.Fatalf("got %d episodes, want 1", len(eps))
	}
	e := eps[0]
	if !e.Closed || e.Restarts != 1 || e.Resolution != ResolutionHealthy {
		t.Fatalf("episode = %+v", e)
	}
	if e.OutageNS != int64(3*time.Second) || e.HealthyNS != int64(2*time.Second) {
		t.Fatalf("durations = outage %d healthy %d", e.OutageNS, e.HealthyNS)
	}
	if e.Adopted {
		t.Fatal("same-run close must not be marked adopted")
	}
	if err := l.CloseFile(); err != nil {
		t.Fatal(err)
	}

	// The read-only view sees the same history.
	got, torn, err := Read(path)
	if err != nil || torn != 0 {
		t.Fatalf("Read: %v (torn %d)", err, torn)
	}
	if len(got) != 1 || got[0] != e {
		t.Fatalf("Read = %+v, want %+v", got, e)
	}
}

// TestAdoptionAcrossRestart: an episode left open by a dead supervisor is
// adopted by the next one and closed with the adopted flag — one open/close
// pair even though two supervisor processes touched it.
func TestAdoptionAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "episodes.jsonl")
	l1, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := l1.OpenEpisode("kvsd", "crash", t0())
	if err != nil {
		t.Fatal(err)
	}
	if err := l1.CloseFile(); err != nil { // supervisor dies mid-outage
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.CloseFile()
	adopted := l2.OpenFor("kvsd")
	if adopted == nil || adopted.ID != id {
		t.Fatalf("adopted = %+v, want open episode %d", adopted, id)
	}
	if err := l2.CloseEpisode(id, ResolutionHealthy, t0().Add(10*time.Second), time.Second); err != nil {
		t.Fatal(err)
	}
	eps := l2.Episodes()
	if len(eps) != 1 || !eps[0].Closed || !eps[0].Adopted {
		t.Fatalf("episodes = %+v, want one closed adopted episode", eps)
	}

	// A fresh episode in the new run allocates a new ID past the replayed one.
	id2, err := l2.OpenEpisode("kvsd", "stuck", t0().Add(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if id2 <= id {
		t.Fatalf("new ID %d not past replayed %d", id2, id)
	}
}

func TestLenientReadAndMissingFile(t *testing.T) {
	dir := t.TempDir()
	if eps, torn, err := Read(filepath.Join(dir, "nope.jsonl")); err != nil || len(eps) != 0 || torn != 0 {
		t.Fatalf("missing file: eps=%v torn=%d err=%v", eps, torn, err)
	}

	path := filepath.Join(dir, "episodes.jsonl")
	content := `{"kind":"open","id":0,"daemon":"kvsd","cause":"crash","time":"2026-08-08T12:00:00Z"}
not json at all
{"kind":"close","id":0,"daemon":"kvsd","time":"2026-08-08T12:00:05Z","restarts":1,"resolution":"healthy","outage_ns":5000000000}
{"kind":"open","id":1,"daemon":"kvsd","cause":"stuck","time":"2026-08-08T12:01:00Z"}
{"kind":"open","id":2,"daemon":`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	eps, torn, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 2 {
		t.Fatalf("torn = %d, want 2 (garbage line + torn tail)", torn)
	}
	if len(eps) != 2 || !eps[0].Closed || eps[1].Closed {
		t.Fatalf("eps = %+v, want one closed + one open", eps)
	}

	snap := SnapshotOf(eps, torn, 1)
	if snap.Total != 2 || snap.Open != 1 || snap.TornRecords != 2 || len(snap.Episodes) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Episodes[0].ID != 1 {
		t.Fatalf("snapshot kept %d, want most recent episode", snap.Episodes[0].ID)
	}
}

func TestCloseUnknownEpisode(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "e.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.CloseFile()
	if err := l.CloseEpisode(99, ResolutionHealthy, t0(), 0); err == nil {
		t.Fatal("closing an unknown episode should error")
	}
	if err := l.Restart(99, t0()); err == nil {
		t.Fatal("restarting an unknown episode should error")
	}
}
