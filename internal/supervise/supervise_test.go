package supervise

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"gowatchdog/internal/supervise/episode"
)

func newLedger(t *testing.T) *episode.Ledger {
	t.Helper()
	l, err := episode.Open(filepath.Join(t.TempDir(), "episodes.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.CloseFile() })
	return l
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func testConfig(cmd ...string) Config {
	return Config{
		Command:       cmd,
		Stdout:        io.Discard,
		Stderr:        io.Discard,
		BackoffBase:   5 * time.Millisecond,
		BackoffCap:    20 * time.Millisecond,
		JitterSeed:    42,
		RestartWindow: 30 * time.Second,
		TermGrace:     2 * time.Second,
	}
}

func TestCleanExitEndsSupervision(t *testing.T) {
	s, err := New(testConfig("/bin/sh", "-c", "exit 0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run = %v, want nil on clean exit", err)
	}
	if s.Spawns() != 1 || s.Restarts() != 0 {
		t.Fatalf("spawns=%d restarts=%d, want 1/0", s.Spawns(), s.Restarts())
	}
}

// TestStormBreaker: a crash-looping child trips the breaker after MaxRestarts
// deaths, Run surfaces *StormError, and the ledger holds exactly one episode
// closed gave-up with every intermediate respawn counted.
func TestStormBreaker(t *testing.T) {
	l := newLedger(t)
	cfg := testConfig("/bin/sh", "-c", "exit 1")
	cfg.MaxRestarts = 3
	cfg.Ledger = l
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runErr := s.Run(context.Background())
	var storm *StormError
	if !errors.As(runErr, &storm) {
		t.Fatalf("Run = %v, want *StormError", runErr)
	}
	if storm.Deaths != 3 || storm.LastCause != "exit:1" {
		t.Fatalf("storm = %+v", storm)
	}
	eps := l.Episodes()
	if len(eps) != 1 {
		t.Fatalf("got %d episodes, want 1: %+v", len(eps), eps)
	}
	e := eps[0]
	if !e.Closed || e.Resolution != episode.ResolutionGaveUp || e.Cause != "exit:1" {
		t.Fatalf("episode = %+v", e)
	}
	// 3 deaths = initial spawn + 2 respawns during the open episode.
	if e.Restarts != 2 {
		t.Fatalf("episode restarts = %d, want 2", e.Restarts)
	}
}

// TestKillRestartHealthyEpisode: SIGKILLing a healthy child opens an episode,
// the respawn's first probe success closes it, and a graceful cancel leaves
// the ledger with exactly one open/close pair.
func TestKillRestartHealthyEpisode(t *testing.T) {
	l := newLedger(t)
	cfg := testConfig("/bin/sh", "-c", "sleep 60")
	cfg.Ledger = l
	cfg.HealthProbe = func() error { return nil }
	cfg.ProbeEvery = 10 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()

	waitFor(t, "first spawn", func() bool { return s.Spawns() == 1 })
	pid := s.Pid()
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "respawn", func() bool { return s.Spawns() == 2 })
	waitFor(t, "episode closed healthy", func() bool {
		eps := l.Episodes()
		return len(eps) == 1 && eps[0].Closed
	})
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run = %v, want nil after cancel", err)
	}

	e := l.Episodes()[0]
	if e.Cause != "signal:killed" || e.Resolution != episode.ResolutionHealthy {
		t.Fatalf("episode = %+v", e)
	}
	if e.Restarts != 1 || e.HealthyNS <= 0 || e.OutageNS <= 0 {
		t.Fatalf("episode = %+v, want 1 restart and positive durations", e)
	}
}

// TestStuckProbeKill: a child whose health probe wedges is declared stuck,
// killed, and restarted; the episode records the stuck cause and closes once
// the replacement probes healthy.
func TestStuckProbeKill(t *testing.T) {
	l := newLedger(t)
	var wedged atomic.Bool
	cfg := testConfig("/bin/sh", "-c", "sleep 60")
	cfg.Ledger = l
	cfg.HealthProbe = func() error {
		if wedged.Load() {
			return fmt.Errorf("probe wedged")
		}
		return nil
	}
	cfg.ProbeEvery = 10 * time.Millisecond
	cfg.StuckAfter = 50 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()

	waitFor(t, "first spawn", func() bool { return s.Spawns() == 1 })
	wedged.Store(true)
	waitFor(t, "stuck kill + respawn", func() bool { return s.Spawns() == 2 })
	wedged.Store(false)
	waitFor(t, "episode closed", func() bool {
		eps := l.Episodes()
		return len(eps) == 1 && eps[0].Closed
	})
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run = %v, want nil after cancel", err)
	}

	e := l.Episodes()[0]
	if e.Cause != CauseStuck || e.Resolution != episode.ResolutionHealthy {
		t.Fatalf("episode = %+v", e)
	}
}

// TestWatchdogTriggerCause: a child exiting with ExitWatchdogTrigger is
// restarted with the watchdog-trigger cause — the process-level hand-off from
// in-process escalation (recovery.WithEscalationExit) to external restart.
func TestWatchdogTriggerCause(t *testing.T) {
	l := newLedger(t)
	cfg := testConfig("/bin/sh", "-c", fmt.Sprintf("exit %d", ExitWatchdogTrigger))
	cfg.MaxRestarts = 2
	cfg.Ledger = l
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var storm *StormError
	if err := s.Run(context.Background()); !errors.As(err, &storm) {
		t.Fatalf("Run = %v, want *StormError", err)
	}
	if storm.LastCause != CauseWatchdogTrigger {
		t.Fatalf("cause = %q, want %q", storm.LastCause, CauseWatchdogTrigger)
	}
}

// TestAdoptionAcrossSupervisors: a supervisor dying mid-outage leaves the
// episode open; the next supervisor adopts and closes it — one open/close
// pair across two supervisor processes.
func TestAdoptionAcrossSupervisors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "episodes.jsonl")
	l1, err := episode.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l1.OpenEpisode("sh", "signal:killed", time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := l1.CloseFile(); err != nil { // first supervisor dies here
		t.Fatal(err)
	}

	l2, err := episode.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.CloseFile()
	cfg := testConfig("/bin/sh", "-c", "sleep 60")
	cfg.Name = "sh"
	cfg.Ledger = l2
	cfg.HealthProbe = func() error { return nil }
	cfg.ProbeEvery = 10 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	waitFor(t, "adopted episode closed", func() bool {
		eps := l2.Episodes()
		return len(eps) == 1 && eps[0].Closed
	})
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run = %v", err)
	}
	e := l2.Episodes()[0]
	if !e.Adopted || e.Resolution != episode.ResolutionHealthy || e.Cause != "signal:killed" {
		t.Fatalf("episode = %+v, want adopted healthy close", e)
	}
}

// TestChildEnvCarriesLedgerPath: supervised children learn the ledger path
// via WDSUPER_EPISODES so their /watchdog report can surface outage history.
func TestChildEnvCarriesLedgerPath(t *testing.T) {
	l := newLedger(t)
	var out bytes.Buffer
	cfg := testConfig("/bin/sh", "-c", "echo -n $WDSUPER_EPISODES")
	cfg.Ledger = l
	cfg.Stdout = &out
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != l.Path() {
		t.Fatalf("child saw WDSUPER_EPISODES=%q, want %q", got, l.Path())
	}
}
