// Package supervise is the crash-restart supervisor of the production ops
// plane: the rung of the recovery ladder that sits *outside* the supervised
// process. The paper's watchdog catches partial failures and recovery repairs
// them in-process (§5.2), but the one failure mode that stack cannot survive
// is its own death — a crash, a kill, or an escalation that concludes the
// process is beyond repair (recovery.WithEscalationExit). The supervisor
// closes that gap the way real deployments do (systemd Restart=on-failure,
// the poison-pill restart loop): spawn the daemon, restart it on crash or
// watchdog-trigger exit with capped exponential backoff and seeded jitter,
// kill-and-restart it when its health probe wedges, and give up with a
// distinct error once a restart storm shows restarting is not helping.
//
// Every outage is recorded in a persistent episode ledger (see the episode
// subpackage) so the history survives both the daemon's restarts and the
// supervisor's own.
package supervise

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"gowatchdog/internal/supervise/episode"
)

// ExitWatchdogTrigger is the conventional exit code for "in-process recovery
// gave up; restart me" (recovery.WithEscalationExit). 70 is EX_SOFTWARE from
// sysexits(3). The supervisor restarts on it like any crash but records the
// cause as a watchdog trigger, so operators can tell self-diagnosed exits
// from plain crashes in the episode ledger.
const ExitWatchdogTrigger = 70

// waitDelay bounds how long Wait keeps draining the child's output pipes
// after the process itself has exited (grandchildren may inherit them).
const waitDelay = 500 * time.Millisecond

// EnvEpisodes is set in the child's environment to the episode-ledger path,
// so a supervised daemon can surface its own outage history on /watchdog
// (wdruntime reads it as the -episodes default).
const EnvEpisodes = "WDSUPER_EPISODES"

// Causes recorded on episode open. Signal deaths are recorded as
// "signal:<name>" and other nonzero exits as "exit:<code>".
const (
	CauseWatchdogTrigger = "watchdog-trigger"
	CauseStuck           = "stuck"
	CauseSpawnError      = "spawn-error"
)

// StormError is returned by Run when the restart-storm breaker trips: the
// child died MaxRestarts times within RestartWindow, so restarting is not
// helping and the failure must escalate past this supervisor.
type StormError struct {
	Daemon    string
	Deaths    int
	Window    time.Duration
	LastCause string
}

// Error implements error.
func (e *StormError) Error() string {
	return fmt.Sprintf("supervise: %s died %d times within %v (last cause %s); giving up",
		e.Daemon, e.Deaths, e.Window, e.LastCause)
}

// Config parameterizes one Supervisor.
type Config struct {
	// Name labels the daemon in logs and episodes (default: base name of
	// Command[0]).
	Name string
	// Command is the child argv; Command[0] is the executable.
	Command []string
	// Env entries are appended to the inherited environment. The ledger path
	// is additionally exported as WDSUPER_EPISODES when a Ledger is set.
	Env []string
	// Stdout/Stderr receive the child's output (default: inherited).
	Stdout, Stderr io.Writer

	// BackoffBase is the first restart delay (default 200ms); successive
	// deaths double it up to BackoffCap (default 10s). A child that reaches
	// health resets the ladder.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// JitterFrac spreads each delay by ±frac (default 0.2; negative
	// disables). JitterSeed makes the spread reproducible (default 1).
	JitterFrac float64
	JitterSeed int64

	// MaxRestarts is the storm-breaker threshold: give up once the child has
	// died this many times within RestartWindow (default 5 within 1 minute).
	MaxRestarts   int
	RestartWindow time.Duration

	// HealthProbe, when set, is polled every ProbeEvery (default 1s); nil
	// means healthy. A child whose probe has not succeeded for StuckAfter
	// (default 10×ProbeEvery) is declared stuck, SIGKILLed, and restarted —
	// the restart-on-stuck control loop that catches hangs no exit status
	// ever reports.
	HealthProbe func() error
	ProbeEvery  time.Duration
	StuckAfter  time.Duration
	// StableAfter is the probe-free health criterion: without a HealthProbe,
	// a child that stays alive this long is considered back in service
	// (default 5s).
	StableAfter time.Duration

	// TermGrace bounds a graceful stop: SIGTERM, wait this long, SIGKILL
	// (default 5s).
	TermGrace time.Duration

	// Trigger, when set, delivers externally-diagnosed failure causes — e.g.
	// a WATCHDOG=trigger datagram from the child's own escalation ladder.
	// Each receive kills the current child immediately and opens an episode
	// with the received cause (empty string means "watchdog-trigger").
	Trigger <-chan string
	// OnSpawn is called with each new child's pid; notify listeners use it
	// to reset per-child feed state so a dead child's feeds cannot vouch for
	// its replacement.
	OnSpawn func(pid int)

	// Ledger, when set, records outage episodes. The supervisor adopts any
	// episode a previous run left open and closes it on the next health.
	Ledger *episode.Ledger
	// Logf receives supervisor log lines (default: discarded).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Command) == 0 {
		return c, errors.New("supervise: empty command")
	}
	if c.Name == "" {
		c.Name = filepath.Base(c.Command[0])
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 200 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 10 * time.Second
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.2
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 5
	}
	if c.RestartWindow <= 0 {
		c.RestartWindow = time.Minute
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = time.Second
	}
	if c.StuckAfter <= 0 {
		c.StuckAfter = 10 * c.ProbeEvery
	}
	if c.StableAfter <= 0 {
		c.StableAfter = 5 * time.Second
	}
	if c.TermGrace <= 0 {
		c.TermGrace = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// Supervisor runs one daemon under crash-restart supervision. Construct with
// New, drive with Run; Pid/Spawns/Restarts are safe to read concurrently
// (fault campaigns use them to aim signals at the current child).
type Supervisor struct {
	cfg Config

	rngMu sync.Mutex
	rng   *rand.Rand

	mu       sync.Mutex
	pid      int
	spawns   int64
	restarts int64
}

// New validates cfg and returns a Supervisor.
func New(cfg Config) (*Supervisor, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Supervisor{cfg: cfg, rng: rand.New(rand.NewSource(cfg.JitterSeed))}, nil
}

// Pid returns the current child's pid (0 before the first spawn).
func (s *Supervisor) Pid() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pid
}

// Spawns returns how many children have been started.
func (s *Supervisor) Spawns() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spawns
}

// Restarts returns how many spawns were restarts (spawns minus the first).
func (s *Supervisor) Restarts() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// childOutcome describes why one child stopped running.
type childOutcome struct {
	cause string // "" for a clean exit(0)
}

// Run supervises the daemon until it exits cleanly (returns nil), the
// context is cancelled (child is terminated gracefully; returns nil), or the
// restart-storm breaker trips (returns *StormError). Any other error is an
// unrecoverable supervisor fault (e.g. the episode ledger failing).
func (s *Supervisor) Run(ctx context.Context) error {
	var (
		openID    int64 = -1
		deaths    []time.Time
		backoffN  int
		lastCause string
	)
	if l := s.cfg.Ledger; l != nil {
		if e := l.OpenFor(s.cfg.Name); e != nil {
			openID = e.ID
			s.cfg.Logf("supervise: adopted open episode %d (%s, opened %s)",
				e.ID, e.Cause, e.OpenedAt.Format(time.RFC3339))
		}
	}

	for {
		if ctx.Err() != nil {
			return nil
		}
		outcome, healthy, err := s.superviseOne(ctx, &openID, backoffN > 0 || openID >= 0)
		if err != nil {
			return err
		}
		if healthy {
			backoffN = 0
		}
		if ctx.Err() != nil {
			return nil
		}
		if outcome.cause == "" {
			// Clean exit: supervision is complete. A still-open episode means
			// the daemon chose to stop before ever reaching health; close it
			// so the ledger never dangles.
			if openID >= 0 {
				_ = s.closeEpisode(openID, episode.ResolutionHealthy, 0)
			}
			s.cfg.Logf("supervise: %s exited cleanly", s.cfg.Name)
			return nil
		}
		lastCause = outcome.cause

		now := time.Now()
		recent := deaths[:0]
		for _, t := range deaths {
			if now.Sub(t) <= s.cfg.RestartWindow {
				recent = append(recent, t)
			}
		}
		deaths = append(recent, now)

		if openID < 0 && s.cfg.Ledger != nil {
			id, err := s.cfg.Ledger.OpenEpisode(s.cfg.Name, outcome.cause, now)
			if err != nil {
				return fmt.Errorf("supervise: ledger: %w", err)
			}
			openID = id
		}
		s.cfg.Logf("supervise: %s down (%s), death %d/%d in window",
			s.cfg.Name, outcome.cause, len(deaths), s.cfg.MaxRestarts)

		if len(deaths) >= s.cfg.MaxRestarts {
			if openID >= 0 {
				_ = s.closeEpisode(openID, episode.ResolutionGaveUp, 0)
			}
			return &StormError{
				Daemon: s.cfg.Name, Deaths: len(deaths),
				Window: s.cfg.RestartWindow, LastCause: lastCause,
			}
		}

		delay := s.backoff(backoffN)
		backoffN++
		s.cfg.Logf("supervise: restarting %s in %v", s.cfg.Name, delay.Round(time.Millisecond))
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil
		}
	}
}

// superviseOne runs a single child to completion: spawn, watch health, wait
// for death (or kill on stuck / context cancel). It closes the open episode
// the moment the child reaches health. isRestart marks spawns that follow a
// death or adoption, for the episode restart count.
func (s *Supervisor) superviseOne(ctx context.Context, openID *int64, isRestart bool) (childOutcome, bool, error) {
	cmd := exec.Command(s.cfg.Command[0], s.cfg.Command[1:]...)
	// Children get their own process group so restarts can signal the whole
	// tree, and WaitDelay bounds the pipe drain after death — a grandchild
	// holding the stdout pipe must not hide the daemon's own exit from the
	// supervisor.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	cmd.WaitDelay = waitDelay
	cmd.Env = append(os.Environ(), s.cfg.Env...)
	if s.cfg.Ledger != nil {
		cmd.Env = append(cmd.Env, EnvEpisodes+"="+s.cfg.Ledger.Path())
	}
	if cmd.Stdout = s.cfg.Stdout; cmd.Stdout == nil {
		cmd.Stdout = os.Stdout
	}
	if cmd.Stderr = s.cfg.Stderr; cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		s.cfg.Logf("supervise: spawn %s: %v", s.cfg.Name, err)
		return childOutcome{cause: CauseSpawnError}, false, nil
	}
	spawnedAt := time.Now()
	s.mu.Lock()
	s.pid = cmd.Process.Pid
	s.spawns++
	if s.spawns > 1 {
		s.restarts++
	}
	s.mu.Unlock()
	s.cfg.Logf("supervise: %s up (pid %d)", s.cfg.Name, cmd.Process.Pid)
	if s.cfg.OnSpawn != nil {
		s.cfg.OnSpawn(cmd.Process.Pid)
	}
	if isRestart && *openID >= 0 && s.cfg.Ledger != nil {
		_ = s.cfg.Ledger.Restart(*openID, spawnedAt)
	}

	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()
	trigger := s.cfg.Trigger

	var probeC <-chan time.Time
	var stableC <-chan time.Time
	if s.cfg.HealthProbe != nil {
		t := time.NewTicker(s.cfg.ProbeEvery)
		defer t.Stop()
		probeC = t.C
	} else {
		stableC = time.After(s.cfg.StableAfter)
	}

	var (
		lastOK  = spawnedAt
		healthy bool
		pending string // cause of a kill we initiated (stuck / trigger)
	)
	markHealthy := func() error {
		healthy = true
		if *openID >= 0 && s.cfg.Ledger != nil {
			if err := s.closeEpisode(*openID, episode.ResolutionHealthy, time.Since(spawnedAt)); err != nil {
				return err
			}
			*openID = -1
		}
		return nil
	}
	// putDown opens the episode (the outage began at the diagnosis, not when
	// the kill lands) and kills the child; the exit then surfaces on waitCh.
	putDown := func(cause string, at time.Time) error {
		pending = cause
		if *openID < 0 && s.cfg.Ledger != nil {
			id, err := s.cfg.Ledger.OpenEpisode(s.cfg.Name, cause, at)
			if err != nil {
				return fmt.Errorf("supervise: ledger: %w", err)
			}
			*openID = id
		}
		signalGroup(cmd, syscall.SIGKILL)
		return nil
	}

	for {
		select {
		case <-ctx.Done():
			s.terminate(cmd, waitCh)
			return childOutcome{}, healthy, nil

		case err := <-waitCh:
			return childOutcome{cause: s.classify(err, pending)}, healthy, nil

		case cause, ok := <-trigger:
			// Externally-diagnosed failure (e.g. a WATCHDOG=trigger datagram):
			// restart immediately, recording the reported cause.
			if !ok {
				trigger = nil // closed channel: stop selecting on it
				continue
			}
			if pending != "" {
				continue
			}
			if cause == "" {
				cause = CauseWatchdogTrigger
			}
			s.cfg.Logf("supervise: %s trigger (%s); killing pid %d", s.cfg.Name, cause, cmd.Process.Pid)
			if err := putDown(cause, time.Now()); err != nil {
				return childOutcome{}, healthy, err
			}

		case <-stableC:
			// No probe configured: surviving StableAfter is the health signal.
			if err := markHealthy(); err != nil {
				return childOutcome{}, healthy, err
			}
			stableC = nil

		case now := <-probeC:
			if pending != "" {
				continue // already killed; just waiting for the exit status
			}
			if err := s.cfg.HealthProbe(); err == nil {
				lastOK = now
				if !healthy {
					if err := markHealthy(); err != nil {
						return childOutcome{}, healthy, err
					}
				}
			} else if now.Sub(lastOK) > s.cfg.StuckAfter {
				// The probe has been failing too long: the child is wedged in
				// a way no exit status will ever report.
				s.cfg.Logf("supervise: %s stuck (probe failing %v, last: %v); killing pid %d",
					s.cfg.Name, now.Sub(lastOK).Round(time.Millisecond), err, cmd.Process.Pid)
				if err := putDown(CauseStuck, now); err != nil {
					return childOutcome{}, healthy, err
				}
			}
		}
	}
}

// terminate stops the child gracefully: SIGCONT (in case it is stopped) +
// SIGTERM, then SIGKILL after TermGrace.
func (s *Supervisor) terminate(cmd *exec.Cmd, waitCh <-chan error) {
	signalGroup(cmd, syscall.SIGCONT)
	signalGroup(cmd, syscall.SIGTERM)
	select {
	case <-waitCh:
	case <-time.After(s.cfg.TermGrace):
		signalGroup(cmd, syscall.SIGKILL)
		<-waitCh
	}
}

// signalGroup signals the child's whole process group (it was started with
// Setpgid), falling back to the process itself.
func signalGroup(cmd *exec.Cmd, sig syscall.Signal) {
	if cmd.Process == nil {
		return
	}
	if err := syscall.Kill(-cmd.Process.Pid, sig); err != nil {
		_ = cmd.Process.Signal(sig)
	}
}

// classify maps a Wait error onto an episode cause. An empty cause means a
// deliberate, successful exit; a non-empty pending cause (a kill this
// supervisor initiated) wins over the raw exit status.
func (s *Supervisor) classify(err error, pending string) string {
	if pending != "" {
		return pending
	}
	if err == nil || errors.Is(err, exec.ErrWaitDelay) {
		// ErrWaitDelay means the process exited cleanly but a grandchild kept
		// the output pipe open past WaitDelay — still a clean exit.
		return ""
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if status, ok := ee.Sys().(syscall.WaitStatus); ok && status.Signaled() {
			return "signal:" + status.Signal().String()
		}
		if ee.ExitCode() == ExitWatchdogTrigger {
			return CauseWatchdogTrigger
		}
		return fmt.Sprintf("exit:%d", ee.ExitCode())
	}
	return CauseSpawnError
}

// closeEpisode closes id, logging rather than failing on the (benign) case
// where an adopted episode was already closed by a racing reader.
func (s *Supervisor) closeEpisode(id int64, resolution string, healthyDelay time.Duration) error {
	if s.cfg.Ledger == nil {
		return nil
	}
	if err := s.cfg.Ledger.CloseEpisode(id, resolution, time.Now(), healthyDelay); err != nil {
		return fmt.Errorf("supervise: ledger: %w", err)
	}
	s.cfg.Logf("supervise: episode %d closed (%s)", id, resolution)
	return nil
}

// backoff returns the nth restart delay: base·2ⁿ capped at BackoffCap, with
// ±JitterFrac seeded jitter so a fleet of supervisors does not thunder.
func (s *Supervisor) backoff(n int) time.Duration {
	d := s.cfg.BackoffBase
	for i := 0; i < n && d < s.cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffCap {
		d = s.cfg.BackoffCap
	}
	if s.cfg.JitterFrac > 0 {
		s.rngMu.Lock()
		f := 1 + s.cfg.JitterFrac*(2*s.rng.Float64()-1)
		s.rngMu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
