// Package faultinject implements a named fault-point registry used to plant
// gray failures inside the target systems.
//
// The paper motivates watchdogs with failures that are not fail-stop:
// partial disk failures, limplock, fail-slow hardware, state corruption,
// deadlock and infinite loops (§1, §2). This package manufactures those
// manifestations deterministically. The monitored systems call Fire at
// instrumented sites (e.g. "kvs.flusher.write"); experiments Arm faults and
// measure how each detector reacts.
//
// When no fault is armed the fast path is a single atomic load, so the
// instrumentation does not perturb the overhead experiments (E6).
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gowatchdog/internal/clock"
)

// Kind enumerates the fault manifestations the injector can produce.
type Kind int

const (
	// None is the zero Kind; an armed fault must not use it.
	None Kind = iota
	// Delay makes the fault point sleep, modelling fail-slow / limplock.
	Delay
	// Error makes the fault point return an error, modelling an I/O fault.
	Error
	// Hang blocks the fault point until the fault is disarmed or released,
	// modelling deadlock and indefinite blocking.
	Hang
	// Corrupt flips bytes passed through FireData, modelling silent state
	// corruption.
	Corrupt
	// Panic panics at the fault point, modelling a crashing defect confined
	// to one goroutine.
	Panic
	// Leak retains memory on every firing, modelling a memory leak.
	Leak
	// Flap alternates deterministically between firing an error and passing
	// on a FlapOn/FlapOff cycle, modelling an intermittent fault (a link
	// that drops every other packet, a disk that fails in bursts). Campaigns
	// use it to exercise alarm damping and breaker half-open probes.
	Flap
	// Drop silently discards the message passing through a network fault
	// point (FireNet): the sender believes the send succeeded and the
	// receiver never hears it. Armed on one directional link point it models
	// a one-way partition; armed on every link of a node it black-holes it.
	Drop
	// Duplicate delivers the message passing through a network fault point
	// twice, modelling retransmission storms and at-least-once transports.
	// Receivers must deduplicate (the mesh does, by digest sequence number).
	Duplicate
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Delay:
		return "delay"
	case Error:
		return "error"
	case Hang:
		return "hang"
	case Corrupt:
		return "corrupt"
	case Panic:
		return "panic"
	case Leak:
		return "leak"
	case Flap:
		return "flap"
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrInjected is the base error for Error faults that do not carry their own.
var ErrInjected = errors.New("faultinject: injected error")

// PanicValue is the value Panic faults panic with, wrapped with the point name.
type PanicValue struct{ Point string }

func (p PanicValue) String() string { return "injected panic at " + p.Point }

// Fault describes what should happen when an armed point fires.
type Fault struct {
	// Kind selects the manifestation; it must not be None.
	Kind Kind
	// Delay is the sleep duration for Delay faults.
	Delay time.Duration
	// Err overrides ErrInjected for Error faults.
	Err error
	// Prob is the firing probability in (0, 1]; 0 means 1 (always fire).
	Prob float64
	// Count limits how many times the fault fires; 0 means unlimited.
	Count int
	// LeakBytes is the number of bytes retained per firing for Leak faults
	// (default 1 MiB).
	LeakBytes int
	// FlapOn and FlapOff shape Flap faults: each cycle errors FlapOn
	// invocations, then passes FlapOff invocations. Zero values default
	// to 1, i.e. strict alternation. For Flap faults, Fired (and the Count
	// limit) counts invocations, not just errors, so the phase stays
	// deterministic.
	FlapOn  int
	FlapOff int
}

type armed struct {
	fault   Fault
	fired   atomic.Int64
	release chan struct{} // closed to free Hang victims
}

// Injector holds armed fault points. The zero value is not usable; call New.
type Injector struct {
	clk     clock.Clock
	any     atomic.Bool // fast-path: false means nothing armed anywhere
	mu      sync.RWMutex
	points  map[string]*armed
	rng     *rand.Rand
	rngMu   sync.Mutex
	leaked  [][]byte
	leakMu  sync.Mutex
	hanging atomic.Int64 // goroutines currently blocked in a Hang
}

// New returns an injector using clk for Delay faults.
func New(clk clock.Clock) *Injector {
	return &Injector{
		clk:    clk,
		points: make(map[string]*armed),
		rng:    rand.New(rand.NewSource(1)),
	}
}

// Seed reseeds the probability RNG for reproducible probabilistic faults.
func (in *Injector) Seed(seed int64) {
	in.rngMu.Lock()
	in.rng = rand.New(rand.NewSource(seed))
	in.rngMu.Unlock()
}

// Arm installs f at the named point, replacing any existing fault there.
func (in *Injector) Arm(point string, f Fault) {
	if f.Kind == None {
		panic("faultinject: arming Kind None")
	}
	in.mu.Lock()
	if old, ok := in.points[point]; ok {
		close(old.release)
	}
	in.points[point] = &armed{fault: f, release: make(chan struct{})}
	in.any.Store(true)
	in.mu.Unlock()
}

// Disarm removes the fault at point and releases any goroutines hanging there.
func (in *Injector) Disarm(point string) {
	in.mu.Lock()
	if a, ok := in.points[point]; ok {
		close(a.release)
		delete(in.points, point)
	}
	in.any.Store(len(in.points) > 0)
	in.mu.Unlock()
}

// Clear disarms every point, releases all hanging goroutines and frees leaked
// memory.
func (in *Injector) Clear() {
	in.mu.Lock()
	for p, a := range in.points {
		close(a.release)
		delete(in.points, p)
	}
	in.any.Store(false)
	in.mu.Unlock()
	in.leakMu.Lock()
	in.leaked = nil
	in.leakMu.Unlock()
}

// Fired reports how many times the fault at point has fired. It reports 0
// for unarmed points.
func (in *Injector) Fired(point string) int64 {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if a, ok := in.points[point]; ok {
		return a.fired.Load()
	}
	return 0
}

// Hanging reports how many goroutines are currently blocked in Hang faults.
func (in *Injector) Hanging() int64 { return in.hanging.Load() }

// Armed returns the sorted names of all armed points.
func (in *Injector) Armed() []string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	names := make([]string, 0, len(in.points))
	for p := range in.points {
		names = append(names, p)
	}
	sort.Strings(names)
	return names
}

// lookup returns the armed fault for point if it should fire now.
func (in *Injector) lookup(point string) *armed {
	if !in.any.Load() {
		return nil
	}
	in.mu.RLock()
	a, ok := in.points[point]
	in.mu.RUnlock()
	if !ok {
		return nil
	}
	f := a.fault
	if f.Count > 0 && a.fired.Load() >= int64(f.Count) {
		return nil
	}
	if p := f.Prob; p > 0 && p < 1 {
		in.rngMu.Lock()
		roll := in.rng.Float64()
		in.rngMu.Unlock()
		if roll >= p {
			return nil
		}
	}
	return a
}

// Fire triggers the fault at point, if one is armed. It returns the injected
// error for Error faults and nil otherwise. Hang faults block until the
// point is disarmed. Panic faults panic with a PanicValue.
func (in *Injector) Fire(point string) error {
	a := in.lookup(point)
	if a == nil {
		return nil
	}
	return in.fireArmed(point, a)
}

// FireData is Fire for sites with a data payload. Corrupt faults return a
// copy of data with deterministic bit flips; other kinds behave as in Fire
// and return data unchanged.
func (in *Injector) FireData(point string, data []byte) ([]byte, error) {
	a := in.lookup(point)
	if a == nil {
		return data, nil
	}
	if a.fault.Kind != Corrupt {
		return data, in.fireArmed(point, a)
	}
	a.fired.Add(1)
	if len(data) == 0 {
		return data, nil
	}
	out := make([]byte, len(data))
	copy(out, data)
	// Flip one bit in up to 3 positions spread across the payload.
	for i := 0; i < 3 && i < len(out); i++ {
		pos := (len(out) / 3) * i
		out[pos] ^= 0x40
	}
	return out, nil
}

// NetOutcome describes what an armed network fault does to one in-flight
// message. The zero value means "deliver normally".
type NetOutcome struct {
	// Drop means the message is silently lost in transit: the sender's write
	// appears to succeed and the receiver never sees the message.
	Drop bool
	// Duplicate means the message is delivered twice.
	Duplicate bool
	// Delay is how long delivery is deferred.
	Delay time.Duration
	// Err is returned to the sender (a visible transport error, unlike Drop).
	Err error
}

// FireNet triggers the network fault at a directional link point, if one is
// armed, and returns what should happen to the message. It understands the
// message-shaped kinds — Drop, Duplicate, Delay, Error, and Flap (which
// errors on its on-phase) — and treats every other kind as a clean delivery,
// so link points can share an injector with process-level fault points.
func (in *Injector) FireNet(point string) NetOutcome {
	a := in.lookup(point)
	if a == nil {
		return NetOutcome{}
	}
	seq := a.fired.Add(1) - 1 // this invocation's zero-based sequence
	switch a.fault.Kind {
	case Drop:
		return NetOutcome{Drop: true}
	case Duplicate:
		return NetOutcome{Duplicate: true}
	case Delay:
		return NetOutcome{Delay: a.fault.Delay}
	case Error:
		return NetOutcome{Err: in.pointErr(point, a)}
	case Flap:
		on, off := a.fault.FlapOn, a.fault.FlapOff
		if on <= 0 {
			on = 1
		}
		if off <= 0 {
			off = 1
		}
		if seq%int64(on+off) < int64(on) {
			return NetOutcome{Err: in.pointErr(point, a)}
		}
	}
	return NetOutcome{}
}

// pointErr wraps the fault's error (or ErrInjected) with the point name.
func (in *Injector) pointErr(point string, a *armed) error {
	if a.fault.Err != nil {
		return fmt.Errorf("%s: %w", point, a.fault.Err)
	}
	return fmt.Errorf("%s: %w", point, ErrInjected)
}

// fireArmed applies a's manifestation. Corrupt is a no-op here: it only has
// an effect through FireData's payload path — and Drop/Duplicate likewise
// only act through FireNet's message path — so code paths without data or
// message flow can still share the point name harmlessly.
func (in *Injector) fireArmed(point string, a *armed) error {
	a.fired.Add(1)
	switch a.fault.Kind {
	case Delay:
		in.clk.Sleep(a.fault.Delay)
	case Error:
		return in.pointErr(point, a)
	case Hang:
		in.hanging.Add(1)
		<-a.release
		in.hanging.Add(-1)
	case Panic:
		panic(PanicValue{Point: point})
	case Flap:
		on, off := a.fault.FlapOn, a.fault.FlapOff
		if on <= 0 {
			on = 1
		}
		if off <= 0 {
			off = 1
		}
		seq := a.fired.Load() - 1 // this invocation's zero-based sequence
		if seq%int64(on+off) < int64(on) {
			return in.pointErr(point, a)
		}
	case Leak:
		n := a.fault.LeakBytes
		if n <= 0 {
			n = 1 << 20
		}
		block := make([]byte, n)
		// Touch the memory so it is actually committed.
		for i := 0; i < len(block); i += 4096 {
			block[i] = 1
		}
		in.leakMu.Lock()
		in.leaked = append(in.leaked, block)
		in.leakMu.Unlock()
	}
	return nil
}
