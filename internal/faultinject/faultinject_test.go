package faultinject

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gowatchdog/internal/clock"
)

func TestFireUnarmedIsNoop(t *testing.T) {
	in := New(clock.Real())
	if err := in.Fire("nope"); err != nil {
		t.Fatalf("unarmed Fire returned %v", err)
	}
	out, err := in.FireData("nope", []byte("abc"))
	if err != nil || string(out) != "abc" {
		t.Fatalf("unarmed FireData = %q, %v", out, err)
	}
}

func TestErrorFault(t *testing.T) {
	in := New(clock.Real())
	in.Arm("p", Fault{Kind: Error})
	err := in.Fire("p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	custom := errors.New("disk on fire")
	in.Arm("p", Fault{Kind: Error, Err: custom})
	if err := in.Fire("p"); !errors.Is(err, custom) {
		t.Fatalf("err = %v, want custom", err)
	}
}

func TestDelayFaultUsesClock(t *testing.T) {
	v := clock.NewVirtual()
	in := New(v)
	in.Arm("slow", Fault{Kind: Delay, Delay: 5 * time.Second})
	done := make(chan struct{})
	go func() {
		_ = in.Fire("slow")
		close(done)
	}()
	v.BlockUntil(1)
	select {
	case <-done:
		t.Fatal("Delay fault returned before clock advance")
	default:
	}
	v.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Delay fault did not return after advance")
	}
}

func TestHangFaultBlocksUntilDisarm(t *testing.T) {
	in := New(clock.Real())
	in.Arm("stuck", Fault{Kind: Hang})
	done := make(chan struct{})
	go func() {
		_ = in.Fire("stuck")
		close(done)
	}()
	// Wait for the goroutine to be hanging.
	deadline := time.Now().Add(time.Second)
	for in.Hanging() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("goroutine never hung")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("Hang fault returned while armed")
	default:
	}
	in.Disarm("stuck")
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Hang fault did not release on Disarm")
	}
	if in.Hanging() != 0 {
		t.Fatalf("Hanging = %d after release", in.Hanging())
	}
}

func TestClearReleasesAllHangs(t *testing.T) {
	in := New(clock.Real())
	in.Arm("a", Fault{Kind: Hang})
	in.Arm("b", Fault{Kind: Hang})
	var wg sync.WaitGroup
	for _, p := range []string{"a", "b", "a"} {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			_ = in.Fire(p)
		}(p)
	}
	deadline := time.Now().Add(time.Second)
	for in.Hanging() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("Hanging = %d, want 3", in.Hanging())
		}
		time.Sleep(time.Millisecond)
	}
	in.Clear()
	wg.Wait()
	if len(in.Armed()) != 0 {
		t.Fatalf("Armed after Clear = %v", in.Armed())
	}
}

func TestPanicFault(t *testing.T) {
	in := New(clock.Real())
	in.Arm("boom", Fault{Kind: Panic})
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Point != "boom" {
			t.Fatalf("recovered %v, want PanicValue{boom}", r)
		}
	}()
	_ = in.Fire("boom")
	t.Fatal("Panic fault did not panic")
}

func TestCorruptFaultFlipsBits(t *testing.T) {
	in := New(clock.Real())
	in.Arm("data", Fault{Kind: Corrupt})
	orig := []byte("hello, world, this is a payload")
	out, err := in.FireData("data", orig)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) == string(orig) {
		t.Fatal("Corrupt fault did not change payload")
	}
	if string(orig) != "hello, world, this is a payload" {
		t.Fatal("Corrupt fault mutated the caller's buffer")
	}
	if len(out) != len(orig) {
		t.Fatal("Corrupt fault changed payload length")
	}
	// Plain Fire on a Corrupt point is harmless.
	if err := in.Fire("data"); err != nil {
		t.Fatalf("Fire on Corrupt point = %v", err)
	}
}

func TestCorruptEmptyPayload(t *testing.T) {
	in := New(clock.Real())
	in.Arm("data", Fault{Kind: Corrupt})
	out, err := in.FireData("data", nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("FireData(nil) = %v, %v", out, err)
	}
}

func TestCountLimitsFirings(t *testing.T) {
	in := New(clock.Real())
	in.Arm("p", Fault{Kind: Error, Count: 2})
	errs := 0
	for i := 0; i < 5; i++ {
		if in.Fire("p") != nil {
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("fired %d times, want 2", errs)
	}
	if in.Fired("p") != 2 {
		t.Fatalf("Fired = %d, want 2", in.Fired("p"))
	}
}

func TestProbabilisticFiring(t *testing.T) {
	in := New(clock.Real())
	in.Seed(42)
	in.Arm("p", Fault{Kind: Error, Prob: 0.5})
	errs := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if in.Fire("p") != nil {
			errs++
		}
	}
	if errs < n/3 || errs > 2*n/3 {
		t.Fatalf("prob 0.5 fired %d/%d times", errs, n)
	}
}

func TestLeakFaultRetainsMemory(t *testing.T) {
	in := New(clock.Real())
	in.Arm("mem", Fault{Kind: Leak, LeakBytes: 4096})
	for i := 0; i < 3; i++ {
		if err := in.Fire("mem"); err != nil {
			t.Fatal(err)
		}
	}
	in.leakMu.Lock()
	n := len(in.leaked)
	in.leakMu.Unlock()
	if n != 3 {
		t.Fatalf("leaked blocks = %d, want 3", n)
	}
	in.Clear()
	in.leakMu.Lock()
	n = len(in.leaked)
	in.leakMu.Unlock()
	if n != 0 {
		t.Fatal("Clear did not free leaked blocks")
	}
}

func TestArmNonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Arm(None) did not panic")
		}
	}()
	New(clock.Real()).Arm("p", Fault{})
}

func TestArmedNamesSorted(t *testing.T) {
	in := New(clock.Real())
	in.Arm("z", Fault{Kind: Error})
	in.Arm("a", Fault{Kind: Error})
	got := in.Armed()
	if len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Fatalf("Armed = %v", got)
	}
}

func TestRearmReleasesPreviousHang(t *testing.T) {
	in := New(clock.Real())
	in.Arm("p", Fault{Kind: Hang})
	done := make(chan struct{})
	go func() {
		_ = in.Fire("p")
		close(done)
	}()
	deadline := time.Now().Add(time.Second)
	for in.Hanging() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("never hung")
		}
		time.Sleep(time.Millisecond)
	}
	in.Arm("p", Fault{Kind: Error}) // re-arm releases the old hang
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("re-arm did not release hanging goroutine")
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		None: "none", Delay: "delay", Error: "error", Hang: "hang",
		Corrupt: "corrupt", Panic: "panic", Leak: "leak", Kind(99): "Kind(99)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestFireDataNonCorruptPassesThrough(t *testing.T) {
	in := New(clock.Real())
	in.Arm("p", Fault{Kind: Error})
	out, err := in.FireData("p", []byte("xyz"))
	if err == nil {
		t.Fatal("Error fault via FireData returned nil error")
	}
	if string(out) != "xyz" {
		t.Fatalf("payload changed: %q", out)
	}
}

// TestFlapConcurrent: concurrent Fires through a flapping point must be
// race-free and keep the on/off accounting exact — with FlapOn=1/FlapOff=1
// every other global invocation errors, so the totals split exactly in half
// regardless of goroutine interleaving. Run with -race.
func TestFlapConcurrent(t *testing.T) {
	inj := New(clock.Real())
	inj.Arm("flappy", Fault{Kind: Flap})

	const goroutines, fires = 8, 100
	var failed, passed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < fires; i++ {
				if err := inj.Fire("flappy"); err != nil {
					failed.Add(1)
				} else {
					passed.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	total := int64(goroutines * fires)
	if failed.Load()+passed.Load() != total {
		t.Fatalf("accounting lost fires: %d failed + %d passed != %d",
			failed.Load(), passed.Load(), total)
	}
	if failed.Load() != total/2 {
		t.Fatalf("strict alternation failed %d of %d fires, want exactly half", failed.Load(), total)
	}

	// The same alternation must hold through the message-shaped path.
	inj.Arm("flappy.net", Fault{Kind: Flap, FlapOn: 2, FlapOff: 2})
	var netErrs atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < fires; i++ {
				if out := inj.FireNet("flappy.net"); out.Err != nil {
					netErrs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if netErrs.Load() != total/2 {
		t.Fatalf("FireNet flap errored %d of %d fires, want exactly half", netErrs.Load(), total)
	}
}
