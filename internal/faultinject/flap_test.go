package faultinject

import (
	"errors"
	"testing"

	"gowatchdog/internal/clock"
)

// TestFlapAlternates: the default Flap fault errors on odd invocations and
// passes on even ones, deterministically.
func TestFlapAlternates(t *testing.T) {
	in := New(clock.NewVirtual())
	in.Arm("p", Fault{Kind: Flap})
	for i := 0; i < 8; i++ {
		err := in.Fire("p")
		if wantErr := i%2 == 0; (err != nil) != wantErr {
			t.Fatalf("invocation %d: err=%v, want error=%v", i, err, wantErr)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("flap error not ErrInjected: %v", err)
		}
	}
	if got := in.Fired("p"); got != 8 {
		t.Fatalf("Fired = %d, want 8 (invocations, not errors)", got)
	}
}

// TestFlapBurstShape: FlapOn/FlapOff shape the on/off burst lengths, and a
// custom error propagates.
func TestFlapBurstShape(t *testing.T) {
	in := New(clock.NewVirtual())
	custom := errors.New("link down")
	in.Arm("p", Fault{Kind: Flap, FlapOn: 3, FlapOff: 2, Err: custom})
	var got []bool
	for i := 0; i < 10; i++ {
		err := in.Fire("p")
		got = append(got, err != nil)
		if err != nil && !errors.Is(err, custom) {
			t.Fatalf("flap error lost the custom cause: %v", err)
		}
	}
	want := []bool{true, true, true, false, false, true, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("burst shape = %v, want %v", got, want)
		}
	}
}

// TestFlapCountLimit: the Count cap applies to invocations, after which the
// point goes quiet.
func TestFlapCountLimit(t *testing.T) {
	in := New(clock.NewVirtual())
	in.Arm("p", Fault{Kind: Flap, Count: 3})
	errs := 0
	for i := 0; i < 10; i++ {
		if in.Fire("p") != nil {
			errs++
		}
	}
	if errs != 2 { // invocations 0,1,2 ran the flap: error, pass, error
		t.Fatalf("errors = %d, want 2", errs)
	}
	if in.Fired("p") != 3 {
		t.Fatalf("Fired = %d, want 3", in.Fired("p"))
	}
}

// TestFlapKindString pins the rendering used by flags and verdicts.
func TestFlapKindString(t *testing.T) {
	if Flap.String() != "flap" {
		t.Fatalf("Flap.String() = %q", Flap.String())
	}
}
