package wdmesh

import (
	"context"
	"fmt"
	"sync"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/faultinject"
)

// LinkPoint names the directional fault point for messages flowing from one
// node to another in a MemNetwork. Arming faultinject.Drop on
// LinkPoint("a","b") models a one-way partition: a's sends to b vanish
// silently while b's sends to a still arrive.
func LinkPoint(from, to string) string {
	return "mesh.link." + from + ">" + to
}

// MemNetwork is an in-process message hub used by tests and seeded campaigns.
// Every directional link passes through a faultinject network point, so
// campaigns can drop, delay, duplicate, or error messages deterministically
// without real sockets.
type MemNetwork struct {
	clk clock.Clock
	inj *faultinject.Injector

	mu    sync.Mutex
	nodes map[string]*MemTransport
	wg    sync.WaitGroup // delayed deliveries in flight
}

// NewMemNetwork returns a hub delivering through inj's link points. inj may
// be nil for a fault-free network.
func NewMemNetwork(clk clock.Clock, inj *faultinject.Injector) *MemNetwork {
	if clk == nil {
		clk = clock.Real()
	}
	return &MemNetwork{clk: clk, inj: inj, nodes: make(map[string]*MemTransport)}
}

// Node returns (creating if needed) the transport for the named node.
func (n *MemNetwork) Node(name string) *MemTransport {
	n.mu.Lock()
	defer n.mu.Unlock()
	if t, ok := n.nodes[name]; ok {
		return t
	}
	t := &MemTransport{net: n, name: name}
	n.nodes[name] = t
	return t
}

// Detach removes a node from the hub entirely: sends to it fail with
// ErrUnreachable, modelling a crashed or fully partitioned process.
func (n *MemNetwork) Detach(name string) {
	n.mu.Lock()
	delete(n.nodes, name)
	n.mu.Unlock()
}

// Wait blocks until all delayed deliveries have completed; tests call it
// before asserting on receive counts.
func (n *MemNetwork) Wait() { n.wg.Wait() }

// MemTransport is one node's endpoint on a MemNetwork.
type MemTransport struct {
	net  *MemNetwork
	name string

	mu      sync.Mutex
	handler func(*Message)
	closed  bool
}

// Name returns the node name this endpoint was registered under.
func (t *MemTransport) Name() string { return t.name }

// SetHandler installs the inbound message callback.
func (t *MemTransport) SetHandler(h func(*Message)) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// Send routes msg through the directional link fault point to the peer's
// handler. Drop consumes the message while reporting success (the silent
// loss); Error surfaces to the caller; Delay defers delivery without
// blocking the sender; Duplicate delivers twice.
func (t *MemTransport) Send(ctx context.Context, peer string, msg *Message) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t.net.mu.Lock()
	dst, ok := t.net.nodes[peer]
	t.net.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnreachable, peer)
	}
	copies := 1
	if inj := t.net.inj; inj != nil {
		out := inj.FireNet(LinkPoint(t.name, peer))
		switch {
		case out.Err != nil:
			return out.Err
		case out.Drop:
			return nil
		case out.Duplicate:
			copies = 2
		case out.Delay > 0:
			t.net.wg.Add(1)
			go func() {
				defer t.net.wg.Done()
				t.net.clk.Sleep(out.Delay)
				dst.handle(msg)
			}()
			return nil
		}
	}
	for i := 0; i < copies; i++ {
		dst.handle(msg)
	}
	return nil
}

func (t *MemTransport) handle(msg *Message) {
	t.mu.Lock()
	h := t.handler
	closed := t.closed
	t.mu.Unlock()
	if closed || h == nil {
		return
	}
	h(msg)
}

// Close detaches the node from the hub and stops handler invocations.
func (t *MemTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	t.net.Detach(t.name)
	return nil
}
