package wdmesh

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gowatchdog/internal/wdmesh/wire"
)

// Transport carries gossip messages between mesh nodes. Implementations must
// honour the context deadline on Send (the mesh's per-attempt send budget)
// and must stop invoking the handler after Close returns.
type Transport interface {
	// Send delivers msg to the named peer, or returns an error. A nil error
	// only means the message was handed to the network; with a lossy link
	// the receiver may still never see it (that is what suspicion is for).
	Send(ctx context.Context, peer string, msg *Message) error
	// SetHandler installs the inbound message callback. It is called once,
	// before any Send.
	SetHandler(h func(*Message))
	// Close releases the transport (listener, connections).
	Close() error
}

// TransportStats are the wire-level counters a transport can expose; the
// mesh surfaces them through its Snapshot when the transport implements
// StatsSource.
type TransportStats struct {
	// Reconnects counts outbound connections re-established after a drop.
	Reconnects int64 `json:"reconnects"`
	// ProtocolErrors counts malformed frames survived in place: local decode
	// failures plus error answers received from peers.
	ProtocolErrors int64 `json:"protocol_errors"`
	// OversizedFrames counts inbound frames rejected by the size cap (the
	// connection survives; the sender is answered with an error frame).
	OversizedFrames int64 `json:"oversized_frames"`
}

// StatsSource is optionally implemented by transports that keep wire-level
// counters.
type StatsSource interface {
	Stats() TransportStats
}

// ErrBackingOff is returned by Send while a peer's reconnect backoff gate is
// closed: the previous dial failed recently and redialing now would just burn
// the send budget. The mesh counts it as a failed delivery like any other.
var ErrBackingOff = errors.New("wdmesh: reconnect backoff in effect")

// Reconnect backoff bounds: the first redial waits dialBackoffBase after a
// failure, doubling per consecutive failure up to dialBackoffCap.
const (
	dialBackoffBase = 250 * time.Millisecond
	dialBackoffCap  = 15 * time.Second
)

// txConn is the outbound side of one peer link: a single persistent
// connection, re-dialed on demand behind a capped exponential backoff gate.
type txConn struct {
	mu       sync.Mutex
	conn     net.Conn
	bw       *bufio.Writer
	fails    int       // consecutive dial/write failures
	nextDial time.Time // backoff gate; zero means dial freely
	dialed   bool      // a connection has succeeded before (for Reconnects)
}

// TCPTransport is the production transport: one persistent connection per
// peer carrying length-prefixed frames (see the wire package), re-dialed with
// capped exponential backoff when it drops. Peer names are dialable
// addresses, so the mesh needs no separate membership directory.
//
// Both ends keep a connection through recoverable protocol errors: an
// oversized or undecodable frame is answered with a wire.TypeError frame and
// the stream resyncs at the next boundary; only torn frames (stream cut
// mid-frame) drop the connection and engage the dialer's backoff.
type TCPTransport struct {
	ln net.Listener

	mu      sync.Mutex
	handler func(*Message)
	conns   map[string]*txConn
	inbound map[net.Conn]bool
	closed  bool
	wg      sync.WaitGroup

	reconnects  atomic.Int64
	protoErrors atomic.Int64
	oversized   atomic.Int64
}

// ListenTCP binds addr (e.g. "127.0.0.1:7946") and starts accepting inbound
// connections. The node's mesh identity should be the address peers dial.
func ListenTCP(addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wdmesh: listen %s: %w", addr, err)
	}
	t := &TCPTransport{ln: ln, conns: make(map[string]*txConn), inbound: make(map[net.Conn]bool)}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0").
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// SetHandler installs the inbound message callback.
func (t *TCPTransport) SetHandler(h func(*Message)) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// Stats exposes the wire-level counters.
func (t *TCPTransport) Stats() TransportStats {
	return TransportStats{
		Reconnects:      t.reconnects.Load(),
		ProtocolErrors:  t.protoErrors.Load(),
		OversizedFrames: t.oversized.Load(),
	}
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = true
		t.wg.Add(1)
		t.mu.Unlock()
		go t.serveConn(conn)
	}
}

// serveConn reads frames off one inbound connection until it tears or the
// transport closes. Recoverable protocol errors are answered in-stream with
// a TypeError frame; the connection survives them.
func (t *TCPTransport) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	for {
		typ, payload, err := wire.Read(br, wire.MaxFrame)
		switch {
		case err == nil:
		case errors.Is(err, wire.ErrTooLarge):
			t.oversized.Add(1)
			t.answerError(conn, err.Error())
			continue
		case errors.Is(err, wire.ErrBadType):
			t.protoErrors.Add(1)
			t.answerError(conn, err.Error())
			continue
		default:
			return // io.EOF (clean) or torn frame: drop the connection
		}
		if typ == wire.TypeError {
			// The peer rejected one of our frames but kept the stream.
			t.protoErrors.Add(1)
			continue
		}
		var msg Message
		if err := json.Unmarshal(payload, &msg); err != nil {
			t.protoErrors.Add(1)
			t.answerError(conn, "bad message payload")
			continue
		}
		t.mu.Lock()
		h := t.handler
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h(&msg)
		}
	}
}

// answerError writes a protocol-error frame back to the sender, best-effort.
func (t *TCPTransport) answerError(conn net.Conn, text string) {
	_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	_ = wire.Write(conn, wire.TypeError, []byte(text))
	_ = conn.SetWriteDeadline(time.Time{})
}

// Send writes one frame on the peer's persistent connection, dialing it
// first if needed. Dial failures close a capped exponential backoff gate so
// a dead peer costs one cheap error per round, not one dial timeout.
func (t *TCPTransport) Send(ctx context.Context, peer string, msg *Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("wdmesh: transport closed")
	}
	tc := t.conns[peer]
	if tc == nil {
		tc = &txConn{}
		t.conns[peer] = tc
	}
	t.mu.Unlock()

	payload, err := json.Marshal(msg)
	if err != nil {
		return err
	}

	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.conn == nil {
		if !tc.nextDial.IsZero() && time.Now().Before(tc.nextDial) {
			return ErrBackingOff
		}
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", peer)
		if err != nil {
			tc.noteFailLocked()
			return err
		}
		tc.conn = conn
		tc.bw = bufio.NewWriter(conn)
		if tc.dialed {
			t.reconnects.Add(1)
		}
		tc.dialed = true
		// Drain the peer's answers (error frames) and notice when the peer
		// closes its end, so the next Send re-dials instead of writing into
		// a dead socket buffer.
		t.wg.Add(1)
		go t.drainAnswers(tc, conn)
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = tc.conn.SetWriteDeadline(deadline)
	} else {
		_ = tc.conn.SetWriteDeadline(time.Time{})
	}
	werr := wire.Write(tc.bw, wire.TypeData, payload)
	if werr == nil {
		werr = tc.bw.Flush()
	}
	if werr == nil {
		tc.fails = 0
		tc.nextDial = time.Time{}
		return nil
	}
	tc.conn.Close()
	tc.conn, tc.bw = nil, nil
	tc.noteFailLocked()
	return fmt.Errorf("wdmesh: send to %s: %w", peer, werr)
}

// noteFailLocked advances the reconnect backoff after a dial/write failure.
// Callers hold tc.mu.
func (tc *txConn) noteFailLocked() {
	backoff := dialBackoffBase << tc.fails
	if backoff > dialBackoffCap || backoff <= 0 {
		backoff = dialBackoffCap
	}
	if tc.fails < 30 {
		tc.fails++
	}
	tc.nextDial = time.Now().Add(backoff)
}

// drainAnswers reads the peer's side of an outbound connection: TypeError
// answers are counted, and any read error (peer closed, torn stream) retires
// the connection so the next Send re-dials.
func (t *TCPTransport) drainAnswers(tc *txConn, conn net.Conn) {
	defer t.wg.Done()
	br := bufio.NewReader(conn)
	for {
		typ, _, err := wire.Read(br, wire.MaxFrame)
		if err != nil {
			if errors.Is(err, wire.ErrTooLarge) || errors.Is(err, wire.ErrBadType) {
				t.protoErrors.Add(1)
				continue
			}
			break
		}
		if typ == wire.TypeError {
			t.protoErrors.Add(1)
		}
	}
	tc.mu.Lock()
	if tc.conn == conn {
		tc.conn.Close()
		tc.conn, tc.bw = nil, nil
	}
	tc.mu.Unlock()
}

// Close stops the listener, closes every connection, and waits for the
// connection goroutines; handlers are no longer invoked afterwards.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*txConn, 0, len(t.conns))
	for _, tc := range t.conns {
		conns = append(conns, tc)
	}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()
	err := t.ln.Close()
	for _, c := range inbound {
		c.Close()
	}
	for _, tc := range conns {
		tc.mu.Lock()
		if tc.conn != nil {
			tc.conn.Close()
			tc.conn, tc.bw = nil, nil
		}
		tc.mu.Unlock()
	}
	t.wg.Wait()
	return err
}

// ErrUnreachable is returned by the in-process transport for unknown peers,
// standing in for a connection-refused/black-holed node.
var ErrUnreachable = errors.New("wdmesh: peer unreachable")
