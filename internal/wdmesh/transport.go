package wdmesh

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Transport carries gossip messages between mesh nodes. Implementations must
// honour the context deadline on Send (the mesh's per-attempt send budget)
// and must stop invoking the handler after Close returns.
type Transport interface {
	// Send delivers msg to the named peer, or returns an error. A nil error
	// only means the message was handed to the network; with a lossy link
	// the receiver may still never see it (that is what suspicion is for).
	Send(ctx context.Context, peer string, msg *Message) error
	// SetHandler installs the inbound message callback. It is called once,
	// before any Send.
	SetHandler(h func(*Message))
	// Close releases the transport (listener, connections).
	Close() error
}

// TCPTransport is the production transport: one short-lived TCP connection
// per message, JSON on the wire. Peer names are dialable addresses, so the
// mesh needs no separate membership directory.
type TCPTransport struct {
	ln net.Listener

	mu      sync.Mutex
	handler func(*Message)
	closed  bool
	wg      sync.WaitGroup
}

// ListenTCP binds addr (e.g. "127.0.0.1:7946") and starts accepting inbound
// exchanges. The node's mesh identity should be the address peers dial.
func ListenTCP(addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wdmesh: listen %s: %w", addr, err)
	}
	t := &TCPTransport{ln: ln}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0").
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// SetHandler installs the inbound message callback.
func (t *TCPTransport) SetHandler(h func(*Message)) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer conn.Close()
			dec := json.NewDecoder(conn)
			for {
				var msg Message
				if err := dec.Decode(&msg); err != nil {
					return
				}
				t.mu.Lock()
				h := t.handler
				closed := t.closed
				t.mu.Unlock()
				if closed {
					return
				}
				if h != nil {
					h(&msg)
				}
			}
		}()
	}
}

// Send dials the peer, writes one JSON message, and closes the connection,
// all under the context deadline.
func (t *TCPTransport) Send(ctx context.Context, peer string, msg *Message) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", peer)
	if err != nil {
		return err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetWriteDeadline(deadline)
	}
	return json.NewEncoder(conn).Encode(msg)
}

// Close stops the listener and waits for connection goroutines; handlers are
// no longer invoked afterwards.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

// ErrUnreachable is returned by the in-process transport for unknown peers,
// standing in for a connection-refused/black-holed node.
var ErrUnreachable = errors.New("wdmesh: peer unreachable")
