package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestRoundTrip drives several frames of both types through one buffer and
// checks each comes back intact and in order.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []struct {
		typ     byte
		payload string
	}{
		{TypeData, `{"from":"a","self":{"node":"a","seq":1}}`},
		{TypeError, "frame too large"},
		{TypeData, ""},
		{TypeData, strings.Repeat("x", 4096)},
	}
	for _, f := range frames {
		if err := Write(&buf, f.typ, []byte(f.payload)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	for i, f := range frames {
		typ, payload, err := Read(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: Read: %v", i, err)
		}
		if typ != f.typ || string(payload) != f.payload {
			t.Fatalf("frame %d: got (%d, %q), want (%d, %q)", i, typ, payload, f.typ, f.payload)
		}
	}
	if _, _, err := Read(&buf, 0); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

// TestTornFrames checks every truncation point inside a frame is reported as
// ErrTorn (connection must be dropped), while a cut exactly between frames is
// a clean io.EOF.
func TestTornFrames(t *testing.T) {
	var full bytes.Buffer
	if err := Write(&full, TypeData, []byte("hello mesh")); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		_, _, err := Read(bytes.NewReader(raw[:cut]), 0)
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("cut at %d/%d bytes: got %v, want ErrTorn", cut, len(raw), err)
		}
	}
	// A complete frame followed by a torn one: the first must still decode.
	var buf bytes.Buffer
	buf.Write(raw)
	buf.Write(raw[:3]) // torn tail
	typ, payload, err := Read(&buf, 0)
	if err != nil || typ != TypeData || string(payload) != "hello mesh" {
		t.Fatalf("intact frame before torn tail: (%d, %q, %v)", typ, payload, err)
	}
	if _, _, err := Read(&buf, 0); !errors.Is(err, ErrTorn) {
		t.Fatalf("torn tail: got %v, want ErrTorn", err)
	}
}

// TestOversizedFrameResync checks the overlong-frame contract: the oversized
// payload is consumed, ErrTooLarge is returned, and the NEXT frame on the same
// stream decodes normally — the stream stays aligned so the connection
// survives (the caller answers with a TypeError frame).
func TestOversizedFrameResync(t *testing.T) {
	const cap = 64
	var buf bytes.Buffer
	if err := Write(&buf, TypeData, bytes.Repeat([]byte("z"), cap+1)); err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, TypeData, []byte("after")); err != nil {
		t.Fatal(err)
	}
	_, _, err := Read(&buf, cap)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized frame: got %v, want ErrTooLarge", err)
	}
	typ, payload, err := Read(&buf, cap)
	if err != nil || typ != TypeData || string(payload) != "after" {
		t.Fatalf("frame after oversized: (%d, %q, %v), want clean decode", typ, payload, err)
	}
}

// TestOversizedTornTail: an oversized frame whose announced payload is itself
// truncated cannot be resynced — that is a torn connection, not a recoverable
// protocol error.
func TestOversizedTornTail(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, TypeData, bytes.Repeat([]byte("z"), 100)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:40] // header promises 100 bytes, stream ends early
	if _, _, err := Read(bytes.NewReader(raw), 16); !errors.Is(err, ErrTorn) {
		t.Fatalf("oversized+torn: got %v, want ErrTorn", err)
	}
}

// TestBadTypeKeepsAlignment: an unknown type byte is rejected but its payload
// is consumed using the trusted length word, so the next frame still decodes.
func TestBadTypeKeepsAlignment(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, 9, []byte("future frame kind")); err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, TypeData, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(&buf, 0); !errors.Is(err, ErrBadType) {
		t.Fatalf("unknown type: got %v, want ErrBadType", err)
	}
	typ, payload, err := Read(&buf, 0)
	if err != nil || typ != TypeData || string(payload) != "ok" {
		t.Fatalf("frame after bad type: (%d, %q, %v)", typ, payload, err)
	}
}

// TestDefaultCap: max<=0 falls back to MaxFrame.
func TestDefaultCap(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, TypeData, make([]byte, MaxFrame)); err != nil {
		t.Fatal(err)
	}
	if _, payload, err := Read(&buf, 0); err != nil || len(payload) != MaxFrame {
		t.Fatalf("payload at exactly MaxFrame: len=%d err=%v", len(payload), err)
	}
	buf.Reset()
	if err := Write(&buf, TypeData, make([]byte, MaxFrame+1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(&buf, 0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("payload over MaxFrame: got %v, want ErrTooLarge", err)
	}
}
