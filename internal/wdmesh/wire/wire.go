// Package wire is the framing layer for the mesh's persistent-connection
// transport: length-prefixed frames with a one-byte type, built so a single
// bad frame never costs more than itself. The three failure classes a
// long-lived gossip connection meets are kept distinct:
//
//   - oversized frame: the header is intact but the payload exceeds the cap.
//     Read consumes and discards the payload, so the stream stays in sync and
//     the caller can answer with a TypeError frame and keep the connection —
//     mirroring the kvs wire protocol's "ERR line too long" resync.
//   - malformed payload: framing is intact, the bytes inside are not what the
//     caller expected (e.g. bad JSON). That is the caller's problem; the next
//     Read starts at a frame boundary regardless.
//   - torn frame: the stream ends mid-header or mid-payload. That connection
//     is unusable; Read returns ErrTorn and the caller must drop it (the
//     dialer reconnects with backoff).
//
// A frame is:
//
//	1 byte  type (TypeData or TypeError)
//	4 bytes big-endian payload length
//	n bytes payload
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame types.
const (
	// TypeData carries an encoded gossip message.
	TypeData byte = 0
	// TypeError carries a protocol-error answer (UTF-8 text payload): the
	// receiver rejected the previous frame but kept the connection.
	TypeError byte = 1
)

// MaxFrame is the default payload cap. A 1000-node full-sync frame of ~150
// byte digests is ~150 KiB, so 1 MiB leaves generous headroom while still
// bounding what one peer can make us buffer.
const MaxFrame = 1 << 20

// headerSize is the fixed frame header length (type byte + length word).
const headerSize = 5

var (
	// ErrTooLarge reports an oversized frame. The payload has already been
	// consumed and discarded: the stream is still frame-aligned and the
	// caller may answer with a TypeError frame and continue reading.
	ErrTooLarge = errors.New("wire: frame exceeds size cap")
	// ErrTorn reports a frame truncated by the stream ending mid-header or
	// mid-payload. The connection is out of sync and must be dropped.
	ErrTorn = errors.New("wire: torn frame")
	// ErrBadType reports an unknown frame type byte. The payload has been
	// consumed (the length word is trusted), so the stream stays aligned.
	ErrBadType = errors.New("wire: unknown frame type")
)

// Write emits one frame. Callers own any buffering and flushing on w.
func Write(w io.Writer, typ byte, payload []byte) error {
	var hdr [headerSize]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Read consumes one frame and returns its type and payload. max bounds the
// accepted payload size (<=0 means MaxFrame). Error contract:
//
//   - io.EOF: the stream ended cleanly between frames.
//   - ErrTorn: the stream ended inside a frame; drop the connection.
//   - ErrTooLarge, ErrBadType: the offending frame was consumed in full and
//     the stream is still aligned; the caller may keep reading.
func Read(r io.Reader, max int) (byte, []byte, error) {
	if max <= 0 {
		max = MaxFrame
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF // clean boundary
		}
		return 0, nil, fmt.Errorf("%w: %v", ErrTorn, err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrTorn, err)
	}
	typ := hdr[0]
	n := int(binary.BigEndian.Uint32(hdr[1:]))
	if n > max {
		// Discard the payload so the next Read starts at a frame boundary.
		if _, err := io.CopyN(io.Discard, r, int64(n)); err != nil {
			return typ, nil, fmt.Errorf("%w: %v", ErrTorn, err)
		}
		return typ, nil, fmt.Errorf("%w: %d bytes > %d cap", ErrTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return typ, nil, fmt.Errorf("%w: %v", ErrTorn, err)
	}
	if typ != TypeData && typ != TypeError {
		return typ, payload, fmt.Errorf("%w: 0x%02x", ErrBadType, typ)
	}
	return typ, payload, nil
}
