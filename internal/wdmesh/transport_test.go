package wdmesh

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"gowatchdog/internal/wdmesh/wire"
)

// collectTransport wires a TCPTransport's handler into a thread-safe slice.
func collectHandler() (func(*Message), func() []Message) {
	var mu sync.Mutex
	var got []Message
	h := func(m *Message) {
		mu.Lock()
		got = append(got, *m)
		mu.Unlock()
	}
	read := func() []Message {
		mu.Lock()
		defer mu.Unlock()
		return append([]Message(nil), got...)
	}
	return h, read
}

// TestTCPOversizedFrameAnsweredAndResynced drives the overlong-frame contract
// end to end over a real socket: the oversized frame is answered with a
// TypeError frame, the connection survives, and the next frame on the same
// connection is delivered normally.
func TestTCPOversizedFrameAnsweredAndResynced(t *testing.T) {
	tr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	h, got := collectHandler()
	tr.SetHandler(h)

	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// One oversized frame, then a valid message on the same connection.
	if err := wire.Write(conn, wire.TypeData, make([]byte, wire.MaxFrame+1)); err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, wire.TypeData, []byte(`{"from":"x","self":{"node":"x","seq":7,"healthy":true}}`)); err != nil {
		t.Fatal(err)
	}

	// The receiver answers the oversized frame with a protocol error.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := wire.Read(conn, wire.MaxFrame)
	if err != nil || typ != wire.TypeError {
		t.Fatalf("want TypeError answer, got typ=%d payload=%q err=%v", typ, payload, err)
	}

	waitFor(t, 5*time.Second, "valid message after oversized frame", func() bool {
		msgs := got()
		return len(msgs) == 1 && msgs[0].From == "x" && msgs[0].Self.Seq == 7
	})
	if s := tr.Stats(); s.OversizedFrames != 1 {
		t.Fatalf("OversizedFrames = %d, want 1", s.OversizedFrames)
	}
}

// TestTCPBadPayloadAnsweredAndResynced: a frame whose JSON does not decode is
// answered with a protocol error and the connection keeps working.
func TestTCPBadPayloadAnsweredAndResynced(t *testing.T) {
	tr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	h, got := collectHandler()
	tr.SetHandler(h)

	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := wire.Write(conn, wire.TypeData, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, wire.TypeData, []byte(`{"from":"y","self":{"node":"y","seq":1}}`)); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, _, err := wire.Read(conn, wire.MaxFrame)
	if err != nil || typ != wire.TypeError {
		t.Fatalf("want TypeError answer for bad payload, got typ=%d err=%v", typ, err)
	}
	waitFor(t, 5*time.Second, "valid message after bad payload", func() bool {
		msgs := got()
		return len(msgs) == 1 && msgs[0].From == "y"
	})
	if s := tr.Stats(); s.ProtocolErrors == 0 {
		t.Fatal("bad payload not counted as protocol error")
	}
}

// TestTCPTornFrameDropsOnlyThatConnection: a stream cut mid-frame kills its
// connection but not the transport — a fresh connection still delivers.
func TestTCPTornFrameDropsOnlyThatConnection(t *testing.T) {
	tr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	h, got := collectHandler()
	tr.SetHandler(h)

	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Header promising 100 bytes, then cut.
	if _, err := conn.Write([]byte{wire.TypeData, 0, 0, 0, 100, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	conn2, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := wire.Write(conn2, wire.TypeData, []byte(`{"from":"z","self":{"node":"z","seq":2}}`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "delivery on a fresh connection after a torn one", func() bool {
		msgs := got()
		return len(msgs) == 1 && msgs[0].From == "z"
	})
}

// TestTCPPersistentSendAndReconnect: Send reuses one connection per peer, and
// when the peer restarts the transport reconnects (counted) after its backoff.
func TestTCPPersistentSendAndReconnect(t *testing.T) {
	peer, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h, got := collectHandler()
	peer.SetHandler(h)
	addr := peer.Addr()

	tr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	send := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		return tr.Send(ctx, addr, &Message{From: "me", Self: Digest{Node: "me", Seq: 1}})
	}
	for i := 0; i < 3; i++ {
		if err := send(); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, "three messages on one connection", func() bool {
		return len(got()) == 3
	})

	// Restart the peer on the same address; sends must eventually succeed
	// again through a counted reconnect.
	if err := peer.Close(); err != nil {
		t.Fatal(err)
	}
	peer2, err := ListenTCP(addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer peer2.Close()
	h2, got2 := collectHandler()
	peer2.SetHandler(h2)

	waitFor(t, 10*time.Second, "reconnected delivery after peer restart", func() bool {
		_ = send() // failures expected while the old conn dies and backoff drains
		return len(got2()) > 0
	})
	if s := tr.Stats(); s.Reconnects == 0 {
		t.Fatal("reconnect not counted")
	}
}
