package wdmesh

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
)

// healthySource returns a Source reporting a healthy digest.
func healthySource() func() Digest {
	return func() Digest {
		return Digest{Healthy: true, Worst: watchdog.StatusHealthy}
	}
}

// testMesh builds a started mesh node on net with fast timing.
func testMesh(t *testing.T, net *MemNetwork, self string, peers []string, src func() Digest, onVerdict func(Verdict, bool)) *Mesh {
	t.Helper()
	m, err := New(Config{
		Self:         self,
		Peers:        peers,
		Interval:     10 * time.Millisecond,
		SuspectAfter: 80 * time.Millisecond,
		Quorum:       2,
		Transport:    net.Node(self),
		Source:       src,
		OnVerdict:    onVerdict,
	})
	if err != nil {
		t.Fatalf("New(%s): %v", self, err)
	}
	m.Start()
	t.Cleanup(func() { m.Close() })
	return m
}

// hasDigests reports whether m has merged a real digest (Seq > 0) from every
// named peer; the cold-start grace period makes ObsOK alone too weak a
// convergence signal.
func hasDigests(m *Mesh, peers ...string) bool {
	snap := m.Snapshot()
	for _, want := range peers {
		found := false
		for _, p := range snap.Peers {
			if p.Node == want && p.Seq > 0 && p.Observation == ObsOK {
				found = true
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestNewValidation(t *testing.T) {
	net := NewMemNetwork(nil, nil)
	tr := net.Node("a")
	src := healthySource()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty self", Config{Transport: tr, Source: src, Peers: []string{"b"}}},
		{"nil transport", Config{Self: "a", Source: src, Peers: []string{"b"}}},
		{"nil source", Config{Self: "a", Transport: tr, Peers: []string{"b"}}},
		{"no peers", Config{Self: "a", Transport: tr, Source: src}},
		{"only self peer", Config{Self: "a", Transport: tr, Source: src, Peers: []string{"a", ""}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}

	m, err := New(Config{Self: "a", Transport: tr, Source: src, Peers: []string{"b", "b", "a", "c"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := len(m.peers); got != 2 {
		t.Fatalf("peer dedup: got %d peers, want 2", got)
	}
	if m.cfg.Interval != time.Second || m.cfg.SuspectAfter != 4*time.Second {
		t.Fatalf("defaults: interval=%v suspectAfter=%v", m.cfg.Interval, m.cfg.SuspectAfter)
	}
	if m.Quorum() != 2 || m.Self() != "a" {
		t.Fatalf("accessors: quorum=%d self=%q", m.Quorum(), m.Self())
	}
}

func TestWorseStatus(t *testing.T) {
	cases := []struct {
		a, b, want watchdog.Status
	}{
		{watchdog.StatusHealthy, watchdog.StatusSlow, watchdog.StatusSlow},
		{watchdog.StatusStuck, watchdog.StatusError, watchdog.StatusStuck},
		{watchdog.StatusSlow, watchdog.StatusSlow, watchdog.StatusSlow},
		{watchdog.StatusError, watchdog.StatusSkipped, watchdog.StatusError},
	}
	for _, tc := range cases {
		if got := WorseStatus(tc.a, tc.b); got != tc.want {
			t.Errorf("WorseStatus(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestRemoteAlarmBecomesClusterVerdict is the tentpole scenario: node c's own
// watchdog alarms while c stays perfectly reachable. Peers must converge on
// an intrinsic verdict — and their reachability view of c must stay fresh,
// which is exactly what a plain heartbeat would (wrongly) call healthy.
func TestRemoteAlarmBecomesClusterVerdict(t *testing.T) {
	net := NewMemNetwork(nil, nil)
	var cSick sync.Mutex
	sick := false
	cSource := func() Digest {
		cSick.Lock()
		defer cSick.Unlock()
		if sick {
			return Digest{Healthy: false, Worst: watchdog.StatusSlow, Abnormal: []string{"flusher"}, Alarms: 1}
		}
		return Digest{Healthy: true, Worst: watchdog.StatusHealthy}
	}

	type edge struct {
		v      Verdict
		raised bool
	}
	var edgesMu sync.Mutex
	var edges []edge
	onVerdict := func(v Verdict, raised bool) {
		edgesMu.Lock()
		edges = append(edges, edge{v, raised})
		edgesMu.Unlock()
	}

	a := testMesh(t, net, "a", []string{"b", "c"}, healthySource(), onVerdict)
	b := testMesh(t, net, "b", []string{"a", "c"}, healthySource(), nil)
	testMesh(t, net, "c", []string{"a", "b"}, cSource, nil)

	waitFor(t, 3*time.Second, "mesh convergence", func() bool {
		return hasDigests(a, "b", "c") && hasDigests(b, "a", "c")
	})

	cSick.Lock()
	sick = true
	cSick.Unlock()

	hasIntrinsic := func(m *Mesh) bool {
		for _, v := range m.Verdicts() {
			if v.Node == "c" && v.Kind == VerdictIntrinsic && v.Votes >= 2 {
				return true
			}
		}
		return false
	}
	waitFor(t, 3*time.Second, "intrinsic verdict on both observers", func() bool {
		return hasIntrinsic(a) && hasIntrinsic(b)
	})

	// The heartbeat view: c is still reachable. Its digests keep arriving, so
	// the suspicion is wd-alarm, never unreachable.
	if obs := a.Observation("c"); obs != ObsAlarming {
		t.Fatalf("a observes c as %q, want %q (c is reachable, only its watchdog alarms)", obs, ObsAlarming)
	}
	snap := a.Snapshot()
	for _, p := range snap.Peers {
		if p.Node == "c" {
			if p.LastHeardNS < 0 || time.Duration(p.LastHeardNS) > 80*time.Millisecond {
				t.Fatalf("c should still be heard (heartbeat-healthy): last heard %v ago", time.Duration(p.LastHeardNS))
			}
			if p.Worst != watchdog.StatusSlow {
				t.Fatalf("relayed worst status = %v, want %v", p.Worst, watchdog.StatusSlow)
			}
		}
	}

	// Recovery: c turns healthy again and the verdict clears.
	cSick.Lock()
	sick = false
	cSick.Unlock()
	waitFor(t, 3*time.Second, "verdict cleared", func() bool {
		return len(a.Verdicts()) == 0 && len(b.Verdicts()) == 0
	})

	edgesMu.Lock()
	defer edgesMu.Unlock()
	if len(edges) < 2 {
		t.Fatalf("want raise+clear edges, got %d", len(edges))
	}
	if first := edges[0]; !first.raised || first.v.Kind != VerdictIntrinsic || first.v.Node != "c" {
		t.Fatalf("first edge = %+v, want raised intrinsic on c", first)
	}
	if last := edges[len(edges)-1]; last.raised {
		t.Fatalf("last edge should be a clear, got %+v", last)
	}
}

// TestOneWayPartitionNoFalsePositive arms a silent Drop on the c->a link.
// a stops hearing c directly, but b relays c's digests, so with quorum 2 no
// cluster verdict may be raised anywhere.
func TestOneWayPartitionNoFalsePositive(t *testing.T) {
	inj := faultinject.New(clock.Real())
	net := NewMemNetwork(nil, inj)
	a := testMesh(t, net, "a", []string{"b", "c"}, healthySource(), nil)
	b := testMesh(t, net, "b", []string{"a", "c"}, healthySource(), nil)
	c := testMesh(t, net, "c", []string{"a", "b"}, healthySource(), nil)

	waitFor(t, 3*time.Second, "mesh convergence", func() bool {
		return hasDigests(a, "b", "c") && hasDigests(c, "a", "b")
	})

	inj.Arm(LinkPoint("c", "a"), faultinject.Fault{Kind: faultinject.Drop})
	time.Sleep(600 * time.Millisecond) // ~7x SuspectAfter under the partition

	for name, m := range map[string]*Mesh{"a": a, "b": b, "c": c} {
		snap := m.Snapshot()
		if snap.VerdictsRaised != 0 {
			t.Errorf("%s raised %d verdicts under one-way partition, want 0 (verdicts: %+v)",
				name, snap.VerdictsRaised, snap.Verdicts)
		}
	}
	// Relay kept a's view of c fresh despite the dropped direct link.
	if obs := a.Observation("c"); obs != ObsOK {
		t.Fatalf("a observes c as %q under one-way partition, want %q via relay", obs, ObsOK)
	}
}

// TestFullPartitionUnreachableVerdict closes node c entirely; the survivors
// must corroborate an unreachable (extrinsic) verdict.
func TestFullPartitionUnreachableVerdict(t *testing.T) {
	net := NewMemNetwork(nil, nil)
	a := testMesh(t, net, "a", []string{"b", "c"}, healthySource(), nil)
	b := testMesh(t, net, "b", []string{"a", "c"}, healthySource(), nil)
	c := testMesh(t, net, "c", []string{"a", "b"}, healthySource(), nil)

	waitFor(t, 3*time.Second, "mesh convergence", func() bool {
		return hasDigests(a, "b", "c") && hasDigests(b, "a", "c")
	})

	if err := c.Close(); err != nil {
		t.Fatalf("c.Close: %v", err)
	}

	hasUnreachable := func(m *Mesh) bool {
		for _, v := range m.Verdicts() {
			if v.Node == "c" && v.Kind == VerdictUnreachable && v.Votes >= 2 {
				return true
			}
		}
		return false
	}
	waitFor(t, 3*time.Second, "unreachable verdict on both survivors", func() bool {
		return hasUnreachable(a) && hasUnreachable(b)
	})
	if obs := a.Observation("c"); obs != ObsUnreachable {
		t.Fatalf("a observes c as %q, want %q", obs, ObsUnreachable)
	}
}

// TestDuplicateDelivery checks sequence-number dedup: a Duplicate link fault
// doubles deliveries without corrupting digest state.
func TestDuplicateDelivery(t *testing.T) {
	inj := faultinject.New(clock.Real())
	net := NewMemNetwork(nil, inj)
	inj.Arm(LinkPoint("b", "a"), faultinject.Fault{Kind: faultinject.Duplicate})

	a := testMesh(t, net, "a", []string{"b"}, healthySource(), nil)
	testMesh(t, net, "b", []string{"a"}, healthySource(), nil)

	waitFor(t, 3*time.Second, "duplicated digests received", func() bool {
		return a.Snapshot().MessagesReceived >= 6
	})
	snap := a.Snapshot()
	for _, p := range snap.Peers {
		if p.Node == "b" && p.Observation != ObsOK {
			t.Fatalf("duplicate delivery broke b's observation: %q", p.Observation)
		}
	}
	// Freshest-seq wins: the tracked seq never exceeds what b actually sent.
	if d, ok := a.KnownDigest("b"); !ok || d.Seq == 0 {
		t.Fatal("no digest merged from b")
	}
}

// TestQueueDropsAndRetries drives a mesh whose peer does not exist: sends
// fail, retries and failures count up, and a full queue drops instead of
// blocking the gossip loop.
func TestQueueDropsAndRetries(t *testing.T) {
	net := NewMemNetwork(nil, nil)
	m, err := New(Config{
		Self:        "a",
		Peers:       []string{"ghost"},
		Interval:    5 * time.Millisecond,
		SendTimeout: 20 * time.Millisecond,
		Retries:     1,
		RetryBase:   25 * time.Millisecond, // keep the sender busy past several ticks so the queue overflows
		QueueCap:    1,
		DemoteAfter: 1 << 20, // keep the dead link in the sample set; demotion has its own test
		Transport:   net.Node("a"),
		Source:      healthySource(),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Close()

	waitFor(t, 3*time.Second, "send failures and queue drops", func() bool {
		snap := m.Snapshot()
		return snap.SendFailures > 0 && snap.SendRetries > 0 && snap.QueueDrops > 0
	})
	snap := m.Snapshot()
	if snap.MessagesSent != 0 {
		t.Fatalf("sends to a nonexistent peer counted as sent: %d", snap.MessagesSent)
	}
	if snap.PeersSuspect != 1 || snap.PeersAlive != 0 {
		t.Fatalf("ghost peer should be suspect: alive=%d suspect=%d", snap.PeersAlive, snap.PeersSuspect)
	}
}

// blackholeTransport hangs every Send until its context deadline, modelling a
// link that accepts connections and then goes silent.
type blackholeTransport struct{}

func (blackholeTransport) Send(ctx context.Context, peer string, msg *Message) error {
	<-ctx.Done()
	return ctx.Err()
}
func (blackholeTransport) SetHandler(func(*Message)) {}
func (blackholeTransport) Close() error              { return nil }

// TestCloseBoundedUnderBlackhole proves Close returns promptly even when
// every send hangs: the per-attempt deadline bounds in-flight sends and the
// stop channel aborts retry backoffs.
func TestCloseBoundedUnderBlackhole(t *testing.T) {
	m, err := New(Config{
		Self:        "a",
		Peers:       []string{"b", "c"},
		Interval:    5 * time.Millisecond,
		SendTimeout: 30 * time.Millisecond,
		Retries:     3,
		RetryBase:   50 * time.Millisecond,
		Transport:   blackholeTransport{},
		Source:      healthySource(),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	time.Sleep(20 * time.Millisecond) // let senders get stuck mid-send

	done := make(chan struct{})
	go func() {
		m.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return within 2s under a black-holed transport")
	}
}

// TestTCPTransport runs a two-node mesh over real sockets.
func TestTCPTransport(t *testing.T) {
	trA, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	trB, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	mk := func(tr *TCPTransport, peer string) *Mesh {
		m, err := New(Config{
			Self:         tr.Addr(),
			Peers:        []string{peer},
			Interval:     10 * time.Millisecond,
			SuspectAfter: 100 * time.Millisecond,
			Quorum:       1,
			Transport:    tr,
			Source:       healthySource(),
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Start()
		t.Cleanup(func() { m.Close() })
		return m
	}
	a := mk(trA, trB.Addr())
	b := mk(trB, trA.Addr())

	waitFor(t, 5*time.Second, "TCP digest exchange", func() bool {
		return hasDigests(a, trB.Addr()) && hasDigests(b, trA.Addr())
	})

	// With quorum 1, killing b must surface as an unreachable verdict at a.
	if err := b.Close(); err != nil {
		t.Fatalf("b.Close: %v", err)
	}
	waitFor(t, 5*time.Second, "unreachable verdict over TCP", func() bool {
		for _, v := range a.Verdicts() {
			if v.Node == trB.Addr() && v.Kind == VerdictUnreachable {
				return true
			}
		}
		return false
	})
}

// TestSnapshotShape spot-checks snapshot bookkeeping fields.
func TestSnapshotShape(t *testing.T) {
	net := NewMemNetwork(nil, nil)
	a := testMesh(t, net, "a", []string{"b", "c"}, healthySource(), nil)
	testMesh(t, net, "b", []string{"a", "c"}, healthySource(), nil)
	testMesh(t, net, "c", []string{"a", "b"}, healthySource(), nil)

	waitFor(t, 3*time.Second, "all peers alive with real digests", func() bool {
		snap := a.Snapshot()
		if snap.PeersAlive != 2 || snap.PeersSuspect != 0 {
			return false
		}
		for _, p := range snap.Peers {
			if p.Seq == 0 {
				return false
			}
		}
		return true
	})
	snap := a.Snapshot()
	if snap.Self != "a" || snap.Quorum != 2 {
		t.Fatalf("snapshot identity: %+v", snap)
	}
	if snap.IntervalNS != int64(10*time.Millisecond) || snap.SuspectAfterNS != int64(80*time.Millisecond) {
		t.Fatalf("snapshot timing: interval=%d suspect=%d", snap.IntervalNS, snap.SuspectAfterNS)
	}
	if len(snap.Peers) != 2 || snap.Peers[0].Node != "b" || snap.Peers[1].Node != "c" {
		t.Fatalf("snapshot peers not sorted: %+v", snap.Peers)
	}
	if snap.MessagesSent == 0 || snap.MessagesReceived == 0 {
		t.Fatalf("no traffic counted: %+v", snap)
	}
	if s := fmt.Sprint(a); s != "wdmesh(a, 2 peers)" {
		t.Fatalf("String() = %q", s)
	}
}
