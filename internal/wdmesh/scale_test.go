package wdmesh

import (
	"fmt"
	"testing"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/watchdog"
)

// stepCluster is a deterministically stepped mesh cluster on a virtual clock.
type stepCluster struct {
	clk      *clock.Virtual
	net      *MemNetwork
	names    []string
	meshes   map[string]*Mesh
	interval time.Duration
}

// newStepCluster builds n unstarted meshes (Step mode) with fanout k.
func newStepCluster(t *testing.T, n, k int, src func(name string) func() Digest) *stepCluster {
	t.Helper()
	c := &stepCluster{
		clk:      clock.NewVirtual(),
		names:    make([]string, n),
		meshes:   make(map[string]*Mesh, n),
		interval: 100 * time.Millisecond,
	}
	c.net = NewMemNetwork(c.clk, nil)
	for i := range c.names {
		c.names[i] = fmt.Sprintf("n%03d", i)
	}
	for _, name := range c.names {
		c.meshes[name] = c.addNode(t, name, k, 1, src)
	}
	return c
}

// addNode builds one Step-mode mesh for the cluster.
func (c *stepCluster) addNode(t *testing.T, name string, k int, epoch int64, src func(string) func() Digest) *Mesh {
	t.Helper()
	peers := make([]string, 0, len(c.names)-1)
	for _, p := range c.names {
		if p != name {
			peers = append(peers, p)
		}
	}
	m, err := New(Config{
		Self:             name,
		Peers:            peers,
		Interval:         c.interval,
		Quorum:           2,
		Fanout:           k,
		AntiEntropyEvery: 8,
		Epoch:            epoch,
		JitterSeed:       1000 + int64(name[1]-'0')*100 + int64(name[2]-'0')*10 + int64(name[3]-'0'),
		Clock:            c.clk,
		Transport:        c.net.Node(name),
		Source:           src(name),
	})
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	return m
}

// step advances the virtual clock one interval and runs every mesh's round in
// deterministic (name) order.
func (c *stepCluster) step() {
	c.clk.Advance(c.interval)
	for _, name := range c.names {
		if m := c.meshes[name]; m != nil {
			m.Step()
		}
	}
}

// totals sums sent/raised across live nodes.
func (c *stepCluster) totals() (sent, raised, cleared int64) {
	for _, m := range c.meshes {
		if m == nil {
			continue
		}
		s := m.Snapshot()
		sent += s.MessagesSent
		raised += s.VerdictsRaised
		cleared += s.VerdictsCleared
	}
	return
}

func healthyByName() func(string) func() Digest {
	return func(string) func() Digest { return healthySource() }
}

// TestStepFanoutConvergenceAndVolume: a 24-node fanout-3 cluster stepped on
// the virtual clock must converge (every node holds a digest for every other)
// with zero verdicts, while sending O(N·K) messages per round instead of the
// full mesh's O(N²).
func TestStepFanoutConvergenceAndVolume(t *testing.T) {
	const n, k, rounds = 24, 3, 40
	c := newStepCluster(t, n, k, healthyByName())
	for r := 0; r < rounds; r++ {
		c.step()
	}
	for _, name := range c.names {
		if got := c.meshes[name].KnownCount(); got != n-1 {
			t.Fatalf("%s knows %d digests after %d rounds, want %d", name, got, rounds, n-1)
		}
	}
	sent, raised, _ := c.totals()
	if raised != 0 {
		t.Fatalf("healthy cluster raised %d verdicts", raised)
	}
	// Per-round budget: fanout + anti-entropy extra target + probe slack.
	budget := int64(n * (k + 2) * rounds)
	baseline := int64(n * (n - 1) * rounds)
	if sent > budget {
		t.Fatalf("sent %d messages over %d rounds, budget %d (O(N·K))", sent, rounds, budget)
	}
	if sent*2 > baseline {
		t.Fatalf("sent %d messages, not meaningfully below full-mesh baseline %d", sent, baseline)
	}
}

// TestStepDeterminism runs the same seeded scenario twice — including a
// victim turning sick mid-run — and requires bit-identical counters and
// verdict sets: the property RunMeshScale's committed verdict relies on.
func TestStepDeterminism(t *testing.T) {
	run := func() string {
		sick := false
		src := func(name string) func() Digest {
			if name != "n002" {
				return healthySource()
			}
			return func() Digest {
				if sick {
					return Digest{Healthy: false, Worst: watchdog.StatusSlow, Abnormal: []string{"flusher"}}
				}
				return Digest{Healthy: true, Worst: watchdog.StatusHealthy}
			}
		}
		c := newStepCluster(t, 16, 3, src)
		var trace string
		for r := 0; r < 60; r++ {
			if r == 25 {
				sick = true
			}
			if r == 45 {
				sick = false
			}
			c.step()
			sent, raised, cleared := c.totals()
			trace += fmt.Sprintf("r%d:%d/%d/%d;", r, sent, raised, cleared)
		}
		for _, name := range c.names {
			for _, v := range c.meshes[name].Verdicts() {
				trace += fmt.Sprintf("%s->%s:%s;", name, v.Node, v.Kind)
			}
		}
		return trace
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seeds, different runs:\n%s\nvs\n%s", a, b)
	}
}

// TestStepIntrinsicVerdictAtFanout: with sampling (not full mesh), a sick
// node's wd-alarm digest must still reach quorum verdicts on every observer,
// and clear after recovery.
func TestStepIntrinsicVerdictAtFanout(t *testing.T) {
	const n = 16
	sick := false
	src := func(name string) func() Digest {
		if name != "n005" {
			return healthySource()
		}
		return func() Digest {
			if sick {
				return Digest{Healthy: false, Worst: watchdog.StatusStuck, Abnormal: []string{"applier"}}
			}
			return Digest{Healthy: true, Worst: watchdog.StatusHealthy}
		}
	}
	c := newStepCluster(t, n, 3, src)
	for r := 0; r < 30; r++ {
		c.step()
	}
	sick = true
	detected := func() bool {
		for _, name := range c.names {
			if name == "n005" {
				continue
			}
			ok := false
			for _, v := range c.meshes[name].Verdicts() {
				if v.Node == "n005" && v.Kind == VerdictIntrinsic {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	deadline := 80
	for r := 0; r < deadline && !detected(); r++ {
		c.step()
	}
	if !detected() {
		t.Fatalf("not every observer reached an intrinsic verdict within %d rounds", deadline)
	}
	// The victim stayed reachable throughout: its digests kept flowing.
	if obs := c.meshes["n000"].Observation("n005"); obs != ObsAlarming {
		t.Fatalf("n000 observes n005 as %q, want %q", obs, ObsAlarming)
	}
	sick = false
	cleared := func() bool {
		for _, name := range c.names {
			if len(c.meshes[name].Verdicts()) != 0 {
				return false
			}
		}
		return true
	}
	for r := 0; r < deadline && !cleared(); r++ {
		c.step()
	}
	if !cleared() {
		t.Fatalf("verdicts did not clear within %d rounds of recovery", deadline)
	}
}

// TestAntiEntropyRepairsRejoin kills a node, lets the cluster convict it,
// then rejoins it with a fresh epoch and empty state. Anti-entropy and the
// epoch-triggered ack reset must reconverge the rejoined node and clear every
// verdict.
func TestAntiEntropyRepairsRejoin(t *testing.T) {
	const n = 10
	c := newStepCluster(t, n, 2, healthyByName())
	for r := 0; r < 30; r++ {
		c.step()
	}

	const victim = "n004"
	c.meshes[victim].Close()
	c.meshes[victim] = nil // stop stepping it; Close detached its transport

	convicted := func() bool {
		for _, name := range c.names {
			if name == victim {
				continue
			}
			ok := false
			for _, v := range c.meshes[name].Verdicts() {
				if v.Node == victim && v.Kind == VerdictUnreachable {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	for r := 0; r < 120 && !convicted(); r++ {
		c.step()
	}
	if !convicted() {
		t.Fatal("survivors did not convict the killed node")
	}

	// Rejoin with a fresh incarnation and empty state.
	c.meshes[victim] = c.addNode(t, victim, 2, 2, healthyByName())
	repaired := func() bool {
		if c.meshes[victim].KnownCount() != n-1 {
			return false
		}
		for _, name := range c.names {
			if len(c.meshes[name].Verdicts()) != 0 {
				return false
			}
		}
		return true
	}
	for r := 0; r < 200 && !repaired(); r++ {
		c.step()
	}
	if !repaired() {
		t.Fatalf("rejoin did not repair: victim knows %d/%d digests", c.meshes[victim].KnownCount(), n-1)
	}
}

// TestLinkDemotionAndRepromotion: a link that fails DemoteAfter consecutive
// sends is demoted out of the fanout sample set, and a later successful probe
// re-promotes it.
func TestLinkDemotionAndRepromotion(t *testing.T) {
	clk := clock.NewVirtual()
	net := NewMemNetwork(clk, nil)
	m, err := New(Config{
		Self:        "a",
		Peers:       []string{"ghost"},
		Interval:    100 * time.Millisecond,
		Quorum:      1,
		DemoteAfter: 3,
		ProbeEvery:  2,
		Epoch:       1,
		Clock:       clk,
		Transport:   net.Node("a"),
		Source:      healthySource(),
	})
	if err != nil {
		t.Fatal(err)
	}
	step := func() { clk.Advance(100 * time.Millisecond); m.Step() }
	for i := 0; i < 6; i++ {
		step()
	}
	snap := m.Snapshot()
	if snap.PeersDemoted != 1 || !snap.Peers[0].Demoted {
		t.Fatalf("link not demoted after consecutive failures: %+v", snap.Peers[0])
	}
	if snap.Peers[0].ConsecFailures < 3 {
		t.Fatalf("consecutive failure streak not tracked: %+v", snap.Peers[0])
	}

	// The peer comes up; the next probe round must re-promote the link.
	net.Node("ghost").SetHandler(func(*Message) {})
	for i := 0; i < 6 && m.Snapshot().PeersDemoted != 0; i++ {
		step()
	}
	snap = m.Snapshot()
	if snap.PeersDemoted != 0 || snap.Peers[0].Demoted {
		t.Fatalf("healed link not re-promoted: %+v", snap.Peers[0])
	}
	if snap.Peers[0].Sent == 0 {
		t.Fatal("no successful probe counted")
	}
}

// TestDeltaSuppression checks the evidence-based ack protocol directly:
// digests a peer has evidenced knowing are suppressed from its delta, a
// fresher digest reopens the delta, a full (anti-entropy) frame ignores acks
// entirely, and a peer restart (higher epoch) forgets its ack table.
func TestDeltaSuppression(t *testing.T) {
	net := NewMemNetwork(nil, nil)
	m, err := New(Config{
		Self: "a", Peers: []string{"b", "c"}, Epoch: 1,
		Transport: net.Node("a"), Source: healthySource(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pb := m.byName["b"]

	deltaTo := func(p *peer, full bool) []string {
		m.mu.Lock()
		defer m.mu.Unlock()
		ds := m.deltaLocked(p, full)
		names := make([]string, len(ds))
		for i, d := range ds {
			names[i] = fmt.Sprintf("%s@%d.%d", d.Node, d.Epoch, d.Seq)
		}
		return names
	}

	// b relays c@5: we learn c's digest AND that b knows it.
	m.receive(&Message{From: "b",
		Self:  Digest{Node: "b", Epoch: 1, Seq: 1, Healthy: true},
		Known: []Digest{{Node: "c", Epoch: 1, Seq: 5, Healthy: true}},
	})
	if got := deltaTo(pb, false); len(got) != 0 {
		t.Fatalf("delta to b should be empty (b evidenced c@5): %v", got)
	}
	if got := deltaTo(m.byName["c"], false); len(got) != 1 || got[0] != "b@1.1" {
		t.Fatalf("delta to c should carry b's digest: %v", got)
	}

	// c's own fresher digest reopens the delta to b.
	m.receive(&Message{From: "c", Self: Digest{Node: "c", Epoch: 1, Seq: 6, Healthy: true}})
	if got := deltaTo(pb, false); len(got) != 1 || got[0] != "c@1.6" {
		t.Fatalf("fresher c@6 should reopen delta to b: %v", got)
	}

	// b evidences c@6; suppressed again. A full frame still carries it.
	m.receive(&Message{From: "b",
		Self:  Digest{Node: "b", Epoch: 1, Seq: 2, Healthy: true},
		Known: []Digest{{Node: "c", Epoch: 1, Seq: 6, Healthy: true}},
	})
	if got := deltaTo(pb, false); len(got) != 0 {
		t.Fatalf("delta to b should be suppressed again: %v", got)
	}
	if got := deltaTo(pb, true); len(got) != 1 || got[0] != "c@1.6" {
		t.Fatalf("full frame must ignore acks: %v", got)
	}

	// b restarts (epoch 2): its ack table is forgotten, so c@6 is resent.
	m.receive(&Message{From: "b", Self: Digest{Node: "b", Epoch: 2, Seq: 1, Healthy: true}})
	if got := deltaTo(pb, false); len(got) != 1 || got[0] != "c@1.6" {
		t.Fatalf("restarted b must get c@6 again: %v", got)
	}

	// Restart freshness: b@2.1 must have replaced b@1.2.
	if d, ok := m.KnownDigest("b"); !ok || d.Epoch != 2 || d.Seq != 1 {
		t.Fatalf("restart digest not merged: %+v ok=%v", d, ok)
	}
}
