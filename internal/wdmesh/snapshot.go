package wdmesh

import (
	"sort"

	"gowatchdog/internal/watchdog"
)

// PeerSnapshot is the observable state of one peer link.
type PeerSnapshot struct {
	// Node is the peer's mesh identity.
	Node string `json:"node"`
	// Observation is this node's current classification (ObsOK /
	// ObsUnreachable / ObsAlarming).
	Observation string `json:"observation"`
	// LastHeardNS is nanoseconds since a fresh digest for the peer last
	// arrived (direct or relayed); -1 means never.
	LastHeardNS int64 `json:"last_heard_ns"`
	// Seq is the freshest digest sequence number seen from the peer.
	Seq uint64 `json:"seq"`
	// Worst is the peer's self-reported worst checker status.
	Worst watchdog.Status `json:"worst,omitempty"`
	// QueueDrops counts messages dropped because the peer's bounded outgoing
	// queue was full — the backpressure signal.
	QueueDrops int64 `json:"queue_drops"`
	// SendRetries counts retried send attempts to the peer.
	SendRetries int64 `json:"send_retries"`
	// SendFailures counts messages abandoned after the retry budget.
	SendFailures int64 `json:"send_failures"`
	// Sent counts messages successfully handed to the transport.
	Sent int64 `json:"sent"`
	// ConsecFailures is the link's current consecutive-failure streak.
	ConsecFailures int64 `json:"consec_failures,omitempty"`
	// Demoted marks a flapping link currently excluded from the fanout
	// sample set (it still receives probe and anti-entropy traffic).
	Demoted bool `json:"demoted,omitempty"`
}

// Snapshot is a point-in-time view of the mesh, exported via wdobs.
type Snapshot struct {
	// Self is this node's mesh identity.
	Self string `json:"self"`
	// Quorum is the corroboration threshold for cluster verdicts.
	Quorum int `json:"quorum"`
	// Fanout is how many peers are sampled per gossip round.
	Fanout int `json:"fanout"`
	// IntervalNS and SuspectAfterNS echo the effective timing config.
	IntervalNS     int64 `json:"interval_ns"`
	SuspectAfterNS int64 `json:"suspect_after_ns"`
	// PeersAlive and PeersSuspect partition the peer set by observation
	// (alive = ObsOK; suspect = ObsUnreachable or ObsAlarming).
	PeersAlive   int `json:"peers_alive"`
	PeersSuspect int `json:"peers_suspect"`
	// PeersDemoted counts links currently demoted for flapping.
	PeersDemoted int `json:"peers_demoted"`
	// MessagesSent and MessagesReceived are process-lifetime totals.
	MessagesSent     int64 `json:"messages_sent"`
	MessagesReceived int64 `json:"messages_received"`
	// DeltaEntries totals the relayed digests piggybacked into frames;
	// FullSyncs counts anti-entropy full-table frames sent.
	DeltaEntries int64 `json:"delta_entries"`
	FullSyncs    int64 `json:"full_syncs"`
	// QueueDrops, SendRetries, SendFailures are totals across peers.
	QueueDrops   int64 `json:"queue_drops"`
	SendRetries  int64 `json:"send_retries"`
	SendFailures int64 `json:"send_failures"`
	// VerdictsRaised and VerdictsCleared count cluster-verdict transitions.
	VerdictsRaised  int64 `json:"verdicts_raised"`
	VerdictsCleared int64 `json:"verdicts_cleared"`
	// Transport carries wire-level counters when the transport exposes them
	// (persistent-connection reconnects, protocol errors, oversized frames).
	Transport *TransportStats `json:"transport,omitempty"`
	// Peers describes each peer link, sorted by node.
	Peers []PeerSnapshot `json:"peers"`
	// Verdicts are the current cluster verdicts, sorted by subject.
	Verdicts []Verdict `json:"verdicts,omitempty"`
}

// Snapshot assembles the current mesh view. It is safe to call concurrently
// with gossip.
func (m *Mesh) Snapshot() *Snapshot {
	now := m.clk.Now()
	s := &Snapshot{
		Self:             m.cfg.Self,
		Quorum:           m.cfg.Quorum,
		Fanout:           m.cfg.Fanout,
		IntervalNS:       int64(m.cfg.Interval),
		SuspectAfterNS:   int64(m.cfg.SuspectAfter),
		MessagesSent:     m.sent.Load(),
		MessagesReceived: m.received.Load(),
		DeltaEntries:     m.deltaEntries.Load(),
		FullSyncs:        m.fullSyncs.Load(),
		VerdictsRaised:   m.verdictsRaised.Load(),
		VerdictsCleared:  m.verdictsCleared.Load(),
	}
	if src, ok := m.cfg.Transport.(StatsSource); ok {
		stats := src.Stats()
		s.Transport = &stats
	}

	m.mu.Lock()
	for i, p := range m.peers {
		ps := PeerSnapshot{
			Node:           p.name,
			Observation:    m.observationLocked(i, now),
			LastHeardNS:    -1,
			QueueDrops:     p.drops.Load(),
			SendRetries:    p.retries.Load(),
			SendFailures:   p.failures.Load(),
			Sent:           p.sent.Load(),
			ConsecFailures: p.consecFail.Load(),
			Demoted:        p.demoted.Load(),
		}
		if m.begun {
			ps.LastHeardNS = int64(now.Sub(m.heard[i]))
		}
		if m.present[i] {
			ps.Seq = m.digests[i].Seq
			ps.Worst = m.digests[i].Worst
		}
		if ps.Observation == ObsOK {
			s.PeersAlive++
		} else {
			s.PeersSuspect++
		}
		if ps.Demoted {
			s.PeersDemoted++
		}
		s.QueueDrops += ps.QueueDrops
		s.SendRetries += ps.SendRetries
		s.SendFailures += ps.SendFailures
		s.Peers = append(s.Peers, ps)
	}
	for _, v := range m.verdicts {
		s.Verdicts = append(s.Verdicts, v)
	}
	m.mu.Unlock()

	sort.Slice(s.Peers, func(i, j int) bool { return s.Peers[i].Node < s.Peers[j].Node })
	sort.Slice(s.Verdicts, func(i, j int) bool { return s.Verdicts[i].Node < s.Verdicts[j].Node })
	return s
}
