package wdmesh

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gowatchdog/internal/clock"
)

// Config parameterizes one mesh node.
type Config struct {
	// Self is this node's mesh identity. With the TCP transport it is the
	// address peers dial, so digests are attributable without a directory.
	Self string
	// Peers are the other nodes' identities (TCP: their listen addresses).
	// Self is filtered out; duplicates are collapsed. Membership is fixed
	// for the life of the process.
	Peers []string
	// Interval is the gossip period (default 1s).
	Interval time.Duration
	// SuspectAfter is how long without a fresh digest — direct or relayed —
	// before a peer is observed unreachable. Default: 4×Interval for a full
	// mesh; with fanout sampling, 4×Interval plus 2×⌈log2 N⌉ intervals of
	// epidemic propagation slack, because a digest now reaches most nodes by
	// relay in O(log N) rounds rather than one hop.
	SuspectAfter time.Duration
	// Quorum is how many observers (this node plus peers with fresh
	// observations) must corroborate a suspicion before it becomes a
	// cluster-level verdict (default 2; 1 degrades to plain heartbeating).
	Quorum int
	// Fanout is how many peers are sampled per gossip round (default 3).
	// Values >= len(Peers) degrade to the classic full mesh, which is what
	// small clusters get by default.
	Fanout int
	// MaxDelta caps the relayed digests piggybacked per frame (default 512).
	// Entries are chosen least-gossiped first so new rumors spread before
	// well-travelled ones.
	MaxDelta int
	// AntiEntropyEvery makes every Nth round push one sampled peer a Full
	// frame carrying the complete digest table (default 8; 0 disables).
	// This is the repair path for nodes rejoining after a partition or
	// restart, whose stale acks would otherwise suppress the deltas they
	// need.
	AntiEntropyEvery int
	// DemoteAfter is how many consecutive send failures demote a link out of
	// the fanout sample set (default 3). Demoted links still get probe and
	// anti-entropy traffic, and one success re-promotes them.
	DemoteAfter int
	// ProbeEvery makes every Nth round probe one demoted link so a healed
	// peer is re-promoted promptly (default 4).
	ProbeEvery int
	// Epoch is this node's incarnation number, carried in every digest so
	// peers detect restarts (default: clock now in nanoseconds at New).
	// Deterministic campaigns set it explicitly.
	Epoch int64
	// QueueCap bounds each peer's outgoing queue; overflow drops the message
	// and increments the peer's drop counter (default 8).
	QueueCap int
	// SendTimeout is the per-attempt send deadline (default Interval, capped
	// at 2s so a hung link never stalls a sender past a couple of rounds).
	SendTimeout time.Duration
	// Retries is how many times a failed send is retried before the message
	// is abandoned (default 2).
	Retries int
	// RetryBase seeds the capped exponential retry backoff (default
	// Interval/8; the cap is Interval).
	RetryBase time.Duration
	// JitterSeed seeds retry jitter and fanout sampling (default 1).
	JitterSeed int64
	// Clock replaces the real clock (virtual in deterministic tests).
	Clock clock.Clock
	// Transport carries messages; required.
	Transport Transport
	// Source builds this node's health digest each gossip round; required.
	// The mesh fills Node, Epoch, Seq, and Time itself.
	Source func() Digest
	// OnVerdict, when set, is called on every cluster-verdict transition:
	// raised=true when the verdict is reached, false when it clears (the
	// cleared verdict is passed so the subject and kind are known).
	OnVerdict func(v Verdict, raised bool)
	// Logf, when set, receives one-line mesh lifecycle messages.
	Logf func(format string, args ...any)
}

// ackRef is the freshest digest a peer has evidenced knowing for one node.
type ackRef struct {
	epoch int64
	seq   uint64
}

// covers reports whether the acked reference already covers digest d, i.e.
// sending d to that peer would tell it nothing new.
func (a ackRef) covers(d Digest) bool {
	if a.epoch != d.Epoch {
		return a.epoch > d.Epoch
	}
	return a.seq >= d.Seq
}

// peer is the per-peer send side: a bounded queue drained by one sender
// goroutine, drop/retry/failure counters, link health, and the ack table
// driving delta suppression.
type peer struct {
	name  string
	idx   int
	queue chan Message

	drops    atomic.Int64
	retries  atomic.Int64
	failures atomic.Int64
	sent     atomic.Int64

	// consecFail counts consecutive failed deliveries; DemoteAfter of them
	// demote the link out of the fanout sample set until a probe succeeds.
	consecFail atomic.Int64
	demoted    atomic.Bool

	// acked (guarded by Mesh.mu) holds, per node index, the freshest digest
	// this peer has evidenced knowing — learned only from frames received
	// FROM the peer, never from our own sends, so a lossy link cannot fake
	// an ack. lastEpoch is the peer's own incarnation; when it increases the
	// peer has restarted and the whole ack table is forgotten.
	acked     []ackRef
	lastEpoch int64
}

// obsRecord is one observer's most recent abnormal-observation set; an empty
// set is still recorded (it clears the observer's previous suspicions).
type obsRecord struct {
	at    time.Time
	kinds map[string]string // subject -> non-ok observation kind
}

// Mesh is one node's view of the cluster health plane.
type Mesh struct {
	cfg    Config
	clk    clock.Clock
	peers  []*peer
	byName map[string]*peer

	rngMu sync.Mutex
	rng   *rand.Rand

	mu       sync.Mutex
	seq      uint64
	round    uint64
	digests  []Digest    // freshest known digest per peer index
	present  []bool      // whether any digest has been seen for the index
	heard    []time.Time // when a fresh digest for the index last arrived
	obs      map[string]obsRecord
	verdicts map[string]Verdict
	scratch  []int // reused per-round candidate buffer

	begun    bool // handler installed, heard seeded (Start or first Step)
	started  bool // goroutine mode (Start)
	stepping bool // synchronous mode (Step)
	stop     chan struct{}
	wg       sync.WaitGroup
	closeOne sync.Once
	closeErr error

	sent            atomic.Int64
	received        atomic.Int64
	deltaEntries    atomic.Int64
	fullSyncs       atomic.Int64
	verdictsRaised  atomic.Int64
	verdictsCleared atomic.Int64
}

// New validates cfg, applies defaults, and returns an unstarted Mesh.
func New(cfg Config) (*Mesh, error) {
	if cfg.Self == "" {
		return nil, errors.New("wdmesh: empty Self identity")
	}
	if cfg.Transport == nil {
		return nil, errors.New("wdmesh: nil Transport")
	}
	if cfg.Source == nil {
		return nil, errors.New("wdmesh: nil digest Source")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = 2
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 3
	}
	if cfg.MaxDelta <= 0 {
		cfg.MaxDelta = 512
	}
	if cfg.AntiEntropyEvery < 0 {
		cfg.AntiEntropyEvery = 0
	} else if cfg.AntiEntropyEvery == 0 {
		cfg.AntiEntropyEvery = 8
	}
	if cfg.DemoteAfter <= 0 {
		cfg.DemoteAfter = 3
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 4
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 8
	}
	if cfg.SendTimeout <= 0 {
		cfg.SendTimeout = cfg.Interval
		if cfg.SendTimeout > 2*time.Second {
			cfg.SendTimeout = 2 * time.Second
		}
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = cfg.Interval / 8
		if cfg.RetryBase <= 0 {
			cfg.RetryBase = time.Millisecond
		}
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = cfg.Clock.Now().UnixNano()
	}

	m := &Mesh{
		cfg:      cfg,
		clk:      cfg.Clock,
		rng:      rand.New(rand.NewSource(cfg.JitterSeed)),
		byName:   make(map[string]*peer),
		obs:      make(map[string]obsRecord),
		verdicts: make(map[string]Verdict),
		stop:     make(chan struct{}),
	}
	seen := map[string]bool{cfg.Self: true}
	for _, name := range cfg.Peers {
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		p := &peer{name: name, idx: len(m.peers), queue: make(chan Message, cfg.QueueCap)}
		m.peers = append(m.peers, p)
		m.byName[name] = p
	}
	if len(m.peers) == 0 {
		return nil, errors.New("wdmesh: no peers besides self")
	}
	n := len(m.peers)
	m.digests = make([]Digest, n)
	m.present = make([]bool, n)
	m.heard = make([]time.Time, n)
	for _, p := range m.peers {
		p.acked = make([]ackRef, n)
	}
	if m.cfg.SuspectAfter <= 0 {
		m.cfg.SuspectAfter = 4 * m.cfg.Interval
		if m.cfg.Fanout < n {
			// Sampled gossip spreads a fresh digest epidemically in ~log2 N
			// rounds; give suspicion that much propagation slack, doubled.
			m.cfg.SuspectAfter += time.Duration(2*ceilLog2(n+1)) * m.cfg.Interval
		}
	}
	return m, nil
}

// ceilLog2 returns ⌈log2 n⌉ for n >= 1.
func ceilLog2(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// Self returns this node's mesh identity.
func (m *Mesh) Self() string { return m.cfg.Self }

// Quorum returns the effective corroboration quorum.
func (m *Mesh) Quorum() int { return m.cfg.Quorum }

// SuspectAfter returns the effective suspicion window (after scale-aware
// defaulting), so campaigns can budget detection phases against it.
func (m *Mesh) SuspectAfter() time.Duration { return m.cfg.SuspectAfter }

// begin installs the inbound handler and seeds every peer as just-heard: a
// node is presumed alive at cold start and only becomes suspect after a full
// SuspectAfter of real silence. Without this, simultaneously booting nodes
// corroborate each other's "never heard yet" into a spurious cluster verdict.
// Callers hold m.mu.
func (m *Mesh) beginLocked() {
	if m.begun {
		return
	}
	m.begun = true
	now := m.clk.Now()
	for i := range m.heard {
		m.heard[i] = now
	}
	m.cfg.Transport.SetHandler(m.receive)
}

// Start launches the gossip loop and one sender goroutine per peer. It is
// not idempotent; call once. Meshes driven by Step must not call Start.
func (m *Mesh) Start() {
	m.mu.Lock()
	if m.started || m.stepping {
		m.mu.Unlock()
		panic("wdmesh: Start after Start or Step")
	}
	m.started = true
	m.beginLocked()
	m.mu.Unlock()

	for _, p := range m.peers {
		m.wg.Add(1)
		go m.sender(p)
	}
	m.wg.Add(1)
	go m.gossipLoop()
	m.logf("wdmesh: %s gossiping to %d peer(s) every %v (fanout %d, suspect-after %v, quorum %d)",
		m.cfg.Self, len(m.peers), m.cfg.Interval, m.cfg.Fanout, m.cfg.SuspectAfter, m.cfg.Quorum)
}

// Step runs one synchronous gossip round on the caller's schedule: sampling,
// verdict evaluation, and inline delivery (no queues, no retries) in the
// calling goroutine. Combined with a virtual clock and an in-process network
// it makes thousand-node campaigns deterministic: same seeds and same step
// order give bit-identical state. A stepped mesh must never call Start.
func (m *Mesh) Step() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		panic("wdmesh: Step after Start")
	}
	m.stepping = true
	m.beginLocked()
	m.mu.Unlock()

	for _, f := range m.buildRound() {
		ctx, cancel := context.WithTimeout(context.Background(), m.cfg.SendTimeout)
		err := m.cfg.Transport.Send(ctx, f.p.name, &f.msg)
		cancel()
		m.noteSend(f.p, err)
	}
}

// Close stops gossiping and releases the transport. It is bounded even when
// every link is down: in-flight sends are limited by the per-attempt
// deadline, and retry backoffs abort on stop.
func (m *Mesh) Close() error {
	m.closeOne.Do(func() {
		close(m.stop)
		err := m.cfg.Transport.Close()
		m.wg.Wait()
		m.closeErr = err
	})
	return m.closeErr
}

// gossipLoop emits one gossip round per interval until Close.
func (m *Mesh) gossipLoop() {
	defer m.wg.Done()
	ticker := m.clk.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		m.tickOnce()
		select {
		case <-m.stop:
			return
		case <-ticker.C():
		}
	}
}

// outFrame pairs one assembled frame with its target peer.
type outFrame struct {
	p   *peer
	msg Message
}

// tickOnce runs one asynchronous gossip round: build the frames, then hand
// each to its peer's bounded queue (overflow drops, never blocks).
func (m *Mesh) tickOnce() {
	for _, f := range m.buildRound() {
		select {
		case f.p.queue <- f.msg:
		default:
			f.p.drops.Add(1)
		}
	}
}

// buildRound assembles this round's digest, re-evaluates suspicion and
// verdicts, samples the fanout targets, and builds one delta frame per
// target.
func (m *Mesh) buildRound() []outFrame {
	d := m.cfg.Source()
	now := m.clk.Now()
	d.Node = m.cfg.Self
	d.Epoch = m.cfg.Epoch
	d.Time = now
	if len(d.Abnormal) > maxAbnormalNames {
		d.Abnormal = d.Abnormal[:maxAbnormalNames]
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	m.round++
	d.Seq = m.seq
	m.evaluateVerdictsLocked(now)
	obs := m.localObsLocked(now)
	targets := m.sampleLocked()
	frames := make([]outFrame, 0, len(targets))
	for _, t := range targets {
		msg := Message{From: m.cfg.Self, Self: d, Obs: obs, Full: t.full}
		msg.Known = m.deltaLocked(t.p, t.full)
		if t.full {
			m.fullSyncs.Add(1)
		}
		m.deltaEntries.Add(int64(len(msg.Known)))
		frames = append(frames, outFrame{p: t.p, msg: msg})
	}
	return frames
}

// target is one sampled destination for this round.
type target struct {
	p    *peer
	full bool
}

// sampleLocked picks this round's destinations: Fanout healthy links chosen
// uniformly (seeded), one demoted link probed every ProbeEvery rounds, and —
// every AntiEntropyEvery rounds — one peer flagged for a full-table
// anti-entropy frame. Callers hold m.mu.
func (m *Mesh) sampleLocked() []target {
	eligible := m.scratch[:0]
	var demoted []int
	for i, p := range m.peers {
		if p.demoted.Load() {
			demoted = append(demoted, i)
		} else {
			eligible = append(eligible, i)
		}
	}
	m.rngMu.Lock()
	defer m.rngMu.Unlock()

	k := m.cfg.Fanout
	if k > len(eligible) {
		k = len(eligible)
	}
	// Partial Fisher–Yates: the first k entries become the sample.
	for i := 0; i < k; i++ {
		j := i + m.rng.Intn(len(eligible)-i)
		eligible[i], eligible[j] = eligible[j], eligible[i]
	}
	targets := make([]target, 0, k+2)
	picked := make(map[int]int, k+2) // peer idx -> position in targets
	for _, idx := range eligible[:k] {
		picked[idx] = len(targets)
		targets = append(targets, target{p: m.peers[idx]})
	}
	if len(demoted) > 0 && m.cfg.ProbeEvery > 0 && m.round%uint64(m.cfg.ProbeEvery) == 0 {
		idx := demoted[m.rng.Intn(len(demoted))]
		picked[idx] = len(targets)
		targets = append(targets, target{p: m.peers[idx]})
	}
	if m.cfg.AntiEntropyEvery > 0 && m.round%uint64(m.cfg.AntiEntropyEvery) == 0 {
		idx := m.rng.Intn(len(m.peers))
		if pos, ok := picked[idx]; ok {
			targets[pos].full = true
		} else {
			targets = append(targets, target{p: m.peers[idx], full: true})
		}
	}
	m.scratch = eligible[:0]
	return targets
}

// deltaLocked selects the relayed digests for one frame: everything the peer
// has not evidenced knowing (or the complete table for a full frame), capped
// at MaxDelta with least-gossiped entries first so fresh rumors win the
// budget. Callers hold m.mu.
func (m *Mesh) deltaLocked(p *peer, full bool) []Digest {
	var cand []int
	for i := range m.peers {
		if !m.present[i] || i == p.idx {
			continue
		}
		if !full && p.acked[i].covers(m.digests[i]) {
			continue
		}
		cand = append(cand, i)
	}
	if !full && len(cand) > m.cfg.MaxDelta {
		sort.Slice(cand, func(a, b int) bool {
			ga, gb := m.digests[cand[a]].gossiped, m.digests[cand[b]].gossiped
			if ga != gb {
				return ga < gb
			}
			return cand[a] < cand[b]
		})
		cand = cand[:m.cfg.MaxDelta]
	}
	out := make([]Digest, 0, len(cand))
	for _, i := range cand {
		m.digests[i].gossiped++
		out = append(out, m.digests[i])
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Node < out[b].Node })
	return out
}

// maxAbnormalNames caps the abnormal-checker list carried per digest so a
// pathological checker suite cannot bloat every gossip message.
const maxAbnormalNames = 16

// maxObsPerFrame caps the abnormal observations carried per frame; the scan
// start rotates each round so no subject is systematically starved when more
// than this many peers look abnormal at once.
const maxObsPerFrame = 64

// localObsLocked collects this node's current non-ok observations (ObsOK is
// implied by absence). Callers hold m.mu.
func (m *Mesh) localObsLocked(now time.Time) []Observation {
	n := len(m.peers)
	var out []Observation
	start := int(m.round) % n
	for off := 0; off < n && len(out) < maxObsPerFrame; off++ {
		i := (start + off) % n
		if kind := m.observationLocked(i, now); kind != ObsOK {
			out = append(out, Observation{Node: m.peers[i].name, Kind: kind})
		}
	}
	return out
}

// observationLocked classifies one peer index right now. Callers hold m.mu.
func (m *Mesh) observationLocked(i int, now time.Time) string {
	if !m.begun || now.Sub(m.heard[i]) > m.cfg.SuspectAfter {
		return ObsUnreachable
	}
	if m.present[i] && !m.digests[i].Healthy {
		return ObsAlarming
	}
	return ObsOK
}

// Observation returns this node's current classification of a peer.
func (m *Mesh) Observation(node string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.byName[node]
	if !ok {
		return ObsUnreachable
	}
	return m.observationLocked(p.idx, m.clk.Now())
}

// KnownDigest returns the freshest digest held for a node, if any.
func (m *Mesh) KnownDigest(node string) (Digest, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.byName[node]
	if !ok || !m.present[p.idx] {
		return Digest{}, false
	}
	return m.digests[p.idx], true
}

// KnownCount returns how many peers this node holds a digest for — the
// campaign's convergence measure (N-1 means full coverage).
func (m *Mesh) KnownCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ok := range m.present {
		if ok {
			n++
		}
	}
	return n
}

// voteTally accumulates corroboration for one suspect.
type voteTally struct {
	alarming    int
	unreachable int
}

// evaluateVerdictsLocked recomputes cluster verdicts from local observations
// plus fresh relayed ones, raising and clearing under the quorum gate. It is
// candidate-driven so a healthy thousand-node cluster pays O(N) per round,
// not O(N·observers): only subjects someone currently complains about (or
// that hold a standing verdict) are tallied. Callers hold m.mu.
func (m *Mesh) evaluateVerdictsLocked(now time.Time) {
	// One pass over observer records tallies every remote complaint and
	// prunes observers that have been silent for several suspicion windows.
	votes := make(map[string]*voteTally)
	for observer, rec := range m.obs {
		age := now.Sub(rec.at)
		if age > 4*m.cfg.SuspectAfter {
			delete(m.obs, observer)
			continue
		}
		if age > m.cfg.SuspectAfter {
			continue // the observer itself has gone quiet; its view is stale
		}
		for subject, kind := range rec.kinds {
			if subject == observer {
				// A node's opinion of itself is its digest, which already
				// drives the local observation; it is not corroboration.
				continue
			}
			v := votes[subject]
			if v == nil {
				v = &voteTally{}
				votes[subject] = v
			}
			switch kind {
			case ObsAlarming:
				v.alarming++
			case ObsUnreachable:
				v.unreachable++
			}
		}
	}

	// Candidates: locally suspect peers, remotely complained-about peers,
	// and standing verdicts (which must be re-checked to clear).
	cands := make(map[string]bool)
	for i, p := range m.peers {
		if m.observationLocked(i, now) != ObsOK {
			cands[p.name] = true
		}
	}
	for subject := range votes {
		if _, ok := m.byName[subject]; ok {
			cands[subject] = true
		}
	}
	for subject := range m.verdicts {
		cands[subject] = true
	}
	ordered := make([]string, 0, len(cands))
	for subject := range cands {
		ordered = append(ordered, subject)
	}
	sort.Strings(ordered)

	for _, subject := range ordered {
		p := m.byName[subject]
		if p == nil {
			continue
		}
		tally := voteTally{}
		if v := votes[subject]; v != nil {
			tally = *v
		}
		switch m.observationLocked(p.idx, now) {
		case ObsAlarming:
			tally.alarming++
		case ObsUnreachable:
			tally.unreachable++
		}

		var next *Verdict
		switch {
		case tally.alarming >= m.cfg.Quorum:
			next = &Verdict{Node: subject, Kind: VerdictIntrinsic,
				Votes: tally.alarming, Worst: m.digests[p.idx].Worst}
		case tally.unreachable >= m.cfg.Quorum:
			next = &Verdict{Node: subject, Kind: VerdictUnreachable,
				Votes: tally.unreachable}
		}

		cur, have := m.verdicts[subject]
		switch {
		case next == nil && have:
			delete(m.verdicts, subject)
			m.verdictsCleared.Add(1)
			m.notifyVerdict(cur, false)
		case next != nil && !have:
			next.Since = now
			m.verdicts[subject] = *next
			m.verdictsRaised.Add(1)
			m.notifyVerdict(*next, true)
		case next != nil && have:
			if next.Kind != cur.Kind {
				// Kind changed (e.g. gray failure collapsed into a full
				// crash): clear and re-raise so listeners see both edges.
				m.verdictsCleared.Add(1)
				m.notifyVerdict(cur, false)
				next.Since = now
				m.verdicts[subject] = *next
				m.verdictsRaised.Add(1)
				m.notifyVerdict(*next, true)
			} else {
				next.Since = cur.Since
				m.verdicts[subject] = *next
			}
		}
	}
}

// notifyVerdict invokes the verdict callback outside the usual hot path but
// under m.mu; callbacks must not call back into the mesh.
func (m *Mesh) notifyVerdict(v Verdict, raised bool) {
	edge := "raised"
	if !raised {
		edge = "cleared"
	}
	m.logf("wdmesh: %s %s %s verdict on %s (votes=%d)", m.cfg.Self, edge, v.Kind, v.Node, v.Votes)
	if m.cfg.OnVerdict != nil {
		m.cfg.OnVerdict(v, raised)
	}
}

// Verdicts returns the current cluster verdicts, sorted by subject.
func (m *Mesh) Verdicts() []Verdict {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Verdict, 0, len(m.verdicts))
	for _, v := range m.verdicts {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// receive merges one inbound frame: ack evidence for the sender, the
// sender's digest, everything it relayed, and its observation set.
func (m *Mesh) receive(msg *Message) {
	if msg == nil || msg.From == m.cfg.Self {
		return
	}
	m.received.Add(1)
	now := m.clk.Now()
	m.mu.Lock()
	if p := m.byName[msg.From]; p != nil {
		m.ackLocked(p, msg.Self)
		for _, d := range msg.Known {
			m.ackLocked(p, d)
		}
	}
	m.mergeLocked(msg.Self, now)
	for _, d := range msg.Known {
		m.mergeLocked(d, now)
	}
	if msg.From != "" {
		rec := obsRecord{at: now, kinds: make(map[string]string, len(msg.Obs))}
		for _, o := range msg.Obs {
			if o.Node == m.cfg.Self || o.Node == "" || o.Kind == ObsOK {
				continue
			}
			rec.kinds[o.Node] = o.Kind
		}
		m.obs[msg.From] = rec
	}
	m.mu.Unlock()
}

// ackLocked records evidence that peer p knows digest d, and resets the
// whole ack table when p's own digest shows a newer incarnation (a restarted
// peer forgot everything our stale acks claim it knows). Callers hold m.mu.
func (m *Mesh) ackLocked(p *peer, d Digest) {
	if d.Node == p.name && d.Epoch > p.lastEpoch {
		if p.lastEpoch != 0 {
			for i := range p.acked {
				p.acked[i] = ackRef{}
			}
		}
		p.lastEpoch = d.Epoch
	}
	t := m.byName[d.Node]
	if t == nil {
		return
	}
	a := &p.acked[t.idx]
	if d.Epoch > a.epoch || (d.Epoch == a.epoch && d.Seq > a.seq) {
		*a = ackRef{epoch: d.Epoch, seq: d.Seq}
	}
}

// mergeLocked keeps the freshest digest per node; replays and duplicates are
// rejected by (epoch, seq). Digests for nodes outside the fixed membership
// are ignored. Callers hold m.mu.
func (m *Mesh) mergeLocked(d Digest, now time.Time) {
	if d.Node == "" || d.Node == m.cfg.Self {
		return
	}
	p, ok := m.byName[d.Node]
	if !ok {
		return
	}
	if m.present[p.idx] && !FresherDigest(d, m.digests[p.idx]) {
		return
	}
	d.gossiped = 0
	m.digests[p.idx] = d
	m.present[p.idx] = true
	m.heard[p.idx] = now
}

// sender drains one peer's queue, applying the per-attempt deadline and the
// capped, jittered exponential retry policy.
func (m *Mesh) sender(p *peer) {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		case msg := <-p.queue:
			m.deliver(p, msg)
		}
	}
}

// deliver attempts one message with bounded retries; a message that exhausts
// its retry budget is abandoned (the next gossip round supersedes it anyway).
func (m *Mesh) deliver(p *peer, msg Message) {
	backoff := m.cfg.RetryBase
	for attempt := 0; ; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), m.cfg.SendTimeout)
		err := m.cfg.Transport.Send(ctx, p.name, &msg)
		cancel()
		if err == nil || attempt >= m.cfg.Retries {
			m.noteSend(p, err)
			return
		}
		p.retries.Add(1)
		d := backoff
		if max := m.cfg.Interval; d > max {
			d = max
		}
		d += m.jitter(d / 2)
		t := m.clk.NewTimer(d)
		select {
		case <-m.stop:
			t.Stop()
			return
		case <-t.C():
		}
		backoff *= 2
	}
}

// noteSend folds one delivery outcome into the counters and the link health
// score: DemoteAfter consecutive failures demote the link out of the fanout
// sample set; a single success re-promotes it.
func (m *Mesh) noteSend(p *peer, err error) {
	if err == nil {
		p.sent.Add(1)
		m.sent.Add(1)
		p.consecFail.Store(0)
		if p.demoted.CompareAndSwap(true, false) {
			m.logf("wdmesh: %s re-promoted link to %s", m.cfg.Self, p.name)
		}
		return
	}
	p.failures.Add(1)
	if p.consecFail.Add(1) >= int64(m.cfg.DemoteAfter) {
		if p.demoted.CompareAndSwap(false, true) {
			m.logf("wdmesh: %s demoted flapping link to %s (%v)", m.cfg.Self, p.name, err)
		}
	}
}

// jitter returns a seeded random duration in [0, max).
func (m *Mesh) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	return time.Duration(m.rng.Int63n(int64(max)))
}

func (m *Mesh) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// String identifies the mesh in logs.
func (m *Mesh) String() string {
	return fmt.Sprintf("wdmesh(%s, %d peers)", m.cfg.Self, len(m.peers))
}
