package wdmesh

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gowatchdog/internal/clock"
)

// Config parameterizes one mesh node.
type Config struct {
	// Self is this node's mesh identity. With the TCP transport it is the
	// address peers dial, so digests are attributable without a directory.
	Self string
	// Peers are the other nodes' identities (TCP: their listen addresses).
	// Self is filtered out; duplicates are collapsed.
	Peers []string
	// Interval is the gossip period (default 1s).
	Interval time.Duration
	// SuspectAfter is how long without a fresh digest — direct or relayed —
	// before a peer is observed unreachable (default 4×Interval).
	SuspectAfter time.Duration
	// Quorum is how many observers (this node plus peers with fresh
	// observations) must corroborate a suspicion before it becomes a
	// cluster-level verdict (default 2; 1 degrades to plain heartbeating).
	Quorum int
	// QueueCap bounds each peer's outgoing queue; overflow drops the message
	// and increments the peer's drop counter (default 8).
	QueueCap int
	// SendTimeout is the per-attempt send deadline (default Interval, capped
	// at 2s so a hung link never stalls a sender past a couple of rounds).
	SendTimeout time.Duration
	// Retries is how many times a failed send is retried before the message
	// is abandoned (default 2).
	Retries int
	// RetryBase seeds the capped exponential retry backoff (default
	// Interval/8; the cap is Interval).
	RetryBase time.Duration
	// JitterSeed seeds retry jitter (default 1).
	JitterSeed int64
	// Clock replaces the real clock (virtual in deterministic tests).
	Clock clock.Clock
	// Transport carries messages; required.
	Transport Transport
	// Source builds this node's health digest each gossip round; required.
	// The mesh fills Node, Seq, and Time itself.
	Source func() Digest
	// OnVerdict, when set, is called on every cluster-verdict transition:
	// raised=true when the verdict is reached, false when it clears (the
	// cleared verdict is passed so the subject and kind are known).
	OnVerdict func(v Verdict, raised bool)
	// Logf, when set, receives one-line mesh lifecycle messages.
	Logf func(format string, args ...any)
}

// peer is the per-peer send side: a bounded queue drained by one sender
// goroutine, with drop/retry/failure counters.
type peer struct {
	name     string
	queue    chan Message
	drops    atomic.Int64
	retries  atomic.Int64
	failures atomic.Int64
	sent     atomic.Int64
}

// obsRecord is one observer's most recent observation set.
type obsRecord struct {
	at    time.Time
	kinds map[string]string // subject -> observation kind
}

// Mesh is one node's view of the cluster health plane.
type Mesh struct {
	cfg   Config
	clk   clock.Clock
	peers []*peer

	rngMu sync.Mutex
	rng   *rand.Rand

	mu       sync.Mutex
	seq      uint64
	digests  map[string]Digest    // freshest known digest per node (never self)
	heard    map[string]time.Time // when a fresh digest for the node last arrived
	obs      map[string]obsRecord // per-observer relayed observations
	verdicts map[string]Verdict   // current cluster verdicts by subject

	started  bool
	stop     chan struct{}
	wg       sync.WaitGroup
	closeOne sync.Once
	closeErr error

	sent            atomic.Int64
	received        atomic.Int64
	verdictsRaised  atomic.Int64
	verdictsCleared atomic.Int64
}

// New validates cfg, applies defaults, and returns an unstarted Mesh.
func New(cfg Config) (*Mesh, error) {
	if cfg.Self == "" {
		return nil, errors.New("wdmesh: empty Self identity")
	}
	if cfg.Transport == nil {
		return nil, errors.New("wdmesh: nil Transport")
	}
	if cfg.Source == nil {
		return nil, errors.New("wdmesh: nil digest Source")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 4 * cfg.Interval
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 8
	}
	if cfg.SendTimeout <= 0 {
		cfg.SendTimeout = cfg.Interval
		if cfg.SendTimeout > 2*time.Second {
			cfg.SendTimeout = 2 * time.Second
		}
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = cfg.Interval / 8
		if cfg.RetryBase <= 0 {
			cfg.RetryBase = time.Millisecond
		}
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}

	m := &Mesh{
		cfg:      cfg,
		clk:      cfg.Clock,
		rng:      rand.New(rand.NewSource(cfg.JitterSeed)),
		digests:  make(map[string]Digest),
		heard:    make(map[string]time.Time),
		obs:      make(map[string]obsRecord),
		verdicts: make(map[string]Verdict),
		stop:     make(chan struct{}),
	}
	seen := map[string]bool{cfg.Self: true}
	for _, name := range cfg.Peers {
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		m.peers = append(m.peers, &peer{name: name, queue: make(chan Message, cfg.QueueCap)})
	}
	if len(m.peers) == 0 {
		return nil, errors.New("wdmesh: no peers besides self")
	}
	return m, nil
}

// Self returns this node's mesh identity.
func (m *Mesh) Self() string { return m.cfg.Self }

// Quorum returns the effective corroboration quorum.
func (m *Mesh) Quorum() int { return m.cfg.Quorum }

// Start registers the inbound handler and launches the gossip loop and one
// sender goroutine per peer. It is not idempotent; call once.
func (m *Mesh) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		panic("wdmesh: Start called twice")
	}
	m.started = true
	// Seed every peer as just-heard: a node is presumed alive at cold start
	// and only becomes suspect after a full SuspectAfter of real silence.
	// Without this, simultaneously booting nodes corroborate each other's
	// "never heard yet" into a spurious cluster verdict.
	now := m.clk.Now()
	for _, p := range m.peers {
		m.heard[p.name] = now
	}
	m.mu.Unlock()

	m.cfg.Transport.SetHandler(m.receive)
	for _, p := range m.peers {
		m.wg.Add(1)
		go m.sender(p)
	}
	m.wg.Add(1)
	go m.gossipLoop()
	m.logf("wdmesh: %s gossiping to %d peer(s) every %v (suspect-after %v, quorum %d)",
		m.cfg.Self, len(m.peers), m.cfg.Interval, m.cfg.SuspectAfter, m.cfg.Quorum)
}

// Close stops gossiping and releases the transport. It is bounded even when
// every link is down: in-flight sends are limited by the per-attempt
// deadline, and retry backoffs abort on stop.
func (m *Mesh) Close() error {
	m.closeOne.Do(func() {
		close(m.stop)
		err := m.cfg.Transport.Close()
		m.wg.Wait()
		m.closeErr = err
	})
	return m.closeErr
}

// gossipLoop emits one digest exchange per interval until Close.
func (m *Mesh) gossipLoop() {
	defer m.wg.Done()
	ticker := m.clk.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		m.tickOnce()
		select {
		case <-m.stop:
			return
		case <-ticker.C():
		}
	}
}

// tickOnce assembles this round's digest, re-evaluates suspicion and
// verdicts, and enqueues the exchange to every peer.
func (m *Mesh) tickOnce() {
	d := m.cfg.Source()
	now := m.clk.Now()
	d.Node = m.cfg.Self
	d.Time = now
	if len(d.Abnormal) > maxAbnormalNames {
		d.Abnormal = d.Abnormal[:maxAbnormalNames]
	}

	m.mu.Lock()
	m.seq++
	d.Seq = m.seq
	msg := Message{From: m.cfg.Self, Self: d}
	for _, known := range m.digests {
		msg.Known = append(msg.Known, known)
	}
	sort.Slice(msg.Known, func(i, j int) bool { return msg.Known[i].Node < msg.Known[j].Node })
	for _, p := range m.peers {
		msg.Obs = append(msg.Obs, Observation{Node: p.name, Kind: m.observationLocked(p.name, now)})
	}
	m.evaluateVerdictsLocked(now)
	m.mu.Unlock()

	for _, p := range m.peers {
		select {
		case p.queue <- msg:
		default:
			p.drops.Add(1)
		}
	}
}

// maxAbnormalNames caps the abnormal-checker list carried per digest so a
// pathological checker suite cannot bloat every gossip message.
const maxAbnormalNames = 16

// observationLocked classifies one peer right now. Callers hold m.mu.
func (m *Mesh) observationLocked(node string, now time.Time) string {
	heard, ok := m.heard[node]
	if !ok || now.Sub(heard) > m.cfg.SuspectAfter {
		return ObsUnreachable
	}
	if d, ok := m.digests[node]; ok && !d.Healthy {
		return ObsAlarming
	}
	return ObsOK
}

// Observation returns this node's current classification of a peer.
func (m *Mesh) Observation(node string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.observationLocked(node, m.clk.Now())
}

// evaluateVerdictsLocked recomputes cluster verdicts from local observations
// plus fresh relayed ones, raising and clearing under the quorum gate.
// Callers hold m.mu.
func (m *Mesh) evaluateVerdictsLocked(now time.Time) {
	for _, p := range m.peers {
		subject := p.name
		votes := map[string]int{m.observationLocked(subject, now): 1}
		for observer, rec := range m.obs {
			if observer == subject {
				// A node's opinion of itself is its digest, which already
				// drives the local observation; it is not corroboration.
				continue
			}
			if now.Sub(rec.at) > m.cfg.SuspectAfter {
				continue // the observer itself has gone quiet; its view is stale
			}
			if kind, ok := rec.kinds[subject]; ok {
				votes[kind]++
			}
		}

		var next *Verdict
		switch {
		case votes[ObsAlarming] >= m.cfg.Quorum:
			next = &Verdict{Node: subject, Kind: VerdictIntrinsic,
				Votes: votes[ObsAlarming], Worst: m.digests[subject].Worst}
		case votes[ObsUnreachable] >= m.cfg.Quorum:
			next = &Verdict{Node: subject, Kind: VerdictUnreachable,
				Votes: votes[ObsUnreachable]}
		}

		cur, have := m.verdicts[subject]
		switch {
		case next == nil && have:
			delete(m.verdicts, subject)
			m.verdictsCleared.Add(1)
			m.notifyVerdict(cur, false)
		case next != nil && !have:
			next.Since = now
			m.verdicts[subject] = *next
			m.verdictsRaised.Add(1)
			m.notifyVerdict(*next, true)
		case next != nil && have:
			if next.Kind != cur.Kind {
				// Kind changed (e.g. gray failure collapsed into a full
				// crash): clear and re-raise so listeners see both edges.
				m.verdictsCleared.Add(1)
				m.notifyVerdict(cur, false)
				next.Since = now
				m.verdicts[subject] = *next
				m.verdictsRaised.Add(1)
				m.notifyVerdict(*next, true)
			} else {
				next.Since = cur.Since
				m.verdicts[subject] = *next
			}
		}
	}
}

// notifyVerdict invokes the verdict callback outside the usual hot path but
// under m.mu; callbacks must not call back into the mesh.
func (m *Mesh) notifyVerdict(v Verdict, raised bool) {
	edge := "raised"
	if !raised {
		edge = "cleared"
	}
	m.logf("wdmesh: %s %s %s verdict on %s (votes=%d)", m.cfg.Self, edge, v.Kind, v.Node, v.Votes)
	if m.cfg.OnVerdict != nil {
		m.cfg.OnVerdict(v, raised)
	}
}

// Verdicts returns the current cluster verdicts, sorted by subject.
func (m *Mesh) Verdicts() []Verdict {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Verdict, 0, len(m.verdicts))
	for _, v := range m.verdicts {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// receive merges one inbound exchange: the sender's digest, everything it
// relayed, and its observation set.
func (m *Mesh) receive(msg *Message) {
	if msg == nil || msg.From == m.cfg.Self {
		return
	}
	m.received.Add(1)
	now := m.clk.Now()
	m.mu.Lock()
	m.mergeLocked(msg.Self, now)
	for _, d := range msg.Known {
		m.mergeLocked(d, now)
	}
	if msg.From != "" {
		rec := obsRecord{at: now, kinds: make(map[string]string, len(msg.Obs))}
		for _, o := range msg.Obs {
			if o.Node == m.cfg.Self || o.Node == "" {
				continue
			}
			rec.kinds[o.Node] = o.Kind
		}
		m.obs[msg.From] = rec
	}
	m.mu.Unlock()
}

// mergeLocked keeps the freshest digest per node; replays and duplicates are
// rejected by sequence number. Callers hold m.mu.
func (m *Mesh) mergeLocked(d Digest, now time.Time) {
	if d.Node == "" || d.Node == m.cfg.Self {
		return
	}
	if cur, ok := m.digests[d.Node]; ok && d.Seq <= cur.Seq {
		return
	}
	m.digests[d.Node] = d
	m.heard[d.Node] = now
}

// sender drains one peer's queue, applying the per-attempt deadline and the
// capped, jittered exponential retry policy.
func (m *Mesh) sender(p *peer) {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		case msg := <-p.queue:
			m.deliver(p, msg)
		}
	}
}

// deliver attempts one message with bounded retries; a message that exhausts
// its retry budget is abandoned (the next gossip round supersedes it anyway).
func (m *Mesh) deliver(p *peer, msg Message) {
	backoff := m.cfg.RetryBase
	for attempt := 0; ; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), m.cfg.SendTimeout)
		err := m.cfg.Transport.Send(ctx, p.name, &msg)
		cancel()
		if err == nil {
			p.sent.Add(1)
			m.sent.Add(1)
			return
		}
		if attempt >= m.cfg.Retries {
			p.failures.Add(1)
			return
		}
		p.retries.Add(1)
		d := backoff
		if max := m.cfg.Interval; d > max {
			d = max
		}
		d += m.jitter(d / 2)
		t := m.clk.NewTimer(d)
		select {
		case <-m.stop:
			t.Stop()
			return
		case <-t.C():
		}
		backoff *= 2
	}
}

// jitter returns a seeded random duration in [0, max).
func (m *Mesh) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	return time.Duration(m.rng.Int63n(int64(max)))
}

func (m *Mesh) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// String identifies the mesh in logs.
func (m *Mesh) String() string {
	return fmt.Sprintf("wdmesh(%s, %d peers)", m.cfg.Self, len(m.peers))
}
