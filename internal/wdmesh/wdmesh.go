// Package wdmesh is the partition-tolerant cluster health plane: it carries
// each node's intrinsic watchdog verdicts to its peers over an extrinsic
// gossip channel, closing the gap the paper's §2 gray-failure argument leaves
// open in a cluster. An intrinsic watchdog catches the limping flusher that a
// heartbeat misses — but its verdict dies on the node that produced it, so a
// fail-slow kvsd still looks healthy to every peer that only measures
// reachability. wdmesh piggybacks a compact health Digest (worst checker
// status, abnormal checker names, alarm count) onto periodic peer exchanges,
// relays the freshest digest it knows for every other node (rumor spreading),
// and distinguishes two kinds of suspicion:
//
//	unreachable  no fresh digest — direct or relayed — within SuspectAfter:
//	             the classic extrinsic signal (crash, full partition).
//	wd-alarm     a fresh digest whose own watchdog reports abnormal: the
//	             intrinsic gray-failure signal a heartbeat cannot see.
//
// Cluster-level verdicts are gated by quorum corroboration: at least Quorum
// observers (this node plus peers whose relayed observations are fresh) must
// classify the same node the same way. Relaying makes one-way partitions
// benign — the cut-off side still hears the victim through a third node — and
// the quorum gate keeps a single confused observer from convicting a healthy
// peer.
//
// The mesh is built to share fate with nothing: per-peer bounded outgoing
// queues (overflow increments a drop counter instead of blocking the gossip
// loop), per-attempt send deadlines, capped exponential retry with seeded
// jitter, and a Close that is bounded even when every link is black-holed. A
// full mesh outage degrades the cluster to node-local detection; it never
// wedges the watchdog driver or the runtime's Drain/Close ordering.
package wdmesh

import (
	"time"

	"gowatchdog/internal/watchdog"
)

// Digest is one node's self-assessment, produced by its own intrinsic
// watchdog and gossiped (directly and by relay) to every peer.
type Digest struct {
	// Node is the producing node's mesh identity.
	Node string `json:"node"`
	// Seq is the producer's monotonic digest sequence number; receivers keep
	// only the freshest digest per node and deduplicate replays with it.
	Seq uint64 `json:"seq"`
	// Time is the producer's clock when the digest was assembled.
	Time time.Time `json:"time"`
	// Healthy mirrors the producer's driver: no checker currently abnormal.
	Healthy bool `json:"healthy"`
	// Worst is the most severe current checker status.
	Worst watchdog.Status `json:"worst"`
	// Abnormal names the currently abnormal checkers (capped by the producer).
	Abnormal []string `json:"abnormal,omitempty"`
	// Alarms is the producer's process-lifetime alarm count.
	Alarms int64 `json:"alarms"`
}

// Observation kinds: how one node currently classifies a peer.
const (
	// ObsOK means a fresh digest was seen and it reports healthy.
	ObsOK = "ok"
	// ObsUnreachable means no fresh digest, direct or relayed, within
	// SuspectAfter — the extrinsic suspicion.
	ObsUnreachable = "unreachable"
	// ObsAlarming means a fresh digest was seen and its own watchdog reports
	// abnormal — the intrinsic gray-failure suspicion.
	ObsAlarming = "wd-alarm"
)

// Observation is one node's current classification of a peer, gossiped so
// other nodes can corroborate suspicion into cluster-level verdicts.
type Observation struct {
	Node string `json:"node"`
	Kind string `json:"kind"`
}

// Message is one gossip exchange: the sender's own digest, the freshest
// digest it knows for every other node, and its current peer observations.
type Message struct {
	From string `json:"from"`
	Self Digest `json:"self"`
	// Known relays third-party digests so one-way partitions do not blind
	// the cut-off side.
	Known []Digest `json:"known,omitempty"`
	// Obs carries the sender's observations for quorum corroboration.
	Obs []Observation `json:"obs,omitempty"`
}

// Verdict kinds.
const (
	// VerdictIntrinsic means quorum observers saw the node's own watchdog
	// alarm: the node is reachable but gray-failing.
	VerdictIntrinsic = "intrinsic"
	// VerdictUnreachable means quorum observers lost the node entirely.
	VerdictUnreachable = "unreachable"
)

// Verdict is a quorum-corroborated cluster-level judgement about one node.
type Verdict struct {
	// Node is the suspect.
	Node string `json:"node"`
	// Kind is VerdictIntrinsic or VerdictUnreachable.
	Kind string `json:"kind"`
	// Votes is how many observers corroborated (>= the configured quorum).
	Votes int `json:"votes"`
	// Since is when this node first reached the verdict.
	Since time.Time `json:"since"`
	// Worst carries the suspect's own worst checker status for intrinsic
	// verdicts (StatusHealthy otherwise).
	Worst watchdog.Status `json:"worst,omitempty"`
}

// statusSeverity orders statuses from benign to severe so digests can carry
// a single worst status; mirrors the wdobs /healthz ranking.
func statusSeverity(s watchdog.Status) int {
	switch s {
	case watchdog.StatusHealthy:
		return 0
	case watchdog.StatusContextPending, watchdog.StatusSkipped:
		return 1
	case watchdog.StatusSlow:
		return 2
	case watchdog.StatusError:
		return 3
	case watchdog.StatusCrashed:
		return 4
	case watchdog.StatusStuck:
		return 5
	default:
		return 3
	}
}

// WorseStatus returns the more severe of a and b under the digest ranking
// (healthy < pending/skipped < slow < error < crashed < stuck).
func WorseStatus(a, b watchdog.Status) watchdog.Status {
	if statusSeverity(b) > statusSeverity(a) {
		return b
	}
	return a
}
