// Package wdmesh is the partition-tolerant cluster health plane: it carries
// each node's intrinsic watchdog verdicts to its peers over an extrinsic
// gossip channel, closing the gap the paper's §2 gray-failure argument leaves
// open in a cluster. An intrinsic watchdog catches the limping flusher that a
// heartbeat misses — but its verdict dies on the node that produced it, so a
// fail-slow kvsd still looks healthy to every peer that only measures
// reachability. wdmesh piggybacks a compact health Digest (worst checker
// status, abnormal checker names, alarm count) onto periodic peer exchanges,
// relays the freshest digests it knows (rumor spreading), and distinguishes
// two kinds of suspicion:
//
//	unreachable  no fresh digest — direct or relayed — within SuspectAfter:
//	             the classic extrinsic signal (crash, full partition).
//	wd-alarm     a fresh digest whose own watchdog reports abnormal: the
//	             intrinsic gray-failure signal a heartbeat cannot see.
//
// Cluster-level verdicts are gated by quorum corroboration: at least Quorum
// observers (this node plus peers whose relayed observations are fresh) must
// classify the same node the same way. Relaying makes one-way partitions
// benign — the cut-off side still hears the victim through a third node — and
// the quorum gate keeps a single confused observer from convicting a healthy
// peer.
//
// Dissemination scales to ~1000 nodes by sampling instead of broadcasting:
// each round the node picks Fanout peers (seeded, demoted links excluded) and
// sends each exactly one frame carrying its own digest plus a delta of
// relayed digests the peer has not evidenced knowing, least-gossiped first.
// Per-round message count is O(N·K) cluster-wide instead of the full mesh's
// O(N²). Acks are evidence-based (learned only from frames received from the
// peer, so lossy links cannot fake them), epochs detect restarts and reset
// stale acks, and a periodic anti-entropy round pushes one peer the complete
// table so rejoining nodes are repaired even when deltas would skip them.
// See DESIGN.md §12 for the suspicion-at-scale state machine.
//
// The mesh is built to share fate with nothing: per-peer bounded outgoing
// queues (overflow increments a drop counter instead of blocking the gossip
// loop), per-attempt send deadlines, capped exponential retry with seeded
// jitter, per-peer link health that demotes flapping links out of the sample
// set, and a Close that is bounded even when every link is black-holed. A
// full mesh outage degrades the cluster to node-local detection; it never
// wedges the watchdog driver or the runtime's Drain/Close ordering.
package wdmesh

import (
	"time"

	"gowatchdog/internal/watchdog"
)

// Digest is one node's self-assessment, produced by its own intrinsic
// watchdog and gossiped (directly and by relay) to every peer.
type Digest struct {
	// Node is the producing node's mesh identity.
	Node string `json:"node"`
	// Epoch is the producer's incarnation: it increases across process
	// restarts (default: boot time in nanoseconds) so a rebooted node's
	// seq-1 digest outranks its pre-crash seq-10000 one, and so peers can
	// detect the restart and reset their delta-suppression acks for it.
	Epoch int64 `json:"epoch,omitempty"`
	// Seq is the producer's monotonic digest sequence number within Epoch;
	// receivers keep only the freshest digest per node and deduplicate
	// replays with it.
	Seq uint64 `json:"seq"`
	// Time is the producer's clock when the digest was assembled.
	Time time.Time `json:"time"`
	// Healthy mirrors the producer's driver: no checker currently abnormal.
	Healthy bool `json:"healthy"`
	// Worst is the most severe current checker status.
	Worst watchdog.Status `json:"worst"`
	// Abnormal names the currently abnormal checkers (capped by the producer).
	Abnormal []string `json:"abnormal,omitempty"`
	// Alarms is the producer's process-lifetime alarm count.
	Alarms int64 `json:"alarms"`

	// gossiped counts how many frames this stored copy has been piggybacked
	// into since it was last refreshed; the delta builder spends its MaxDelta
	// budget on least-gossiped entries first so new rumors outrun old ones.
	// Receiver-local bookkeeping, never serialized.
	gossiped uint32
}

// Observation kinds: how one node currently classifies a peer.
const (
	// ObsOK means a fresh digest was seen and it reports healthy.
	ObsOK = "ok"
	// ObsUnreachable means no fresh digest, direct or relayed, within
	// SuspectAfter — the extrinsic suspicion.
	ObsUnreachable = "unreachable"
	// ObsAlarming means a fresh digest was seen and its own watchdog reports
	// abnormal — the intrinsic gray-failure suspicion.
	ObsAlarming = "wd-alarm"
)

// Observation is one node's current classification of a peer, gossiped so
// other nodes can corroborate suspicion into cluster-level verdicts.
type Observation struct {
	Node string `json:"node"`
	Kind string `json:"kind"`
}

// Message is one gossip frame: the sender's own digest, a delta of relayed
// digests the receiver has not yet acknowledged, and the sender's current
// non-ok observations. One frame is sent per sampled peer per round.
type Message struct {
	From string `json:"from"`
	Self Digest `json:"self"`
	// Known relays third-party digests so one-way partitions do not blind
	// the cut-off side. In fanout gossip it is a delta: only digests the
	// receiver has not evidenced knowing (capped, least-gossiped first),
	// unless Full is set.
	Known []Digest `json:"known,omitempty"`
	// Obs carries the sender's abnormal observations for quorum
	// corroboration. ObsOK is implied by absence, so a healthy cluster
	// gossips no observations at all.
	Obs []Observation `json:"obs,omitempty"`
	// Full marks an anti-entropy frame: Known is the sender's complete
	// digest table, repairing receivers that rejoined after a partition or
	// restart with empty (or stale) state.
	Full bool `json:"full,omitempty"`
}

// FresherDigest reports whether a should replace b: a later incarnation
// always wins; within an incarnation the higher sequence number wins.
func FresherDigest(a, b Digest) bool {
	if a.Epoch != b.Epoch {
		return a.Epoch > b.Epoch
	}
	return a.Seq > b.Seq
}

// Verdict kinds.
const (
	// VerdictIntrinsic means quorum observers saw the node's own watchdog
	// alarm: the node is reachable but gray-failing.
	VerdictIntrinsic = "intrinsic"
	// VerdictUnreachable means quorum observers lost the node entirely.
	VerdictUnreachable = "unreachable"
)

// Verdict is a quorum-corroborated cluster-level judgement about one node.
type Verdict struct {
	// Node is the suspect.
	Node string `json:"node"`
	// Kind is VerdictIntrinsic or VerdictUnreachable.
	Kind string `json:"kind"`
	// Votes is how many observers corroborated (>= the configured quorum).
	Votes int `json:"votes"`
	// Since is when this node first reached the verdict.
	Since time.Time `json:"since"`
	// Worst carries the suspect's own worst checker status for intrinsic
	// verdicts (StatusHealthy otherwise).
	Worst watchdog.Status `json:"worst,omitempty"`
}

// statusSeverity orders statuses from benign to severe so digests can carry
// a single worst status; mirrors the wdobs /healthz ranking.
func statusSeverity(s watchdog.Status) int {
	switch s {
	case watchdog.StatusHealthy:
		return 0
	case watchdog.StatusContextPending, watchdog.StatusSkipped:
		return 1
	case watchdog.StatusSlow:
		return 2
	case watchdog.StatusError:
		return 3
	case watchdog.StatusCrashed:
		return 4
	case watchdog.StatusStuck:
		return 5
	default:
		return 3
	}
}

// WorseStatus returns the more severe of a and b under the digest ranking
// (healthy < pending/skipped < slow < error < crashed < stuck).
func WorseStatus(a, b watchdog.Status) watchdog.Status {
	if statusSeverity(b) > statusSeverity(a) {
		return b
	}
	return a
}
