package campaign

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestRunMeshSeeded is the acceptance campaign: a seeded 3-node mesh detects a
// remote fail-slow fault cluster-wide through gossiped intrinsic verdicts while
// plain reachability stays quiet, clears on recovery, and raises zero false
// positives under a one-way partition.
func TestRunMeshSeeded(t *testing.T) {
	v, err := RunMesh(MeshConfig{Seed: 7, Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("RunMesh: %v", err)
	}
	t.Logf("\n%s", v.Render())
	if !v.Pass {
		t.Fatalf("mesh campaign failed: %v", v.Failures)
	}
	if v.Nodes != 3 || v.Quorum != 2 {
		t.Fatalf("defaults = %d nodes quorum %d, want 3/2", v.Nodes, v.Quorum)
	}
	if !v.Detected || v.HeartbeatDetected {
		t.Fatalf("Detected=%v HeartbeatDetected=%v, want the mesh to see what heartbeats miss",
			v.Detected, v.HeartbeatDetected)
	}
	if len(v.Observers) != 2 {
		t.Fatalf("%d observers, want every non-victim peer (2)", len(v.Observers))
	}
	for _, ob := range v.Observers {
		if ob.Node == v.FaultNode {
			t.Fatalf("victim %s listed as its own observer", v.FaultNode)
		}
		if ob.DetectLatencyNS <= 0 {
			t.Fatalf("observer %s latency %d, want positive", ob.Node, ob.DetectLatencyNS)
		}
	}
	if v.DetectP50NS <= 0 || v.DetectMaxNS < v.DetectP50NS {
		t.Fatalf("latency summary p50=%d max=%d malformed", v.DetectP50NS, v.DetectMaxNS)
	}
	if !strings.Contains(v.PartitionLink, ">") || strings.Contains(v.PartitionLink, v.FaultNode) {
		t.Fatalf("partition link %q should join two healthy nodes", v.PartitionLink)
	}

	// The verdict is CI-consumable JSON.
	raw, err := v.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var round MeshVerdict
	if err := json.Unmarshal(raw, &round); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if round.Seed != 7 || round.Substrate != "mesh" || !round.Pass {
		t.Fatalf("round-tripped verdict = %+v", round)
	}
}

// TestRunMeshSeedDeterminesTopology: the seed alone picks the victim and the
// partitioned link, so reruns of a CI seed reproduce the same scenario.
func TestRunMeshSeedDeterminesTopology(t *testing.T) {
	a, err := RunMesh(MeshConfig{Seed: 11, Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("RunMesh: %v", err)
	}
	b, err := RunMesh(MeshConfig{Seed: 11, Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("RunMesh: %v", err)
	}
	if a.FaultNode != b.FaultNode || a.PartitionLink != b.PartitionLink {
		t.Fatalf("same seed chose %s/%s then %s/%s",
			a.FaultNode, a.PartitionLink, b.FaultNode, b.PartitionLink)
	}
}
