package campaign

import (
	"encoding/json"
	"testing"
)

// TestRunCEPSeeded scores the temporal-rule campaign end to end on a virtual
// clock: both rules must fire in the faulted arm, none in the control arm.
func TestRunCEPSeeded(t *testing.T) {
	v, err := RunCEP(CEPConfig{Seed: 42})
	if err != nil {
		t.Fatalf("RunCEP: %v", err)
	}
	if !v.Pass {
		t.Fatalf("verdict failed: %v\n%s", v.Failures, v.Render())
	}
	if !v.StreakDetected || !v.SpreadDetected {
		t.Fatalf("streak=%v spread=%v, want both detected", v.StreakDetected, v.SpreadDetected)
	}
	if v.FaultFreeFirings != 0 {
		t.Fatalf("fault-free arm fired %d times, want 0", v.FaultFreeFirings)
	}
	if v.StreakLatencyNS <= 0 || v.SpreadLatencyNS < 0 {
		t.Fatalf("latencies: streak=%d spread=%d", v.StreakLatencyNS, v.SpreadLatencyNS)
	}
	if v.StreakCount < streakThreshold {
		t.Fatalf("streak count %d below threshold %d", v.StreakCount, streakThreshold)
	}
	if _, err := v.JSON(); err != nil {
		t.Fatalf("JSON: %v", err)
	}
}

// TestRunCEPDeterministic proves the virtual-clock campaign is reproducible:
// two runs from the same seed produce byte-identical verdicts.
func TestRunCEPDeterministic(t *testing.T) {
	render := func() []byte {
		t.Helper()
		v, err := RunCEP(CEPConfig{Seed: 7})
		if err != nil {
			t.Fatalf("RunCEP: %v", err)
		}
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := render(), render()
	if string(a) != string(b) {
		t.Fatalf("seed 7 verdicts differ:\n%s\n%s", a, b)
	}
}

// TestRunCEPSeedSweep checks a handful of seeds all pass — the victim and
// spread-pair selection must not matter.
func TestRunCEPSeedSweep(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		v, err := RunCEP(CEPConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !v.Pass {
			t.Fatalf("seed %d failed: %v", seed, v.Failures)
		}
	}
}
