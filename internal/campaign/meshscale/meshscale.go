// Package meshscale runs the mesh-at-scale survival campaign (E17): hundreds
// to a thousand Step-mode wdmesh nodes on one virtual clock, driven through a
// seeded sequence of correlated partition, churn, and lossy-link faults, and
// scored on the properties the fanout rebuild must preserve — convergence,
// intrinsic-verdict latency, zero false positives, and O(N·K) message volume
// instead of the full mesh's O(N²).
//
// The campaign is deterministic: the same seed reproduces the same verdict
// bit for bit. Nodes run unstarted meshes advanced with Mesh.Step, so there
// are no goroutines, queues, or retries — every send happens inline in node
// order while the virtual clock advances one gossip interval per round.
//
// Phases:
//
//  1. converge — fault-free except ambient lossy/duplicating links; every
//     node must come to hold a digest for every other node. Any cluster
//     verdict raised here is a false positive.
//  2. fail-slow — one seeded victim's digest turns alarming; every observer
//     must corroborate an intrinsic cluster verdict. Per-observer latencies
//     (virtual time from fault to verdict) feed the reported percentiles.
//  3. clear — the victim recovers; every verdict must clear.
//  4. correlated partition — every link from a seeded 10% group A toward a
//     seeded 50% group B is cut one-way; the remaining 40% (group C) relays.
//     Any verdict raised during the partition is a false positive: relay must
//     keep B's view of A fresh.
//  5. churn — a seeded set of nodes is killed outright; every survivor must
//     convict each of them unreachable (true positives).
//  6. rejoin — the killed nodes come back with a fresh epoch and empty
//     state; anti-entropy and the epoch-triggered ack reset must rebuild
//     their tables and clear every verdict.
package meshscale

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdmesh"
)

// Config parameterizes one mesh-at-scale campaign run.
type Config struct {
	// Seed drives every random choice: victim, partition groups, churn set,
	// ambient fault links, per-node gossip jitter, and probabilistic faults.
	Seed int64
	// Nodes is the cluster size (default 500, minimum 16 so the partition
	// groups and quorum corroboration are all non-trivial).
	Nodes int
	// Fanout is the per-round gossip sample size (default 3).
	Fanout int
	// Quorum is the cluster-verdict corroboration threshold (default 2).
	Quorum int
	// Interval is the virtual gossip period (default 100ms). It only scales
	// the reported latencies; wall-clock cost depends on rounds alone.
	Interval time.Duration
	// LossyLinks directed links get a seeded 25%-drop fault for the whole
	// run (default Nodes/2); DupLinks get a 25%-duplicate fault (default
	// Nodes/4). Gossip must converge through both.
	LossyLinks int
	DupLinks   int
	// ChurnKills is how many nodes the churn phase kills (default Nodes/100,
	// minimum 2).
	ChurnKills int
	// ConvergeRounds, DetectRounds, ClearRounds, PartitionRounds, and
	// RepairRounds cap the phases (0 = a default derived from the cluster's
	// scale-aware suspicion window).
	ConvergeRounds  int
	DetectRounds    int
	ClearRounds     int
	PartitionRounds int
	RepairRounds    int
}

func (c Config) withDefaults() Config {
	if c.Nodes < 16 {
		if c.Nodes <= 0 {
			c.Nodes = 500
		} else {
			c.Nodes = 16
		}
	}
	if c.Fanout <= 0 {
		c.Fanout = 3
	}
	if c.Quorum <= 0 {
		c.Quorum = 2
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.LossyLinks <= 0 {
		c.LossyLinks = c.Nodes / 2
	}
	if c.DupLinks <= 0 {
		c.DupLinks = c.Nodes / 4
	}
	if c.ChurnKills <= 0 {
		c.ChurnKills = c.Nodes / 100
		if c.ChurnKills < 2 {
			c.ChurnKills = 2
		}
	}
	return c
}

// Verdict is the machine-readable campaign outcome; CI commits it as
// BENCH_mesh.json and gates on Pass.
type Verdict struct {
	Substrate  string `json:"substrate"`
	Seed       int64  `json:"seed"`
	Nodes      int    `json:"nodes"`
	Fanout     int    `json:"fanout"`
	Quorum     int    `json:"quorum"`
	IntervalNS int64  `json:"interval_ns"`
	// LossyLinks and DupLinks echo the ambient fault plan; SuspectRounds is
	// the cluster's scale-aware suspicion window in gossip rounds.
	LossyLinks    int `json:"lossy_links"`
	DupLinks      int `json:"dup_links"`
	SuspectRounds int `json:"suspect_rounds"`

	// Converged reports whether every node held every digest within the
	// converge cap; ConvergeRounds/ConvergeNS is how long that took.
	Converged      bool  `json:"converged"`
	ConvergeRounds int   `json:"converge_rounds"`
	ConvergeNS     int64 `json:"converge_ns"`

	// FaultNode is the seeded fail-slow victim. Detected reports whether
	// every observer reached an intrinsic verdict; the percentiles summarize
	// per-observer fault-to-verdict latency in virtual time.
	FaultNode   string `json:"fault_node"`
	Detected    bool   `json:"detected"`
	Observers   int    `json:"observers"`
	DetectP50NS int64  `json:"detect_p50_ns,omitempty"`
	DetectP95NS int64  `json:"detect_p95_ns,omitempty"`
	DetectP99NS int64  `json:"detect_p99_ns,omitempty"`
	DetectMaxNS int64  `json:"detect_max_ns,omitempty"`

	// Cleared reports whether every verdict cleared after the victim
	// recovered, within ClearRounds.
	Cleared     bool `json:"cleared"`
	ClearRounds int  `json:"clear_rounds"`

	// PartitionSpec describes the correlated cut ("|A|>|B| one-way");
	// PartitionLinksCut counts the armed link points. Any verdict raised
	// while the cut holds is a false positive.
	PartitionSpec           string `json:"partition_spec"`
	PartitionLinksCut       int    `json:"partition_links_cut"`
	PartitionRounds         int    `json:"partition_rounds"`
	PartitionFalsePositives int    `json:"partition_false_positives"`

	// ChurnKilled nodes were closed outright; ChurnDetected reports whether
	// every survivor convicted each of them unreachable within
	// ChurnDetectRounds.
	ChurnKilled       int  `json:"churn_killed"`
	ChurnDetected     bool `json:"churn_detected"`
	ChurnDetectRounds int  `json:"churn_detect_rounds"`

	// Repaired reports whether the rejoined nodes (fresh epoch, empty
	// state) rebuilt a full table and every verdict cleared within
	// RejoinRounds.
	Repaired     bool `json:"repaired"`
	RejoinRounds int  `json:"rejoin_rounds"`

	// Rounds and MessagesTotal cover the whole run; MsgPerRound must stay
	// under BudgetMsgPerRound = N·(K+2) (fanout + anti-entropy + probe
	// slack), far below BaselineMsgPerRound = N·(N-1), the full mesh's
	// per-round cost. VolumeRatio is MsgPerRound / BaselineMsgPerRound.
	Rounds              int     `json:"rounds"`
	MessagesTotal       int64   `json:"messages_total"`
	MsgPerRound         float64 `json:"msg_per_round"`
	BudgetMsgPerRound   int64   `json:"budget_msg_per_round"`
	BaselineMsgPerRound int64   `json:"baseline_msg_per_round"`
	VolumeRatio         float64 `json:"volume_ratio"`

	// FalsePositives totals verdicts raised where none were warranted:
	// during converge, on non-victims during fail-slow, during the
	// partition, and on live nodes during churn.
	FalsePositives int `json:"false_positives"`

	// DeltaEntries, FullSyncs, and SendFailures total the dissemination
	// counters across nodes at the end of the run.
	DeltaEntries int64 `json:"delta_entries"`
	FullSyncs    int64 `json:"full_syncs"`
	SendFailures int64 `json:"send_failures"`

	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// cluster is the stepped simulation state.
type cluster struct {
	cfg    Config
	clk    *clock.Virtual
	inj    *faultinject.Injector
	net    *wdmesh.MemNetwork
	names  []string
	nodes  []*wdmesh.Mesh // nil = killed
	sick   []bool
	rounds int
}

// addNode builds one Step-mode mesh; epoch distinguishes incarnations so a
// rejoining node resets its peers' ack tables.
//
//wdlint:ignore runtimecfg the campaign steps raw unstarted meshes on a virtual clock; wdruntime would start real gossip goroutines and break determinism
func (c *cluster) addNode(i int, epoch int64) (*wdmesh.Mesh, error) {
	name := c.names[i]
	peers := make([]string, 0, len(c.names)-1)
	for _, p := range c.names {
		if p != name {
			peers = append(peers, p)
		}
	}
	idx := i
	return wdmesh.New(wdmesh.Config{
		Self:       name,
		Peers:      peers,
		Interval:   c.cfg.Interval,
		Quorum:     c.cfg.Quorum,
		Fanout:     c.cfg.Fanout,
		Epoch:      epoch,
		JitterSeed: c.cfg.Seed + int64(i)*7919 + 1,
		Clock:      c.clk,
		Transport:  c.net.Node(name),
		Source: func() wdmesh.Digest {
			if c.sick[idx] {
				return wdmesh.Digest{Healthy: false, Worst: watchdog.StatusStuck, Abnormal: []string{"op"}}
			}
			return wdmesh.Digest{Healthy: true, Worst: watchdog.StatusHealthy}
		},
	})
}

// step advances the virtual clock one interval and runs every live node's
// round in index order — the deterministic heart of the campaign.
func (c *cluster) step() {
	c.clk.Advance(c.cfg.Interval)
	for _, m := range c.nodes {
		if m != nil {
			m.Step()
		}
	}
	c.rounds++
}

// raised sums the monotonic raise counter across live nodes. It walks full
// snapshots (O(N²)), so callers only use it at phase boundaries.
func (c *cluster) raised() int64 {
	var total int64
	for _, m := range c.nodes {
		if m != nil {
			total += m.Snapshot().VerdictsRaised
		}
	}
	return total
}

// noVerdicts reports whether no live node holds any cluster verdict.
func (c *cluster) noVerdicts() bool {
	for _, m := range c.nodes {
		if m != nil && len(m.Verdicts()) != 0 {
			return false
		}
	}
	return true
}

// Run executes the campaign. The verdict is deterministic in cfg.
func Run(cfg Config) (*Verdict, error) {
	cfg = cfg.withDefaults()
	n := cfg.Nodes
	rng := rand.New(rand.NewSource(cfg.Seed))
	clk := clock.NewVirtual()
	inj := faultinject.New(clk)
	inj.Seed(cfg.Seed)

	c := &cluster{
		cfg:   cfg,
		clk:   clk,
		inj:   inj,
		net:   wdmesh.NewMemNetwork(clk, inj),
		names: make([]string, n),
		nodes: make([]*wdmesh.Mesh, n),
		sick:  make([]bool, n),
	}
	for i := range c.names {
		c.names[i] = fmt.Sprintf("n%04d", i)
	}
	for i := range c.nodes {
		m, err := c.addNode(i, 1)
		if err != nil {
			return nil, fmt.Errorf("meshscale: node %s: %w", c.names[i], err)
		}
		c.nodes[i] = m
	}

	// Ambient lossy and duplicating links, armed for the whole run: gossip
	// has to converge through them, which is why redundant fanout paths
	// matter. The link set is seeded, directed, and self-loop-free.
	pickLink := func() (int, int) {
		from := rng.Intn(n)
		to := rng.Intn(n - 1)
		if to >= from {
			to++
		}
		return from, to
	}
	for i := 0; i < cfg.LossyLinks; i++ {
		from, to := pickLink()
		inj.Arm(wdmesh.LinkPoint(c.names[from], c.names[to]),
			faultinject.Fault{Kind: faultinject.Drop, Prob: 0.25})
	}
	for i := 0; i < cfg.DupLinks; i++ {
		from, to := pickLink()
		inj.Arm(wdmesh.LinkPoint(c.names[from], c.names[to]),
			faultinject.Fault{Kind: faultinject.Duplicate, Prob: 0.25})
	}

	suspectRounds := int(c.nodes[0].SuspectAfter() / cfg.Interval)
	if cfg.ConvergeRounds <= 0 {
		cfg.ConvergeRounds = 4*suspectRounds + 40
	}
	if cfg.DetectRounds <= 0 {
		cfg.DetectRounds = 4*suspectRounds + 40
	}
	if cfg.ClearRounds <= 0 {
		// Remote complaints linger until the observation table prunes them
		// (4× the suspicion window), so clearing is the slowest transition.
		cfg.ClearRounds = 6*suspectRounds + 40
	}
	if cfg.PartitionRounds <= 0 {
		cfg.PartitionRounds = 2*suspectRounds + 10
	}
	if cfg.RepairRounds <= 0 {
		cfg.RepairRounds = 8*suspectRounds + 80
	}

	v := &Verdict{
		Substrate:     "meshscale",
		Seed:          cfg.Seed,
		Nodes:         n,
		Fanout:        cfg.Fanout,
		Quorum:        cfg.Quorum,
		IntervalNS:    int64(cfg.Interval),
		LossyLinks:    cfg.LossyLinks,
		DupLinks:      cfg.DupLinks,
		SuspectRounds: suspectRounds,
	}

	// Seeded roles, all drawn before the first step: the fail-slow victim,
	// the partition groups (A cut one-way toward B, C relays), and the
	// churn kills (never the victim, so phase bookkeeping stays disjoint).
	victim := rng.Intn(n)
	v.FaultNode = c.names[victim]
	perm := rng.Perm(n)
	groupA := perm[:n/10]
	groupB := perm[n/10 : n/10+n/2]
	kills := make([]int, 0, cfg.ChurnKills)
	for _, i := range rng.Perm(n) {
		if i != victim && len(kills) < cfg.ChurnKills {
			kills = append(kills, i)
		}
	}
	sort.Ints(kills)

	// Phase 1: converge.
	allKnow := func() bool {
		for _, m := range c.nodes {
			if m != nil && m.KnownCount() != n-1 {
				return false
			}
		}
		return true
	}
	for c.rounds < cfg.ConvergeRounds && !allKnow() {
		c.step()
	}
	v.Converged = allKnow()
	v.ConvergeRounds = c.rounds
	v.ConvergeNS = int64(c.rounds) * int64(cfg.Interval)
	v.FalsePositives += int(c.raised())

	// Phase 2: fail-slow. The victim keeps gossiping — its digest just
	// turns alarming — so detection must come from intrinsic corroboration,
	// not reachability.
	c.sick[victim] = true
	faultRound := c.rounds
	detectRound := make([]int, n) // 0 = not yet; observers only
	for i := range detectRound {
		detectRound[i] = -1
	}
	detected := func() bool {
		all := true
		for i, m := range c.nodes {
			if i == victim || m == nil {
				continue
			}
			if detectRound[i] >= 0 {
				continue
			}
			hit := false
			for _, cv := range m.Verdicts() {
				if cv.Node == v.FaultNode && cv.Kind == wdmesh.VerdictIntrinsic {
					hit = true
				}
			}
			if hit {
				detectRound[i] = c.rounds
			} else {
				all = false
			}
		}
		return all
	}
	for r := 0; r < cfg.DetectRounds && !detected(); r++ {
		c.step()
	}
	v.Detected = detected()
	// Any standing verdict on a non-victim at the end of the phase is a
	// false positive (counted once, not per poll).
	for _, m := range c.nodes {
		if m == nil {
			continue
		}
		for _, cv := range m.Verdicts() {
			if cv.Node != v.FaultNode {
				v.FalsePositives++
			}
		}
	}
	var lats []int64
	for i, r := range detectRound {
		if i == victim || c.nodes[i] == nil {
			continue
		}
		v.Observers++
		if r >= 0 {
			lats = append(lats, int64(r-faultRound)*int64(cfg.Interval))
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		v.DetectP50NS = lats[len(lats)/2]
		v.DetectP95NS = lats[(len(lats)*95)/100]
		v.DetectP99NS = lats[(len(lats)*99)/100]
		v.DetectMaxNS = lats[len(lats)-1]
	}

	// Phase 3: clear.
	c.sick[victim] = false
	clearStart := c.rounds
	for r := 0; r < cfg.ClearRounds && !c.noVerdicts(); r++ {
		c.step()
	}
	v.Cleared = c.noVerdicts()
	v.ClearRounds = c.rounds - clearStart

	// Phase 4: correlated one-way partition. Every A→B link drops; C hears
	// A directly and B hears C, so relay keeps every view fresh enough that
	// no verdict may be raised.
	v.PartitionSpec = fmt.Sprintf("%d>%d one-way", len(groupA), len(groupB))
	for _, a := range groupA {
		for _, b := range groupB {
			inj.Arm(wdmesh.LinkPoint(c.names[a], c.names[b]),
				faultinject.Fault{Kind: faultinject.Drop})
			v.PartitionLinksCut++
		}
	}
	base := c.raised()
	for r := 0; r < cfg.PartitionRounds; r++ {
		c.step()
	}
	v.PartitionRounds = cfg.PartitionRounds
	v.PartitionFalsePositives = int(c.raised() - base)
	v.FalsePositives += v.PartitionFalsePositives
	// Healing disarms the cut links; ambient faults that happened to share
	// a link point are gone too, which only makes the tail calmer.
	for _, a := range groupA {
		for _, b := range groupB {
			inj.Disarm(wdmesh.LinkPoint(c.names[a], c.names[b]))
		}
	}

	// Phase 5: churn. Killed nodes detach from the network outright;
	// every survivor must convict each of them.
	for _, i := range kills {
		_ = c.nodes[i].Close()
		c.nodes[i] = nil
	}
	v.ChurnKilled = len(kills)
	convicted := func() bool {
		for _, m := range c.nodes {
			if m == nil {
				continue
			}
			for _, i := range kills {
				if m.Observation(c.names[i]) == wdmesh.ObsOK {
					return false
				}
				hit := false
				for _, cv := range m.Verdicts() {
					if cv.Node == c.names[i] && cv.Kind == wdmesh.VerdictUnreachable {
						hit = true
					}
				}
				if !hit {
					return false
				}
			}
		}
		return true
	}
	churnStart := c.rounds
	for r := 0; r < cfg.DetectRounds+2*suspectRounds && !convicted(); r++ {
		c.step()
	}
	v.ChurnDetected = convicted()
	v.ChurnDetectRounds = c.rounds - churnStart
	// Verdicts on live nodes during churn are false positives.
	liveFP := 0
	for _, m := range c.nodes {
		if m == nil {
			continue
		}
		for _, cv := range m.Verdicts() {
			killedOne := false
			for _, i := range kills {
				if cv.Node == c.names[i] {
					killedOne = true
				}
			}
			if !killedOne {
				liveFP++
			}
		}
	}
	v.FalsePositives += liveFP

	// Phase 6: rejoin with a fresh incarnation and empty state.
	for _, i := range kills {
		m, err := c.addNode(i, 2)
		if err != nil {
			return nil, fmt.Errorf("meshscale: rejoin %s: %w", c.names[i], err)
		}
		c.nodes[i] = m
	}
	repaired := func() bool {
		for _, i := range kills {
			if c.nodes[i].KnownCount() != n-1 {
				return false
			}
		}
		return c.noVerdicts()
	}
	rejoinStart := c.rounds
	for r := 0; r < cfg.RepairRounds && !repaired(); r++ {
		c.step()
	}
	v.Repaired = repaired()
	v.RejoinRounds = c.rounds - rejoinStart

	// Final accounting: one full snapshot sweep.
	v.Rounds = c.rounds
	for _, m := range c.nodes {
		if m == nil {
			continue
		}
		snap := m.Snapshot()
		v.MessagesTotal += snap.MessagesSent
		v.DeltaEntries += snap.DeltaEntries
		v.FullSyncs += snap.FullSyncs
		v.SendFailures += snap.SendFailures
	}
	if c.rounds > 0 {
		v.MsgPerRound = float64(v.MessagesTotal) / float64(c.rounds)
	}
	v.BudgetMsgPerRound = int64(n * (cfg.Fanout + 2))
	v.BaselineMsgPerRound = int64(n * (n - 1))
	v.VolumeRatio = v.MsgPerRound / float64(v.BaselineMsgPerRound)

	if !v.Converged {
		v.Failures = append(v.Failures,
			fmt.Sprintf("cluster did not converge within %d rounds", cfg.ConvergeRounds))
	}
	if !v.Detected {
		v.Failures = append(v.Failures,
			"not every observer reached an intrinsic verdict on the fail-slow node")
	}
	if !v.Cleared {
		v.Failures = append(v.Failures, "verdicts did not clear after the victim recovered")
	}
	if v.PartitionFalsePositives > 0 {
		v.Failures = append(v.Failures,
			fmt.Sprintf("%d verdict(s) raised under the correlated one-way partition", v.PartitionFalsePositives))
	}
	if !v.ChurnDetected {
		v.Failures = append(v.Failures, "survivors did not convict every killed node")
	}
	if !v.Repaired {
		v.Failures = append(v.Failures, "rejoined nodes did not repair to a full table with all verdicts cleared")
	}
	if v.FalsePositives > 0 {
		v.Failures = append(v.Failures,
			fmt.Sprintf("%d false positive verdict(s) across benign phases", v.FalsePositives))
	}
	if v.MsgPerRound > float64(v.BudgetMsgPerRound) {
		v.Failures = append(v.Failures,
			fmt.Sprintf("message volume %.1f/round exceeds the O(N·K) budget %d", v.MsgPerRound, v.BudgetMsgPerRound))
	}
	v.Pass = len(v.Failures) == 0
	return v, nil
}

// JSON renders the verdict for CI consumption (BENCH_mesh.json).
func (v *Verdict) JSON() ([]byte, error) { return json.MarshalIndent(v, "", "  ") }

// Render formats the verdict for humans.
func (v *Verdict) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign meshscale seed=%d nodes=%d fanout=%d quorum=%d interval=%s\n",
		v.Seed, v.Nodes, v.Fanout, v.Quorum, time.Duration(v.IntervalNS))
	fmt.Fprintf(&b, "  ambient faults: %d lossy link(s), %d duplicating link(s); suspicion window %d rounds\n",
		v.LossyLinks, v.DupLinks, v.SuspectRounds)
	fmt.Fprintf(&b, "  converged %v in %d rounds (%s)\n",
		v.Converged, v.ConvergeRounds, time.Duration(v.ConvergeNS))
	fmt.Fprintf(&b, "  fail-slow on %s: detected %v across %d observers", v.FaultNode, v.Detected, v.Observers)
	if v.Detected {
		fmt.Fprintf(&b, " (p50=%s p95=%s p99=%s max=%s)",
			time.Duration(v.DetectP50NS), time.Duration(v.DetectP95NS),
			time.Duration(v.DetectP99NS), time.Duration(v.DetectMaxNS))
	}
	fmt.Fprintf(&b, "; cleared %v in %d rounds\n", v.Cleared, v.ClearRounds)
	fmt.Fprintf(&b, "  partition %s (%d links, %d rounds): %d false positive(s)\n",
		v.PartitionSpec, v.PartitionLinksCut, v.PartitionRounds, v.PartitionFalsePositives)
	fmt.Fprintf(&b, "  churn: %d killed, convicted everywhere %v in %d rounds; rejoined and repaired %v in %d rounds\n",
		v.ChurnKilled, v.ChurnDetected, v.ChurnDetectRounds, v.Repaired, v.RejoinRounds)
	fmt.Fprintf(&b, "  volume: %.1f msg/round over %d rounds — budget %d (N·(K+2)), full-mesh baseline %d (ratio %.4f)\n",
		v.MsgPerRound, v.Rounds, v.BudgetMsgPerRound, v.BaselineMsgPerRound, v.VolumeRatio)
	fmt.Fprintf(&b, "  dissemination: %d delta entries, %d full syncs, %d send failures; false positives %d\n",
		v.DeltaEntries, v.FullSyncs, v.SendFailures, v.FalsePositives)
	if v.Pass {
		b.WriteString("  PASS\n")
	} else {
		fmt.Fprintf(&b, "  FAIL: %s\n", strings.Join(v.Failures, "; "))
	}
	return b.String()
}
