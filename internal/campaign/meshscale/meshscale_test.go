package meshscale

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// small returns a campaign config sized for unit tests: big enough that the
// partition groups, quorum, and churn set are all non-trivial, small enough
// to finish in well under a second.
func small(seed int64) Config {
	return Config{Seed: seed, Nodes: 48, Fanout: 3, Interval: 50 * time.Millisecond}
}

// TestRunSmallPasses runs the full phase sequence on a small cluster and
// requires a clean verdict: converged, detected, cleared, no false
// positives, churn convicted, rejoin repaired, and message volume within the
// O(N·K) budget.
func TestRunSmallPasses(t *testing.T) {
	v, err := Run(small(7))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("verdict failed: %s", strings.Join(v.Failures, "; "))
	}
	if v.FalsePositives != 0 {
		t.Fatalf("false positives = %d, want 0", v.FalsePositives)
	}
	if v.MsgPerRound > float64(v.BudgetMsgPerRound) {
		t.Fatalf("msg/round %.1f over budget %d", v.MsgPerRound, v.BudgetMsgPerRound)
	}
	if float64(v.BaselineMsgPerRound) <= v.MsgPerRound*2 {
		t.Fatalf("msg/round %.1f not meaningfully below the full-mesh baseline %d",
			v.MsgPerRound, v.BaselineMsgPerRound)
	}
	if v.DetectMaxNS <= 0 || v.Observers != v.Nodes-1 {
		t.Fatalf("latency bookkeeping broken: max=%d observers=%d", v.DetectMaxNS, v.Observers)
	}
	if r := v.Render(); !strings.Contains(r, "PASS") {
		t.Fatalf("render of a passing verdict lacks PASS:\n%s", r)
	}
}

// TestRunDeterministic: the same seed must reproduce the same verdict bit for
// bit — the property that lets CI commit BENCH_mesh.json.
func TestRunDeterministic(t *testing.T) {
	a, err := Run(small(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(small(42))
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("same seed, different verdicts:\n%s\nvs\n%s", aj, bj)
	}
	c, err := Run(small(43))
	if err != nil {
		t.Fatal(err)
	}
	if c.FaultNode == a.FaultNode && c.MessagesTotal == a.MessagesTotal {
		t.Fatal("different seeds produced an identical run — seeding is not wired through")
	}
}
