package campaign

import "gowatchdog/internal/campaign/meshscale"

// RunMeshScale executes the mesh-at-scale survival campaign: hundreds of
// Step-mode wdmesh nodes on a virtual clock under seeded correlated
// partitions, churn, and lossy links, scored on convergence, verdict latency,
// false positives, and O(N·K) message volume. It is a thin alias for
// meshscale.Run so campaign callers see one surface; the implementation lives
// in its own package because the stepped simulation shares nothing with the
// real-clock targets here.
func RunMeshScale(cfg meshscale.Config) (*meshscale.Verdict, error) {
	return meshscale.Run(cfg)
}
