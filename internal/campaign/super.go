package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"gowatchdog/internal/supervise"
	"gowatchdog/internal/supervise/episode"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdruntime"
)

// EnvSuperChild selects the re-exec child mode for the super campaign. The
// campaign has to SIGKILL and SIGSTOP real processes, so the daemon under
// supervision is the invoking binary itself, re-executed with this variable
// set ("serve" = a feeding wdruntime daemon, "crash" = exit 1 immediately).
const EnvSuperChild = "WDCHAOS_SUPER_CHILD"

// MaybeSuperChild turns the current process into a super-campaign child when
// EnvSuperChild is set; it never returns in that case. Call it first thing in
// main() (and in TestMain) of any binary used as a SuperConfig.ChildCommand.
func MaybeSuperChild() {
	switch os.Getenv(EnvSuperChild) {
	case "":
		return
	case "crash":
		os.Exit(1)
	case "serve":
		superServe()
	default:
		os.Exit(2)
	}
}

// superServe is the "serve" child: a real wdruntime daemon with one healthy
// checker, feeding sd_notify from the intrinsic verdict until SIGTERM.
func superServe() {
	rt, err := wdruntime.New(
		wdruntime.WithInterval(20*time.Millisecond),
		wdruntime.WithSdNotify(),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "super child: %v\n", err)
		os.Exit(1)
	}
	rt.Driver().Register(
		watchdog.NewChecker("serve", func(*watchdog.Context) error { return nil }),
		watchdog.WithContext(readyContext()),
	)
	if err := rt.Start(nil); err != nil {
		fmt.Fprintf(os.Stderr, "super child: %v\n", err)
		os.Exit(1)
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM, syscall.SIGINT)
	<-ch
	_ = rt.Drain()
	_ = rt.Close()
	os.Exit(0)
}

// SuperConfig parameterizes one supervision campaign (RunSuper).
type SuperConfig struct {
	// Seed drives restart-backoff jitter and the inter-outage schedule.
	Seed int64
	// ChildCommand re-executes a binary whose main calls MaybeSuperChild;
	// the campaign selects the child behavior via EnvSuperChild.
	ChildCommand []string
	// Outages is the number of SIGKILL rounds (default 2). One SIGSTOP hang
	// round and one adoption round always follow.
	Outages int
	// FeedWindow is the sd_notify watchdog window the supervisor arms
	// (default 300ms); the child feeds at a third of it.
	FeedWindow time.Duration
	// ProbeEvery (default 20ms) and StuckAfter (default 2×FeedWindow) tune
	// stuck detection on the supervisor's probe loop.
	ProbeEvery time.Duration
	StuckAfter time.Duration
	// TermGrace bounds graceful termination (default 2s).
	TermGrace time.Duration
	// StormRestarts is the storm-phase breaker threshold (default 3).
	StormRestarts int
	// Dir is the scratch directory for the ledger and notify socket
	// (default: a fresh temp dir).
	Dir string
}

func (c SuperConfig) withDefaults() (SuperConfig, error) {
	if len(c.ChildCommand) == 0 {
		return c, errors.New("campaign: super: empty ChildCommand")
	}
	if c.Outages <= 0 {
		c.Outages = 2
	}
	if c.FeedWindow <= 0 {
		c.FeedWindow = 300 * time.Millisecond
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 20 * time.Millisecond
	}
	if c.StuckAfter <= 0 {
		c.StuckAfter = 2 * c.FeedWindow
	}
	if c.TermGrace <= 0 {
		c.TermGrace = 2 * time.Second
	}
	if c.StormRestarts <= 0 {
		c.StormRestarts = 3
	}
	return c, nil
}

// SuperOutage is one induced outage and its measured recovery.
type SuperOutage struct {
	// Kind is "sigkill", "sigstop", or "adoption".
	Kind string `json:"kind"`
	// RestartNS is induced-fault to replacement-spawn latency; HealthyNS is
	// induced-fault to the replacement's first accepted sd_notify feed.
	RestartNS int64 `json:"restart_ns"`
	HealthyNS int64 `json:"healthy_ns"`
}

// SuperVerdict is the machine-readable supervision-campaign outcome; CI gates
// on Pass.
type SuperVerdict struct {
	Substrate    string `json:"substrate"`
	Seed         int64  `json:"seed"`
	FeedWindowNS int64  `json:"feed_window_ns"`

	// Outages lists every induced outage with its recovery latencies.
	Outages      []SuperOutage `json:"outages"`
	RestartP50NS int64         `json:"restart_p50_ns,omitempty"`
	RestartMaxNS int64         `json:"restart_max_ns,omitempty"`
	HealthyP50NS int64         `json:"healthy_p50_ns,omitempty"`
	HealthyMaxNS int64         `json:"healthy_max_ns,omitempty"`

	// AdoptedClosed reports whether the episode left open by the killed
	// supervisor was adopted and closed healthy by its successor.
	AdoptedClosed bool `json:"adopted_closed"`

	// StormBreaker reports whether the crash-loop supervisor gave up at the
	// breaker threshold; StormDeaths is its death count when it did.
	StormBreaker bool `json:"storm_breaker"`
	StormDeaths  int  `json:"storm_deaths"`

	// Ledger consistency: every induced outage must map to exactly one
	// closed episode, with no torn records.
	LedgerEpisodes   int  `json:"ledger_episodes"`
	LedgerOpen       int  `json:"ledger_open"`
	TornRecords      int  `json:"torn_records"`
	LedgerConsistent bool `json:"ledger_consistent"`

	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// spawnEvent records one child spawn as observed via Config.OnSpawn.
type spawnEvent struct {
	pid int
	at  time.Time
}

// RunSuper executes the seeded supervision campaign against a real daemon
// process under a real Supervisor. Phases:
//
//  1. warmup — spawn the serve child, wait for its first accepted feed
//  2. SIGKILL outages — kill the child mid-feed; score time-to-restart and
//     time-to-healthy per round
//  3. SIGSTOP hang — stop the child so feeds cease; the supervisor must
//     diagnose it stuck, kill the group, and respawn
//  4. adoption — kill the child, then cancel the supervisor while the
//     episode is open; a successor supervisor must adopt and close it
//  5. crash-loop storm — a child that exits immediately must trip the
//     restart-storm breaker and close its episode gave-up
func RunSuper(cfg SuperConfig) (*SuperVerdict, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "wdchaos-super-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	v := &SuperVerdict{
		Substrate:    "super",
		Seed:         cfg.Seed,
		FeedWindowNS: int64(cfg.FeedWindow),
	}

	ledgerPath := filepath.Join(dir, "episodes.jsonl")
	ledger, err := episode.Open(ledgerPath)
	if err != nil {
		return nil, err
	}
	defer ledger.CloseFile()

	listener, err := supervise.ListenNotify(dir, cfg.FeedWindow)
	if err != nil {
		return nil, err
	}
	defer listener.Close()

	spawns := make(chan spawnEvent, 64)
	superCfg := supervise.Config{
		Name:    "superd",
		Command: cfg.ChildCommand,
		Env:     append(listener.Env(), EnvSuperChild+"=serve"),
		// Induced outages must never trip the breaker in the serve phases.
		MaxRestarts:   cfg.Outages + 10,
		RestartWindow: time.Minute,
		// The backoff also bounds the open-episode window the adoption phase
		// must observe before taking the supervisor down; keep it comfortably
		// above the ledger poll cadence.
		BackoffBase: 50 * time.Millisecond,
		BackoffCap:  200 * time.Millisecond,
		JitterSeed:  cfg.Seed,
		HealthProbe: listener.Probe,
		ProbeEvery:  cfg.ProbeEvery,
		StuckAfter:  cfg.StuckAfter,
		TermGrace:   cfg.TermGrace,
		Trigger:     listener.Trigger(),
		Ledger:      ledger,
		OnSpawn: func(pid int) {
			listener.Reset(pid)
			spawns <- spawnEvent{pid: pid, at: time.Now()}
		},
	}

	sup, err := supervise.New(superCfg)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- sup.Run(ctx) }()
	stopSuper := stopOnce(cancel, runDone, "supervisor")
	defer stopSuper() //nolint:errcheck — re-checked on every success path

	// Phase 1: warmup. The first spawn and the first accepted feed arm the
	// campaign clock.
	if _, err := waitSpawn(spawns, 15*time.Second); err != nil {
		return nil, fmt.Errorf("campaign: super: warmup: %w", err)
	}
	if err := waitHealthy(listener, 15*time.Second); err != nil {
		return nil, fmt.Errorf("campaign: super: warmup: %w", err)
	}

	induce := func(kind string, fault func(pid int) error) error {
		// A seeded settle gap decorrelates the outage from the feed phase.
		time.Sleep(time.Duration(10+rng.Intn(40)) * time.Millisecond)
		pid := sup.Pid()
		start := time.Now()
		if err := fault(pid); err != nil {
			return fmt.Errorf("campaign: super: %s pid %d: %w", kind, pid, err)
		}
		ev, err := waitSpawn(spawns, 15*time.Second)
		if err != nil {
			return fmt.Errorf("campaign: super: %s: no respawn: %w", kind, err)
		}
		if err := waitHealthy(listener, 15*time.Second); err != nil {
			return fmt.Errorf("campaign: super: %s: replacement not healthy: %w", kind, err)
		}
		v.Outages = append(v.Outages, SuperOutage{
			Kind:      kind,
			RestartNS: int64(ev.at.Sub(start)),
			HealthyNS: int64(time.Since(start)),
		})
		return nil
	}

	// Phase 2: SIGKILL outages.
	for i := 0; i < cfg.Outages; i++ {
		if err := induce("sigkill", func(pid int) error {
			return syscall.Kill(pid, syscall.SIGKILL)
		}); err != nil {
			return nil, err
		}
	}

	// Phase 3: SIGSTOP hang — the process stays alive but its feeds stop, so
	// only the probe/stuck path can diagnose it.
	if err := induce("sigstop", func(pid int) error {
		return syscall.Kill(pid, syscall.SIGSTOP)
	}); err != nil {
		return nil, err
	}

	// Phase 4: adoption. Kill the child, wait for the supervisor to open the
	// episode, then take the supervisor down mid-outage. A successor
	// supervisor on a freshly replayed ledger must adopt the open episode and
	// close it healthy.
	if err := waitAllClosed(ledgerPath, 15*time.Second); err != nil {
		return nil, fmt.Errorf("campaign: super: pre-adoption settle: %w", err)
	}
	adoptStart := time.Now()
	if err := syscall.Kill(sup.Pid(), syscall.SIGKILL); err != nil {
		return nil, fmt.Errorf("campaign: super: adoption kill: %w", err)
	}
	if err := waitOpenEpisode(ledgerPath, 15*time.Second); err != nil {
		return nil, fmt.Errorf("campaign: super: adoption: %w", err)
	}
	if err := stopSuper(); err != nil {
		return nil, err
	}
	drainSpawns(spawns)

	// The successor replays the ledger from disk, the same way a restarted
	// wdsuper process would; the replay is what marks the episode adopted.
	if err := ledger.CloseFile(); err != nil {
		return nil, err
	}
	ledger2, err := episode.Open(ledgerPath)
	if err != nil {
		return nil, err
	}
	defer ledger2.CloseFile()
	superCfg.Ledger = ledger2

	sup2, err := supervise.New(superCfg)
	if err != nil {
		return nil, err
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	runDone2 := make(chan error, 1)
	go func() { runDone2 <- sup2.Run(ctx2) }()
	stopSuper2 := stopOnce(cancel2, runDone2, "successor supervisor")
	defer stopSuper2() //nolint:errcheck — re-checked below

	ev, err := waitSpawn(spawns, 15*time.Second)
	if err != nil {
		return nil, fmt.Errorf("campaign: super: adoption respawn: %w", err)
	}
	if err := waitHealthy(listener, 15*time.Second); err != nil {
		return nil, fmt.Errorf("campaign: super: adoption health: %w", err)
	}
	v.Outages = append(v.Outages, SuperOutage{
		Kind:      "adoption",
		RestartNS: int64(ev.at.Sub(adoptStart)),
		HealthyNS: int64(time.Since(adoptStart)),
	})
	// The close record lands right after the successful probe; give the
	// ledger a beat before tearing the successor down.
	if err := waitAllClosed(ledgerPath, 15*time.Second); err != nil {
		return nil, fmt.Errorf("campaign: super: adoption close: %w", err)
	}
	if err := stopSuper2(); err != nil {
		return nil, err
	}

	// Phase 5: crash-loop storm on a child that exits 1 immediately. The
	// crash child never feeds, so the sd_notify wiring comes off: death
	// detection alone must drive the breaker.
	stormCfg := superCfg
	stormCfg.Name = "crashd"
	stormCfg.Env = []string{EnvSuperChild + "=crash"}
	stormCfg.MaxRestarts = cfg.StormRestarts
	stormCfg.HealthProbe = nil
	stormCfg.Trigger = nil
	stormCfg.OnSpawn = nil
	storm, err := supervise.New(stormCfg)
	if err != nil {
		return nil, err
	}
	stormCtx, stormCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer stormCancel()
	stormErr := storm.Run(stormCtx)
	var se *supervise.StormError
	if errors.As(stormErr, &se) {
		v.StormBreaker = true
		v.StormDeaths = se.Deaths
	}

	// Score the ledger: one closed episode per induced outage plus the storm
	// give-up, no torn records, nothing left open.
	eps, torn, err := episode.Read(ledgerPath)
	if err != nil {
		return nil, err
	}
	v.LedgerEpisodes = len(eps)
	v.TornRecords = torn
	var adopted, gaveUp int
	for _, e := range eps {
		if !e.Closed {
			v.LedgerOpen++
			continue
		}
		if e.Adopted {
			adopted++
		}
		if e.Resolution == episode.ResolutionGaveUp {
			gaveUp++
		}
	}
	wantEpisodes := len(v.Outages) + 1 // + the storm's gave-up episode
	v.LedgerConsistent = v.LedgerEpisodes == wantEpisodes &&
		v.LedgerOpen == 0 && v.TornRecords == 0 && adopted == 1 && gaveUp == 1

	var restarts, healthies []int64
	for _, o := range v.Outages {
		restarts = append(restarts, o.RestartNS)
		healthies = append(healthies, o.HealthyNS)
	}
	v.RestartP50NS, v.RestartMaxNS = p50max(restarts)
	v.HealthyP50NS, v.HealthyMaxNS = p50max(healthies)

	if got := len(v.Outages); got != cfg.Outages+2 {
		v.Failures = append(v.Failures,
			fmt.Sprintf("induced %d outage(s), recovered from %d", cfg.Outages+2, got))
	}
	if !v.AdoptedClosedOK(eps) {
		v.Failures = append(v.Failures,
			"the episode left open across the supervisor restart was not adopted and closed healthy")
	} else {
		v.AdoptedClosed = true
	}
	if !v.StormBreaker {
		v.Failures = append(v.Failures,
			fmt.Sprintf("crash-loop did not trip the restart-storm breaker (err=%v)", stormErr))
	} else if v.StormDeaths != cfg.StormRestarts {
		v.Failures = append(v.Failures,
			fmt.Sprintf("storm breaker tripped at %d death(s), want %d", v.StormDeaths, cfg.StormRestarts))
	}
	if !v.LedgerConsistent {
		v.Failures = append(v.Failures, fmt.Sprintf(
			"ledger inconsistent: %d episode(s) want %d, %d open, %d torn, %d adopted, %d gave-up",
			v.LedgerEpisodes, wantEpisodes, v.LedgerOpen, v.TornRecords, adopted, gaveUp))
	}
	v.Pass = len(v.Failures) == 0
	return v, nil
}

// AdoptedClosedOK reports whether exactly one episode was adopted and that it
// closed healthy.
func (v *SuperVerdict) AdoptedClosedOK(eps []episode.Episode) bool {
	for _, e := range eps {
		if e.Adopted && e.Closed && e.Resolution == episode.ResolutionHealthy {
			return true
		}
	}
	return false
}

// stopOnce wraps a supervisor teardown so the deferred safety call after an
// explicit stop returns the remembered result instead of blocking on the
// already-drained done channel.
func stopOnce(cancel context.CancelFunc, done <-chan error, what string) func() error {
	var (
		stopped bool
		result  error
	)
	return func() error {
		if stopped {
			return result
		}
		stopped = true
		cancel()
		select {
		case result = <-done:
		case <-time.After(30 * time.Second):
			result = fmt.Errorf("campaign: super: %s did not stop", what)
		}
		return result
	}
}

// waitSpawn waits for the next OnSpawn event.
func waitSpawn(ch <-chan spawnEvent, timeout time.Duration) (spawnEvent, error) {
	select {
	case ev := <-ch:
		return ev, nil
	case <-time.After(timeout):
		return spawnEvent{}, errors.New("timed out waiting for a spawn")
	}
}

// drainSpawns empties queued spawn events between phases.
func drainSpawns(ch <-chan spawnEvent) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

// waitHealthy polls the notify listener until the child's feeds are current.
func waitHealthy(nl *supervise.NotifyListener, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if nl.Probe() == nil {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return errors.New("timed out waiting for a healthy feed")
}

// waitOpenEpisode polls the ledger file until an episode is open.
func waitOpenEpisode(path string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		eps, _, err := episode.Read(path)
		if err == nil {
			for _, e := range eps {
				if !e.Closed {
					return nil
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return errors.New("timed out waiting for an open episode")
}

// waitAllClosed polls the ledger file until no episode is open.
func waitAllClosed(path string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		eps, _, err := episode.Read(path)
		if err == nil {
			open := 0
			for _, e := range eps {
				if !e.Closed {
					open++
				}
			}
			if open == 0 {
				return nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return errors.New("timed out waiting for every episode to close")
}

// p50max summarizes a latency list.
func p50max(ns []int64) (p50, max int64) {
	if len(ns) == 0 {
		return 0, 0
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2], sorted[len(sorted)-1]
}

// JSON renders the verdict for CI consumption.
func (v *SuperVerdict) JSON() ([]byte, error) { return json.MarshalIndent(v, "", "  ") }

// Render formats the verdict for humans.
func (v *SuperVerdict) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign super seed=%d feed-window=%s outages=%d\n",
		v.Seed, time.Duration(v.FeedWindowNS), len(v.Outages))
	for _, o := range v.Outages {
		fmt.Fprintf(&b, "  %-8s restart=%s healthy=%s\n", o.Kind,
			time.Duration(o.RestartNS).Round(time.Millisecond),
			time.Duration(o.HealthyNS).Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "  restart p50=%s max=%s; healthy p50=%s max=%s\n",
		time.Duration(v.RestartP50NS).Round(time.Millisecond),
		time.Duration(v.RestartMaxNS).Round(time.Millisecond),
		time.Duration(v.HealthyP50NS).Round(time.Millisecond),
		time.Duration(v.HealthyMaxNS).Round(time.Millisecond))
	fmt.Fprintf(&b, "  adoption closed across supervisor restart: %v\n", v.AdoptedClosed)
	fmt.Fprintf(&b, "  storm breaker: %v (deaths=%d)\n", v.StormBreaker, v.StormDeaths)
	fmt.Fprintf(&b, "  ledger: %d episode(s), %d open, %d torn — consistent %v\n",
		v.LedgerEpisodes, v.LedgerOpen, v.TornRecords, v.LedgerConsistent)
	if v.Pass {
		b.WriteString("  PASS\n")
	} else {
		fmt.Fprintf(&b, "  FAIL: %s\n", strings.Join(v.Failures, "; "))
	}
	return b.String()
}
