package campaign

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"gowatchdog/internal/dfs"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/kvs"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
	"gowatchdog/internal/wdruntime"
)

// Checker-source selectors for the ablation targets (EXPERIMENTS.md E13):
// the same substrate and fault points, scored under different checker suites,
// so the verdicts isolate what each source of checkers buys.
const (
	// CheckersReduced installs only the hand-tuned suite produced by mainline
	// region reduction (InstallWatchdog) — the §4 baseline.
	CheckersReduced = "reduced"
	// CheckersMined installs only the checkers mined from the package's test
	// suite (awgen -from-tests).
	CheckersMined = "mined"
	// CheckersBoth installs both suites; fault points covered by a mined
	// checker are attributed to it, so the verdict shows the mined suite
	// detecting alongside the reduced one rather than being shadowed by it.
	CheckersBoth = "both"
)

// UncoveredChecker names the sentinel checker for a fault point the selected
// suite does not guard. No checker registers under this name, so every fault
// armed there scores as a miss — which is the measurement: the ablation
// quantifies coverage lost, not just latency.
func UncoveredChecker(point string) string { return "uncovered:" + point }

// ablationPoint is one fault point with per-suite checker attribution.
type ablationPoint struct {
	point   string
	reduced string // reduced-suite checker guarding the point
	mined   string // mined-suite checker guarding it, "" if uncovered
}

// attribute resolves one point's expected checker under a source selection.
// Ablation schedules arm Error faults only: hangs exercise the liveness
// machinery, which both suites share, and would blur the coverage comparison.
func (ap ablationPoint) attribute(source string) FaultPoint {
	checker := ""
	switch source {
	case CheckersReduced:
		checker = ap.reduced
	case CheckersMined:
		checker = ap.mined
	case CheckersBoth:
		checker = ap.mined
		if checker == "" {
			checker = ap.reduced
		}
	}
	if checker == "" {
		checker = UncoveredChecker(ap.point)
	}
	return FaultPoint{
		Point:   ap.point,
		Checker: checker,
		Kinds:   []faultinject.Kind{faultinject.Error},
	}
}

func validAblationSource(source string) error {
	switch source {
	case CheckersReduced, CheckersMined, CheckersBoth:
		return nil
	}
	return fmt.Errorf("campaign: unknown checker source %q (want %s|%s|%s)",
		source, CheckersReduced, CheckersMined, CheckersBoth)
}

// kvsAblationPoints is the kvs attribution table. The reduced suite guards
// every point; the mined suite traverses only the read paths its source
// assertions probed — Get fires the indexer-get point and VerifyPartition the
// sstable-read point — leaving the four write-path points uncovered.
var kvsAblationPoints = []ablationPoint{
	{point: kvs.FaultFlushWrite, reduced: "kvs.flusher"},
	{point: kvs.FaultWALAppend, reduced: "kvs.wal"},
	{point: kvs.FaultIndexerPut, reduced: "kvs.indexer"},
	{point: kvs.FaultCompactMerge, reduced: "kvs.compaction"},
	{point: kvs.FaultIndexerGet, reduced: "kvs.indexer", mined: "kvs.mined.store_get"},
	{point: kvs.FaultSSTableRead, reduced: "kvs.partition", mined: "kvs.mined.store_verifypartition"},
}

// NewKVSAblationTarget opens a kvs store under dir and wires the selected
// checker suite(s). Identical substrate and workload to NewKVSTarget; no
// recovery manager, so the verdict isolates detection.
func NewKVSAblationTarget(dir, source string, opts ...wdruntime.Option) (*Target, error) {
	if err := validAblationSource(source); err != nil {
		return nil, err
	}
	factory := watchdog.NewFactory()
	store, err := kvs.Open(kvs.Config{
		Dir:                 dir,
		FlushThresholdBytes: 1 << 30, // flush only on demand
		WatchdogFactory:     factory,
	})
	if err != nil {
		return nil, err
	}

	base := []wdruntime.Option{
		wdruntime.WithFactory(factory),
		wdruntime.WithInterval(50 * time.Millisecond),
		wdruntime.WithTimeout(250 * time.Millisecond),
	}
	rt, err := wdruntime.New(append(base, opts...)...)
	if err != nil {
		store.Close()
		return nil, err
	}
	d := rt.Driver()

	closers := []func() error{rt.Close, store.Close}
	if source != CheckersMined {
		shadow, err := wdio.NewFS(kvs.ShadowDirFor(dir), 0)
		if err != nil {
			rt.Close()
			store.Close()
			return nil, err
		}
		store.InstallWatchdog(d, shadow)
	}
	if source != CheckersReduced {
		kvs.RegisterMinedStoreCheckers(d, store)
	}

	points := make([]FaultPoint, 0, len(kvsAblationPoints))
	for _, ap := range kvsAblationPoints {
		points = append(points, ap.attribute(source))
	}

	payload := []byte("ablation-payload")
	var inflight atomic.Bool
	return &Target{
		Name:     "kvs-ablation-" + source,
		Runtime:  rt,
		Driver:   d,
		Injector: store.Injector(),
		Points:   points,
		Step: func(tick int) {
			// Same abandoned-write workload as NewKVSTarget: it keeps the
			// hook-fed contexts fresh for the reduced suite and hangs nothing.
			if !inflight.CompareAndSwap(false, true) {
				return
			}
			key := []byte{byte(tick % 251)}
			go func() {
				defer inflight.Store(false)
				_ = store.Set(key, payload)
			}()
		},
		Close: func() error {
			drainInflight(&inflight)
			var errs []error
			for _, c := range closers {
				errs = append(errs, c())
			}
			return errors.Join(errs...)
		},
	}, nil
}

// dfsAblationPoints: the reduced dfs.disk checker probes both the write and
// read point of every volume; the mined ScanBlocks checker re-reads committed
// blocks, traversing only the read points.
var dfsAblationPoints = []ablationPoint{
	{point: dfs.FaultVolumeWritePrefix + "0", reduced: "dfs.disk"},
	{point: dfs.FaultVolumeWritePrefix + "1", reduced: "dfs.disk"},
	{point: dfs.FaultVolumeReadPrefix + "0", reduced: "dfs.disk", mined: "dfs.mined.datanode_scanblocks"},
	{point: dfs.FaultVolumeReadPrefix + "1", reduced: "dfs.disk", mined: "dfs.mined.datanode_scanblocks"},
}

// NewDFSAblationTarget builds a two-volume DataNode with the selected checker
// suite(s). Four blocks are committed up front so the mined ScanBlocks
// checker traverses both volumes' read points from the first tick.
func NewDFSAblationTarget(dir, source string, opts ...wdruntime.Option) (*Target, error) {
	if err := validAblationSource(source); err != nil {
		return nil, err
	}
	factory := watchdog.NewFactory()
	dn, err := dfs.New(dfs.Config{
		VolumeDirs:      []string{filepath.Join(dir, "vol0"), filepath.Join(dir, "vol1")},
		WatchdogFactory: factory,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 4; i++ {
		if _, err := dn.WriteBlock([]byte(fmt.Sprintf("ablation seed block %d", i))); err != nil {
			return nil, err
		}
	}

	base := []wdruntime.Option{
		wdruntime.WithFactory(factory),
		wdruntime.WithInterval(50 * time.Millisecond),
		wdruntime.WithTimeout(250 * time.Millisecond),
	}
	rt, err := wdruntime.New(append(base, opts...)...)
	if err != nil {
		return nil, err
	}
	d := rt.Driver()
	if source != CheckersMined {
		dn.InstallWatchdog(d)
	}
	if source != CheckersReduced {
		dfs.RegisterMinedDataNodeCheckers(d, dn)
	}

	points := make([]FaultPoint, 0, len(dfsAblationPoints))
	for _, ap := range dfsAblationPoints {
		points = append(points, ap.attribute(source))
	}

	payload := []byte("ablation block payload")
	var inflight atomic.Bool
	return &Target{
		Name:     "dfs-ablation-" + source,
		Runtime:  rt,
		Driver:   d,
		Injector: dn.Injector(),
		Points:   points,
		Step: func(tick int) {
			if tick%4 != 0 || !inflight.CompareAndSwap(false, true) {
				return
			}
			go func() {
				defer inflight.Store(false)
				_, _ = dn.WriteBlock(payload)
			}()
		},
		Close: func() error {
			drainInflight(&inflight)
			return rt.Close()
		},
	}, nil
}

// NewAblationTarget builds the named ablation substrate ("kvs" or "dfs")
// under the given checker source.
func NewAblationTarget(name, dir, source string, opts ...wdruntime.Option) (*Target, error) {
	switch name {
	case "kvs":
		return NewKVSAblationTarget(filepath.Join(dir, "kvs"), source, opts...)
	case "dfs":
		return NewDFSAblationTarget(filepath.Join(dir, "dfs"), source, opts...)
	default:
		return nil, fmt.Errorf("campaign: no ablation substrate %q (want kvs or dfs)", name)
	}
}
