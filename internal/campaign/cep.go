package campaign

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/wdcep"
	"gowatchdog/internal/wdruntime"
)

// CEPConfig parameterizes one temporal-rule campaign (RunCEP).
type CEPConfig struct {
	// Seed picks the streak victim and the spread pair.
	Seed int64
	// Interval is the per-tick advance on the virtual clock (default 100ms).
	Interval time.Duration
	// WarmupTicks (default 10) run fault-free before the streak fault.
	WarmupTicks int
	// StreakTicks (default 8) is how long the victim's error fault stays
	// armed; the consecutive rule needs streakThreshold abnormal reports.
	StreakTicks int
	// GapTicks (default 6) separate the streak and spread phases so the
	// spread rule's window cannot absorb streak-phase hits.
	GapTicks int
	// SpreadTicks (default 4) is how long both spread faults stay armed.
	SpreadTicks int
	// CooldownTicks (default 10) run fault-free after the spread phase.
	CooldownTicks int
}

// streakThreshold is the consecutive-abnormal count the streak rule arms
// with; spreadWindowTicks bounds the distinct rule's window in ticks.
const (
	streakThreshold   = 3
	spreadWindowTicks = 4
)

func (c CEPConfig) withDefaults() CEPConfig {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.WarmupTicks <= 0 {
		c.WarmupTicks = 10
	}
	if c.StreakTicks <= 0 {
		c.StreakTicks = 8
	}
	if c.GapTicks <= 0 {
		c.GapTicks = 6
	}
	if c.SpreadTicks <= 0 {
		c.SpreadTicks = 4
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 10
	}
	return c
}

// CEPVerdict is the machine-readable temporal-rule campaign outcome; CI gates
// on Pass.
type CEPVerdict struct {
	Substrate  string `json:"substrate"`
	Seed       int64  `json:"seed"`
	IntervalNS int64  `json:"interval_ns"`
	Rules      int    `json:"rules"`

	// VictimChecker carries the seeded streak victim; SpreadCheckers the two
	// checkers faulted together for the distinct rule.
	VictimChecker  string   `json:"victim_checker"`
	SpreadCheckers []string `json:"spread_checkers"`

	// StreakDetected reports whether the consecutive-abnormal rule fired;
	// StreakLatencyNS is fire time minus the earliest contributing point
	// event — the window the rule had to look back across to decide.
	StreakDetected  bool  `json:"streak_detected"`
	StreakLatencyNS int64 `json:"streak_latency_ns,omitempty"`
	StreakCount     int   `json:"streak_count,omitempty"`

	// SpreadDetected reports whether the >=K-distinct-checkers rule fired;
	// SpreadLatencyNS measures the same earliest-contribution latency.
	SpreadDetected  bool  `json:"spread_detected"`
	SpreadLatencyNS int64 `json:"spread_latency_ns,omitempty"`

	// FiredTotal and RingDrops come from the faulted arm's engine snapshot.
	FiredTotal int64 `json:"fired_total"`
	RingDrops  int64 `json:"ring_drops"`

	// FaultFreeFirings counts rule firings in the fault-free control arm —
	// every one is a false positive.
	FaultFreeFirings int64 `json:"fault_free_firings"`

	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// cepRules builds the campaign's rule set: a consecutive-abnormal streak rule
// pinned to the victim and a distinct-spread rule over all synth checkers.
// Both evaluate report events only, so synthesized alarms and recovery
// entries cannot feed back into the score.
func cepRules(victim string, interval time.Duration) []wdcep.Rule {
	window := spreadWindowTicks * interval
	return []wdcep.Rule{
		wdcep.Consecutive("cep-streak", streakThreshold).
			OnChecker(victim).
			OnKinds(wdcep.EventReport),
		wdcep.Distinct("cep-spread", 2, window).
			OnChecker("synth.").
			OnKinds(wdcep.EventReport).
			WithCooldown(100 * window),
	}
}

// RunCEP executes the seeded temporal-rule campaign on the synthetic
// substrate under a virtual clock, in two arms:
//
//  1. faulted — an error fault on the seeded victim long enough for the
//     consecutive rule, then (after a gap wider than the spread window) error
//     faults on the two other checkers together for the distinct rule
//  2. fault-free control — the identical stack and tick count with an empty
//     schedule; any firing is a false positive
//
// Detection latency is scored against the earliest contributing point event
// (Firing.First), i.e. how far back the fired rule's evidence starts.
func RunCEP(cfg CEPConfig) (*CEPVerdict, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	all := []FaultPoint{
		{Point: SynthPointAlpha, Checker: "synth.alpha"},
		{Point: SynthPointBeta, Checker: "synth.beta"},
		{Point: SynthPointGamma, Checker: "synth.gamma"},
	}
	vi := rng.Intn(len(all))
	victim := all[vi]
	spread := make([]FaultPoint, 0, len(all)-1)
	for i, p := range all {
		if i != vi {
			spread = append(spread, p)
		}
	}

	v := &CEPVerdict{
		Substrate:     "cep",
		Seed:          cfg.Seed,
		IntervalNS:    int64(cfg.Interval),
		VictimChecker: victim.Checker,
	}
	for _, p := range spread {
		v.SpreadCheckers = append(v.SpreadCheckers, p.Checker)
	}

	rules := cepRules(victim.Checker, cfg.Interval)
	v.Rules = len(rules)

	streakAt := cfg.WarmupTicks
	spreadAt := streakAt + cfg.StreakTicks + cfg.GapTicks
	stormTicks := cfg.StreakTicks + cfg.GapTicks + cfg.SpreadTicks + 2
	errFault := faultinject.Fault{Kind: faultinject.Error}
	script := []ScriptedFault{
		{Tick: streakAt, Point: victim.Point, Fault: errFault, DurationTicks: cfg.StreakTicks},
		{Tick: spreadAt, Point: spread[0].Point, Fault: errFault, DurationTicks: cfg.SpreadTicks},
		{Tick: spreadAt, Point: spread[1].Point, Fault: errFault, DurationTicks: cfg.SpreadTicks},
	}

	// runArm executes one arm and returns the engine state after the runtime
	// has fully drained (Close runs the engine's final evaluation pass).
	runArm := func(script []ScriptedFault) (*wdcep.Snapshot, []wdcep.Firing, error) {
		tgt := NewSynthTarget(clock.NewVirtual(),
			wdruntime.WithCEPRules(rules...),
			wdruntime.WithCEPEvalEvery(cfg.Interval),
		)
		_, err := Run(tgt, Config{
			Seed:          cfg.Seed,
			Interval:      cfg.Interval,
			WarmupTicks:   cfg.WarmupTicks,
			StormTicks:    stormTicks,
			CooldownTicks: cfg.CooldownTicks,
			Script:        script,
		})
		if cerr := tgt.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, nil, err
		}
		eng := tgt.Runtime.CEP()
		return eng.Snapshot(), eng.Firings(), nil
	}

	snap, firings, err := runArm(script)
	if err != nil {
		return nil, fmt.Errorf("campaign: cep faulted arm: %w", err)
	}
	v.FiredTotal = snap.Fired
	v.RingDrops = snap.Dropped
	for _, f := range firings {
		switch f.Rule {
		case "cep-streak":
			if !v.StreakDetected {
				v.StreakDetected = true
				v.StreakLatencyNS = int64(f.Time.Sub(f.First))
				v.StreakCount = f.Count
			}
		case "cep-spread":
			if !v.SpreadDetected {
				v.SpreadDetected = true
				v.SpreadLatencyNS = int64(f.Time.Sub(f.First))
			}
		}
	}

	// Control arm: same stack, same tick count, empty (non-nil) schedule.
	ffSnap, _, err := runArm([]ScriptedFault{})
	if err != nil {
		return nil, fmt.Errorf("campaign: cep fault-free arm: %w", err)
	}
	v.FaultFreeFirings = ffSnap.Fired
	v.RingDrops += ffSnap.Dropped

	if !v.StreakDetected {
		v.Failures = append(v.Failures,
			fmt.Sprintf("consecutive rule never fired on %s (%d abnormal ticks injected)",
				victim.Checker, cfg.StreakTicks))
	}
	if !v.SpreadDetected {
		v.Failures = append(v.Failures,
			"distinct-checkers rule never fired on the concurrent spread faults")
	}
	if v.StreakDetected && v.StreakLatencyNS <= 0 {
		v.Failures = append(v.Failures,
			"streak firing has non-positive earliest-contribution latency")
	}
	if v.RingDrops > 0 {
		v.Failures = append(v.Failures,
			fmt.Sprintf("%d event(s) dropped on a full engine ring", v.RingDrops))
	}
	if v.FaultFreeFirings > 0 {
		v.Failures = append(v.Failures,
			fmt.Sprintf("%d rule firing(s) in the fault-free control arm", v.FaultFreeFirings))
	}
	v.Pass = len(v.Failures) == 0
	return v, nil
}

// JSON renders the verdict for CI consumption.
func (v *CEPVerdict) JSON() ([]byte, error) { return json.MarshalIndent(v, "", "  ") }

// Render formats the verdict for humans.
func (v *CEPVerdict) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign cep seed=%d interval=%s rules=%d\n",
		v.Seed, time.Duration(v.IntervalNS), v.Rules)
	fmt.Fprintf(&b, "  streak victim %s: detected %v", v.VictimChecker, v.StreakDetected)
	if v.StreakDetected {
		fmt.Fprintf(&b, " (count %d, latency-to-first-evidence %s)",
			v.StreakCount, time.Duration(v.StreakLatencyNS))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  spread pair %s: detected %v", strings.Join(v.SpreadCheckers, "+"), v.SpreadDetected)
	if v.SpreadDetected {
		fmt.Fprintf(&b, " (latency-to-first-evidence %s)", time.Duration(v.SpreadLatencyNS))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  fired %d, ring drops %d, fault-free firings %d\n",
		v.FiredTotal, v.RingDrops, v.FaultFreeFirings)
	if v.Pass {
		b.WriteString("  PASS\n")
	} else {
		fmt.Fprintf(&b, "  FAIL: %s\n", strings.Join(v.Failures, "; "))
	}
	return b.String()
}
