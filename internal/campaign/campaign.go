// Package campaign implements a randomized fault-injection campaign runner
// for the watchdog stack: it drives a target system (synthetic, kvs, or dfs)
// through scripted or seeded fault schedules — storms, flapping faults,
// correlated hangs — and scores how the self-hardening watchdog loop behaved:
// detection latency, false positives in fault-free phases, breaker trips,
// damped alarms, hang-budget skips, and recovery outcomes.
//
// The runner is the closed-loop complement of internal/experiment: where the
// experiments measure one detector property at a time, a campaign exercises
// the whole loop (checker → breaker → alarm gate → recovery → health reset)
// under adversarial timing and emits a machine-readable Verdict for CI.
//
// Time is tick-stepped: every tick the runner arms/disarms scheduled faults,
// runs the target's workload step, executes every checker once via
// Driver.CheckAll, and sleeps one interval on the driver's clock. On a
// virtual clock the whole campaign is deterministic.
package campaign

import (
	"fmt"
	"sync"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/watchdog"
)

// Config parameterizes one campaign run.
type Config struct {
	// Seed drives schedule generation (and nothing else); ignored when
	// Script is set.
	Seed int64
	// Interval is the per-tick sleep on the target's clock (default 100ms).
	Interval time.Duration
	// WarmupTicks (default 10) run fault-free before the storm; any abnormal
	// report during warmup is a false positive.
	WarmupTicks int
	// StormTicks (default 40) bound the phase in which faults are armed.
	StormTicks int
	// CooldownTicks (default 20) run after the storm with no new faults.
	CooldownTicks int
	// GraceTicks (default 5) are the leading cooldown ticks during which
	// unmatched abnormal reports count as collateral, not false positives —
	// residual effects (reaping, half-open probes) are still draining.
	GraceTicks int
	// MaxConcurrent caps simultaneously armed faults in generated schedules
	// (default 2).
	MaxConcurrent int
	// MinDetectionRate is the pass threshold on detected/injected (default
	// 0.75). Breaker-suppressed re-checks can legitimately cost detections,
	// so 1.0 is only reasonable for hand-written scripts.
	MinDetectionRate float64
	// HangBudget, when positive, adds a pass criterion: the campaign-wide
	// maximum of leaked hung checker goroutines must stay within it. Set it
	// to the driver's WithHangBudget value.
	HangBudget int
	// Script, when non-nil, replaces the generated schedule with an explicit
	// fault list; deterministic acceptance tests use it.
	Script []ScriptedFault
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.WarmupTicks <= 0 {
		c.WarmupTicks = 10
	}
	if c.StormTicks <= 0 {
		c.StormTicks = 40
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 20
	}
	if c.GraceTicks <= 0 {
		c.GraceTicks = 5
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MinDetectionRate <= 0 {
		c.MinDetectionRate = 0.75
	}
	return c
}

// liveFault tracks one armed scripted fault until its checker goes healthy
// again after disarming.
type liveFault struct {
	ev      *FaultOutcome
	until   int // first tick at which the fault is disarmed
	expired bool
}

// runner is the per-run state; reports arrive synchronously on the CheckAll
// goroutine but recovery retries and reapers run concurrently, so the mutable
// scoring state is locked.
type runner struct {
	cfg Config
	tgt *Target
	clk clock.Clock

	mu         sync.Mutex
	tick       int
	active     map[string]*liveFault // by fault point
	current    map[string]*liveFault // by checker name
	outcomes   []*FaultOutcome
	fp         int
	fpDetails  []string
	collateral int
	faultFree  int
	leakedMax  int
	alarms     int64
}

const (
	phaseWarmup = iota
	phaseStorm
	phaseCooldown
)

func (r *runner) phaseAt(tick int) int {
	switch {
	case tick < r.cfg.WarmupTicks:
		return phaseWarmup
	case tick < r.cfg.WarmupTicks+r.cfg.StormTicks:
		return phaseStorm
	default:
		return phaseCooldown
	}
}

func (r *runner) inGrace(tick int) bool {
	start := r.cfg.WarmupTicks + r.cfg.StormTicks
	return tick >= start && tick < start+r.cfg.GraceTicks
}

// Run executes one campaign against tgt and scores it. The target's driver
// must not be Start()ed: the runner steps it synchronously with CheckAll so
// one tick equals one execution of every checker.
func Run(tgt *Target, cfg Config) (*Verdict, error) {
	cfg = cfg.withDefaults()
	checkerFor := make(map[string]FaultPoint, len(tgt.Points))
	for _, p := range tgt.Points {
		checkerFor[p.Point] = p
	}
	script := cfg.Script
	if script == nil {
		script = Generate(cfg.Seed, tgt.Points, cfg)
	}
	byTick := make(map[int][]ScriptedFault)
	for _, sf := range script {
		if _, ok := checkerFor[sf.Point]; !ok {
			return nil, fmt.Errorf("campaign: scripted fault references unknown point %q", sf.Point)
		}
		if sf.DurationTicks <= 0 {
			return nil, fmt.Errorf("campaign: fault at %q has non-positive duration", sf.Point)
		}
		byTick[sf.Tick] = append(byTick[sf.Tick], sf)
	}

	r := &runner{
		cfg:     cfg,
		tgt:     tgt,
		clk:     tgt.Driver.Clock(),
		active:  make(map[string]*liveFault),
		current: make(map[string]*liveFault),
	}
	virtual, _ := r.clk.(*clock.Virtual)
	tgt.Driver.OnReport(r.observeReport)
	tgt.Driver.OnAlarm(func(watchdog.Alarm) {
		r.mu.Lock()
		r.alarms++
		r.mu.Unlock()
	})

	total := cfg.WarmupTicks + cfg.StormTicks + cfg.CooldownTicks
	for tick := 0; tick < total; tick++ {
		r.mu.Lock()
		r.tick = tick
		// Disarm faults whose window closed; their checkers stay matched
		// until they report healthy again, so residual stuck re-reports are
		// attributed, not miscounted as false positives.
		for point, lf := range r.active {
			if tick >= lf.until {
				tgt.Injector.Disarm(point)
				lf.expired = true
				delete(r.active, point)
			}
		}
		for _, sf := range byTick[tick] {
			fp := checkerFor[sf.Point]
			ev := &FaultOutcome{
				Point:         sf.Point,
				Checker:       fp.Checker,
				Kind:          sf.Fault.Kind.String(),
				ArmTick:       tick,
				DurationTicks: sf.DurationTicks,
			}
			r.outcomes = append(r.outcomes, ev)
			lf := &liveFault{ev: ev, until: tick + sf.DurationTicks}
			r.active[sf.Point] = lf
			r.current[fp.Checker] = lf
			ev.armedAt = r.clk.Now()
			tgt.Injector.Arm(sf.Point, sf.Fault)
		}
		if len(r.active) == 0 && len(r.current) == 0 {
			r.faultFree++
		}
		r.mu.Unlock()

		// Let reapers finish claiming hang victims released by the disarms
		// above, so whether a checker is still in flight at this tick does
		// not depend on goroutine scheduling.
		for i := 0; i < 1000 && tgt.Driver.LeakedHung() > int(tgt.Injector.Hanging()); i++ {
			time.Sleep(100 * time.Microsecond)
		}

		if tgt.Step != nil {
			tgt.Step(tick)
		}
		if virtual != nil {
			r.checkAllVirtual(virtual)
		} else {
			tgt.Driver.CheckAll()
		}
		if leaked := tgt.Driver.LeakedHung(); leaked > 0 {
			r.mu.Lock()
			if leaked > r.leakedMax {
				r.leakedMax = leaked
			}
			r.mu.Unlock()
		}
		if virtual != nil {
			// On a virtual clock nobody else advances time: the tick sleep is
			// a plain advance, which also fires due recovery-retry backoffs.
			virtual.Advance(cfg.Interval)
		} else {
			r.clk.Sleep(cfg.Interval)
		}
	}

	// Release anything still hung and let in-flight recovery cycles finish
	// so the verdict sees final outcomes.
	tgt.Injector.Clear()
	if tgt.Recovery != nil {
		if virtual != nil {
			drained := make(chan struct{})
			go func() {
				tgt.Recovery.Wait()
				close(drained)
			}()
			for done := false; !done; {
				select {
				case <-drained:
					done = true
				case <-time.After(2 * time.Millisecond):
					virtual.Advance(cfg.Interval)
				}
			}
		} else {
			tgt.Recovery.Wait()
		}
	}
	return r.verdict(total), nil
}

// virtualExecGrace is how long (real time) checkAllVirtual waits for one
// checker execution to complete on its own before concluding it is blocked on
// virtual time. Checker bodies on virtual-clock targets are pure computation,
// so anything still running after this long is waiting on the clock.
const virtualExecGrace = 100 * time.Millisecond

// checkAllVirtual steps every checker once on a virtual clock. A healthy
// execution completes without any time passing; an execution that blocks (a
// hang fault riding toward its liveness timeout) is detected by its lack of
// real-time progress, and the clock is advanced by exactly the checker's
// timeout so the stuck report lands at start+timeout on every run. Delay
// faults are not supported on virtual-clock targets: a delay shorter than the
// timeout would wake together with the timeout timer and the classification
// would depend on goroutine scheduling.
func (r *runner) checkAllVirtual(v *clock.Virtual) {
	for _, st := range r.tgt.Driver.State() {
		done := make(chan struct{})
		name := st.Name
		go func() {
			defer close(done)
			r.tgt.Driver.CheckNow(name)
		}()
		blocked := true
		deadline := time.Now().Add(virtualExecGrace)
		for time.Now().Before(deadline) {
			select {
			case <-done:
				blocked = false
			default:
				time.Sleep(200 * time.Microsecond)
				continue
			}
			break
		}
		if !blocked {
			continue
		}
		// The execution is parked on the clock; its timeout timer is long
		// since registered. Fire it exactly at start+timeout.
		v.BlockUntil(1)
		v.Advance(st.Timeout)
		<-done
	}
}

// observeReport scores every report against the live fault table. It runs
// synchronously on the CheckAll goroutine (driver listeners are synchronous),
// interleaved with nothing but the recovery retry goroutines.
func (r *runner) observeReport(rep watchdog.Report) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !rep.Status.Abnormal() {
		// A healthy report retires the matched fault once it is disarmed;
		// skipped and context-pending reports are neutral either way.
		if rep.Status == watchdog.StatusHealthy {
			if lf, ok := r.current[rep.Checker]; ok && lf.expired {
				delete(r.current, rep.Checker)
			}
		}
		return
	}
	if lf, ok := r.current[rep.Checker]; ok {
		if !lf.ev.Detected {
			lf.ev.Detected = true
			lf.ev.DetectTick = r.tick
			lf.ev.DetectLatencyNS = int64(rep.Time.Sub(lf.ev.armedAt))
		}
		return
	}
	// Abnormal report with no live fault on that checker.
	if r.phaseAt(r.tick) == phaseStorm || r.inGrace(r.tick) {
		// Cross-checker interference during the storm (or its grace tail) is
		// collateral, not a verdict failure: faults on shared substrate
		// (volumes, WAL directories) legitimately trip sibling checkers.
		r.collateral++
		return
	}
	r.fp++
	if len(r.fpDetails) < 16 {
		r.fpDetails = append(r.fpDetails,
			fmt.Sprintf("tick %d: %s reported %s: %v", r.tick, rep.Checker, rep.Status, rep.Err))
	}
}
