package campaign

import (
	"math/rand"
	"time"

	"gowatchdog/internal/faultinject"
)

// ScriptedFault arms one fault at a tick and disarms it DurationTicks later.
type ScriptedFault struct {
	// Tick is the campaign tick at which the fault is armed.
	Tick int
	// Point names the injector fault point; it must appear in the target's
	// Points table so the runner can attribute detections.
	Point string
	// Fault is the manifestation to arm.
	Fault faultinject.Fault
	// DurationTicks is how many ticks the fault stays armed.
	DurationTicks int
}

// Schedule-shape constants for generated campaigns. Events are long enough
// that a hang (detected after the checker timeout, typically a few ticks)
// still overlaps several checking rounds.
const (
	minEventTicks = 4
	maxEventTicks = 10
	// eventProb is the per-tick probability of starting a new fault while
	// below the concurrency cap.
	eventProb = 0.3
	// correlProb is the probability that a hang drags a second point down
	// with it at the same tick — the correlated-failure shape (shared disk,
	// shared lock) that motivates the hang budget.
	correlProb = 0.35
)

// Generate derives a randomized fault schedule for the storm phase from seed.
// The same seed, points, and config produce the same schedule. Generated
// events never overlap on the same checker (the runner attributes detections
// per checker), never exceed cfg.MaxConcurrent simultaneous faults, and all
// end inside the storm so the cooldown starts fault-free.
func Generate(seed int64, points []FaultPoint, cfg Config) []ScriptedFault {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	stormStart := cfg.WarmupTicks
	stormEnd := cfg.WarmupTicks + cfg.StormTicks

	var out []ScriptedFault
	// pointFree[i] / checkerFree[name] are the first tick at which the
	// point/checker may host a new fault (previous event plus one healthy
	// tick of separation).
	pointFree := make([]int, len(points))
	checkerFree := make(map[string]int, len(points))

	activeAt := func(t int) int {
		n := 0
		for _, sf := range out {
			if sf.Tick <= t && t < sf.Tick+sf.DurationTicks {
				n++
			}
		}
		return n
	}
	pick := func(t int) int {
		cands := make([]int, 0, len(points))
		for i, p := range points {
			if pointFree[i] <= t && checkerFree[p.Checker] <= t && len(p.Kinds) > 0 {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			return -1
		}
		return cands[rng.Intn(len(cands))]
	}
	arm := func(t, idx int, kind faultinject.Kind, dur int) {
		p := points[idx]
		if t+dur > stormEnd {
			dur = stormEnd - t
		}
		if dur < 2 {
			return
		}
		out = append(out, ScriptedFault{
			Tick: t, Point: p.Point, Fault: faultFor(kind, rng, cfg.Interval), DurationTicks: dur,
		})
		pointFree[idx] = t + dur + 2
		checkerFree[p.Checker] = t + dur + 2
	}

	for t := stormStart; t < stormEnd; t++ {
		if activeAt(t) >= cfg.MaxConcurrent || rng.Float64() >= eventProb {
			continue
		}
		idx := pick(t)
		if idx < 0 {
			continue
		}
		kind := points[idx].Kinds[rng.Intn(len(points[idx].Kinds))]
		dur := minEventTicks + rng.Intn(maxEventTicks-minEventTicks+1)
		arm(t, idx, kind, dur)
		if kind == faultinject.Hang && activeAt(t) < cfg.MaxConcurrent && rng.Float64() < correlProb {
			if other := pick(t); other >= 0 && hasKind(points[other].Kinds, faultinject.Hang) {
				arm(t, other, faultinject.Hang, dur)
			}
		}
	}
	return out
}

// faultFor builds the concrete Fault for a scheduled kind, drawing shape
// parameters (flap duty cycle, delay length) from rng.
func faultFor(kind faultinject.Kind, rng *rand.Rand, interval time.Duration) faultinject.Fault {
	f := faultinject.Fault{Kind: kind}
	switch kind {
	case faultinject.Flap:
		f.FlapOn = 1 + rng.Intn(2)
		f.FlapOff = 1 + rng.Intn(2)
	case faultinject.Delay:
		// Long enough to be abnormal, short enough not to read as a hang.
		f.Delay = interval/2 + time.Duration(rng.Int63n(int64(interval)))
	}
	return f
}

func hasKind(kinds []faultinject.Kind, k faultinject.Kind) bool {
	for _, c := range kinds {
		if c == k {
			return true
		}
	}
	return false
}
