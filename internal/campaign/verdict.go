package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"gowatchdog/internal/recovery"
)

// FaultOutcome is one injected fault and how the watchdog loop handled it.
type FaultOutcome struct {
	Point         string `json:"point"`
	Checker       string `json:"checker"`
	Kind          string `json:"kind"`
	ArmTick       int    `json:"arm_tick"`
	DurationTicks int    `json:"duration_ticks"`
	Detected      bool   `json:"detected"`
	// DetectTick/DetectLatencyNS are set on the first abnormal report from
	// the fault's checker while the fault (or its residue) was live.
	DetectTick      int   `json:"detect_tick,omitempty"`
	DetectLatencyNS int64 `json:"detect_latency_ns,omitempty"`

	armedAt time.Time
}

// RecoveryStats summarizes the recovery manager's event log for the run.
type RecoveryStats struct {
	Recovered int `json:"recovered"`
	Retried   int `json:"retried"`
	Failed    int `json:"failed"`
	Escalated int `json:"escalated"`
	Unmatched int `json:"unmatched"`
	// SuccessRate is recovered / completed cycles (recovered + failed).
	SuccessRate   float64 `json:"success_rate"`
	DroppedEvents int64   `json:"dropped_events,omitempty"`
}

// Verdict is the machine-readable campaign outcome; CI consumes the JSON and
// gates on Pass.
type Verdict struct {
	Substrate  string         `json:"substrate"`
	Seed       int64          `json:"seed"`
	Ticks      int            `json:"ticks"`
	IntervalNS int64          `json:"interval_ns"`
	Faults     []FaultOutcome `json:"faults"`

	Detected      int     `json:"detected"`
	Missed        int     `json:"missed"`
	DetectionRate float64 `json:"detection_rate"`
	DetectP50NS   int64   `json:"detect_p50_ns"`
	DetectP95NS   int64   `json:"detect_p95_ns"`
	DetectMaxNS   int64   `json:"detect_max_ns"`

	// FalsePositives counts abnormal reports on checkers with no live fault
	// outside the storm and its grace tail; Collateral counts the same shape
	// inside them. FaultFreeTicks is how many ticks had nothing armed or
	// draining — the denominator context for the false-positive claim.
	FalsePositives       int      `json:"false_positives"`
	FalsePositiveDetails []string `json:"false_positive_details,omitempty"`
	Collateral           int      `json:"collateral_reports"`
	FaultFreeTicks       int      `json:"fault_free_ticks"`

	AlarmsRaised     int64 `json:"alarms_raised"`
	AlarmsSuppressed int64 `json:"alarms_suppressed"`
	BreakerTrips     int64 `json:"breaker_trips"`
	BreakerSkips     int64 `json:"breaker_skips"`
	BudgetSkips      int64 `json:"budget_skips"`
	LeakedHungMax    int   `json:"leaked_hung_max"`

	Recovery *RecoveryStats `json:"recovery,omitempty"`

	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// verdict assembles and judges the final Verdict after the run loop.
func (r *runner) verdict(total int) *Verdict {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.tgt.Driver
	v := &Verdict{
		Substrate:        r.tgt.Name,
		Seed:             r.cfg.Seed,
		Ticks:            total,
		IntervalNS:       int64(r.cfg.Interval),
		FalsePositives:   r.fp,
		Collateral:       r.collateral,
		FaultFreeTicks:   r.faultFree,
		AlarmsRaised:     r.alarms,
		AlarmsSuppressed: d.AlarmsSuppressed(),
		BreakerTrips:     d.BreakerTrips(),
		BreakerSkips:     d.BreakerSkips(),
		BudgetSkips:      d.BudgetSkips(),
		LeakedHungMax:    r.leakedMax,
	}
	v.FalsePositiveDetails = append(v.FalsePositiveDetails, r.fpDetails...)

	var lats []int64
	for _, ev := range r.outcomes {
		v.Faults = append(v.Faults, *ev)
		if ev.Detected {
			v.Detected++
			lats = append(lats, ev.DetectLatencyNS)
		} else {
			v.Missed++
		}
	}
	if n := len(r.outcomes); n > 0 {
		v.DetectionRate = float64(v.Detected) / float64(n)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		v.DetectP50NS = lats[len(lats)/2]
		v.DetectP95NS = lats[(len(lats)*95)/100]
		v.DetectMaxNS = lats[len(lats)-1]
	}

	if m := r.tgt.Recovery; m != nil {
		rs := &RecoveryStats{DroppedEvents: m.DroppedEvents()}
		for _, e := range m.Events() {
			switch e.Kind {
			case recovery.EventRecovered:
				rs.Recovered++
			case recovery.EventRetried:
				rs.Retried++
			case recovery.EventFailed:
				rs.Failed++
			case recovery.EventEscalated:
				rs.Escalated++
			case recovery.EventUnmatched:
				rs.Unmatched++
			}
		}
		if done := rs.Recovered + rs.Failed; done > 0 {
			rs.SuccessRate = float64(rs.Recovered) / float64(done)
		}
		v.Recovery = rs
	}

	if v.FalsePositives > 0 {
		v.Failures = append(v.Failures,
			fmt.Sprintf("%d false positive(s) in fault-free phases", v.FalsePositives))
	}
	if len(r.outcomes) > 0 && v.DetectionRate < r.cfg.MinDetectionRate {
		v.Failures = append(v.Failures,
			fmt.Sprintf("detection rate %.2f below threshold %.2f", v.DetectionRate, r.cfg.MinDetectionRate))
	}
	if r.cfg.HangBudget > 0 && v.LeakedHungMax > r.cfg.HangBudget {
		v.Failures = append(v.Failures,
			fmt.Sprintf("leaked hung goroutines peaked at %d, budget %d", v.LeakedHungMax, r.cfg.HangBudget))
	}
	v.Pass = len(v.Failures) == 0
	return v
}

// JSON renders the verdict for CI consumption.
func (v *Verdict) JSON() ([]byte, error) { return json.MarshalIndent(v, "", "  ") }

// Render formats the verdict for humans.
func (v *Verdict) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %s seed=%d ticks=%d interval=%s\n",
		v.Substrate, v.Seed, v.Ticks, time.Duration(v.IntervalNS))
	fmt.Fprintf(&b, "  faults injected %d, detected %d, missed %d (rate %.2f)\n",
		len(v.Faults), v.Detected, v.Missed, v.DetectionRate)
	if v.Detected > 0 {
		fmt.Fprintf(&b, "  detection latency p50=%s p95=%s max=%s\n",
			time.Duration(v.DetectP50NS), time.Duration(v.DetectP95NS), time.Duration(v.DetectMaxNS))
	}
	fmt.Fprintf(&b, "  false positives %d (fault-free ticks %d), collateral %d\n",
		v.FalsePositives, v.FaultFreeTicks, v.Collateral)
	fmt.Fprintf(&b, "  alarms raised %d, suppressed %d; breaker trips %d, skips %d; budget skips %d; leaked hung max %d\n",
		v.AlarmsRaised, v.AlarmsSuppressed, v.BreakerTrips, v.BreakerSkips, v.BudgetSkips, v.LeakedHungMax)
	if v.Recovery != nil {
		fmt.Fprintf(&b, "  recovery recovered=%d retried=%d failed=%d escalated=%d unmatched=%d (success %.2f)\n",
			v.Recovery.Recovered, v.Recovery.Retried, v.Recovery.Failed,
			v.Recovery.Escalated, v.Recovery.Unmatched, v.Recovery.SuccessRate)
	}
	if v.Pass {
		b.WriteString("  PASS\n")
	} else {
		fmt.Fprintf(&b, "  FAIL: %s\n", strings.Join(v.Failures, "; "))
	}
	return b.String()
}
