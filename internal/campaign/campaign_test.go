package campaign

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdruntime"
)

// TestSeededCampaignSelfHardening is the acceptance scenario for the whole
// self-hardening loop, fully deterministic on a virtual clock:
//
//   - a flapping fault (synth.alpha) raises identical alarms that the damping
//     gate collapses into one escaped alarm plus suppressed flaps;
//   - a hang (synth.beta) leaks exactly one checker goroutine — within the
//     budget of 2 — and its stuck streak trips the breaker;
//   - a crash-looping checker (synth.gamma, hard error every run) trips its
//     breaker within K=3 runs and is skipped until the backoff elapses;
//   - every escaped alarm drives a transiently-failing recovery action that
//     succeeds on retry without ever escalating;
//   - the warmup and cooldown fault-free phases record zero false positives.
func TestSeededCampaignSelfHardening(t *testing.T) {
	v := clock.NewVirtual()
	tgt := NewSynthTarget(v,
		wdruntime.WithBreaker(watchdog.BreakerConfig{
			Threshold: 3, BackoffBase: 20 * time.Second, JitterFrac: -1,
		}),
		wdruntime.WithAlarmDamping(30*time.Second),
		wdruntime.WithHangBudget(2),
		wdruntime.WithJitterSeed(7),
	)
	cfg := Config{
		Seed:          7,
		Interval:      time.Second,
		WarmupTicks:   5,
		StormTicks:    30,
		CooldownTicks: 15,
		GraceTicks:    8,
		HangBudget:    2,
		Script: []ScriptedFault{
			{Tick: 5, Point: SynthPointAlpha, Fault: faultinject.Fault{Kind: faultinject.Flap}, DurationTicks: 12},
			{Tick: 8, Point: SynthPointBeta, Fault: faultinject.Fault{Kind: faultinject.Hang}, DurationTicks: 10},
			{Tick: 20, Point: SynthPointGamma, Fault: faultinject.Fault{Kind: faultinject.Error}, DurationTicks: 6},
		},
	}

	verdict, err := Run(tgt, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if !verdict.Pass || len(verdict.Failures) != 0 {
		t.Fatalf("verdict failed: %v\n%s", verdict.Failures, verdict.Render())
	}
	if verdict.Detected != 3 || verdict.Missed != 0 || verdict.DetectionRate != 1.0 {
		t.Fatalf("detection = %d/%d rate %.2f, want 3/0 rate 1.00",
			verdict.Detected, verdict.Missed, verdict.DetectionRate)
	}
	if verdict.FalsePositives != 0 {
		t.Fatalf("false positives = %d: %v", verdict.FalsePositives, verdict.FalsePositiveDetails)
	}
	if verdict.FaultFreeTicks == 0 {
		t.Fatal("no fault-free ticks recorded")
	}

	// The hang leaked exactly one goroutine, within the budget of 2.
	if verdict.LeakedHungMax != 1 {
		t.Fatalf("leaked hung max = %d, want 1", verdict.LeakedHungMax)
	}

	// Breakers: beta's stuck streak and gamma's crash loop each tripped once;
	// alpha flapped healthy/error so its failure count kept resetting.
	if verdict.BreakerTrips != 2 {
		t.Fatalf("breaker trips = %d, want 2 (beta + gamma)", verdict.BreakerTrips)
	}
	if verdict.BreakerSkips == 0 {
		t.Fatal("open breakers produced no skips")
	}
	var gammaAbnormal int64
	for _, st := range tgt.Driver.State() {
		switch st.Name {
		case "synth.gamma":
			gammaAbnormal = st.Abnormal
			if st.BreakerTrips != 1 {
				t.Fatalf("gamma breaker trips = %d, want 1", st.BreakerTrips)
			}
		case "synth.alpha":
			if st.BreakerTrips != 0 {
				t.Fatalf("alpha (flapping) breaker trips = %d, want 0", st.BreakerTrips)
			}
			if st.Flaps != 5 {
				t.Fatalf("alpha damped-alarm count = %d, want 5", st.Flaps)
			}
		}
	}
	// "Trips within K runs": the crash-looping checker executed abnormally
	// exactly K=3 times before the breaker stopped scheduling it.
	if gammaAbnormal != 3 {
		t.Fatalf("gamma abnormal runs = %d, want 3 (breaker threshold)", gammaAbnormal)
	}

	// Alarm damping: alpha's 6 error bursts collapse to 1 escaped alarm, so
	// the campaign saw 3 escaped alarms total (one per fault) and 5 damped.
	if verdict.AlarmsRaised != 3 || verdict.AlarmsSuppressed != 5 {
		t.Fatalf("alarms raised=%d suppressed=%d, want 3/5",
			verdict.AlarmsRaised, verdict.AlarmsSuppressed)
	}

	// Recovery: each escaped alarm started a cycle whose action failed once
	// and succeeded on retry — no escalations, no terminal failures.
	rs := verdict.Recovery
	if rs == nil {
		t.Fatal("verdict missing recovery stats")
	}
	if rs.Recovered != 3 || rs.Retried != 3 || rs.Failed != 0 || rs.Escalated != 0 {
		t.Fatalf("recovery stats = %+v, want recovered=3 retried=3 failed=0 escalated=0", rs)
	}
	if rs.SuccessRate != 1.0 {
		t.Fatalf("recovery success rate = %.2f, want 1.00", rs.SuccessRate)
	}

	// The hang's detection latency is the checker timeout (3s); the error
	// and flap faults are caught on the very tick they arm.
	if verdict.DetectMaxNS != int64(3*time.Second) {
		t.Fatalf("max detection latency = %s, want 3s", time.Duration(verdict.DetectMaxNS))
	}
	if verdict.DetectP50NS != 0 {
		t.Fatalf("p50 detection latency = %s, want 0", time.Duration(verdict.DetectP50NS))
	}
}

// TestCampaignCorrelatedHangsRespectBudget: two simultaneous hangs against a
// hang budget of 1 — the first leaks its goroutine, the second is skipped by
// the budget gate (degrading detection, not the watchdog itself), and the
// leak stays exactly at the budget.
func TestCampaignCorrelatedHangsRespectBudget(t *testing.T) {
	v := clock.NewVirtual()
	tgt := NewSynthTarget(v, wdruntime.WithHangBudget(1))
	cfg := Config{
		Interval:         time.Second,
		WarmupTicks:      4,
		StormTicks:       16,
		CooldownTicks:    10,
		GraceTicks:       6,
		HangBudget:       1,
		MinDetectionRate: 0.5,
		Script: []ScriptedFault{
			{Tick: 6, Point: SynthPointAlpha, Fault: faultinject.Fault{Kind: faultinject.Hang}, DurationTicks: 8},
			{Tick: 6, Point: SynthPointBeta, Fault: faultinject.Fault{Kind: faultinject.Hang}, DurationTicks: 8},
		},
	}

	verdict, err := Run(tgt, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !verdict.Pass {
		t.Fatalf("verdict failed: %v\n%s", verdict.Failures, verdict.Render())
	}
	if verdict.LeakedHungMax != 1 {
		t.Fatalf("leaked hung max = %d, want exactly the budget (1)", verdict.LeakedHungMax)
	}
	if verdict.BudgetSkips == 0 {
		t.Fatal("budget gate never skipped a checker")
	}
	// Alpha (first in registration order) hangs and is detected; beta's
	// checker was budget-skipped the whole window, so its fault is the miss.
	if verdict.Detected != 1 || verdict.Missed != 1 {
		t.Fatalf("detection = %d/%d, want 1 detected 1 missed", verdict.Detected, verdict.Missed)
	}
	if verdict.FalsePositives != 0 {
		t.Fatalf("false positives = %d: %v", verdict.FalsePositives, verdict.FalsePositiveDetails)
	}
}

// TestGeneratedCampaignDeterministic: a fully generated (seeded) campaign on
// the virtual clock passes and reproduces tick-for-tick.
func TestGeneratedCampaignDeterministic(t *testing.T) {
	run := func() *Verdict {
		v := clock.NewVirtual()
		tgt := NewSynthTarget(v,
			wdruntime.WithBreaker(watchdog.BreakerConfig{
				Threshold: 3, BackoffBase: 10 * time.Second, JitterFrac: -1,
			}),
			wdruntime.WithAlarmDamping(20*time.Second),
			wdruntime.WithHangBudget(2),
		)
		verdict, err := Run(tgt, Config{
			Seed:          42,
			Interval:      time.Second,
			WarmupTicks:   5,
			StormTicks:    30,
			CooldownTicks: 15,
			GraceTicks:    8,
			HangBudget:    2,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return verdict
	}
	a, b := run(), run()
	if len(a.Faults) == 0 {
		t.Fatal("seed 42 generated no faults")
	}
	if a.FalsePositives != 0 {
		t.Fatalf("false positives = %d: %v", a.FalsePositives, a.FalsePositiveDetails)
	}
	if !a.Pass {
		t.Fatalf("generated campaign failed: %v\n%s", a.Failures, a.Render())
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a.Render(), b.Render())
	}
}

// TestGenerateBounds: generated schedules stay inside the storm, respect the
// concurrency cap, and never overlap two faults on one checker.
func TestGenerateBounds(t *testing.T) {
	points := NewSynthTarget(clock.NewVirtual()).Points
	cfg := Config{WarmupTicks: 6, StormTicks: 50, CooldownTicks: 10, MaxConcurrent: 2}
	for seed := int64(0); seed < 20; seed++ {
		sched := Generate(seed, points, cfg)
		again := Generate(seed, points, cfg)
		if !reflect.DeepEqual(sched, again) {
			t.Fatalf("seed %d: schedule not deterministic", seed)
		}
		checkerOf := map[string]string{}
		for _, p := range points {
			checkerOf[p.Point] = p.Checker
		}
		for tick := 0; tick < 66; tick++ {
			active := 0
			byChecker := map[string]int{}
			for _, sf := range sched {
				if sf.Tick <= tick && tick < sf.Tick+sf.DurationTicks {
					active++
					byChecker[checkerOf[sf.Point]]++
					if sf.Tick < 6 || sf.Tick+sf.DurationTicks > 56 {
						t.Fatalf("seed %d: fault %+v escapes the storm window", seed, sf)
					}
				}
			}
			if active > 2 {
				t.Fatalf("seed %d tick %d: %d concurrent faults, cap 2", seed, tick, active)
			}
			for c, n := range byChecker {
				if n > 1 {
					t.Fatalf("seed %d tick %d: %d overlapping faults on checker %s", seed, tick, n, c)
				}
			}
		}
	}
}

// TestVerdictJSONRoundTrip pins the verdict wire format CI consumes.
func TestVerdictJSONRoundTrip(t *testing.T) {
	v := &Verdict{
		Substrate:     "synth",
		Seed:          7,
		Ticks:         50,
		IntervalNS:    int64(time.Second),
		Faults:        []FaultOutcome{{Point: "p", Checker: "c", Kind: "error", ArmTick: 5, DurationTicks: 4, Detected: true}},
		Detected:      1,
		DetectionRate: 1,
		Recovery:      &RecoveryStats{Recovered: 2, Retried: 1, SuccessRate: 1},
		Pass:          true,
	}
	data, err := v.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var back Verdict
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(v, &back) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", v, &back)
	}
	for _, key := range []string{`"pass": true`, `"false_positives": 0`, `"detection_rate": 1`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("verdict JSON missing %q:\n%s", key, data)
		}
	}
}

// TestKVSCampaignSmoke drives the real kvs substrate for a few real-time
// ticks with one scripted WAL fault: the generated kvs.wal checker detects
// it, nothing else false-positives.
func TestKVSCampaignSmoke(t *testing.T) {
	tgt, err := NewKVSTarget(t.TempDir())
	if err != nil {
		t.Fatalf("NewKVSTarget: %v", err)
	}
	defer tgt.Close()
	verdict, err := Run(tgt, Config{
		Interval:      20 * time.Millisecond,
		WarmupTicks:   3,
		StormTicks:    10,
		CooldownTicks: 5,
		GraceTicks:    3,
		Script: []ScriptedFault{
			{Tick: 5, Point: "kvs.wal.append", Fault: faultinject.Fault{Kind: faultinject.Error}, DurationTicks: 4},
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if verdict.Detected != 1 {
		t.Fatalf("kvs.wal fault undetected:\n%s", verdict.Render())
	}
	if verdict.FalsePositives != 0 {
		t.Fatalf("false positives on kvs: %v", verdict.FalsePositiveDetails)
	}
	if !verdict.Pass {
		t.Fatalf("verdict failed: %v", verdict.Failures)
	}
}
