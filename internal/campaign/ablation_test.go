package campaign

import (
	"testing"
	"time"

	"gowatchdog/internal/dfs"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/kvs"
)

// ablationCfg is a short scripted campaign shared by the ablation tests: one
// fault on a write-path point (mined-uncovered) and one on a read-path point
// (mined-covered), both plain errors inside the storm window.
func ablationCfg(write, read string) Config {
	return Config{
		Interval:      10 * time.Millisecond,
		WarmupTicks:   3,
		StormTicks:    12,
		CooldownTicks: 6,
		GraceTicks:    3,
		// Misses are the measurement here, not a failure: the mined suite is
		// expected to drop write-path coverage.
		MinDetectionRate: 0.01,
		Script: []ScriptedFault{
			{Tick: 4, Point: write, Fault: faultinject.Fault{Kind: faultinject.Error}, DurationTicks: 4},
			{Tick: 9, Point: read, Fault: faultinject.Fault{Kind: faultinject.Error}, DurationTicks: 4},
		},
	}
}

// outcomeByPoint indexes a verdict's fault outcomes.
func outcomeByPoint(t *testing.T, v *Verdict) map[string]FaultOutcome {
	t.Helper()
	out := make(map[string]FaultOutcome, len(v.Faults))
	for _, f := range v.Faults {
		out[f.Point] = f
	}
	return out
}

// TestKVSAblationCoverage pins the E13 coverage asymmetry on kvs: the reduced
// suite detects both faults, the mined suite detects only the read-path fault
// its source assertion traverses, and neither raises false positives.
func TestKVSAblationCoverage(t *testing.T) {
	cfg := ablationCfg(kvs.FaultWALAppend, kvs.FaultIndexerGet)

	for _, tc := range []struct {
		source     string
		wantWAL    bool
		walChecker string
		getChecker string
	}{
		{CheckersReduced, true, "kvs.wal", "kvs.indexer"},
		{CheckersMined, false, UncoveredChecker(kvs.FaultWALAppend), "kvs.mined.store_get"},
		{CheckersBoth, true, "kvs.wal", "kvs.mined.store_get"},
	} {
		t.Run(tc.source, func(t *testing.T) {
			tgt, err := NewKVSAblationTarget(t.TempDir(), tc.source)
			if err != nil {
				t.Fatal(err)
			}
			defer tgt.Close()
			v, err := Run(tgt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			byPoint := outcomeByPoint(t, v)

			wal := byPoint[kvs.FaultWALAppend]
			if wal.Detected != tc.wantWAL || wal.Checker != tc.walChecker {
				t.Errorf("WAL fault: detected=%v by %q, want detected=%v by %q\n%s",
					wal.Detected, wal.Checker, tc.wantWAL, tc.walChecker, v.Render())
			}
			get := byPoint[kvs.FaultIndexerGet]
			if !get.Detected || get.Checker != tc.getChecker {
				t.Errorf("indexer-get fault: detected=%v by %q, want detected by %q\n%s",
					get.Detected, get.Checker, tc.getChecker, v.Render())
			}
			if v.FalsePositives != 0 {
				t.Errorf("false positives = %d: %v", v.FalsePositives, v.FalsePositiveDetails)
			}
		})
	}
}

// TestDFSAblationCoverage mirrors the kvs test on the DataNode: mined
// ScanBlocks re-reads committed blocks, so it catches read faults on both
// volumes but never a write fault.
func TestDFSAblationCoverage(t *testing.T) {
	cfg := ablationCfg(dfs.FaultVolumeWritePrefix+"0", dfs.FaultVolumeReadPrefix+"1")

	for _, tc := range []struct {
		source      string
		wantWrite   bool
		readChecker string
	}{
		{CheckersReduced, true, "dfs.disk"},
		{CheckersMined, false, "dfs.mined.datanode_scanblocks"},
	} {
		t.Run(tc.source, func(t *testing.T) {
			tgt, err := NewDFSAblationTarget(t.TempDir(), tc.source)
			if err != nil {
				t.Fatal(err)
			}
			defer tgt.Close()
			v, err := Run(tgt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			byPoint := outcomeByPoint(t, v)

			write := byPoint[dfs.FaultVolumeWritePrefix+"0"]
			if write.Detected != tc.wantWrite {
				t.Errorf("write fault: detected=%v, want %v\n%s", write.Detected, tc.wantWrite, v.Render())
			}
			read := byPoint[dfs.FaultVolumeReadPrefix+"1"]
			if !read.Detected || read.Checker != tc.readChecker {
				t.Errorf("read fault: detected=%v by %q, want detected by %q\n%s",
					read.Detected, read.Checker, tc.readChecker, v.Render())
			}
			if v.FalsePositives != 0 {
				t.Errorf("false positives = %d: %v", v.FalsePositives, v.FalsePositiveDetails)
			}
		})
	}
}

// TestAblationSourceValidation: a bad source selector is an error, not a
// silently empty driver.
func TestAblationSourceValidation(t *testing.T) {
	if _, err := NewKVSAblationTarget(t.TempDir(), "all"); err == nil {
		t.Error("NewKVSAblationTarget(all) succeeded")
	}
	if _, err := NewAblationTarget("synth", t.TempDir(), CheckersMined); err == nil {
		t.Error("NewAblationTarget(synth) succeeded")
	}
}
