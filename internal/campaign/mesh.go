package campaign

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdmesh"
	"gowatchdog/internal/wdruntime"
)

// MeshConfig parameterizes one multi-node mesh campaign (RunMesh).
type MeshConfig struct {
	// Seed picks the fail-slow victim and the partitioned link.
	Seed int64
	// Nodes is the cluster size (default 3, minimum 3 so relay and quorum
	// corroboration are both exercised).
	Nodes int
	// Quorum is the cluster-verdict corroboration threshold (default 2).
	Quorum int
	// Interval is the shared check + gossip period (default 25ms). The
	// campaign runs on the real clock — the mesh is a real concurrent
	// system — so keep it large enough for CI scheduling noise.
	Interval time.Duration
	// WarmupTicks (default 12) run fault-free; any cluster verdict raised
	// here is a false positive.
	WarmupTicks int
	// FaultTicks (default 40) bound the fail-slow phase.
	FaultTicks int
	// ClearTicks (default 40) bound the post-fault clearing phase.
	ClearTicks int
	// PartitionTicks (default 30) bound the one-way-partition phase; any
	// cluster verdict raised here is a false positive.
	PartitionTicks int
}

func (c MeshConfig) withDefaults() MeshConfig {
	if c.Nodes < 3 {
		c.Nodes = 3
	}
	if c.Quorum <= 0 {
		c.Quorum = 2
	}
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.WarmupTicks <= 0 {
		c.WarmupTicks = 12
	}
	if c.FaultTicks <= 0 {
		c.FaultTicks = 40
	}
	if c.ClearTicks <= 0 {
		c.ClearTicks = 40
	}
	if c.PartitionTicks <= 0 {
		c.PartitionTicks = 30
	}
	return c
}

// MeshObserver is one peer's view of the injected remote fault.
type MeshObserver struct {
	// Node is the observing peer.
	Node string `json:"node"`
	// DetectLatencyNS is fault-armed to intrinsic-cluster-verdict latency.
	DetectLatencyNS int64 `json:"detect_latency_ns"`
	// HeartbeatSuspected reports whether the observer's reachability view
	// (last-heard freshness — what a plain heartbeat measures) ever
	// suspected the victim during the fault. The paper's argument predicts
	// false: the victim limps but keeps gossiping.
	HeartbeatSuspected bool `json:"heartbeat_suspected"`
}

// MeshVerdict is the machine-readable mesh-campaign outcome; CI gates on Pass.
type MeshVerdict struct {
	Substrate  string `json:"substrate"`
	Seed       int64  `json:"seed"`
	Nodes      int    `json:"nodes"`
	Quorum     int    `json:"quorum"`
	IntervalNS int64  `json:"interval_ns"`

	// FaultNode is the seeded fail-slow victim; FaultKind echoes the
	// injected manifestation.
	FaultNode string `json:"fault_node"`
	FaultKind string `json:"fault_kind"`

	// Detected reports whether every healthy peer reached an intrinsic
	// cluster verdict on the victim; Observers carries per-peer latencies.
	Detected  bool           `json:"detected"`
	Observers []MeshObserver `json:"observers"`
	// DetectP50NS/P95/Max summarize observer detection latencies.
	DetectP50NS int64 `json:"detect_p50_ns,omitempty"`
	DetectP95NS int64 `json:"detect_p95_ns,omitempty"`
	DetectMaxNS int64 `json:"detect_max_ns,omitempty"`
	// HeartbeatDetected reports whether plain reachability suspicion saw the
	// fail-slow fault on any observer (expected false: the gap the mesh
	// closes).
	HeartbeatDetected bool `json:"heartbeat_detected"`

	// Cleared reports whether every verdict cleared after the fault was
	// disarmed.
	Cleared bool `json:"cleared"`

	// PartitionLink is the seeded one-way-partitioned link ("from>to");
	// PartitionFalsePositives counts cluster verdicts raised anywhere during
	// the partition (want 0 with quorum >= 2: relay keeps the cut-off side
	// informed).
	PartitionLink           string `json:"partition_link"`
	PartitionFalsePositives int    `json:"partition_false_positives"`
	// WarmupFalsePositives counts cluster verdicts raised before any fault.
	WarmupFalsePositives int `json:"warmup_false_positives"`

	// QueueDrops/SendRetries/SendFailures total the mesh's share-fate
	// counters across nodes at the end of the run.
	QueueDrops   int64 `json:"queue_drops"`
	SendRetries  int64 `json:"send_retries"`
	SendFailures int64 `json:"send_failures"`

	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// meshNode is one cluster member under campaign.
type meshNode struct {
	name  string
	rt    *wdruntime.Runtime
	point string
}

// RunMesh executes the seeded multi-node mesh campaign: N wdruntime nodes on
// an in-process fault-injectable network, each running a latency-budgeted
// checker over its own fault point. Phases:
//
//  1. warmup — fault-free; cluster verdicts are false positives
//  2. fail-slow — a Delay fault on the seeded victim's operation turns its
//     own checker slow (intrinsic detection); peers must corroborate an
//     intrinsic cluster verdict while the victim's reachability stays fresh
//  3. clear — the fault is disarmed; verdicts must clear everywhere
//  4. one-way partition — a Drop fault on one seeded directional link; with
//     relay and quorum >= 2, no cluster verdict may be raised
func RunMesh(cfg MeshConfig) (*MeshVerdict, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	inj := faultinject.New(clock.Real())
	net := wdmesh.NewMemNetwork(clock.Real(), inj)

	names := make([]string, cfg.Nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}

	v := &MeshVerdict{
		Substrate:  "mesh",
		Seed:       cfg.Seed,
		Nodes:      cfg.Nodes,
		Quorum:     cfg.Quorum,
		IntervalNS: int64(cfg.Interval),
		FaultKind:  faultinject.Delay.String(),
	}

	// The victim's checker goes slow when its op point delays past the
	// latency budget; the one-way partition cuts a link between two healthy
	// nodes so the relay path is what keeps the false-positive count at zero.
	victim := names[rng.Intn(len(names))]
	var healthy []string
	for _, n := range names {
		if n != victim {
			healthy = append(healthy, n)
		}
	}
	from := healthy[rng.Intn(len(healthy))]
	to := healthy[rng.Intn(len(healthy)-1)]
	if to == from {
		to = healthy[len(healthy)-1]
	}
	v.FaultNode = victim
	v.PartitionLink = from + ">" + to

	slowBudget := cfg.Interval / 2
	nodes := make([]*meshNode, 0, cfg.Nodes)
	for _, name := range names {
		peers := make([]string, 0, len(names)-1)
		for _, p := range names {
			if p != name {
				peers = append(peers, p)
			}
		}
		rt, err := wdruntime.New(
			wdruntime.WithInterval(cfg.Interval),
			wdruntime.WithTimeout(8*cfg.Interval),
			wdruntime.WithJitterSeed(cfg.Seed),
			wdruntime.WithMesh(name, peers...),
			wdruntime.WithMeshTransport(net.Node(name)),
			wdruntime.WithMeshInterval(cfg.Interval),
			wdruntime.WithMeshQuorum(cfg.Quorum),
		)
		if err != nil {
			return nil, fmt.Errorf("campaign: mesh node %s: %w", name, err)
		}
		point := "mesh." + name + ".op"
		site := watchdog.Site{Function: "campaign.meshNode", Op: point}
		rt.Driver().Register(watchdog.NewChecker("op", func(wctx *watchdog.Context) error {
			return watchdog.OpTimed(wctx, site, slowBudget, nil, func() error {
				return inj.Fire(point)
			})
		}), watchdog.WithContext(readyContext()))
		if err := rt.Start(nil); err != nil {
			return nil, fmt.Errorf("campaign: mesh node %s start: %w", name, err)
		}
		nodes = append(nodes, &meshNode{name: name, rt: rt, point: point})
	}
	defer func() {
		for _, n := range nodes {
			_ = n.rt.Close()
		}
	}()

	sleepTicks := func(n int) { time.Sleep(time.Duration(n) * cfg.Interval) }
	verdictsRaised := func() int64 {
		var total int64
		for _, n := range nodes {
			total += n.rt.Mesh().Snapshot().VerdictsRaised
		}
		return total
	}

	// Phase 1: warmup.
	sleepTicks(cfg.WarmupTicks)
	v.WarmupFalsePositives = int(verdictsRaised())

	// Phase 2: fail-slow on the victim. The delay (2× the check interval)
	// blows the latency budget but stays far under the liveness timeout, so
	// the victim's own watchdog classifies it slow — and the victim keeps
	// gossiping throughout, which is what keeps heartbeats blind.
	var victimPoint string
	for _, n := range nodes {
		if n.name == victim {
			victimPoint = n.point
		}
	}
	armedAt := time.Now()
	inj.Arm(victimPoint, faultinject.Fault{Kind: faultinject.Delay, Delay: 2 * cfg.Interval})

	observers := make(map[string]*MeshObserver)
	for _, n := range nodes {
		if n.name != victim {
			observers[n.name] = &MeshObserver{Node: n.name, DetectLatencyNS: -1}
		}
	}
	deadline := time.Now().Add(time.Duration(cfg.FaultTicks) * cfg.Interval)
	for time.Now().Before(deadline) {
		pending := 0
		for _, n := range nodes {
			if n.name == victim {
				continue
			}
			ob := observers[n.name]
			snap := n.rt.Mesh().Snapshot()
			for _, p := range snap.Peers {
				// The heartbeat view: would plain reachability freshness have
				// suspected the victim?
				if p.Node == victim && p.Observation == wdmesh.ObsUnreachable {
					ob.HeartbeatSuspected = true
					v.HeartbeatDetected = true
				}
			}
			if ob.DetectLatencyNS < 0 {
				for _, cv := range snap.Verdicts {
					if cv.Node == victim && cv.Kind == wdmesh.VerdictIntrinsic {
						ob.DetectLatencyNS = int64(time.Since(armedAt))
					}
				}
			}
			if ob.DetectLatencyNS < 0 {
				pending++
			}
		}
		if pending == 0 {
			break
		}
		time.Sleep(cfg.Interval / 4)
	}

	v.Detected = true
	var lats []int64
	for _, name := range healthy {
		ob := observers[name]
		v.Observers = append(v.Observers, *ob)
		if ob.DetectLatencyNS < 0 {
			v.Detected = false
		} else {
			lats = append(lats, ob.DetectLatencyNS)
		}
	}
	sort.Slice(v.Observers, func(i, j int) bool { return v.Observers[i].Node < v.Observers[j].Node })
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		v.DetectP50NS = lats[len(lats)/2]
		v.DetectP95NS = lats[(len(lats)*95)/100]
		v.DetectMaxNS = lats[len(lats)-1]
	}

	// Phase 3: disarm and wait for every verdict to clear.
	inj.Disarm(victimPoint)
	deadline = time.Now().Add(time.Duration(cfg.ClearTicks) * cfg.Interval)
	for time.Now().Before(deadline) {
		open := 0
		for _, n := range nodes {
			open += len(n.rt.Mesh().Verdicts())
		}
		if open == 0 {
			v.Cleared = true
			break
		}
		time.Sleep(cfg.Interval / 4)
	}

	// Phase 4: one-way partition between two healthy nodes. Relay must keep
	// both sides informed; quorum must hold the verdict count at zero.
	baseline := verdictsRaised()
	inj.Arm(wdmesh.LinkPoint(from, to), faultinject.Fault{Kind: faultinject.Drop})
	sleepTicks(cfg.PartitionTicks)
	v.PartitionFalsePositives = int(verdictsRaised() - baseline)
	inj.Clear()

	for _, n := range nodes {
		snap := n.rt.Mesh().Snapshot()
		v.QueueDrops += snap.QueueDrops
		v.SendRetries += snap.SendRetries
		v.SendFailures += snap.SendFailures
	}

	if v.WarmupFalsePositives > 0 {
		v.Failures = append(v.Failures,
			fmt.Sprintf("%d cluster verdict(s) raised during fault-free warmup", v.WarmupFalsePositives))
	}
	if !v.Detected {
		v.Failures = append(v.Failures,
			"not every peer reached an intrinsic cluster verdict on the fail-slow node")
	}
	if v.HeartbeatDetected {
		v.Failures = append(v.Failures,
			"reachability (heartbeat) suspicion fired on a fail-slow fault — victim should have stayed fresh")
	}
	if !v.Cleared {
		v.Failures = append(v.Failures, "cluster verdicts did not clear after the fault was disarmed")
	}
	if v.PartitionFalsePositives > 0 {
		v.Failures = append(v.Failures,
			fmt.Sprintf("%d cluster verdict(s) raised under the one-way partition", v.PartitionFalsePositives))
	}
	v.Pass = len(v.Failures) == 0
	return v, nil
}

// JSON renders the verdict for CI consumption.
func (v *MeshVerdict) JSON() ([]byte, error) { return json.MarshalIndent(v, "", "  ") }

// Render formats the verdict for humans.
func (v *MeshVerdict) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign mesh seed=%d nodes=%d quorum=%d interval=%s\n",
		v.Seed, v.Nodes, v.Quorum, time.Duration(v.IntervalNS))
	fmt.Fprintf(&b, "  fail-slow on %s (%s): cluster-wide intrinsic detection %v, heartbeat detection %v\n",
		v.FaultNode, v.FaultKind, v.Detected, v.HeartbeatDetected)
	if len(v.Observers) > 0 && v.Detected {
		fmt.Fprintf(&b, "  detection latency p50=%s p95=%s max=%s\n",
			time.Duration(v.DetectP50NS), time.Duration(v.DetectP95NS), time.Duration(v.DetectMaxNS))
	}
	fmt.Fprintf(&b, "  verdicts cleared after disarm: %v\n", v.Cleared)
	fmt.Fprintf(&b, "  one-way partition %s: %d false positive(s); warmup false positives %d\n",
		v.PartitionLink, v.PartitionFalsePositives, v.WarmupFalsePositives)
	fmt.Fprintf(&b, "  mesh share-fate: queue drops %d, send retries %d, send failures %d\n",
		v.QueueDrops, v.SendRetries, v.SendFailures)
	if v.Pass {
		b.WriteString("  PASS\n")
	} else {
		fmt.Fprintf(&b, "  FAIL: %s\n", strings.Join(v.Failures, "; "))
	}
	return b.String()
}
