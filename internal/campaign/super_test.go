package campaign

import (
	"os"
	"testing"
)

// TestMain lets the test binary double as the supervised daemon: when the
// campaign re-executes it with EnvSuperChild set, it becomes the child
// instead of running the test suite.
func TestMain(m *testing.M) {
	MaybeSuperChild()
	os.Exit(m.Run())
}

// TestRunSuper drives the full supervision campaign against real processes:
// SIGKILL outages, a SIGSTOP hang, an adoption across a supervisor restart,
// and a crash-loop storm — scored end-to-end through the episode ledger.
func TestRunSuper(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped in -short")
	}
	v, err := RunSuper(SuperConfig{
		Seed:         42,
		ChildCommand: []string{os.Args[0]},
		Outages:      1,
		Dir:          t.TempDir(),
	})
	if err != nil {
		t.Fatalf("RunSuper: %v", err)
	}
	if !v.Pass {
		t.Fatalf("campaign failed: %v\n%s", v.Failures, v.Render())
	}
	if len(v.Outages) != 3 { // 1 sigkill + sigstop + adoption
		t.Fatalf("outages = %d, want 3", len(v.Outages))
	}
	kinds := map[string]bool{}
	for _, o := range v.Outages {
		kinds[o.Kind] = true
		if o.RestartNS <= 0 || o.HealthyNS < o.RestartNS {
			t.Errorf("%s latencies implausible: restart=%d healthy=%d", o.Kind, o.RestartNS, o.HealthyNS)
		}
	}
	for _, want := range []string{"sigkill", "sigstop", "adoption"} {
		if !kinds[want] {
			t.Errorf("no %q outage recorded", want)
		}
	}
	if v.StormDeaths != 3 {
		t.Errorf("storm deaths = %d, want 3", v.StormDeaths)
	}
	if !v.AdoptedClosed || !v.LedgerConsistent {
		t.Errorf("adopted_closed=%v ledger_consistent=%v, want both true", v.AdoptedClosed, v.LedgerConsistent)
	}
	if _, err := v.JSON(); err != nil {
		t.Errorf("JSON: %v", err)
	}
}

// TestRunSuperValidation pins the config guard.
func TestRunSuperValidation(t *testing.T) {
	if _, err := RunSuper(SuperConfig{}); err == nil {
		t.Fatal("empty ChildCommand should be rejected")
	}
}
