package campaign

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/dfs"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/kvs"
	"gowatchdog/internal/recovery"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
	"gowatchdog/internal/wdruntime"
)

// FaultPoint maps one injector point to the checker that guards it and the
// fault kinds a generated schedule may arm there.
type FaultPoint struct {
	// Point is the injector fault-point name.
	Point string
	// Checker is the watchdog checker expected to detect faults at Point.
	Checker string
	// Kinds are the manifestations a generated schedule may choose.
	Kinds []faultinject.Kind
}

// Target is one system under campaign: a runtime-composed watchdog stack, the
// injector its fault points live on, and the attribution table between them.
// Every substrate builds its stack through wdruntime — the same layer the
// daemons deploy — so a campaign verdict scores the production wiring, not a
// parallel copy of it.
type Target struct {
	// Name labels the substrate in the verdict ("synth", "kvs", "dfs").
	Name string
	// Runtime is the composed watchdog stack. The runner steps its driver
	// with CheckAll, so the runtime must not be started.
	Runtime *wdruntime.Runtime
	// Driver is Runtime.Driver(), kept as a field for the runner's hot path.
	Driver *watchdog.Driver
	// Injector hosts the fault points.
	Injector *faultinject.Injector
	// Recovery, when set, is consulted for the verdict's recovery outcomes.
	// The runtime wires it to the driver.
	Recovery *recovery.Manager
	// Points is the fault-point attribution table.
	Points []FaultPoint
	// Step, when set, runs the target's foreground workload each tick.
	// Operations that can hang must be abandoned on goroutines, never run
	// inline — the campaign loop must stay live through every fault.
	Step func(tick int)
	// Close releases target resources after the run.
	Close func() error
}

func readyContext() *watchdog.Context {
	ctx := watchdog.NewContext()
	ctx.MarkReady()
	return ctx
}

// Synthetic substrate fault points: three independent "components" whose
// entire vulnerable operation is one injector site each, so campaign scoring
// is exact (one point, one checker, no cross-talk).
const (
	SynthPointAlpha = "synth.alpha.io"
	SynthPointBeta  = "synth.beta.rpc"
	SynthPointGamma = "synth.gamma.apply"
)

// NewSynthTarget builds the synthetic substrate: three checkers that each
// exercise one fault point through watchdog.Op, a transiently-failing repair
// action (fails the first attempt of every cycle, succeeds on retry — the
// shape WithRetry exists for), and an escalation counter. Deterministic on a
// virtual clock; opts are appended after the defaults so callers can layer
// the hardening options (breaker, damping, hang budget) or retune timeouts.
// The synth substrate takes no disk-backed options, so runtime composition
// cannot fail; a bad option set panics rather than forcing an error return on
// every chained call site.
func NewSynthTarget(clk clock.Clock, opts ...wdruntime.Option) *Target {
	if clk == nil {
		clk = clock.Real()
	}
	inj := faultinject.New(clk)

	rec := recovery.New(
		recovery.WithClock(clk),
		recovery.WithRetry(2, 500*time.Millisecond),
		recovery.WithMaxAttempts(3),
		recovery.WithWindow(time.Minute),
		recovery.WithHealthyReset(10*time.Second),
		recovery.WithEscalation(recovery.ActionFunc{
			ActionName: "synth.restart",
			Match:      func(watchdog.Report) bool { return true },
			Fn:         func(watchdog.Report) error { return nil },
		}),
	)
	var tmu sync.Mutex
	failedOnce := make(map[string]bool)
	rec.Register(recovery.ActionFunc{
		ActionName: "synth.reset",
		Match: func(rep watchdog.Report) bool {
			return strings.HasPrefix(rep.Checker, "synth.")
		},
		Fn: func(rep watchdog.Report) error {
			tmu.Lock()
			defer tmu.Unlock()
			if !failedOnce[rep.Checker] {
				failedOnce[rep.Checker] = true
				return errors.New("synth: reset lock busy")
			}
			failedOnce[rep.Checker] = false
			return nil
		},
	})

	base := []wdruntime.Option{
		wdruntime.WithClock(clk),
		wdruntime.WithInterval(time.Second),
		wdruntime.WithTimeout(3 * time.Second),
		wdruntime.WithRecovery(rec),
	}
	rt, err := wdruntime.New(append(base, opts...)...)
	if err != nil {
		panic(fmt.Sprintf("campaign: synth runtime: %v", err))
	}
	d := rt.Driver()

	points := []FaultPoint{
		{Point: SynthPointAlpha, Checker: "synth.alpha",
			Kinds: []faultinject.Kind{faultinject.Error, faultinject.Flap}},
		{Point: SynthPointBeta, Checker: "synth.beta",
			Kinds: []faultinject.Kind{faultinject.Hang, faultinject.Error}},
		{Point: SynthPointGamma, Checker: "synth.gamma",
			Kinds: []faultinject.Kind{faultinject.Error, faultinject.Panic}},
	}
	for _, p := range points {
		site := watchdog.Site{Function: "campaign.synth", Op: p.Point}
		point := p.Point
		d.Register(watchdog.NewChecker(p.Checker, func(ctx *watchdog.Context) error {
			return watchdog.Op(ctx, site, func() error {
				return inj.Fire(point)
			})
		}), watchdog.WithContext(readyContext()))
	}

	return &Target{
		Name:     "synth",
		Runtime:  rt,
		Driver:   d,
		Injector: inj,
		Recovery: rec,
		Points:   points,
		Close:    rt.Close,
	}
}

// NewKVSTarget opens a kvs store under dir and wires its generated checker
// suite. The store runs on the real clock (its flusher and compaction
// goroutines do), so campaigns against it should use real-time intervals.
func NewKVSTarget(dir string, opts ...wdruntime.Option) (*Target, error) {
	factory := watchdog.NewFactory()
	store, err := kvs.Open(kvs.Config{
		Dir:                 dir,
		FlushThresholdBytes: 1 << 30, // flush only on demand
		WatchdogFactory:     factory,
	})
	if err != nil {
		return nil, err
	}
	shadow, err := wdio.NewFS(kvs.ShadowDirFor(dir), 0)
	if err != nil {
		store.Close()
		return nil, err
	}

	rec := recovery.New(
		recovery.WithRetry(2, 50*time.Millisecond),
		recovery.WithMaxAttempts(5),
		recovery.WithWindow(time.Minute),
	)
	rec.Register(recovery.ForChecker("kvs.verify", "kvs.", func(watchdog.Report) error {
		return store.VerifyPartition(0)
	}))

	base := []wdruntime.Option{
		wdruntime.WithFactory(factory),
		wdruntime.WithInterval(50 * time.Millisecond),
		wdruntime.WithTimeout(250 * time.Millisecond),
		wdruntime.WithRecovery(rec),
	}
	rt, err := wdruntime.New(append(base, opts...)...)
	if err != nil {
		store.Close()
		return nil, err
	}
	d := rt.Driver()
	store.InstallWatchdog(d, shadow)

	payload := []byte("campaign-payload")
	var inflight atomic.Bool
	return &Target{
		Name:     "kvs",
		Runtime:  rt,
		Driver:   d,
		Injector: store.Injector(),
		Recovery: rec,
		Points: []FaultPoint{
			{Point: kvs.FaultFlushWrite, Checker: "kvs.flusher",
				Kinds: []faultinject.Kind{faultinject.Error, faultinject.Hang, faultinject.Flap}},
			{Point: kvs.FaultWALAppend, Checker: "kvs.wal",
				Kinds: []faultinject.Kind{faultinject.Error, faultinject.Flap}},
			{Point: kvs.FaultIndexerPut, Checker: "kvs.indexer",
				Kinds: []faultinject.Kind{faultinject.Error}},
			{Point: kvs.FaultCompactMerge, Checker: "kvs.compaction",
				Kinds: []faultinject.Kind{faultinject.Error, faultinject.Hang}},
		},
		Step: func(tick int) {
			// Foreground traffic keeps the hook-fed contexts fresh. Writes
			// can hang on an armed WAL point, so they are abandoned, not
			// awaited — exactly how table1's workload treats them. At most
			// one write is in flight so Close can drain deterministically.
			if !inflight.CompareAndSwap(false, true) {
				return
			}
			key := []byte{byte(tick % 251)}
			go func() {
				defer inflight.Store(false)
				_ = store.Set(key, payload)
			}()
		},
		Close: func() error {
			drainInflight(&inflight)
			return errors.Join(rt.Close(), store.Close())
		},
	}, nil
}

// drainInflight waits (bounded) for a target's single abandoned workload op
// to finish; the runner has already cleared the injector, so any hang it was
// stuck in has been released.
func drainInflight(inflight *atomic.Bool) {
	for i := 0; i < 400 && inflight.Load(); i++ {
		time.Sleep(5 * time.Millisecond)
	}
}

// NewDFSTarget builds a two-volume DataNode and wires its disk checkers.
func NewDFSTarget(dir string, opts ...wdruntime.Option) (*Target, error) {
	factory := watchdog.NewFactory()
	dn, err := dfs.New(dfs.Config{
		VolumeDirs:      []string{filepath.Join(dir, "vol0"), filepath.Join(dir, "vol1")},
		WatchdogFactory: factory,
	})
	if err != nil {
		return nil, err
	}

	rec := recovery.New(
		recovery.WithRetry(2, 50*time.Millisecond),
		recovery.WithMaxAttempts(5),
		recovery.WithWindow(time.Minute),
	)
	rec.Register(recovery.ForChecker("dfs.rescan", "dfs.", func(watchdog.Report) error {
		_, err := dn.ScanBlocks()
		return err
	}))

	base := []wdruntime.Option{
		wdruntime.WithFactory(factory),
		wdruntime.WithInterval(50 * time.Millisecond),
		wdruntime.WithTimeout(250 * time.Millisecond),
		wdruntime.WithRecovery(rec),
	}
	rt, err := wdruntime.New(append(base, opts...)...)
	if err != nil {
		return nil, err
	}
	d := rt.Driver()
	dn.InstallWatchdog(d)

	payload := []byte("campaign block payload")
	var inflight atomic.Bool
	return &Target{
		Name:     "dfs",
		Runtime:  rt,
		Driver:   d,
		Injector: dn.Injector(),
		Recovery: rec,
		Points: []FaultPoint{
			{Point: dfs.FaultVolumeWritePrefix + "0", Checker: "dfs.disk",
				Kinds: []faultinject.Kind{faultinject.Error, faultinject.Hang, faultinject.Flap}},
			{Point: dfs.FaultVolumeWritePrefix + "1", Checker: "dfs.disk",
				Kinds: []faultinject.Kind{faultinject.Error, faultinject.Flap}},
		},
		Step: func(tick int) {
			if tick%4 != 0 || !inflight.CompareAndSwap(false, true) {
				return
			}
			go func() {
				defer inflight.Store(false)
				_, _ = dn.WriteBlock(payload)
			}()
		},
		Close: func() error {
			drainInflight(&inflight)
			return rt.Close()
		},
	}, nil
}

// NewTarget builds the named substrate ("synth", "kvs", "dfs"); dir is the
// scratch directory for disk-backed substrates.
func NewTarget(name, dir string, opts ...wdruntime.Option) (*Target, error) {
	switch name {
	case "synth":
		return NewSynthTarget(clock.Real(), opts...), nil
	case "kvs":
		return NewKVSTarget(filepath.Join(dir, "kvs"), opts...)
	case "dfs":
		return NewDFSTarget(filepath.Join(dir, "dfs"), opts...)
	default:
		return nil, fmt.Errorf("campaign: unknown substrate %q", name)
	}
}
