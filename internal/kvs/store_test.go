package kvs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"gowatchdog/internal/faultinject"
)

func openStore(t *testing.T, mutate func(*Config)) *Store {
	t.Helper()
	cfg := Config{Dir: t.TempDir(), FlushThresholdBytes: 1 << 30}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSetGetDel(t *testing.T) {
	s := openStore(t, nil)
	if err := s.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if err := s.Del([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get([]byte("k")); ok {
		t.Fatal("key present after Del")
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s := openStore(t, nil)
	if err := s.Set(nil, []byte("v")); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Set: %v", err)
	}
	if _, _, err := s.Get(nil); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Get: %v", err)
	}
}

func TestAppendSemantics(t *testing.T) {
	s := openStore(t, nil)
	if err := s.Append([]byte("log"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("log"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	v, _, _ := s.Get([]byte("log"))
	if string(v) != "ab" {
		t.Fatalf("value = %q, want ab", v)
	}
}

func TestKeysRouteToCorrectPartitions(t *testing.T) {
	s := openStore(t, func(c *Config) { c.Partitions = 4 })
	// Keys spanning the byte space land in different partitions.
	keys := [][]byte{{0x01}, {0x41}, {0x81}, {0xC1}}
	seen := map[int]bool{}
	for _, k := range keys {
		p := s.partitionFor(k)
		if !p.owns(k) {
			t.Fatalf("partition %d does not own its routed key %x", p.id, k)
		}
		seen[p.id] = true
	}
	if len(seen) != 4 {
		t.Fatalf("keys did not spread across partitions: %v", seen)
	}
	// Partition manager invariant: ranges sorted ascending and contiguous.
	for i := 1; i < len(s.parts); i++ {
		if !bytes.Equal(s.parts[i-1].hi, s.parts[i].lo) {
			t.Fatalf("partitions %d/%d not contiguous", i-1, i)
		}
	}
}

func TestFlushCreatesSSTableAndPreservesReads(t *testing.T) {
	s := openStore(t, nil)
	for i := 0; i < 100; i++ {
		if err := s.Set([]byte(fmt.Sprintf("key%03d", i)), []byte(fmt.Sprintf("val%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.FlushAll(true)
	// At least the partition holding "key..." flushed.
	p := s.partitionFor([]byte("key000"))
	if s.TableCount(p.id) == 0 {
		t.Fatal("no SSTable after flush")
	}
	// Reads hit the SSTable now.
	v, ok, err := s.Get([]byte("key042"))
	if err != nil || !ok || string(v) != "val42" {
		t.Fatalf("Get after flush = %q %v %v", v, ok, err)
	}
	// New writes after flush still readable (fresh memtable).
	s.Set([]byte("key042"), []byte("newval"))
	v, _, _ = s.Get([]byte("key042"))
	if string(v) != "newval" {
		t.Fatalf("memtable does not shadow SSTable: %q", v)
	}
}

func TestDeleteShadowsFlushedValue(t *testing.T) {
	s := openStore(t, nil)
	s.Set([]byte("k"), []byte("v"))
	s.FlushAll(true)
	s.Del([]byte("k"))
	if _, ok, _ := s.Get([]byte("k")); ok {
		t.Fatal("tombstone did not shadow SSTable value")
	}
	// Even after the tombstone itself is flushed.
	s.FlushAll(true)
	if _, ok, _ := s.Get([]byte("k")); ok {
		t.Fatal("flushed tombstone did not shadow SSTable value")
	}
}

func TestCompactionMergesTables(t *testing.T) {
	s := openStore(t, func(c *Config) { c.CompactionMinTables = 3 })
	key := []byte("Akey")
	p := s.partitionFor(key)
	for round := 0; round < 3; round++ {
		s.Set(key, []byte(fmt.Sprintf("v%d", round)))
		s.Set([]byte(fmt.Sprintf("Aother%d", round)), []byte("x"))
		s.FlushAll(true)
	}
	if got := s.TableCount(p.id); got != 3 {
		t.Fatalf("tables before compaction = %d", got)
	}
	if err := s.CompactPartition(p.id); err != nil {
		t.Fatal(err)
	}
	if got := s.TableCount(p.id); got != 1 {
		t.Fatalf("tables after compaction = %d, want 1", got)
	}
	v, ok, err := s.Get(key)
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("Get after compaction = %q %v %v (newest must win)", v, ok, err)
	}
	if s.Metrics().Counter("kvs.compactions").Value() != 1 {
		t.Fatal("compaction counter not incremented")
	}
}

func TestCompactionDropsTombstones(t *testing.T) {
	s := openStore(t, func(c *Config) { c.CompactionMinTables = 2 })
	s.Set([]byte("dead"), []byte("x"))
	s.FlushAll(true)
	s.Del([]byte("dead"))
	s.FlushAll(true)
	p := s.partitionFor([]byte("dead"))
	if err := s.CompactPartition(p.id); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get([]byte("dead")); ok {
		t.Fatal("deleted key visible after compaction")
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, FlushThresholdBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	s.Set([]byte("durable"), []byte("yes"))
	s.Set([]byte("gone"), []byte("x"))
	s.Del([]byte("gone"))
	// Close WITHOUT flush path: simulate crash by closing partitions only.
	s.closePartitions()

	s2, err := Open(Config{Dir: dir, FlushThresholdBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, ok, err := s2.Get([]byte("durable"))
	if err != nil || !ok || string(v) != "yes" {
		t.Fatalf("recovered Get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := s2.Get([]byte("gone")); ok {
		t.Fatal("deleted key resurrected by recovery")
	}
}

func TestRecoveryAfterFlushAndMoreWrites(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(Config{Dir: dir, FlushThresholdBytes: 1 << 30})
	s.Set([]byte("a"), []byte("1"))
	s.FlushAll(true)
	s.Set([]byte("b"), []byte("2"))
	s.closePartitions()

	s2, err := Open(Config{Dir: dir, FlushThresholdBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, kv := range [][2]string{{"a", "1"}, {"b", "2"}} {
		v, ok, _ := s2.Get([]byte(kv[0]))
		if !ok || string(v) != kv[1] {
			t.Fatalf("Get(%s) = %q %v", kv[0], v, ok)
		}
	}
}

func TestScanAcrossMemtableAndTables(t *testing.T) {
	s := openStore(t, nil)
	s.Set([]byte("scan/a"), []byte("1"))
	s.Set([]byte("scan/b"), []byte("2"))
	s.FlushAll(true)
	s.Set([]byte("scan/b"), []byte("2new"))
	s.Set([]byte("scan/c"), []byte("3"))
	s.Del([]byte("scan/a"))
	entries, err := s.Scan([]byte("scan/"), []byte("scan/~"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("scan returned %d entries: %v", len(entries), entries)
	}
	if string(entries[0].Key) != "scan/b" || string(entries[0].Value) != "2new" {
		t.Fatalf("entry 0 = %s=%s", entries[0].Key, entries[0].Value)
	}
	if string(entries[1].Key) != "scan/c" {
		t.Fatalf("entry 1 = %s", entries[1].Key)
	}
}

func TestInMemoryModeNeverTouchesDisk(t *testing.T) {
	s := openStore(t, func(c *Config) { c.InMemory = true })
	s.Set([]byte("k"), []byte("v"))
	if err := s.FlushPartition(0, true); err != nil {
		t.Fatal(err)
	}
	if s.TableCount(0) != 0 {
		t.Fatal("in-memory store created an SSTable")
	}
	v, ok, _ := s.Get([]byte("k"))
	if !ok || string(v) != "v" {
		t.Fatalf("Get = %q %v", v, ok)
	}
}

func TestInjectedIndexerErrorSurfaces(t *testing.T) {
	s := openStore(t, nil)
	s.Injector().Arm(FaultIndexerPut, faultinject.Fault{Kind: faultinject.Error})
	if err := s.Set([]byte("k"), []byte("v")); err == nil {
		t.Fatal("Set succeeded under injected indexer fault")
	}
	s.Injector().Disarm(FaultIndexerPut)
	if err := s.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestInjectedFlushErrorKeepsDataReadable(t *testing.T) {
	s := openStore(t, nil)
	s.Set([]byte("k"), []byte("v"))
	s.Injector().Arm(FaultFlushWrite, faultinject.Fault{Kind: faultinject.Error})
	if err := s.FlushPartition(s.partitionFor([]byte("k")).id, true); err == nil {
		t.Fatal("flush succeeded under injected fault")
	}
	// The memtable still serves the data (flush failed before rotation).
	v, ok, _ := s.Get([]byte("k"))
	if !ok || string(v) != "v" {
		t.Fatalf("data lost on failed flush: %q %v", v, ok)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	recs := []record{
		{op: opSet, key: []byte("k"), value: []byte("v")},
		{op: opDel, key: []byte("gone")},
		{op: opSet, key: []byte("empty-val"), value: nil},
	}
	for _, r := range recs {
		got, err := decodeRecord(encodeRecord(r))
		if err != nil {
			t.Fatal(err)
		}
		if got.op != r.op || !bytes.Equal(got.key, r.key) || !bytes.Equal(got.value, r.value) {
			t.Fatalf("round trip %+v -> %+v", r, got)
		}
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},          // bad op
		{opSet, 0xFF}, // truncated varint
		{opSet, 5, 'a', 'b'},
		append(encodeRecord(record{op: opSet, key: []byte("k")}), 'x'), // trailing
	}
	for i, c := range cases {
		if _, err := decodeRecord(c); err == nil {
			t.Errorf("case %d decoded successfully", i)
		}
	}
}

// Property: the codec round-trips arbitrary keys and values.
func TestCodecProperty(t *testing.T) {
	f := func(key, val []byte, del bool) bool {
		if len(key) == 0 {
			key = []byte("k")
		}
		op := opSet
		if del {
			op = opDel
		}
		r := record{op: op, key: key, value: val}
		got, err := decodeRecord(encodeRecord(r))
		return err == nil && bytes.Equal(got.key, r.key) && bytes.Equal(got.value, r.value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the store agrees with a model map across random workloads,
// including a mid-stream flush and compaction.
func TestStoreModelProperty(t *testing.T) {
	type op struct {
		Del bool
		K   uint8
		V   uint16
	}
	f := func(ops []op) bool {
		dir := t.TempDir()
		s, err := Open(Config{Dir: dir, FlushThresholdBytes: 1 << 30, CompactionMinTables: 2})
		if err != nil {
			return false
		}
		defer s.Close()
		model := map[string]string{}
		for i, o := range ops {
			k := fmt.Sprintf("key%03d", o.K)
			if o.Del {
				if s.Del([]byte(k)) != nil {
					return false
				}
				delete(model, k)
			} else {
				v := fmt.Sprintf("val%05d", o.V)
				if s.Set([]byte(k), []byte(v)) != nil {
					return false
				}
				model[k] = v
			}
			if i == len(ops)/2 {
				s.FlushAll(true)
			}
		}
		s.FlushAll(true)
		s.CompactAll()
		for k, want := range model {
			v, ok, err := s.Get([]byte(k))
			if err != nil || !ok || string(v) != want {
				return false
			}
		}
		// And no deleted keys resurrect.
		for i := 0; i < 256; i++ {
			k := fmt.Sprintf("key%03d", i)
			if _, expected := model[k]; !expected {
				if _, ok, _ := s.Get([]byte(k)); ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
