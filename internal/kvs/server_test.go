package kvs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gowatchdog/internal/faultinject"
)

func startServer(t *testing.T, mutate func(*Config)) (*Server, *Store) {
	t.Helper()
	s := openStore(t, mutate)
	srv, err := Serve("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, s
}

func dialClient(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerSetGetDelOverTCP(t *testing.T) {
	srv, _ := startServer(t, nil)
	c := dialClient(t, srv.Addr())
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("greeting", "hello world"); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("greeting")
	if err != nil || v != "hello world" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := c.Del("greeting"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("greeting"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Del: %v", err)
	}
}

func TestServerAppendAndScan(t *testing.T) {
	srv, _ := startServer(t, nil)
	c := dialClient(t, srv.Addr())
	c.Set("s/a", "1")
	c.Set("s/b", "2")
	c.Append("s/b", "2")
	got, err := c.Scan("s/", "s/~", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["s/a"] != "1" || got["s/b"] != "22" {
		t.Fatalf("Scan = %v", got)
	}
	limited, err := c.Scan("s/", "s/~", 1)
	if err != nil || len(limited) != 1 {
		t.Fatalf("limited scan = %v, %v", limited, err)
	}
}

func TestServerStats(t *testing.T) {
	srv, _ := startServer(t, nil)
	c := dialClient(t, srv.Addr())
	c.Set("k", "v")
	c.Get("k")
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["kvs.mutations"] < 1 {
		t.Fatalf("mutations stat = %v", stats["kvs.mutations"])
	}
	if stats["kvs.requests"] < 2 {
		t.Fatalf("requests stat = %v", stats["kvs.requests"])
	}
}

func TestServerErrorResponses(t *testing.T) {
	srv, _ := startServer(t, nil)
	c := dialClient(t, srv.Addr())
	cases := []struct {
		line string
		want string
	}{
		{"SET", "ERR"},
		{"SET keyonly", "ERR"},
		{"GET", "ERR"},
		{"DEL", "ERR"},
		{"SCAN a b", "ERR"},
		{"SCAN a b x", "ERR"},
		{"BOGUS", "ERR"},
	}
	for _, tc := range cases {
		resp, err := c.roundTrip(tc.line)
		if err != nil {
			t.Fatalf("%q: %v", tc.line, err)
		}
		if !strings.HasPrefix(resp, tc.want) {
			t.Errorf("%q -> %q, want %s prefix", tc.line, resp, tc.want)
		}
	}
}

func TestServerInjectedHandlerFault(t *testing.T) {
	srv, s := startServer(t, nil)
	c := dialClient(t, srv.Addr())
	s.Injector().Arm(FaultListenerHandle, faultinject.Fault{Kind: faultinject.Error})
	if err := c.Ping(); err == nil {
		t.Fatal("Ping succeeded under injected handler fault")
	}
	s.Injector().Disarm(FaultListenerHandle)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	srv, _ := startServer(t, nil)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(srv.Addr(), 5*time.Second)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("w%d/k%d", w, i)
				if err := c.Set(k, "v"); err != nil {
					errCh <- err
					return
				}
				if _, err := c.Get(k); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestReplicationEndToEnd(t *testing.T) {
	// Replica store + server.
	replicaStore := openStore(t, func(c *Config) { c.Dir = t.TempDir() })
	rs, err := ServeReplica("127.0.0.1:0", replicaStore)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })

	primary := openStore(t, func(c *Config) { c.ReplicaAddr = rs.Addr() })
	primary.Start()

	primary.Set([]byte("replicated"), []byte("yes"))
	primary.Set([]byte("deleted"), []byte("x"))
	primary.Del([]byte("deleted"))

	deadline := time.Now().Add(5 * time.Second)
	for {
		v, ok, _ := replicaStore.Get([]byte("replicated"))
		_, delOK, _ := replicaStore.Get([]byte("deleted"))
		if ok && string(v) == "yes" && !delOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication did not converge: ok=%v v=%q delOK=%v", ok, v, delOK)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if primary.Metrics().Counter("kvs.repl.acks").Value() < 3 {
		t.Fatalf("acks = %d", primary.Metrics().Counter("kvs.repl.acks").Value())
	}
}

func TestReplicationSurvivesReplicaRestart(t *testing.T) {
	replicaStore := openStore(t, nil)
	rs, err := ServeReplica("127.0.0.1:0", replicaStore)
	if err != nil {
		t.Fatal(err)
	}
	addr := rs.Addr()

	primary := openStore(t, func(c *Config) { c.ReplicaAddr = addr })
	primary.Start()
	primary.Set([]byte("one"), []byte("1"))
	waitReplicated(t, replicaStore, "one", "1")

	// Kill the replica server; primary sends fail and drop.
	rs.Close()
	primary.Set([]byte("lost"), []byte("x"))
	time.Sleep(50 * time.Millisecond)

	// Restart on the same address.
	rs2, err := ServeReplica(addr, replicaStore)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { rs2.Close() })
	primary.Set([]byte("two"), []byte("2"))
	waitReplicated(t, replicaStore, "two", "2")
}

func waitReplicated(t *testing.T, s *Store, key, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, ok, _ := s.Get([]byte(key))
		if ok && string(v) == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("key %q never replicated", key)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReplicationQueueDropWhenFull(t *testing.T) {
	// No replica listening: sender blocks on dial failures while the queue
	// fills; excess records are dropped, not blocking writers.
	primary := openStore(t, func(c *Config) { c.ReplicaAddr = "127.0.0.1:1" })
	// Note: replicator not started, so the queue only drains into nothing.
	for i := 0; i < 2000; i++ {
		if err := primary.Set([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if primary.Metrics().Counter("kvs.repl.dropped").Value() == 0 {
		t.Fatal("expected drops with full replication queue")
	}
}
