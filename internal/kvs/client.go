package kvs

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// ErrNotFound is returned by Client.Get for absent keys.
var ErrNotFound = errors.New("kvs: key not found")

// Client is a synchronous client for the kvs text protocol. It is not safe
// for concurrent use; open one client per goroutine, or use Pipeline to
// keep many requests in flight on one connection.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration
}

// Dial connects to a kvs server. timeout bounds each request round trip
// (0 means 5s).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn:    conn,
		r:       bufio.NewReaderSize(conn, 64<<10),
		w:       bufio.NewWriterSize(conn, 64<<10),
		timeout: timeout,
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one line and reads one response line.
func (c *Client) roundTrip(line string) (string, error) {
	c.conn.SetDeadline(time.Now().Add(c.timeout))
	c.w.WriteString(line)
	c.w.WriteByte('\n')
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSuffix(resp, "\n"), nil
}

// expectOK parses an OK/ERR response.
func expectOK(resp string) error {
	if resp == "OK" {
		return nil
	}
	if strings.HasPrefix(resp, "ERR ") {
		return errors.New(strings.TrimPrefix(resp, "ERR "))
	}
	return fmt.Errorf("kvs: unexpected response %q", resp)
}

// Set stores value under key.
func (c *Client) Set(key, value string) error {
	resp, err := c.roundTrip("SET " + key + " " + value)
	if err != nil {
		return err
	}
	return expectOK(resp)
}

// Append appends value to key.
func (c *Client) Append(key, value string) error {
	resp, err := c.roundTrip("APPEND " + key + " " + value)
	if err != nil {
		return err
	}
	return expectOK(resp)
}

// Get fetches the value of key.
func (c *Client) Get(key string) (string, error) {
	resp, err := c.roundTrip("GET " + key)
	if err != nil {
		return "", err
	}
	switch {
	case strings.HasPrefix(resp, "VALUE "):
		return strings.TrimPrefix(resp, "VALUE "), nil
	case resp == "NOT_FOUND":
		return "", ErrNotFound
	case strings.HasPrefix(resp, "ERR "):
		return "", errors.New(strings.TrimPrefix(resp, "ERR "))
	default:
		return "", fmt.Errorf("kvs: unexpected response %q", resp)
	}
}

// Del removes key.
func (c *Client) Del(key string) error {
	resp, err := c.roundTrip("DEL " + key)
	if err != nil {
		return err
	}
	return expectOK(resp)
}

// Ping checks liveness of the request path.
func (c *Client) Ping() error {
	resp, err := c.roundTrip("PING")
	if err != nil {
		return err
	}
	if resp != "PONG" {
		return fmt.Errorf("kvs: unexpected ping response %q", resp)
	}
	return nil
}

// readCountBlock reads a COUNT-prefixed multi-line response.
func (c *Client) readCountBlock(first string) ([]string, error) {
	if strings.HasPrefix(first, "ERR ") {
		return nil, errors.New(strings.TrimPrefix(first, "ERR "))
	}
	if !strings.HasPrefix(first, "COUNT ") {
		return nil, fmt.Errorf("kvs: unexpected response %q", first)
	}
	n, err := strconv.Atoi(strings.TrimPrefix(first, "COUNT "))
	if err != nil {
		return nil, fmt.Errorf("kvs: bad count in %q", first)
	}
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		lines = append(lines, strings.TrimSuffix(line, "\n"))
	}
	return lines, nil
}

// Scan lists up to limit keys in [start, end); pass "" for unbounded ends.
func (c *Client) Scan(start, end string, limit int) (map[string]string, error) {
	if start == "" {
		start = "-"
	}
	if end == "" {
		end = "-"
	}
	first, err := c.roundTrip(fmt.Sprintf("SCAN %s %s %d", start, end, limit))
	if err != nil {
		return nil, err
	}
	lines, err := c.readCountBlock(first)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(lines))
	for _, l := range lines {
		k, v, _ := strings.Cut(l, " ")
		out[k] = v
	}
	return out, nil
}

// Stats returns the server's metric snapshot.
func (c *Client) Stats() (map[string]float64, error) {
	first, err := c.roundTrip("STATS")
	if err != nil {
		return nil, err
	}
	lines, err := c.readCountBlock(first)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(lines))
	for _, l := range lines {
		k, v, _ := strings.Cut(l, " ")
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("kvs: bad stat line %q", l)
		}
		out[k] = f
	}
	return out, nil
}
