package kvs

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"time"

	"gowatchdog/internal/memtable"
	"gowatchdog/internal/sstable"
	"gowatchdog/internal/wal"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/checkers"
	"gowatchdog/internal/watchdog/wdio"
)

// watchdogKeyPrefix namespaces keys the indexer checker writes into the real
// memtable, so checking traffic can never collide with client data — the
// isolation requirement from §3.2 ("should not overwrite data produced from
// the normal execution").
const watchdogKeyPrefix = "__wd__/"

// InstallWatchdog registers the generated-style mimic checker suite for this
// store on d. The driver's factory must be the same factory configured as
// the store's WatchdogFactory, so the hooks on the main execution path feed
// these checkers' contexts. shadow receives all checker disk I/O.
//
// The six checkers mirror the kvs internals of Figure 1: indexer, WAL,
// disk flusher, compaction manager, replication engine, and the partition
// manager's fsck-style integrity check. Each one (a) mimics the component's
// vulnerable operations against the same environment (the shared fault
// points model the volume/network), and (b) runs on state captured by hooks
// at the Figure-2-style instrumentation points.
func (s *Store) InstallWatchdog(d *watchdog.Driver, shadow *wdio.FS) {
	d.Register(s.flusherChecker(shadow))
	// The compaction checker's reduced operation is self-contained (it
	// merges its own shadow tables), so it needs no hook-fed state and runs
	// from the start.
	d.Register(s.compactionChecker(shadow), watchdog.WithContext(readyContext()))
	d.Register(s.walChecker(shadow))
	d.Register(s.indexerChecker())
	// The fsck-style partition check is heavyweight (it re-reads WAL frames
	// and table checksums), so it runs at a tenth of the default cadence —
	// the paper's "we need to prioritize checking with limited resources".
	d.Register(s.partitionChecker(), watchdog.WithContext(readyContext()),
		watchdog.Every(10*d.DefaultInterval()),
		watchdog.Timeout(10*d.DefaultTimeout()))
	if s.repl != nil {
		d.Register(s.replChecker())
	}
}

func readyContext() *watchdog.Context {
	ctx := watchdog.NewContext()
	ctx.MarkReady()
	return ctx
}

// flusherChecker mimics the disk flusher: it writes a small SSTable with the
// last flushed sample to the shadow filesystem, re-opens it, and validates
// the checksum — real disk I/O through the same fault point as the flusher.
func (s *Store) flusherChecker(shadow *wdio.FS) watchdog.Checker {
	site := watchdog.Site{
		Function: "kvs.(*Store).FlushPartition",
		Op:       "sstable.Write",
		File:     "internal/kvs/flush.go",
		Line:     56,
	}
	return watchdog.NewChecker("kvs.flusher", func(ctx *watchdog.Context) error {
		sample := ctx.GetBytes("sample")
		if len(sample) == 0 {
			sample = []byte("wd-flush-probe")
		}
		return watchdog.Op(ctx, site, func() error {
			if err := s.inj.Fire(FaultFlushWrite); err != nil {
				return err
			}
			rel := fmt.Sprintf("flusher/p%d.sst", ctx.GetInt("partition"))
			path, err := shadow.PreparePath(rel)
			if err != nil {
				return err
			}
			entries := []memtable.Entry{{Key: []byte(watchdogKeyPrefix + "flush"), Value: sample}}
			if err := sstable.Write(path, entries); err != nil {
				return err
			}
			r, err := sstable.Open(path)
			if err != nil {
				return err
			}
			defer r.Close()
			defer shadow.Remove(rel)
			return r.VerifyChecksum()
		})
	})
}

// compactionChecker mimics the compaction manager: it merges two tiny
// SSTables in the shadow and validates the output, passing through the
// compaction fault point.
func (s *Store) compactionChecker(shadow *wdio.FS) watchdog.Checker {
	site := watchdog.Site{
		Function: "kvs.(*Store).CompactPartition",
		Op:       "sstable.Merge",
		File:     "internal/kvs/flush.go",
		Line:     133,
	}
	return watchdog.NewChecker("kvs.compaction", func(ctx *watchdog.Context) error {
		return watchdog.Op(ctx, site, func() error {
			if err := s.inj.Fire(FaultCompactMerge); err != nil {
				return err
			}
			aRel, bRel, outRel := "compact/a.sst", "compact/b.sst", "compact/out.sst"
			aPath, err := shadow.PreparePath(aRel)
			if err != nil {
				return err
			}
			bPath, _ := shadow.PreparePath(bRel)
			outPath, _ := shadow.PreparePath(outRel)
			if err := sstable.Write(aPath, []memtable.Entry{
				{Key: []byte("k1"), Value: []byte("new")},
			}); err != nil {
				return err
			}
			if err := sstable.Write(bPath, []memtable.Entry{
				{Key: []byte("k1"), Value: []byte("old")},
				{Key: []byte("k2"), Value: []byte("keep")},
			}); err != nil {
				return err
			}
			ra, err := sstable.Open(aPath)
			if err != nil {
				return err
			}
			defer ra.Close()
			rb, err := sstable.Open(bPath)
			if err != nil {
				return err
			}
			defer rb.Close()
			if err := sstable.Merge(outPath, []*sstable.Reader{ra, rb}, true); err != nil {
				return err
			}
			out, err := sstable.Open(outPath)
			if err != nil {
				return err
			}
			defer out.Close()
			defer func() {
				shadow.Remove(aRel)
				shadow.Remove(bRel)
				shadow.Remove(outRel)
			}()
			v, _, ok, err := out.Get([]byte("k1"))
			if err != nil {
				return err
			}
			if !ok || string(v) != "new" {
				return fmt.Errorf("merge produced %q for k1, want \"new\"", v)
			}
			return nil
		})
	})
}

// walChecker mimics the WAL appender: it appends the last logged record to a
// shadow WAL, syncs, and verifies the frames.
func (s *Store) walChecker(shadow *wdio.FS) watchdog.Checker {
	site := watchdog.Site{
		Function: "kvs.(*Store).apply",
		Op:       "wal.Append",
		File:     "internal/kvs/store.go",
		Line:     236,
	}
	return watchdog.NewChecker("kvs.wal", func(ctx *watchdog.Context) error {
		rec := ctx.GetBytes("record")
		if len(rec) == 0 {
			rec = encodeRecord(record{op: opSet, key: []byte(watchdogKeyPrefix + "wal"), value: []byte("probe")})
		}
		return watchdog.Op(ctx, site, func() error {
			if err := s.inj.Fire(FaultWALAppend); err != nil {
				return err
			}
			path, err := shadow.PreparePath(fmt.Sprintf("wal/p%d.log", ctx.GetInt("partition")))
			if err != nil {
				return err
			}
			l, err := wal.Open(path)
			if err != nil {
				return err
			}
			defer l.Close()
			if err := l.Append(rec); err != nil {
				return err
			}
			if err := l.Sync(); err != nil {
				return err
			}
			if err := l.Verify(); err != nil {
				return err
			}
			// Keep the shadow WAL bounded.
			if l.Size() > 1<<20 {
				return l.Reset()
			}
			return nil
		})
	})
}

// indexerChecker mimics the indexer on the real memtable under a reserved
// key namespace: put, get-back-verify, delete — the §3.2 example of checkers
// that "retrieve or insert some keys" without touching client data.
func (s *Store) indexerChecker() watchdog.Checker {
	site := watchdog.Site{
		Function: "kvs.(*partition).applyToMem",
		Op:       "memtable.Put",
		File:     "internal/kvs/partition.go",
		Line:     97,
	}
	return watchdog.NewChecker("kvs.indexer", func(ctx *watchdog.Context) error {
		// Probe the partition that handled the most recent real mutation.
		pid := int(ctx.GetInt("partition"))
		if pid < 0 || pid >= len(s.parts) {
			pid = 0
		}
		p := s.parts[pid]
		key := []byte(fmt.Sprintf("%sindexer/p%d", watchdogKeyPrefix, pid))
		val := []byte("wd-index-probe")
		return watchdog.Op(ctx, site, func() error {
			// Snapshot the live memtable under the partition lock; a flush
			// in progress means the partition is busy, not broken — skip
			// this round rather than contend (the flusher checker owns that
			// failure mode).
			if !p.mu.TryLock() {
				return nil
			}
			mem := p.mem
			p.mu.Unlock()
			if err := s.inj.Fire(FaultIndexerPut); err != nil {
				return err
			}
			mem.Put(key, val)
			if err := s.inj.Fire(FaultIndexerGet); err != nil {
				return err
			}
			got, tomb, ok := mem.Get(key)
			if !ok || tomb || string(got) != string(val) {
				return fmt.Errorf("indexer probe read back %q (ok=%v tomb=%v)", got, ok, tomb)
			}
			mem.Delete(key)
			return nil
		})
	})
}

// partitionChecker is the heavyweight fsck-style check: WAL frame and
// SSTable checksum validation across all partitions, run concurrently with
// normal execution (§3.1 "complex fsck-like checks in parallel").
func (s *Store) partitionChecker() watchdog.Checker {
	site := watchdog.Site{
		Function: "kvs.(*Store).VerifyPartition",
		Op:       "sstable.VerifyChecksum",
		File:     "internal/kvs/flush.go",
		Line:     190,
	}
	return watchdog.NewChecker("kvs.partition", func(ctx *watchdog.Context) error {
		return watchdog.Op(ctx, site, func() error {
			for i := range s.parts {
				if err := s.VerifyPartition(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

// replChecker mimics the replication engine: it dials the replica and ships
// a zero-length frame (acknowledged but not applied), passing through the
// replication fault point — a real network round trip on the same path.
func (s *Store) replChecker() watchdog.Checker {
	site := watchdog.Site{
		Function: "kvs.(*replicator).sendOne",
		Op:       "net.Write",
		File:     "internal/kvs/replication.go",
		Line:     118,
	}
	return watchdog.NewChecker("kvs.repl", func(ctx *watchdog.Context) error {
		addr := ctx.GetString("addr")
		if addr == "" {
			addr = s.repl.addr
		}
		return watchdog.Op(ctx, site, func() error {
			if err := s.inj.Fire(FaultReplSend); err != nil {
				return err
			}
			conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				return err
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(5 * time.Second))
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], 0)
			if _, err := conn.Write(hdr[:]); err != nil {
				return err
			}
			var ack [1]byte
			if _, err := io.ReadFull(conn, ack[:]); err != nil {
				return err
			}
			if ack[0] != replAck {
				return fmt.Errorf("bad ack %#x", ack[0])
			}
			return nil
		})
	})
}

// MimicCheckers returns the generated-style mimic suite in coverage order
// (broadest first), paired with whether each needs a hook-fed context.
// Experiments use it to register checker subsets; InstallWatchdog registers
// the full set.
func (s *Store) MimicCheckers(shadow *wdio.FS) []struct {
	Checker   watchdog.Checker
	HookGated bool
} {
	out := []struct {
		Checker   watchdog.Checker
		HookGated bool
	}{
		{s.partitionChecker(), false},
		{s.flusherChecker(shadow), true},
		{s.compactionChecker(shadow), false},
		{s.walChecker(shadow), true},
		{s.indexerChecker(), true},
	}
	if s.repl != nil {
		out = append(out, struct {
			Checker   watchdog.Checker
			HookGated bool
		}{s.replChecker(), true})
	}
	return out
}

// InstallSignalCheckers registers the lightweight signal-checker suite
// (Table 2's middle row) alongside the mimic suite: resource indicators and
// progress/queue heuristics over the store's metric registry. These are
// cheap and easy to construct but trade accuracy for it — see experiment
// E2.
func (s *Store) InstallSignalCheckers(d *watchdog.Driver, heapLimit uint64, goroutineLimit int) {
	ready := func() *watchdog.Context {
		c := watchdog.NewContext()
		c.MarkReady()
		return c
	}
	if heapLimit > 0 {
		d.Register(checkers.HeapLimit("kvs.signal.heap", heapLimit),
			watchdog.WithContext(ready()))
	}
	if goroutineLimit > 0 {
		d.Register(checkers.GoroutineLimit("kvs.signal.goroutines", goroutineLimit),
			watchdog.WithContext(ready()))
	}
	d.Register(checkers.CounterRising("kvs.signal.errors", "error-rate",
		s.mets.Counter("kvs.errors")), watchdog.WithContext(ready()))
	d.Register(checkers.GaugeAbove("kvs.signal.repl-queue", "repl-queue",
		s.mets.Gauge("kvs.repl.queue"), 896), watchdog.WithContext(ready()))
	d.Register(checkers.SchedulerDelay("kvs.signal.sched", 5*time.Millisecond,
		250*time.Millisecond, nil, nil), watchdog.WithContext(ready()))
}

// ShadowDirFor returns a conventional shadow directory path for a store
// rooted at dir.
func ShadowDirFor(dir string) string { return filepath.Join(dir, "wd-shadow") }
