package kvs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGroupCommitCoalesces drives concurrent writers into one partition and
// checks the committer batches them: far fewer fsyncs than mutations, and
// every mutation readable afterwards.
func TestGroupCommitCoalesces(t *testing.T) {
	s := openStore(t, func(c *Config) { c.Partitions = 1 })
	var syncs atomic.Int64
	s.parts[0].log.SetSyncHook(func() error { syncs.Add(1); return nil })

	const writers, perWriter = 16, 32
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := s.Set([]byte(key), []byte("v")); err != nil {
					t.Errorf("Set %s: %v", key, err)
				}
			}
		}(w)
	}
	wg.Wait()

	total := int64(writers * perWriter)
	if n := syncs.Load(); n >= total {
		t.Fatalf("no coalescing: %d syncs for %d sets", n, total)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			key := fmt.Sprintf("w%d-%d", w, i)
			if _, ok, err := s.Get([]byte(key)); err != nil || !ok {
				t.Fatalf("Get %s after commit: ok=%v err=%v", key, ok, err)
			}
		}
	}
}

// TestGroupCommitSyncFailureNotPublished injects an fsync failure and checks
// the batch's records never reach the memtable: the caller sees the error,
// the key stays invisible, and the partition keeps accepting writes once the
// disk "recovers".
func TestGroupCommitSyncFailureNotPublished(t *testing.T) {
	s := openStore(t, func(c *Config) { c.Partitions = 1 })
	p := s.parts[0]
	if err := s.Set([]byte("pre"), []byte("1")); err != nil {
		t.Fatal(err)
	}

	fail := errors.New("injected sync failure")
	p.log.SetSyncHook(func() error { return fail })
	if err := s.Set([]byte("lost"), []byte("x")); !errors.Is(err, fail) {
		t.Fatalf("Set under failing sync: %v", err)
	}
	if _, ok, _ := s.Get([]byte("lost")); ok {
		t.Fatal("unsynced record visible in memtable")
	}

	// Disk recovers: the partition must not be wedged by the failed batch.
	p.log.SetSyncHook(nil)
	if err := s.Set([]byte("after"), []byte("2")); err != nil {
		t.Fatalf("Set after recovery: %v", err)
	}
	for _, key := range []string{"pre", "after"} {
		if _, ok, err := s.Get([]byte(key)); err != nil || !ok {
			t.Fatalf("Get %s: ok=%v err=%v", key, ok, err)
		}
	}
}

// TestGroupCommitConcurrentFailureAllSurface checks that when a sync fails,
// every writer parked on that batch gets the error — none are silently
// acknowledged.
func TestGroupCommitConcurrentFailureAllSurface(t *testing.T) {
	s := openStore(t, func(c *Config) { c.Partitions = 1 })
	fail := errors.New("boom")
	s.parts[0].log.SetSyncHook(func() error { return fail })

	const writers = 8
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			errs <- s.Set([]byte(fmt.Sprintf("k%d", w)), []byte("v"))
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; !errors.Is(err, fail) {
			t.Fatalf("writer got %v, want injected failure", err)
		}
	}
	for w := 0; w < writers; w++ {
		if _, ok, _ := s.Get([]byte(fmt.Sprintf("k%d", w))); ok {
			t.Fatalf("k%d visible after failed batch", w)
		}
	}
}

// TestReplayRecoversSyncedPrefix crashes the store (no clean close), appends
// garbage to the WAL to model a torn tail, and checks recovery replays
// exactly the synced prefix: every acknowledged write, nothing fabricated.
func TestReplayRecoversSyncedPrefix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Partitions: 1, FlushThresholdBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Set([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	walPath := s.parts[0].log.Path()
	// Simulate the crash: drop the handle without flushing anything more.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Torn tail: a partial frame the crash left behind.
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Open(Config{Dir: dir, Partitions: 1, FlushThresholdBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%02d", i)
		v, ok, err := re.Get([]byte(key))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get %s after recovery = %q %v %v", key, v, ok, err)
		}
	}
	got, err := re.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("recovered %d keys, want %d", len(got), n)
	}
}

// TestRepairPartitionAfterSyncFailure checks the cheap-recovery path leaves
// healthy state alone after a failed group commit: nothing quarantined, the
// unsynced tail truncated, and writes resume cleanly.
func TestRepairPartitionAfterSyncFailure(t *testing.T) {
	s := openStore(t, func(c *Config) { c.Partitions = 1 })
	p := s.parts[0]
	if err := s.Set([]byte("good"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	fail := errors.New("dead disk")
	p.log.SetSyncHook(func() error { return fail })
	if err := s.Set([]byte("bad"), []byte("v")); !errors.Is(err, fail) {
		t.Fatalf("Set: %v", err)
	}
	p.log.SetSyncHook(nil)

	quarantined, err := s.RepairPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if quarantined != 0 {
		t.Fatalf("repair quarantined %d healthy tables", quarantined)
	}
	if _, ok, err := s.Get([]byte("good")); err != nil || !ok {
		t.Fatalf("good key lost by repair: ok=%v err=%v", ok, err)
	}
	if err := s.Set([]byte("resume"), []byte("v")); err != nil {
		t.Fatalf("Set after repair: %v", err)
	}
	if _, ok, _ := s.Get([]byte("resume")); !ok {
		t.Fatal("write after repair not visible")
	}
}

// TestFlushResetsCommitWatermarks checks a flush (WAL reset to empty) does
// not strand the group committer's offsets: post-flush writes commit and
// survive reopen.
func TestFlushResetsCommitWatermarks(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Partitions: 1, FlushThresholdBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushPartition(0, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Set([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Config{Dir: dir, Partitions: 1, FlushThresholdBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for key, want := range map[string]string{"a": "1", "b": "2"} {
		v, ok, err := re.Get([]byte(key))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("Get %s = %q %v %v, want %q", key, v, ok, err, want)
		}
	}
	if fis, err := filepath.Glob(filepath.Join(dir, "p*", "*.sst")); err != nil || len(fis) == 0 {
		t.Fatalf("flush produced no sstable: %v %v", fis, err)
	}
}
