package kvs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/gauge"
	"gowatchdog/internal/watchdog"
)

const replAck = 0x06

// replicator streams mutation records from the primary to a replica over
// TCP: 4-byte length-prefixed frames, one ACK byte per frame.
type replicator struct {
	addr    string
	clk     clock.Clock
	inj     *faultinject.Injector
	mets    *gauge.Registry
	factory *watchdog.Factory

	queue   chan []byte
	started bool
	stop    chan struct{}
	done    chan struct{}
}

func newReplicator(addr string, clk clock.Clock, inj *faultinject.Injector,
	mets *gauge.Registry, factory *watchdog.Factory) *replicator {
	return &replicator{
		addr:    addr,
		clk:     clk,
		inj:     inj,
		mets:    mets,
		factory: factory,
		queue:   make(chan []byte, 1024),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

func (r *replicator) start() {
	if r.started {
		return
	}
	r.started = true
	go r.run()
}

func (r *replicator) close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	if r.started {
		select {
		case <-r.done:
		case <-time.After(2 * time.Second):
		}
	}
}

// enqueue hands a record to the sender without blocking the write path; a
// full queue drops the record and counts it (visible to signal checkers).
func (r *replicator) enqueue(rec []byte) {
	select {
	case r.queue <- rec:
		r.mets.Gauge("kvs.repl.queue").Set(float64(len(r.queue)))
	default:
		r.mets.Counter("kvs.repl.dropped").Inc()
	}
}

func (r *replicator) run() {
	defer close(r.done)
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		select {
		case <-r.stop:
			return
		case rec := <-r.queue:
			r.mets.Gauge("kvs.repl.queue").Set(float64(len(r.queue)))
			if r.factory != nil {
				r.factory.Context("kvs.repl").PutAll(map[string]any{
					"addr":   r.addr,
					"record": rec,
				})
			}
			if conn == nil {
				c, err := net.DialTimeout("tcp", r.addr, 2*time.Second)
				if err != nil {
					r.mets.Counter("kvs.repl.errors").Inc()
					continue
				}
				conn = c
			}
			if err := r.sendOne(conn, rec); err != nil {
				r.mets.Counter("kvs.repl.errors").Inc()
				conn.Close()
				conn = nil
				continue
			}
			r.mets.Counter("kvs.repl.acks").Inc()
		}
	}
}

// sendOne ships one frame and waits for its ACK. The fault point models the
// network path to the replica.
func (r *replicator) sendOne(conn net.Conn, rec []byte) error {
	if err := r.inj.Fire(FaultReplSend); err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(rec)))
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := conn.Write(rec); err != nil {
		return err
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return err
	}
	if ack[0] != replAck {
		return fmt.Errorf("kvs: bad replication ack %#x", ack[0])
	}
	return nil
}

// ReplicaServer applies a primary's replication stream to a local store.
type ReplicaServer struct {
	ln    net.Listener
	store *Store
	wg    sync.WaitGroup
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	stop  bool
}

// ServeReplica listens on addr (e.g. "127.0.0.1:0") and applies incoming
// records to store.
func ServeReplica(addr string, store *Store) (*ReplicaServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	rs := &ReplicaServer{ln: ln, store: store, conns: make(map[net.Conn]struct{})}
	rs.wg.Add(1)
	go rs.acceptLoop()
	return rs, nil
}

// Addr returns the bound listen address.
func (rs *ReplicaServer) Addr() string { return rs.ln.Addr().String() }

// Close stops accepting and closes live connections.
func (rs *ReplicaServer) Close() error {
	rs.mu.Lock()
	rs.stop = true
	for c := range rs.conns {
		c.Close()
	}
	rs.mu.Unlock()
	err := rs.ln.Close()
	rs.wg.Wait()
	return err
}

func (rs *ReplicaServer) acceptLoop() {
	defer rs.wg.Done()
	for {
		conn, err := rs.ln.Accept()
		if err != nil {
			return
		}
		rs.mu.Lock()
		if rs.stop {
			rs.mu.Unlock()
			conn.Close()
			return
		}
		rs.conns[conn] = struct{}{}
		rs.mu.Unlock()
		rs.wg.Add(1)
		go rs.handle(conn)
	}
}

func (rs *ReplicaServer) handle(conn net.Conn) {
	defer rs.wg.Done()
	defer func() {
		rs.mu.Lock()
		delete(rs.conns, conn)
		rs.mu.Unlock()
		conn.Close()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > 1<<26 {
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		if err := rs.store.ApplyReplicated(payload); err != nil {
			if !errors.Is(err, errBadRecord) {
				return
			}
			// Malformed records are dropped; the stream continues.
		}
		if _, err := conn.Write([]byte{replAck}); err != nil {
			return
		}
	}
}
