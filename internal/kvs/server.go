package kvs

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strconv"
	"sync"

	"gowatchdog/internal/gauge"
)

// Wire-protocol limits and hot-path tuning.
const (
	// maxLineLen bounds one request line; longer lines are answered with
	// "ERR line too long" and discarded, keeping the connection usable.
	maxLineLen = 1 << 20
	// readBufSize is the per-connection read buffer; lines that fit are
	// parsed in place with zero copies.
	readBufSize = 64 << 10
	// respQueueDepth bounds the per-connection response queue joining the
	// reader and writer goroutines. A full queue backpressures the reader.
	respQueueDepth = 512
)

// respPool recycles response buffers between the reader (which fills them)
// and the writer (which releases them after the flush).
var respPool = sync.Pool{New: func() any { return make([]byte, 0, 256) }}

// Server exposes a Store over a line-based TCP protocol:
//
//	SET <key> <value>      -> OK | ERR <msg>
//	GET <key>              -> VALUE <value> | NOT_FOUND | ERR <msg>
//	DEL <key>              -> OK | ERR <msg>
//	APPEND <key> <value>   -> OK | ERR <msg>
//	SCAN <start> <end> <n> -> COUNT <k> followed by k "<key> <value>" lines
//	                          ("-" means unbounded start/end, n=0 unlimited)
//	PING                   -> PONG
//	STATS                  -> COUNT <k> followed by k "<name> <value>" lines
//
// Keys must not contain spaces; values run to end of line.
//
// The protocol is pipelined: each connection runs a reader goroutine that
// parses and executes requests and a writer goroutine that drains a bounded
// response queue, batching one Flush per readable burst — many requests can
// be in flight on one connection (see Client.Pipeline).
type Server struct {
	ln    net.Listener
	store *Store
	wg    sync.WaitGroup
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	stop  bool

	// Cached hot-path metrics: registry lookups are off the request path.
	requestsC *gauge.Counter
	connsG    *gauge.Gauge
}

// Serve listens on addr and dispatches requests against store.
func Serve(addr string, store *Store) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:        ln,
		store:     store,
		conns:     make(map[net.Conn]struct{}),
		requestsC: store.mets.Counter("kvs.requests"),
		connsG:    store.mets.Gauge("kvs.conns"),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and closes live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.stop = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.stop {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connsG.Set(float64(len(s.conns)))
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle is the per-connection reader: it parses request lines in place,
// executes them, and enqueues response buffers for the writer goroutine.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.connsG.Set(float64(len(s.conns)))
		s.mu.Unlock()
		conn.Close()
	}()

	out := make(chan []byte, respQueueDepth)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go s.writeLoop(conn, out, &writerWG)
	defer writerWG.Wait()
	defer close(out)

	r := bufio.NewReaderSize(conn, readBufSize)
	var long []byte // scratch for lines longer than the read buffer
	for {
		line, err := readLine(r, &long)
		switch err {
		case nil:
		case errLineTooLong:
			// Answer instead of silently dropping the connection; readLine
			// already advanced past the oversized line, so the next read
			// starts at a request boundary.
			out <- append(respPool.Get().([]byte)[:0], "ERR line too long\n"...)
			continue
		default:
			return // EOF or broken connection
		}
		buf := respPool.Get().([]byte)[:0]
		out <- s.exec(line, buf)
	}
}

// writeLoop drains the response queue into the connection, flushing once
// per burst: responses are written back-to-back while more are queued and
// the buffered writer is flushed only when the queue momentarily empties.
func (s *Server) writeLoop(conn net.Conn, out <-chan []byte, wg *sync.WaitGroup) {
	defer wg.Done()
	w := bufio.NewWriterSize(conn, readBufSize)
	broken := false
	for buf := range out {
		if !broken {
			if _, err := w.Write(buf); err != nil {
				broken = true
				conn.Close() // unblock the reader; keep draining the queue
			} else if len(out) == 0 {
				if err := w.Flush(); err != nil {
					broken = true
					conn.Close()
				}
			}
		}
		respPool.Put(buf[:0])
	}
	if !broken {
		w.Flush()
	}
}

// errLineTooLong reports a request line exceeding maxLineLen.
var errLineTooLong = fmt.Errorf("kvs: line longer than %d bytes", maxLineLen)

// readLine returns the next newline-terminated line without its terminator.
// Lines that fit the reader's buffer are returned as a view into it (valid
// until the next read); longer ones are accumulated into *long up to
// maxLineLen. An overlong line yields errLineTooLong with the stream
// already advanced past its newline, so the caller resumes at the next
// request boundary without discarding anything further.
func readLine(r *bufio.Reader, long *[]byte) ([]byte, error) {
	slice, err := r.ReadSlice('\n')
	if err == nil {
		return chompLine(slice), nil
	}
	if err != bufio.ErrBufferFull {
		return nil, err
	}
	acc := (*long)[:0]
	for {
		acc = append(acc, slice...)
		if len(acc) > maxLineLen {
			*long = acc[:0]
			return nil, drainLine(r)
		}
		slice, err = r.ReadSlice('\n')
		if err == nil {
			acc = append(acc, slice...)
			// The final chunk can push a line past the cap even though
			// every intermediate check passed.
			if len(chompLine(acc)) > maxLineLen {
				*long = acc[:0]
				return nil, errLineTooLong
			}
			*long = acc
			return chompLine(acc), nil
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
	}
}

// drainLine consumes input through the end of the current (oversized) line
// and reports errLineTooLong, or the transport error that cut it short.
func drainLine(r *bufio.Reader) error {
	for {
		_, err := r.ReadSlice('\n')
		switch err {
		case nil:
			return errLineTooLong
		case bufio.ErrBufferFull:
			continue
		default:
			return err
		}
	}
}

// chompLine strips the trailing \n and an optional \r.
func chompLine(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}


// cutSpace splits b at the first space.
func cutSpace(b []byte) (before, after []byte, found bool) {
	if i := bytes.IndexByte(b, ' '); i >= 0 {
		return b[:i], b[i+1:], true
	}
	return b, nil, false
}

// cmdIs reports whether tok equals the ASCII-uppercase command name want,
// case-insensitively and without allocating.
func cmdIs(tok []byte, want string) bool {
	if len(tok) != len(want) {
		return false
	}
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != want[i] {
			return false
		}
	}
	return true
}

// exec executes one request line and appends the full response (newline-
// terminated, possibly multi-line) to dst. line may point into the read
// buffer; exec never retains it past the call (the store copies what it
// keeps).
func (s *Server) exec(line []byte, dst []byte) []byte {
	s.requestsC.Inc()
	// Listener capture rides the shared sampled-hook path, so watchdog
	// context sync costs nothing on the per-request path.
	//wdlint:ignore contextsync listener health is covered by the kvs.signal.* checkers; this capture exists for failure-report payloads
	s.store.sampledHook("kvs.listener", &s.store.listenerHookSeq, func() map[string]any {
		return map[string]any{"last_command": string(line)}
	})
	if err := s.store.inj.Fire(FaultListenerHandle); err != nil {
		return appendErr(dst, err.Error())
	}
	cmd, rest, _ := cutSpace(line)
	switch {
	case cmdIs(cmd, "GET"):
		if len(rest) == 0 {
			return append(dst, "ERR usage: GET <key>\n"...)
		}
		v, ok, err := s.store.Get(rest)
		if err != nil {
			return appendErr(dst, err.Error())
		}
		if !ok {
			return append(dst, "NOT_FOUND\n"...)
		}
		dst = append(dst, "VALUE "...)
		dst = append(dst, v...)
		return append(dst, '\n')
	case cmdIs(cmd, "SET"):
		key, val, ok := cutSpace(rest)
		if !ok || len(key) == 0 {
			return append(dst, "ERR usage: SET <key> <value>\n"...)
		}
		if err := s.store.Set(key, val); err != nil {
			return appendErr(dst, err.Error())
		}
		return append(dst, "OK\n"...)
	case cmdIs(cmd, "DEL"):
		if len(rest) == 0 {
			return append(dst, "ERR usage: DEL <key>\n"...)
		}
		if err := s.store.Del(rest); err != nil {
			return appendErr(dst, err.Error())
		}
		return append(dst, "OK\n"...)
	case cmdIs(cmd, "APPEND"):
		key, val, ok := cutSpace(rest)
		if !ok || len(key) == 0 {
			return append(dst, "ERR usage: APPEND <key> <value>\n"...)
		}
		if err := s.store.Append(key, val); err != nil {
			return appendErr(dst, err.Error())
		}
		return append(dst, "OK\n"...)
	case cmdIs(cmd, "PING"):
		return append(dst, "PONG\n"...)
	case cmdIs(cmd, "SCAN"):
		return s.execScan(rest, dst)
	case cmdIs(cmd, "STATS"):
		return s.execStats(dst)
	default:
		return append(dst, "ERR unknown command\n"...)
	}
}

func appendErr(dst []byte, msg string) []byte {
	dst = append(dst, "ERR "...)
	dst = append(dst, msg...)
	return append(dst, '\n')
}

func (s *Server) execScan(rest, dst []byte) []byte {
	f0, tail, ok1 := cutSpace(rest)
	f1, f2, ok2 := cutSpace(tail)
	if !ok1 || !ok2 || len(f2) == 0 || bytes.IndexByte(f2, ' ') >= 0 {
		return append(dst, "ERR usage: SCAN <start|-> <end|-> <limit>\n"...)
	}
	var start, end []byte
	if !bytes.Equal(f0, []byte("-")) {
		start = f0
	}
	if !bytes.Equal(f1, []byte("-")) {
		end = f1
	}
	limit, err := strconv.Atoi(string(f2))
	if err != nil || limit < 0 {
		return append(dst, "ERR bad limit\n"...)
	}
	entries, err := s.store.Scan(start, end, limit)
	if err != nil {
		return appendErr(dst, err.Error())
	}
	dst = append(dst, "COUNT "...)
	dst = strconv.AppendInt(dst, int64(len(entries)), 10)
	dst = append(dst, '\n')
	for _, e := range entries {
		dst = append(dst, e.Key...)
		dst = append(dst, ' ')
		dst = append(dst, e.Value...)
		dst = append(dst, '\n')
	}
	return dst
}

func (s *Server) execStats(dst []byte) []byte {
	snap := s.store.mets.Snapshot()
	names := s.store.mets.Names()
	dst = append(dst, "COUNT "...)
	dst = strconv.AppendInt(dst, int64(len(names)), 10)
	dst = append(dst, '\n')
	for _, n := range names {
		dst = append(dst, n...)
		dst = append(dst, ' ')
		dst = strconv.AppendFloat(dst, snap[n], 'g', -1, 64)
		dst = append(dst, '\n')
	}
	return dst
}
