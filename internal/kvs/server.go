package kvs

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Server exposes a Store over a line-based TCP protocol:
//
//	SET <key> <value>      -> OK | ERR <msg>
//	GET <key>              -> VALUE <value> | NOT_FOUND | ERR <msg>
//	DEL <key>              -> OK | ERR <msg>
//	APPEND <key> <value>   -> OK | ERR <msg>
//	SCAN <start> <end> <n> -> COUNT <k> followed by k "<key> <value>" lines
//	                          ("-" means unbounded start/end, n=0 unlimited)
//	PING                   -> PONG
//	STATS                  -> COUNT <k> followed by k "<name> <value>" lines
//
// Keys must not contain spaces; values run to end of line.
type Server struct {
	ln    net.Listener
	store *Store
	wg    sync.WaitGroup
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	stop  bool
}

// Serve listens on addr and dispatches requests against store.
func Serve(addr string, store *Store) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, store: store, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and closes live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.stop = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.stop {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.store.mets.Gauge("kvs.conns").Set(float64(len(s.conns)))
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.store.mets.Gauge("kvs.conns").Set(float64(len(s.conns)))
		s.mu.Unlock()
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := sc.Text()
		resp := s.dispatch(line)
		if _, err := w.WriteString(resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch executes one request line and returns the full response
// (newline-terminated, possibly multi-line).
func (s *Server) dispatch(line string) string {
	s.store.mets.Counter("kvs.requests").Inc()
	//wdlint:ignore contextsync listener health is covered by the kvs.signal.* checkers; this capture exists for failure-report payloads
	s.store.hook("kvs.listener", map[string]any{"last_command": line})
	if err := s.store.inj.Fire(FaultListenerHandle); err != nil {
		return "ERR " + err.Error() + "\n"
	}
	cmd, rest, _ := strings.Cut(line, " ")
	switch strings.ToUpper(cmd) {
	case "PING":
		return "PONG\n"
	case "SET":
		key, val, ok := strings.Cut(rest, " ")
		if !ok || key == "" {
			return "ERR usage: SET <key> <value>\n"
		}
		if err := s.store.Set([]byte(key), []byte(val)); err != nil {
			return "ERR " + err.Error() + "\n"
		}
		return "OK\n"
	case "APPEND":
		key, val, ok := strings.Cut(rest, " ")
		if !ok || key == "" {
			return "ERR usage: APPEND <key> <value>\n"
		}
		if err := s.store.Append([]byte(key), []byte(val)); err != nil {
			return "ERR " + err.Error() + "\n"
		}
		return "OK\n"
	case "GET":
		if rest == "" {
			return "ERR usage: GET <key>\n"
		}
		v, ok, err := s.store.Get([]byte(rest))
		if err != nil {
			return "ERR " + err.Error() + "\n"
		}
		if !ok {
			return "NOT_FOUND\n"
		}
		return "VALUE " + string(v) + "\n"
	case "DEL":
		if rest == "" {
			return "ERR usage: DEL <key>\n"
		}
		if err := s.store.Del([]byte(rest)); err != nil {
			return "ERR " + err.Error() + "\n"
		}
		return "OK\n"
	case "SCAN":
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			return "ERR usage: SCAN <start|-> <end|-> <limit>\n"
		}
		var start, end []byte
		if fields[0] != "-" {
			start = []byte(fields[0])
		}
		if fields[1] != "-" {
			end = []byte(fields[1])
		}
		limit, err := strconv.Atoi(fields[2])
		if err != nil || limit < 0 {
			return "ERR bad limit\n"
		}
		entries, err := s.store.Scan(start, end, limit)
		if err != nil {
			return "ERR " + err.Error() + "\n"
		}
		var b strings.Builder
		fmt.Fprintf(&b, "COUNT %d\n", len(entries))
		for _, e := range entries {
			fmt.Fprintf(&b, "%s %s\n", e.Key, e.Value)
		}
		return b.String()
	case "STATS":
		snap := s.store.mets.Snapshot()
		names := s.store.mets.Names()
		var b strings.Builder
		fmt.Fprintf(&b, "COUNT %d\n", len(names))
		for _, n := range names {
			fmt.Fprintf(&b, "%s %g\n", n, snap[n])
		}
		return b.String()
	default:
		return "ERR unknown command\n"
	}
}
