package kvs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

// TestStressConcurrentEverything exercises writers, readers, scanners, the
// flusher, the compaction manager, and the full watchdog suite all at once.
// Run with -race to validate the locking story end to end.
func TestStressConcurrentEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	dir := t.TempDir()
	factory := watchdog.NewFactory()
	store, err := Open(Config{
		Dir:                 dir,
		FlushThresholdBytes: 32 << 10, // small threshold: frequent real flushes
		CompactionMinTables: 3,
		WatchdogFactory:     factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	shadow, err := wdio.NewFS(ShadowDirFor(dir), 0)
	if err != nil {
		t.Fatal(err)
	}
	driver := watchdog.New(
		watchdog.WithFactory(factory),
		watchdog.WithInterval(5*time.Millisecond),
		watchdog.WithTimeout(2*time.Second),
	)
	store.InstallWatchdog(driver, shadow)
	store.InstallSignalCheckers(driver, 1<<40, 1<<20) // generous limits: no false alarms
	var abnormal atomic.Int64
	driver.OnReport(func(rep watchdog.Report) {
		if rep.Status.Abnormal() {
			abnormal.Add(1)
			t.Logf("abnormal: %s", rep)
		}
	})
	driver.Start()
	defer driver.Stop()

	const (
		writers  = 4
		readers  = 4
		perActor = 300
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers+2)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perActor; i++ {
				key := []byte(fmt.Sprintf("stress/w%d/%04d", w, i))
				if err := store.Set(key, []byte(fmt.Sprintf("value-%d-%d", w, i))); err != nil {
					errCh <- err
					return
				}
				if i%10 == 9 {
					if err := store.Del([]byte(fmt.Sprintf("stress/w%d/%04d", w, i-5))); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perActor; i++ {
				key := []byte(fmt.Sprintf("stress/w%d/%04d", r%writers, i%perActor))
				if _, _, err := store.Get(key); err != nil {
					errCh <- err
					return
				}
				if i%50 == 0 {
					if _, err := store.Scan([]byte("stress/"), []byte("stress/~"), 20); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(r)
	}
	// Background maintenance racing the workload.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			store.FlushAll(false)
			store.CompactAll()
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Force final flush + compaction, then verify integrity and a sample of
	// the surviving data.
	store.FlushAll(true)
	store.CompactAll()
	for i := 0; i < store.Partitions(); i++ {
		if err := store.VerifyPartition(i); err != nil {
			t.Fatalf("partition %d corrupt after stress: %v", i, err)
		}
	}
	for w := 0; w < writers; w++ {
		key := []byte(fmt.Sprintf("stress/w%d/%04d", w, perActor-1))
		v, ok, err := store.Get(key)
		if err != nil || !ok {
			t.Fatalf("lost %s: ok=%v err=%v", key, ok, err)
		}
		want := fmt.Sprintf("value-%d-%d", w, perActor-1)
		if string(v) != want {
			t.Fatalf("%s = %q, want %q", key, v, want)
		}
	}
	if n := abnormal.Load(); n != 0 {
		t.Fatalf("watchdog raised %d abnormal reports on a healthy stressed store", n)
	}
	if st, _ := driver.CheckerStats("kvs.flusher"); st.Runs == 0 {
		t.Fatal("scheduled watchdog never ran during stress")
	}
}

func TestInstallSignalCheckersRegistersSuite(t *testing.T) {
	s := openStore(t, nil)
	d := watchdog.New()
	s.InstallSignalCheckers(d, 1<<40, 1<<20)
	names := d.Checkers()
	if len(names) != 5 {
		t.Fatalf("checkers = %v", names)
	}
	for _, rep := range d.CheckAll() {
		if rep.Status.Abnormal() {
			t.Fatalf("signal checker %s abnormal on idle store: %v", rep.Checker, rep)
		}
	}
}

func TestInstallSignalCheckersOptionalLimits(t *testing.T) {
	s := openStore(t, nil)
	d := watchdog.New()
	s.InstallSignalCheckers(d, 0, 0) // heap/goroutine checkers disabled
	if len(d.Checkers()) != 3 {
		t.Fatalf("checkers = %v", d.Checkers())
	}
}
