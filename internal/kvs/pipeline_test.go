package kvs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestPipelineBatchRoundTrip(t *testing.T) {
	srv, _ := startServer(t, nil)
	c := dialClient(t, srv.Addr())
	p := c.Pipeline(32)

	if err := p.Set("a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("b", "2"); err != nil {
		t.Fatal(err)
	}
	if err := p.Get("a"); err != nil {
		t.Fatal(err)
	}
	if err := p.Get("missing"); err != nil {
		t.Fatal(err)
	}
	if err := p.Del("b"); err != nil {
		t.Fatal(err)
	}
	if err := p.Scan("", "", 10); err != nil {
		t.Fatal(err)
	}
	if err := p.Ping(); err != nil {
		t.Fatal(err)
	}
	results, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("got %d results, want 7", len(results))
	}
	for i := range []int{0, 1} {
		if results[i].Err != nil {
			t.Fatalf("SET %d: %v", i, results[i].Err)
		}
	}
	if results[2].Value != "1" || results[2].Err != nil {
		t.Fatalf("GET a = %+v", results[2])
	}
	if !errors.Is(results[3].Err, ErrNotFound) {
		t.Fatalf("GET missing: %v", results[3].Err)
	}
	if results[4].Err != nil {
		t.Fatalf("DEL: %v", results[4].Err)
	}
	// After the in-order DEL, the scan sees only "a".
	if len(results[5].Lines) != 1 || !strings.HasPrefix(results[5].Lines[0], "a") {
		t.Fatalf("SCAN lines = %q", results[5].Lines)
	}
	if results[6].Err != nil {
		t.Fatalf("PING: %v", results[6].Err)
	}
}

// TestPipelineOrderingUnderDepth checks responses come back in request order
// across many windows: each GET must observe the SET queued just before it
// on the same connection (read-your-writes through the pipeline).
func TestPipelineOrderingUnderDepth(t *testing.T) {
	srv, _ := startServer(t, nil)
	c := dialClient(t, srv.Addr())
	p := c.Pipeline(16)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("k%d", i%7)
		want := fmt.Sprintf("v%d", i)
		if err := p.Set(key, want); err != nil {
			t.Fatal(err)
		}
		if err := p.Get(key); err != nil {
			t.Fatal(err)
		}
		if p.Outstanding() >= 14 {
			results, err := p.Exec()
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j+1 < len(results); j += 2 {
				if results[j].Err != nil {
					t.Fatalf("set: %v", results[j].Err)
				}
			}
		}
	}
	if _, err := p.Exec(); err != nil {
		t.Fatal(err)
	}
	// Final values reflect the last write per key.
	for i := 293; i < 300; i++ {
		key := fmt.Sprintf("k%d", i%7)
		v, err := c.Get(key)
		if err != nil || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get %s = %q %v", key, v, err)
		}
	}
}

// TestPipelineSplitSenderReceiver exercises the concurrent mode under the
// race detector: one goroutine queues and flushes, the main goroutine
// receives, with the window channel as the only synchronization.
func TestPipelineSplitSenderReceiver(t *testing.T) {
	srv, _ := startServer(t, nil)
	c := dialClient(t, srv.Addr())
	const depth, total = 32, 2000
	p := c.Pipeline(depth)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			var err error
			if i%3 == 0 {
				err = p.Set(fmt.Sprintf("k%d", i%50), "v")
			} else {
				err = p.Get(fmt.Sprintf("k%d", i%50))
			}
			if err != nil {
				t.Errorf("queue %d: %v", i, err)
				return
			}
		}
		if err := p.Flush(); err != nil {
			t.Errorf("flush: %v", err)
		}
	}()

	for i := 0; i < total; i++ {
		res, err := p.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if res.Err != nil && !errors.Is(res.Err, ErrNotFound) {
			t.Fatalf("recv %d: server error %v", i, res.Err)
		}
	}
	wg.Wait()
	if p.Outstanding() != 0 {
		t.Fatalf("%d requests still outstanding", p.Outstanding())
	}
}

// TestServerRejectsOverlongLine checks the protocol guardrail: a line past
// the 1 MiB cap draws "ERR line too long" and the connection resynchronizes
// at the next newline instead of dying or misparsing.
func TestServerRejectsOverlongLine(t *testing.T) {
	srv, _ := startServer(t, nil)
	c := dialClient(t, srv.Addr())
	// Both the boundary case (cap exceeded only by the final buffer chunk)
	// and the deep case (many chunks past the cap) must be rejected.
	for _, size := range []int{1<<20 + 16, 3 << 20} {
		huge := strings.Repeat("x", size)
		resp, err := c.roundTrip("SET big " + huge)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(resp, "too long") {
			t.Fatalf("overlong line (%d bytes) -> %q, want line-too-long error", size, resp)
		}
	}
	// The connection must still be usable for well-formed requests.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after overlong line: %v", err)
	}
	if err := c.Set("ok", "v"); err != nil {
		t.Fatalf("set after overlong line: %v", err)
	}
	if v, err := c.Get("ok"); err != nil || v != "v" {
		t.Fatalf("get after overlong line = %q %v", v, err)
	}
	if _, ok, _ := srv.store.Get([]byte("big")); ok {
		t.Fatal("overlong SET was applied")
	}
}
