package kvs

import "testing"

// TestStoreStructuralInvariants pins properties of a healthy store that hold
// regardless of what the workload has written: the partition set is
// non-empty, the metrics registry is wired, and an idle partition passes
// checksum verification. The assertions are deliberately phrased as
// workload-independent guards so that awgen -from-tests can mine them into
// runtime checkers (DESIGN.md §8).
func TestStoreStructuralInvariants(t *testing.T) {
	s := openStore(t, nil)

	if s.Partitions() <= 0 {
		t.Fatalf("Partitions() = %d, want > 0", s.Partitions())
	}
	if s.Metrics() == nil {
		t.Fatal("Metrics() = nil, want a wired registry")
	}
	if err := s.VerifyPartition(0); err != nil {
		t.Fatalf("VerifyPartition(0) on an idle store: %v", err)
	}
}
