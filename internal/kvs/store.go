package kvs

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/gauge"
	"gowatchdog/internal/memtable"
	"gowatchdog/internal/watchdog"
)

// Fault point names instrumented throughout the store. Experiments arm
// faults here to manufacture gray failures.
const (
	FaultIndexerPut     = "kvs.indexer.put"
	FaultIndexerGet     = "kvs.indexer.get"
	FaultWALAppend      = "kvs.wal.append"
	FaultFlushWrite     = "kvs.flusher.write"
	FaultCompactMerge   = "kvs.compaction.merge"
	FaultReplSend       = "kvs.repl.send"
	FaultListenerHandle = "kvs.listener.handle"
	FaultSSTableRead    = "kvs.sstable.read"
)

// SyncPolicy selects WAL durability on the write path.
type SyncPolicy int

const (
	// SyncGroup (the default) parks each mutation on its partition's group
	// committer: concurrent appends coalesce into a single fsync and the
	// memtable publish happens only after the covering sync completes, so
	// acknowledged writes are durable and reads never see state a crash
	// could lose.
	SyncGroup SyncPolicy = iota
	// SyncNone acknowledges after the buffered WAL append without waiting
	// for a sync — the pre-group-commit behavior. Durability only at flush
	// boundaries; fastest, for tests and expendable data.
	SyncNone
)

// Config configures a Store.
type Config struct {
	// Dir is the data directory; ignored when InMemory is set.
	Dir string
	// InMemory disables the WAL and SSTables entirely (the configuration
	// from §3.1 where a disk-flusher report would be spurious).
	InMemory bool
	// Sync selects the write-path durability policy (default SyncGroup).
	Sync SyncPolicy
	// GroupCommitBudget is how long a group-commit leader waits for
	// concurrent writers to pile onto its batch before issuing the fsync.
	// 0 (the default) syncs immediately, coalescing only writers that are
	// already parked — no added latency, natural batching under load.
	GroupCommitBudget time.Duration
	// Partitions is the number of key-range partitions (default 4).
	Partitions int
	// FlushThresholdBytes triggers a memtable flush (default 1 MiB).
	FlushThresholdBytes int64
	// FlushInterval is the flusher's scan cadence (default 500ms).
	FlushInterval time.Duration
	// CompactionInterval is the compaction manager's cadence (default 2s).
	CompactionInterval time.Duration
	// CompactionMinTables is how many SSTables a partition accumulates
	// before compaction merges them (default 4).
	CompactionMinTables int
	// ReplicaAddr, when set, streams mutations to a replica server.
	ReplicaAddr string
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Injector is the fault-point registry; nil disables injection.
	Injector *faultinject.Injector
	// Metrics defaults to a private registry.
	Metrics *gauge.Registry
	// WatchdogFactory, when set, receives hook updates for the generated
	// checkers' contexts.
	WatchdogFactory *watchdog.Factory
}

func (c *Config) applyDefaults() {
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.FlushThresholdBytes <= 0 {
		c.FlushThresholdBytes = 1 << 20
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 500 * time.Millisecond
	}
	if c.CompactionInterval <= 0 {
		c.CompactionInterval = 2 * time.Second
	}
	if c.CompactionMinTables <= 0 {
		c.CompactionMinTables = 4
	}
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	if c.Metrics == nil {
		c.Metrics = gauge.NewRegistry()
	}
	if c.Injector == nil {
		c.Injector = faultinject.New(c.Clock)
	}
}

// Store is the kvs engine: partition manager, indexer, flusher, compaction
// manager, and optional replication engine.
type Store struct {
	cfg   Config
	clk   clock.Clock
	inj   *faultinject.Injector
	mets  *gauge.Registry
	parts []*partition
	repl  *replicator

	// Hot-path hook sampling: the indexer/WAL/listener hooks fire on every
	// mutation or request, so they capture state only every hookSampleEvery
	// calls — recent-enough context for the checkers at negligible cost
	// (§3.2: checking must not slow the main program).
	indexerHookSeq  atomic.Uint32
	walHookSeq      atomic.Uint32
	listenerHookSeq atomic.Uint32

	// Mutation latency is likewise sampled: clock reads and the window's
	// mutex would otherwise show up at saturating load.
	latSeq atomic.Uint32

	// Cached per-partition gauges keep fmt.Sprintf off the write path.
	memBytesGauges []*gauge.Gauge
	tableGauges    []*gauge.Gauge
	mutations      *gauge.Counter
	errorsC        *gauge.Counter
	readsC         *gauge.Counter
	mutLatency     *gauge.Window

	started bool
	stop    chan struct{}
	done    chan struct{}
}

// Open creates or recovers a Store.
func Open(cfg Config) (*Store, error) {
	cfg.applyDefaults()
	s := &Store{
		cfg:  cfg,
		clk:  cfg.Clock,
		inj:  cfg.Injector,
		mets: cfg.Metrics,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	// Range-partition the single-byte prefix space evenly. The partition
	// manager invariant: ranges are sorted, contiguous, non-overlapping.
	n := cfg.Partitions
	for i := 0; i < n; i++ {
		var lo, hi []byte
		if i > 0 {
			lo = []byte{byte(i * 256 / n)}
		}
		if i < n-1 {
			hi = []byte{byte((i + 1) * 256 / n)}
		}
		dir := ""
		if !cfg.InMemory {
			dir = filepath.Join(cfg.Dir, fmt.Sprintf("p%03d", i))
		}
		p, err := newPartition(i, lo, hi, dir)
		if err != nil {
			s.closePartitions()
			return nil, err
		}
		s.parts = append(s.parts, p)
	}
	if cfg.ReplicaAddr != "" {
		s.repl = newReplicator(cfg.ReplicaAddr, s.clk, s.inj, s.mets, cfg.WatchdogFactory)
	}
	for i := 0; i < n; i++ {
		s.memBytesGauges = append(s.memBytesGauges, s.mets.Gauge(fmt.Sprintf("kvs.mem.bytes.%d", i)))
		s.tableGauges = append(s.tableGauges, s.mets.Gauge(fmt.Sprintf("kvs.tables.%d", i)))
	}
	s.mutations = s.mets.Counter("kvs.mutations")
	s.errorsC = s.mets.Counter("kvs.errors")
	s.readsC = s.mets.Counter("kvs.reads")
	s.mutLatency = s.mets.Window("kvs.latency.mutation", 256)
	return s, nil
}

// hookSampleEvery is the hot-path hook sampling period.
const hookSampleEvery = 64

// Start launches the background flusher, compaction manager, and
// replication sender.
func (s *Store) Start() {
	if s.started {
		return
	}
	s.started = true
	go s.backgroundLoop()
	if s.repl != nil {
		s.repl.start()
	}
}

// backgroundLoop drives flushing and compaction on their cadences.
func (s *Store) backgroundLoop() {
	defer close(s.done)
	flushTick := s.clk.NewTicker(s.cfg.FlushInterval)
	defer flushTick.Stop()
	compactTick := s.clk.NewTicker(s.cfg.CompactionInterval)
	defer compactTick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-flushTick.C():
			s.FlushAll(false)
		case <-compactTick.C():
			s.CompactAll()
		}
	}
}

// Close stops background work and releases resources. A final flush
// persists the memtables.
func (s *Store) Close() error {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	if s.started {
		select {
		case <-s.done:
		case <-time.After(5 * time.Second):
			// Background loop may be wedged by an injected hang; abandon it.
		}
	}
	if s.repl != nil {
		s.repl.close()
	}
	if !s.cfg.InMemory {
		s.FlushAll(true)
	}
	return s.closePartitions()
}

func (s *Store) closePartitions() error {
	var firstErr error
	for _, p := range s.parts {
		if p == nil {
			continue
		}
		if err := p.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Metrics returns the store's metric registry.
func (s *Store) Metrics() *gauge.Registry { return s.mets }

// Injector returns the store's fault injector.
func (s *Store) Injector() *faultinject.Injector { return s.inj }

// Partitions returns the number of partitions.
func (s *Store) Partitions() int { return len(s.parts) }

// partitionFor routes key through the partition manager.
func (s *Store) partitionFor(key []byte) *partition {
	for _, p := range s.parts {
		if p.owns(key) {
			return p
		}
	}
	// Unreachable with contiguous ranges; defend anyway.
	return s.parts[len(s.parts)-1]
}

// ErrEmptyKey rejects empty keys.
var ErrEmptyKey = errors.New("kvs: empty key")

// Set stores value under key.
func (s *Store) Set(key, value []byte) error {
	return s.apply(record{op: opSet, key: key, value: value}, true)
}

// Del removes key.
func (s *Store) Del(key []byte) error {
	return s.apply(record{op: opDel, key: key}, true)
}

// Append appends value to the existing value of key (creating it if absent).
func (s *Store) Append(key, value []byte) error {
	old, ok, err := s.Get(key)
	if err != nil {
		return err
	}
	merged := value
	if ok {
		merged = append(append([]byte(nil), old...), value...)
	}
	return s.Set(key, merged)
}

// ApplyReplicated applies a mutation received from the primary, without
// re-replicating it.
func (s *Store) ApplyReplicated(payload []byte) error {
	rec, err := decodeRecord(payload)
	if err != nil {
		return err
	}
	return s.apply(rec, false)
}

// latSampleEvery is the mutation-latency observation sampling period.
const latSampleEvery = 16

// apply routes one mutation through WAL, indexer, and replication.
func (s *Store) apply(rec record, replicate bool) error {
	if len(rec.key) == 0 {
		return ErrEmptyKey
	}
	var start time.Time
	timed := s.latSeq.Add(1)%latSampleEvery == 0
	if timed {
		start = s.clk.Now()
	}
	p := s.partitionFor(rec.key)

	// Indexer hook (sampled): the mimic indexer checker replays a put/get
	// with the same key shape as recent real traffic. The key is copied
	// because callers (the pipelined server) may reuse its backing buffer.
	s.sampledHook("kvs.indexer", &s.indexerHookSeq, func() map[string]any {
		return map[string]any{
			"partition": p.id,
			"key":       append([]byte(nil), rec.key...),
			"op":        int(rec.op),
		}
	})

	// Mutations serialize against flushes on the partition's write gate, so
	// a flush wedged inside its vulnerable disk write blocks this
	// partition's writes — a partial failure — while reads and other
	// partitions stay healthy.
	p.writeGate.RLock()
	defer p.writeGate.RUnlock()

	var payload []byte
	if p.log != nil {
		payload = encodeRecord(rec)
		s.sampledHook("kvs.wal", &s.walHookSeq, func() map[string]any {
			return map[string]any{
				"partition": p.id,
				"wal_path":  p.log.Path(),
				"record":    payload,
			}
		})
		if err := s.inj.Fire(FaultWALAppend); err != nil {
			s.errorsC.Inc()
			return fmt.Errorf("wal append: %w", err)
		}
	}

	// The indexer fault gates the memtable publish; it fires before the
	// append because a group-committed record is published by the batch
	// leader, past the point where this writer could abort it.
	if err := s.inj.Fire(FaultIndexerPut); err != nil {
		s.errorsC.Inc()
		return fmt.Errorf("indexer: %w", err)
	}

	if p.log != nil && s.cfg.Sync == SyncGroup {
		// Group commit: append, park for the coalesced fsync, publish after
		// the sync completes (the leader publishes the batch in log order).
		if err := p.appendCommit(rec, payload, s.cfg.GroupCommitBudget); err != nil {
			s.errorsC.Inc()
			return err
		}
	} else {
		if p.log != nil {
			if err := p.log.Append(payload); err != nil {
				s.errorsC.Inc()
				return err
			}
		}
		p.mu.Lock()
		p.applyToMem(rec)
		p.mu.Unlock()
	}
	s.mutations.Inc()
	if timed {
		// Observability gauge, sampled with the latency window: the extra
		// partition-lock acquisition is off the per-mutation path.
		s.memBytesGauges[p.id].Set(float64(p.memBytes()))
	}

	if replicate && s.repl != nil {
		if payload == nil {
			payload = encodeRecord(rec)
		}
		s.repl.enqueue(payload)
	}
	if timed {
		s.mutLatency.Observe(float64(s.clk.Since(start)))
	}
	return nil
}

// Get returns the value stored under key.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	if len(key) == 0 {
		return nil, false, ErrEmptyKey
	}
	if err := s.inj.Fire(FaultIndexerGet); err != nil {
		s.errorsC.Inc()
		return nil, false, fmt.Errorf("indexer: %w", err)
	}
	p := s.partitionFor(key)
	v, ok, err := p.get(key)
	if err != nil {
		s.errorsC.Inc()
		return nil, false, err
	}
	s.readsC.Inc()
	return v, ok, nil
}

// Scan returns up to limit live entries with start <= key < end across all
// partitions.
func (s *Store) Scan(start, end []byte, limit int) ([]memtable.Entry, error) {
	var out []memtable.Entry
	for _, p := range s.parts {
		// Partitions are sorted by key range, so the remaining limit pushes
		// down: each partition's bounded merge stops after its share instead
		// of materializing the whole range.
		remaining := 0
		if limit > 0 {
			remaining = limit - len(out)
		}
		es, err := p.scan(start, end, remaining)
		if err != nil {
			return nil, err
		}
		out = append(out, es...)
		if limit > 0 && len(out) >= limit {
			out = out[:limit]
			break
		}
	}
	return out, nil
}

// hook writes into the named watchdog context when a factory is configured.
// This is the instrumentation the AutoWatchdog generator inserts: a one-way
// state push on the main execution path.
func (s *Store) hook(checker string, vals map[string]any) {
	if s.cfg.WatchdogFactory == nil {
		return
	}
	s.cfg.WatchdogFactory.Context(checker).PutAll(vals)
}

// sampledHook is hook for per-mutation call sites: it captures state every
// hookSampleEvery-th call, building the payload lazily so skipped calls
// cost two atomic ops and no allocation. The first call always captures so
// contexts become ready as soon as the path runs at all.
func (s *Store) sampledHook(checker string, seq *atomic.Uint32, build func() map[string]any) {
	if s.cfg.WatchdogFactory == nil {
		return
	}
	if n := seq.Add(1); n != 1 && n%hookSampleEvery != 0 {
		return
	}
	s.cfg.WatchdogFactory.Context(checker).PutAll(build())
}
