package kvs

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

// watchedStore wires a store, its generated watchdog suite, and a shadow FS
// the way cmd/kvsd does.
func watchedStore(t *testing.T, mutate func(*Config)) (*Store, *watchdog.Driver) {
	t.Helper()
	factory := watchdog.NewFactory()
	dir := t.TempDir()
	cfg := Config{Dir: dir, FlushThresholdBytes: 1 << 30, WatchdogFactory: factory}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	shadow, err := wdio.NewFS(filepath.Join(dir, "wd-shadow"), 0)
	if err != nil {
		t.Fatal(err)
	}
	d := watchdog.New(watchdog.WithFactory(factory), watchdog.WithTimeout(2*time.Second))
	s.InstallWatchdog(d, shadow)
	return s, d
}

func TestWatchdogAllCheckersRegistered(t *testing.T) {
	_, d := watchedStore(t, nil)
	want := []string{"kvs.compaction", "kvs.flusher", "kvs.indexer", "kvs.partition", "kvs.wal"}
	got := d.Checkers()
	if len(got) != len(want) {
		t.Fatalf("checkers = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("checkers = %v, want %v", got, want)
		}
	}
}

func TestWatchdogHealthyUnderNormalOperation(t *testing.T) {
	s, d := watchedStore(t, nil)
	// Drive real load so hooks populate every context.
	for i := 0; i < 50; i++ {
		s.Set([]byte{byte(i * 5)}, []byte("value"))
	}
	s.FlushAll(true)
	s.Set([]byte("more"), []byte("after-flush"))
	for _, rep := range d.CheckAll() {
		if rep.Status.Abnormal() {
			t.Errorf("%s abnormal on healthy store: %v", rep.Checker, rep)
		}
	}
	// The hook-gated checkers actually ran (contexts were ready).
	for _, name := range []string{"kvs.flusher", "kvs.wal", "kvs.indexer"} {
		rep, ok := d.Latest(name)
		if !ok || rep.Status != watchdog.StatusHealthy {
			t.Errorf("%s: %v (ok=%v)", name, rep.Status, ok)
		}
	}
}

func TestWatchdogContextGatingInMemoryMode(t *testing.T) {
	// §3.1: kvs configured in-memory -> the disk flusher hook never fires ->
	// the flusher checker must be skipped, not report a spurious fault.
	s, d := watchedStore(t, func(c *Config) { c.InMemory = true })
	for i := 0; i < 20; i++ {
		s.Set([]byte{byte(i)}, []byte("v"))
	}
	s.FlushAll(true) // no-op in memory mode
	rep, err := d.CheckNow("kvs.flusher")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != watchdog.StatusContextPending {
		t.Fatalf("flusher checker status = %v, want context-pending", rep.Status)
	}
}

func TestWatchdogDetectsDiskFaultWithPinpoint(t *testing.T) {
	s, d := watchedStore(t, nil)
	s.Set([]byte("k"), []byte("v"))
	s.FlushAll(true) // populates the flusher context
	// Environment fault: the volume starts erroring.
	s.Injector().Arm(FaultFlushWrite, faultinject.Fault{Kind: faultinject.Error})
	rep, _ := d.CheckNow("kvs.flusher")
	if rep.Status != watchdog.StatusError {
		t.Fatalf("status = %v", rep.Status)
	}
	if rep.Site.Op != "sstable.Write" {
		t.Fatalf("pinpoint = %v", rep.Site)
	}
	if rep.Payload["path"] == nil {
		t.Fatal("payload missing flush path")
	}
}

func TestWatchdogDetectsHangWithSharedFate(t *testing.T) {
	s, d := watchedStore(t, nil)
	s.Set([]byte("k"), []byte("v"))
	s.FlushAll(true)
	// Environment fault: compaction I/O hangs (stuck background task).
	s.Injector().Arm(FaultCompactMerge, faultinject.Fault{Kind: faultinject.Hang})
	done := make(chan watchdog.Report, 1)
	go func() {
		rep, _ := d.CheckNow("kvs.compaction")
		done <- rep
	}()
	select {
	case rep := <-done:
		if rep.Status != watchdog.StatusStuck {
			t.Fatalf("status = %v, want stuck", rep.Status)
		}
		if rep.Site.Op != "sstable.Merge" {
			t.Fatalf("pinpoint = %v", rep.Site)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("driver never detected the hang")
	}
	s.Injector().Clear()
}

func TestWatchdogDetectsSilentCorruption(t *testing.T) {
	s, d := watchedStore(t, nil)
	s.Set([]byte("k"), []byte("precious"))
	s.FlushAll(true)
	// Corrupt a flushed SSTable behind the store's back.
	p := s.partitionFor([]byte("k"))
	p.mu.Lock()
	path := p.tables[0].Path()
	p.mu.Unlock()
	corruptFile(t, path)
	rep, _ := d.CheckNow("kvs.partition")
	if rep.Status != watchdog.StatusError {
		t.Fatalf("status = %v, want error", rep.Status)
	}
	if rep.Site.Op != "sstable.VerifyChecksum" {
		t.Fatalf("pinpoint = %v", rep.Site)
	}
}

func TestWatchdogIndexerProbeIsolation(t *testing.T) {
	s, d := watchedStore(t, nil)
	s.Set([]byte("client-key"), []byte("client-value"))
	for i := 0; i < 5; i++ {
		rep, _ := d.CheckNow("kvs.indexer")
		if rep.Status != watchdog.StatusHealthy {
			t.Fatalf("indexer checker: %v", rep)
		}
	}
	// Checker probes never leak into client-visible data.
	entries, err := s.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if string(e.Key) != "client-key" {
			t.Fatalf("unexpected key leaked: %q", e.Key)
		}
	}
}

func TestWatchdogReplCheckerRoundTrip(t *testing.T) {
	replica := openStore(t, nil)
	rs, err := ServeReplica("127.0.0.1:0", replica)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })

	s, d := watchedStore(t, func(c *Config) { c.ReplicaAddr = rs.Addr() })
	s.Start()
	s.Set([]byte("k"), []byte("v"))
	waitReplicated(t, replica, "k", "v")

	rep, errNow := d.CheckNow("kvs.repl")
	if errNow != nil {
		t.Fatal(errNow)
	}
	if rep.Status != watchdog.StatusHealthy {
		t.Fatalf("repl checker = %v err=%v", rep.Status, rep.Err)
	}
	// The checker's zero-length probe frame must not create data.
	if n, _, _ := replica.Get([]byte("")); n != nil {
		t.Fatal("probe frame created data on replica")
	}

	// Kill the replica: the mimic checker now fails with the network site.
	rs.Close()
	rep, _ = d.CheckNow("kvs.repl")
	if !rep.Status.Abnormal() {
		t.Fatalf("repl checker healthy with dead replica: %v", rep)
	}
	if rep.Site.Op != "net.Write" {
		t.Fatalf("pinpoint = %v", rep.Site)
	}
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte just past the 8-byte magic so the corruption lands in the
	// data section covered by the table checksum.
	data[9] ^= 0x55
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
}

func readFile(path string) ([]byte, error)  { return os.ReadFile(path) }
func writeFile(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }
