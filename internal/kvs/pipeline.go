package kvs

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// pendKind tags the expected response shape of a queued request.
type pendKind byte

const (
	pendOK    pendKind = iota // OK | ERR
	pendGet                   // VALUE | NOT_FOUND | ERR
	pendPing                  // PONG | ERR
	pendBlock                 // COUNT <k> + k lines | ERR
)

// Result is one pipelined response. Err carries server-side errors
// (including ErrNotFound for a missing GET); transport errors come back
// from Recv itself.
type Result struct {
	// Value is the GET value ("" otherwise).
	Value string
	// Lines are the body lines of a SCAN/STATS COUNT block.
	Lines []string
	// Err is the per-request server error, nil on success.
	Err error
}

// Pipeline queues many requests on one connection and reads the responses
// in order, so a single connection can keep up to depth requests in flight
// — the client half of the server's pipelined wire protocol.
//
// Usage is either single-goroutine batches (queue up to depth requests,
// then Exec) or split halves: one goroutine queueing and flushing, another
// looping Recv. The window channel synchronizes the two; no other methods
// of the Client may be used while a Pipeline is active.
type Pipeline struct {
	c       *Client
	pending chan pendKind
}

// Pipeline starts a pipeline with the given window depth (≤ 0 means 128).
func (c *Client) Pipeline(depth int) *Pipeline {
	if depth <= 0 {
		depth = 128
	}
	return &Pipeline{c: c, pending: make(chan pendKind, depth)}
}

// queue writes the request line and registers its expected response kind.
// When the window is full the accumulated requests are flushed first, so a
// lone sender cannot deadlock against its own unflushed bytes; it then
// blocks until the receiver drains a slot.
func (p *Pipeline) queue(kind pendKind, parts ...string) error {
	if len(p.pending) == cap(p.pending) {
		if err := p.Flush(); err != nil {
			return err
		}
	}
	p.c.conn.SetWriteDeadline(time.Now().Add(p.c.timeout))
	w := p.c.w
	for i, part := range parts {
		if i > 0 {
			w.WriteByte(' ')
		}
		w.WriteString(part)
	}
	if err := w.WriteByte('\n'); err != nil {
		return err
	}
	p.pending <- kind
	return nil
}

// Set queues SET <key> <value>.
func (p *Pipeline) Set(key, value string) error { return p.queue(pendOK, "SET", key, value) }

// Append queues APPEND <key> <value>.
func (p *Pipeline) Append(key, value string) error { return p.queue(pendOK, "APPEND", key, value) }

// Get queues GET <key>.
func (p *Pipeline) Get(key string) error { return p.queue(pendGet, "GET", key) }

// Del queues DEL <key>.
func (p *Pipeline) Del(key string) error { return p.queue(pendOK, "DEL", key) }

// Ping queues PING.
func (p *Pipeline) Ping() error { return p.queue(pendPing, "PING") }

// Scan queues SCAN <start|-> <end|-> <limit>; "" means unbounded.
func (p *Pipeline) Scan(start, end string, limit int) error {
	if start == "" {
		start = "-"
	}
	if end == "" {
		end = "-"
	}
	return p.queue(pendBlock, "SCAN", start, end, strconv.Itoa(limit))
}

// Flush sends all queued requests to the server.
func (p *Pipeline) Flush() error {
	p.c.conn.SetWriteDeadline(time.Now().Add(p.c.timeout))
	return p.c.w.Flush()
}

// Outstanding returns the number of queued requests not yet Recv'd.
func (p *Pipeline) Outstanding() int { return len(p.pending) }

// Recv reads the next pending response in order. The returned error is a
// transport failure (connection or protocol breakdown); per-request server
// errors arrive in Result.Err. Recv blocks until a response arrives; call
// it only when requests are outstanding (after a Flush, or from a receiver
// goroutine paired with a queueing sender).
func (p *Pipeline) Recv() (Result, error) {
	kind := <-p.pending
	p.c.conn.SetReadDeadline(time.Now().Add(p.c.timeout))
	line, err := p.c.r.ReadString('\n')
	if err != nil {
		return Result{}, err
	}
	line = strings.TrimSuffix(line, "\n")
	switch kind {
	case pendOK:
		return Result{Err: expectOK(line)}, nil
	case pendPing:
		if line != "PONG" {
			return Result{Err: fmt.Errorf("kvs: unexpected ping response %q", line)}, nil
		}
		return Result{}, nil
	case pendGet:
		switch {
		case strings.HasPrefix(line, "VALUE "):
			return Result{Value: strings.TrimPrefix(line, "VALUE ")}, nil
		case line == "NOT_FOUND":
			return Result{Err: ErrNotFound}, nil
		case strings.HasPrefix(line, "ERR "):
			return Result{Err: errors.New(strings.TrimPrefix(line, "ERR "))}, nil
		default:
			return Result{}, fmt.Errorf("kvs: unexpected response %q", line)
		}
	default: // pendBlock
		if strings.HasPrefix(line, "ERR ") {
			return Result{Err: errors.New(strings.TrimPrefix(line, "ERR "))}, nil
		}
		n, err := strconv.Atoi(strings.TrimPrefix(line, "COUNT "))
		if !strings.HasPrefix(line, "COUNT ") || err != nil {
			return Result{}, fmt.Errorf("kvs: unexpected response %q", line)
		}
		lines := make([]string, 0, n)
		for i := 0; i < n; i++ {
			body, err := p.c.r.ReadString('\n')
			if err != nil {
				return Result{}, err
			}
			lines = append(lines, strings.TrimSuffix(body, "\n"))
		}
		return Result{Lines: lines}, nil
	}
}

// Exec flushes and collects every currently outstanding response — the
// single-goroutine batch form: queue up to depth requests, Exec, repeat.
func (p *Pipeline) Exec() ([]Result, error) {
	if err := p.Flush(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(p.pending))
	for len(p.pending) > 0 {
		r, err := p.Recv()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
