package kvs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gowatchdog/internal/memtable"
	"gowatchdog/internal/sstable"
	"gowatchdog/internal/wal"
)

// partition is one key range [lo, hi) with its own memtable, write-ahead
// log, SSTable stack (newest first), and group committer. The partition
// manager keeps partitions sorted by range.
//
// Lock order: writeGate before mu. Writers hold writeGate.RLock for the
// whole append → sync → publish sequence; the flusher and repairer take
// writeGate.Lock, so a memtable drain or WAL reset can never interleave
// with an appended-but-unpublished mutation.
type partition struct {
	id  int
	lo  []byte // inclusive; nil = no lower bound
	hi  []byte // exclusive; nil = no upper bound
	dir string // empty in in-memory mode

	// writeGate serializes mutations against flush/repair. Striped per
	// partition, so group commits on different partitions proceed
	// independently.
	writeGate sync.RWMutex

	mu         sync.Mutex
	mem        *memtable.Table
	log        *wal.Log // nil in in-memory mode
	tables     []*sstable.Reader
	nextID     int
	compacting bool // at most one compaction per partition at a time

	// Group-commit state. gcMu orders WAL appends with the pending queue so
	// publish order equals log order; gcCommitMu guards the commit watermarks
	// and leader election.
	gcMu       sync.Mutex
	gcPending  []record
	gcCommitMu sync.Mutex
	gcCond     *sync.Cond
	gcSyncing  bool  // a leader is inside sync+publish
	gcDone     int64 // log offset the committer has finished (synced or failed) through
	gcDurable  int64 // log offset synced and published successfully through
	gcErr      error // error of the most recent failed batch
}

// newPartition opens or recovers a partition rooted at dir (or in memory
// when dir is empty).
func newPartition(id int, lo, hi []byte, dir string) (*partition, error) {
	p := &partition{id: id, lo: lo, hi: hi, dir: dir, mem: memtable.New(), nextID: 1}
	p.gcCond = sync.NewCond(&p.gcCommitMu)
	if dir == "" {
		return p, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvs: partition %d: %w", id, err)
	}
	if err := p.loadTables(); err != nil {
		return nil, err
	}
	log, err := wal.Open(filepath.Join(dir, "wal.log"))
	if err != nil {
		return nil, err
	}
	p.log = log
	// Recover unflushed mutations.
	if err := log.Replay(func(payload []byte) error {
		rec, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		p.applyToMem(rec)
		return nil
	}); err != nil {
		log.Close()
		return nil, fmt.Errorf("kvs: partition %d replay: %w", id, err)
	}
	return p, nil
}

// loadTables opens existing SSTables newest-first.
func (p *partition) loadTables() error {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return err
	}
	type numbered struct {
		id   int
		path string
	}
	var found []numbered
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".sst") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(name, ".sst"))
		if err != nil {
			continue
		}
		found = append(found, numbered{id: id, path: filepath.Join(p.dir, name)})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].id > found[j].id }) // newest first
	for _, f := range found {
		r, err := sstable.Open(f.path)
		if err != nil {
			return fmt.Errorf("kvs: open %s: %w", f.path, err)
		}
		p.tables = append(p.tables, r)
		if f.id >= p.nextID {
			p.nextID = f.id + 1
		}
	}
	return nil
}

// applyToMem applies rec to the memtable without logging.
func (p *partition) applyToMem(rec record) {
	if rec.op == opDel {
		p.mem.Delete(rec.key)
	} else {
		p.mem.Put(rec.key, rec.value)
	}
}

// memBytes returns the live memtable's approximate footprint.
func (p *partition) memBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mem.ApproxBytes()
}

// appendCommit is the group-commit write path: it appends payload to the
// WAL (buffered, ordered by gcMu) and parks until a sync covers the record.
// The first parked writer becomes the batch leader: it optionally waits out
// the latency budget so concurrent writers can pile on, issues ONE fsync
// for the whole batch, publishes the batch's records to the memtable in log
// order, and wakes everyone. Records of a failed sync are never published,
// so the memtable always trails the durable WAL prefix — a crash can lose
// only mutations whose callers saw an error.
//
// Callers must hold p.writeGate.RLock.
func (p *partition) appendCommit(rec record, payload []byte, budget time.Duration) error {
	p.gcMu.Lock()
	if err := p.log.Append(payload); err != nil {
		p.gcMu.Unlock()
		return err
	}
	p.gcPending = append(p.gcPending, rec)
	myOff := p.log.Size()
	p.gcMu.Unlock()

	p.gcCommitMu.Lock()
	for p.gcDone < myOff {
		if p.gcSyncing {
			p.gcCond.Wait()
			continue
		}
		// Become the leader for the next batch.
		p.gcSyncing = true
		p.gcCommitMu.Unlock()
		if budget > 0 {
			time.Sleep(budget) // bounded coalescing window
		}
		p.gcMu.Lock()
		batch := p.gcPending
		p.gcPending = nil
		target := p.log.Size()
		p.gcMu.Unlock()
		err := p.log.Sync()
		if err == nil && len(batch) > 0 {
			p.mu.Lock()
			for _, r := range batch {
				p.applyToMem(r)
			}
			p.mu.Unlock()
		}
		p.gcCommitMu.Lock()
		p.gcSyncing = false
		p.gcDone = target
		if err == nil {
			p.gcDurable = target
		} else {
			p.gcErr = err
		}
		p.gcCond.Broadcast()
	}
	var err error
	if p.gcDurable < myOff {
		err = p.gcErr
	}
	p.gcCommitMu.Unlock()
	return err
}

// resetCommitWatermarks rewinds the group-commit watermarks to off after
// the WAL itself rewound (flush Reset → 0, repair reopen → the reopened
// log's durable size). Callers must hold p.writeGate.Lock, which guarantees
// no appendCommit is in flight and the pending queue is empty.
func (p *partition) resetCommitWatermarks(off int64) {
	p.gcCommitMu.Lock()
	p.gcDone = off
	p.gcDurable = off
	p.gcErr = nil
	p.gcCommitMu.Unlock()
}

// owns reports whether key falls in this partition's range.
func (p *partition) owns(key []byte) bool {
	if p.lo != nil && bytes.Compare(key, p.lo) < 0 {
		return false
	}
	if p.hi != nil && bytes.Compare(key, p.hi) >= 0 {
		return false
	}
	return true
}

// get resolves key through the memtable and the SSTable stack.
func (p *partition) get(key []byte) ([]byte, bool, error) {
	p.mu.Lock()
	mem := p.mem
	tables := append([]*sstable.Reader(nil), p.tables...)
	p.mu.Unlock()
	if v, tomb, ok := mem.Get(key); ok {
		if tomb {
			return nil, false, nil
		}
		return v, true, nil
	}
	for _, t := range tables {
		v, tomb, ok, err := t.Get(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if tomb {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	return nil, false, nil
}

// scanCursor is one source of a bounded scan merge: cur is the next
// in-range entry (valid while ok), advanced lazily.
type scanCursor struct {
	cur memtable.Entry
	ok  bool
	// next advances past the current entry; start is the next seek key.
	next func(start []byte) (memtable.Entry, bool, error)
}

func (c *scanCursor) advance() error {
	// Seek strictly past the current key: its successor in byte order is
	// the key with a zero byte appended.
	seek := append(append([]byte(nil), c.cur.Key...), 0)
	e, ok, err := c.next(seek)
	c.cur, c.ok = e, ok
	return err
}

// scan merges live entries in [start, end) across the memtable and tables,
// newest shadowing oldest, up to limit results (0 = unlimited). It is a
// k-way merge over sorted cursors, so a limited scan touches O(limit)
// entries per source instead of materializing the whole range — the
// difference between a microsecond SCAN and one that reads the entire
// partition under load.
func (p *partition) scan(start, end []byte, limit int) ([]memtable.Entry, error) {
	p.mu.Lock()
	mem := p.mem
	tables := append([]*sstable.Reader(nil), p.tables...)
	p.mu.Unlock()

	// Cursors ordered newest first (memtable, then tables newest-to-oldest):
	// on key ties the lowest cursor index wins.
	curs := make([]*scanCursor, 0, len(tables)+1)
	memNext := func(seek []byte) (memtable.Entry, bool, error) {
		e, ok := mem.Ceil(seek)
		return e, ok, nil
	}
	curs = append(curs, &scanCursor{next: memNext})
	for _, t := range tables {
		it := t.Seek(start)
		curs = append(curs, &scanCursor{next: func(_ []byte) (memtable.Entry, bool, error) {
			return it.Next()
		}})
	}
	// Prime every cursor at the range start.
	for _, c := range curs {
		e, ok, err := c.next(start)
		if err != nil {
			return nil, err
		}
		c.cur, c.ok = e, ok
	}

	var out []memtable.Entry
	for limit <= 0 || len(out) < limit {
		// Smallest key across cursors; newest source wins ties.
		var winner *scanCursor
		for _, c := range curs {
			if !c.ok {
				continue
			}
			if winner == nil || bytes.Compare(c.cur.Key, winner.cur.Key) < 0 {
				winner = c
			}
		}
		if winner == nil || (end != nil && bytes.Compare(winner.cur.Key, end) >= 0) {
			break
		}
		e := winner.cur
		// Consume this key from every cursor holding it (the winner's entry
		// shadows the older ones).
		for _, c := range curs {
			if c.ok && bytes.Equal(c.cur.Key, e.Key) {
				if err := c.advance(); err != nil {
					return nil, err
				}
			}
		}
		if !e.Tombstone {
			out = append(out, e)
		}
	}
	return out, nil
}

// close releases the WAL and table readers.
func (p *partition) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var firstErr error
	if p.log != nil {
		if err := p.log.Close(); err != nil {
			firstErr = err
		}
		p.log = nil
	}
	for _, t := range p.tables {
		if err := t.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	p.tables = nil
	return firstErr
}
