package kvs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gowatchdog/internal/memtable"
	"gowatchdog/internal/sstable"
	"gowatchdog/internal/wal"
)

// partition is one key range [lo, hi) with its own memtable, write-ahead
// log, and SSTable stack (newest first). The partition manager keeps
// partitions sorted by range.
type partition struct {
	id  int
	lo  []byte // inclusive; nil = no lower bound
	hi  []byte // exclusive; nil = no upper bound
	dir string // empty in in-memory mode

	mu         sync.Mutex
	mem        *memtable.Table
	log        *wal.Log // nil in in-memory mode
	tables     []*sstable.Reader
	nextID     int
	compacting bool // at most one compaction per partition at a time
}

// newPartition opens or recovers a partition rooted at dir (or in memory
// when dir is empty).
func newPartition(id int, lo, hi []byte, dir string) (*partition, error) {
	p := &partition{id: id, lo: lo, hi: hi, dir: dir, mem: memtable.New(), nextID: 1}
	if dir == "" {
		return p, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvs: partition %d: %w", id, err)
	}
	if err := p.loadTables(); err != nil {
		return nil, err
	}
	log, err := wal.Open(filepath.Join(dir, "wal.log"))
	if err != nil {
		return nil, err
	}
	p.log = log
	// Recover unflushed mutations.
	if err := log.Replay(func(payload []byte) error {
		rec, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		p.applyToMem(rec)
		return nil
	}); err != nil {
		log.Close()
		return nil, fmt.Errorf("kvs: partition %d replay: %w", id, err)
	}
	return p, nil
}

// loadTables opens existing SSTables newest-first.
func (p *partition) loadTables() error {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return err
	}
	type numbered struct {
		id   int
		path string
	}
	var found []numbered
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".sst") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(name, ".sst"))
		if err != nil {
			continue
		}
		found = append(found, numbered{id: id, path: filepath.Join(p.dir, name)})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].id > found[j].id }) // newest first
	for _, f := range found {
		r, err := sstable.Open(f.path)
		if err != nil {
			return fmt.Errorf("kvs: open %s: %w", f.path, err)
		}
		p.tables = append(p.tables, r)
		if f.id >= p.nextID {
			p.nextID = f.id + 1
		}
	}
	return nil
}

// applyToMem applies rec to the memtable without logging.
func (p *partition) applyToMem(rec record) {
	if rec.op == opDel {
		p.mem.Delete(rec.key)
	} else {
		p.mem.Put(rec.key, rec.value)
	}
}

// owns reports whether key falls in this partition's range.
func (p *partition) owns(key []byte) bool {
	if p.lo != nil && bytes.Compare(key, p.lo) < 0 {
		return false
	}
	if p.hi != nil && bytes.Compare(key, p.hi) >= 0 {
		return false
	}
	return true
}

// get resolves key through the memtable and the SSTable stack.
func (p *partition) get(key []byte) ([]byte, bool, error) {
	p.mu.Lock()
	mem := p.mem
	tables := append([]*sstable.Reader(nil), p.tables...)
	p.mu.Unlock()
	if v, tomb, ok := mem.Get(key); ok {
		if tomb {
			return nil, false, nil
		}
		return v, true, nil
	}
	for _, t := range tables {
		v, tomb, ok, err := t.Get(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if tomb {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	return nil, false, nil
}

// scan merges live entries in [start, end) across the memtable and tables,
// newest shadowing oldest, up to limit results (0 = unlimited).
func (p *partition) scan(start, end []byte, limit int) ([]memtable.Entry, error) {
	p.mu.Lock()
	mem := p.mem
	tables := append([]*sstable.Reader(nil), p.tables...)
	p.mu.Unlock()

	merged := make(map[string]memtable.Entry)
	inRange := func(k []byte) bool {
		if start != nil && bytes.Compare(k, start) < 0 {
			return false
		}
		if end != nil && bytes.Compare(k, end) >= 0 {
			return false
		}
		return true
	}
	// Oldest tables first so newer entries overwrite.
	for i := len(tables) - 1; i >= 0; i-- {
		err := tables[i].Iterate(func(e memtable.Entry) bool {
			if inRange(e.Key) {
				merged[string(e.Key)] = e
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	mem.Iterate(func(e memtable.Entry) bool {
		if inRange(e.Key) {
			merged[string(e.Key)] = e
		}
		return true
	})
	keys := make([]string, 0, len(merged))
	for k, e := range merged {
		if e.Tombstone {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	out := make([]memtable.Entry, 0, len(keys))
	for _, k := range keys {
		out = append(out, merged[k])
	}
	return out, nil
}

// close releases the WAL and table readers.
func (p *partition) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var firstErr error
	if p.log != nil {
		if err := p.log.Close(); err != nil {
			firstErr = err
		}
		p.log = nil
	}
	for _, t := range p.tables {
		if err := t.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	p.tables = nil
	return firstErr
}
