// Package kvs implements the paper's running example (Figure 1): a
// key-value store with a simple interface — GET, SET, APPEND, DEL — and
// complex internals: request listener, indexer (memtable), disk flusher,
// compaction manager, replication engine, and partition manager.
//
// Every long-running component carries named fault points (see the
// faultPoint* constants) so experiments can plant the gray failures the
// paper motivates: a stuck compaction, a partially failed disk, a wedged
// replication stream, silent partition corruption.
//
// When a watchdog context factory is configured, the components execute
// watchdog hooks at the points the AutoWatchdog generator would instrument:
// right before vulnerable operations, capturing the operation's arguments
// into the matching checker's context.
package kvs

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Operation codes for WAL and replication records.
const (
	opSet byte = 1
	opDel byte = 2
)

// record is one logical mutation, the unit of WAL logging and replication.
type record struct {
	op    byte
	key   []byte
	value []byte
}

// encodeRecord renders r as: op byte | uvarint klen | key | uvarint vlen | value.
func encodeRecord(r record) []byte {
	buf := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(r.key)+len(r.value))
	buf = append(buf, r.op)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(r.key)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, r.key...)
	n = binary.PutUvarint(tmp[:], uint64(len(r.value)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, r.value...)
	return buf
}

// errBadRecord is returned when a record fails to decode.
var errBadRecord = errors.New("kvs: malformed record")

// decodeRecord parses the encodeRecord format.
func decodeRecord(buf []byte) (record, error) {
	if len(buf) < 1 {
		return record{}, errBadRecord
	}
	r := record{op: buf[0]}
	if r.op != opSet && r.op != opDel {
		return record{}, fmt.Errorf("%w: op %d", errBadRecord, r.op)
	}
	rest := buf[1:]
	klen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < klen {
		return record{}, fmt.Errorf("%w: key length", errBadRecord)
	}
	rest = rest[n:]
	r.key = append([]byte(nil), rest[:klen]...)
	rest = rest[klen:]
	vlen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < vlen {
		return record{}, fmt.Errorf("%w: value length", errBadRecord)
	}
	rest = rest[n:]
	if uint64(len(rest)) != vlen {
		return record{}, fmt.Errorf("%w: trailing bytes", errBadRecord)
	}
	r.value = append([]byte(nil), rest[:vlen]...)
	return r, nil
}
