package kvs

import (
	"fmt"
	"os"
	"path/filepath"

	"gowatchdog/internal/memtable"
	"gowatchdog/internal/sstable"
	"gowatchdog/internal/wal"
)

// FlushAll flushes every partition whose memtable crossed the threshold
// (or all non-empty memtables when force is true).
func (s *Store) FlushAll(force bool) {
	for i := range s.parts {
		if err := s.FlushPartition(i, force); err != nil {
			s.mets.Counter("kvs.flush.errors").Inc()
		}
	}
}

// FlushPartition drains partition i's memtable into a new SSTable, then
// resets the WAL. It is a no-op in in-memory mode — which is why the
// flusher's watchdog hook never fires there, keeping the disk-flusher
// checker's context unready instead of producing spurious reports (§3.1).
func (s *Store) FlushPartition(i int, force bool) error {
	p := s.parts[i]
	if p.dir == "" {
		return nil
	}
	// The write gate excludes mutations for the whole flush, so the memtable
	// drain and WAL reset can never interleave with an
	// appended-but-unpublished group commit (lock order: writeGate, mu).
	p.writeGate.Lock()
	defer p.writeGate.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if !force && p.mem.ApproxBytes() < s.cfg.FlushThresholdBytes {
		return nil
	}
	entries := p.mem.Entries()
	if len(entries) == 0 {
		return nil
	}
	path := filepath.Join(p.dir, fmt.Sprintf("%06d.sst", p.nextID))

	// Watchdog hook: capture the flush arguments — partition, target path,
	// and a bounded sample of the batch — immediately before the vulnerable
	// disk write (the instrumentation point from Figure 2).
	s.hook("kvs.flusher", map[string]any{
		"partition": p.id,
		"dir":       p.dir,
		"path":      path,
		"entries":   len(entries),
		"sample":    sampleEntry(entries),
	})

	// Vulnerable operation: the SSTable write hits the disk. The fault
	// point models the volume, so any code writing this volume (including
	// the mimic checker's shadow write) shares its fate.
	if err := s.inj.Fire(FaultFlushWrite); err != nil {
		return fmt.Errorf("flush p%d: %w", p.id, err)
	}
	if err := sstable.Write(path, entries); err != nil {
		return fmt.Errorf("flush p%d: %w", p.id, err)
	}
	rdr, err := sstable.Open(path)
	if err != nil {
		return fmt.Errorf("flush p%d reopen: %w", p.id, err)
	}
	p.tables = append([]*sstable.Reader{rdr}, p.tables...)
	p.nextID++
	if p.log != nil {
		if err := p.log.Reset(); err != nil {
			return fmt.Errorf("flush p%d wal reset: %w", p.id, err)
		}
		p.resetCommitWatermarks(0)
	}
	p.mem = memtable.New()
	s.mets.Counter("kvs.flushes").Inc()
	s.tableGauges[p.id].Set(float64(len(p.tables)))
	s.memBytesGauges[p.id].Set(0)
	return nil
}

// sampleEntry returns a bounded key/value sample for checker payloads.
func sampleEntry(entries []memtable.Entry) []byte {
	if len(entries) == 0 {
		return nil
	}
	e := entries[0]
	sample := make([]byte, 0, 64)
	sample = append(sample, e.Key...)
	sample = append(sample, '=')
	v := e.Value
	if len(v) > 32 {
		v = v[:32]
	}
	sample = append(sample, v...)
	return sample
}

// CompactAll compacts every partition that accumulated enough SSTables.
func (s *Store) CompactAll() {
	for i := range s.parts {
		if err := s.CompactPartition(i); err != nil {
			s.mets.Counter("kvs.compaction.errors").Inc()
		}
	}
}

// CompactPartition merges partition i's SSTable stack into one table when
// it has at least CompactionMinTables tables. The merge itself runs outside
// the partition lock (tables are immutable), mirroring how a real
// compaction background task can wedge silently without blocking writes —
// the paper's canonical internal gray failure.
func (s *Store) CompactPartition(i int) error {
	p := s.parts[i]
	if p.dir == "" {
		return nil
	}
	p.mu.Lock()
	if p.compacting || len(p.tables) < s.cfg.CompactionMinTables {
		p.mu.Unlock()
		return nil
	}
	// Serialize compactions per partition: the merge runs outside the lock,
	// so a second concurrent compaction would merge tables the first one is
	// about to remove.
	p.compacting = true
	defer func() {
		p.mu.Lock()
		p.compacting = false
		p.mu.Unlock()
	}()
	victims := append([]*sstable.Reader(nil), p.tables...)
	outPath := filepath.Join(p.dir, fmt.Sprintf("%06d.sst", p.nextID))
	p.nextID++
	p.mu.Unlock()

	inputs := make([]string, len(victims))
	for j, v := range victims {
		inputs[j] = v.Path()
	}
	s.hook("kvs.compaction", map[string]any{
		"partition": p.id,
		"inputs":    inputs,
		"output":    outPath,
	})

	// Vulnerable operation: the bulk merge I/O.
	if err := s.inj.Fire(FaultCompactMerge); err != nil {
		return fmt.Errorf("compact p%d: %w", p.id, err)
	}
	if err := sstable.Merge(outPath, victims, true); err != nil {
		return fmt.Errorf("compact p%d: %w", p.id, err)
	}
	merged, err := sstable.Open(outPath)
	if err != nil {
		return fmt.Errorf("compact p%d reopen: %w", p.id, err)
	}

	p.mu.Lock()
	// Flushes may have prepended newer tables while we merged; replace only
	// the suffix we actually merged.
	keep := len(p.tables) - len(victims)
	if keep < 0 {
		keep = 0
	}
	newTables := append([]*sstable.Reader(nil), p.tables[:keep]...)
	newTables = append(newTables, merged)
	old := p.tables[keep:]
	p.tables = newTables
	tableCount := len(p.tables)
	p.mu.Unlock()

	for _, t := range old {
		t.Close()
		os.Remove(t.Path())
	}
	s.mets.Counter("kvs.compactions").Inc()
	s.tableGauges[p.id].Set(float64(tableCount))
	return nil
}

// RepairPartition is the cheap-recovery path (§5.2 of the paper): guided by
// a watchdog alarm that localized corruption to this partition, it
// quarantines SSTables that fail checksum validation (renaming them with a
// .corrupt suffix and dropping them from the read path) and truncates a
// corrupt WAL back to its intact prefix. It returns how many tables were
// quarantined. Data covered by surviving tables and the memtable remains
// served throughout — no process restart.
func (s *Store) RepairPartition(i int) (int, error) {
	p := s.parts[i]
	// Exclude writers: repair may swap the WAL out from under the group
	// committer otherwise.
	p.writeGate.Lock()
	defer p.writeGate.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	quarantined := 0
	var kept []*sstable.Reader
	for _, t := range p.tables {
		if err := t.VerifyChecksum(); err != nil {
			path := t.Path()
			t.Close()
			if renameErr := os.Rename(path, path+".corrupt"); renameErr != nil {
				return quarantined, fmt.Errorf("repair p%d: %w", p.id, renameErr)
			}
			quarantined++
			continue
		}
		kept = append(kept, t)
	}
	p.tables = kept
	if p.log != nil {
		if err := p.log.Verify(); err != nil {
			// Reopen: wal.Open truncates everything past the last intact
			// frame. The memtable already holds the applied records.
			path := p.log.Path()
			p.log.Close()
			fresh, err := wal.Open(path)
			if err != nil {
				return quarantined, fmt.Errorf("repair p%d wal: %w", p.id, err)
			}
			p.log = fresh
			p.resetCommitWatermarks(fresh.SyncedSize())
		}
	}
	s.mets.Counter("kvs.repairs").Inc()
	s.tableGauges[p.id].Set(float64(len(p.tables)))
	return quarantined, nil
}

// TablePaths returns the file paths of partition i's SSTables, newest
// first; fault-injection experiments use it to corrupt tables in place.
func (s *Store) TablePaths(i int) []string {
	p := s.parts[i]
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.tables))
	for j, t := range p.tables {
		out[j] = t.Path()
	}
	return out
}

// TableCount returns the number of SSTables in partition i.
func (s *Store) TableCount(i int) int {
	p := s.parts[i]
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.tables)
}

// VerifyPartition runs the fsck-style partition check (§2, §3.3): it
// validates the WAL frames and every SSTable checksum in partition i. This
// is the heavyweight check the watchdog runs concurrently rather than
// in-place.
func (s *Store) VerifyPartition(i int) error {
	p := s.parts[i]
	p.mu.Lock()
	log := p.log
	tables := append([]*sstable.Reader(nil), p.tables...)
	p.mu.Unlock()
	if err := s.inj.Fire(FaultSSTableRead); err != nil {
		return fmt.Errorf("verify p%d: %w", p.id, err)
	}
	if log != nil {
		if err := log.Verify(); err != nil {
			return fmt.Errorf("verify p%d wal: %w", p.id, err)
		}
	}
	for _, t := range tables {
		if err := t.VerifyChecksum(); err != nil {
			return fmt.Errorf("verify p%d: %w", p.id, err)
		}
	}
	return nil
}
