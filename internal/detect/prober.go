package detect

import (
	"errors"
	"sync"
	"time"

	"gowatchdog/internal/clock"
)

// ErrProbeTimeout is recorded when a probe does not complete within its
// timeout.
var ErrProbeTimeout = errors.New("detect: probe timed out")

// Prober is an external ping/request prober: it periodically invokes a
// client-visible operation (a ping, an admin "stat" command, a GET) and
// suspects the subject after K consecutive failures or timeouts. This models
// both the classic ping detector and the paper's "admin monitoring command"
// that kept reporting the faulty ZooKeeper leader as healthy.
type Prober struct {
	clk     clock.Clock
	probe   func() error
	timeout time.Duration
	k       int

	mu          sync.Mutex
	consecutive int
	attempts    int64
	failures    int64
}

// NewProber returns a prober that runs probe with the given timeout and
// suspects the subject after k consecutive failures.
func NewProber(clk clock.Clock, timeout time.Duration, k int, probe func() error) *Prober {
	if k <= 0 {
		k = 1
	}
	return &Prober{clk: clk, probe: probe, timeout: timeout, k: k}
}

// ProbeOnce runs a single probe, applying the timeout, and returns the
// probe's error (ErrProbeTimeout if it did not finish in time). A timed-out
// probe goroutine is abandoned.
func (p *Prober) ProbeOnce() error {
	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- errors.New("probe panicked")
			}
		}()
		done <- p.probe()
	}()
	timer := p.clk.NewTimer(p.timeout)
	defer timer.Stop()
	var err error
	select {
	case err = <-done:
	case <-timer.C():
		err = ErrProbeTimeout
	}
	p.mu.Lock()
	p.attempts++
	if err != nil {
		p.failures++
		p.consecutive++
	} else {
		p.consecutive = 0
	}
	p.mu.Unlock()
	return err
}

// Suspect reports whether the last K probes all failed.
func (p *Prober) Suspect() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.consecutive >= p.k
}

// Stats returns total attempts and failures.
func (p *Prober) Stats() (attempts, failures int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.attempts, p.failures
}
