package detect

import (
	"sync"
	"time"

	"gowatchdog/internal/clock"
)

// ObsStatus is the health status carried by one observation.
type ObsStatus int

const (
	// ObsHealthy is positive evidence: a request to the subject succeeded.
	ObsHealthy ObsStatus = iota
	// ObsUnhealthy is negative evidence: a request failed or timed out.
	ObsUnhealthy
)

// String returns the status name.
func (s ObsStatus) String() string {
	if s == ObsHealthy {
		return "healthy"
	}
	return "unhealthy"
}

// Observation is one piece of evidence captured on a requester's path, in
// the style of Panorama (OSDI '18): any component that makes a request to
// the subject becomes a logical observer and reports what it saw, tagged
// with the interaction context (e.g. "get", "replicate").
type Observation struct {
	// Observer identifies who saw the evidence.
	Observer string
	// Subject identifies the monitored component.
	Subject string
	// Context is the interaction type the evidence came from.
	Context string
	// Status is the evidence polarity.
	Status ObsStatus
	// Time is when the evidence was captured.
	Time time.Time
}

// Verdict is the aggregated health decision for a subject.
type Verdict int

const (
	// VerdictPending means no evidence has been seen.
	VerdictPending Verdict = iota
	// VerdictHealthy means recent evidence is positive in every context.
	VerdictHealthy
	// VerdictUnhealthy means recent negative evidence dominates in some
	// context.
	VerdictUnhealthy
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictHealthy:
		return "healthy"
	case VerdictUnhealthy:
		return "unhealthy"
	default:
		return "pending"
	}
}

// Panorama aggregates requester-side observations into per-subject verdicts
// with a bounded look-back: within the look-back window, negative evidence
// in any (observer, context) pair dominates positive evidence, because a
// failing interaction is a stronger signal than a succeeding one.
type Panorama struct {
	clk      clock.Clock
	lookback time.Duration

	mu sync.Mutex
	// latest negative and positive evidence per subject/observer/context
	neg map[string]map[string]time.Time // subject -> observer|context -> time
	pos map[string]map[string]time.Time
}

// NewPanorama returns an aggregator with the given evidence look-back.
func NewPanorama(clk clock.Clock, lookback time.Duration) *Panorama {
	return &Panorama{
		clk:      clk,
		lookback: lookback,
		neg:      make(map[string]map[string]time.Time),
		pos:      make(map[string]map[string]time.Time),
	}
}

// Report submits an observation.
func (p *Panorama) Report(o Observation) {
	key := o.Observer + "|" + o.Context
	if o.Time.IsZero() {
		o.Time = p.clk.Now()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.pos
	if o.Status == ObsUnhealthy {
		m = p.neg
	}
	sub := m[o.Subject]
	if sub == nil {
		sub = make(map[string]time.Time)
		m[o.Subject] = sub
	}
	if o.Time.After(sub[key]) {
		sub[key] = o.Time
	}
	// Newer positive evidence on the same observer/context supersedes older
	// negative evidence (the interaction works again).
	if o.Status == ObsHealthy {
		if nm := p.neg[o.Subject]; nm != nil {
			if t, ok := nm[key]; ok && o.Time.After(t) {
				delete(nm, key)
			}
		}
	}
}

// VerdictFor returns the current verdict for subject.
func (p *Panorama) VerdictFor(subject string) Verdict {
	now := p.clk.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	anyEvidence := false
	for _, t := range p.neg[subject] {
		if now.Sub(t) <= p.lookback {
			return VerdictUnhealthy
		}
		anyEvidence = true
	}
	for _, t := range p.pos[subject] {
		if now.Sub(t) <= p.lookback {
			return VerdictHealthy
		}
		anyEvidence = true
	}
	if anyEvidence {
		// All evidence is stale; without fresh interactions Panorama cannot
		// decide, which is precisely its blind spot for idle-path failures.
		return VerdictPending
	}
	return VerdictPending
}

// Evidence returns the number of live (within look-back) negative and
// positive evidence entries for subject.
func (p *Panorama) Evidence(subject string) (neg, pos int) {
	now := p.clk.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, t := range p.neg[subject] {
		if now.Sub(t) <= p.lookback {
			neg++
		}
	}
	for _, t := range p.pos[subject] {
		if now.Sub(t) <= p.lookback {
			pos++
		}
	}
	return neg, pos
}
