package detect

import (
	"errors"
	"testing"
	"time"

	"gowatchdog/internal/clock"
)

func TestHeartbeatNotSuspectBeforeFirstBeat(t *testing.T) {
	v := clock.NewVirtual()
	h := NewHeartbeat(v, time.Second)
	v.Advance(time.Hour)
	if h.Suspect() {
		t.Fatal("suspected before any beat")
	}
}

func TestHeartbeatSuspectAfterTimeout(t *testing.T) {
	v := clock.NewVirtual()
	h := NewHeartbeat(v, 3*time.Second)
	h.Beat()
	v.Advance(2 * time.Second)
	if h.Suspect() {
		t.Fatal("suspected within timeout")
	}
	v.Advance(2 * time.Second)
	if !h.Suspect() {
		t.Fatal("not suspected after timeout")
	}
	// A new beat clears suspicion.
	h.Beat()
	if h.Suspect() {
		t.Fatal("suspected right after beat")
	}
	if h.Beats() != 2 {
		t.Fatalf("Beats = %d", h.Beats())
	}
	if _, ok := h.LastBeat(); !ok {
		t.Fatal("LastBeat reports no beats")
	}
}

func TestHeartbeatMissesPartialFailure(t *testing.T) {
	// The defining limitation (Table 1): as long as the heartbeat thread
	// runs, the detector never suspects, no matter what the request pipeline
	// is doing.
	v := clock.NewVirtual()
	h := NewHeartbeat(v, 3*time.Second)
	for i := 0; i < 100; i++ {
		h.Beat() // heartbeat thread alive while (hypothetically) writes hang
		v.Advance(time.Second)
	}
	if h.Suspect() {
		t.Fatal("heartbeat detector suspected a process with a live heartbeat thread")
	}
}

func TestPhiAccrualRisesWithSilence(t *testing.T) {
	v := clock.NewVirtual()
	p := NewPhiAccrual(v, 16, 100*time.Millisecond)
	for i := 0; i < 10; i++ {
		p.Beat()
		v.Advance(time.Second)
	}
	p.Beat()
	low := p.Phi()
	v.Advance(30 * time.Second)
	high := p.Phi()
	if high <= low {
		t.Fatalf("phi did not rise with silence: %v -> %v", low, high)
	}
	if !p.Suspect(1) {
		t.Fatalf("phi = %v, expected suspicion after 30s silence", high)
	}
}

func TestPhiAccrualLowRightAfterBeat(t *testing.T) {
	v := clock.NewVirtual()
	p := NewPhiAccrual(v, 16, 100*time.Millisecond)
	if p.Phi() != 0 {
		t.Fatal("phi nonzero with <2 beats")
	}
	for i := 0; i < 5; i++ {
		p.Beat()
		v.Advance(time.Second)
	}
	p.Beat()
	if p.Suspect(1) {
		t.Fatalf("suspected immediately after beat, phi=%v", p.Phi())
	}
}

func TestProberSuspectAfterKFailures(t *testing.T) {
	v := clock.NewVirtual()
	fail := false
	p := NewProber(v, time.Hour, 3, func() error {
		if fail {
			return errors.New("refused")
		}
		return nil
	})
	for i := 0; i < 5; i++ {
		if err := p.ProbeOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Suspect() {
		t.Fatal("suspect after successes")
	}
	fail = true
	p.ProbeOnce()
	p.ProbeOnce()
	if p.Suspect() {
		t.Fatal("suspect before k failures")
	}
	p.ProbeOnce()
	if !p.Suspect() {
		t.Fatal("not suspect after k failures")
	}
	// One success resets the streak.
	fail = false
	p.ProbeOnce()
	if p.Suspect() {
		t.Fatal("suspect after success reset")
	}
	att, f := p.Stats()
	if att != 9 || f != 3 {
		t.Fatalf("stats = %d, %d", att, f)
	}
}

func TestProberTimeout(t *testing.T) {
	v := clock.NewVirtual()
	block := make(chan struct{})
	started := make(chan struct{}, 4)
	p := NewProber(v, 5*time.Second, 1, func() error {
		started <- struct{}{}
		<-block
		return nil
	})
	errCh := make(chan error, 1)
	go func() { errCh <- p.ProbeOnce() }()
	<-started
	v.BlockUntil(1)
	v.Advance(5 * time.Second)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrProbeTimeout) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("ProbeOnce did not return after timeout")
	}
	if !p.Suspect() {
		t.Fatal("not suspect after timeout with k=1")
	}
	close(block)
}

func TestProberPanicIsFailure(t *testing.T) {
	v := clock.NewVirtual()
	p := NewProber(v, time.Hour, 1, func() error { panic("probe crashed") })
	if err := p.ProbeOnce(); err == nil {
		t.Fatal("panicking probe reported success")
	}
	if !p.Suspect() {
		t.Fatal("not suspect after panic")
	}
}

func TestPanoramaNegativeDominates(t *testing.T) {
	v := clock.NewVirtual()
	p := NewPanorama(v, time.Minute)
	if p.VerdictFor("kvs") != VerdictPending {
		t.Fatal("verdict before evidence")
	}
	p.Report(Observation{Observer: "client1", Subject: "kvs", Context: "get", Status: ObsHealthy})
	if p.VerdictFor("kvs") != VerdictHealthy {
		t.Fatal("not healthy after positive evidence")
	}
	p.Report(Observation{Observer: "client2", Subject: "kvs", Context: "set", Status: ObsUnhealthy})
	if p.VerdictFor("kvs") != VerdictUnhealthy {
		t.Fatal("negative evidence did not dominate")
	}
	neg, pos := p.Evidence("kvs")
	if neg != 1 || pos != 1 {
		t.Fatalf("evidence = %d neg, %d pos", neg, pos)
	}
}

func TestPanoramaRecoveryOnSameContext(t *testing.T) {
	v := clock.NewVirtual()
	p := NewPanorama(v, time.Minute)
	p.Report(Observation{Observer: "c", Subject: "s", Context: "set", Status: ObsUnhealthy})
	v.Advance(time.Second)
	// The same observer/context succeeding later supersedes the negative.
	p.Report(Observation{Observer: "c", Subject: "s", Context: "set", Status: ObsHealthy})
	if got := p.VerdictFor("s"); got != VerdictHealthy {
		t.Fatalf("verdict = %v, want healthy", got)
	}
}

func TestPanoramaEvidenceExpires(t *testing.T) {
	v := clock.NewVirtual()
	p := NewPanorama(v, time.Minute)
	p.Report(Observation{Observer: "c", Subject: "s", Context: "get", Status: ObsUnhealthy})
	if p.VerdictFor("s") != VerdictUnhealthy {
		t.Fatal("not unhealthy with fresh negative evidence")
	}
	v.Advance(2 * time.Minute)
	if got := p.VerdictFor("s"); got != VerdictPending {
		t.Fatalf("verdict with stale evidence = %v, want pending", got)
	}
}

func TestPanoramaBlindToUnexercisedPaths(t *testing.T) {
	// Panorama only sees what requesters exercise: if clients only GET, a
	// broken flusher produces no negative evidence and the verdict stays
	// healthy — the limitation that motivates intrinsic watchdogs (§1).
	v := clock.NewVirtual()
	p := NewPanorama(v, time.Minute)
	for i := 0; i < 50; i++ {
		p.Report(Observation{Observer: "client", Subject: "kvs", Context: "get", Status: ObsHealthy})
		v.Advance(time.Second)
	}
	if p.VerdictFor("kvs") != VerdictHealthy {
		t.Fatal("healthy GETs should yield healthy verdict despite broken flusher")
	}
}

func TestStatusAndVerdictStrings(t *testing.T) {
	if ObsHealthy.String() != "healthy" || ObsUnhealthy.String() != "unhealthy" {
		t.Fatal("ObsStatus strings")
	}
	if VerdictPending.String() != "pending" || VerdictHealthy.String() != "healthy" ||
		VerdictUnhealthy.String() != "unhealthy" {
		t.Fatal("Verdict strings")
	}
}
