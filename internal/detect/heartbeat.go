// Package detect implements the extrinsic failure detectors the paper
// compares watchdogs against (Table 1, §6): heartbeat-based crash failure
// detectors (simple timeout and φ-accrual), an external ping prober, and a
// Panorama-style requester-side observer with verdict aggregation.
//
// These detectors treat the monitored software as a coarse-grained node: a
// process is assumed healthy as long as it does *something* periodically.
// The experiments show exactly where that assumption breaks — a process
// whose heartbeat thread is alive while its request pipeline is wedged
// (ZOOKEEPER-2201) stays "healthy" forever under every detector in this
// package.
package detect

import (
	"math"
	"sync"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/gauge"
)

// Heartbeat is a simple timeout-based crash failure detector. The monitored
// process calls Beat periodically; the detector suspects the process once no
// beat has arrived within the timeout.
type Heartbeat struct {
	clk     clock.Clock
	timeout time.Duration

	mu    sync.Mutex
	last  time.Time
	beats int64
}

// NewHeartbeat returns a detector that suspects the subject after timeout
// without a beat.
func NewHeartbeat(clk clock.Clock, timeout time.Duration) *Heartbeat {
	return &Heartbeat{clk: clk, timeout: timeout}
}

// Beat records a heartbeat from the monitored process.
func (h *Heartbeat) Beat() {
	h.mu.Lock()
	h.last = h.clk.Now()
	h.beats++
	h.mu.Unlock()
}

// Suspect reports whether the subject has missed its heartbeat deadline.
// Before the first beat the subject is not suspected (it may still be
// starting up).
func (h *Heartbeat) Suspect() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.beats == 0 {
		return false
	}
	return h.clk.Since(h.last) > h.timeout
}

// LastBeat returns the time of the most recent beat and whether any beat has
// been received.
func (h *Heartbeat) LastBeat() (time.Time, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last, h.beats > 0
}

// Beats returns the total number of beats received.
func (h *Heartbeat) Beats() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.beats
}

// PhiAccrual is the φ-accrual failure detector: instead of a binary timeout
// it outputs a suspicion level φ = -log10(P(beat still pending)), assuming
// inter-arrival times are normally distributed over a sliding window.
type PhiAccrual struct {
	clk clock.Clock

	mu        sync.Mutex
	last      time.Time
	intervals *gauge.Window
	beats     int64
	minStdDev time.Duration
}

// NewPhiAccrual returns a φ-accrual detector with a window of the last n
// inter-arrival samples. minStdDev guards against a zero variance when
// beats are perfectly regular (as on a virtual clock).
func NewPhiAccrual(clk clock.Clock, n int, minStdDev time.Duration) *PhiAccrual {
	if minStdDev <= 0 {
		minStdDev = 10 * time.Millisecond
	}
	return &PhiAccrual{clk: clk, intervals: gauge.NewWindow(n), minStdDev: minStdDev}
}

// Beat records a heartbeat arrival.
func (p *PhiAccrual) Beat() {
	p.mu.Lock()
	now := p.clk.Now()
	if p.beats > 0 {
		p.intervals.Observe(float64(now.Sub(p.last)))
	}
	p.last = now
	p.beats++
	p.mu.Unlock()
}

// Phi returns the current suspicion level. 0 means just heard from the
// subject; conventionally φ ≥ 8 is treated as failed.
func (p *PhiAccrual) Phi() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.beats < 2 || p.intervals.Len() == 0 {
		return 0
	}
	mean := p.intervals.Mean()
	std := p.intervals.Std()
	if std < float64(p.minStdDev) {
		std = float64(p.minStdDev)
	}
	elapsed := float64(p.clk.Since(p.last))
	// P(no beat yet) under N(mean, std); φ = -log10 of the tail probability.
	y := (elapsed - mean) / std
	tail := 0.5 * math.Erfc(y/math.Sqrt2)
	if tail < 1e-12 {
		tail = 1e-12
	}
	return -math.Log10(tail)
}

// Suspect reports whether φ exceeds the given threshold.
func (p *PhiAccrual) Suspect(threshold float64) bool { return p.Phi() >= threshold }
