package detect

import (
	"sync"
	"time"

	"gowatchdog/internal/clock"
)

// LayerStatus is one spy layer's view of its target.
type LayerStatus int

const (
	// LayerUnknown means the spy has no evidence yet.
	LayerUnknown LayerStatus = iota
	// LayerUp means the layer's liveness signal is current.
	LayerUp
	// LayerDown means the layer's liveness signal expired.
	LayerDown
)

// String returns the status name.
func (s LayerStatus) String() string {
	switch s {
	case LayerUp:
		return "up"
	case LayerDown:
		return "down"
	default:
		return "unknown"
	}
}

// Falcon is a simplified Falcon-style (SOSP '11) spy network: a chain of
// layered spies (application, process, OS), each watching its target's
// liveness signal at its own layer. The composite verdict is DOWN as soon
// as any layer is down — layer-specific evidence beats a generic timeout —
// which makes detection faster than end-to-end timeouts for fail-stop
// failures.
//
// Like the other extrinsic detectors, every layer's signal can be perfectly
// healthy while part of the process is wedged: Falcon shares the
// limitation the paper notes ("hierarchical spies ... has similar
// limitations"), which experiment E5 demonstrates.
type Falcon struct {
	clk clock.Clock

	mu     sync.Mutex
	layers []*falconLayer
}

type falconLayer struct {
	name    string
	timeout time.Duration
	last    time.Time
	seen    bool
}

// NewFalcon returns an empty spy chain.
func NewFalcon(clk clock.Clock) *Falcon {
	return &Falcon{clk: clk}
}

// AddLayer registers a spy layer (e.g. "app", "process", "os") whose signal
// must recur within timeout. It returns the feed function the layer's
// liveness source calls.
func (f *Falcon) AddLayer(name string, timeout time.Duration) func() {
	layer := &falconLayer{name: name, timeout: timeout}
	f.mu.Lock()
	f.layers = append(f.layers, layer)
	f.mu.Unlock()
	return func() {
		f.mu.Lock()
		layer.last = f.clk.Now()
		layer.seen = true
		f.mu.Unlock()
	}
}

// LayerStatuses returns each layer's current status, in registration order.
func (f *Falcon) LayerStatuses() map[string]LayerStatus {
	now := f.clk.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]LayerStatus, len(f.layers))
	for _, l := range f.layers {
		switch {
		case !l.seen:
			out[l.name] = LayerUnknown
		case now.Sub(l.last) > l.timeout:
			out[l.name] = LayerDown
		default:
			out[l.name] = LayerUp
		}
	}
	return out
}

// Suspect reports whether any layer with evidence is down.
func (f *Falcon) Suspect() bool {
	for _, st := range f.LayerStatuses() {
		if st == LayerDown {
			return true
		}
	}
	return false
}

// DownLayers returns the names of layers currently down.
func (f *Falcon) DownLayers() []string {
	var out []string
	for name, st := range f.LayerStatuses() {
		if st == LayerDown {
			out = append(out, name)
		}
	}
	return out
}
