package detect

import (
	"testing"
	"time"

	"gowatchdog/internal/clock"
)

func TestFalconUnknownBeforeEvidence(t *testing.T) {
	v := clock.NewVirtual()
	f := NewFalcon(v)
	f.AddLayer("app", time.Second)
	if f.Suspect() {
		t.Fatal("suspect with no evidence")
	}
	if got := f.LayerStatuses()["app"]; got != LayerUnknown {
		t.Fatalf("status = %v", got)
	}
}

func TestFalconLayerDownAfterTimeout(t *testing.T) {
	v := clock.NewVirtual()
	f := NewFalcon(v)
	appFeed := f.AddLayer("app", time.Second)
	procFeed := f.AddLayer("process", 5*time.Second)
	appFeed()
	procFeed()
	v.Advance(500 * time.Millisecond)
	if f.Suspect() {
		t.Fatal("suspect while all layers fresh")
	}
	// The app layer times out first; the process layer is still fresh — a
	// layered detector localizes the dead layer.
	v.Advance(time.Second)
	if !f.Suspect() {
		t.Fatal("not suspect after app-layer timeout")
	}
	down := f.DownLayers()
	if len(down) != 1 || down[0] != "app" {
		t.Fatalf("down = %v", down)
	}
	if f.LayerStatuses()["process"] != LayerUp {
		t.Fatal("process layer should still be up")
	}
}

func TestFalconRecovers(t *testing.T) {
	v := clock.NewVirtual()
	f := NewFalcon(v)
	feed := f.AddLayer("app", time.Second)
	feed()
	v.Advance(2 * time.Second)
	if !f.Suspect() {
		t.Fatal("not suspect")
	}
	feed()
	if f.Suspect() {
		t.Fatal("still suspect after fresh signal")
	}
}

func TestFalconMissesPartialFailure(t *testing.T) {
	// The paper's point about hierarchical spies: all layer signals keep
	// flowing while a component inside the process is wedged.
	v := clock.NewVirtual()
	f := NewFalcon(v)
	appFeed := f.AddLayer("app", time.Second)
	procFeed := f.AddLayer("process", time.Second)
	osFeed := f.AddLayer("os", time.Second)
	for i := 0; i < 100; i++ {
		appFeed() // the serving thread answers...
		procFeed()
		osFeed()
		v.Advance(500 * time.Millisecond)
		// ...while (hypothetically) the write pipeline is wedged.
	}
	if f.Suspect() {
		t.Fatal("falcon suspected a process with live layer signals")
	}
}

func TestLayerStatusStrings(t *testing.T) {
	want := map[LayerStatus]string{LayerUnknown: "unknown", LayerUp: "up", LayerDown: "down"}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("LayerStatus(%d) = %q", int(s), s.String())
		}
	}
}
