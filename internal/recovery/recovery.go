// Package recovery implements the paper's §5.2 "cheap recovery"
// opportunity: because watchdog alarms localize the failing operation and
// carry its context, recovery can replace the corrupted object, connection
// or component instead of restarting the whole process — the microreboot
// idea driven by watchdog pinpointing.
//
// A Manager subscribes to a watchdog driver's alarms and applies the first
// registered Action that matches the report. Repeated alarms from the same
// checker escalate: after MaxAttempts failed or ineffective recoveries
// within the escalation window, the Escalation action (typically "restart
// the process") runs instead.
package recovery

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/watchdog"
)

// Action attempts to repair the failure an alarm describes.
type Action interface {
	// Name identifies the action in the event log.
	Name() string
	// Matches reports whether this action applies to the report.
	Matches(rep watchdog.Report) bool
	// Recover attempts the repair; a nil return means the repair was
	// applied (not necessarily that the fault is gone — the watchdog will
	// re-check).
	Recover(rep watchdog.Report) error
}

// ActionFunc adapts functions to the Action interface.
type ActionFunc struct {
	// ActionName is returned by Name.
	ActionName string
	// Match is invoked by Matches.
	Match func(rep watchdog.Report) bool
	// Fn is invoked by Recover.
	Fn func(rep watchdog.Report) error
}

// Name implements Action.
func (a ActionFunc) Name() string { return a.ActionName }

// Matches implements Action.
func (a ActionFunc) Matches(rep watchdog.Report) bool { return a.Match(rep) }

// Recover implements Action.
func (a ActionFunc) Recover(rep watchdog.Report) error { return a.Fn(rep) }

// ForChecker returns an action matching alarms from checkers whose name has
// the given prefix.
func ForChecker(name, prefix string, fn func(rep watchdog.Report) error) Action {
	return ActionFunc{
		ActionName: name,
		Match: func(rep watchdog.Report) bool {
			return strings.HasPrefix(rep.Checker, prefix)
		},
		Fn: fn,
	}
}

// ForSiteOp returns an action matching alarms whose pinpointed operation
// contains the given substring — recovery keyed on the localization the
// watchdog provides.
func ForSiteOp(name, opSubstr string, fn func(rep watchdog.Report) error) Action {
	return ActionFunc{
		ActionName: name,
		Match: func(rep watchdog.Report) bool {
			return strings.Contains(rep.Site.Op, opSubstr)
		},
		Fn: fn,
	}
}

// EventKind classifies recovery log entries.
type EventKind int

const (
	// EventRecovered means an action ran successfully.
	EventRecovered EventKind = iota
	// EventFailed means the matched action returned an error.
	EventFailed
	// EventEscalated means the escalation action ran.
	EventEscalated
	// EventUnmatched means no action matched the alarm.
	EventUnmatched
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case EventRecovered:
		return "recovered"
	case EventFailed:
		return "failed"
	case EventEscalated:
		return "escalated"
	default:
		return "unmatched"
	}
}

// Event is one entry in the recovery log.
type Event struct {
	// Kind classifies the entry.
	Kind EventKind
	// Checker is the alarming checker.
	Checker string
	// Action is the action that ran (empty for unmatched).
	Action string
	// Err is the action error for EventFailed.
	Err error
	// Time is when the event was recorded.
	Time time.Time
}

// Manager routes alarms to actions with per-checker escalation.
type Manager struct {
	clk         clock.Clock
	maxAttempts int
	window      time.Duration
	escalation  Action

	mu       sync.Mutex
	actions  []Action
	attempts map[string][]time.Time
	events   []Event
}

// Option configures a Manager.
type Option func(*Manager)

// WithClock sets the clock (default real).
func WithClock(c clock.Clock) Option { return func(m *Manager) { m.clk = c } }

// WithMaxAttempts sets how many recoveries per checker are tried within the
// window before escalating (default 3).
func WithMaxAttempts(n int) Option { return func(m *Manager) { m.maxAttempts = n } }

// WithWindow sets the escalation window (default 1 minute).
func WithWindow(d time.Duration) Option { return func(m *Manager) { m.window = d } }

// WithEscalation sets the last-resort action (e.g. full restart).
func WithEscalation(a Action) Option { return func(m *Manager) { m.escalation = a } }

// New returns a Manager.
func New(opts ...Option) *Manager {
	m := &Manager{
		clk:         clock.Real(),
		maxAttempts: 3,
		window:      time.Minute,
		attempts:    make(map[string][]time.Time),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Register appends an action; actions are tried in registration order.
func (m *Manager) Register(a Action) {
	m.mu.Lock()
	m.actions = append(m.actions, a)
	m.mu.Unlock()
}

// HandleAlarm routes one alarm. Wire it with driver.OnAlarm(m.HandleAlarm).
// Alarms the validation chain dismissed (Validated == false) are ignored —
// no recovery for impact-free faults.
func (m *Manager) HandleAlarm(a watchdog.Alarm) {
	if a.Validated != nil && !*a.Validated {
		return
	}
	rep := a.Report
	now := m.clk.Now()

	m.mu.Lock()
	// Escalation bookkeeping: recent attempts for this checker.
	recent := m.attempts[rep.Checker][:0]
	for _, t := range m.attempts[rep.Checker] {
		if now.Sub(t) <= m.window {
			recent = append(recent, t)
		}
	}
	m.attempts[rep.Checker] = append(recent, now)
	attemptCount := len(m.attempts[rep.Checker])
	escalate := attemptCount > m.maxAttempts && m.escalation != nil
	var action Action
	if !escalate {
		for _, cand := range m.actions {
			if cand.Matches(rep) {
				action = cand
				break
			}
		}
	}
	m.mu.Unlock()

	switch {
	case escalate:
		err := m.escalation.Recover(rep)
		m.log(Event{Kind: EventEscalated, Checker: rep.Checker,
			Action: m.escalation.Name(), Err: err, Time: now})
	case action == nil:
		m.log(Event{Kind: EventUnmatched, Checker: rep.Checker, Time: now})
	default:
		err := action.Recover(rep)
		kind := EventRecovered
		if err != nil {
			kind = EventFailed
		}
		m.log(Event{Kind: kind, Checker: rep.Checker, Action: action.Name(),
			Err: err, Time: now})
	}
}

func (m *Manager) log(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of the recovery log.
func (m *Manager) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Summary renders the log compactly.
func (m *Manager) Summary() string {
	var b strings.Builder
	for _, e := range m.Events() {
		fmt.Fprintf(&b, "[%s] checker=%s action=%s", e.Kind, e.Checker, e.Action)
		if e.Err != nil {
			fmt.Fprintf(&b, " err=%v", e.Err)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
