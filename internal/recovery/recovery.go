// Package recovery implements the paper's §5.2 "cheap recovery"
// opportunity: because watchdog alarms localize the failing operation and
// carry its context, recovery can replace the corrupted object, connection
// or component instead of restarting the whole process — the microreboot
// idea driven by watchdog pinpointing.
//
// A Manager subscribes to a watchdog driver's alarms and applies the first
// registered Action that matches the report. Repeated alarms from the same
// checker escalate: after MaxAttempts failed or ineffective recoveries
// within the escalation window, the Escalation action (typically "restart
// the process") runs instead.
package recovery

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/watchdog"
)

// Action attempts to repair the failure an alarm describes.
type Action interface {
	// Name identifies the action in the event log.
	Name() string
	// Matches reports whether this action applies to the report.
	Matches(rep watchdog.Report) bool
	// Recover attempts the repair; a nil return means the repair was
	// applied (not necessarily that the fault is gone — the watchdog will
	// re-check).
	Recover(rep watchdog.Report) error
}

// ActionFunc adapts functions to the Action interface.
type ActionFunc struct {
	// ActionName is returned by Name.
	ActionName string
	// Match is invoked by Matches.
	Match func(rep watchdog.Report) bool
	// Fn is invoked by Recover.
	Fn func(rep watchdog.Report) error
}

// Name implements Action.
func (a ActionFunc) Name() string { return a.ActionName }

// Matches implements Action.
func (a ActionFunc) Matches(rep watchdog.Report) bool { return a.Match(rep) }

// Recover implements Action.
func (a ActionFunc) Recover(rep watchdog.Report) error { return a.Fn(rep) }

// ForChecker returns an action matching alarms from checkers whose name has
// the given prefix.
func ForChecker(name, prefix string, fn func(rep watchdog.Report) error) Action {
	return ActionFunc{
		ActionName: name,
		Match: func(rep watchdog.Report) bool {
			return strings.HasPrefix(rep.Checker, prefix)
		},
		Fn: fn,
	}
}

// ForSiteOp returns an action matching alarms whose pinpointed operation
// contains the given substring — recovery keyed on the localization the
// watchdog provides.
func ForSiteOp(name, opSubstr string, fn func(rep watchdog.Report) error) Action {
	return ActionFunc{
		ActionName: name,
		Match: func(rep watchdog.Report) bool {
			return strings.Contains(rep.Site.Op, opSubstr)
		},
		Fn: fn,
	}
}

// EventKind classifies recovery log entries.
type EventKind int

const (
	// EventRecovered means an action ran successfully.
	EventRecovered EventKind = iota
	// EventFailed means the matched action returned an error.
	EventFailed
	// EventEscalated means the escalation action ran.
	EventEscalated
	// EventUnmatched means no action matched the alarm.
	EventUnmatched
	// EventRetried means an attempt failed and a retry is scheduled; only
	// the final failure of a cycle is logged as EventFailed.
	EventRetried
	// EventExited means the escalation-exit rung fired: in-process recovery
	// is out of options and the process is terminating so an external
	// supervisor can restart it (WithEscalationExit).
	EventExited
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case EventRecovered:
		return "recovered"
	case EventFailed:
		return "failed"
	case EventEscalated:
		return "escalated"
	case EventRetried:
		return "retried"
	case EventExited:
		return "exited"
	default:
		return "unmatched"
	}
}

// Event is one entry in the recovery log.
type Event struct {
	// Kind classifies the entry.
	Kind EventKind
	// Checker is the alarming checker.
	Checker string
	// Action is the action that ran (empty for unmatched).
	Action string
	// Err is the action error for EventFailed/EventRetried.
	Err error
	// Time is when the event was recorded.
	Time time.Time
	// Attempt is the zero-based attempt number within a recovery cycle.
	Attempt int
}

// Manager routes alarms to actions with per-checker escalation. A failed
// action optionally retries with exponential backoff (WithRetry); a whole
// recovery cycle — initial attempt plus retries — counts as one attempt
// toward escalation only once it completes, so a transiently-failing repair
// that succeeds on retry never escalates. Sustained checker health clears
// the escalation state (WithHealthyReset).
type Manager struct {
	clk          clock.Clock
	maxAttempts  int
	window       time.Duration
	escalation   Action
	retries      int
	retryBase    time.Duration
	healthyReset time.Duration
	eventCap     int

	exitArmed bool
	exitCode  int
	exitFn    func(int)

	mu        sync.Mutex
	actions   []Action
	attempts  map[string][]time.Time
	lastCycle map[string]time.Time   // per-checker completion time of the last cycle
	escalated map[string][]time.Time // per-checker escalation-action runs in the window
	ring      []Event                // fixed-size event ring, eventCap entries
	ringNext  int
	ringTotal int64
	onEvent   []func(Event)  // live listeners, invoked outside the lock
	wg        sync.WaitGroup // in-flight retry goroutines
}

// Option configures a Manager.
type Option func(*Manager)

// WithClock sets the clock (default real).
func WithClock(c clock.Clock) Option { return func(m *Manager) { m.clk = c } }

// WithMaxAttempts sets how many recoveries per checker are tried within the
// window before escalating (default 3).
func WithMaxAttempts(n int) Option { return func(m *Manager) { m.maxAttempts = n } }

// WithWindow sets the escalation window (default 1 minute).
func WithWindow(d time.Duration) Option { return func(m *Manager) { m.window = d } }

// WithEscalation sets the last-resort action (e.g. full restart).
func WithEscalation(a Action) Option { return func(m *Manager) { m.escalation = a } }

// WithRetry makes failed actions retry up to n more times with exponential
// backoff starting at base (base, 2·base, 4·base, …). Retries run on a
// background goroutine paced by the manager's clock; use Wait in tests. The
// default (0) keeps the original fail-once behaviour.
func WithRetry(n int, base time.Duration) Option {
	return func(m *Manager) {
		m.retries = n
		m.retryBase = base
	}
}

// WithHealthyReset clears a checker's escalation state once it has stayed
// healthy for d after its last recovery cycle. Wire the manager with
// driver.OnReport(m.ObserveReport) to feed it health signals. Zero means the
// escalation window (the default).
func WithHealthyReset(d time.Duration) Option { return func(m *Manager) { m.healthyReset = d } }

// WithEventCap sets the event-ring capacity (default 1024). Older events are
// dropped and counted once the ring wraps.
func WithEventCap(n int) Option { return func(m *Manager) { m.eventCap = n } }

// WithEscalationExit arms the top rung of the ladder: terminate the process
// with the given exit code so an external supervisor restarts it. It fires
// when a checker re-alarms past the escalation threshold after the
// escalation action has already run within the window — or immediately at
// the threshold when no escalation action is registered. EventExited is
// logged (and delivered to OnEvent listeners, e.g. the sdnotify trigger)
// before exiting. Use supervise.ExitWatchdogTrigger (70) so wdsuper records
// the restart cause as watchdog-trigger.
func WithEscalationExit(code int) Option {
	return func(m *Manager) {
		m.exitArmed = true
		m.exitCode = code
	}
}

// WithExitFunc replaces os.Exit for the escalation-exit rung (test seam —
// the replacement should not return for production use).
func WithExitFunc(fn func(code int)) Option { return func(m *Manager) { m.exitFn = fn } }

// New returns a Manager.
func New(opts ...Option) *Manager {
	m := &Manager{
		clk:         clock.Real(),
		maxAttempts: 3,
		window:      time.Minute,
		eventCap:    1024,
		exitFn:      os.Exit,
		attempts:    make(map[string][]time.Time),
		lastCycle:   make(map[string]time.Time),
		escalated:   make(map[string][]time.Time),
	}
	for _, o := range opts {
		o(m)
	}
	if m.eventCap < 1 {
		m.eventCap = 1
	}
	if m.healthyReset <= 0 {
		m.healthyReset = m.window
	}
	if m.retryBase <= 0 {
		m.retryBase = time.Second
	}
	m.ring = make([]Event, 0, m.eventCap)
	return m
}

// Register appends an action; actions are tried in registration order.
func (m *Manager) Register(a Action) {
	m.mu.Lock()
	m.actions = append(m.actions, a)
	m.mu.Unlock()
}

// HandleAlarm routes one alarm. Wire it with driver.OnAlarm(m.HandleAlarm).
// Alarms the validation chain dismissed (Validated == false) are ignored —
// no recovery for impact-free faults.
func (m *Manager) HandleAlarm(a watchdog.Alarm) {
	if a.Validated != nil && !*a.Validated {
		return
	}
	rep := a.Report
	now := m.clk.Now()

	m.mu.Lock()
	// Escalation bookkeeping: completed recovery cycles for this checker
	// inside the window. The current cycle is counted when it completes
	// (finishCycle), so retries inside one cycle are one attempt.
	recent := m.attempts[rep.Checker][:0]
	for _, t := range m.attempts[rep.Checker] {
		if now.Sub(t) <= m.window {
			recent = append(recent, t)
		}
	}
	m.attempts[rep.Checker] = recent
	escalate := len(recent) >= m.maxAttempts && (m.escalation != nil || m.exitArmed)
	exitNow := false
	if escalate && m.exitArmed {
		// The exit rung fires once escalation itself has been given a chance:
		// either an escalation run is already on record inside the window, or
		// there is no escalation action to try at all.
		esc := m.escalated[rep.Checker][:0]
		for _, t := range m.escalated[rep.Checker] {
			if now.Sub(t) <= m.window {
				esc = append(esc, t)
			}
		}
		m.escalated[rep.Checker] = esc
		exitNow = m.escalation == nil || len(esc) > 0
	}
	if escalate && !exitNow && m.exitArmed {
		m.escalated[rep.Checker] = append(m.escalated[rep.Checker], now)
	}
	var action Action
	if !escalate {
		for _, cand := range m.actions {
			if cand.Matches(rep) {
				action = cand
				break
			}
		}
	}
	m.mu.Unlock()

	switch {
	case exitNow:
		// Logged first so OnEvent listeners (journal, sdnotify trigger) run
		// before the process dies — exitFn normally never returns.
		m.log(Event{Kind: EventExited, Checker: rep.Checker, Time: now})
		m.exitFn(m.exitCode)
	case escalate:
		err := m.escalation.Recover(rep)
		m.log(Event{Kind: EventEscalated, Checker: rep.Checker,
			Action: m.escalation.Name(), Err: err, Time: now})
	case action == nil:
		m.log(Event{Kind: EventUnmatched, Checker: rep.Checker, Time: now})
	default:
		err := action.Recover(rep)
		if err == nil {
			m.log(Event{Kind: EventRecovered, Checker: rep.Checker,
				Action: action.Name(), Time: now})
			m.finishCycle(rep.Checker, now)
			return
		}
		if m.retries <= 0 {
			m.log(Event{Kind: EventFailed, Checker: rep.Checker,
				Action: action.Name(), Err: err, Time: now})
			m.finishCycle(rep.Checker, now)
			return
		}
		m.log(Event{Kind: EventRetried, Checker: rep.Checker,
			Action: action.Name(), Err: err, Time: now})
		m.wg.Add(1)
		go m.retryLoop(action, rep)
	}
}

// retryLoop re-runs action with exponential backoff until it succeeds or the
// retry budget is exhausted, then completes the cycle.
func (m *Manager) retryLoop(action Action, rep watchdog.Report) {
	defer m.wg.Done()
	delay := m.retryBase
	for attempt := 1; attempt <= m.retries; attempt++ {
		m.clk.Sleep(delay)
		delay *= 2
		err := action.Recover(rep)
		now := m.clk.Now()
		switch {
		case err == nil:
			m.log(Event{Kind: EventRecovered, Checker: rep.Checker,
				Action: action.Name(), Time: now, Attempt: attempt})
			m.finishCycle(rep.Checker, now)
			return
		case attempt == m.retries:
			m.log(Event{Kind: EventFailed, Checker: rep.Checker,
				Action: action.Name(), Err: err, Time: now, Attempt: attempt})
			m.finishCycle(rep.Checker, now)
			return
		default:
			m.log(Event{Kind: EventRetried, Checker: rep.Checker,
				Action: action.Name(), Err: err, Time: now, Attempt: attempt})
		}
	}
}

// finishCycle records one completed recovery cycle toward escalation.
func (m *Manager) finishCycle(checker string, at time.Time) {
	m.mu.Lock()
	m.attempts[checker] = append(m.attempts[checker], at)
	m.lastCycle[checker] = at
	m.mu.Unlock()
}

// ObserveReport feeds checker health back into escalation state: once a
// checker has stayed healthy for the healthy-reset period after its last
// recovery cycle, its attempt history is cleared. Wire it with
// driver.OnReport(m.ObserveReport).
func (m *Manager) ObserveReport(rep watchdog.Report) {
	if rep.Status != watchdog.StatusHealthy {
		return
	}
	now := m.clk.Now()
	m.mu.Lock()
	if last, ok := m.lastCycle[rep.Checker]; ok && now.Sub(last) >= m.healthyReset {
		delete(m.attempts, rep.Checker)
		delete(m.lastCycle, rep.Checker)
		delete(m.escalated, rep.Checker)
	}
	m.mu.Unlock()
}

// Wait blocks until all in-flight retry cycles have completed; tests use it
// to make retry outcomes deterministic.
func (m *Manager) Wait() { m.wg.Wait() }

// OnEvent registers fn to receive every subsequent recovery log entry —
// wdruntime journals them as KindRecovery detection events so temporal rules
// and wdreplay see recovery outcomes next to the detections that caused
// them. Listeners run synchronously on the logging goroutine (which may be a
// retry goroutine), outside the manager lock; they must not block. Register
// before the manager starts handling alarms.
func (m *Manager) OnEvent(fn func(Event)) {
	m.mu.Lock()
	m.onEvent = append(m.onEvent, fn)
	m.mu.Unlock()
}

func (m *Manager) log(e Event) {
	m.mu.Lock()
	if len(m.ring) < m.eventCap {
		m.ring = append(m.ring, e)
	} else {
		m.ring[m.ringNext] = e
	}
	m.ringNext = (m.ringNext + 1) % m.eventCap
	m.ringTotal++
	fns := m.onEvent
	m.mu.Unlock()
	for _, fn := range fns {
		fn(e)
	}
}

// Events returns a copy of the retained recovery log, oldest first. Once
// more than the event cap (WithEventCap) have been logged, the oldest are
// gone; DroppedEvents counts them.
func (m *Manager) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, 0, len(m.ring))
	if len(m.ring) < m.eventCap {
		out = append(out, m.ring...)
		return out
	}
	out = append(out, m.ring[m.ringNext:]...)
	out = append(out, m.ring[:m.ringNext]...)
	return out
}

// TotalEvents returns how many events have ever been logged (retained plus
// dropped) — the denominator the observability layer pairs with
// DroppedEvents.
func (m *Manager) TotalEvents() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ringTotal
}

// DroppedEvents returns how many events fell out of the bounded ring.
func (m *Manager) DroppedEvents() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := m.ringTotal - int64(len(m.ring)); n > 0 {
		return n
	}
	return 0
}

// Summary renders the log compactly.
func (m *Manager) Summary() string {
	var b strings.Builder
	if dropped := m.DroppedEvents(); dropped > 0 {
		fmt.Fprintf(&b, "(%d earlier events dropped)\n", dropped)
	}
	for _, e := range m.Events() {
		fmt.Fprintf(&b, "[%s] checker=%s action=%s", e.Kind, e.Checker, e.Action)
		if e.Attempt > 0 {
			fmt.Fprintf(&b, " attempt=%d", e.Attempt)
		}
		if e.Err != nil {
			fmt.Fprintf(&b, " err=%v", e.Err)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
