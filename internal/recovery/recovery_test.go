package recovery

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/kvs"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

func alarmFor(checker string, site watchdog.Site) watchdog.Alarm {
	return watchdog.Alarm{Report: watchdog.Report{
		Checker: checker,
		Status:  watchdog.StatusError,
		Site:    site,
	}}
}

func TestActionMatchingInRegistrationOrder(t *testing.T) {
	m := New()
	var ran []string
	m.Register(ForChecker("first", "kvs.", func(watchdog.Report) error {
		ran = append(ran, "first")
		return nil
	}))
	m.Register(ForChecker("second", "kvs.flusher", func(watchdog.Report) error {
		ran = append(ran, "second")
		return nil
	}))
	m.HandleAlarm(alarmFor("kvs.flusher", watchdog.Site{}))
	if len(ran) != 1 || ran[0] != "first" {
		t.Fatalf("ran = %v, want [first]", ran)
	}
	ev := m.Events()
	if len(ev) != 1 || ev[0].Kind != EventRecovered || ev[0].Action != "first" {
		t.Fatalf("events = %+v", ev)
	}
}

func TestForSiteOpMatching(t *testing.T) {
	m := New()
	ran := false
	m.Register(ForSiteOp("reconnect", "net.Write", func(watchdog.Report) error {
		ran = true
		return nil
	}))
	m.HandleAlarm(alarmFor("anything", watchdog.Site{Op: "net.Write"}))
	if !ran {
		t.Fatal("site-op action did not run")
	}
	m.HandleAlarm(alarmFor("anything", watchdog.Site{Op: "sstable.Write"}))
	ev := m.Events()
	if len(ev) != 2 || ev[1].Kind != EventUnmatched {
		t.Fatalf("events = %+v", ev)
	}
}

func TestFailedActionLogged(t *testing.T) {
	m := New()
	boom := errors.New("repair failed")
	m.Register(ForChecker("bad", "x", func(watchdog.Report) error { return boom }))
	m.HandleAlarm(alarmFor("x.y", watchdog.Site{}))
	ev := m.Events()
	if len(ev) != 1 || ev[0].Kind != EventFailed || !errors.Is(ev[0].Err, boom) {
		t.Fatalf("events = %+v", ev)
	}
}

func TestEscalationAfterMaxAttempts(t *testing.T) {
	v := clock.NewVirtual()
	escalated := 0
	m := New(
		WithClock(v),
		WithMaxAttempts(2),
		WithWindow(time.Minute),
		WithEscalation(ActionFunc{
			ActionName: "restart-process",
			Match:      func(watchdog.Report) bool { return true },
			Fn:         func(watchdog.Report) error { escalated++; return nil },
		}),
	)
	attempts := 0
	m.Register(ForChecker("component-restart", "kvs.", func(watchdog.Report) error {
		attempts++
		return nil
	}))
	for i := 0; i < 4; i++ {
		m.HandleAlarm(alarmFor("kvs.flusher", watchdog.Site{}))
		v.Advance(time.Second)
	}
	if attempts != 2 {
		t.Fatalf("component attempts = %d, want 2", attempts)
	}
	if escalated != 2 {
		t.Fatalf("escalations = %d, want 2", escalated)
	}
	// Outside the window the counter resets and the cheap action runs again.
	v.Advance(2 * time.Minute)
	m.HandleAlarm(alarmFor("kvs.flusher", watchdog.Site{}))
	if attempts != 3 {
		t.Fatalf("attempts after window reset = %d, want 3", attempts)
	}
}

func TestDismissedAlarmsIgnored(t *testing.T) {
	m := New()
	ran := false
	m.Register(ForChecker("a", "", func(watchdog.Report) error { ran = true; return nil }))
	notImpactful := false
	m.HandleAlarm(watchdog.Alarm{
		Report:    watchdog.Report{Checker: "c", Status: watchdog.StatusError},
		Validated: &notImpactful,
	})
	if ran {
		t.Fatal("recovery ran for a probe-dismissed alarm")
	}
	if len(m.Events()) != 0 {
		t.Fatalf("events = %+v", m.Events())
	}
}

func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EventRecovered: "recovered", EventFailed: "failed",
		EventEscalated: "escalated", EventUnmatched: "unmatched",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("EventKind(%d) = %q", int(k), k.String())
		}
	}
}

func TestSummaryRendersEvents(t *testing.T) {
	m := New()
	m.Register(ForChecker("fix", "kvs", func(watchdog.Report) error { return nil }))
	m.HandleAlarm(alarmFor("kvs.wal", watchdog.Site{}))
	s := m.Summary()
	for _, want := range []string{"recovered", "kvs.wal", "fix"} {
		if !contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool { return len(s) >= len(sub) && (s == sub || index(s, sub) >= 0) }

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestEndToEndKVSCorruptionRepair is the §5.2 scenario in full: the
// watchdog's partition checker detects silent corruption, the recovery
// manager quarantines the corrupt table, and the store — without a restart —
// passes verification again while data covered by healthy state stays
// readable.
func TestEndToEndKVSCorruptionRepair(t *testing.T) {
	dir := t.TempDir()
	factory := watchdog.NewFactory()
	store, err := kvs.Open(kvs.Config{Dir: dir, FlushThresholdBytes: 1 << 30,
		WatchdogFactory: factory})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	shadow, err := wdio.NewFS(filepath.Join(dir, "wd-shadow"), 0)
	if err != nil {
		t.Fatal(err)
	}
	driver := watchdog.New(watchdog.WithFactory(factory), watchdog.WithTimeout(time.Second))
	store.InstallWatchdog(driver, shadow)

	m := New()
	m.Register(ForSiteOp("quarantine-corrupt-tables", "sstable.VerifyChecksum",
		func(rep watchdog.Report) error {
			for i := 0; i < store.Partitions(); i++ {
				if _, err := store.RepairPartition(i); err != nil {
					return err
				}
			}
			return nil
		}))
	driver.OnAlarm(m.HandleAlarm)

	// Two generations of data: an older table (stays healthy) and a newer
	// one (gets corrupted).
	store.Set([]byte("Aold"), []byte("from-old-table"))
	store.FlushAll(true)
	store.Set([]byte("Anew"), []byte("from-new-table"))
	store.FlushAll(true)
	p0 := 0 // keys starting with 'A' (0x41) live in partition 1 of 4
	for i := 0; i < store.Partitions(); i++ {
		if store.TableCount(i) == 2 {
			p0 = i
		}
	}
	paths := store.TablePaths(p0)
	if len(paths) != 2 {
		t.Fatalf("tables = %d", len(paths))
	}
	data, _ := os.ReadFile(paths[0]) // newest
	data[9] ^= 0x40
	os.WriteFile(paths[0], data, 0o644)

	// Detection: the partition checker alarms; recovery runs synchronously.
	rep, _ := driver.CheckNow("kvs.partition")
	if rep.Status != watchdog.StatusError {
		t.Fatalf("checker = %v", rep.Status)
	}
	ev := m.Events()
	if len(ev) != 1 || ev[0].Kind != EventRecovered {
		t.Fatalf("recovery events = %+v", ev)
	}

	// Post-recovery: verification passes, the corrupt table is quarantined,
	// and old data is still served.
	rep, _ = driver.CheckNow("kvs.partition")
	if rep.Status != watchdog.StatusHealthy {
		t.Fatalf("checker after repair = %v err=%v", rep.Status, rep.Err)
	}
	if store.TableCount(p0) != 1 {
		t.Fatalf("tables after repair = %d", store.TableCount(p0))
	}
	if _, err := os.Stat(paths[0] + ".corrupt"); err != nil {
		t.Fatalf("corrupt table not quarantined: %v", err)
	}
	v, ok, err := store.Get([]byte("Aold"))
	if err != nil || !ok || string(v) != "from-old-table" {
		t.Fatalf("old data lost: %q %v %v", v, ok, err)
	}
	if store.Metrics().Counter("kvs.repairs").Value() == 0 {
		t.Fatal("repair counter not incremented")
	}
}

// TestEventRingOverflow: the bounded event ring keeps the newest events in
// oldest-first order once it wraps, and DroppedEvents accounts for the rest —
// including under concurrent alarm handling (meaningful under -race).
func TestEventRingOverflow(t *testing.T) {
	m := New(WithEventCap(4))
	m.Register(ForChecker("fix", "c.", func(watchdog.Report) error { return nil }))
	for i := 0; i < 10; i++ {
		m.HandleAlarm(alarmFor(fmt.Sprintf("c.%d", i), watchdog.Site{}))
	}
	ev := m.Events()
	if len(ev) != 4 {
		t.Fatalf("ring retained %d events, want the cap of 4", len(ev))
	}
	for i, e := range ev {
		if want := fmt.Sprintf("c.%d", 6+i); e.Checker != want {
			t.Fatalf("event[%d] = %s, want %s (newest four, oldest first)", i, e.Checker, want)
		}
	}
	if got := m.DroppedEvents(); got != 6 {
		t.Fatalf("DroppedEvents = %d, want 6", got)
	}

	// Concurrent alarms must not corrupt the ring: total accounting stays
	// exact and the retained window stays at the cap.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				m.HandleAlarm(alarmFor(fmt.Sprintf("c.g%d.%d", g, i), watchdog.Site{}))
			}
		}(g)
	}
	wg.Wait()
	if got := m.DroppedEvents(); got != 10+200-4 {
		t.Fatalf("DroppedEvents after concurrent overflow = %d, want %d", got, 10+200-4)
	}
	if got := len(m.Events()); got != 4 {
		t.Fatalf("ring retained %d events after concurrent overflow, want 4", got)
	}
}

// TestEscalationExitAfterEscalationRan: the exit rung fires only after the
// escalation action has had its chance within the window — the hand-off from
// in-process repair to external restart (wdsuper).
func TestEscalationExitAfterEscalationRan(t *testing.T) {
	v := clock.NewVirtual()
	var (
		escalated int
		exits     []int
	)
	m := New(
		WithClock(v),
		WithMaxAttempts(2),
		WithWindow(time.Minute),
		WithEscalation(ActionFunc{
			ActionName: "restart-component",
			Match:      func(watchdog.Report) bool { return true },
			Fn:         func(watchdog.Report) error { escalated++; return nil },
		}),
		WithEscalationExit(70),
		WithExitFunc(func(code int) { exits = append(exits, code) }),
	)
	m.Register(ForChecker("noop", "kvs.", func(watchdog.Report) error { return nil }))

	// Two cheap attempts, then one escalation, then exit.
	for i := 0; i < 4; i++ {
		m.HandleAlarm(alarmFor("kvs.flusher", watchdog.Site{}))
		v.Advance(time.Second)
	}
	if escalated != 1 {
		t.Fatalf("escalations = %d, want 1 before the exit rung", escalated)
	}
	if len(exits) != 1 || exits[0] != 70 {
		t.Fatalf("exits = %v, want [70]", exits)
	}
	ev := m.Events()
	last := ev[len(ev)-1]
	if last.Kind != EventExited || last.Checker != "kvs.flusher" {
		t.Fatalf("last event = %+v, want EventExited", last)
	}
	if EventExited.String() != "exited" {
		t.Fatalf("EventExited.String() = %q", EventExited.String())
	}
}

// TestEscalationExitWithoutEscalationAction: with no escalation action the
// exit rung fires directly at the threshold.
func TestEscalationExitWithoutEscalationAction(t *testing.T) {
	v := clock.NewVirtual()
	var exits []int
	m := New(
		WithClock(v),
		WithMaxAttempts(2),
		WithEscalationExit(70),
		WithExitFunc(func(code int) { exits = append(exits, code) }),
	)
	m.Register(ForChecker("noop", "kvs.", func(watchdog.Report) error { return nil }))
	for i := 0; i < 3; i++ {
		m.HandleAlarm(alarmFor("kvs.flusher", watchdog.Site{}))
		v.Advance(time.Second)
	}
	if len(exits) != 1 || exits[0] != 70 {
		t.Fatalf("exits = %v, want [70]", exits)
	}
}

// TestEscalationExitClearedByHealth: sustained health clears the escalation
// record, so the next failure cycle starts back at the cheap rung.
func TestEscalationExitClearedByHealth(t *testing.T) {
	v := clock.NewVirtual()
	var (
		escalated int
		exits     []int
	)
	m := New(
		WithClock(v),
		WithMaxAttempts(1),
		WithWindow(time.Minute),
		WithHealthyReset(time.Second),
		WithEscalation(ActionFunc{
			ActionName: "restart-component",
			Match:      func(watchdog.Report) bool { return true },
			Fn:         func(watchdog.Report) error { escalated++; return nil },
		}),
		WithEscalationExit(70),
		WithExitFunc(func(code int) { exits = append(exits, code) }),
	)
	m.Register(ForChecker("noop", "kvs.", func(watchdog.Report) error { return nil }))

	m.HandleAlarm(alarmFor("kvs.flusher", watchdog.Site{})) // cheap
	v.Advance(time.Second)
	m.HandleAlarm(alarmFor("kvs.flusher", watchdog.Site{})) // escalation runs
	if escalated != 1 || len(exits) != 0 {
		t.Fatalf("escalated=%d exits=%v before health", escalated, exits)
	}

	// The escalation repaired it; health holds past the reset period.
	v.Advance(2 * time.Second)
	m.ObserveReport(watchdog.Report{Checker: "kvs.flusher", Status: watchdog.StatusHealthy})

	// A later relapse climbs the ladder from the bottom instead of exiting.
	m.HandleAlarm(alarmFor("kvs.flusher", watchdog.Site{}))
	if len(exits) != 0 {
		t.Fatalf("exits = %v after healthy reset, want none", exits)
	}
}

func TestTotalEvents(t *testing.T) {
	m := New(WithEventCap(2))
	m.Register(ForChecker("noop", "x", func(watchdog.Report) error { return nil }))
	for i := 0; i < 5; i++ {
		m.HandleAlarm(alarmFor("x.y", watchdog.Site{}))
	}
	if m.TotalEvents() != 5 {
		t.Fatalf("TotalEvents = %d, want 5", m.TotalEvents())
	}
	if m.DroppedEvents() != 3 {
		t.Fatalf("DroppedEvents = %d, want 3", m.DroppedEvents())
	}
}
