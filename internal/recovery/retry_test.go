package recovery

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/watchdog"
)

// pumpSleeps advances the virtual clock through n retry-backoff sleeps of at
// most maxDelay each.
func pumpSleeps(v *clock.Virtual, n int, maxDelay time.Duration) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			v.BlockUntil(1)
			v.Advance(maxDelay)
		}
	}()
	return done
}

// TestRetrySucceedsWithoutEscalating is the headline retry scenario: a
// transiently-failing recovery action succeeds on its first retry, the whole
// cycle counts as a single attempt, and escalation never fires.
func TestRetrySucceedsWithoutEscalating(t *testing.T) {
	v := clock.NewVirtual()
	escalated := 0
	m := New(
		WithClock(v),
		WithMaxAttempts(2),
		WithRetry(3, time.Second),
		WithEscalation(ActionFunc{
			ActionName: "restart-process",
			Match:      func(watchdog.Report) bool { return true },
			Fn:         func(watchdog.Report) error { escalated++; return nil },
		}),
	)
	calls := 0
	m.Register(ForChecker("flaky-repair", "kvs.", func(watchdog.Report) error {
		calls++
		if calls == 1 {
			return errors.New("lock held, try again")
		}
		return nil
	}))

	pump := pumpSleeps(v, 1, 8*time.Second)
	m.HandleAlarm(alarmFor("kvs.wal", watchdog.Site{}))
	m.Wait()
	<-pump

	if calls != 2 {
		t.Fatalf("action calls = %d, want 2", calls)
	}
	if escalated != 0 {
		t.Fatalf("escalated = %d, want 0", escalated)
	}
	ev := m.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %+v", ev)
	}
	if ev[0].Kind != EventRetried || ev[0].Attempt != 0 || ev[0].Err == nil {
		t.Fatalf("first event = %+v, want retried attempt 0", ev[0])
	}
	if ev[1].Kind != EventRecovered || ev[1].Attempt != 1 {
		t.Fatalf("second event = %+v, want recovered attempt 1", ev[1])
	}
	// The retry waited the backoff base on the virtual clock.
	if !ev[1].Time.After(ev[0].Time) {
		t.Fatalf("retry did not advance time: %v then %v", ev[0].Time, ev[1].Time)
	}
}

// TestRetryExhaustionCountsOnce: a cycle whose retries all fail logs retried
// events plus one final failure, and contributes exactly one escalation
// attempt.
func TestRetryExhaustionCountsOnce(t *testing.T) {
	v := clock.NewVirtual()
	m := New(WithClock(v), WithMaxAttempts(3), WithRetry(2, time.Second))
	boom := errors.New("still broken")
	m.Register(ForChecker("hopeless", "c.", func(watchdog.Report) error { return boom }))

	pump := pumpSleeps(v, 2, 8*time.Second)
	m.HandleAlarm(alarmFor("c.x", watchdog.Site{}))
	m.Wait()
	<-pump

	var kinds []EventKind
	for _, e := range m.Events() {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{EventRetried, EventRetried, EventFailed}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %v, want %v", kinds, want)
		}
	}
	m.mu.Lock()
	attempts := len(m.attempts["c.x"])
	m.mu.Unlock()
	if attempts != 1 {
		t.Fatalf("escalation attempts = %d, want 1 (one cycle)", attempts)
	}
}

// TestHealthyResetClearsEscalation: sustained health after a recovery cycle
// clears the attempt history, so the next fault gets the cheap action again
// instead of inheriting stale escalation pressure.
func TestHealthyResetClearsEscalation(t *testing.T) {
	v := clock.NewVirtual()
	escalated := 0
	cheap := 0
	m := New(
		WithClock(v),
		WithMaxAttempts(1),
		WithWindow(time.Hour), // window alone will not save us
		WithHealthyReset(30*time.Second),
		WithEscalation(ActionFunc{
			ActionName: "restart",
			Match:      func(watchdog.Report) bool { return true },
			Fn:         func(watchdog.Report) error { escalated++; return nil },
		}),
	)
	m.Register(ForChecker("cheap", "kvs.", func(watchdog.Report) error { cheap++; return nil }))

	m.HandleAlarm(alarmFor("kvs.wal", watchdog.Site{}))
	if cheap != 1 || escalated != 0 {
		t.Fatalf("after first alarm: cheap=%d escalated=%d", cheap, escalated)
	}

	// The checker stays healthy past the reset period; escalation state
	// clears. Reports from other checkers must not clear it.
	v.Advance(30 * time.Second)
	m.ObserveReport(watchdog.Report{Checker: "kvs.other", Status: watchdog.StatusHealthy})
	m.ObserveReport(watchdog.Report{Checker: "kvs.wal", Status: watchdog.StatusError})
	m.mu.Lock()
	kept := len(m.attempts["kvs.wal"])
	m.mu.Unlock()
	if kept != 1 {
		t.Fatalf("attempts cleared by wrong signal: %d", kept)
	}
	m.ObserveReport(watchdog.Report{Checker: "kvs.wal", Status: watchdog.StatusHealthy})

	m.HandleAlarm(alarmFor("kvs.wal", watchdog.Site{}))
	if cheap != 2 || escalated != 0 {
		t.Fatalf("after reset: cheap=%d escalated=%d, want cheap action again", cheap, escalated)
	}

	// Without the reset, the same second alarm would have escalated.
	m.HandleAlarm(alarmFor("kvs.wal", watchdog.Site{}))
	if escalated != 1 {
		t.Fatalf("escalated = %d, want 1 (no health signal in between)", escalated)
	}
}

// TestEventRingBoundsAndDropped: the event log is a fixed-size ring; old
// events drop, the drop count is reported, and order is preserved.
func TestEventRingBoundsAndDropped(t *testing.T) {
	v := clock.NewVirtual()
	m := New(WithClock(v), WithEventCap(4))
	for i := 0; i < 10; i++ {
		// Unmatched alarms: one event each, distinguishable by time.
		m.HandleAlarm(alarmFor("nobody.home", watchdog.Site{}))
		v.Advance(time.Second)
	}
	ev := m.Events()
	if len(ev) != 4 {
		t.Fatalf("retained events = %d, want 4", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if !ev[i].Time.After(ev[i-1].Time) {
			t.Fatalf("ring order broken: %v", ev)
		}
	}
	if got := m.DroppedEvents(); got != 6 {
		t.Fatalf("DroppedEvents = %d, want 6", got)
	}
	if s := m.Summary(); !strings.Contains(s, "6 earlier events dropped") {
		t.Fatalf("summary missing drop note:\n%s", s)
	}
}

// TestRetriedKindString covers the new event kind's rendering.
func TestRetriedKindString(t *testing.T) {
	if EventRetried.String() != "retried" {
		t.Fatalf("EventRetried = %q", EventRetried.String())
	}
}

// TestConcurrentHandleAlarmRace hammers HandleAlarm, ObserveReport, and the
// readers from many goroutines; run under -race via RACE_PKGS.
func TestConcurrentHandleAlarmRace(t *testing.T) {
	var fails atomic.Int64
	m := New(
		WithMaxAttempts(2),
		WithRetry(1, time.Microsecond),
		WithEventCap(64),
		WithEscalation(ActionFunc{
			ActionName: "restart",
			Match:      func(watchdog.Report) bool { return true },
			Fn:         func(watchdog.Report) error { return nil },
		}),
	)
	m.Register(ForChecker("mixed", "c.", func(watchdog.Report) error {
		if fails.Add(1)%3 == 0 {
			return errors.New("transient")
		}
		return nil
	}))

	const goroutines = 8
	const alarmsPer = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			checker := "c." + string(rune('a'+g%4))
			for i := 0; i < alarmsPer; i++ {
				m.HandleAlarm(alarmFor(checker, watchdog.Site{}))
				m.ObserveReport(watchdog.Report{Checker: checker, Status: watchdog.StatusHealthy})
			}
		}(g)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Events()
				m.Summary()
				m.DroppedEvents()
			}
		}
	}()
	wg.Wait()
	m.Wait()
	close(stop)
	readers.Wait()

	if len(m.Events()) == 0 {
		t.Fatal("no events recorded")
	}
	if got := int64(len(m.Events())); got > 64 {
		t.Fatalf("ring exceeded cap: %d", got)
	}
}
