package wdobs

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"gowatchdog/internal/watchdog"
)

func reportEvent(checker string, status watchdog.Status) Event {
	return Event{
		Kind: KindReport,
		Report: watchdog.Report{
			Checker: checker,
			Status:  status,
			Time:    time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		},
	}
}

func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(3)
	for i := 0; i < 5; i++ {
		j.Append(reportEvent(fmt.Sprintf("c%d", i), watchdog.StatusHealthy))
	}
	evs := j.Events()
	if len(evs) != 3 {
		t.Fatalf("len(Events) = %d, want 3", len(evs))
	}
	for i, want := range []string{"c2", "c3", "c4"} {
		if evs[i].Report.Checker != want {
			t.Errorf("event %d checker = %q, want %q", i, evs[i].Report.Checker, want)
		}
		if evs[i].Seq != int64(i+3) {
			t.Errorf("event %d seq = %d, want %d", i, evs[i].Seq, i+3)
		}
	}
	if j.Seq() != 5 {
		t.Errorf("Seq = %d, want 5", j.Seq())
	}
}

func TestJournalSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(2) // smaller than the event count: sink must still see all
	j.SetSink(&buf)
	j.Append(reportEvent("disk", watchdog.StatusHealthy))
	j.Append(reportEvent("disk", watchdog.StatusStuck))
	valid := true
	j.Append(Event{
		Kind:        KindAlarm,
		Report:      watchdog.Report{Checker: "disk", Status: watchdog.StatusStuck, Time: time.Now().UTC()},
		Consecutive: 3,
		Validated:   &valid,
	})

	if err := j.SinkErr(); err != nil {
		t.Fatalf("SinkErr = %v", err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("sink lines = %d, want 3", got)
	}

	evs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	if evs[0].Seq != 1 || evs[2].Seq != 3 {
		t.Errorf("seqs = %d..%d, want 1..3", evs[0].Seq, evs[2].Seq)
	}
	if evs[1].Report.Status != watchdog.StatusStuck {
		t.Errorf("event 1 status = %v, want stuck", evs[1].Report.Status)
	}
	a := evs[2]
	if a.Kind != KindAlarm || a.Consecutive != 3 || a.Validated == nil || !*a.Validated {
		t.Errorf("alarm event mismatch: %+v", a)
	}
}

type failWriter struct{ err error }

func (f failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestJournalSinkErrorDisables(t *testing.T) {
	j := NewJournal(4)
	wantErr := errors.New("disk full")
	j.SetSink(failWriter{err: wantErr})
	j.Append(reportEvent("a", watchdog.StatusError))
	if err := j.SinkErr(); !errors.Is(err, wantErr) {
		t.Fatalf("SinkErr = %v, want %v", err, wantErr)
	}
	// The ring still records even with a dead sink.
	j.Append(reportEvent("b", watchdog.StatusError))
	if got := len(j.Events()); got != 2 {
		t.Fatalf("len(Events) = %d, want 2", got)
	}
}

func TestReadJournalSkipsBlankAndReportsLine(t *testing.T) {
	good := `{"seq":1,"kind":"report","report":{"checker":"x","status":"healthy","time":"2026-08-05T12:00:00Z"}}`
	evs, err := ReadJournal(strings.NewReader(good + "\n\n" + good + "\n"))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(evs) != 2 {
		t.Fatalf("len = %d, want 2", len(evs))
	}

	_, err = ReadJournal(strings.NewReader(good + "\n{broken\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse error", err)
	}
}

// TestReadJournalLenient: malformed lines are counted and skipped, a trailing
// truncation is flagged as a torn tail, and mid-file damage is not.
func TestReadJournalLenient(t *testing.T) {
	good := `{"seq":1,"kind":"report","report":{"checker":"a","status":"healthy"}}`
	t.Run("clean", func(t *testing.T) {
		events, stats, err := ReadJournalLenient(strings.NewReader(good + "\n" + good + "\n"))
		if err != nil {
			t.Fatalf("ReadJournalLenient: %v", err)
		}
		if len(events) != 2 || stats.Malformed != 0 || stats.TornTail {
			t.Fatalf("clean read: events=%d stats=%+v", len(events), stats)
		}
		if stats.Lines != 2 || stats.Events != 2 {
			t.Fatalf("clean stats = %+v, want 2 lines / 2 events", stats)
		}
	})
	t.Run("torn tail", func(t *testing.T) {
		// The torn final write: the daemon died mid-append.
		events, stats, err := ReadJournalLenient(strings.NewReader(good + "\n" + `{"seq":2,"kind":"rep`))
		if err != nil {
			t.Fatalf("ReadJournalLenient: %v", err)
		}
		if len(events) != 1 || stats.Malformed != 1 || !stats.TornTail {
			t.Fatalf("torn read: events=%d stats=%+v, want 1 event, 1 malformed, torn tail", len(events), stats)
		}
		if stats.FirstMalformedLine != 2 {
			t.Fatalf("first malformed line = %d, want 2", stats.FirstMalformedLine)
		}
	})
	t.Run("mid-file damage is not torn", func(t *testing.T) {
		events, stats, err := ReadJournalLenient(strings.NewReader("garbage\n" + good + "\n"))
		if err != nil {
			t.Fatalf("ReadJournalLenient: %v", err)
		}
		if len(events) != 1 || stats.Malformed != 1 || stats.TornTail {
			t.Fatalf("mid-file read: events=%d stats=%+v, want damage counted but no torn tail", len(events), stats)
		}
		if stats.FirstMalformedLine != 1 {
			t.Fatalf("first malformed line = %d, want 1", stats.FirstMalformedLine)
		}
	})
	t.Run("strict reader still errors", func(t *testing.T) {
		if _, err := ReadJournal(strings.NewReader("garbage\n")); err == nil {
			t.Fatal("strict ReadJournal accepted a malformed line")
		}
	})
}
