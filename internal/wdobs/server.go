package wdobs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"gowatchdog/internal/watchdog"
)

// statusRank orders statuses from benign to severe for /healthz: a daemon
// with any stuck checker is worse off than one with a transient error.
func statusRank(s watchdog.Status) int {
	switch s {
	case watchdog.StatusHealthy:
		return 0
	case watchdog.StatusContextPending, watchdog.StatusSkipped:
		return 1
	case watchdog.StatusSlow:
		return 2
	case watchdog.StatusError:
		return 3
	case watchdog.StatusCrashed:
		return 4
	case watchdog.StatusStuck:
		return 5
	default:
		return 3
	}
}

// Handler returns the observability mux:
//
//	/metrics       Prometheus text exposition (watchdog_* and, with
//	               WithRegistry, app_* series)
//	/healthz       200 when every checker is healthy or context-pending,
//	               503 otherwise; body names the worst checker
//	/watchdog      the JSON Snapshot consumed by cmd/wdstat
//	/debug/pprof/  the standard runtime profiles
func (o *Obs) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", o.serveMetrics)
	mux.HandleFunc("/healthz", o.serveHealthz)
	mux.HandleFunc("/watchdog", o.serveWatchdog)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (o *Obs) serveWatchdog(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(o.Snapshot())
}

func (o *Obs) serveHealthz(w http.ResponseWriter, r *http.Request) {
	snap := o.Snapshot()
	worst := watchdog.StatusHealthy
	worstName := ""
	for _, c := range snap.Checkers {
		if statusRank(c.Status) > statusRank(worst) {
			worst = c.Status
			worstName = c.Name
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if worst.Abnormal() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "unhealthy: checker %q is %s\n", worstName, worst)
		return
	}
	fmt.Fprintf(w, "ok: %d checkers, worst status %s\n", len(snap.Checkers), worst)
}

// escapeLabel escapes a Prometheus label value per the text format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// sanitizeName maps an arbitrary metric name onto the Prometheus name
// alphabet [a-zA-Z0-9_:], replacing everything else with '_'.
func sanitizeName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func (o *Obs) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := o.Snapshot()

	fmt.Fprintf(w, "# HELP watchdog_reports_total Checker executions observed.\n")
	fmt.Fprintf(w, "# TYPE watchdog_reports_total counter\n")
	fmt.Fprintf(w, "watchdog_reports_total %d\n", snap.Reports)
	fmt.Fprintf(w, "# HELP watchdog_alarms_total Alarms raised by the driver.\n")
	fmt.Fprintf(w, "# TYPE watchdog_alarms_total counter\n")
	fmt.Fprintf(w, "watchdog_alarms_total %d\n", snap.Alarms)
	fmt.Fprintf(w, "# HELP watchdog_journal_events_total Detection-journal events appended.\n")
	fmt.Fprintf(w, "# TYPE watchdog_journal_events_total counter\n")
	fmt.Fprintf(w, "watchdog_journal_events_total %d\n", snap.JournalSeq)
	fmt.Fprintf(w, "# HELP watchdog_healthy Whether no checker is currently abnormal.\n")
	fmt.Fprintf(w, "# TYPE watchdog_healthy gauge\n")
	fmt.Fprintf(w, "watchdog_healthy %d\n", boolToInt(snap.Healthy))
	fmt.Fprintf(w, "# HELP watchdog_alarms_suppressed_total Alarms swallowed by flap damping.\n")
	fmt.Fprintf(w, "# TYPE watchdog_alarms_suppressed_total counter\n")
	fmt.Fprintf(w, "watchdog_alarms_suppressed_total %d\n", snap.AlarmsSuppressed)
	fmt.Fprintf(w, "# HELP watchdog_breaker_trips_total Checker circuit-breaker trips.\n")
	fmt.Fprintf(w, "# TYPE watchdog_breaker_trips_total counter\n")
	fmt.Fprintf(w, "watchdog_breaker_trips_total %d\n", snap.BreakerTrips)
	fmt.Fprintf(w, "# HELP watchdog_breaker_skips_total Executions skipped by open breakers.\n")
	fmt.Fprintf(w, "# TYPE watchdog_breaker_skips_total counter\n")
	fmt.Fprintf(w, "watchdog_breaker_skips_total %d\n", snap.BreakerSkips)
	fmt.Fprintf(w, "# HELP watchdog_budget_skips_total Executions skipped by the hang budget.\n")
	fmt.Fprintf(w, "# TYPE watchdog_budget_skips_total counter\n")
	fmt.Fprintf(w, "watchdog_budget_skips_total %d\n", snap.BudgetSkips)
	fmt.Fprintf(w, "# HELP watchdog_hung_leaked Hung checker goroutines currently awaiting reaping.\n")
	fmt.Fprintf(w, "# TYPE watchdog_hung_leaked gauge\n")
	fmt.Fprintf(w, "watchdog_hung_leaked %d\n", snap.LeakedHung)
	if snap.Mesh != nil {
		writeMeshMetrics(w, snap.Mesh)
	}
	if snap.CEP != nil {
		writeCEPMetrics(w, snap.CEP)
	}
	if snap.Recovery != nil {
		writeRecoveryMetrics(w, snap.Recovery)
	}
	if snap.Episodes != nil {
		writeEpisodeMetrics(w, snap.Episodes)
	}

	if len(snap.Checkers) > 0 {
		fmt.Fprintf(w, "# HELP watchdog_checker_runs_total Checker executions by resulting status.\n")
		fmt.Fprintf(w, "# TYPE watchdog_checker_runs_total counter\n")
		for _, c := range snap.Checkers {
			cm := o.checker(c.Name)
			for s := 0; s < numStatuses; s++ {
				n := cm.runs[s].Value()
				if n == 0 {
					continue
				}
				fmt.Fprintf(w, "watchdog_checker_runs_total{checker=%q,status=%q} %d\n",
					escapeLabel(c.Name), watchdog.Status(s).String(), n)
			}
		}
		fmt.Fprintf(w, "# HELP watchdog_checker_transitions_total Status changes between consecutive reports.\n")
		fmt.Fprintf(w, "# TYPE watchdog_checker_transitions_total counter\n")
		for _, c := range snap.Checkers {
			fmt.Fprintf(w, "watchdog_checker_transitions_total{checker=%q} %d\n",
				escapeLabel(c.Name), c.Transitions)
		}
		fmt.Fprintf(w, "# HELP watchdog_checker_stuck_total Liveness-timeout (hang) detections.\n")
		fmt.Fprintf(w, "# TYPE watchdog_checker_stuck_total counter\n")
		for _, c := range snap.Checkers {
			fmt.Fprintf(w, "watchdog_checker_stuck_total{checker=%q} %d\n",
				escapeLabel(c.Name), c.Stuck)
		}
		fmt.Fprintf(w, "# HELP watchdog_checker_status Current status code (0 healthy, 1 context-pending, 2 error, 3 stuck, 4 crashed, 5 slow, 6 skipped).\n")
		fmt.Fprintf(w, "# TYPE watchdog_checker_status gauge\n")
		for _, c := range snap.Checkers {
			fmt.Fprintf(w, "watchdog_checker_status{checker=%q} %d\n",
				escapeLabel(c.Name), int(c.Status))
		}
		fmt.Fprintf(w, "# HELP watchdog_checker_breaker_state Circuit-breaker state (0 closed, 1 half-open, 2 open); absent when no breaker.\n")
		fmt.Fprintf(w, "# TYPE watchdog_checker_breaker_state gauge\n")
		for _, c := range snap.Checkers {
			var code int
			switch c.Breaker {
			case "":
				continue
			case "half-open":
				code = 1
			case "open":
				code = 2
			}
			fmt.Fprintf(w, "watchdog_checker_breaker_state{checker=%q} %d\n",
				escapeLabel(c.Name), code)
		}
		fmt.Fprintf(w, "# HELP watchdog_checker_breaker_trips_total Breaker trips per checker.\n")
		fmt.Fprintf(w, "# TYPE watchdog_checker_breaker_trips_total counter\n")
		for _, c := range snap.Checkers {
			if c.Breaker == "" {
				continue
			}
			fmt.Fprintf(w, "watchdog_checker_breaker_trips_total{checker=%q} %d\n",
				escapeLabel(c.Name), c.BreakerTrips)
		}
		fmt.Fprintf(w, "# HELP watchdog_checker_flaps_total Alarms suppressed by damping per checker.\n")
		fmt.Fprintf(w, "# TYPE watchdog_checker_flaps_total counter\n")
		for _, c := range snap.Checkers {
			fmt.Fprintf(w, "watchdog_checker_flaps_total{checker=%q} %d\n",
				escapeLabel(c.Name), c.Flaps)
		}
		fmt.Fprintf(w, "# HELP watchdog_context_staleness_seconds Time since the checker context last synced; -1 when never.\n")
		fmt.Fprintf(w, "# TYPE watchdog_context_staleness_seconds gauge\n")
		for _, c := range snap.Checkers {
			stale := -1.0
			if c.Context.StalenessNS >= 0 {
				stale = float64(c.Context.StalenessNS) / float64(time.Second)
			}
			fmt.Fprintf(w, "watchdog_context_staleness_seconds{checker=%q} %g\n",
				escapeLabel(c.Name), stale)
		}
		fmt.Fprintf(w, "# HELP watchdog_check_duration_seconds Checker execution latency.\n")
		fmt.Fprintf(w, "# TYPE watchdog_check_duration_seconds histogram\n")
		for _, c := range snap.Checkers {
			hs := o.checker(c.Name).latency.Snapshot()
			name := escapeLabel(c.Name)
			var cum int64
			for i, bound := range hs.Bounds {
				cum += hs.Buckets[i]
				fmt.Fprintf(w, "watchdog_check_duration_seconds_bucket{checker=%q,le=\"%g\"} %d\n",
					name, bound.Seconds(), cum)
			}
			cum += hs.Buckets[len(hs.Bounds)]
			fmt.Fprintf(w, "watchdog_check_duration_seconds_bucket{checker=%q,le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(w, "watchdog_check_duration_seconds_sum{checker=%q} %g\n", name, hs.Sum.Seconds())
			fmt.Fprintf(w, "watchdog_check_duration_seconds_count{checker=%q} %d\n", name, hs.Count)
		}
	}

	o.mu.RLock()
	reg := o.registry
	o.mu.RUnlock()
	if reg != nil {
		app := reg.Snapshot()
		names := make([]string, 0, len(app))
		for n := range app {
			names = append(names, n)
		}
		sort.Strings(names)
		if len(names) > 0 {
			fmt.Fprintf(w, "# HELP app_metric Application gauge-registry metric (windows report their mean).\n")
			fmt.Fprintf(w, "# TYPE app_metric gauge\n")
		}
		for _, n := range names {
			fmt.Fprintf(w, "app_metric{name=%q} %g\n", escapeLabel(sanitizeName(n)), app[n])
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Server is a running observability HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability server on addr (e.g. "127.0.0.1:9120" or
// ":0" for an ephemeral port) and returns once it is listening.
func (o *Obs) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wdobs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: o.Handler()}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the server's bound address, useful with ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
