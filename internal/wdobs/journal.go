package wdobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"gowatchdog/internal/watchdog"
)

// Event kinds recorded in the detection journal.
const (
	// KindReport marks a journaled checker report: the checker's first
	// report, any abnormal report, and any status transition (including
	// recovery back to healthy). Steady healthy→healthy ticks are not
	// journaled — the journal is a detection record, not a heartbeat log.
	KindReport = "report"
	// KindAlarm marks a raised alarm.
	KindAlarm = "alarm"
	// KindRecovery marks a recovery-manager outcome (recovered, retried,
	// failed, escalated, unmatched), journaled so temporal rules and
	// wdreplay see recovery activity next to the detections that drove it.
	KindRecovery = "recovery"
)

// Event is one detection-journal entry. Its JSON form is one line of the
// JSONL sink and the unit wdreplay consumes.
type Event struct {
	// Seq is the 1-based append sequence number, monotonic per journal.
	Seq int64 `json:"seq"`
	// Kind is KindReport, KindAlarm, KindMesh, KindRecovery, or KindCEP.
	Kind string `json:"kind"`
	// Report is the journaled report (for alarms, the report that crossed
	// the threshold; for recovery and CEP entries, a synthesized report
	// naming the subject).
	Report watchdog.Report `json:"report"`
	// Consecutive and Validated carry the alarm fields for KindAlarm.
	// KindCEP entries reuse Consecutive for the rule's threshold
	// measurement at fire time.
	Consecutive int   `json:"consecutive,omitempty"`
	Validated   *bool `json:"validated,omitempty"`
	// Rule names the fired temporal rule for KindCEP entries.
	Rule string `json:"rule,omitempty"`
	// Outcome, Action, and Attempt carry the recovery-manager fields for
	// KindRecovery entries.
	Outcome string `json:"outcome,omitempty"`
	Action  string `json:"action,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
}

// Journal is a bounded ring buffer of detection events with an optional
// JSONL sink. Appends past the capacity evict the oldest events; the sink,
// when set, receives every event regardless of eviction.
type Journal struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	seq     int64
	sink    io.Writer
	sinkErr error
	tap     func(Event)
}

// NewJournal returns a journal retaining the last capacity events
// (default 512 when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = 512
	}
	return &Journal{buf: make([]Event, capacity)}
}

// SetSink streams every subsequent event to w as one JSON line. Writes are
// serialized under the journal lock; a write error disables the sink and is
// reported by SinkErr.
func (j *Journal) SetSink(w io.Writer) {
	j.mu.Lock()
	j.sink = w
	j.sinkErr = nil
	j.mu.Unlock()
}

// SinkErr returns the error that disabled the sink, if any.
func (j *Journal) SinkErr() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinkErr
}

// SetTap installs a live event tap: every subsequent appended event is handed
// to fn, sequenced, in append order. The tap runs under the journal lock so
// ordering is exact — it must be non-blocking and must not call back into the
// journal (the wdcep wiring publishes into a lock-free ring, which is safe).
// Pass nil to detach.
func (j *Journal) SetTap(fn func(Event)) {
	j.mu.Lock()
	j.tap = fn
	j.mu.Unlock()
}

// Append assigns the event its sequence number, stores it in the ring, and
// streams it to the sink.
func (j *Journal) Append(e Event) {
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	j.buf[j.next] = e
	j.next++
	if j.next == len(j.buf) {
		j.next = 0
		j.full = true
	}
	if j.sink != nil {
		if data, err := json.Marshal(e); err == nil {
			if _, werr := j.sink.Write(append(data, '\n')); werr != nil {
				j.sinkErr = werr
				j.sink = nil
			}
		}
	}
	if j.tap != nil {
		j.tap(e)
	}
	j.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.full {
		return append([]Event(nil), j.buf[:j.next]...)
	}
	out := make([]Event, 0, len(j.buf))
	out = append(out, j.buf[j.next:]...)
	out = append(out, j.buf[:j.next]...)
	return out
}

// Seq returns the total number of events ever appended.
func (j *Journal) Seq() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// ReadJournal parses a JSONL detection journal, one Event per line, skipping
// blank lines. It is the decoding counterpart of the journal sink, shared by
// wdreplay and anything else replaying a journal file. It is strict: the first
// malformed line aborts the read. Use ReadJournalLenient when the file may end
// in a torn write (a daemon killed mid-append).
func ReadJournal(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	// Report payloads can make lines large; allow up to 4 MiB per event.
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(text, &e); err != nil {
			return nil, fmt.Errorf("wdobs: journal line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wdobs: journal line %d: %w", line, err)
	}
	return events, nil
}

// JournalReadStats accounts for what ReadJournalLenient encountered, so a
// replay over a crashed daemon's journal reports damage instead of silently
// absorbing it.
type JournalReadStats struct {
	// Lines counts non-blank lines seen.
	Lines int
	// Events counts lines that decoded into events.
	Events int
	// Malformed counts lines that failed to decode.
	Malformed int
	// FirstMalformedLine is the 1-based line number of the first decode
	// failure (0 when Malformed == 0).
	FirstMalformedLine int
	// TornTail reports that the final non-blank line was malformed — the
	// signature of a torn final write: the daemon died mid-append and the
	// line was truncated. Mid-file corruption is counted but not flagged
	// as torn.
	TornTail bool
}

// ReadJournalLenient parses a JSONL detection journal, tolerating malformed
// lines: they are counted in the returned stats and skipped rather than
// aborting the read. The error return is reserved for I/O failures (including
// an over-long line overflowing the scanner buffer).
func ReadJournalLenient(r io.Reader) ([]Event, JournalReadStats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var (
		events []Event
		stats  JournalReadStats
		line   int
	)
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		stats.Lines++
		var e Event
		if err := json.Unmarshal(text, &e); err != nil {
			stats.Malformed++
			if stats.FirstMalformedLine == 0 {
				stats.FirstMalformedLine = line
			}
			stats.TornTail = true
			continue
		}
		stats.TornTail = false
		stats.Events++
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return events, stats, fmt.Errorf("wdobs: journal line %d: %w", line, err)
	}
	return events, stats, nil
}
