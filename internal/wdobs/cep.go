package wdobs

import (
	"fmt"
	"io"

	"gowatchdog/internal/wdcep"
)

// KindCEP marks a journaled temporal-rule firing from the wdcep engine: the
// event stream itself crossed a declarative rule's threshold.
const KindCEP = "cep"

// SetCEP wires a wdcep engine snapshot source into the observability
// surface: /watchdog gains a "cep" section and /metrics gains the wdcep_*
// series. Pass nil to detach.
func (o *Obs) SetCEP(fn func() *wdcep.Snapshot) {
	o.mu.Lock()
	o.cepFn = fn
	o.mu.Unlock()
}

// cepSnapshot returns the engine view, or nil when no engine is wired.
func (o *Obs) cepSnapshot() *wdcep.Snapshot {
	o.mu.RLock()
	fn := o.cepFn
	o.mu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// CEPEvent flattens a journal entry into the wdcep engine's wire unit. It is
// the adapter the journal tap publishes through; keeping it here (rather
// than in wdcep) pins the two packages' kind strings to the same values —
// journal kinds are already the engine's kind vocabulary.
func CEPEvent(e Event) wdcep.Event {
	return wdcep.Event{
		Kind:    e.Kind,
		Checker: e.Report.Checker,
		Status:  e.Report.Status,
		Outcome: e.Outcome,
		Rule:    e.Rule,
		Time:    e.Report.Time,
	}
}

// writeCEPMetrics emits the wdcep_* Prometheus series for one engine view.
func writeCEPMetrics(w io.Writer, s *wdcep.Snapshot) {
	fmt.Fprintf(w, "# HELP wdcep_rules Temporal rules loaded.\n")
	fmt.Fprintf(w, "# TYPE wdcep_rules gauge\n")
	fmt.Fprintf(w, "wdcep_rules %d\n", s.Rules)
	fmt.Fprintf(w, "# HELP wdcep_events_published_total Events accepted into the engine ring.\n")
	fmt.Fprintf(w, "# TYPE wdcep_events_published_total counter\n")
	fmt.Fprintf(w, "wdcep_events_published_total %d\n", s.Published)
	fmt.Fprintf(w, "# HELP wdcep_events_dropped_total Events rejected on a full engine ring.\n")
	fmt.Fprintf(w, "# TYPE wdcep_events_dropped_total counter\n")
	fmt.Fprintf(w, "wdcep_events_dropped_total %d\n", s.Dropped)
	fmt.Fprintf(w, "# HELP wdcep_evaluations_total Rule-evaluation passes.\n")
	fmt.Fprintf(w, "# TYPE wdcep_evaluations_total counter\n")
	fmt.Fprintf(w, "wdcep_evaluations_total %d\n", s.Evaluations)
	fmt.Fprintf(w, "# HELP wdcep_fired_total Temporal-rule firings.\n")
	fmt.Fprintf(w, "# TYPE wdcep_fired_total counter\n")
	fmt.Fprintf(w, "wdcep_fired_total %d\n", s.Fired)
	if len(s.RuleStats) > 0 {
		fmt.Fprintf(w, "# HELP wdcep_rule_fired_total Firings per rule.\n")
		fmt.Fprintf(w, "# TYPE wdcep_rule_fired_total counter\n")
		for _, r := range s.RuleStats {
			fmt.Fprintf(w, "wdcep_rule_fired_total{rule=%q,kind=%q} %d\n",
				escapeLabel(r.Name), escapeLabel(string(r.Kind)), r.Fired)
		}
	}
}
