package wdobs

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	var g Gauge
	if got := g.Value(); got != 0 {
		t.Fatalf("zero gauge = %v, want 0", got)
	}
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("Value = %v, want 3.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10*time.Millisecond, 100*time.Millisecond)
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (le is inclusive)
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(50 * time.Millisecond)  // bucket 2
	h.Observe(time.Second)            // overflow

	s := h.Snapshot()
	want := []int64{2, 1, 1, 1}
	for i, n := range want {
		if s.Buckets[i] != n {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i], n)
		}
	}
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	wantSum := 500*time.Microsecond + time.Millisecond + 5*time.Millisecond + 50*time.Millisecond + time.Second
	if s.Sum != wantSum {
		t.Errorf("Sum = %v, want %v", s.Sum, wantSum)
	}
	if mean := s.Mean(); mean != wantSum/5 {
		t.Errorf("Mean = %v, want %v", mean, wantSum/5)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10*time.Millisecond, 20*time.Millisecond, 40*time.Millisecond)
	// 10 observations in the first bucket, 10 in the second.
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
		h.Observe(15 * time.Millisecond)
	}
	s := h.Snapshot()
	// p50 lands exactly at the first bucket's upper bound.
	if q := s.Quantile(0.50); q != 10*time.Millisecond {
		t.Errorf("p50 = %v, want 10ms", q)
	}
	// p75 is halfway through the second bucket (10ms..20ms).
	if q := s.Quantile(0.75); q != 15*time.Millisecond {
		t.Errorf("p75 = %v, want 15ms", q)
	}
	if q := s.Quantile(0); q != time.Duration(float64(10*time.Millisecond)*0.1) {
		t.Errorf("p0 = %v, want 1ms (rank 1 of 10 in first bucket)", q)
	}
}

func TestHistogramQuantileOverflowClips(t *testing.T) {
	h := NewHistogram(time.Millisecond)
	h.Observe(time.Hour)
	if q := h.Snapshot().Quantile(0.99); q != time.Millisecond {
		t.Errorf("overflow quantile = %v, want clip to 1ms", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	s := NewHistogram().Snapshot()
	if q := s.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	if m := s.Mean(); m != 0 {
		t.Errorf("empty mean = %v, want 0", m)
	}
}

func TestNewHistogramRejectsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewHistogram(time.Second, time.Millisecond)
}

// TestHistogramConcurrent exercises Observe against Snapshot/Quantile under
// the race detector (satellite: wdobs histogram concurrency test).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const writers = 8
	const perWriter = 2000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			_ = s.Quantile(0.99)
			_ = s.Mean()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(w*perWriter+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("Count = %d, want %d", s.Count, writers*perWriter)
	}
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d after quiescence", total, s.Count)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value = %d, want 8000", got)
	}
}
