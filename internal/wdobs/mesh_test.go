package wdobs

import (
	"net/http/httptest"
	"strings"
	"testing"

	"gowatchdog/internal/wdmesh"
)

// TestMeshMetrics exercises the /metrics mesh section against a synthetic
// snapshot: aggregate series, transport counters, and the per-peer dropped
// counter that only appears for peers that have actually dropped.
func TestMeshMetrics(t *testing.T) {
	o := New()
	driveObs(t, o, 1)
	o.SetMesh(func() *wdmesh.Snapshot {
		return &wdmesh.Snapshot{
			Self:         "n000",
			Fanout:       3,
			PeersAlive:   2,
			PeersSuspect: 1,
			PeersDemoted: 1,
			DeltaEntries: 42,
			FullSyncs:    5,
			QueueDrops:   9,
			Transport:    &wdmesh.TransportStats{Reconnects: 2, ProtocolErrors: 1, OversizedFrames: 1},
			Peers: []wdmesh.PeerSnapshot{
				{Node: "n001", Observation: wdmesh.ObsOK},
				{Node: "n002", Observation: wdmesh.ObsUnreachable, QueueDrops: 9, Demoted: true},
			},
		}
	})

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	_, body := get(t, srv, "/metrics")
	for _, want := range []string{
		"wdmesh_peers_demoted 1",
		"wdmesh_delta_entries_total 42",
		"wdmesh_full_syncs_total 5",
		"wdmesh_transport_reconnects_total 2",
		"wdmesh_transport_protocol_errors_total 1",
		"wdmesh_transport_oversized_frames_total 1",
		`wdmesh_peer_dropped_total{peer="n002"} 9`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The healthy peer never dropped, so it must not get a dropped series.
	if strings.Contains(body, `wdmesh_peer_dropped_total{peer="n001"}`) {
		t.Errorf("/metrics has a dropped series for a peer with zero drops")
	}

	// The /watchdog JSON view carries the same mesh section.
	_, body = get(t, srv, "/watchdog")
	for _, want := range []string{`"full_syncs": 5`, `"peers_demoted": 1`, `"reconnects": 2`} {
		if !strings.Contains(body, want) {
			t.Errorf("/watchdog missing %s", want)
		}
	}
}
