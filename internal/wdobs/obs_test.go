package wdobs

import (
	"bytes"
	"errors"
	"testing"

	"gowatchdog/internal/watchdog"
)

// driveObs wires an Obs to a driver with one healthy and one failing checker
// and runs each n times via CheckNow.
func driveObs(t *testing.T, o *Obs, failRuns int) *watchdog.Driver {
	t.Helper()
	d := watchdog.New()
	var fail bool
	d.Register(watchdog.NewChecker("ok", func(*watchdog.Context) error { return nil }),
		watchdog.Threshold(2))
	d.Register(watchdog.NewChecker("flaky", func(*watchdog.Context) error {
		if fail {
			return errors.New("injected fault")
		}
		return nil
	}), watchdog.Threshold(2))
	d.Factory().Context("ok").MarkReady()
	d.Factory().Context("flaky").MarkReady()
	o.Attach(d)

	check := func(name string) {
		t.Helper()
		if _, err := d.CheckNow(name); err != nil {
			t.Fatal(err)
		}
	}
	check("ok")
	check("flaky")
	fail = true
	for i := 0; i < failRuns; i++ {
		check("flaky")
	}
	return d
}

func TestObsCountsAndJournal(t *testing.T) {
	var sink bytes.Buffer
	o := New(WithJournal(64), WithSink(&sink))
	driveObs(t, o, 2)

	// 4 executions total: ok×1, flaky×3 (1 healthy + 2 errors).
	if got := o.Reports(); got != 4 {
		t.Errorf("Reports = %d, want 4", got)
	}
	// Threshold 2 → one alarm on the second consecutive error.
	if got := o.Alarms(); got != 1 {
		t.Errorf("Alarms = %d, want 1", got)
	}

	cm := o.checker("flaky")
	if n := cm.runs[watchdog.StatusHealthy].Value(); n != 1 {
		t.Errorf("flaky healthy runs = %d, want 1", n)
	}
	if n := cm.runs[watchdog.StatusError].Value(); n != 2 {
		t.Errorf("flaky error runs = %d, want 2", n)
	}
	if n := cm.transitions.Value(); n != 1 {
		t.Errorf("flaky transitions = %d, want 1 (healthy→error)", n)
	}

	// Journal: first report per checker (2), the two abnormal reports, and
	// the alarm = 5 events. Steady healthy ticks are not journaled.
	evs := o.Journal().Events()
	if len(evs) != 5 {
		t.Fatalf("journal has %d events, want 5: %+v", len(evs), evs)
	}
	var alarms int
	for _, e := range evs {
		if e.Kind == KindAlarm {
			alarms++
			if e.Consecutive != 2 {
				t.Errorf("alarm consecutive = %d, want 2", e.Consecutive)
			}
		}
	}
	if alarms != 1 {
		t.Errorf("journal alarms = %d, want 1", alarms)
	}

	// The sink saw the same events, round-trippable.
	decoded, err := ReadJournal(&sink)
	if err != nil {
		t.Fatalf("ReadJournal(sink): %v", err)
	}
	if len(decoded) != len(evs) {
		t.Errorf("sink events = %d, journal events = %d", len(decoded), len(evs))
	}
}

func TestObsSnapshot(t *testing.T) {
	o := New()
	driveObs(t, o, 2)

	snap := o.Snapshot()
	if snap.Healthy {
		t.Error("snapshot healthy with a failing checker")
	}
	if len(snap.Checkers) != 2 {
		t.Fatalf("snapshot has %d checkers, want 2", len(snap.Checkers))
	}
	byName := map[string]CheckerSnapshot{}
	for _, c := range snap.Checkers {
		byName[c.Name] = c
	}
	ok, flaky := byName["ok"], byName["flaky"]
	if ok.Status != watchdog.StatusHealthy || ok.Runs != 1 {
		t.Errorf("ok snapshot wrong: %+v", ok)
	}
	if flaky.Status != watchdog.StatusError || flaky.Runs != 3 || flaky.Consecutive != 2 {
		t.Errorf("flaky snapshot wrong: %+v", flaky)
	}
	if flaky.LastReport == nil || flaky.LastReport.Err == nil {
		t.Errorf("flaky last report missing error: %+v", flaky.LastReport)
	}
	if ok.Latency.Count != 1 || ok.Latency.P99NS <= 0 {
		t.Errorf("ok latency summary wrong: %+v", ok.Latency)
	}
	if !ok.Context.Ready || ok.Context.StalenessNS < 0 {
		t.Errorf("ok context wrong: %+v", ok.Context)
	}
	if ok.Threshold != 2 {
		t.Errorf("ok threshold = %d, want 2", ok.Threshold)
	}
}

func TestObsSnapshotNoDriver(t *testing.T) {
	o := New()
	snap := o.Snapshot()
	if !snap.Healthy || len(snap.Checkers) != 0 {
		t.Errorf("detached snapshot = %+v", snap)
	}
}
