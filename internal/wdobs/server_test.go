package wdobs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gowatchdog/internal/gauge"
	"gowatchdog/internal/watchdog"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := gauge.NewRegistry()
	reg.Gauge("kvs.queue_depth").Set(7)
	o := New(WithRegistry(reg))
	driveObs(t, o, 2)

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	// /watchdog: full JSON snapshot.
	code, body := get(t, srv, "/watchdog")
	if code != http.StatusOK {
		t.Fatalf("/watchdog status = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/watchdog decode: %v\n%s", err, body)
	}
	if len(snap.Checkers) != 2 || snap.Healthy {
		t.Errorf("/watchdog snapshot = %+v", snap)
	}
	if !strings.Contains(body, `"latency_ns"`) {
		t.Errorf("/watchdog missing stable latency field:\n%s", body)
	}

	// /healthz: 503 while flaky is erroring, names the checker.
	code, body = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/healthz status = %d, want 503", code)
	}
	if !strings.Contains(body, "flaky") || !strings.Contains(body, "error") {
		t.Errorf("/healthz body = %q", body)
	}

	// /metrics: Prometheus text format with the expected series.
	code, body = get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"watchdog_reports_total 4",
		"watchdog_alarms_total 1",
		"watchdog_healthy 0",
		`watchdog_checker_runs_total{checker="flaky",status="error"} 2`,
		`watchdog_checker_runs_total{checker="ok",status="healthy"} 1`,
		`watchdog_checker_transitions_total{checker="flaky"} 1`,
		`watchdog_checker_status{checker="flaky"} 2`,
		`watchdog_check_duration_seconds_bucket{checker="ok",le="+Inf"} 1`,
		`watchdog_check_duration_seconds_count{checker="ok"} 1`,
		`watchdog_context_staleness_seconds{checker="ok"}`,
		`app_metric{name="kvs_queue_depth"} 7`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Histogram bucket counts must be cumulative: +Inf equals _count.
	if !cumulativeBuckets(body, "flaky") {
		t.Errorf("/metrics flaky histogram not cumulative:\n%s", body)
	}

	// /debug/pprof is mounted.
	code, _ = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", code)
	}

	// A healthy-only obs answers /healthz with 200.
	o2 := New()
	d2 := watchdog.New()
	d2.Register(watchdog.NewChecker("fine", func(*watchdog.Context) error { return nil }))
	d2.Factory().Context("fine").MarkReady()
	o2.Attach(d2)
	if _, err := d2.CheckNow("fine"); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(o2.Handler())
	defer srv2.Close()
	code, body = get(t, srv2, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok:") {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
}

// cumulativeBuckets verifies each successive le bucket for the checker is
// monotonically non-decreasing and ends equal to the count.
func cumulativeBuckets(metrics, checker string) bool {
	var prev int64 = -1
	var last, count int64
	var sawBucket, sawCount bool
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, `watchdog_check_duration_seconds_bucket{checker="`+checker+`"`) {
			var v int64
			if _, err := fmtSscan(line, &v); err != nil {
				return false
			}
			if v < prev {
				return false
			}
			prev, last, sawBucket = v, v, true
		}
		if strings.HasPrefix(line, `watchdog_check_duration_seconds_count{checker="`+checker+`"`) {
			if _, err := fmtSscan(line, &count); err != nil {
				return false
			}
			sawCount = true
		}
	}
	return sawBucket && sawCount && last == count
}

// fmtSscan pulls the trailing integer sample value off a metrics line.
func fmtSscan(line string, v *int64) (int, error) {
	idx := strings.LastIndexByte(line, ' ')
	if idx < 0 {
		return 0, io.ErrUnexpectedEOF
	}
	return 1, json.Unmarshal([]byte(line[idx+1:]), v)
}

func TestServeAndClose(t *testing.T) {
	o := New()
	s, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}
