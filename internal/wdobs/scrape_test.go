package wdobs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func scrapeServer(t *testing.T, handler http.HandlerFunc) string {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// TestScrapeRetriesOnceOn5xx: the first 5xx is retried after the backoff and
// the retry's success wins.
func TestScrapeRetriesOnceOn5xx(t *testing.T) {
	var calls atomic.Int64
	addr := scrapeServer(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(Snapshot{Healthy: true, Reports: 42})
	})

	var slept time.Duration
	c := &ScrapeClient{Backoff: time.Millisecond, sleep: func(d time.Duration) { slept = d }}
	snap, err := c.Snapshot(addr)
	if err != nil {
		t.Fatalf("Snapshot after one 5xx: %v", err)
	}
	if snap.Reports != 42 || !snap.Healthy {
		t.Fatalf("snapshot = %+v, want the retried body", snap)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("%d attempts, want exactly 2 (one retry)", got)
	}
	if slept != time.Millisecond {
		t.Fatalf("backoff slept %v, want the configured 1ms", slept)
	}
}

// TestScrapeNoRetryOn4xx: a 404 is a configuration error, not a transient —
// exactly one attempt.
func TestScrapeNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int64
	addr := scrapeServer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.NotFound(w, r)
	})

	c := &ScrapeClient{sleep: func(time.Duration) { t.Fatal("backoff slept on a 4xx") }}
	if _, err := c.Snapshot(addr); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("err = %v, want the 404 surfaced", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d attempts on a 4xx, want 1", got)
	}
}

// TestScrapeRetryExhaustedWrapsBothErrors: two straight failures produce one
// error naming the original failure, the backoff, and the retry failure.
func TestScrapeRetryExhaustedWrapsBothErrors(t *testing.T) {
	addr := scrapeServer(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	})

	c := &ScrapeClient{Backoff: time.Millisecond, sleep: func(time.Duration) {}}
	_, err := c.Snapshot(addr)
	if err == nil {
		t.Fatal("Snapshot succeeded against a permanently failing server")
	}
	if !strings.Contains(err.Error(), "500") || !strings.Contains(err.Error(), "retry after") {
		t.Fatalf("err = %v, want both the original failure and the retry outcome", err)
	}
}

// TestScrapeTransportErrorRetried: a refused connection gets the retry too.
func TestScrapeTransportErrorRetried(t *testing.T) {
	var slept atomic.Int64
	c := &ScrapeClient{
		Timeout: 500 * time.Millisecond,
		Backoff: time.Millisecond,
		sleep:   func(time.Duration) { slept.Add(1) },
	}
	// Reserved port with nothing listening.
	if _, err := c.Snapshot("127.0.0.1:1"); err == nil {
		t.Fatal("Snapshot succeeded against a closed port")
	}
	if slept.Load() != 1 {
		t.Fatalf("backoff ran %d times on a transport error, want 1", slept.Load())
	}
}
