package wdobs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Counter is a lock-free, monotonically increasing count. The zero value is
// ready to use.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d, which must be non-negative.
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("wdobs: negative counter add %d", d))
	}
	c.n.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a lock-free, settable float64. The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultLatencyBuckets spans checker latencies from microsecond in-memory
// checks through the multi-second liveness timeouts of the paper's §4.2
// configuration (1 s interval, 6 s timeout).
var DefaultLatencyBuckets = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram built entirely on atomics:
// Observe is three uncontended atomic adds plus a binary search over the
// bucket bounds, cheap enough for every checker execution (§3.2: watchdogs
// must not slow the program they watch). Scrapes read the same atomics
// without stopping writers, so a snapshot is monitoring-consistent rather
// than a point-in-time cut.
type Histogram struct {
	bounds  []time.Duration // ascending upper bounds
	buckets []atomic.Int64  // len(bounds)+1; last bucket is +Inf
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds, or DefaultLatencyBuckets when none are given.
func NewHistogram(bounds ...time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("wdobs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds:  append([]time.Duration(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration. The bucket search is an open-coded binary
// search: this runs on every checker execution and sort.Search's closure
// dispatch is measurable at that frequency.
func (h *Histogram) Observe(d time.Duration) {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d > h.bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// HistogramSnapshot is a copied view of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Buckets has one extra entry for
	// observations above the last bound.
	Bounds  []time.Duration
	Buckets []int64
	// Count and Sum aggregate all observations.
	Count int64
	Sum   time.Duration
}

// Snapshot copies the current bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     time.Duration(h.sum.Load()),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the mean observation, or 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by nearest rank over the
// buckets with linear interpolation inside the landing bucket. Observations
// in the overflow bucket are attributed to the largest bound — quantiles are
// therefore clipped at Bounds[len-1].
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("wdobs: quantile %v out of range", q))
	}
	// Recompute the total from the copied buckets: Count was loaded at a
	// different instant and may exceed their sum mid-scrape.
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		if cum+n < rank {
			cum += n
			continue
		}
		if i == len(s.Bounds) { // overflow bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := float64(rank-cum) / float64(n)
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return s.Bounds[len(s.Bounds)-1]
}
