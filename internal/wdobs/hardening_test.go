package wdobs

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/watchdog"
)

// TestSnapshotCarriesBreakerAndFlapState: the /watchdog snapshot and /metrics
// exposition surface the driver's self-hardening telemetry.
func TestSnapshotCarriesBreakerAndFlapState(t *testing.T) {
	v := clock.NewVirtual()
	o := New()
	d := watchdog.New(
		watchdog.WithClock(v),
		watchdog.WithBreaker(watchdog.BreakerConfig{Threshold: 2, BackoffBase: time.Hour, JitterFrac: -1}),
		watchdog.WithAlarmDamping(time.Hour),
	)
	d.Register(watchdog.NewChecker("doomed", func(*watchdog.Context) error {
		return errors.New("always broken")
	}))
	d.Register(watchdog.NewChecker("fine", func(*watchdog.Context) error { return nil }),
		watchdog.Breaker(watchdog.BreakerConfig{}))
	d.Factory().Context("doomed").MarkReady()
	d.Factory().Context("fine").MarkReady()
	o.Attach(d)

	for i := 0; i < 4; i++ { // 2 errors trip it, then 2 skips
		d.CheckNow("doomed")
		d.CheckNow("fine")
		v.Advance(time.Second)
	}

	snap := o.Snapshot()
	if snap.BreakerTrips != 1 || snap.BreakerSkips != 2 {
		t.Fatalf("trips=%d skips=%d, want 1/2", snap.BreakerTrips, snap.BreakerSkips)
	}
	// Errors raise one alarm each (threshold 1, streak continues so only the
	// first alarms); damping is configured, nothing flapped yet.
	doomed := snap.Checkers[0]
	if doomed.Name != "doomed" || doomed.Breaker != "open" || doomed.BreakerTrips != 1 {
		t.Fatalf("doomed snapshot = %+v", doomed)
	}
	if doomed.BreakerRetryNS <= 0 {
		t.Fatalf("open breaker retry = %d, want > 0", doomed.BreakerRetryNS)
	}
	if doomed.Status != watchdog.StatusSkipped {
		t.Fatalf("doomed status = %v, want skipped", doomed.Status)
	}
	if fine := snap.Checkers[1]; fine.Breaker != "" || fine.BreakerTrips != 0 {
		t.Fatalf("breaker-disabled checker leaks state: %+v", fine)
	}

	rec := httptest.NewRecorder()
	o.serveMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"watchdog_breaker_trips_total 1",
		"watchdog_breaker_skips_total 2",
		"watchdog_alarms_suppressed_total 0",
		"watchdog_hung_leaked 0",
		`watchdog_checker_breaker_state{checker="doomed"} 2`,
		`watchdog_checker_breaker_trips_total{checker="doomed"} 1`,
		`watchdog_checker_flaps_total{checker="doomed"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(body, `watchdog_checker_breaker_state{checker="fine"}`) {
		t.Error("breaker state exported for breaker-less checker")
	}

	// Skipped reports count as benign for /healthz ranking: a driver whose
	// only abnormal checker is breaker-skipped still reports the underlying
	// fault via Healthy (latest abnormal was replaced by skipped → healthy).
	if statusRank(watchdog.StatusSkipped) != statusRank(watchdog.StatusContextPending) {
		t.Error("skipped not ranked as benign")
	}
}
