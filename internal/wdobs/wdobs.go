// Package wdobs is the watchdog observability subsystem: it makes the
// paper's §3.2 efficiency argument — watchdogs must stay cheap and their
// verdicts must be actionable in production — verifiable at runtime.
//
// A deployed watchdog that detects gray failures but exports nothing about
// what it saw is itself a gray box. wdobs attaches to a watchdog.Driver as
// its Observer and maintains, per checker: run counts by resulting status,
// status-transition counts, an execution-latency histogram, and timeout/hang
// tallies; plus a context-staleness gauge derived from each Context's hook
// sync timestamps. Detections land in a bounded ring-buffer journal with an
// optional JSONL sink that cmd/wdreplay consumes.
//
// Everything is standard library only and lock-cheap: the per-execution path
// is a handful of atomic adds, and a driver without an observer pays one nil
// check (benchmarked in internal/watchdog and here).
//
// The Obs exposes itself over HTTP (see server.go): /metrics in Prometheus
// text format, /healthz for liveness probes, /watchdog as a JSON live
// snapshot for cmd/wdstat, and net/http/pprof under /debug/pprof/.
package wdobs

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"gowatchdog/internal/gauge"
	"gowatchdog/internal/supervise/episode"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdcep"
	"gowatchdog/internal/wdmesh"
)

// numStatuses bounds the per-status counter array; statuses are small ints.
const numStatuses = int(watchdog.StatusSkipped) + 1

// checkerMetrics aggregates one checker's execution telemetry.
type checkerMetrics struct {
	runs        [numStatuses]Counter // executions by resulting status
	transitions Counter              // status changes between consecutive reports
	latency     *Histogram           // execution latency (skips context-pending)
}

// Obs is the observability subsystem for one driver. Create it with New,
// wire it with Attach before the driver starts, and expose it with Serve.
// All methods are safe for concurrent use.
type Obs struct {
	journalCap int
	sinkW      io.Writer
	buckets    []time.Duration

	mu       sync.RWMutex
	checkers map[string]*checkerMetrics
	driver   *watchdog.Driver
	registry *gauge.Registry
	meshFn   func() *wdmesh.Snapshot
	cepFn    func() *wdcep.Snapshot

	recoveryFn func() *RecoverySnapshot
	episodesFn func() *episode.Snapshot

	// last caches the most recently observed checker. Reports for one
	// checker arrive in bursts (CheckNow loops, per-checker schedules), so
	// this turns the common ObserveReport lookup into one atomic load plus a
	// pointer-equal string compare instead of an RWMutex'd map access.
	last atomic.Pointer[checkerCacheEntry]

	journal *Journal
	reports Counter
	alarms  Counter
}

// Option configures an Obs.
type Option func(*Obs)

// WithJournal sets the journal ring capacity (default 512).
func WithJournal(capacity int) Option { return func(o *Obs) { o.journalCap = capacity } }

// WithSink streams every journal event to w as JSONL.
func WithSink(w io.Writer) Option { return func(o *Obs) { o.sinkW = w } }

// WithLatencyBuckets overrides the latency histogram bucket bounds.
func WithLatencyBuckets(bounds ...time.Duration) Option {
	return func(o *Obs) { o.buckets = append([]time.Duration(nil), bounds...) }
}

// WithRegistry additionally exports the main program's gauge.Registry — the
// same metrics signal checkers sample — on /metrics as app_* series.
func WithRegistry(r *gauge.Registry) Option { return func(o *Obs) { o.registry = r } }

// New returns an Obs with the given options applied.
func New(opts ...Option) *Obs {
	o := &Obs{
		journalCap: 512,
		buckets:    DefaultLatencyBuckets,
		checkers:   make(map[string]*checkerMetrics),
	}
	for _, opt := range opts {
		opt(o)
	}
	o.journal = NewJournal(o.journalCap)
	if o.sinkW != nil {
		o.journal.SetSink(o.sinkW)
	}
	return o
}

// Attach registers o as d's execution observer and remembers the driver for
// snapshots. Call before d.Start(), like every other driver wiring.
func (o *Obs) Attach(d *watchdog.Driver) {
	o.mu.Lock()
	o.driver = d
	o.mu.Unlock()
	d.SetObserver(o)
}

// Journal returns the detection journal.
func (o *Obs) Journal() *Journal { return o.journal }

// checkerCacheEntry pairs a checker name with its metrics for the
// last-checker fast path.
type checkerCacheEntry struct {
	name string
	cm   *checkerMetrics
}

// checker returns the metrics for name, creating them on first use.
func (o *Obs) checker(name string) *checkerMetrics {
	if e := o.last.Load(); e != nil && e.name == name {
		return e.cm
	}
	o.mu.RLock()
	cm, ok := o.checkers[name]
	o.mu.RUnlock()
	if !ok {
		o.mu.Lock()
		if cm, ok = o.checkers[name]; !ok {
			cm = &checkerMetrics{latency: NewHistogram(o.buckets...)}
			o.checkers[name] = cm
		}
		o.mu.Unlock()
	}
	o.last.Store(&checkerCacheEntry{name: name, cm: cm})
	return cm
}

// ObserveReport implements watchdog.Observer: count the execution, histogram
// its latency, track status transitions, and journal detections.
func (o *Obs) ObserveReport(rep watchdog.Report, prev watchdog.Status, first bool) {
	o.reports.Inc()
	cm := o.checker(rep.Checker)
	if s := int(rep.Status); s >= 0 && s < numStatuses {
		cm.runs[s].Inc()
	}
	if rep.Status != watchdog.StatusContextPending && rep.Status != watchdog.StatusSkipped {
		cm.latency.Observe(rep.Latency)
	}
	transition := !first && prev != rep.Status
	if transition {
		cm.transitions.Inc()
	}
	if first || transition || rep.Status.Abnormal() {
		o.journal.Append(Event{Kind: KindReport, Report: rep})
	}
}

// ObserveAlarm implements watchdog.Observer.
func (o *Obs) ObserveAlarm(a watchdog.Alarm) {
	o.alarms.Inc()
	o.journal.Append(Event{
		Kind:        KindAlarm,
		Report:      a.Report,
		Consecutive: a.Consecutive,
		Validated:   a.Validated,
	})
}

// Reports returns the total number of observed checker executions.
func (o *Obs) Reports() int64 { return o.reports.Value() }

// Alarms returns the total number of observed alarms.
func (o *Obs) Alarms() int64 { return o.alarms.Value() }
