package wdobs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ScrapeClient fetches /watchdog snapshots from a wdobs server with an
// explicit per-attempt timeout and a single backoff-delayed retry. The CLI
// scrapers (wdstat, wdbench -scrape) share it so a momentarily busy daemon —
// exactly the condition a watchdog inspection tool is pointed at — gets one
// second chance instead of either an instant failure or an unbounded hang.
type ScrapeClient struct {
	// Timeout bounds each attempt end-to-end (dial through body read).
	// Zero means 3s.
	Timeout time.Duration
	// Backoff is the pause before the single retry. Zero means 250ms.
	Backoff time.Duration

	// client overrides the HTTP client in tests; nil builds one from Timeout.
	client *http.Client
	// sleep overrides the backoff pause in tests; nil means time.Sleep.
	sleep func(time.Duration)
}

// NewScrapeClient returns a client with the given per-attempt timeout
// (0 = 3s default).
func NewScrapeClient(timeout time.Duration) *ScrapeClient {
	return &ScrapeClient{Timeout: timeout}
}

func (c *ScrapeClient) httpClient() *http.Client {
	if c.client != nil {
		return c.client
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	return &http.Client{Timeout: timeout}
}

// RawSnapshot GETs http://addr/watchdog and returns the response body. A
// transport error or 5xx response is retried once after the backoff; a 4xx is
// a configuration problem (wrong port, wrong path) and fails immediately.
func (c *ScrapeClient) RawSnapshot(addr string) ([]byte, error) {
	url := "http://" + addr + "/watchdog"
	body, retriable, err := c.get(url)
	if err == nil || !retriable {
		return body, err
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	if c.sleep != nil {
		c.sleep(backoff)
	} else {
		time.Sleep(backoff)
	}
	body, _, retryErr := c.get(url)
	if retryErr != nil {
		return nil, fmt.Errorf("%w (retry after %v: %v)", err, backoff, retryErr)
	}
	return body, nil
}

// Snapshot fetches and decodes one /watchdog snapshot from addr.
func (c *ScrapeClient) Snapshot(addr string) (*Snapshot, error) {
	body, err := c.RawSnapshot(addr)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, fmt.Errorf("decode snapshot from %s: %w", addr, err)
	}
	return &snap, nil
}

// get performs one attempt; retriable reports whether a failure is worth the
// one retry (transport errors and 5xx yes, 4xx no).
func (c *ScrapeClient) get(url string) (body []byte, retriable bool, err error) {
	resp, err := c.httpClient().Get(url)
	if err != nil {
		return nil, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode >= 500, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, true, fmt.Errorf("GET %s: read body: %w", url, err)
	}
	return body, false, nil
}
