package wdobs

import (
	"testing"
	"time"

	"gowatchdog/internal/watchdog"
)

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

// BenchmarkCheckNowBare is the unobserved driver measured in this binary, so
// the WithObs/Bare delta is a same-process comparison rather than two runs.
func BenchmarkCheckNowBare(b *testing.B) {
	d := watchdog.New()
	d.Register(watchdog.NewChecker("bench", func(*watchdog.Context) error { return nil }))
	d.Factory().Context("bench").MarkReady()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.CheckNow("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckNowWithObs measures the full observed execution path: driver
// dispatch plus the real wdobs sink (counters, histogram, transition check).
// Compare against BenchmarkCheckNowBare for the instrumentation overhead
// (acceptance bound: <5%).
func BenchmarkCheckNowWithObs(b *testing.B) {
	o := New()
	d := watchdog.New()
	d.Register(watchdog.NewChecker("bench", func(*watchdog.Context) error { return nil }))
	d.Factory().Context("bench").MarkReady()
	o.Attach(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.CheckNow("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObserveReportSteady(b *testing.B) {
	o := New()
	rep := watchdog.Report{
		Checker: "bench",
		Status:  watchdog.StatusHealthy,
		Latency: 120 * time.Microsecond,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.ObserveReport(rep, watchdog.StatusHealthy, false)
	}
}
