package wdobs

import (
	"time"

	"gowatchdog/internal/supervise/episode"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdcep"
	"gowatchdog/internal/wdmesh"
)

// Snapshot is the live view served on /watchdog and rendered by cmd/wdstat.
// Durations are pinned to nanosecond integers so the JSON schema is stable
// across Go versions.
type Snapshot struct {
	// Time is when the snapshot was assembled.
	Time time.Time `json:"time"`
	// Healthy mirrors Driver.Healthy: no checker currently abnormal.
	Healthy bool `json:"healthy"`
	// Reports and Alarms are process-lifetime totals.
	Reports int64 `json:"reports_total"`
	Alarms  int64 `json:"alarms_total"`
	// JournalSeq is the total number of journal events ever appended.
	JournalSeq int64 `json:"journal_seq"`
	// AlarmsSuppressed counts alarms swallowed by damping; BreakerTrips,
	// BreakerSkips, and BudgetSkips total the driver's self-protection
	// actions; LeakedHung is the current leaked hung-goroutine count. All
	// zero (and omitted) on drivers without the hardening options.
	AlarmsSuppressed int64 `json:"alarms_suppressed_total,omitempty"`
	BreakerTrips     int64 `json:"breaker_trips_total,omitempty"`
	BreakerSkips     int64 `json:"breaker_skips_total,omitempty"`
	BudgetSkips      int64 `json:"budget_skips_total,omitempty"`
	LeakedHung       int   `json:"leaked_hung,omitempty"`
	// Checkers lists every registered checker in registration order.
	Checkers []CheckerSnapshot `json:"checkers"`
	// Mesh is the cluster health-plane view, present when a mesh is wired.
	Mesh *wdmesh.Snapshot `json:"mesh,omitempty"`
	// CEP is the temporal-rule engine view, present when an engine is wired.
	CEP *wdcep.Snapshot `json:"cep,omitempty"`
	// Recovery is the recovery manager's event-ring accounting, present when
	// a manager is wired.
	Recovery *RecoverySnapshot `json:"recovery,omitempty"`
	// Episodes is the supervision plane's outage history, present when an
	// episode ledger is wired (daemons under wdsuper).
	Episodes *episode.Snapshot `json:"episodes,omitempty"`
}

// CheckerSnapshot is one checker's live state.
type CheckerSnapshot struct {
	Name string `json:"name"`
	// Status is the latest report's status, or context-pending before the
	// first execution.
	Status watchdog.Status `json:"status"`
	Paused bool            `json:"paused,omitempty"`
	// IntervalNS/TimeoutNS/Threshold are the checker's schedule policy.
	IntervalNS int64 `json:"interval_ns"`
	TimeoutNS  int64 `json:"timeout_ns"`
	Threshold  int   `json:"threshold"`
	// Runs/Abnormal/Consecutive mirror the driver's ledger counters.
	Runs        int64 `json:"runs"`
	Abnormal    int64 `json:"abnormal"`
	Consecutive int   `json:"consecutive"`
	// Transitions counts status changes between consecutive reports; Stuck
	// counts liveness-timeout reports (the hang tally).
	Transitions int64 `json:"transitions"`
	Stuck       int64 `json:"stuck"`
	// LastReport is the most recent report, if any.
	LastReport *watchdog.Report `json:"last_report,omitempty"`
	// Latency summarizes the execution-latency histogram.
	Latency LatencySummary `json:"latency"`
	// Context describes hook synchronization state.
	Context ContextSnapshot `json:"context"`
	// Breaker is the circuit-breaker state name ("closed", "half-open",
	// "open"); empty when no breaker is configured for the checker.
	Breaker string `json:"breaker,omitempty"`
	// BreakerTrips counts breaker trips; BreakerRetryNS is the time until
	// the next probe while open (0 otherwise).
	BreakerTrips   int64 `json:"breaker_trips,omitempty"`
	BreakerRetryNS int64 `json:"breaker_retry_ns,omitempty"`
	// Flaps counts alarms suppressed by damping for this checker.
	Flaps int64 `json:"flaps,omitempty"`
}

// LatencySummary carries histogram quantiles in nanoseconds.
type LatencySummary struct {
	Count  int64 `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
}

// ContextSnapshot describes one checker context's synchronization state.
type ContextSnapshot struct {
	Ready   bool   `json:"ready"`
	Version uint64 `json:"version"`
	// StalenessNS is the time since the last hook update, or -1 when no
	// hook ever fired.
	StalenessNS int64 `json:"staleness_ns"`
}

// Snapshot assembles the live view from the driver ledger and the observed
// metrics. It is safe to call with no driver attached (empty checker list).
func (o *Obs) Snapshot() *Snapshot {
	now := time.Now()
	snap := &Snapshot{
		Time:       now,
		Healthy:    true,
		Reports:    o.reports.Value(),
		Alarms:     o.alarms.Value(),
		JournalSeq: o.journal.Seq(),
		Mesh:       o.meshSnapshot(),
		CEP:        o.cepSnapshot(),
		Recovery:   o.recoverySnapshot(),
		Episodes:   o.episodesSnapshot(),
	}
	o.mu.RLock()
	d := o.driver
	o.mu.RUnlock()
	if d == nil {
		return snap
	}
	snap.Healthy = d.Healthy()
	// Breaker deadlines live on the driver's clock (virtual in tests), not
	// necessarily wall time.
	dnow := d.Clock().Now()
	snap.AlarmsSuppressed = d.AlarmsSuppressed()
	snap.BreakerTrips = d.BreakerTrips()
	snap.BreakerSkips = d.BreakerSkips()
	snap.BudgetSkips = d.BudgetSkips()
	snap.LeakedHung = d.LeakedHung()
	for _, st := range d.State() {
		cm := o.checker(st.Name)
		hist := cm.latency.Snapshot()
		cs := CheckerSnapshot{
			Name:        st.Name,
			Status:      watchdog.StatusContextPending,
			Paused:      st.Paused,
			IntervalNS:  int64(st.Interval),
			TimeoutNS:   int64(st.Timeout),
			Threshold:   st.Threshold,
			Runs:        st.Runs,
			Abnormal:    st.Abnormal,
			Consecutive: st.Consecutive,
			Transitions: cm.transitions.Value(),
			Stuck:       cm.runs[watchdog.StatusStuck].Value(),
			Latency: LatencySummary{
				Count:  hist.Count,
				MeanNS: int64(hist.Mean()),
				P50NS:  int64(hist.Quantile(0.50)),
				P90NS:  int64(hist.Quantile(0.90)),
				P99NS:  int64(hist.Quantile(0.99)),
			},
			Context: ContextSnapshot{
				Ready:       st.ContextReady,
				Version:     st.ContextVersion,
				StalenessNS: -1,
			},
		}
		if st.HasLatest {
			rep := st.Latest
			cs.LastReport = &rep
			cs.Status = rep.Status
		}
		if st.BreakerEnabled {
			cs.Breaker = st.Breaker.String()
			cs.BreakerTrips = st.BreakerTrips
			if !st.BreakerNext.IsZero() {
				if wait := st.BreakerNext.Sub(dnow); wait > 0 {
					cs.BreakerRetryNS = int64(wait)
				}
			}
		}
		cs.Flaps = st.Flaps
		if !st.ContextSync.IsZero() {
			cs.Context.StalenessNS = int64(now.Sub(st.ContextSync))
		}
		snap.Checkers = append(snap.Checkers, cs)
	}
	return snap
}
