package wdobs

import (
	"fmt"
	"io"

	"gowatchdog/internal/supervise/episode"
)

// RecoverySnapshot is the recovery manager's bounded-event-ring accounting
// in the /watchdog report: how many recovery events were ever logged and how
// many fell out of the ring. A growing dropped count tells the operator the
// in-memory log no longer holds the whole story and the journal is the
// authoritative record.
type RecoverySnapshot struct {
	Events  int64 `json:"events_total"`
	Dropped int64 `json:"dropped_total"`
}

// SetRecovery wires a recovery-manager snapshot source into the
// observability surface: /watchdog gains a "recovery" section and /metrics
// gains the wdrecovery_* series. Pass nil to detach.
func (o *Obs) SetRecovery(fn func() *RecoverySnapshot) {
	o.mu.Lock()
	o.recoveryFn = fn
	o.mu.Unlock()
}

// recoverySnapshot returns the manager view, or nil when none is wired.
func (o *Obs) recoverySnapshot() *RecoverySnapshot {
	o.mu.RLock()
	fn := o.recoveryFn
	o.mu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// SetEpisodes wires an outage-episode snapshot source (typically a closure
// over episode.Read on the wdsuper ledger) into the observability surface:
// /watchdog gains an "episodes" section and /metrics gains the wdepisodes_*
// series. Pass nil to detach.
func (o *Obs) SetEpisodes(fn func() *episode.Snapshot) {
	o.mu.Lock()
	o.episodesFn = fn
	o.mu.Unlock()
}

// episodesSnapshot returns the ledger view, or nil when none is wired.
func (o *Obs) episodesSnapshot() *episode.Snapshot {
	o.mu.RLock()
	fn := o.episodesFn
	o.mu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// writeRecoveryMetrics emits the wdrecovery_* Prometheus series.
func writeRecoveryMetrics(w io.Writer, r *RecoverySnapshot) {
	fmt.Fprintf(w, "# HELP wdrecovery_events_total Recovery events ever logged.\n")
	fmt.Fprintf(w, "# TYPE wdrecovery_events_total counter\n")
	fmt.Fprintf(w, "wdrecovery_events_total %d\n", r.Events)
	fmt.Fprintf(w, "# HELP wdrecovery_dropped_total Recovery events dropped from the bounded ring.\n")
	fmt.Fprintf(w, "# TYPE wdrecovery_dropped_total counter\n")
	fmt.Fprintf(w, "wdrecovery_dropped_total %d\n", r.Dropped)
}

// writeEpisodeMetrics emits the wdepisodes_* Prometheus series.
func writeEpisodeMetrics(w io.Writer, s *episode.Snapshot) {
	fmt.Fprintf(w, "# HELP wdepisodes_total Outage episodes recorded in the supervision ledger.\n")
	fmt.Fprintf(w, "# TYPE wdepisodes_total counter\n")
	fmt.Fprintf(w, "wdepisodes_total %d\n", s.Total)
	fmt.Fprintf(w, "# HELP wdepisodes_open Outage episodes currently open.\n")
	fmt.Fprintf(w, "# TYPE wdepisodes_open gauge\n")
	fmt.Fprintf(w, "wdepisodes_open %d\n", s.Open)
	fmt.Fprintf(w, "# HELP wdepisodes_torn_records Malformed ledger lines skipped while reading.\n")
	fmt.Fprintf(w, "# TYPE wdepisodes_torn_records gauge\n")
	fmt.Fprintf(w, "wdepisodes_torn_records %d\n", s.TornRecords)
}
