package wdobs

import (
	"strings"
	"testing"
	"time"

	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdcep"
)

// TestCEPKindVocabulary pins the journal kind strings to the wdcep event
// kinds: the tap publishes journal events verbatim, so a drift here would
// silently stop rules from matching.
func TestCEPKindVocabulary(t *testing.T) {
	pairs := []struct{ journal, cep string }{
		{KindReport, wdcep.EventReport},
		{KindAlarm, wdcep.EventAlarm},
		{KindMesh, wdcep.EventMesh},
		{KindRecovery, wdcep.EventRecovery},
		{KindCEP, wdcep.EventCEP},
	}
	for _, p := range pairs {
		if p.journal != p.cep {
			t.Errorf("journal kind %q != wdcep kind %q", p.journal, p.cep)
		}
	}
}

func TestCEPEventMapping(t *testing.T) {
	ts := time.Date(2026, 2, 3, 4, 5, 6, 0, time.UTC)
	e := Event{
		Kind: KindRecovery,
		Report: watchdog.Report{
			Checker: "wal.flush",
			Status:  watchdog.StatusError,
			Time:    ts,
		},
		Outcome: "escalated",
		Rule:    "r1",
	}
	got := CEPEvent(e)
	want := wdcep.Event{
		Kind:    KindRecovery,
		Checker: "wal.flush",
		Status:  watchdog.StatusError,
		Outcome: "escalated",
		Rule:    "r1",
		Time:    ts,
	}
	if got != want {
		t.Fatalf("CEPEvent = %+v, want %+v", got, want)
	}
}

// TestJournalTap verifies the tap sees every append, sequenced, in order, and
// that detaching stops delivery.
func TestJournalTap(t *testing.T) {
	j := NewJournal(4)
	var seen []Event
	j.SetTap(func(e Event) { seen = append(seen, e) })
	for i := 0; i < 6; i++ {
		j.Append(Event{Kind: KindReport, Report: watchdog.Report{Checker: "c"}})
	}
	if len(seen) != 6 {
		t.Fatalf("tap saw %d events, want 6 (ring eviction must not affect the tap)", len(seen))
	}
	for i, e := range seen {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
	}
	j.SetTap(nil)
	j.Append(Event{Kind: KindReport})
	if len(seen) != 6 {
		t.Fatalf("tap still invoked after detach: saw %d", len(seen))
	}
}

// TestSnapshotCEPSection verifies SetCEP surfaces the engine view in the JSON
// snapshot and the wdcep_* series on /metrics.
func TestSnapshotCEPSection(t *testing.T) {
	o := New()
	if o.Snapshot().CEP != nil {
		t.Fatal("CEP section present with no engine wired")
	}
	eng, err := wdcep.NewEngine(wdcep.Config{Rules: []wdcep.Rule{
		wdcep.Consecutive("streak", 3),
	}})
	if err != nil {
		t.Fatal(err)
	}
	o.SetCEP(eng.Snapshot)
	snap := o.Snapshot()
	if snap.CEP == nil {
		t.Fatal("CEP section missing after SetCEP")
	}
	if snap.CEP.Rules != 1 {
		t.Fatalf("CEP.Rules = %d, want 1", snap.CEP.Rules)
	}

	var sb strings.Builder
	writeCEPMetrics(&sb, snap.CEP)
	out := sb.String()
	for _, want := range []string{
		"wdcep_rules 1",
		"wdcep_events_published_total 0",
		"wdcep_events_dropped_total 0",
		"wdcep_fired_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}

	o.SetCEP(nil)
	if o.Snapshot().CEP != nil {
		t.Fatal("CEP section still present after detach")
	}
}
