package wdobs

import (
	"fmt"
	"io"

	"gowatchdog/internal/wdmesh"
)

// KindMesh marks a journaled cluster-verdict transition from the mesh health
// plane: a quorum-corroborated verdict about a peer was raised or cleared.
const KindMesh = "mesh"

// SetMesh wires a mesh snapshot source (wdmesh.Mesh.Snapshot) into the
// observability surface: /watchdog gains a "mesh" section and /metrics gains
// the wdmesh_* series. Pass nil to detach.
func (o *Obs) SetMesh(fn func() *wdmesh.Snapshot) {
	o.mu.Lock()
	o.meshFn = fn
	o.mu.Unlock()
}

// meshSnapshot returns the mesh view, or nil when no mesh is wired.
func (o *Obs) meshSnapshot() *wdmesh.Snapshot {
	o.mu.RLock()
	fn := o.meshFn
	o.mu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// writeMeshMetrics emits the wdmesh_* Prometheus series for one mesh view.
func writeMeshMetrics(w io.Writer, m *wdmesh.Snapshot) {
	fmt.Fprintf(w, "# HELP wdmesh_peers_alive Peers currently observed ok.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_peers_alive gauge\n")
	fmt.Fprintf(w, "wdmesh_peers_alive %d\n", m.PeersAlive)
	fmt.Fprintf(w, "# HELP wdmesh_peers_suspect Peers currently observed unreachable or alarming.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_peers_suspect gauge\n")
	fmt.Fprintf(w, "wdmesh_peers_suspect %d\n", m.PeersSuspect)
	fmt.Fprintf(w, "# HELP wdmesh_messages_sent_total Gossip messages handed to the transport.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_messages_sent_total counter\n")
	fmt.Fprintf(w, "wdmesh_messages_sent_total %d\n", m.MessagesSent)
	fmt.Fprintf(w, "# HELP wdmesh_messages_received_total Gossip messages received.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_messages_received_total counter\n")
	fmt.Fprintf(w, "wdmesh_messages_received_total %d\n", m.MessagesReceived)
	fmt.Fprintf(w, "# HELP wdmesh_queue_drops_total Messages dropped on full per-peer queues.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_queue_drops_total counter\n")
	fmt.Fprintf(w, "wdmesh_queue_drops_total %d\n", m.QueueDrops)
	fmt.Fprintf(w, "# HELP wdmesh_delta_entries_total Relayed digests piggybacked into gossip frames.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_delta_entries_total counter\n")
	fmt.Fprintf(w, "wdmesh_delta_entries_total %d\n", m.DeltaEntries)
	fmt.Fprintf(w, "# HELP wdmesh_full_syncs_total Anti-entropy full-table frames sent.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_full_syncs_total counter\n")
	fmt.Fprintf(w, "wdmesh_full_syncs_total %d\n", m.FullSyncs)
	fmt.Fprintf(w, "# HELP wdmesh_peers_demoted Links currently demoted for flapping.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_peers_demoted gauge\n")
	fmt.Fprintf(w, "wdmesh_peers_demoted %d\n", m.PeersDemoted)
	fmt.Fprintf(w, "# HELP wdmesh_send_retries_total Retried send attempts.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_send_retries_total counter\n")
	fmt.Fprintf(w, "wdmesh_send_retries_total %d\n", m.SendRetries)
	fmt.Fprintf(w, "# HELP wdmesh_send_failures_total Messages abandoned after the retry budget.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_send_failures_total counter\n")
	fmt.Fprintf(w, "wdmesh_send_failures_total %d\n", m.SendFailures)
	fmt.Fprintf(w, "# HELP wdmesh_verdicts_raised_total Cluster verdicts raised.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_verdicts_raised_total counter\n")
	fmt.Fprintf(w, "wdmesh_verdicts_raised_total %d\n", m.VerdictsRaised)
	fmt.Fprintf(w, "# HELP wdmesh_verdicts_cleared_total Cluster verdicts cleared.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_verdicts_cleared_total counter\n")
	fmt.Fprintf(w, "wdmesh_verdicts_cleared_total %d\n", m.VerdictsCleared)
	if m.Transport != nil {
		fmt.Fprintf(w, "# HELP wdmesh_transport_reconnects_total Outbound connections re-established after a drop.\n")
		fmt.Fprintf(w, "# TYPE wdmesh_transport_reconnects_total counter\n")
		fmt.Fprintf(w, "wdmesh_transport_reconnects_total %d\n", m.Transport.Reconnects)
		fmt.Fprintf(w, "# HELP wdmesh_transport_protocol_errors_total Malformed frames survived in place.\n")
		fmt.Fprintf(w, "# TYPE wdmesh_transport_protocol_errors_total counter\n")
		fmt.Fprintf(w, "wdmesh_transport_protocol_errors_total %d\n", m.Transport.ProtocolErrors)
		fmt.Fprintf(w, "# HELP wdmesh_transport_oversized_frames_total Inbound frames rejected by the size cap.\n")
		fmt.Fprintf(w, "# TYPE wdmesh_transport_oversized_frames_total counter\n")
		fmt.Fprintf(w, "wdmesh_transport_oversized_frames_total %d\n", m.Transport.OversizedFrames)
	}
	fmt.Fprintf(w, "# HELP wdmesh_peer_observation Per-peer observation (0 ok, 1 unreachable, 2 wd-alarm).\n")
	fmt.Fprintf(w, "# TYPE wdmesh_peer_observation gauge\n")
	for _, p := range m.Peers {
		code := 0
		switch p.Observation {
		case wdmesh.ObsUnreachable:
			code = 1
		case wdmesh.ObsAlarming:
			code = 2
		}
		fmt.Fprintf(w, "wdmesh_peer_observation{peer=%q} %d\n", escapeLabel(p.Node), code)
	}
	// Per-peer drop counters carry the backpressure signal; only peers that
	// have dropped at least once get a series, so cardinality stays bounded
	// by misbehaving links rather than cluster size.
	var dropped bool
	for _, p := range m.Peers {
		if p.QueueDrops == 0 {
			continue
		}
		if !dropped {
			fmt.Fprintf(w, "# HELP wdmesh_peer_dropped_total Messages dropped on this peer's full send queue.\n")
			fmt.Fprintf(w, "# TYPE wdmesh_peer_dropped_total counter\n")
			dropped = true
		}
		fmt.Fprintf(w, "wdmesh_peer_dropped_total{peer=%q} %d\n", escapeLabel(p.Node), p.QueueDrops)
	}
	if len(m.Verdicts) > 0 {
		fmt.Fprintf(w, "# HELP wdmesh_cluster_verdict Active quorum-corroborated verdicts (value = corroborating votes).\n")
		fmt.Fprintf(w, "# TYPE wdmesh_cluster_verdict gauge\n")
		for _, v := range m.Verdicts {
			fmt.Fprintf(w, "wdmesh_cluster_verdict{node=%q,kind=%q} %d\n",
				escapeLabel(v.Node), escapeLabel(v.Kind), v.Votes)
		}
	}
}
