package wdobs

import (
	"fmt"
	"io"

	"gowatchdog/internal/wdmesh"
)

// KindMesh marks a journaled cluster-verdict transition from the mesh health
// plane: a quorum-corroborated verdict about a peer was raised or cleared.
const KindMesh = "mesh"

// SetMesh wires a mesh snapshot source (wdmesh.Mesh.Snapshot) into the
// observability surface: /watchdog gains a "mesh" section and /metrics gains
// the wdmesh_* series. Pass nil to detach.
func (o *Obs) SetMesh(fn func() *wdmesh.Snapshot) {
	o.mu.Lock()
	o.meshFn = fn
	o.mu.Unlock()
}

// meshSnapshot returns the mesh view, or nil when no mesh is wired.
func (o *Obs) meshSnapshot() *wdmesh.Snapshot {
	o.mu.RLock()
	fn := o.meshFn
	o.mu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// writeMeshMetrics emits the wdmesh_* Prometheus series for one mesh view.
func writeMeshMetrics(w io.Writer, m *wdmesh.Snapshot) {
	fmt.Fprintf(w, "# HELP wdmesh_peers_alive Peers currently observed ok.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_peers_alive gauge\n")
	fmt.Fprintf(w, "wdmesh_peers_alive %d\n", m.PeersAlive)
	fmt.Fprintf(w, "# HELP wdmesh_peers_suspect Peers currently observed unreachable or alarming.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_peers_suspect gauge\n")
	fmt.Fprintf(w, "wdmesh_peers_suspect %d\n", m.PeersSuspect)
	fmt.Fprintf(w, "# HELP wdmesh_messages_sent_total Gossip messages handed to the transport.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_messages_sent_total counter\n")
	fmt.Fprintf(w, "wdmesh_messages_sent_total %d\n", m.MessagesSent)
	fmt.Fprintf(w, "# HELP wdmesh_messages_received_total Gossip messages received.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_messages_received_total counter\n")
	fmt.Fprintf(w, "wdmesh_messages_received_total %d\n", m.MessagesReceived)
	fmt.Fprintf(w, "# HELP wdmesh_queue_drops_total Messages dropped on full per-peer queues.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_queue_drops_total counter\n")
	fmt.Fprintf(w, "wdmesh_queue_drops_total %d\n", m.QueueDrops)
	fmt.Fprintf(w, "# HELP wdmesh_send_retries_total Retried send attempts.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_send_retries_total counter\n")
	fmt.Fprintf(w, "wdmesh_send_retries_total %d\n", m.SendRetries)
	fmt.Fprintf(w, "# HELP wdmesh_send_failures_total Messages abandoned after the retry budget.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_send_failures_total counter\n")
	fmt.Fprintf(w, "wdmesh_send_failures_total %d\n", m.SendFailures)
	fmt.Fprintf(w, "# HELP wdmesh_verdicts_raised_total Cluster verdicts raised.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_verdicts_raised_total counter\n")
	fmt.Fprintf(w, "wdmesh_verdicts_raised_total %d\n", m.VerdictsRaised)
	fmt.Fprintf(w, "# HELP wdmesh_verdicts_cleared_total Cluster verdicts cleared.\n")
	fmt.Fprintf(w, "# TYPE wdmesh_verdicts_cleared_total counter\n")
	fmt.Fprintf(w, "wdmesh_verdicts_cleared_total %d\n", m.VerdictsCleared)
	fmt.Fprintf(w, "# HELP wdmesh_peer_observation Per-peer observation (0 ok, 1 unreachable, 2 wd-alarm).\n")
	fmt.Fprintf(w, "# TYPE wdmesh_peer_observation gauge\n")
	for _, p := range m.Peers {
		code := 0
		switch p.Observation {
		case wdmesh.ObsUnreachable:
			code = 1
		case wdmesh.ObsAlarming:
			code = 2
		}
		fmt.Fprintf(w, "wdmesh_peer_observation{peer=%q} %d\n", escapeLabel(p.Node), code)
	}
	if len(m.Verdicts) > 0 {
		fmt.Fprintf(w, "# HELP wdmesh_cluster_verdict Active quorum-corroborated verdicts (value = corroborating votes).\n")
		fmt.Fprintf(w, "# TYPE wdmesh_cluster_verdict gauge\n")
		for _, v := range m.Verdicts {
			fmt.Fprintf(w, "wdmesh_cluster_verdict{node=%q,kind=%q} %d\n",
				escapeLabel(v.Node), escapeLabel(v.Kind), v.Votes)
		}
	}
}
