// Package kvsload is a pipelined, multi-connection load generator for the
// kvs server. It drives a seeded get/set/scan mix over N connections, each
// keeping up to Depth requests in flight (kvs.Pipeline), and reports
// throughput plus latency percentiles from a geometric-bucket histogram.
//
// Two pacing modes:
//
//   - closed loop (RatePerSec == 0): every connection issues requests as
//     fast as the window allows — the saturation mode wdbench uses to
//     compare watchdog-off against watchdog-on.
//   - open loop (RatePerSec > 0): requests are launched on a fixed
//     schedule and latency is measured from the *intended* send time, so
//     a slow server inflates the tail instead of silently slowing the
//     clock (no coordinated omission).
package kvsload

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"gowatchdog/internal/kvs"
)

// Mix is the request blend, in relative weights.
type Mix struct {
	Get  int
	Set  int
	Scan int
}

// ParseMix parses "get=70,set=25,scan=5" (missing kinds weigh 0).
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("kvsload: bad mix term %q", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("kvsload: bad mix weight %q", part)
		}
		switch strings.ToLower(name) {
		case "get":
			m.Get = w
		case "set":
			m.Set = w
		case "scan":
			m.Scan = w
		default:
			return Mix{}, fmt.Errorf("kvsload: unknown mix kind %q", name)
		}
	}
	if m.Get+m.Set+m.Scan == 0 {
		return Mix{}, errors.New("kvsload: empty mix")
	}
	return m, nil
}

func (m Mix) String() string {
	return fmt.Sprintf("get=%d,set=%d,scan=%d", m.Get, m.Set, m.Scan)
}

// Config parameterizes one load run.
type Config struct {
	// Addr is the kvs server address.
	Addr string
	// Conns is the number of concurrent connections (default 8).
	Conns int
	// Depth is the per-connection pipeline window (default 64).
	Depth int
	// Ops is the total request budget across all connections; 0 means
	// run until Duration elapses.
	Ops int64
	// Duration bounds the run when Ops is 0 (default 10s when both unset).
	Duration time.Duration
	// Mix is the request blend (default get=70,set=25,scan=5).
	Mix Mix
	// ValueSize is the SET value length in bytes (default 64).
	ValueSize int
	// KeySpace is the number of distinct keys (default 65536).
	KeySpace int
	// Seed makes key/op sequences reproducible (default 1).
	Seed int64
	// RatePerSec switches to open-loop pacing at this aggregate rate.
	RatePerSec int
	// Preload sets this many keys before the measured run so gets hit;
	// negative means preload the whole keyspace.
	Preload int
	// Timeout is the per-request client timeout (default 30s).
	Timeout time.Duration
	// ScanLimit bounds SCAN responses (default 10).
	ScanLimit int
}

func (c *Config) fill() {
	if c.Conns <= 0 {
		c.Conns = 8
	}
	if c.Depth <= 0 {
		c.Depth = 64
	}
	if c.Ops <= 0 && c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Mix.Get+c.Mix.Set+c.Mix.Scan == 0 {
		c.Mix = Mix{Get: 70, Set: 25, Scan: 5}
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 64
	}
	if c.KeySpace <= 0 {
		c.KeySpace = 65536
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.ScanLimit <= 0 {
		c.ScanLimit = 10
	}
}

// Result is the aggregate outcome of a load run.
type Result struct {
	Ops        int64         `json:"ops"`
	Errors     int64         `json:"errors"`
	Gets       int64         `json:"gets"`
	Sets       int64         `json:"sets"`
	Scans      int64         `json:"scans"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	OpsPerSec  float64       `json:"ops_per_sec"`
	P50        time.Duration `json:"p50_ns"`
	P90        time.Duration `json:"p90_ns"`
	P99        time.Duration `json:"p99_ns"`
	P999       time.Duration `json:"p999_ns"`
	MaxLatency time.Duration `json:"max_ns"`
}

// Render formats the result for humans.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops        %d (get %d / set %d / scan %d, %d errors)\n",
		r.Ops, r.Gets, r.Sets, r.Scans, r.Errors)
	fmt.Fprintf(&b, "elapsed    %v\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "throughput %.0f ops/sec\n", r.OpsPerSec)
	fmt.Fprintf(&b, "latency    p50 %v  p90 %v  p99 %v  p99.9 %v  max %v\n",
		r.P50, r.P90, r.P99, r.P999, r.MaxLatency)
	return b.String()
}

// hist is a geometric-bucket latency histogram: bucket i covers latencies
// up to histBase * histGrowth^i. ~1µs to >1h in 400 buckets at 5.5% relative
// error — plenty for p99.9 on a local socket.
const (
	histBase    = float64(time.Microsecond)
	histGrowth  = 1.055
	histBuckets = 400
)

type hist struct {
	counts [histBuckets]int64
	max    time.Duration
	n      int64
}

func (h *hist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	if d > 0 {
		i = int(math.Log(float64(d)/histBase)/math.Log(histGrowth)) + 1
		if i < 0 {
			i = 0
		}
		if i >= histBuckets {
			i = histBuckets - 1
		}
	}
	h.counts[i]++
	h.n++
	if d > h.max {
		h.max = d
	}
}

func (h *hist) merge(o *hist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the upper bound of the bucket holding quantile q.
func (h *hist) quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n))
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			if i == 0 {
				return time.Duration(histBase)
			}
			return time.Duration(histBase * math.Pow(histGrowth, float64(i)))
		}
	}
	return h.max
}

// connStats is one connection's tally, merged after the run (no atomics on
// the hot path).
type connStats struct {
	hist              hist
	ops, errs         int64
	gets, sets, scans int64
	err               error // first transport error, ends the conn
}

// Run executes the configured load and blocks until the budget is spent,
// the duration elapses, or ctx is canceled. Transport errors abort their
// connection; the first one is returned alongside the partial result.
func Run(ctx context.Context, cfg Config) (Result, error) {
	cfg.fill()
	keys := makeKeys(cfg.KeySpace)
	value := makeValue(cfg.ValueSize, cfg.Seed)

	if cfg.Preload != 0 {
		if err := preload(cfg, keys, value); err != nil {
			return Result{}, fmt.Errorf("kvsload: preload: %w", err)
		}
	}

	runCtx := ctx
	var cancel context.CancelFunc
	if cfg.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	perConn := make([]int64, cfg.Conns)
	if cfg.Ops > 0 {
		each := cfg.Ops / int64(cfg.Conns)
		extra := cfg.Ops % int64(cfg.Conns)
		for i := range perConn {
			perConn[i] = each
			if int64(i) < extra {
				perConn[i]++
			}
		}
	}

	stats := make([]connStats, cfg.Conns)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runConn(runCtx, cfg, i, perConn[i], keys, value, start, &stats[i])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total hist
	res := Result{Elapsed: elapsed}
	var firstErr error
	for i := range stats {
		s := &stats[i]
		total.merge(&s.hist)
		res.Ops += s.ops
		res.Errors += s.errs
		res.Gets += s.gets
		res.Sets += s.sets
		res.Scans += s.scans
		if firstErr == nil && s.err != nil {
			firstErr = s.err
		}
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}
	res.P50 = total.quantile(0.50)
	res.P90 = total.quantile(0.90)
	res.P99 = total.quantile(0.99)
	res.P999 = total.quantile(0.999)
	res.MaxLatency = total.max
	return res, firstErr
}

// runConn drives one connection: a sender goroutine queues requests on the
// pipeline (recording each send time on a channel) and this goroutine
// receives responses in order, pairing them with their timestamps.
func runConn(ctx context.Context, cfg Config, idx int, budget int64, keys []string, value string, start time.Time, st *connStats) {
	c, err := kvs.Dial(cfg.Addr, cfg.Timeout)
	if err != nil {
		st.err = err
		return
	}
	defer c.Close()
	p := c.Pipeline(cfg.Depth)
	rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)*7919))
	mixTotal := cfg.Mix.Get + cfg.Mix.Set + cfg.Mix.Scan

	// Open-loop schedule for this connection: one request every interval,
	// offset so connections don't fire in lockstep.
	var interval time.Duration
	if cfg.RatePerSec > 0 {
		perConnRate := float64(cfg.RatePerSec) / float64(cfg.Conns)
		interval = time.Duration(float64(time.Second) / perConnRate)
	}

	// times carries one send timestamp per in-flight request; capacity one
	// past the window so the sender always blocks on the pipeline, not here.
	times := make(chan time.Time, cfg.Depth+1)
	kinds := make(chan byte, cfg.Depth+1)
	done := ctx.Done()

	var senderWG sync.WaitGroup
	senderWG.Add(1)
	go func() {
		defer senderWG.Done()
		defer close(times)
		var sent int64
		for budget == 0 || sent < budget {
			select {
			case <-done:
				p.Flush()
				return
			default:
			}
			sendAt := time.Now()
			if interval > 0 {
				intended := start.Add(time.Duration(sent+1) * interval)
				if d := time.Until(intended); d > 0 {
					time.Sleep(d)
				}
				sendAt = intended // latency from the schedule, not the wakeup
			}
			var kind byte
			var qerr error
			switch pick := rng.Intn(mixTotal); {
			case pick < cfg.Mix.Get:
				kind = 'g'
				qerr = p.Get(keys[rng.Intn(len(keys))])
			case pick < cfg.Mix.Get+cfg.Mix.Set:
				kind = 's'
				qerr = p.Set(keys[rng.Intn(len(keys))], value)
			default:
				kind = 'c'
				qerr = p.Scan(keys[rng.Intn(len(keys))], "", cfg.ScanLimit)
			}
			if qerr != nil {
				return
			}
			// kind before time: once the receiver sees a timestamp, the
			// matching kind is guaranteed present (even if this goroutine
			// dies between the two sends).
			kinds <- kind
			times <- sendAt
			sent++
		}
		p.Flush()
	}()

	for t := range times {
		res, err := p.Recv()
		if err != nil {
			st.err = err
			break
		}
		st.hist.observe(time.Since(t))
		st.ops++
		switch <-kinds {
		case 'g':
			st.gets++
			if res.Err != nil && res.Err != kvs.ErrNotFound {
				st.errs++
			}
		case 's':
			st.sets++
			if res.Err != nil {
				st.errs++
			}
		default:
			st.scans++
			if res.Err != nil {
				st.errs++
			}
		}
	}
	// A dead receiver must keep the sender from blocking forever on the
	// pipeline window: closing the conn fails the sender's next flush.
	if st.err != nil {
		c.Close()
		for range times {
			<-kinds
		}
	}
	senderWG.Wait()
}

// preload fills the first Preload keys (whole keyspace when negative)
// through one pipelined connection.
func preload(cfg Config, keys []string, value string) error {
	n := cfg.Preload
	if n < 0 || n > len(keys) {
		n = len(keys)
	}
	c, err := kvs.Dial(cfg.Addr, cfg.Timeout)
	if err != nil {
		return err
	}
	defer c.Close()
	p := c.Pipeline(cfg.Depth)
	// Batch by window depth: without a concurrent receiver the window only
	// frees on Exec.
	for i := 0; i < n; {
		batch := cfg.Depth
		if n-i < batch {
			batch = n - i
		}
		for j := 0; j < batch; j++ {
			if err := p.Set(keys[i+j], value); err != nil {
				return err
			}
		}
		results, err := p.Exec()
		if err != nil {
			return err
		}
		for _, r := range results {
			if r.Err != nil {
				return r.Err
			}
		}
		i += batch
	}
	return nil
}

// makeKeys precomputes the key strings so the hot loop never formats.
func makeKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = "k" + strconv.Itoa(i)
	}
	return keys
}

// makeValue builds a deterministic printable value of the given size.
func makeValue(size int, seed int64) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, size)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}
