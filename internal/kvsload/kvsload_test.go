package kvsload

import (
	"context"
	"testing"
	"time"

	"gowatchdog/internal/kvs"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("get=70,set=25,scan=5")
	if err != nil || m != (Mix{Get: 70, Set: 25, Scan: 5}) {
		t.Fatalf("ParseMix = %+v, %v", m, err)
	}
	m, err = ParseMix("set=100")
	if err != nil || m != (Mix{Set: 100}) {
		t.Fatalf("ParseMix set-only = %+v, %v", m, err)
	}
	for _, bad := range []string{"", "get", "get=x", "get=-1", "put=5"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
	if got := (Mix{Get: 1, Set: 2, Scan: 3}).String(); got != "get=1,set=2,scan=3" {
		t.Fatalf("String = %q", got)
	}
}

func TestHistQuantiles(t *testing.T) {
	var h hist
	for i := 1; i <= 1000; i++ {
		h.observe(time.Duration(i) * time.Microsecond)
	}
	p50 := h.quantile(0.50)
	p99 := h.quantile(0.99)
	if p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
	// Geometric buckets promise ~5.5% relative error; allow 10%.
	if ratio := float64(p50) / float64(500*time.Microsecond); ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("p50 %v, want ~500µs", p50)
	}
	if ratio := float64(p99) / float64(990*time.Microsecond); ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("p99 %v, want ~990µs", p99)
	}
	if h.max != 1000*time.Microsecond {
		t.Fatalf("max = %v", h.max)
	}

	var other hist
	other.observe(5 * time.Second)
	h.merge(&other)
	if h.n != 1001 || h.max != 5*time.Second {
		t.Fatalf("after merge: n=%d max=%v", h.n, h.max)
	}
}

// startTestServer boots a temp-dir kvs server for load tests.
func startTestServer(t *testing.T) string {
	t.Helper()
	store, err := kvs.Open(kvs.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv, err := kvs.Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

func TestRunClosedLoop(t *testing.T) {
	addr := startTestServer(t)
	res, err := Run(context.Background(), Config{
		Addr:     addr,
		Conns:    4,
		Depth:    16,
		Ops:      2000,
		Mix:      Mix{Get: 70, Set: 25, Scan: 5},
		KeySpace: 128,
		Preload:  -1,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2000 {
		t.Fatalf("ops = %d, want 2000", res.Ops)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
	if res.Gets+res.Sets+res.Scans != res.Ops {
		t.Fatalf("kind counts %d+%d+%d != %d", res.Gets, res.Sets, res.Scans, res.Ops)
	}
	// With the whole keyspace preloaded, a 70/25/5 mix over 2000 ops cannot
	// degenerate to one kind.
	if res.Gets == 0 || res.Sets == 0 || res.Scans == 0 {
		t.Fatalf("degenerate mix: gets=%d sets=%d scans=%d", res.Gets, res.Sets, res.Scans)
	}
	if res.OpsPerSec <= 0 || res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("bad stats: %+v", res)
	}
}

// TestRunSeededCountsAreDeterministic replays the same seed and checks the
// per-kind op counts match exactly — the property wdbench's paired arms
// rely on to compare like against like.
func TestRunSeededCountsAreDeterministic(t *testing.T) {
	addr := startTestServer(t)
	run := func() Result {
		res, err := Run(context.Background(), Config{
			Addr:     addr,
			Conns:    3,
			Depth:    8,
			Ops:      1500,
			KeySpace: 64,
			Preload:  -1,
			Seed:     42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Gets != b.Gets || a.Sets != b.Sets || a.Scans != b.Scans {
		t.Fatalf("seeded runs diverged: %d/%d/%d vs %d/%d/%d",
			a.Gets, a.Sets, a.Scans, b.Gets, b.Sets, b.Scans)
	}
}

func TestRunOpenLoop(t *testing.T) {
	addr := startTestServer(t)
	res, err := Run(context.Background(), Config{
		Addr:       addr,
		Conns:      2,
		Depth:      8,
		Duration:   300 * time.Millisecond,
		RatePerSec: 2000,
		KeySpace:   64,
		Preload:    -1,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("open loop issued no requests")
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
	// 2000/sec over ~300ms: well under saturation, so the scheduler should
	// have kept the count near the target, not pinned at the window limit.
	if res.Ops > 1200 {
		t.Fatalf("open loop overshot schedule: %d ops", res.Ops)
	}
}

func TestRunCancel(t *testing.T) {
	addr := startTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Run(ctx, Config{
		Addr:     addr,
		Conns:    2,
		Depth:    8,
		Duration: 30 * time.Second,
		KeySpace: 64,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancel did not stop the run promptly")
	}
	if res.Ops == 0 {
		t.Fatal("no ops before cancel")
	}
}
