package autowatchdog

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func analyzeSample(t *testing.T, mutate func(*Config)) *Analysis {
	t.Helper()
	cfg := Config{PackageDir: "testdata/sample"}
	if mutate != nil {
		mutate(&cfg)
	}
	a, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func regionByRoot(t *testing.T, a *Analysis, root string) Region {
	t.Helper()
	for _, r := range a.Regions {
		if r.Root == root {
			return r
		}
	}
	t.Fatalf("region %q not found; have %v", root, regionRoots(a))
	return Region{}
}

func regionRoots(a *Analysis) []string {
	var out []string
	for _, r := range a.Regions {
		out = append(out, r.Root)
	}
	return out
}

func TestAnalyzeFindsLongRunningRegions(t *testing.T) {
	a := analyzeSample(t, nil)
	if a.Package != "sample" {
		t.Fatalf("package = %q", a.Package)
	}
	roots := regionRoots(a)
	want := map[string]bool{"(*Server).Run": true, "(*Server).FlushLoop": true}
	for _, r := range roots {
		if !want[r] {
			t.Errorf("unexpected region %q", r)
		}
		delete(want, r)
	}
	for missing := range want {
		t.Errorf("missing region %q", missing)
	}
}

func TestInitializationStageExcluded(t *testing.T) {
	a := analyzeSample(t, nil)
	for _, r := range a.Regions {
		if strings.Contains(r.Root, "NewServer") {
			t.Fatalf("init-stage NewServer treated as region")
		}
		for _, op := range r.Ops {
			if op.Func == "NewServer" {
				t.Fatalf("init-stage op retained: %+v", op)
			}
		}
	}
}

func TestBoundedLoopNotARegion(t *testing.T) {
	a := analyzeSample(t, nil)
	for _, r := range a.Regions {
		if r.Root == "Sum" {
			t.Fatal("bounded-loop Sum treated as region")
		}
	}
}

func TestReductionKeepsOneRepresentativePerCallee(t *testing.T) {
	a := analyzeSample(t, nil)
	run := regionByRoot(t, a, "(*Server).Run")
	// persist calls f.Write three times in a loop; exactly one representative
	// survives ("W may only need to invoke write() once").
	writes := 0
	for _, op := range run.Ops {
		if strings.HasSuffix(op.Callee, ".Write") {
			writes++
		}
	}
	if writes != 2 { // conn.Write (depth 0) + f.Write (depth 1): distinct receivers
		t.Fatalf("retained %d .Write ops: %+v", writes, run.Ops)
	}
	if run.TotalVulnerable <= len(run.Ops) {
		t.Fatalf("no reduction happened: %d vulnerable, %d retained",
			run.TotalVulnerable, len(run.Ops))
	}
}

func TestDisableReductionKeepsEverySite(t *testing.T) {
	reduced := analyzeSample(t, nil)
	full := analyzeSample(t, func(c *Config) { c.DisableReduction = true })
	r1 := regionByRoot(t, reduced, "(*Server).Run")
	r2 := regionByRoot(t, full, "(*Server).Run")
	if len(r2.Ops) <= len(r1.Ops) {
		t.Fatalf("ablation retained %d ops, reduced %d — expected more without reduction",
			len(r2.Ops), len(r1.Ops))
	}
	if r2.TotalVulnerable != len(r2.Ops) {
		t.Fatalf("unreduced ops %d != vulnerable %d", len(r2.Ops), r2.TotalVulnerable)
	}
}

func TestCallChainFollowedGlobally(t *testing.T) {
	a := analyzeSample(t, nil)
	run := regionByRoot(t, a, "(*Server).Run")
	chain := strings.Join(run.ChainFuncs, " ")
	if !strings.Contains(chain, "persist") {
		t.Fatalf("call chain missed persist: %v", run.ChainFuncs)
	}
	// Ops from the callee carry depth 1.
	foundDeep := false
	for _, op := range run.Ops {
		if op.Func == "(*Server).persist" && op.Depth == 1 {
			foundDeep = true
		}
	}
	if !foundDeep {
		t.Fatalf("no depth-1 op from persist: %+v", run.Ops)
	}
}

func TestAnnotationMarksCustomVulnerableOp(t *testing.T) {
	a := analyzeSample(t, nil)
	run := regionByRoot(t, a, "(*Server).Run")
	found := false
	for _, op := range run.Ops {
		if strings.Contains(op.Call, "compress") && op.Kind == KindGeneric {
			found = true
		}
	}
	if !found {
		t.Fatalf("//wd:vulnerable annotation not honored: %+v", run.Ops)
	}
}

func TestSyncOpsClassified(t *testing.T) {
	a := analyzeSample(t, nil)
	run := regionByRoot(t, a, "(*Server).Run")
	kinds := map[OpKind]bool{}
	for _, op := range run.Ops {
		kinds[op.Kind] = true
	}
	if !kinds[KindSync] {
		t.Fatalf("mu.Lock not classified as sync: %+v", run.Ops)
	}
	if !kinds[KindDiskWrite] {
		t.Fatalf("no disk-write op: %+v", run.Ops)
	}
}

func TestFlushLoopRegionHasReadOp(t *testing.T) {
	a := analyzeSample(t, nil)
	fl := regionByRoot(t, a, "(*Server).FlushLoop")
	found := false
	for _, op := range fl.Ops {
		if op.Kind == KindDiskRead && strings.Contains(op.Callee, "ReadFile") {
			found = true
		}
	}
	if !found {
		t.Fatalf("FlushLoop ops = %+v", fl.Ops)
	}
}

func TestEntryPatternsForceRegion(t *testing.T) {
	a := analyzeSample(t, func(c *Config) { c.EntryPatterns = []string{"persist$"} })
	found := false
	for _, r := range a.Regions {
		if r.Root == "(*Server).persist" {
			found = true
		}
	}
	if !found {
		t.Fatalf("entry pattern did not force persist: %v", regionRoots(a))
	}
}

func TestSummaryMentionsEverything(t *testing.T) {
	a := analyzeSample(t, nil)
	s := a.Summary()
	for _, want := range []string{"package sample", "(*Server).Run", "reduction ratio", "keep ["} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(Config{PackageDir: "testdata/does-not-exist"}); err == nil {
		t.Fatal("Analyze on missing dir succeeded")
	}
	empty := t.TempDir()
	if _, err := Analyze(Config{PackageDir: empty}); err == nil {
		t.Fatal("Analyze on empty dir succeeded")
	}
}

func TestCheckerNameSanitized(t *testing.T) {
	a := analyzeSample(t, nil)
	name := a.CheckerName("(*Server).Run")
	if name != "sample.Server_Run" {
		t.Fatalf("CheckerName = %q", name)
	}
}

// moduleRoot walks up to the directory containing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found")
		}
		dir = parent
	}
}

// TestGeneratedAndInstrumentedCodeCompiles is the end-to-end proof: the
// generated checkers file plus the instrumented sources form a buildable
// package, exactly what AutoWatchdog ships back into the original software.
func TestGeneratedAndInstrumentedCodeCompiles(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	// The build directory must live inside this module so the generated
	// imports of gowatchdog/internal/... resolve.
	buildDir, err := os.MkdirTemp(".", "genbuild-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(buildDir) })

	a := analyzeSample(t, func(c *Config) { c.OutDir = buildDir })
	genPath, err := a.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(genPath) != "sample_wd_gen.go" {
		t.Fatalf("generated file = %s", genPath)
	}
	written, err := a.Instrument("")
	if err != nil {
		t.Fatal(err)
	}
	if len(written) == 0 {
		t.Fatal("Instrument wrote nothing")
	}

	cmd := exec.Command("go", "build", "./"+filepath.Base(buildDir))
	cmd.Dir, _ = os.Getwd()
	out, err := cmd.CombinedOutput()
	if err != nil {
		genSrc, _ := os.ReadFile(genPath)
		t.Fatalf("generated package does not build: %v\n%s\n--- generated ---\n%s",
			err, out, genSrc)
	}
}

func TestInstrumentedSourceContainsHooks(t *testing.T) {
	outDir := t.TempDir()
	a := analyzeSample(t, func(c *Config) { c.OutDir = outDir })
	if _, err := a.Instrument(""); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join(outDir, "sample.go"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(src)
	if !strings.Contains(text, "wdhooks.Capture(\"sample.Server_Run\"") {
		t.Fatalf("no hook for Run region:\n%s", text)
	}
	if !strings.Contains(text, `wdhooks "gowatchdog/internal/autowatchdog/wdhooks"`) {
		t.Fatal("wdhooks import not added")
	}
	// Hooks capture identifier args (batch).
	if !strings.Contains(text, `"arg0": batch`) {
		t.Fatalf("identifier arg not captured:\n%s", text)
	}
	// Init-stage code is untouched.
	if idx := strings.Index(text, "func NewServer"); idx >= 0 {
		end := strings.Index(text[idx:], "\n}")
		if end > 0 && strings.Contains(text[idx:idx+end], "wdhooks") {
			t.Fatal("hook inserted into init-stage NewServer")
		}
	}
}

func TestGenerateRequiresOutDir(t *testing.T) {
	a := analyzeSample(t, nil)
	if _, err := a.Generate(); err == nil {
		t.Fatal("Generate without OutDir succeeded")
	}
	if _, err := a.Instrument(""); err == nil {
		t.Fatal("Instrument without OutDir succeeded")
	}
}

// TestAnalyzeRealSystems runs AutoWatchdog over the three target systems in
// this repository, reproducing the paper's §4.2 scale claim: applied to
// three real systems, it generates tens of checkers (regions) in total.
func TestAnalyzeRealSystems(t *testing.T) {
	root := moduleRoot(t)
	totalRegions, totalOps := 0, 0
	for _, pkg := range []string{"internal/kvs", "internal/coord", "internal/dfs"} {
		a, err := Analyze(Config{PackageDir: filepath.Join(root, pkg)})
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		if len(a.Regions) == 0 {
			t.Errorf("%s: no regions found", pkg)
		}
		totalRegions += len(a.Regions)
		totalOps += a.TotalOps()
		t.Logf("%s: %d regions, %d ops", pkg, len(a.Regions), a.TotalOps())
	}
	if totalRegions < 10 {
		t.Errorf("total regions = %d, expected tens across three systems", totalRegions)
	}
	if totalOps < 30 {
		t.Errorf("total retained ops = %d", totalOps)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[OpKind]string{
		KindDiskWrite: "disk-write", KindDiskRead: "disk-read",
		KindNetSend: "net-send", KindNetRecv: "net-recv",
		KindSync: "sync", KindChan: "chan", KindGeneric: "generic",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
