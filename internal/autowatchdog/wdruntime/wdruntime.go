// Package wdruntime is the runtime support library for generated watchdogs.
//
// AutoWatchdog reduces each long-running region to its vulnerable
// operations, classified by kind (disk write, disk read, network send, ...).
// The generated checker invokes MimicOp once per retained operation;
// MimicOp performs a real operation of that kind — real disk I/O on the
// shadow filesystem, a real network dial — parameterized by context values
// captured by the generated hooks:
//
//	"wd.payload" ([]byte) — sample payload for disk mimics
//	"wd.addr"    (string) — remote address for network mimics
//
// Kinds with no safe generic mimic (lock acquisition, channel operations)
// record the visit and return nil: they still contribute pinpoint sites for
// hang detection when a developer upgrades them to a hand-written mimic.
package wdruntime

import (
	"fmt"
	"net"
	"time"

	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

// Kind mirrors autowatchdog.OpKind without importing the analyzer (the
// generated code only depends on this runtime).
type Kind int

// Kinds, numerically aligned with autowatchdog.OpKind.
const (
	DiskWrite Kind = iota
	DiskRead
	NetSend
	NetRecv
	Sync
	Chan
	Generic
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case DiskWrite:
		return "disk-write"
	case DiskRead:
		return "disk-read"
	case NetSend:
		return "net-send"
	case NetRecv:
		return "net-recv"
	case Sync:
		return "sync"
	case Chan:
		return "chan"
	default:
		return "generic"
	}
}

// MimicOp executes one reduced vulnerable operation of the given kind inside
// watchdog.Op at the given site.
func MimicOp(ctx *watchdog.Context, shadow *wdio.FS, site watchdog.Site, kind Kind) error {
	return watchdog.Op(ctx, site, func() error {
		switch kind {
		case DiskWrite:
			return mimicDiskWrite(ctx, shadow, site)
		case DiskRead:
			return mimicDiskRead(ctx, shadow, site)
		case NetSend, NetRecv:
			return mimicNet(ctx)
		case Sync, Chan, Generic:
			// No safe generic mimic; the site is still registered for
			// pinpointing, and the visit itself proves the checker runs.
			return nil
		default:
			return fmt.Errorf("wdruntime: unknown kind %d", kind)
		}
	})
}

// payload returns the captured payload or a default probe.
func payload(ctx *watchdog.Context) []byte {
	if p := ctx.GetBytes("wd.payload"); len(p) > 0 {
		return p
	}
	return []byte("wdruntime probe payload 0123456789")
}

// probeName renders a per-site probe filename.
func probeName(site watchdog.Site) string {
	return fmt.Sprintf("gen/%s_%d.probe", sanitize(site.Op), site.Line)
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func mimicDiskWrite(ctx *watchdog.Context, shadow *wdio.FS, site watchdog.Site) error {
	if shadow == nil {
		return fmt.Errorf("wdruntime: disk mimic without shadow FS")
	}
	return shadow.RoundTrip(probeName(site), payload(ctx))
}

func mimicDiskRead(ctx *watchdog.Context, shadow *wdio.FS, site watchdog.Site) error {
	if shadow == nil {
		return fmt.Errorf("wdruntime: disk mimic without shadow FS")
	}
	name := probeName(site)
	if err := shadow.WriteFile(name, payload(ctx)); err != nil {
		return err
	}
	got, err := shadow.ReadFile(name)
	if err != nil {
		return err
	}
	want := payload(ctx)
	if len(got) != len(want) {
		return fmt.Errorf("wdruntime: read back %d bytes, wrote %d", len(got), len(want))
	}
	return shadow.Remove(name)
}

// mimicNet dials the captured remote address. Without a captured address
// the mimic is skipped — the context has not proven the main program talks
// to anyone yet.
func mimicNet(ctx *watchdog.Context) error {
	addr := ctx.GetString("wd.addr")
	if addr == "" {
		return nil
	}
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return fmt.Errorf("wdruntime: dial %s: %w", addr, err)
	}
	return conn.Close()
}
