package wdruntime

import (
	"net"
	"path/filepath"
	"strings"
	"testing"

	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

func newShadow(t *testing.T) *wdio.FS {
	t.Helper()
	fs, err := wdio.NewFS(filepath.Join(t.TempDir(), "shadow"), 0)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func readyCtx() *watchdog.Context {
	c := watchdog.NewContext()
	c.MarkReady()
	return c
}

func TestDiskWriteMimicHealthy(t *testing.T) {
	shadow := newShadow(t)
	ctx := readyCtx()
	ctx.Put("wd.payload", []byte("captured payload"))
	site := watchdog.Site{Function: "f", Op: "f.Write", Line: 10}
	if err := MimicOp(ctx, shadow, site, DiskWrite); err != nil {
		t.Fatal(err)
	}
	// Probe files are cleaned up.
	if shadow.Used() != 0 {
		t.Fatalf("shadow Used = %d after round trip", shadow.Used())
	}
}

func TestDiskWriteMimicDefaultPayload(t *testing.T) {
	shadow := newShadow(t)
	site := watchdog.Site{Op: "os.WriteFile"}
	if err := MimicOp(readyCtx(), shadow, site, DiskWrite); err != nil {
		t.Fatal(err)
	}
}

func TestDiskReadMimic(t *testing.T) {
	shadow := newShadow(t)
	site := watchdog.Site{Op: "os.ReadFile", Line: 3}
	if err := MimicOp(readyCtx(), shadow, site, DiskRead); err != nil {
		t.Fatal(err)
	}
}

func TestDiskMimicWithoutShadowFails(t *testing.T) {
	err := MimicOp(readyCtx(), nil, watchdog.Site{Op: "w"}, DiskWrite)
	if err == nil {
		t.Fatal("disk mimic without shadow succeeded")
	}
	var oe *watchdog.OpError
	if !asOpError(err, &oe) {
		t.Fatalf("error not an OpError: %v", err)
	}
}

func TestDiskWriteQuotaFaultDetected(t *testing.T) {
	fs, err := wdio.NewFS(filepath.Join(t.TempDir(), "shadow"), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := readyCtx()
	ctx.Put("wd.payload", []byte("definitely more than four bytes"))
	if err := MimicOp(ctx, fs, watchdog.Site{Op: "w"}, DiskWrite); err == nil {
		t.Fatal("quota-violating write mimic succeeded")
	}
}

func TestNetSendMimicSkipsWithoutAddr(t *testing.T) {
	// No captured address: the mimic is a no-op (the context has not proven
	// the main program talks to anyone).
	if err := MimicOp(readyCtx(), nil, watchdog.Site{Op: "conn.Write"}, NetSend); err != nil {
		t.Fatal(err)
	}
}

func TestNetSendMimicDialsCapturedAddr(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	ctx := readyCtx()
	ctx.Put("wd.addr", ln.Addr().String())
	if err := MimicOp(ctx, nil, watchdog.Site{Op: "conn.Write"}, NetSend); err != nil {
		t.Fatal(err)
	}
	// Dead endpoint: the mimic fails with the site attached.
	ln.Close()
	ctx.Put("wd.addr", ln.Addr().String())
	if err := MimicOp(ctx, nil, watchdog.Site{Op: "conn.Write"}, NetSend); err == nil {
		t.Fatal("dial of dead endpoint succeeded")
	}
}

func TestSyncAndChanKindsAreRecordedNoops(t *testing.T) {
	ctx := readyCtx()
	for _, k := range []Kind{Sync, Chan, Generic} {
		if err := MimicOp(ctx, nil, watchdog.Site{Op: k.String()}, k); err != nil {
			t.Fatalf("%v mimic errored: %v", k, err)
		}
	}
	// The site was still registered for pinpointing while executing.
	if ctx.LastOp().Op != Generic.String() {
		t.Fatalf("LastOp = %v", ctx.LastOp())
	}
}

func TestUnknownKindErrors(t *testing.T) {
	if err := MimicOp(readyCtx(), nil, watchdog.Site{}, Kind(99)); err == nil {
		t.Fatal("unknown kind succeeded")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		DiskWrite: "disk-write", DiskRead: "disk-read", NetSend: "net-send",
		NetRecv: "net-recv", Sync: "sync", Chan: "chan", Generic: "generic",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d) = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestProbeNameSanitized(t *testing.T) {
	name := probeName(watchdog.Site{Op: "conn.Write(hdr[:])", Line: 42})
	if strings.ContainsAny(name, "()[]:") {
		t.Fatalf("probe name not sanitized: %q", name)
	}
	if !strings.Contains(name, "42") {
		t.Fatalf("probe name missing line: %q", name)
	}
}

// asOpError is errors.As without importing errors twice in examples.
func asOpError(err error, target **watchdog.OpError) bool {
	for err != nil {
		if oe, ok := err.(*watchdog.OpError); ok {
			*target = oe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
