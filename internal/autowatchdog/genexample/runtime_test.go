// Runtime proof for AutoWatchdog's output: this package contains the
// COMMITTED generator output for testdata/sample (instrumented sample.go +
// sample_wd_gen.go, regenerate with:
//
//	go run ./cmd/awgen -pkg internal/autowatchdog/testdata/sample \
//	    -out internal/autowatchdog/genexample -quiet
//
// ) and these tests drive the instrumented main program and the generated
// checkers end to end: hooks fire on the real execution path, contexts
// become ready, the mimic checkers perform real shadow I/O, and injected
// environment faults surface through the generated sites.
package sample

import (
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gowatchdog/internal/autowatchdog/wdhooks"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

func setup(t *testing.T) (*Server, *watchdog.Driver, *wdio.FS) {
	t.Helper()
	factory := watchdog.NewFactory()
	wdhooks.SetFactory(factory)
	t.Cleanup(func() { wdhooks.SetFactory(nil) })

	srv, err := NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shadow, err := wdio.NewFS(filepath.Join(t.TempDir(), "shadow"), 0)
	if err != nil {
		t.Fatal(err)
	}
	d := watchdog.New(watchdog.WithTimeout(time.Second), watchdog.WithFactory(factory))
	RegisterGeneratedCheckers(d, shadow)
	return srv, d, shadow
}

func TestGeneratedCheckersRegistered(t *testing.T) {
	_, d, _ := setup(t)
	names := d.Checkers()
	if len(names) != 2 {
		t.Fatalf("checkers = %v", names)
	}
	for _, n := range names {
		if !strings.HasPrefix(n, "sample.Server_") {
			t.Fatalf("unexpected checker name %q", n)
		}
	}
}

func TestGeneratedCheckersGatedUntilHooksFire(t *testing.T) {
	_, d, _ := setup(t)
	rep, err := d.CheckNow("sample.Server_Run")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != watchdog.StatusContextPending {
		t.Fatalf("pre-hook status = %v", rep.Status)
	}
}

func TestInstrumentedMainProgramFeedsGeneratedCheckers(t *testing.T) {
	srv, d, shadow := setup(t)

	// Drive the instrumented main program for real: Run consumes a batch
	// and ships it over a live TCP connection, executing the inserted
	// wdhooks.Capture calls along the way.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1024)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	done := make(chan error, 1)
	go func() { done <- srv.Run(conn) }()
	srv.queue <- []byte("first batch through the instrumented path")
	// Wait until the hook marked the context ready.
	deadline := time.Now().Add(2 * time.Second)
	ctx := d.Factory().Context("sample.Server_Run")
	for !ctx.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("instrumented hooks never fired")
		}
		time.Sleep(time.Millisecond)
	}
	close(srv.stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The hook captured the identifier argument of the vulnerable call.
	if got := ctx.GetBytes("arg0"); !strings.Contains(string(got), "first batch") {
		t.Fatalf("captured arg0 = %q", got)
	}
	if op := ctx.GetString("op"); op == "" {
		t.Fatal("hook did not record the op")
	}

	// The generated mimic checker now runs real shadow I/O and is healthy.
	rep, err := d.CheckNow("sample.Server_Run")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != watchdog.StatusHealthy {
		t.Fatalf("generated checker = %v err=%v", rep.Status, rep.Err)
	}
	if shadow.Used() != 0 {
		t.Fatalf("mimic left %d bytes in shadow", shadow.Used())
	}
}

func TestGeneratedCheckerDetectsDiskFault(t *testing.T) {
	_, d, _ := setup(t)
	d.Factory().Context("sample.Server_FlushLoop").MarkReady()

	// Healthy first.
	rep, _ := d.CheckNow("sample.Server_FlushLoop")
	if rep.Status != watchdog.StatusHealthy {
		t.Fatalf("healthy run = %v err=%v", rep.Status, rep.Err)
	}

	// Environment fault: replace the shadow with a quota-starved one so the
	// generated disk mimic's real I/O fails.
	tiny, err := wdio.NewFS(filepath.Join(t.TempDir(), "tiny"), 1)
	if err != nil {
		t.Fatal(err)
	}
	d2 := watchdog.New(watchdog.WithTimeout(time.Second))
	RegisterGeneratedCheckers(d2, tiny)
	d2.Factory().Context("sample.Server_FlushLoop").MarkReady()
	rep, _ = d2.CheckNow("sample.Server_FlushLoop")
	if rep.Status != watchdog.StatusError {
		t.Fatalf("fault run = %v", rep.Status)
	}
	if rep.Site.Op != "os.ReadFile" || rep.Site.Function != "(*Server).FlushLoop" {
		t.Fatalf("pinpoint = %v", rep.Site)
	}
}

func TestInstrumentedProgramStillCorrect(t *testing.T) {
	// The instrumentation must not change program behaviour: persist writes
	// batches to the data log exactly as the original.
	srv, _, _ := setup(t)
	if err := srv.persist([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	out := srv.compress([]byte{1, 0, 2, 0, 3})
	if len(out) != 3 {
		t.Fatalf("compress = %v", out)
	}
	if got := Sum([]int{1, 2, 3}); got != 6 {
		t.Fatalf("Sum = %d", got)
	}
}
