package autowatchdog

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/autowatchdog -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against the named golden file byte-for-byte, or
// rewrites the golden file under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGoldenSummary pins the human-readable reduction report for the sample
// package: region roots, call chains, statement/call counts, and the exact
// set of retained vulnerable operations.
func TestGoldenSummary(t *testing.T) {
	a := analyzeSample(t, nil)
	golden(t, "sample.golden.summary", []byte(a.Summary()))
}

// TestGoldenGeneratedChecker pins the generated checkers file byte-for-byte.
// Any change to region extraction, reduction, op classification, or the code
// generator shows up here as a reviewable diff.
func TestGoldenGeneratedChecker(t *testing.T) {
	a := analyzeSample(t, nil)
	golden(t, "sample_wd_gen.go.golden", a.GeneratedSource())
}

// TestGoldenJSONReport pins the machine-readable report consumed by wdlint
// and CI.
func TestGoldenJSONReport(t *testing.T) {
	a := analyzeSample(t, nil)
	data, err := a.ReportJSON()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "sample.golden.json", append(data, '\n'))
}

// TestGoldenMatchesCommittedGenExample ties the golden to the committed
// generator output in genexample: both must track the same analysis.
func TestGoldenMatchesCommittedGenExample(t *testing.T) {
	a := analyzeSample(t, nil)
	committed, err := os.ReadFile(filepath.Join("genexample", "sample_wd_gen.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.GeneratedSource(), committed) {
		t.Fatal("genexample/sample_wd_gen.go drifted from the current reduction; regenerate it:\n" +
			"go run ./cmd/awgen -pkg internal/autowatchdog/testdata/sample -out internal/autowatchdog/genexample -quiet")
	}
}
