// Package sample is a miniature system used to exercise AutoWatchdog: it
// has an initialization stage, two long-running regions (a serve loop and a
// flush loop), helper functions reached along call chains, and an annotated
// custom vulnerable operation.
package sample

import (
	"net"
	"os"
	"sync"
	"time"
)

// Server is a toy long-running component.
type Server struct {
	mu    sync.Mutex
	dir   string
	queue chan []byte
	stop  chan struct{}
}

// NewServer is initialization-stage code: its file I/O must NOT be treated
// as a monitored vulnerable operation.
func NewServer(dir string) (*Server, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Server{dir: dir, queue: make(chan []byte, 16), stop: make(chan struct{})}, nil
}

// Run is a long-running region: an unbounded loop draining the queue.
func (s *Server) Run(conn net.Conn) error {
	for {
		select {
		case <-s.stop:
			return nil
		case batch := <-s.queue:
			if _, err := conn.Write(batch); err != nil {
				return err
			}
			if err := s.persist(batch); err != nil {
				return err
			}
			s.compress(batch) //wd:vulnerable
		}
	}
}

// persist is reached along Run's call chain; its writes count once each.
func (s *Server) persist(batch []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(s.dir+"/data.log", os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Write(batch); err != nil { // repeated write: reduced to one
			f.Close()
			return err
		}
	}
	if _, err := f.Write([]byte{'\n'}); err != nil { // same callee: deduplicated
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// compress is a CPU-bound helper with no vulnerable operations of its own.
func (s *Server) compress(batch []byte) []byte {
	out := make([]byte, 0, len(batch))
	for _, b := range batch {
		if b != 0 {
			out = append(out, b)
		}
	}
	return out
}

// FlushLoop is a second long-running region: a condition-only loop doing
// periodic disk reads.
func (s *Server) FlushLoop(interval time.Duration) {
	done := false
	for !done {
		select {
		case <-s.stop:
			done = true
		default:
			if _, err := os.ReadFile(s.dir + "/data.log"); err != nil {
				time.Sleep(interval)
			}
		}
	}
}

// Sum is bounded computation: a three-clause loop, not a region.
func Sum(xs []int) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	return total
}
