// Package minesample is the testmine golden fixture: a small exported type
// whose test suite exercises every extraction path — pure mined predicates,
// impure rejections, unexported subjects, test-local arguments, sentinel
// oracles, and workload-dependent disjunct dropping.
package minesample

import (
	"errors"
	"os"
	"sync"
)

// ErrBadProbe is the sentinel returned for malformed probe lookups.
var ErrBadProbe = errors.New("minesample: bad probe")

// Probe is the exported subject type the fixture tests assert over.
type Probe struct {
	mu    sync.Mutex
	epoch int64
	marks []string
	path  string
}

// NewProbe returns a probe backed by the file at path.
func NewProbe(path string) *Probe {
	return &Probe{path: path, epoch: 1}
}

// Epoch returns the current epoch. Pure: lock, read, unlock.
func (p *Probe) Epoch() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Marks returns a copy of the recorded anomaly marks. Pure: the copy target
// is a local.
func (p *Probe) Marks() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.marks))
	copy(out, p.marks)
	return out
}

// Lookup returns the stored value for key; empty keys fail with ErrBadProbe.
func (p *Probe) Lookup(key string) (string, error) {
	if key == "" {
		return "", ErrBadProbe
	}
	return "v:" + key, nil
}

// Verify re-reads the backing file; it passes through os I/O, so checkers
// probing it are mimic-class.
func (p *Probe) Verify() error {
	_, err := os.ReadFile(p.path)
	return err
}

// Advance bumps the epoch. Impure: it writes through the receiver, so
// assertions over it must be rejected.
func (p *Probe) Advance() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.epoch++
	return p.epoch
}

// tracker is unexported: assertions over it cannot become watchdog checkers,
// because generated code in the package would still be reaching into state
// no external caller can construct.
type tracker struct {
	n int
}

func newTracker() *tracker { return &tracker{} }

// Count returns the tracked count.
func (tr *tracker) Count() int { return tr.n }
