package minesample

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// newTestProbe builds a probe over a real temp file so Verify succeeds.
func newTestProbe(t *testing.T) *Probe {
	t.Helper()
	path := filepath.Join(t.TempDir(), "probe.dat")
	if err := os.WriteFile(path, []byte("ok"), 0o644); err != nil {
		t.Fatal(err)
	}
	return NewProbe(path)
}

// TestProbeInvariants holds the minable assertions: workload-independent
// guards over pure (or read-only vulnerable) exported methods.
func TestProbeInvariants(t *testing.T) {
	p := newTestProbe(t)

	// Mined: nonneg over a pure method (expression guard).
	if p.Epoch() <= 0 {
		t.Fatalf("Epoch() = %d, want > 0", p.Epoch())
	}

	// Mined: zerolen over a pure method (defining assign before the guard).
	marks := p.Marks()
	if len(marks) != 0 {
		t.Fatalf("Marks() = %v, want none on a fresh probe", marks)
	}

	// Mined: sentinel oracle on a zero-ish input.
	if _, err := p.Lookup(""); !errors.Is(err, ErrBadProbe) {
		t.Fatalf("Lookup(\"\") = %v, want ErrBadProbe", err)
	}

	// Mined: error oracle over the vulnerable (os I/O) method — mimic-class.
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify() on a healthy probe: %v", err)
	}

	// Mined with a dropped disjunct: the error oracle is portable, the exact
	// value comparison is workload-dependent.
	v, err := p.Lookup("k")
	if err != nil || v != "v:k" {
		t.Fatalf("Lookup(k) = %q, %v", v, err)
	}
}

// TestProbeRejections holds the assertions every filter must refuse.
func TestProbeRejections(t *testing.T) {
	p := newTestProbe(t)

	// Rejected: Advance writes through the receiver.
	if p.Advance() <= 0 {
		t.Fatalf("Advance() = %d, want > 0", p.Advance())
	}

	// Rejected: the subject type is unexported.
	tr := newTracker()
	if tr.Count() != 0 {
		t.Fatalf("Count() = %d, want 0", tr.Count())
	}

	// Rejected: the argument is test-local, not a portable literal.
	key := "dynamic"
	if _, err := p.Lookup(key); err != nil {
		t.Fatalf("Lookup(%q): %v", key, err)
	}

	// Rejected: expected-error assertion — inverting it would alarm on
	// healthy state.
	if _, err := p.Lookup(""); err == nil {
		t.Fatal("Lookup(\"\") = nil error, want ErrBadProbe")
	}
}
