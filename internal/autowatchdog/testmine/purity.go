package testmine

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// purityWalker decides whether a method is safe to call from a watchdog
// checker: no writes that escape the call, no goroutines, no channel sends,
// and nothing mutating reachable through its transitive package-local
// callees. It also records whether the call path is *vulnerable* — passes
// through injector fault points or OS/network I/O — which classifies the
// mined checker as mimic (exercises the same failure domain as production
// operations) versus signal (pure in-memory validation).
//
// Calls that cross the package boundary cannot be inspected (the loader
// satisfies imports with placeholders), so they are judged by name:
//
//   - a small exact allow-list covers benign instrumentation that read paths
//     legitimately perform (mutex Lock/Unlock, metric Inc/Observe, injector
//     Fire);
//   - read-shaped prefixes (get, read, scan, len, verify, ...) pass;
//   - write-shaped prefixes (set, put, write, flush, close, ...) fail;
//   - anything else fails closed.
//
// The same heuristic applies to package-local callees beyond MaxPurityDepth.
type purityWalker struct {
	p          *pkgInfo
	maxDepth   int
	visited    map[*types.Func]bool
	vulnerable bool
}

func newPurityWalker(p *pkgInfo, maxDepth int) *purityWalker {
	return &purityWalker{p: p, maxDepth: maxDepth, visited: make(map[*types.Func]bool)}
}

// checkFunc walks fn's body. It returns (false, reason) on the first
// impurity found.
func (w *purityWalker) checkFunc(fn *types.Func, depth int) (bool, string) {
	if w.visited[fn] {
		return true, ""
	}
	w.visited[fn] = true
	decl := w.p.funcDecls[fn]
	if decl == nil || decl.Body == nil {
		return w.byName(fn.Name())
	}
	if depth > w.maxDepth {
		return w.byName(fn.Name())
	}

	var impure string
	fail := func(format string, args ...any) {
		if impure == "" {
			impure = fmt.Sprintf(format, args...)
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if impure != "" {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if ok, why := w.writeTarget(decl, lhs); !ok {
					fail("%s: %s", fn.Name(), why)
				}
			}
		case *ast.IncDecStmt:
			if ok, why := w.writeTarget(decl, v.X); !ok {
				fail("%s: %s", fn.Name(), why)
			}
		case *ast.SendStmt:
			fail("%s sends on a channel", fn.Name())
		case *ast.GoStmt:
			fail("%s spawns a goroutine", fn.Name())
		case *ast.CallExpr:
			if ok, why := w.call(decl, v, depth); !ok {
				fail("%s", why)
			}
		}
		return true
	})
	if impure != "" {
		return false, impure
	}
	return true, ""
}

// writeTarget checks one assignment target. Writes are pure when they stay
// local to the call: new variables, reassigned parameters, and element
// writes into locally created maps/slices. Writes through pointers, into
// receiver or package state, or to captured variables escape.
func (w *purityWalker) writeTarget(decl *ast.FuncDecl, lhs ast.Expr) (bool, string) {
	root, indirect := rootIdent(lhs)
	if root == nil {
		return false, "writes through a non-identifier expression"
	}
	if root.Name == "_" {
		return true, ""
	}
	obj := w.p.Info.Defs[root]
	if obj == nil {
		obj = w.p.Info.Uses[root]
	}
	if obj == nil {
		// Unresolved (a tolerated type error): fail closed.
		return false, fmt.Sprintf("writes through unresolved %s", root.Name)
	}
	if obj.Parent() == w.p.Types.Scope() {
		return false, fmt.Sprintf("assigns package-level %s", root.Name)
	}
	inDecl := obj.Pos() >= decl.Pos() && obj.Pos() <= decl.End()
	if !inDecl {
		return false, fmt.Sprintf("assigns captured %s", root.Name)
	}
	bodyLocal := decl.Body != nil && obj.Pos() >= decl.Body.Pos()
	if !bodyLocal {
		// Receiver or parameter.
		if !indirect {
			return true, "" // plain reassignment of a parameter copy
		}
		return false, fmt.Sprintf("writes through receiver/parameter %s", root.Name)
	}
	if indirect {
		// Element write into a local: fine for locally built maps/slices,
		// but a local *pointer* aliases state the caller can see.
		if v, ok := obj.(*types.Var); ok && isPointer(v.Type()) {
			return false, fmt.Sprintf("writes through local pointer %s", root.Name)
		}
	}
	return true, ""
}

// rootIdent unwraps index/selector/star/paren chains to the base identifier,
// reporting whether the write went through such a chain.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	indirect := false
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v, indirect
		case *ast.IndexExpr:
			e, indirect = v.X, true
		case *ast.SelectorExpr:
			e, indirect = v.X, true
		case *ast.StarExpr:
			e, indirect = v.X, true
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil, indirect
		}
	}
}

// call judges one call expression inside a walked body.
func (w *purityWalker) call(decl *ast.FuncDecl, call *ast.CallExpr, depth int) (bool, string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := w.p.Info.Uses[fun]
		switch o := obj.(type) {
		case *types.Builtin:
			return w.builtin(decl, fun.Name, call)
		case *types.TypeName:
			return true, "" // conversion
		case *types.Func:
			if w.p.funcDecls[o] != nil {
				return w.checkFunc(o, depth+1)
			}
			return w.byName(o.Name())
		case *types.Var:
			// A function value declared inside this body is a local
			// closure — its literal is covered by the same Inspect walk.
			// Anything held in wider state is opaque.
			if decl.Body != nil && o.Pos() >= decl.Body.Pos() && o.Pos() <= decl.End() {
				return true, ""
			}
			return false, fmt.Sprintf("calls function value %s", fun.Name)
		case nil:
			return w.byName(fun.Name)
		}
		return true, ""
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if pn, isPkg := w.p.Info.Uses[x].(*types.PkgName); isPkg {
				return w.pkgCall(pn.Imported().Name(), fun.Sel.Name)
			}
		}
		if fn, ok := w.p.Info.Uses[fun.Sel].(*types.Func); ok && w.p.funcDecls[fn] != nil {
			return w.checkFunc(fn, depth+1)
		}
		return w.byName(fun.Sel.Name)
	case *ast.FuncLit:
		return true, "" // body covered by the enclosing Inspect
	case *ast.ArrayType, *ast.MapType, *ast.InterfaceType, *ast.StarExpr, *ast.ParenExpr:
		return true, "" // conversion
	}
	return true, ""
}

// builtin handles builtins whose mutation target is an argument.
func (w *purityWalker) builtin(decl *ast.FuncDecl, name string, call *ast.CallExpr) (bool, string) {
	switch name {
	case "delete", "copy", "clear":
		if len(call.Args) > 0 {
			if ok, why := w.writeTarget(decl, call.Args[0]); !ok {
				return false, "builtin " + name + " " + why
			}
		}
	}
	return true, ""
}

// purePkgs are std qualifiers whose calls never mutate program state.
var purePkgs = map[string]bool{
	"errors": true, "fmt": true, "bytes": true, "strings": true,
	"strconv": true, "sort": true, "math": true, "utf8": true,
	"binary": true, "crc32": true, "hex": true, "filepath": true,
}

// vulnPkgs are std qualifiers whose calls touch the outside world: allowed
// only in read shapes, and always marking the path vulnerable (mimic-class).
var vulnPkgs = map[string]bool{"os": true, "net": true}

func (w *purityWalker) pkgCall(qual, name string) (bool, string) {
	if purePkgs[qual] {
		return true, ""
	}
	if vulnPkgs[qual] {
		w.vulnerable = true
		if ok, _ := w.byName(name); !ok {
			return false, fmt.Sprintf("calls %s.%s (mutating I/O)", qual, name)
		}
		return true, ""
	}
	// Unknown package (module siblings included): judge by name.
	if ok, _ := w.byName(name); !ok {
		return false, fmt.Sprintf("calls %s.%s (not allow-listed)", qual, name)
	}
	return true, ""
}

// exactAllow covers benign instrumentation read paths legitimately perform.
var exactAllow = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"TryLock": true, "TryRLock": true,
	"Inc": true, "Observe": true,
	"Error": true, "Err": true, "String": true, "Len": true, "Cap": true,
}

// denyPrefixes are write-shaped method names (lowercase comparison).
var denyPrefixes = []string{
	"set", "put", "del", "add", "append", "write", "flush", "compact",
	"close", "open", "arm", "disarm", "remove", "rename", "apply", "reset",
	"truncate", "sync", "register", "start", "stop", "store", "enqueue",
	"push", "send", "submit", "touch", "expire", "advance", "bump", "clear",
	"mark", "invalidate", "create", "insert", "update", "merge", "rotate",
}

// allowPrefixes are read-shaped method names (lowercase comparison).
var allowPrefixes = []string{
	"get", "read", "scan", "len", "size", "value", "count", "verify", "has",
	"is", "contains", "owns", "key", "path", "name", "version", "snapshot",
	"metric", "counter", "gauge", "histogram", "iterate", "string", "now",
	"since", "equal", "compare", "index", "match", "lookup", "peek", "list",
	"stat", "depth", "sample", "fault", "zxid", "queue", "block", "table",
	"volume", "partition", "tree", "session", "addr", "uint", "int", "float",
	"byte", "checksum", "parse", "format", "quote", "abs", "min", "max",
	"sum", "load", "num", "id",
}

// byName judges an uninspectable callee by its name. Fire marks the path
// vulnerable: it is the fault-injection point production operations pass
// through, exactly what a mimic checker wants to share fate with.
func (w *purityWalker) byName(name string) (bool, string) {
	if name == "Fire" {
		w.vulnerable = true
		return true, ""
	}
	if exactAllow[name] {
		return true, ""
	}
	lower := strings.ToLower(name)
	for _, p := range denyPrefixes {
		if strings.HasPrefix(lower, p) {
			return false, fmt.Sprintf("calls %s (write-shaped name)", name)
		}
	}
	for _, p := range allowPrefixes {
		if strings.HasPrefix(lower, p) {
			return true, ""
		}
	}
	return false, fmt.Sprintf("calls %s (not allow-listed)", name)
}
