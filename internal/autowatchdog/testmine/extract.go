package testmine

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// extractor walks every same-package test function and turns assertion
// guards into checker candidates. A guard is
//
//	if <cond> { ... t.Fatal*/t.Error* ... }
//
// with the fail call directly in the guard body; <cond> is the violation
// condition (the test fails when it is true), which is exactly the
// orientation a watchdog checker needs.
type extractor struct {
	p   *pkgInfo
	a   *Analysis
	cfg Config
}

func (ex *extractor) run() {
	for _, f := range ex.p.Files {
		if !ex.p.IsTest[f] {
			continue
		}
		ex.a.TestFiles++
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			if !strings.HasPrefix(fd.Name.Name, "Test") {
				continue
			}
			tParam := testParamName(fd)
			if tParam == "" {
				continue
			}
			w := &funcWalker{
				ex:       ex,
				file:     f,
				testFunc: fd.Name.Name,
				tParam:   tParam,
			}
			w.stmts(fd.Body.List)
		}
	}
}

// testParamName returns the *testing.T parameter name of a test function,
// or "" if the signature does not match.
func testParamName(fd *ast.FuncDecl) string {
	params := fd.Type.Params
	if params == nil || len(params.List) != 1 || len(params.List[0].Names) != 1 {
		return ""
	}
	star, ok := params.List[0].Type.(*ast.StarExpr)
	if !ok {
		return ""
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "T" {
		return ""
	}
	if x, ok := sel.X.(*ast.Ident); !ok || x.Name != "testing" {
		return ""
	}
	return params.List[0].Names[0].Name
}

// funcWalker extracts candidates from one test function.
type funcWalker struct {
	ex       *extractor
	file     *ast.File
	testFunc string
	tParam   string
}

var failNames = map[string]bool{"Error": true, "Errorf": true, "Fatal": true, "Fatalf": true}

// stmts walks a statement list, handling guards and recursing into nested
// blocks (loops, subtests, guard bodies).
func (w *funcWalker) stmts(list []ast.Stmt) {
	for i, s := range list {
		switch st := s.(type) {
		case *ast.IfStmt:
			w.ifStmt(st, list, i)
		case *ast.BlockStmt:
			w.stmts(st.List)
		case *ast.ForStmt:
			if st.Body != nil {
				w.stmts(st.Body.List)
			}
		case *ast.RangeStmt:
			if st.Body != nil {
				w.stmts(st.Body.List)
			}
		case *ast.ExprStmt:
			// t.Run subtests and similar closures: walk function literal
			// arguments so nested guards are still mined.
			if call, ok := st.X.(*ast.CallExpr); ok {
				for _, arg := range call.Args {
					if fl, ok := arg.(*ast.FuncLit); ok && fl.Body != nil {
						w.stmts(fl.Body.List)
					}
				}
			}
		}
	}
}

// ifStmt handles one if statement: if it is an assertion guard, run the
// candidate pipeline; either way, recurse for nested guards.
func (w *funcWalker) ifStmt(st *ast.IfStmt, list []ast.Stmt, idx int) {
	if w.isFailGuard(st.Body) {
		w.ex.a.Guards++
		w.candidate(st, list, idx)
	}
	if st.Body != nil {
		w.stmts(st.Body.List)
	}
	switch e := st.Else.(type) {
	case *ast.BlockStmt:
		w.stmts(e.List)
	case *ast.IfStmt:
		w.ifStmt(e, list, idx)
	}
}

// isFailGuard reports whether the block directly contains a t.Error*/t.Fatal*
// call (possibly after logging); nested guards are handled by recursion.
func (w *funcWalker) isFailGuard(body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	for _, s := range body.List {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !failNames[sel.Sel.Name] {
			continue
		}
		if x, ok := sel.X.(*ast.Ident); ok && x.Name == w.tParam {
			return true
		}
	}
	return false
}

// candidateCtx carries the per-candidate state shared by classification and
// rendering.
type candidateCtx struct {
	w       *funcWalker
	subject types.Object            // the subject variable
	results map[types.Object]string // provisional result names (v0.., err)
	errObjs map[types.Object]bool   // error-typed result objects
	refs    map[types.Object]bool   // result objects referenced by kept asserts
	quals   map[string]bool         // std qualifiers used by kept asserts
	defCall *ast.CallExpr           // defining call, nil for expression guards

	expectedErr bool // saw `err == nil`: the test wanted an error
}

// candidate runs the extraction pipeline on one guard. Guards that are not
// method assertions at all (table flags, helper plumbing) are skipped
// silently; guards that look minable but fail a filter are recorded as
// Rejections so the decisions stay auditable.
func (w *funcWalker) candidate(st *ast.IfStmt, list []ast.Stmt, idx int) {
	p := w.ex.p
	guardPos := p.Pos(st.Pos())
	file := p.relFile(guardPos.Filename)
	reject := func(subject, reason, detail string) {
		w.ex.a.Rejected = append(w.ex.a.Rejected, Rejection{
			File: file, Line: guardPos.Line,
			Subject: subject, Reason: reason, Detail: detail,
		})
	}

	def := w.definingAssign(st, list, idx)
	if def == nil {
		w.exprGuard(st, file, guardPos.Line, reject)
		return
	}
	call := def.Rhs[0].(*ast.CallExpr)
	subjObj, subjName, ok := w.subjectOf(call, reject)
	if !ok {
		return
	}
	method := w.methodOf(call)
	if method == nil {
		reject(subjName, "unresolved method", exprString(p.Fset, call.Fun))
		return
	}
	opName := methodOpName(method)

	// Purity: the probed method must be side-effect-free all the way down.
	pw := newPurityWalker(p, w.ex.cfg.MaxPurityDepth)
	if pure, why := pw.checkFunc(method, 0); !pure {
		reject(subjName, "impure method "+opName, why)
		return
	}

	// Evaluability 1/2: arguments must be portable literals — anything
	// test-local cannot be replayed from a watchdog.
	c := &candidateCtx{
		w: w, subject: subjObj,
		results: make(map[types.Object]string),
		errObjs: make(map[types.Object]bool),
		refs:    make(map[types.Object]bool),
		quals:   make(map[string]bool),
		defCall: call,
	}
	argStrs, err := c.renderArgs(call)
	if err != nil {
		reject(subjName, "non-portable argument to "+opName, err.Error())
		return
	}

	// Bind result names: error-typed results are "err", the rest v0..vN.
	lhsNames := c.bindResults(def, method)

	// Evaluability 2/2: classify each ||-disjunct of the violation
	// condition, keeping workload-independent oracles only.
	asserts, dropped := c.classifyCond(st.Cond)
	if c.expectedErr {
		reject(subjName, "expected-error assertion on "+opName,
			"the test wants the call to fail; inverting it would alarm on healthy state")
		return
	}

	// Implicit error oracle: the test discarded the error result — the call
	// succeeding is still an invariant worth checking.
	oracleIdx := -1
	if !c.hasErrAssert(asserts) {
		if i := trailingErrorResult(method); i >= 0 && i < len(lhsNames) && lhsNames[i] == "_" {
			oracleIdx = i
			asserts = append(asserts, Assert{Cond: "err != nil", Kind: "erroracle", WrapErr: true})
		}
	}
	if len(asserts) == 0 {
		reject(subjName, "no portable assertion on "+opName,
			"dropped workload-dependent: "+strings.Join(dropped, "; "))
		return
	}

	w.emitChecker(c, MinedChecker{
		Subject:    subjName,
		SubjectPtr: isPointer(subjObj.Type()),
		Kind:       checkerKind(pw.vulnerable),
		Method:     opName,
		Call:       c.renderDefCall(call, lhsNames, argStrs, oracleIdx),
		Asserts:    asserts,
		Dropped:    dropped,
		TestFunc:   w.testFunc,
		File:       file,
		Line:       guardPos.Line,
	})
}

// emitChecker finishes a mined checker and appends it to the analysis.
func (w *funcWalker) emitChecker(c *candidateCtx, mc MinedChecker) {
	mc.quals = c.quals
	w.ex.a.Checkers = append(w.ex.a.Checkers, mc)
}

// definingAssign finds the call whose results the guard asserts on: the
// if-init assignment, or the nearest preceding assignment in the enclosing
// block that defines an identifier the condition references.
func (w *funcWalker) definingAssign(st *ast.IfStmt, list []ast.Stmt, idx int) *ast.AssignStmt {
	if as, ok := st.Init.(*ast.AssignStmt); ok {
		if len(as.Rhs) == 1 {
			if _, isCall := as.Rhs[0].(*ast.CallExpr); isCall {
				return as
			}
		}
		return nil
	}
	condObjs := w.condObjects(st.Cond)
	if len(condObjs) == 0 {
		return nil
	}
	for i := idx - 1; i >= 0; i-- {
		as, ok := list[i].(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			continue
		}
		// Only method calls on a plain identifier bind results worth
		// asserting on; in particular this keeps a guard that merely
		// references the subject (`s.Partitions() <= 0`) from matching the
		// subject's own constructor (`s := openStore(t, nil)`).
		call, isCall := as.Rhs[0].(*ast.CallExpr)
		if !isCall {
			continue
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel {
			continue
		}
		if _, isID := sel.X.(*ast.Ident); !isID {
			continue
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if obj := w.ex.p.Info.Defs[id]; obj != nil && condObjs[obj] {
				return as
			}
			if obj := w.ex.p.Info.Uses[id]; obj != nil && condObjs[obj] {
				return as
			}
		}
	}
	return nil
}

// condObjects collects the local objects referenced by the condition.
func (w *funcWalker) condObjects(cond ast.Expr) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.ex.p.Info.Uses[id]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// subjectOf resolves the receiver of a defining call: a plain identifier
// whose type is an exported named type declared in the package under test.
// Chained receivers (l.Tree().Get(...)) are rejected by design: the chain
// would have to be re-validated for purity and re-evaluated per tick, and
// the provenance of the intermediate value is unclear.
func (w *funcWalker) subjectOf(call *ast.CallExpr, reject func(subject, reason, detail string)) (types.Object, string, bool) {
	p := w.ex.p
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false // plain function call, not a method assertion
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		reject("", "chained receiver", exprString(p.Fset, sel.X)+" — only plain identifier subjects are mined")
		return nil, "", false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return nil, "", false
	}
	if _, isPkg := obj.(*types.PkgName); isPkg {
		return nil, "", false // qualified call into another package
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil, "", false
	}
	named := namedType(v.Type())
	if named == nil {
		return nil, "", false
	}
	tn := named.Obj()
	if tn.Pkg() != p.Types {
		return nil, "", false // subject from another package
	}
	if !tn.Exported() {
		reject(tn.Name(), "unexported subject type",
			fmt.Sprintf("%s is not part of the package API; a deployment cannot hold one to check", tn.Name()))
		return nil, "", false
	}
	return v, tn.Name(), true
}

// methodOf resolves the called method object.
func (w *funcWalker) methodOf(call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if fn, ok := w.ex.p.Info.Uses[sel.Sel].(*types.Func); ok {
		return fn
	}
	return nil
}

// exprGuard handles guards with no defining call: the condition itself calls
// subject methods (`if s.Partitions() <= 0 { ... }`).
func (w *funcWalker) exprGuard(st *ast.IfStmt, file string, line int, reject func(subject, reason, detail string)) {
	p := w.ex.p
	calls := w.subjectCalls(st.Cond)
	if len(calls) == 0 {
		return // not a method assertion
	}
	subjObj, subjName, ok := w.subjectOf(calls[0], reject)
	if !ok {
		return
	}
	c := &candidateCtx{
		w: w, subject: subjObj,
		results: make(map[types.Object]string),
		errObjs: make(map[types.Object]bool),
		refs:    make(map[types.Object]bool),
		quals:   make(map[string]bool),
	}
	asserts, dropped := c.classifyCond(st.Cond)
	if len(asserts) == 0 {
		reject(subjName, "no portable assertion",
			"dropped workload-dependent: "+strings.Join(dropped, "; "))
		return
	}
	// Validate every subject call the kept asserts evaluate: portable
	// arguments, pure methods.
	pw := newPurityWalker(p, w.ex.cfg.MaxPurityDepth)
	var primary *types.Func
	for _, call := range calls {
		method := w.methodOf(call)
		if method == nil {
			reject(subjName, "unresolved method", exprString(p.Fset, call.Fun))
			return
		}
		if primary == nil {
			primary = method
		}
		if _, err := c.renderArgs(call); err != nil {
			reject(subjName, "non-portable argument to "+methodOpName(method), err.Error())
			return
		}
		if pure, why := pw.checkFunc(method, 0); !pure {
			reject(subjName, "impure method "+methodOpName(method), why)
			return
		}
	}
	w.emitChecker(c, MinedChecker{
		Subject:    subjName,
		SubjectPtr: isPointer(subjObj.Type()),
		Kind:       checkerKind(pw.vulnerable),
		Method:     methodOpName(primary),
		Asserts:    asserts,
		Dropped:    dropped,
		TestFunc:   w.testFunc,
		File:       file,
		Line:       line,
	})
}

// subjectCalls collects method calls on plain identifier receivers inside e,
// requiring every call to share one receiver object.
func (w *funcWalker) subjectCalls(e ast.Expr) []*ast.CallExpr {
	p := w.ex.p
	var calls []*ast.CallExpr
	var subject types.Object
	consistent := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		if v, ok := obj.(*types.Var); ok {
			if named := namedType(v.Type()); named != nil && named.Obj().Pkg() == p.Types {
				if subject == nil {
					subject = obj
				} else if subject != obj {
					consistent = false
				}
				calls = append(calls, call)
			}
		}
		return true
	})
	if !consistent {
		return nil
	}
	return calls
}

// bindResults assigns provisional names to the defining call's results and
// returns the per-position names ("_" for discarded results).
func (c *candidateCtx) bindResults(def *ast.AssignStmt, method *types.Func) []string {
	p := c.w.ex.p
	sig, _ := method.Type().(*types.Signature)
	names := make([]string, len(def.Lhs))
	errTaken := false
	for i, lhs := range def.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			names[i] = "_"
			continue
		}
		if id.Name == "_" {
			names[i] = "_"
			continue
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			names[i] = "_"
			continue
		}
		isErr := false
		if sig != nil && sig.Results() != nil && i < sig.Results().Len() {
			isErr = isErrorType(sig.Results().At(i).Type())
		} else {
			isErr = isErrorType(obj.Type())
		}
		name := fmt.Sprintf("v%d", i)
		if isErr && !errTaken {
			name = "err"
			errTaken = true
			c.errObjs[obj] = true
		}
		c.results[obj] = name
		names[i] = name
	}
	return names
}

// renderDefCall renders the defining call over the checker's locals, blanking
// results no kept assert references. oracleIdx, when >= 0, names a discarded
// error result "err" for the implicit oracle.
func (c *candidateCtx) renderDefCall(call *ast.CallExpr, lhsNames, argStrs []string, oracleIdx int) string {
	sel := call.Fun.(*ast.SelectorExpr)
	out := make([]string, len(lhsNames))
	named := false
	for i, n := range lhsNames {
		switch {
		case i == oracleIdx:
			out[i] = "err"
			named = true
		case n == "_":
			out[i] = "_"
		default:
			obj := c.objByName(n)
			if obj != nil && c.refs[obj] {
				out[i] = n
				named = true
			} else {
				out[i] = "_"
			}
		}
	}
	op := " := "
	if !named {
		op = " = "
	}
	return strings.Join(out, ", ") + op +
		"subject." + sel.Sel.Name + "(" + strings.Join(argStrs, ", ") + ")"
}

func (c *candidateCtx) objByName(name string) types.Object {
	for obj, n := range c.results {
		if n == name {
			return obj
		}
	}
	return nil
}

// renderArgs renders the call's arguments, failing on anything that is not a
// portable literal.
func (c *candidateCtx) renderArgs(call *ast.CallExpr) ([]string, error) {
	out := make([]string, 0, len(call.Args))
	for _, arg := range call.Args {
		if !portableLiteral(arg) {
			return nil, fmt.Errorf("%s is not a portable literal", exprString(c.w.ex.p.Fset, arg))
		}
		s, err := c.render(arg)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// portableLiteral reports whether e can be replayed verbatim from a watchdog:
// basic literals, nil/true/false, negated literals, and conversions of basic
// literals ([]byte("k"), string(7)).
func portableLiteral(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return v.Name == "nil" || v.Name == "true" || v.Name == "false"
	case *ast.UnaryExpr:
		return portableLiteral(v.X)
	case *ast.ParenExpr:
		return portableLiteral(v.X)
	case *ast.CallExpr:
		// Type conversion of a portable literal.
		if len(v.Args) != 1 || !portableLiteral(v.Args[0]) {
			return false
		}
		switch fn := v.Fun.(type) {
		case *ast.ArrayType:
			_, ok := fn.Elt.(*ast.Ident)
			return ok && fn.Len == nil
		case *ast.Ident:
			return true // string(...), int64(...)
		}
		return false
	}
	return false
}

// zeroishArgs reports whether every argument of the defining call is a
// zero value (nil, 0, "", false): sentinel oracles like
// !errors.Is(err, ErrEmptyKey) are only workload-independent when the input
// shape that provokes the sentinel is the degenerate one.
func (c *candidateCtx) zeroishArgs() bool {
	if c.defCall == nil {
		return false
	}
	for _, arg := range c.defCall.Args {
		switch v := arg.(type) {
		case *ast.Ident:
			if v.Name != "nil" && v.Name != "false" {
				return false
			}
		case *ast.BasicLit:
			if v.Value != "0" && v.Value != `""` && v.Value != "``" {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// classifyCond splits the condition at top-level || and classifies each
// disjunct, returning the kept asserts and the dropped originals.
func (c *candidateCtx) classifyCond(cond ast.Expr) (asserts []Assert, dropped []string) {
	for _, d := range splitOr(cond) {
		if as, ok := c.classify(d); ok {
			asserts = append(asserts, as)
		} else if !c.expectedErr {
			dropped = append(dropped, exprString(c.w.ex.p.Fset, d))
		}
	}
	return asserts, dropped
}

// splitOr decomposes a condition at top-level || operators.
func splitOr(e ast.Expr) []ast.Expr {
	e = unparen(e)
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.LOR {
		return append(splitOr(b.X), splitOr(b.Y)...)
	}
	return []ast.Expr{e}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// classify decides whether one disjunct is a workload-independent oracle.
// The taxonomy (DESIGN.md §8):
//
//	erroracle  err != nil                        call must succeed
//	sentinel   !errors.Is(err, ErrX), zero args  degenerate input maps to its sentinel
//	nonnil     x == nil                          accessor must return a value
//	nonneg     x < 0, x <= 0                     counter/size is structurally bounded
//	zerolen    len(x) != 0, len(x) > 0           anomaly accumulator must be empty
//	relation   x <op> y, no literals             results constrain each other
//
// Everything else — exact values, boolean presence flags, non-zero counts —
// depends on what the workload happens to have done and is dropped.
func (c *candidateCtx) classify(d ast.Expr) (Assert, bool) {
	d = unparen(d)
	switch v := d.(type) {
	case *ast.BinaryExpr:
		return c.classifyBinary(v)
	case *ast.UnaryExpr:
		if v.Op != token.NOT {
			return Assert{}, false
		}
		call, ok := unparen(v.X).(*ast.CallExpr)
		if !ok || !c.isErrorsIs(call) {
			return Assert{}, false
		}
		if !c.zeroishArgs() {
			return Assert{}, false
		}
		s, err := c.render(d)
		if err != nil {
			return Assert{}, false
		}
		return Assert{Cond: s, Kind: "sentinel"}, true
	}
	return Assert{}, false
}

func (c *candidateCtx) classifyBinary(b *ast.BinaryExpr) (Assert, bool) {
	x, y := unparen(b.X), unparen(b.Y)
	// Normalize literal/nil to the right.
	if isNilIdent(x) || isZeroLit(x) {
		x, y = y, x
	}
	switch {
	case isNilIdent(y):
		if c.isErrRef(x) {
			switch b.Op {
			case token.NEQ:
				s, err := c.render(b)
				if err != nil {
					return Assert{}, false
				}
				return Assert{Cond: s, Kind: "erroracle", WrapErr: true}, true
			case token.EQL:
				c.expectedErr = true
				return Assert{}, false
			}
			return Assert{}, false
		}
		if b.Op == token.EQL {
			s, err := c.render(b)
			if err != nil {
				return Assert{}, false
			}
			return Assert{Cond: s, Kind: "nonnil"}, true
		}
		if b.Op == token.NEQ && c.errorTypedCall(x) {
			// Expression-guard form of the error oracle.
			s, err := c.render(b)
			if err != nil {
				return Assert{}, false
			}
			return Assert{Cond: s, Kind: "erroracle"}, true
		}
		return Assert{}, false
	case isZeroLit(y):
		switch b.Op {
		case token.LSS, token.LEQ:
			s, err := c.render(b)
			if err != nil {
				return Assert{}, false
			}
			return Assert{Cond: s, Kind: "nonneg"}, true
		case token.NEQ, token.GTR:
			// Only the emptiness of a call-produced accumulator is
			// workload-independent; a bare counter != 0 is not.
			if call, ok := x.(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "len" {
					s, err := c.render(b)
					if err != nil {
						return Assert{}, false
					}
					return Assert{Cond: s, Kind: "zerolen"}, true
				}
			}
		}
		return Assert{}, false
	case !hasLiteral(b):
		// Relations are only workload-independent when both operands come
		// from one defining call — a single atomic sample of related state
		// (assigned/committed from Zxids()). Comparing two separate calls
		// (tree.SerializedCount() vs tree.Count()) races the workload.
		if c.defCall == nil || containsCall(b) {
			return Assert{}, false
		}
		s, err := c.render(b)
		if err != nil {
			return Assert{}, false
		}
		return Assert{Cond: s, Kind: "relation"}, true
	}
	return Assert{}, false
}

// isErrRef reports whether e is an identifier bound to an error-typed result.
func (c *candidateCtx) isErrRef(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.w.ex.p.Info.Uses[id]
	return obj != nil && c.errObjs[obj]
}

// errorTypedCall reports whether e is a call with a single error result.
func (c *candidateCtx) errorTypedCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if tv, ok := c.w.ex.p.Info.Types[call]; ok && tv.Type != nil {
		return isErrorType(tv.Type)
	}
	return false
}

// isErrorsIs reports whether call is errors.Is(err, <pkg-level sentinel>)
// with the err operand an error-typed result. Matched syntactically on the
// import qualifier: the placeholder importer leaves std selections untyped.
func (c *candidateCtx) isErrorsIs(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Is" {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok || x.Name != "errors" {
		return false
	}
	if len(call.Args) != 2 {
		return false
	}
	return c.isErrRef(unparen(call.Args[0]))
}

// hasErrAssert reports whether any kept assert already consults the error.
func (c *candidateCtx) hasErrAssert(asserts []Assert) bool {
	for _, a := range asserts {
		if a.Kind == "erroracle" || a.Kind == "sentinel" {
			return true
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// containsCall reports whether the expression contains any call (conversions
// included — conservative).
func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// hasLiteral reports whether the expression contains any literal constant.
func hasLiteral(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BasicLit:
			found = true
		case *ast.Ident:
			if v.Name == "nil" || v.Name == "true" || v.Name == "false" {
				found = true
			}
		}
		return !found
	})
	return found
}

// render renders an expression over the checker's locals: renamed results,
// the subject as "subject", package-level declarations verbatim, and a short
// allow-list of std qualifiers. Anything else — test locals, helpers, other
// packages — is an error, which drops the disjunct.
func (c *candidateCtx) render(e ast.Expr) (string, error) {
	p := c.w.ex.p
	switch v := e.(type) {
	case *ast.Ident:
		obj := p.Info.Uses[v]
		if obj == nil {
			obj = p.Info.Defs[v]
		}
		if obj == nil {
			return "", fmt.Errorf("unresolved identifier %s", v.Name)
		}
		if name, ok := c.results[obj]; ok {
			c.refs[obj] = true
			return name, nil
		}
		if obj == c.subject {
			return "subject", nil
		}
		if obj.Parent() == types.Universe {
			return v.Name, nil
		}
		if _, ok := obj.(*types.Builtin); ok {
			return v.Name, nil
		}
		if obj.Pkg() == p.Types && obj.Parent() == p.Types.Scope() {
			return v.Name, nil // package-level sentinel, const, type
		}
		return "", fmt.Errorf("references test-local %s", v.Name)
	case *ast.SelectorExpr:
		if x, ok := v.X.(*ast.Ident); ok {
			if _, isPkg := p.Info.Uses[x].(*types.PkgName); isPkg {
				if !allowedQual[x.Name] {
					return "", fmt.Errorf("references package %s", x.Name)
				}
				c.quals[x.Name] = true
				return x.Name + "." + v.Sel.Name, nil
			}
		}
		xs, err := c.render(v.X)
		if err != nil {
			return "", err
		}
		return xs + "." + v.Sel.Name, nil
	case *ast.CallExpr:
		var fn string
		switch f := v.Fun.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.ArrayType:
			s, err := c.renderFun(f)
			if err != nil {
				return "", err
			}
			fn = s
		default:
			return "", fmt.Errorf("unsupported call form")
		}
		args := make([]string, 0, len(v.Args))
		for _, a := range v.Args {
			s, err := c.render(a)
			if err != nil {
				return "", err
			}
			args = append(args, s)
		}
		return fn + "(" + strings.Join(args, ", ") + ")", nil
	case *ast.BasicLit:
		return v.Value, nil
	case *ast.UnaryExpr:
		s, err := c.render(v.X)
		if err != nil {
			return "", err
		}
		return v.Op.String() + s, nil
	case *ast.ParenExpr:
		s, err := c.render(v.X)
		if err != nil {
			return "", err
		}
		return "(" + s + ")", nil
	case *ast.BinaryExpr:
		xs, err := c.render(v.X)
		if err != nil {
			return "", err
		}
		ys, err := c.render(v.Y)
		if err != nil {
			return "", err
		}
		return xs + " " + v.Op.String() + " " + ys, nil
	case *ast.IndexExpr:
		xs, err := c.render(v.X)
		if err != nil {
			return "", err
		}
		is, err := c.render(v.Index)
		if err != nil {
			return "", err
		}
		return xs + "[" + is + "]", nil
	case *ast.StarExpr:
		s, err := c.render(v.X)
		if err != nil {
			return "", err
		}
		return "*" + s, nil
	case *ast.ArrayType:
		if id, ok := v.Elt.(*ast.Ident); ok && v.Len == nil {
			return "[]" + id.Name, nil
		}
	}
	return "", fmt.Errorf("unsupported expression")
}

func (c *candidateCtx) renderFun(f ast.Expr) (string, error) {
	if at, ok := f.(*ast.ArrayType); ok {
		return c.render(at)
	}
	return c.render(f)
}

// allowedQual is the std qualifier allow-list for rendered predicates.
var allowedQual = map[string]bool{
	"errors": true, "bytes": true, "strings": true,
}

// qualImport maps an allowed qualifier to its import path.
var qualImport = map[string]string{
	"errors": "errors", "bytes": "bytes", "strings": "strings",
}

// exprString renders an expression as it appears in the source (for dropped
// lists and rejection details).
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "<unprintable>"
	}
	return strings.Join(strings.Fields(b.String()), " ")
}

// --- small type helpers ---

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

func namedType(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func isPointer(t types.Type) bool {
	_, ok := t.(*types.Pointer)
	return ok
}

// methodOpName renders a method as (*T).M or T.M for Site.Op.
func methodOpName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return fn.Name()
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			return "(*" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// trailingErrorResult returns the index of the method's final error result,
// or -1.
func trailingErrorResult(fn *types.Func) int {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Results() == nil || sig.Results().Len() == 0 {
		return -1
	}
	i := sig.Results().Len() - 1
	if isErrorType(sig.Results().At(i).Type()) {
		return i
	}
	return -1
}

func checkerKind(vulnerable bool) string {
	if vulnerable {
		return "mimic"
	}
	return "signal"
}
