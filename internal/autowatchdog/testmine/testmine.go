// Package testmine is the second AutoWatchdog checker source: instead of
// reducing long-running mainline regions (§4, package autowatchdog), it mines
// runtime-checkable invariants out of the package's own test suite — the
// FlyCatcher observation that existing test assertions encode oracles the
// mainline reduction never sees.
//
// The pipeline has four stages (DESIGN.md §8):
//
//	extract   walk every same-package _test.go file and collect assertion
//	          guards: `if <cond> { t.Fatal*/t.Error* }` where <cond>
//	          references the results of a method call on an exported subject
//	          type declared in the package under test;
//	purity    the called method (and everything it transitively calls inside
//	          the package) must be side-effect-free — watchdog checkers run
//	          concurrently with production traffic and must not mutate shared
//	          state (§3.2);
//	evaluable the predicate must be evaluable against a synced watchdog
//	          Context at an arbitrary moment: call arguments must be
//	          portable literals, and every workload-dependent disjunct
//	          (exact values, boolean presence flags, non-zero counts) is
//	          dropped, keeping only workload-independent oracles — error
//	          oracles, sentinel checks on zero-ish inputs, relational
//	          invariants between results, emptiness of anomaly lists;
//	emit      surviving predicates become signal/mimic checkers in a
//	          <pkg>_testmine_wd_gen.go file with `awgen:source`,
//	          `awgen:mode from-tests`, and per-checker
//	          `awgen:from-test <file>:<line>` provenance headers.
//
// The output is deterministic for a given source tree, which is what lets
// wdlint's genfresh analyzer re-mine and byte-compare committed files, and
// its testmine analyzer police the provenance headers.
package testmine

import (
	"fmt"
	"sort"
	"strings"
)

// Provenance directives embedded in generated files. GenSourceDirective
// matches the region generator's header so genfresh finds the source package
// the same way for both modes; GenModeDirective distinguishes the modes.
const (
	GenSourceDirective    = "awgen:source"
	GenModeDirective      = "awgen:mode"
	GenModeFromTests      = "from-tests"
	FromTestDirective     = "awgen:from-test"
	generatedFileSuffix   = "_testmine_wd_gen.go"
	defaultWatchdogImport = "gowatchdog/internal/watchdog"
)

// Config parameterizes one mining run.
type Config struct {
	// PackageDir is the directory of the package whose tests are mined.
	PackageDir string
	// OutDir, when set, is where Generate writes the checkers file.
	OutDir string
	// WatchdogImport overrides the watchdog package import path.
	WatchdogImport string
	// CheckerPrefix overrides the package name as the checker-name prefix.
	CheckerPrefix string
	// MaxPurityDepth bounds recursion into package-local callees during the
	// purity walk (default 4); beyond it the name heuristic applies.
	MaxPurityDepth int
}

func (c Config) withDefaults() Config {
	if c.WatchdogImport == "" {
		c.WatchdogImport = defaultWatchdogImport
	}
	if c.MaxPurityDepth <= 0 {
		c.MaxPurityDepth = 4
	}
	return c
}

// Assert is one surviving predicate of a mined checker: the violation
// condition (the test's failure guard, already oriented so that true means
// the invariant is broken) plus its classification.
type Assert struct {
	// Cond is the rendered violation condition over the checker's locals
	// (subject, v0..vN, err).
	Cond string `json:"cond"`
	// Kind classifies the oracle: erroracle, sentinel, relation, zerolen,
	// nonneg, nonnil.
	Kind string `json:"kind"`
	// WrapErr marks error oracles, which wrap the error with %w.
	WrapErr bool `json:"wrap_err,omitempty"`
}

// MinedChecker is one checker mined from a test assertion.
type MinedChecker struct {
	// Name is the registered checker name (<prefix>.mined.<subject>_<method>).
	Name string `json:"name"`
	// Subject is the exported type the checker evaluates against.
	Subject string `json:"subject"`
	// SubjectPtr records whether the test held the subject by pointer.
	SubjectPtr bool `json:"subject_ptr"`
	// Kind is "mimic" when the probed method transitively passes through
	// vulnerable operations (injector fault points, os/net I/O), else
	// "signal".
	Kind string `json:"kind"`
	// Method is the probed method in (*T).M form, used as the Op site.
	Method string `json:"method"`
	// Call is the rendered defining call ("v0, err := subject.Scan(...)");
	// empty for pure expression guards, whose calls live in the asserts.
	Call string `json:"call,omitempty"`
	// Asserts are the surviving predicates, in guard order.
	Asserts []Assert `json:"asserts"`
	// Dropped lists the workload-dependent disjuncts that were discarded.
	Dropped []string `json:"dropped,omitempty"`
	// TestFunc, File, Line locate the provenance assertion.
	TestFunc string `json:"test_func"`
	File     string `json:"file"`
	Line     int    `json:"line"`

	quals map[string]bool // std qualifiers referenced by rendered exprs
}

// Rejection records a candidate assertion that did not survive a filter —
// the report keeps them so the mining decisions are auditable.
type Rejection struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Subject string `json:"subject,omitempty"`
	Reason  string `json:"reason"`
	Detail  string `json:"detail,omitempty"`
}

// Analysis is the result of mining one package.
type Analysis struct {
	// Package is the package name.
	Package string
	// Dir is the analyzed directory.
	Dir string
	// SourceRel is the module-relative source directory (slash form), the
	// awgen:source value.
	SourceRel string
	// TestFiles is the number of same-package test files walked.
	TestFiles int
	// Guards is the number of assertion guards seen.
	Guards int
	// Checkers are the mined checkers, ordered by (file, line).
	Checkers []MinedChecker
	// Rejected are the audited filter rejections, ordered by (file, line).
	Rejected []Rejection

	cfg Config
}

// Mine runs the extraction pipeline over cfg.PackageDir.
func Mine(cfg Config) (*Analysis, error) {
	cfg = cfg.withDefaults()
	p, err := loadPackage(cfg.PackageDir)
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		Package:   p.Name,
		Dir:       p.Dir,
		SourceRel: p.SourceRel,
		cfg:       cfg,
	}
	ex := &extractor{p: p, a: a, cfg: cfg}
	ex.run()
	a.finalize()
	return a, nil
}

// finalize dedups, names, and orders the mined checkers.
func (a *Analysis) finalize() {
	sort.SliceStable(a.Checkers, func(i, j int) bool {
		x, y := a.Checkers[i], a.Checkers[j]
		if x.File != y.File {
			return x.File < y.File
		}
		return x.Line < y.Line
	})
	// Dedup: the same method asserted the same way in several tests is one
	// invariant. Argument values only distinguish sentinel oracles, where
	// the expected error depends on the input shape.
	seen := make(map[string]bool)
	kept := a.Checkers[:0]
	for _, c := range a.Checkers {
		key := c.dedupKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		kept = append(kept, c)
	}
	a.Checkers = kept

	// Subsumption: a checker whose asserts are a strict subset of a richer
	// same-method checker adds no coverage. Sentinel oracles are only
	// comparable when the defining calls (and so the input shapes) match.
	drop := make([]bool, len(a.Checkers))
	for i := range a.Checkers {
		for j := range a.Checkers {
			if i == j || drop[j] {
				continue
			}
			if subsumedBy(&a.Checkers[i], &a.Checkers[j]) {
				drop[i] = true
				break
			}
		}
	}
	kept = a.Checkers[:0]
	for i, c := range a.Checkers {
		if !drop[i] {
			kept = append(kept, c)
		}
	}
	a.Checkers = kept

	prefix := a.cfg.CheckerPrefix
	if prefix == "" {
		prefix = a.Package
	}
	used := make(map[string]int)
	for i := range a.Checkers {
		c := &a.Checkers[i]
		base := fmt.Sprintf("%s.mined.%s_%s", prefix,
			strings.ToLower(c.Subject), strings.ToLower(methodBase(c.Method)))
		used[base]++
		if n := used[base]; n > 1 {
			c.Name = fmt.Sprintf("%s_%d", base, n)
		} else {
			c.Name = base
		}
	}
	sort.SliceStable(a.Rejected, func(i, j int) bool {
		x, y := a.Rejected[i], a.Rejected[j]
		if x.File != y.File {
			return x.File < y.File
		}
		return x.Line < y.Line
	})
}

// subsumedBy reports whether a's asserts are a strict subset of b's for the
// same method.
func subsumedBy(a, b *MinedChecker) bool {
	if a.Method != b.Method || len(a.Asserts) >= len(b.Asserts) {
		return false
	}
	conds := make(map[string]bool, len(b.Asserts))
	sentinel := false
	for _, as := range b.Asserts {
		conds[as.Cond] = true
		sentinel = sentinel || as.Kind == "sentinel"
	}
	for _, as := range a.Asserts {
		if !conds[as.Cond] {
			return false
		}
		sentinel = sentinel || as.Kind == "sentinel"
	}
	if sentinel && a.Call != b.Call {
		return false
	}
	return true
}

func (c *MinedChecker) dedupKey() string {
	kinds := make([]string, 0, len(c.Asserts))
	sentinel := false
	for _, as := range c.Asserts {
		kinds = append(kinds, as.Kind+":"+as.Cond)
		if as.Kind == "sentinel" {
			sentinel = true
		}
	}
	sort.Strings(kinds)
	key := c.Method + "|" + strings.Join(kinds, ";")
	if sentinel {
		key += "|" + c.Call
	}
	return key
}

// methodBase extracts M from (*T).M or T.M.
func methodBase(m string) string {
	if i := strings.LastIndex(m, "."); i >= 0 {
		return m[i+1:]
	}
	return m
}

// Mimics returns how many mined checkers are mimic-class.
func (a *Analysis) Mimics() int {
	n := 0
	for _, c := range a.Checkers {
		if c.Kind == "mimic" {
			n++
		}
	}
	return n
}
