package testmine

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// pkgInfo is the mined package: every same-package source file — tests
// included, unlike wdlint's loader — parsed and type-checked together, so
// subjects produced by test helpers (`s := openStore(t, nil)`) resolve to
// their concrete types. Type checking is tolerant: all imports (standard
// library included) are satisfied with empty placeholder packages, because
// the miner only needs type information for declarations local to the
// package under test; anything crossing an import boundary is judged
// syntactically.
type pkgInfo struct {
	Name       string
	Dir        string
	ModuleRoot string
	ModulePath string
	// SourceRel is Dir relative to ModuleRoot, slash form.
	SourceRel string

	Fset     *token.FileSet
	Files    []*ast.File // sorted by file name, tests included
	IsTest   map[*ast.File]bool
	FileName map[*ast.File]string // absolute paths
	Types    *types.Package
	Info     *types.Info

	funcDecls map[*types.Func]*ast.FuncDecl // package-local bodies, for purity walks
}

// Pos converts a token.Pos via the package file set.
func (p *pkgInfo) Pos(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// relFile renders an absolute source path relative to the module root.
func (p *pkgInfo) relFile(abs string) string {
	rel, err := filepath.Rel(p.ModuleRoot, abs)
	if err != nil {
		return abs
	}
	return filepath.ToSlash(rel)
}

// loadPackage parses and type-checks the package in dir, tests included.
// External test packages (package foo_test) are skipped: their assertions
// only see the exported API through an import and would need cross-package
// type resolution the placeholder importer cannot provide.
func loadPackage(dir string) (*pkgInfo, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("testmine: %s is outside module %s", dir, modRoot)
	}

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, fmt.Errorf("testmine: %w", err)
	}
	p := &pkgInfo{
		Dir:        abs,
		ModuleRoot: modRoot,
		ModulePath: modPath,
		SourceRel:  filepath.ToSlash(rel),
		Fset:       token.NewFileSet(),
		IsTest:     make(map[*ast.File]bool),
		FileName:   make(map[*ast.File]string),
		funcDecls:  make(map[*types.Func]*ast.FuncDecl),
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		full := filepath.Join(abs, name)
		f, err := parser.ParseFile(p.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("testmine: parse %s: %w", full, err)
		}
		// Majority package is the first non-test package name seen; stray
		// files of other packages (goldens, external test packages) are
		// skipped, matching wdlint's tolerance.
		if p.Name == "" && !strings.HasSuffix(name, "_test.go") {
			p.Name = f.Name.Name
		}
		if p.Name != "" && f.Name.Name != p.Name {
			continue
		}
		if p.Name == "" {
			// Only test files so far; accept the in-package test name.
			if strings.HasSuffix(f.Name.Name, "_test") {
				continue
			}
			p.Name = f.Name.Name
		}
		p.Files = append(p.Files, f)
		p.FileName[f] = full
		p.IsTest[f] = strings.HasSuffix(name, "_test.go")
	}
	if p.Name == "" || len(p.Files) == 0 {
		return nil, fmt.Errorf("testmine: no Go package in %s", dir)
	}

	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{
		Importer:                 placeholderImporter{cache: make(map[string]*types.Package)},
		Error:                    func(error) {}, // tolerated: placeholders are opaque on purpose
		FakeImportC:              true,
		DisableUnusedImportCheck: true,
	}
	p.Types, _ = cfg.Check(p.SourceRel, p.Fset, p.Files, p.Info)

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok && obj != nil {
				p.funcDecls[obj] = fd
			}
		}
	}
	return p, nil
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (root, path string, err error) {
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.Trim(strings.TrimSpace(rest), `"`), nil
				}
			}
			return "", "", fmt.Errorf("testmine: no module path in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("testmine: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// placeholderImporter satisfies every import with a named, complete, empty
// package: references through it become ordinary tolerated type errors.
type placeholderImporter struct {
	cache map[string]*types.Package
}

func (pi placeholderImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := pi.cache[path]; ok {
		return pkg, nil
	}
	name := path
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	pi.cache[path] = pkg
	return pkg, nil
}
