package testmine

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/autowatchdog/testmine -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// mineSample mines the minesample fixture, which exercises every extraction
// path: pure mined predicates, impure rejections, unexported subjects,
// test-local arguments, sentinel oracles, and dropped disjuncts.
func mineSample(t *testing.T) *Analysis {
	t.Helper()
	a, err := Mine(Config{PackageDir: filepath.Join("testdata", "src", "minesample")})
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	return a
}

// golden compares got against the named golden file byte-for-byte, or
// rewrites the golden file under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGoldenSummary pins the human-readable mining report: every mined
// checker with its asserts and provenance, and every audited rejection.
func TestGoldenSummary(t *testing.T) {
	a := mineSample(t)
	var b bytes.Buffer
	a.Summary(&b)
	golden(t, "minesample.golden.summary", b.Bytes())
}

// TestGoldenJSONReport pins the machine-readable report consumed by CI.
func TestGoldenJSONReport(t *testing.T) {
	a := mineSample(t)
	var b bytes.Buffer
	if err := a.ReportJSON(&b); err != nil {
		t.Fatal(err)
	}
	golden(t, "minesample.golden.json", b.Bytes())
}

// TestGoldenGeneratedChecker pins the generated checkers file byte-for-byte;
// any change to extraction, purity walking, classification, or the emitter
// shows up here as a reviewable diff.
func TestGoldenGeneratedChecker(t *testing.T) {
	a := mineSample(t)
	golden(t, "minesample_testmine_wd_gen.go.golden", a.GeneratedSource())
}

// TestMineSampleShape asserts the structural properties the goldens rely on,
// so a bad -update run cannot silently bless a regression.
func TestMineSampleShape(t *testing.T) {
	a := mineSample(t)

	if a.Package != "minesample" {
		t.Fatalf("Package = %q, want minesample", a.Package)
	}
	byName := make(map[string]MinedChecker)
	for _, c := range a.Checkers {
		byName[c.Name] = c
	}

	// Pure predicates mined.
	if c, ok := byName["minesample.mined.probe_epoch"]; !ok {
		t.Errorf("missing mined checker for Epoch; have %v", names(a))
	} else if c.Kind != "signal" {
		t.Errorf("Epoch checker kind = %q, want signal", c.Kind)
	}
	if _, ok := byName["minesample.mined.probe_marks"]; !ok {
		t.Errorf("missing mined checker for Marks; have %v", names(a))
	}

	// The vulnerable (os I/O) method is mimic-class.
	if c, ok := byName["minesample.mined.probe_verify"]; !ok {
		t.Errorf("missing mined checker for Verify; have %v", names(a))
	} else if c.Kind != "mimic" {
		t.Errorf("Verify checker kind = %q, want mimic", c.Kind)
	}

	// Sentinel and err-oracle Lookup checkers both survive dedup (the
	// sentinel's input shape distinguishes them).
	sentinels, oracles := 0, 0
	for _, c := range a.Checkers {
		if c.Method != "(*Probe).Lookup" {
			continue
		}
		for _, as := range c.Asserts {
			switch as.Kind {
			case "sentinel":
				sentinels++
			case "erroracle":
				oracles++
			}
		}
	}
	if sentinels != 1 || oracles != 1 {
		t.Errorf("Lookup checkers: %d sentinel, %d erroracle asserts, want 1 and 1", sentinels, oracles)
	}

	// The workload-dependent value comparison was dropped, not mined.
	for _, c := range a.Checkers {
		for _, as := range c.Asserts {
			if strings.Contains(as.Cond, `"v:k"`) {
				t.Errorf("workload-dependent disjunct mined: %s", as.Cond)
			}
		}
	}

	// Every rejection path in TestProbeRejections is audited.
	wantReasons := []string{
		"impure method (*Probe).Advance",
		"unexported subject type",
		"non-portable argument to (*Probe).Lookup",
		"expected-error assertion on (*Probe).Lookup",
	}
	for _, want := range wantReasons {
		found := false
		for _, r := range a.Rejected {
			if strings.Contains(r.Reason, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no rejection with reason containing %q; have %v", want, reasons(a))
		}
	}

	// Provenance: every mined checker points into a fixture test file.
	for _, c := range a.Checkers {
		if !strings.HasSuffix(c.File, "minesample_test.go") || c.Line <= 0 {
			t.Errorf("checker %s has bad provenance %s:%d", c.Name, c.File, c.Line)
		}
		if c.TestFunc == "" {
			t.Errorf("checker %s missing TestFunc", c.Name)
		}
	}
}

func names(a *Analysis) []string {
	var out []string
	for _, c := range a.Checkers {
		out = append(out, c.Name)
	}
	return out
}

func reasons(a *Analysis) []string {
	var out []string
	for _, r := range a.Rejected {
		out = append(out, r.Reason)
	}
	return out
}
