package autowatchdog

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
)

// hookTarget maps one retained vulnerable-op line to its checker.
type hookTarget struct {
	checker string
	op      VulnerableOp
}

// Instrument writes instrumented copies of the package's sources into
// cfg.OutDir: before every statement containing a retained vulnerable
// operation, a wdhooks.Capture call is inserted that pushes the operation's
// identifier-valued arguments (and its callee) into the matching checker's
// context — the paper's "insert context API hooks in P to synchronize
// state" (Figure 2's ContextFactory.serializeSnapshot_reduced_args_setter).
//
// It returns the list of written files. Files without any retained
// operation are copied verbatim so OutDir holds a complete buildable
// package.
func (a *Analysis) Instrument(hooksImport string) ([]string, error) {
	if a.cfg.OutDir == "" {
		return nil, fmt.Errorf("autowatchdog: Instrument requires OutDir")
	}
	if hooksImport == "" {
		hooksImport = "gowatchdog/internal/autowatchdog/wdhooks"
	}
	if err := os.MkdirAll(a.cfg.OutDir, 0o755); err != nil {
		return nil, err
	}

	// Index retained op lines per file.
	targets := make(map[string]map[int]hookTarget) // file -> line -> target
	for _, r := range a.Regions {
		checker := a.CheckerName(r.Root)
		for _, op := range r.Ops {
			if targets[op.File] == nil {
				targets[op.File] = make(map[int]hookTarget)
			}
			targets[op.File][op.Line] = hookTarget{checker: checker, op: op}
		}
	}

	var written []string
	for name, file := range a.files {
		if lines := targets[name]; len(lines) > 0 {
			inserted := 0
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				inserted += a.instrumentBlock(fd.Body, lines)
			}
			if inserted > 0 {
				addNamedImport(file, "wdhooks", hooksImport)
			}
		}
		outPath := filepath.Join(a.cfg.OutDir, name)
		f, err := os.Create(outPath)
		if err != nil {
			return written, err
		}
		cfg := printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8}
		if err := cfg.Fprint(f, a.fset, file); err != nil {
			f.Close()
			return written, err
		}
		if err := f.Close(); err != nil {
			return written, err
		}
		written = append(written, outPath)
	}
	return written, nil
}

// instrumentBlock inserts hooks into b for any target line whose innermost
// enclosing statement list is b's, and recurses into nested blocks and
// select/switch clause bodies. It returns the number of hooks inserted.
func (a *Analysis) instrumentBlock(b *ast.BlockStmt, lines map[int]hookTarget) int {
	n, list := a.instrumentList(b.List, lines)
	b.List = list
	return n
}

// instrumentList processes one statement list (a block body or a clause
// body) and returns the rewritten list.
func (a *Analysis) instrumentList(stmts []ast.Stmt, lines map[int]hookTarget) (int, []ast.Stmt) {
	inserted := 0
	out := make([]ast.Stmt, 0, len(stmts))
	for _, stmt := range stmts {
		// Clause bodies are statement lists without a BlockStmt wrapper; a
		// hook for an op inside them must land inside the clause.
		switch cl := stmt.(type) {
		case *ast.CommClause:
			k, nl := a.instrumentList(cl.Body, lines)
			cl.Body = nl
			inserted += k
			out = append(out, stmt)
			continue
		case *ast.CaseClause:
			k, nl := a.instrumentList(cl.Body, lines)
			cl.Body = nl
			inserted += k
			out = append(out, stmt)
			continue
		}
		// Recurse into nested blocks (their ops belong to them).
		ast.Inspect(stmt, func(n ast.Node) bool {
			if nb, ok := n.(*ast.BlockStmt); ok {
				inserted += a.instrumentBlock(nb, lines)
				return false
			}
			return true
		})
		if ht, call, ok := a.directTarget(stmt, lines); ok {
			out = append(out, buildHookStmt(ht.checker, ht.op, call))
			inserted++
		}
		out = append(out, stmt)
	}
	return inserted, out
}

// directTarget finds a target vulnerable call whose position lies in stmt
// but not inside any nested block of stmt.
func (a *Analysis) directTarget(stmt ast.Stmt, lines map[int]hookTarget) (hookTarget, *ast.CallExpr, bool) {
	var nested []*ast.BlockStmt
	ast.Inspect(stmt, func(n ast.Node) bool {
		if nb, ok := n.(*ast.BlockStmt); ok {
			nested = append(nested, nb)
			return false
		}
		return true
	})
	inNested := func(p token.Pos) bool {
		for _, nb := range nested {
			if p >= nb.Pos() && p <= nb.End() {
				return true
			}
		}
		return false
	}
	var found hookTarget
	var foundCall *ast.CallExpr
	ok := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if ok {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		line := a.fset.Position(call.Pos()).Line
		ht, hit := lines[line]
		if !hit || inNested(call.Pos()) {
			return true
		}
		found, foundCall, ok = ht, call, true
		return false
	})
	return found, foundCall, ok
}

// buildHookStmt constructs:
//
//	wdhooks.Capture("<checker>", map[string]any{"op": "<callee>", "argN": ident, ...})
//
// Only plain identifier arguments are captured — they are safe to
// re-evaluate and cheap to replicate.
func buildHookStmt(checker string, op VulnerableOp, call *ast.CallExpr) ast.Stmt {
	elts := []ast.Expr{
		&ast.KeyValueExpr{
			Key:   &ast.BasicLit{Kind: token.STRING, Value: strconv.Quote("op")},
			Value: &ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(op.Callee)},
		},
	}
	if call != nil {
		for i, arg := range call.Args {
			id, okID := arg.(*ast.Ident)
			if !okID || id.Name == "_" || id.Name == "nil" || id.Name == "true" || id.Name == "false" {
				continue
			}
			elts = append(elts, &ast.KeyValueExpr{
				Key:   &ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(fmt.Sprintf("arg%d", i))},
				Value: &ast.Ident{Name: id.Name},
			})
		}
	}
	return &ast.ExprStmt{X: &ast.CallExpr{
		Fun: &ast.SelectorExpr{
			X:   &ast.Ident{Name: "wdhooks"},
			Sel: &ast.Ident{Name: "Capture"},
		},
		Args: []ast.Expr{
			&ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(checker)},
			&ast.CompositeLit{
				Type: &ast.MapType{
					Key:   &ast.Ident{Name: "string"},
					Value: &ast.Ident{Name: "any"},
				},
				Elts: elts,
			},
		},
	}}
}

// addNamedImport prepends `import wdhooks "<path>"` to the file unless
// already present.
func addNamedImport(f *ast.File, name, path string) {
	for _, imp := range f.Imports {
		if imp.Path.Value == strconv.Quote(path) {
			return
		}
	}
	spec := &ast.ImportSpec{
		Name: &ast.Ident{Name: name},
		Path: &ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(path)},
	}
	decl := &ast.GenDecl{Tok: token.IMPORT, Specs: []ast.Spec{spec}}
	f.Decls = append([]ast.Decl{decl}, f.Decls...)
	f.Imports = append(f.Imports, spec)
}
