// Package autowatchdog implements the paper's §4 AutoWatchdog: automatic
// generation of mimic-type watchdogs through *program logic reduction*.
//
// Given a Go package, the analyzer
//
//  1. extracts the code regions that may execute continuously (functions
//     containing unbounded loops, plus anything matching the configured
//     entry patterns), excluding initialization-stage code;
//  2. retains only the operations worth monitoring — those vulnerable to
//     production faults: I/O, synchronization, resource, and communication
//     calls, matched by configurable patterns or //wd:vulnerable
//     annotations;
//  3. performs a global reduction along call chains, keeping one
//     representative per distinct vulnerable callee ("if P invoked write()
//     many times in a loop, W may only need to invoke write() once");
//  4. generates a checker per region (invoking the reduced operations
//     through the generic wdruntime mimics) and instruments the original
//     sources with context hooks before each vulnerable operation.
//
// The paper's prototype targets Java bytecode via Soot; this implementation
// targets Go source via go/ast, as the paper anticipates ("the proposed
// technique is not Java-specific").
package autowatchdog

import (
	"fmt"
	"regexp"
	"strconv"
)

// OpKind classifies a vulnerable operation, selecting which generic mimic
// the generated checker runs.
type OpKind int

const (
	// KindDiskWrite covers file/disk writes and syncs.
	KindDiskWrite OpKind = iota
	// KindDiskRead covers file/disk reads.
	KindDiskRead
	// KindNetSend covers network dials and sends.
	KindNetSend
	// KindNetRecv covers network receives and accepts.
	KindNetRecv
	// KindSync covers lock acquisition and waiting.
	KindSync
	// KindChan covers channel sends and receives.
	KindChan
	// KindGeneric covers developer-annotated operations with no builtin
	// mimic.
	KindGeneric
)

// String returns the kind name.
func (k OpKind) String() string {
	switch k {
	case KindDiskWrite:
		return "disk-write"
	case KindDiskRead:
		return "disk-read"
	case KindNetSend:
		return "net-send"
	case KindNetRecv:
		return "net-recv"
	case KindSync:
		return "sync"
	case KindChan:
		return "chan"
	default:
		return "generic"
	}
}

// MarshalJSON renders the kind as its string name, keeping machine-readable
// reports stable even if the numeric constants are reordered.
func (k OpKind) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(k.String())), nil
}

// UnmarshalJSON accepts the string names emitted by MarshalJSON.
func (k *OpKind) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("autowatchdog: OpKind: %w", err)
	}
	for c := KindDiskWrite; c <= KindGeneric; c++ {
		if c.String() == s {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("autowatchdog: unknown OpKind %q", s)
}

// CallPattern marks calls whose final selector matches Method as vulnerable.
type CallPattern struct {
	// Method is the method or function name (the last selector component).
	Method string
	// Kind classifies matches.
	Kind OpKind
}

// DefaultPatterns is the built-in vulnerable-operation vocabulary: the
// paper's "I/O, synchronization, resource, and communication related method
// invocations".
func DefaultPatterns() []CallPattern {
	return []CallPattern{
		// Disk / file writes.
		{Method: "Write", Kind: KindDiskWrite},
		{Method: "WriteString", Kind: KindDiskWrite},
		{Method: "WriteFile", Kind: KindDiskWrite},
		{Method: "WriteRecord", Kind: KindDiskWrite},
		{Method: "Sync", Kind: KindDiskWrite},
		{Method: "Flush", Kind: KindDiskWrite},
		{Method: "Create", Kind: KindDiskWrite},
		{Method: "OpenFile", Kind: KindDiskWrite},
		{Method: "MkdirAll", Kind: KindDiskWrite},
		{Method: "Remove", Kind: KindDiskWrite},
		{Method: "RemoveAll", Kind: KindDiskWrite},
		{Method: "Truncate", Kind: KindDiskWrite},
		{Method: "Append", Kind: KindDiskWrite},
		// Disk / file reads.
		{Method: "Read", Kind: KindDiskRead},
		{Method: "ReadFile", Kind: KindDiskRead},
		{Method: "ReadFull", Kind: KindDiskRead},
		{Method: "ReadDir", Kind: KindDiskRead},
		{Method: "ReadAt", Kind: KindDiskRead},
		{Method: "Open", Kind: KindDiskRead},
		{Method: "Stat", Kind: KindDiskRead},
		// Network.
		{Method: "Dial", Kind: KindNetSend},
		{Method: "DialTimeout", Kind: KindNetSend},
		{Method: "Send", Kind: KindNetSend},
		{Method: "Accept", Kind: KindNetRecv},
		{Method: "Listen", Kind: KindNetRecv},
		// Synchronization.
		{Method: "Lock", Kind: KindSync},
		{Method: "RLock", Kind: KindSync},
		{Method: "Wait", Kind: KindSync},
	}
}

// Config configures an analysis/generation run.
type Config struct {
	// PackageDir is the directory of the package to analyze.
	PackageDir string
	// OutDir receives generated and instrumented files. Generation fails if
	// empty when Generate/Instrument are called.
	OutDir string
	// Patterns is the vulnerable-call vocabulary; nil uses DefaultPatterns.
	Patterns []CallPattern
	// EntryPatterns are regexps over function names that force a function
	// to be treated as a long-running region root even without an unbounded
	// loop (e.g. "^Serve", "Loop$").
	EntryPatterns []string
	// MaxChainDepth bounds the call-chain walk (default 5).
	MaxChainDepth int
	// WatchdogImport is the import path of the watchdog package used by
	// generated code (default "gowatchdog/internal/watchdog").
	WatchdogImport string
	// RuntimeImport is the import path of the generic mimic runtime
	// (default "gowatchdog/internal/autowatchdog/wdruntime").
	RuntimeImport string
	// CheckerPrefix prefixes generated checker names (default: package name).
	CheckerPrefix string
	// DisableReduction keeps every vulnerable operation instead of one
	// representative per distinct callee — the ablation of §4.1's "removing
	// similar vulnerable operations" step, used to quantify how much work
	// reduction saves the checkers.
	DisableReduction bool
}

func (c *Config) applyDefaults() {
	if c.Patterns == nil {
		c.Patterns = DefaultPatterns()
	}
	if c.MaxChainDepth <= 0 {
		c.MaxChainDepth = 5
	}
	if c.WatchdogImport == "" {
		c.WatchdogImport = "gowatchdog/internal/watchdog"
	}
	if c.RuntimeImport == "" {
		c.RuntimeImport = "gowatchdog/internal/autowatchdog/wdruntime"
	}
}

// compiledEntries compiles the entry patterns, ignoring invalid ones.
func (c *Config) compiledEntries() []*regexp.Regexp {
	out := make([]*regexp.Regexp, 0, len(c.EntryPatterns))
	for _, p := range c.EntryPatterns {
		if re, err := regexp.Compile(p); err == nil {
			out = append(out, re)
		}
	}
	return out
}

// patternIndex maps method name -> kind for quick lookup.
func (c *Config) patternIndex() map[string]OpKind {
	idx := make(map[string]OpKind, len(c.Patterns))
	for _, p := range c.Patterns {
		idx[p.Method] = p.Kind
	}
	return idx
}
