package autowatchdog

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// VulnerableOp is one operation retained by the reduction.
type VulnerableOp struct {
	// Kind selects the generic mimic.
	Kind OpKind `json:"kind"`
	// Callee is the matched method name (the reduction's dedup key,
	// together with Kind).
	Callee string `json:"callee"`
	// Call is the rendered source of the call expression.
	Call string `json:"call"`
	// Func is the enclosing function (receiver-qualified).
	Func string `json:"func"`
	// File and Line locate the call in the original source.
	File string `json:"file"`
	Line int    `json:"line"`
	// Depth is the call-chain distance from the region root (0 = in the
	// root function itself).
	Depth int `json:"depth"`
	// Annotated marks //wd:vulnerable-tagged calls.
	Annotated bool `json:"annotated,omitempty"`
}

// Region is one long-running code region with its reduced operation set.
type Region struct {
	// Root is the region's entry function (receiver-qualified).
	Root string
	// File locates the root function.
	File string
	// Line is the root function's declaration line.
	Line int
	// Ops is the reduced vulnerable-operation set.
	Ops []VulnerableOp
	// TotalCalls counts every call expression seen along the chain before
	// reduction.
	TotalCalls int
	// TotalVulnerable counts vulnerable ops before deduplication.
	TotalVulnerable int
	// Statements counts statements along the analyzed chain.
	Statements int
	// ChainFuncs lists the functions visited along the call chain.
	ChainFuncs []string
}

// ReductionRatio returns retained ops / statements analyzed — how much of
// the region the checker must execute.
func (r *Region) ReductionRatio() float64 {
	if r.Statements == 0 {
		return 0
	}
	return float64(len(r.Ops)) / float64(r.Statements)
}

// Analysis is the result of analyzing one package.
type Analysis struct {
	// Package is the analyzed package name.
	Package string
	// Dir is the analyzed directory.
	Dir string
	// SourceRel is the analyzed directory relative to the enclosing module
	// root (falling back to the cleaned Dir outside a module). It is
	// embedded into generated files as the awgen:source provenance marker.
	SourceRel string
	// Regions are the long-running regions with reduced ops, sorted by root.
	Regions []Region

	cfg    Config
	fset   *token.FileSet
	files  map[string]*ast.File     // filename -> parsed file
	funcs  map[string]*ast.FuncDecl // qualified name -> decl
	fnFile map[string]string        // qualified name -> filename
}

// funcName renders a receiver-qualified function name like
// "(*Leader).syncToFollower" or "WriteRecord".
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var b strings.Builder
	switch t := fd.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			fmt.Fprintf(&b, "(*%s).", id.Name)
		}
	case *ast.Ident:
		fmt.Fprintf(&b, "(%s).", t.Name)
	}
	b.WriteString(fd.Name.Name)
	return b.String()
}

// Analyze parses the package and runs region extraction plus program logic
// reduction.
func Analyze(cfg Config) (*Analysis, error) {
	cfg.applyDefaults()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(cfg.PackageDir)
	if err != nil {
		return nil, fmt.Errorf("autowatchdog: %w", err)
	}
	a := &Analysis{
		Dir:       cfg.PackageDir,
		SourceRel: sourceRel(cfg.PackageDir),
		cfg:       cfg,
		fset:      fset,
		files:     make(map[string]*ast.File),
		funcs:     make(map[string]*ast.FuncDecl),
		fnFile:    make(map[string]string),
	}
	for _, e := range entries {
		name := e.Name()
		// Skip tests, previously generated checkers, and the package's own
		// watchdog extension (the checking execution must not be analyzed
		// as if it were the normal execution).
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasSuffix(name, "_wd_gen.go") ||
			name == "watchdog.go" {
			continue
		}
		path := filepath.Join(cfg.PackageDir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("autowatchdog: parse %s: %w", path, err)
		}
		if a.Package == "" {
			a.Package = f.Name.Name
		}
		a.files[name] = f
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				qn := funcName(fd)
				a.funcs[qn] = fd
				a.fnFile[qn] = name
			}
		}
	}
	if a.Package == "" {
		return nil, fmt.Errorf("autowatchdog: no Go files in %s", cfg.PackageDir)
	}
	a.extractRegions()
	return a, nil
}

// sourceRel expresses dir relative to the enclosing Go module root (the
// nearest ancestor holding a go.mod), using forward slashes so generated
// provenance markers are portable. Outside a module it falls back to the
// cleaned input path.
func sourceRel(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.ToSlash(filepath.Clean(dir))
	}
	probe := abs
	for {
		if _, err := os.Stat(filepath.Join(probe, "go.mod")); err == nil {
			if rel, err := filepath.Rel(probe, abs); err == nil {
				return filepath.ToSlash(rel)
			}
		}
		parent := filepath.Dir(probe)
		if parent == probe {
			break
		}
		probe = parent
	}
	return filepath.ToSlash(filepath.Clean(dir))
}

// isInitStage reports whether a function is initialization-stage code,
// excluded from checking (§4.1 "we exclude checking for code execution in
// the initialization stage").
func isInitStage(name string) bool {
	base := name
	if i := strings.LastIndex(base, "."); i >= 0 {
		base = base[i+1:]
	}
	if base == "init" || base == "main" {
		return false // main often contains the serve loop; keep it
	}
	lower := strings.ToLower(base)
	return strings.HasPrefix(lower, "new") || strings.HasPrefix(lower, "init") ||
		strings.HasPrefix(lower, "open") || strings.HasPrefix(lower, "setup")
}

// hasUnboundedLoop reports whether the function contains a loop that can run
// indefinitely: `for {}`, `for cond {}`, or `for range ch` over a channel-ish
// source (we treat any `for range ident` of non-literal as long-running only
// when combined with select/recv inside; to stay conservative we accept
// condition-less and condition-only loops).
func hasUnboundedLoop(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch l := n.(type) {
		case *ast.ForStmt:
			// for {} and for cond {} are unbounded; three-clause loops are
			// typically bounded iteration.
			if l.Init == nil && l.Post == nil {
				found = true
			}
		case *ast.RangeStmt:
			// range over a channel expression (heuristic: a bare identifier
			// or selector, not a composite literal or call).
			switch l.X.(type) {
			case *ast.Ident, *ast.SelectorExpr:
				found = true
			}
		}
		return true
	})
	return found
}

// extractRegions finds region roots and reduces each.
func (a *Analysis) extractRegions() {
	entryRes := a.cfg.compiledEntries()
	var roots []string
	for qn, fd := range a.funcs {
		if isInitStage(qn) {
			continue
		}
		long := hasUnboundedLoop(fd)
		for _, re := range entryRes {
			if re.MatchString(qn) {
				long = true
			}
		}
		if long {
			roots = append(roots, qn)
		}
	}
	sort.Strings(roots)
	for _, root := range roots {
		region := a.reduceRegion(root)
		if len(region.Ops) > 0 {
			a.Regions = append(a.Regions, region)
		}
	}
}

// reduceRegion walks the call chain from root, collecting and reducing
// vulnerable operations.
func (a *Analysis) reduceRegion(root string) Region {
	fd := a.funcs[root]
	pos := a.fset.Position(fd.Pos())
	region := Region{Root: root, File: filepath.Base(pos.Filename), Line: pos.Line}

	type key struct {
		kind   OpKind
		callee string
	}
	seen := make(map[key]bool)
	visited := make(map[string]bool)
	patterns := a.cfg.patternIndex()

	var walk func(qn string, depth int)
	walk = func(qn string, depth int) {
		if visited[qn] || depth > a.cfg.MaxChainDepth {
			return
		}
		visited[qn] = true
		fn, ok := a.funcs[qn]
		if !ok {
			return
		}
		region.ChainFuncs = append(region.ChainFuncs, qn)
		var callees []string
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if _, isStmt := n.(ast.Stmt); isStmt {
				region.Statements++
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			region.TotalCalls++
			callee, kind, matched := a.classifyCall(call, patterns)
			if ann := a.annotatedVulnerable(call); ann {
				matched = true
				if callee == "" {
					callee = renderCallee(call)
				}
				kind = KindGeneric
			}
			if matched {
				region.TotalVulnerable++
				k := key{kind: kind, callee: callee}
				if a.cfg.DisableReduction || !seen[k] {
					// Reduction: keep one representative per distinct
					// vulnerable callee ("removing similar vulnerable
					// operations"); with DisableReduction every site is
					// retained (the ablation).
					seen[k] = true
					cp := a.fset.Position(call.Pos())
					region.Ops = append(region.Ops, VulnerableOp{
						Kind:   kind,
						Callee: callee,
						Call:   a.render(call),
						Func:   qn,
						File:   filepath.Base(cp.Filename),
						Line:   cp.Line,
						Depth:  depth,
					})
				}
			}
			// Global reduction along the call chain: follow package-local
			// callees.
			callees = append(callees, a.localCalleeNames(call)...)
			return true
		})
		for _, c := range callees {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	sort.Slice(region.Ops, func(i, j int) bool {
		if region.Ops[i].Depth != region.Ops[j].Depth {
			return region.Ops[i].Depth < region.Ops[j].Depth
		}
		if region.Ops[i].File != region.Ops[j].File {
			return region.Ops[i].File < region.Ops[j].File
		}
		return region.Ops[i].Line < region.Ops[j].Line
	})
	return region
}

// classifyCall matches a call expression against the vulnerable vocabulary.
func (a *Analysis) classifyCall(call *ast.CallExpr, patterns map[string]OpKind) (string, OpKind, bool) {
	name := renderCallee(call)
	if name == "" {
		return "", 0, false
	}
	last := name
	if i := strings.LastIndex(last, "."); i >= 0 {
		last = last[i+1:]
	}
	kind, ok := patterns[last]
	if !ok {
		return "", 0, false
	}
	return name, kind, true
}

// renderCallee renders the callee expression ("conn.Write", "os.OpenFile",
// "send").
func renderCallee(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			return x.Name + "." + fn.Sel.Name
		}
		return "<expr>." + fn.Sel.Name
	default:
		return ""
	}
}

// localCalleeNames resolves a call to package-local function or method
// declarations: plain identifiers match free functions; method calls match
// every method with that name (an approximation without full type
// information, biased toward over-inclusion, which only widens coverage).
// The result is sorted so analysis is deterministic across runs.
func (a *Analysis) localCalleeNames(call *ast.CallExpr) []string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := a.funcs[fn.Name]; ok {
			return []string{fn.Name}
		}
	case *ast.SelectorExpr:
		// Every receiver-qualified declaration with this method name.
		var out []string
		for qn := range a.funcs {
			if strings.HasSuffix(qn, ")."+fn.Sel.Name) {
				out = append(out, qn)
			}
		}
		sort.Strings(out)
		return out
	}
	return nil
}

// annotatedVulnerable reports whether the call's line carries a
// //wd:vulnerable comment.
func (a *Analysis) annotatedVulnerable(call *ast.CallExpr) bool {
	pos := a.fset.Position(call.Pos())
	f, ok := a.files[filepath.Base(pos.Filename)]
	if !ok {
		return false
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			cp := a.fset.Position(c.Pos())
			if cp.Line == pos.Line && strings.Contains(c.Text, "wd:vulnerable") {
				return true
			}
		}
	}
	return false
}

// render pretty-prints an AST node.
func (a *Analysis) render(n ast.Node) string {
	var b strings.Builder
	printer.Fprint(&b, a.fset, n)
	s := b.String()
	if len(s) > 80 {
		s = s[:77] + "..."
	}
	return s
}

// TotalOps returns the number of reduced ops across all regions — the
// number of vulnerable operations the generated watchdog will monitor.
func (a *Analysis) TotalOps() int {
	n := 0
	for _, r := range a.Regions {
		n += len(r.Ops)
	}
	return n
}
