// Package wdhooks is the tiny runtime the instrumented main program links
// against. AutoWatchdog inserts wdhooks.Capture calls before each retained
// vulnerable operation; Capture pushes the captured values into the named
// checker's context through the process-wide factory.
//
// Until SetFactory is called, Capture is a no-op, so instrumented binaries
// run unchanged when the watchdog is disabled. Synchronization is strictly
// one-way: Capture never reads watchdog state.
package wdhooks

import (
	"sync/atomic"

	"gowatchdog/internal/watchdog"
)

var factory atomic.Pointer[watchdog.Factory]

// SetFactory installs the context factory shared with the watchdog driver.
// Passing nil disables capturing again.
func SetFactory(f *watchdog.Factory) { factory.Store(f) }

// Factory returns the installed factory, or nil.
func Factory() *watchdog.Factory { return factory.Load() }

// Capture pushes vals into the named checker's context and marks it ready.
// It is the single instrumentation entry point and stays allocation-light
// on the disabled path.
func Capture(checker string, vals map[string]any) {
	f := factory.Load()
	if f == nil {
		return
	}
	f.Context(checker).PutAll(vals)
}
