package wdhooks

import (
	"sync"
	"testing"

	"gowatchdog/internal/watchdog"
)

func TestCaptureNoopWithoutFactory(t *testing.T) {
	SetFactory(nil)
	// Must not panic and must stay cheap.
	Capture("any", map[string]any{"k": "v"})
	if Factory() != nil {
		t.Fatal("Factory() != nil after SetFactory(nil)")
	}
}

func TestCapturePushesIntoNamedContext(t *testing.T) {
	f := watchdog.NewFactory()
	SetFactory(f)
	defer SetFactory(nil)
	Capture("kvs.flusher", map[string]any{"op": "f.Write", "arg0": []byte("payload")})
	ctx := f.Context("kvs.flusher")
	if !ctx.Ready() {
		t.Fatal("context not ready after Capture")
	}
	if ctx.GetString("op") != "f.Write" {
		t.Fatalf("op = %q", ctx.GetString("op"))
	}
	if string(ctx.GetBytes("arg0")) != "payload" {
		t.Fatalf("arg0 = %q", ctx.GetBytes("arg0"))
	}
}

func TestCaptureReplicatesValues(t *testing.T) {
	f := watchdog.NewFactory()
	SetFactory(f)
	defer SetFactory(nil)
	buf := []byte("original")
	Capture("c", map[string]any{"data": buf})
	buf[0] = 'X'
	if got := f.Context("c").GetBytes("data"); string(got) != "original" {
		t.Fatalf("captured value aliased main-program buffer: %q", got)
	}
}

func TestCaptureConcurrent(t *testing.T) {
	f := watchdog.NewFactory()
	SetFactory(f)
	defer SetFactory(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				Capture("hot", map[string]any{"n": int64(j)})
			}
		}(i)
	}
	wg.Wait()
	if f.Context("hot").Version() != 1600 {
		t.Fatalf("version = %d, want 1600", f.Context("hot").Version())
	}
}

func BenchmarkCaptureDisabled(b *testing.B) {
	SetFactory(nil)
	vals := map[string]any{"op": "f.Write"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Capture("kvs.flusher", vals)
	}
}

func BenchmarkCaptureEnabled(b *testing.B) {
	f := watchdog.NewFactory()
	SetFactory(f)
	defer SetFactory(nil)
	vals := map[string]any{"op": "f.Write"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Capture("kvs.flusher", vals)
	}
}
