package wdruntime_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdmesh"
	"gowatchdog/internal/wdobs"
	"gowatchdog/internal/wdruntime"
)

// meshRuntime builds a runtime joined to net with fast timing and an
// in-memory journal, running one checker driven by fail.
func meshRuntime(t *testing.T, net *wdmesh.MemNetwork, self string, peers []string, fail func() bool) *wdruntime.Runtime {
	t.Helper()
	rt, err := wdruntime.New(
		wdruntime.WithInterval(5*time.Millisecond),
		wdruntime.WithTimeout(time.Second),
		wdruntime.WithMesh(self, peers...),
		wdruntime.WithMeshTransport(net.Node(self)),
		wdruntime.WithMeshInterval(10*time.Millisecond),
		wdruntime.WithMeshSuspectAfter(80*time.Millisecond),
		wdruntime.WithObsOptions(wdobs.WithJournal(256)),
	)
	if err != nil {
		t.Fatalf("New(%s): %v", self, err)
	}
	rt.Driver().Register(watchdog.NewChecker("probe", func(*watchdog.Context) error {
		if fail != nil && fail() {
			return errors.New("injected probe failure")
		}
		return nil
	}), watchdog.WithContext(readyContext()))
	if err := rt.Start(context.Background()); err != nil {
		t.Fatalf("Start(%s): %v", self, err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

// TestMeshVerdictReachesPeerJournals: one node's checker fails locally; the
// other nodes' detection journals record the quorum-corroborated intrinsic
// verdict as a KindMesh event, and clear it once the checker recovers.
func TestMeshVerdictReachesPeerJournals(t *testing.T) {
	net := wdmesh.NewMemNetwork(nil, nil)
	var failing atomic.Bool
	failing.Store(true)
	a := meshRuntime(t, net, "a", []string{"b", "c"}, nil)
	b := meshRuntime(t, net, "b", []string{"a", "c"}, nil)
	meshRuntime(t, net, "c", []string{"a", "b"}, failing.Load)

	meshEvent := func(rt *wdruntime.Runtime, healthy bool) *wdobs.Event {
		for _, e := range rt.Obs().Journal().Events() {
			if e.Kind != wdobs.KindMesh || e.Report.Checker != "wdmesh.c" {
				continue
			}
			if (e.Report.Status == watchdog.StatusHealthy) == healthy {
				ev := e
				return &ev
			}
		}
		return nil
	}
	waitFor(t, 5*time.Second, func() bool {
		return meshEvent(a, false) != nil && meshEvent(b, false) != nil
	}, "raised mesh verdicts in both peer journals")

	ev := meshEvent(a, false)
	if ev.Report.Status != watchdog.StatusError {
		t.Fatalf("journaled verdict status = %v, want the gossiped worst status error", ev.Report.Status)
	}
	if ev.Report.Err == nil || !strings.Contains(ev.Report.Err.Error(), "reachable but its watchdog alarms") {
		t.Fatalf("journaled verdict error = %v, want an intrinsic-verdict description", ev.Report.Err)
	}
	if m := a.Mesh(); m == nil {
		t.Fatal("Mesh() nil on a mesh-enabled runtime after Start")
	}
	// The obs snapshot carries the mesh section for /watchdog consumers.
	snap := a.Obs().Snapshot()
	if snap.Mesh == nil || snap.Mesh.Self != "a" {
		t.Fatalf("obs snapshot mesh section = %+v, want self=a", snap.Mesh)
	}

	failing.Store(false)
	waitFor(t, 5*time.Second, func() bool {
		return meshEvent(a, true) != nil && meshEvent(b, true) != nil
	}, "cleared mesh verdicts in both peer journals")
}

// TestMeshOutageDegradesToLocalDetection is the graceful-degradation
// acceptance test: every peer is gone (sends fail), yet local detection still
// alarms and Drain/Close keep their ordering and bounds.
func TestMeshOutageDegradesToLocalDetection(t *testing.T) {
	net := wdmesh.NewMemNetwork(nil, nil)
	// Peers "ghost1"/"ghost2" are never registered: a total mesh outage.
	rt := meshRuntime(t, net, "solo", []string{"ghost1", "ghost2"}, func() bool { return true })

	// Node-local detection is unaffected: the failing checker still alarms.
	waitFor(t, 5*time.Second, func() bool { return rt.Obs().Alarms() > 0 },
		"a local alarm despite the mesh outage")
	waitFor(t, 5*time.Second, func() bool {
		m := rt.Mesh().Snapshot()
		return m.SendFailures > 0 && m.PeersSuspect == 2
	}, "the outage to surface as send failures and suspect peers")
	// No cluster verdict can form: one observer never meets quorum 2.
	if n := len(rt.Mesh().Verdicts()); n != 0 {
		t.Fatalf("%d cluster verdicts with no reachable peers, want 0 (quorum not met)", n)
	}

	// Shutdown ordering and bounds survive the outage.
	start := time.Now()
	if err := rt.Drain(); err != nil {
		t.Fatalf("Drain under mesh outage: %v", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("Close under mesh outage: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %v under a mesh outage, want bounded", elapsed)
	}
}

// TestMeshConfigValidation: peers without an identity fail fast in New.
func TestMeshConfigValidation(t *testing.T) {
	if _, err := wdruntime.New(wdruntime.WithMesh("", "peer:1")); err == nil {
		t.Fatal("New accepted mesh peers without a mesh identity")
	}
}
