package wdruntime

import (
	"flag"
	"os"
	"strings"
	"time"

	"gowatchdog/internal/watchdog"
)

// Flags holds the parsed values of the shared watchdog flag set. Every daemon
// binds the same names, defaults, and help text through BindFlags, so `kvsd
// -h`, `dfsd -h`, and `coordd -h` describe one uniform watchdog surface.
type Flags struct {
	Interval     time.Duration
	Timeout      time.Duration
	Breaker      int
	Damp         time.Duration
	HangBudget   int
	DrainBudget  time.Duration
	ObsAddr      string
	Journal      string
	Rules        string
	SdNotify     bool
	Episodes     string
	MeshAddr     string
	Peers        string
	MeshInterval time.Duration
	SuspectAfter time.Duration
	Quorum       int
	Fanout       int
}

// BindFlags registers the canonical -wd-interval/-wd-timeout/-wd-breaker/
// -wd-damp/-wd-hang-budget/-wd-drain-budget/-obs-addr/-journal/-wd-rules
// flags plus the mesh flag set (-wd-mesh-addr/-wd-peers/-wd-mesh-interval/-wd-suspect-after/
// -wd-quorum/-wd-fanout) on fs and returns the struct their parsed values land in. Call
// fs.Parse (or flag.Parse for the command line) before Options.
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.DurationVar(&f.Interval, "wd-interval", time.Second, "watchdog check interval")
	fs.DurationVar(&f.Timeout, "wd-timeout", 6*time.Second, "watchdog liveness timeout")
	fs.IntVar(&f.Breaker, "wd-breaker", 0, "trip a checker's circuit breaker after this many consecutive failures (0 disables)")
	fs.DurationVar(&f.Damp, "wd-damp", 0, "suppress duplicate watchdog alarms within this window (0 disables)")
	fs.IntVar(&f.HangBudget, "wd-hang-budget", 0, "max leaked hung checker goroutines before checks degrade to skips (0 = unlimited)")
	fs.DurationVar(&f.DrainBudget, "wd-drain-budget", 0, "how long shutdown waits for hung checker goroutines to be reaped (0 = 2x wd-timeout)")
	fs.StringVar(&f.ObsAddr, "obs-addr", "", "observability listen address (/metrics, /healthz, /watchdog, pprof)")
	fs.StringVar(&f.Journal, "journal", "", "file to stream the detection journal to as JSONL (wdreplay-compatible)")
	fs.StringVar(&f.Rules, "wd-rules", "", "JSON temporal-rule file for the wdcep engine; non-empty enables rule evaluation over the detection stream")
	fs.BoolVar(&f.SdNotify, "sd-notify", true, "feed the supervisor's watchdog (NOTIFY_SOCKET) while the intrinsic verdict is healthy; no-op when unsupervised")
	fs.StringVar(&f.Episodes, "episodes", os.Getenv("WDSUPER_EPISODES"), "outage-episode ledger (JSONL) to surface on /watchdog; wdsuper exports it as WDSUPER_EPISODES")
	fs.StringVar(&f.MeshAddr, "wd-mesh-addr", "", "mesh identity and listen address for the cluster health plane (required with -wd-peers)")
	fs.StringVar(&f.Peers, "wd-peers", "", "comma-separated peer mesh addresses; non-empty joins the cluster health plane")
	fs.DurationVar(&f.MeshInterval, "wd-mesh-interval", time.Second, "mesh gossip interval")
	fs.DurationVar(&f.SuspectAfter, "wd-suspect-after", 0, "silence before a peer is suspected unreachable (0 = 4x mesh interval)")
	fs.IntVar(&f.Quorum, "wd-quorum", 2, "observers that must corroborate a suspicion before it becomes a cluster verdict")
	fs.IntVar(&f.Fanout, "wd-fanout", 0, "peers sampled per gossip round (0 = wdmesh default; below the cluster size dissemination is epidemic)")
	return f
}

// Options translates the parsed flag values into runtime options; zero values
// leave the corresponding defense or endpoint disabled.
func (f *Flags) Options() []Option {
	opts := []Option{
		WithInterval(f.Interval),
		WithTimeout(f.Timeout),
	}
	if f.Breaker > 0 {
		opts = append(opts, WithBreaker(watchdog.BreakerConfig{Threshold: f.Breaker}))
	}
	if f.Damp > 0 {
		opts = append(opts, WithAlarmDamping(f.Damp))
	}
	if f.HangBudget > 0 {
		opts = append(opts, WithHangBudget(f.HangBudget))
	}
	if f.DrainBudget > 0 {
		opts = append(opts, WithDrainBudget(f.DrainBudget))
	}
	if f.ObsAddr != "" {
		opts = append(opts, WithObsAddr(f.ObsAddr))
	}
	if f.Journal != "" {
		opts = append(opts, WithJournalPath(f.Journal))
	}
	if f.Rules != "" {
		opts = append(opts, WithCEPRulesFile(f.Rules))
	}
	if f.SdNotify {
		opts = append(opts, WithSdNotify())
	}
	if f.Episodes != "" {
		opts = append(opts, WithEpisodePath(f.Episodes))
	}
	if f.Peers != "" {
		var peers []string
		for _, p := range strings.Split(f.Peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		opts = append(opts,
			WithMesh(f.MeshAddr, peers...),
			WithMeshInterval(f.MeshInterval),
			WithMeshQuorum(f.Quorum),
		)
		if f.SuspectAfter > 0 {
			opts = append(opts, WithMeshSuspectAfter(f.SuspectAfter))
		}
		if f.Fanout > 0 {
			opts = append(opts, WithMeshFanout(f.Fanout))
		}
	}
	return opts
}
