package wdruntime

import (
	"flag"
	"time"

	"gowatchdog/internal/watchdog"
)

// Flags holds the parsed values of the shared watchdog flag set. Every daemon
// binds the same names, defaults, and help text through BindFlags, so `kvsd
// -h`, `dfsd -h`, and `coordd -h` describe one uniform watchdog surface.
type Flags struct {
	Interval   time.Duration
	Timeout    time.Duration
	Breaker    int
	Damp       time.Duration
	HangBudget int
	ObsAddr    string
	Journal    string
}

// BindFlags registers the canonical -wd-interval/-wd-timeout/-wd-breaker/
// -wd-damp/-wd-hang-budget/-obs-addr/-journal flags on fs and returns the
// struct their parsed values land in. Call fs.Parse (or flag.Parse for the
// command line) before Options.
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.DurationVar(&f.Interval, "wd-interval", time.Second, "watchdog check interval")
	fs.DurationVar(&f.Timeout, "wd-timeout", 6*time.Second, "watchdog liveness timeout")
	fs.IntVar(&f.Breaker, "wd-breaker", 0, "trip a checker's circuit breaker after this many consecutive failures (0 disables)")
	fs.DurationVar(&f.Damp, "wd-damp", 0, "suppress duplicate watchdog alarms within this window (0 disables)")
	fs.IntVar(&f.HangBudget, "wd-hang-budget", 0, "max leaked hung checker goroutines before checks degrade to skips (0 = unlimited)")
	fs.StringVar(&f.ObsAddr, "obs-addr", "", "observability listen address (/metrics, /healthz, /watchdog, pprof)")
	fs.StringVar(&f.Journal, "journal", "", "file to stream the detection journal to as JSONL (wdreplay-compatible)")
	return f
}

// Options translates the parsed flag values into runtime options; zero values
// leave the corresponding defense or endpoint disabled.
func (f *Flags) Options() []Option {
	opts := []Option{
		WithInterval(f.Interval),
		WithTimeout(f.Timeout),
	}
	if f.Breaker > 0 {
		opts = append(opts, WithBreaker(watchdog.BreakerConfig{Threshold: f.Breaker}))
	}
	if f.Damp > 0 {
		opts = append(opts, WithAlarmDamping(f.Damp))
	}
	if f.HangBudget > 0 {
		opts = append(opts, WithHangBudget(f.HangBudget))
	}
	if f.ObsAddr != "" {
		opts = append(opts, WithObsAddr(f.ObsAddr))
	}
	if f.Journal != "" {
		opts = append(opts, WithJournalPath(f.Journal))
	}
	return opts
}
