package wdruntime_test

import (
	"context"
	"flag"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gowatchdog/internal/recovery"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdruntime"
)

func readyContext() *watchdog.Context {
	ctx := watchdog.NewContext()
	ctx.MarkReady()
	return ctx
}

// waitFor polls cond for up to timeout.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestLifecycleLeavesNoGoroutines proves Start → Drain → Close returns the
// process to its pre-runtime goroutine count even after a checker hung: once
// the hang is released, Drain reaps the leaked goroutine before Close returns.
func TestLifecycleLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	release := make(chan struct{})
	rt, err := wdruntime.New(
		wdruntime.WithInterval(5*time.Millisecond),
		wdruntime.WithTimeout(25*time.Millisecond),
		wdruntime.WithDrainBudget(5*time.Second),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d := rt.Driver()
	d.Register(watchdog.NewChecker("ok", func(*watchdog.Context) error { return nil }),
		watchdog.WithContext(readyContext()))
	var hungOnce sync.Once
	hung := make(chan struct{})
	d.Register(watchdog.NewChecker("hang", func(*watchdog.Context) error {
		hungOnce.Do(func() { close(hung) })
		<-release
		return nil
	}), watchdog.WithContext(readyContext()))

	if err := rt.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	<-hung
	waitFor(t, 5*time.Second, func() bool { return d.LeakedHung() >= 1 },
		"the hung checker goroutine to be abandoned")

	close(release) // the hang resolves; Drain must now reap it
	if err := rt.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if n := d.LeakedHung(); n != 0 {
		t.Fatalf("LeakedHung after Drain = %d, want 0", n)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	waitFor(t, 5*time.Second, func() bool { return runtime.NumGoroutine() <= before },
		"goroutine count to return to the pre-runtime baseline")
}

// TestDrainReportsBlownBudget: a checker that never returns must surface as a
// Drain error naming the leak, not hang the shutdown forever.
func TestDrainReportsBlownBudget(t *testing.T) {
	release := make(chan struct{})
	defer close(release)

	rt, err := wdruntime.New(
		wdruntime.WithInterval(5*time.Millisecond),
		wdruntime.WithTimeout(25*time.Millisecond),
		wdruntime.WithDrainBudget(50*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d := rt.Driver()
	d.Register(watchdog.NewChecker("stuck", func(*watchdog.Context) error {
		<-release
		return nil
	}), watchdog.WithContext(readyContext()))

	if err := rt.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return d.LeakedHung() >= 1 },
		"the stuck checker goroutine to be abandoned")

	err = rt.Drain()
	if err == nil || !strings.Contains(err.Error(), "drain budget") {
		t.Fatalf("Drain error = %v, want a drain-budget violation", err)
	}
	// Close must report the same verdict, not double-drain or hang.
	if cerr := rt.Close(); cerr == nil || !strings.Contains(cerr.Error(), "drain budget") {
		t.Fatalf("Close error = %v, want the drain-budget violation joined in", cerr)
	}
}

// orderSink is a journal sink that records, at flush time, whether the obs
// HTTP server was still answering — the shutdown-ordering contract says the
// journal is flushed strictly before the server closes.
type orderSink struct {
	mu             sync.Mutex
	lines          int
	addr           func() string
	servingAtFlush bool
	flushed        bool
}

func (s *orderSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lines++
	return len(p), nil
}

func (s *orderSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushed = true
	resp, err := http.Get("http://" + s.addr() + "/healthz")
	if err == nil {
		resp.Body.Close()
		s.servingAtFlush = resp.StatusCode == http.StatusOK
	}
	return nil
}

// TestCloseFlushesJournalBeforeObsServer pins the shutdown ordering: the
// journal sink's flush still sees a live /healthz, and after Close the
// observability server is gone.
func TestCloseFlushesJournalBeforeObsServer(t *testing.T) {
	sink := &orderSink{}
	rt, err := wdruntime.New(
		wdruntime.WithInterval(5*time.Millisecond),
		wdruntime.WithTimeout(time.Second),
		wdruntime.WithObsAddr("127.0.0.1:0"),
		wdruntime.WithJournalSink(sink),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d := rt.Driver()
	d.Register(watchdog.NewChecker("c", func(*watchdog.Context) error { return nil }),
		watchdog.WithContext(readyContext()))

	if err := rt.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	addr := rt.ObsAddr()
	if addr == "" {
		t.Fatal("ObsAddr empty after Start")
	}
	sink.addr = func() string { return addr }

	if _, err := d.CheckNow("c"); err != nil {
		t.Fatalf("CheckNow: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool {
		sink.mu.Lock()
		defer sink.mu.Unlock()
		return sink.lines >= 1
	}, "a journal line to reach the sink")

	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	sink.mu.Lock()
	flushed, serving := sink.flushed, sink.servingAtFlush
	sink.mu.Unlock()
	if !flushed {
		t.Fatal("journal sink was never flushed during Close")
	}
	if !serving {
		t.Fatal("obs server was already down when the journal flushed — shutdown order violated")
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("obs server still answering after Close")
	}
}

// TestRecoveryWiring: a runtime-wired manager receives the alarm and runs the
// matching action, and Close waits for the retry machinery to settle.
func TestRecoveryWiring(t *testing.T) {
	var acted sync.WaitGroup
	acted.Add(1)
	var once sync.Once
	mgr := recovery.New()
	mgr.Register(recovery.ActionFunc{
		ActionName: "test.reset",
		Match:      func(watchdog.Report) bool { return true },
		Fn: func(watchdog.Report) error {
			once.Do(acted.Done)
			return nil
		},
	})

	rt, err := wdruntime.New(
		wdruntime.WithTimeout(time.Second),
		wdruntime.WithRecovery(mgr),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if rt.Recovery() != mgr {
		t.Fatal("Recovery() does not expose the wired manager")
	}
	boom := watchdog.NewChecker("boom", func(*watchdog.Context) error {
		return context.DeadlineExceeded
	})
	rt.Driver().Register(boom, watchdog.WithContext(readyContext()))
	if _, err := rt.Driver().CheckNow("boom"); err != nil {
		t.Fatalf("CheckNow: %v", err)
	}
	done := make(chan struct{})
	go func() { acted.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("recovery action never ran from the runtime-wired alarm path")
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestContextCancelStopsScheduling: cancelling the Start context stops the
// driver's scheduling loop without tearing the rest of the stack down.
func TestContextCancelStopsScheduling(t *testing.T) {
	rt, err := wdruntime.New(
		wdruntime.WithInterval(2*time.Millisecond),
		wdruntime.WithTimeout(time.Second),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var mu sync.Mutex
	checks := 0
	rt.Driver().Register(watchdog.NewChecker("tick", func(*watchdog.Context) error {
		mu.Lock()
		checks++
		mu.Unlock()
		return nil
	}), watchdog.WithContext(readyContext()))

	ctx, cancel := context.WithCancel(context.Background())
	if err := rt.Start(ctx); err != nil {
		t.Fatalf("Start: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return checks >= 2
	}, "scheduled checks to run")
	cancel()
	// After cancellation settles, the check count must stop advancing.
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		a := checks
		mu.Unlock()
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		b := checks
		mu.Unlock()
		return a == b
	}, "scheduling to stop after context cancellation")
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestBindFlagsParity pins the shared flag surface: names, defaults, help
// text, and the translation into a resolved Config. Every daemon binds this
// exact set, so this is the single place flag parity is enforced.
func TestBindFlagsParity(t *testing.T) {
	fs := flag.NewFlagSet("daemon", flag.ContinueOnError)
	f := wdruntime.BindFlags(fs)

	wantDefaults := map[string]string{
		"wd-interval":      "1s",
		"wd-timeout":       "6s",
		"wd-breaker":       "0",
		"wd-damp":          "0s",
		"wd-hang-budget":   "0",
		"wd-drain-budget":  "0s",
		"obs-addr":         "",
		"journal":          "",
		"wd-mesh-addr":     "",
		"wd-peers":         "",
		"wd-mesh-interval": "1s",
		"wd-suspect-after": "0s",
		"wd-quorum":        "2",
		"sd-notify":        "true",
		"episodes":         "",
	}
	for name, def := range wantDefaults {
		fl := fs.Lookup(name)
		if fl == nil {
			t.Fatalf("flag -%s not bound", name)
		}
		if fl.DefValue != def {
			t.Errorf("flag -%s default = %q, want %q", name, fl.DefValue, def)
		}
		if fl.Usage == "" {
			t.Errorf("flag -%s has no help text", name)
		}
	}

	args := []string{
		"-wd-interval", "250ms", "-wd-timeout", "2s",
		"-wd-breaker", "4", "-wd-damp", "15s", "-wd-hang-budget", "3",
		"-wd-mesh-addr", "127.0.0.1:0", "-wd-peers", "n2:1, n3:1,",
		"-wd-mesh-interval", "100ms", "-wd-suspect-after", "800ms",
		"-wd-quorum", "3",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rt, err := wdruntime.New(f.Options()...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	cfg := rt.Config()
	if cfg.Interval != 250*time.Millisecond || cfg.Timeout != 2*time.Second {
		t.Errorf("Interval/Timeout = %v/%v, want 250ms/2s", cfg.Interval, cfg.Timeout)
	}
	if cfg.Breaker.Threshold != 4 {
		t.Errorf("Breaker.Threshold = %d, want 4", cfg.Breaker.Threshold)
	}
	if cfg.DampWindow != 15*time.Second {
		t.Errorf("DampWindow = %v, want 15s", cfg.DampWindow)
	}
	if cfg.HangBudget != 3 {
		t.Errorf("HangBudget = %d, want 3", cfg.HangBudget)
	}
	if cfg.DrainBudget != 4*time.Second {
		t.Errorf("DrainBudget = %v, want 2×timeout = 4s", cfg.DrainBudget)
	}
	if cfg.JitterSeed != 1 {
		t.Errorf("JitterSeed = %d, want the driver default 1", cfg.JitterSeed)
	}
	if cfg.MeshAddr != "127.0.0.1:0" {
		t.Errorf("MeshAddr = %q, want 127.0.0.1:0", cfg.MeshAddr)
	}
	if len(cfg.MeshPeers) != 2 || cfg.MeshPeers[0] != "n2:1" || cfg.MeshPeers[1] != "n3:1" {
		t.Errorf("MeshPeers = %v, want [n2:1 n3:1] (trimmed, empties dropped)", cfg.MeshPeers)
	}
	if cfg.MeshInterval != 100*time.Millisecond || cfg.MeshSuspectAfter != 800*time.Millisecond {
		t.Errorf("mesh timing = %v/%v, want 100ms/800ms", cfg.MeshInterval, cfg.MeshSuspectAfter)
	}
	if cfg.MeshQuorum != 3 {
		t.Errorf("MeshQuorum = %d, want 3", cfg.MeshQuorum)
	}
}

// TestDrainBudgetFlag pins the -wd-drain-budget translation: explicit values
// land in the Config, and the zero default still resolves to 2×timeout.
func TestDrainBudgetFlag(t *testing.T) {
	fs := flag.NewFlagSet("daemon", flag.ContinueOnError)
	f := wdruntime.BindFlags(fs)
	if err := fs.Parse([]string{"-wd-timeout", "2s", "-wd-drain-budget", "500ms"}); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rt, err := wdruntime.New(f.Options()...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	if got := rt.Config().DrainBudget; got != 500*time.Millisecond {
		t.Fatalf("DrainBudget = %v, want the flag value 500ms", got)
	}
}

// TestNewRejectsBadConfig: non-positive interval/timeout fail fast.
func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := wdruntime.New(wdruntime.WithInterval(-time.Second)); err == nil {
		t.Error("New accepted a negative interval")
	}
	if _, err := wdruntime.New(wdruntime.WithTimeout(-time.Second)); err == nil {
		t.Error("New accepted a negative timeout")
	}
	if _, err := wdruntime.New(wdruntime.WithJournalPath("/nonexistent-dir-zz/j.jsonl")); err == nil {
		t.Error("New accepted an unopenable journal path")
	}
}
