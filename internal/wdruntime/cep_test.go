package wdruntime_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gowatchdog/internal/recovery"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdcep"
	"gowatchdog/internal/wdobs"
	"gowatchdog/internal/wdruntime"
)

// TestCEPFiringSynthesizesAlarm proves the full loop: checker reports stream
// through the journal tap into the engine, the rule fires, the firing lands in
// the journal as KindCEP, and the synthesized alarm reaches driver listeners.
func TestCEPFiringSynthesizesAlarm(t *testing.T) {
	var sink bytes.Buffer
	rt, err := wdruntime.New(
		wdruntime.WithInterval(2*time.Millisecond),
		wdruntime.WithTimeout(time.Second),
		wdruntime.WithJournalSink(&sink),
		wdruntime.WithCEPRules(wdcep.Consecutive("streak", 3).OnChecker("flaky")),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if rt.CEP() == nil {
		t.Fatal("CEP() = nil with rules configured")
	}
	var alarms []watchdog.Alarm
	rt.Driver().OnAlarm(func(a watchdog.Alarm) { alarms = append(alarms, a) })
	rt.Driver().Register(
		watchdog.NewChecker("flaky", func(*watchdog.Context) error { return errors.New("down") }),
		watchdog.WithContext(readyContext()),
		// High threshold: intrinsic alarms stay quiet so the only alarm the
		// listener can see is the synthesized one.
		watchdog.Threshold(100),
	)
	if err := rt.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return rt.CEP().Fired() >= 1 }, "the rule to fire")
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	firings := rt.CEP().Firings()
	if len(firings) == 0 {
		t.Fatal("no firings recorded")
	}
	f := firings[0]
	if f.Rule != "streak" || f.Count < 3 {
		t.Fatalf("firing = %+v, want rule streak with count >= 3", f)
	}
	if f.First.After(f.Last) {
		t.Fatalf("firing window inverted: first %v after last %v", f.First, f.Last)
	}

	var cepAlarms int
	for _, a := range alarms {
		if a.Report.Checker == "wdcep.streak" {
			cepAlarms++
			if a.Consecutive < 3 {
				t.Fatalf("synthesized alarm consecutive = %d, want >= 3", a.Consecutive)
			}
		}
	}
	if cepAlarms == 0 {
		t.Fatalf("no synthesized wdcep alarm among %d alarms", len(alarms))
	}

	events, _, err := wdobs.ReadJournalLenient(&sink)
	if err != nil {
		t.Fatalf("ReadJournalLenient: %v", err)
	}
	var cepEvents int
	for _, e := range events {
		if e.Kind == wdobs.KindCEP {
			cepEvents++
			if e.Rule != "streak" || e.Report.Checker != "wdcep.streak" {
				t.Fatalf("KindCEP event = %+v, want rule streak", e)
			}
		}
	}
	if cepEvents == 0 {
		t.Fatal("no KindCEP event reached the journal sink")
	}
}

// TestCEPFireDuringClose arms a rule whose evaluation can only happen in
// Close's engine drain (EvalEvery is an hour, so no Pump ever evaluates).
// The firing must neither deadlock the shutdown — OnFire appends to the
// journal whose tap publishes back into the engine, all under the engine
// lock — nor lose its journal entry: the KindCEP event must be in the ring
// and flushed to the sink.
func TestCEPFireDuringClose(t *testing.T) {
	var sink bytes.Buffer
	rt, err := wdruntime.New(
		wdruntime.WithInterval(2*time.Millisecond),
		wdruntime.WithTimeout(time.Second),
		wdruntime.WithJournalSink(&sink),
		wdruntime.WithCEPRules(wdcep.Consecutive("late", 2).OnChecker("flaky")),
		wdruntime.WithCEPEvalEvery(time.Hour),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rt.Driver().Register(
		watchdog.NewChecker("flaky", func(*watchdog.Context) error { return errors.New("down") }),
		watchdog.WithContext(readyContext()),
		watchdog.Threshold(100),
	)
	if err := rt.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Let enough abnormal reports accumulate in the ring, unevaluated.
	waitFor(t, 5*time.Second, func() bool {
		return rt.CEP().Snapshot().Published >= 3
	}, "events to reach the engine ring")
	if rt.CEP().Fired() != 0 {
		t.Fatal("rule fired before Close; EvalEvery gate did not hold")
	}

	done := make(chan error, 1)
	go func() { done <- rt.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked with a rule firing during drain")
	}

	if got := rt.CEP().Fired(); got != 1 {
		t.Fatalf("Fired after Close = %d, want 1", got)
	}
	var inRing bool
	for _, e := range rt.Obs().Journal().Events() {
		if e.Kind == wdobs.KindCEP && e.Rule == "late" {
			inRing = true
		}
	}
	if !inRing {
		t.Fatal("KindCEP entry missing from the journal ring")
	}
	if !strings.Contains(sink.String(), `"kind":"cep"`) {
		t.Fatal("KindCEP entry missing from the flushed sink")
	}
}

// TestRecoveryEventsJournaled proves recovery-manager outcomes land in the
// journal as KindRecovery entries with outcome/action/attempt populated.
func TestRecoveryEventsJournaled(t *testing.T) {
	var sink bytes.Buffer
	rec := recovery.New()
	rec.Register(recovery.ForChecker("fix-flaky", "flaky", func(watchdog.Report) error {
		return nil // repair succeeds
	}))
	rt, err := wdruntime.New(
		wdruntime.WithInterval(2*time.Millisecond),
		wdruntime.WithTimeout(time.Second),
		wdruntime.WithJournalSink(&sink),
		wdruntime.WithRecovery(rec),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rt.Driver().Register(
		watchdog.NewChecker("flaky", func(*watchdog.Context) error { return errors.New("down") }),
		watchdog.WithContext(readyContext()),
		watchdog.Threshold(2),
	)
	if err := rt.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, e := range rt.Obs().Journal().Events() {
			if e.Kind == wdobs.KindRecovery {
				return true
			}
		}
		return false
	}, "a KindRecovery journal entry")
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var found bool
	for _, e := range rt.Obs().Journal().Events() {
		if e.Kind != wdobs.KindRecovery {
			continue
		}
		found = true
		if e.Report.Checker != "flaky" {
			t.Fatalf("recovery entry checker = %q, want flaky", e.Report.Checker)
		}
		if e.Outcome == "" {
			t.Fatal("recovery entry missing outcome")
		}
		if e.Outcome == "recovered" {
			if e.Report.Status != watchdog.StatusHealthy {
				t.Fatalf("recovered entry status = %v, want healthy", e.Report.Status)
			}
			if e.Action != "fix-flaky" {
				t.Fatalf("recovered entry action = %q, want fix-flaky", e.Action)
			}
		}
	}
	if !found {
		t.Fatal("no KindRecovery entry retained")
	}
}

// TestCEPRulesFileFlag wires a rule file through -wd-rules and proves the
// engine loads it (and that a bad file fails New, not Fire time).
func TestCEPRulesFileFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rules.json")
	rules := map[string]any{"rules": []map[string]any{{
		"name":  "spread",
		"kind":  "distinct",
		"count": 2, "window": "30s",
	}}}
	data, _ := json.Marshal(rules)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := wdruntime.BindFlags(fs)
	if err := fs.Parse([]string{"-wd-rules", path}); err != nil {
		t.Fatal(err)
	}
	rt, err := wdruntime.New(f.Options()...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if rt.CEP() == nil {
		t.Fatal("CEP() = nil after -wd-rules")
	}
	if got := rt.CEP().Snapshot().Rules; got != 1 {
		t.Fatalf("rules loaded = %d, want 1", got)
	}
	if rt.Obs() == nil {
		t.Fatal("rules must force the observability layer on")
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if _, err := wdruntime.New(wdruntime.WithCEPRulesFile(filepath.Join(dir, "missing.json"))); err == nil {
		t.Fatal("New with a missing rule file should fail")
	}
}
