package wdruntime

import (
	"fmt"
	"log"
	"time"

	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdmesh"
	"gowatchdog/internal/wdobs"
)

// startMesh builds and wires the cluster health plane during Start: resolve
// the transport (TCP listen unless one was injected), compose the mesh with
// the driver-backed digest source, and expose it through wdobs. The mesh is
// not started here — Start launches it only after the driver is running.
func (rt *Runtime) startMesh() error {
	tr := rt.cfg.MeshTransport
	self := rt.cfg.MeshAddr
	if tr == nil {
		tcp, err := wdmesh.ListenTCP(rt.cfg.MeshAddr)
		if err != nil {
			return fmt.Errorf("wdruntime: mesh: %w", err)
		}
		tr = tcp
		self = tcp.Addr() // ":0" resolves to the real bound identity
	}
	m, err := wdmesh.New(wdmesh.Config{
		Self:         self,
		Peers:        rt.cfg.MeshPeers,
		Interval:     rt.cfg.MeshInterval,
		SuspectAfter: rt.cfg.MeshSuspectAfter,
		Quorum:       rt.cfg.MeshQuorum,
		Fanout:       rt.cfg.MeshFanout,
		JitterSeed:   rt.cfg.JitterSeed,
		Clock:        rt.cfg.Clock,
		Transport:    tr,
		Source:       rt.meshDigest,
		OnVerdict:    rt.onMeshVerdict,
		Logf:         log.Printf,
	})
	if err != nil {
		_ = tr.Close()
		return fmt.Errorf("wdruntime: mesh: %w", err)
	}
	rt.mu.Lock()
	rt.mesh = m
	rt.mu.Unlock()
	if rt.obs != nil {
		rt.obs.SetMesh(m.Snapshot)
	}
	return nil
}

// meshDigest assembles this node's gossip digest from the driver ledger: the
// worst abnormal status, the abnormal checker names, and the lifetime alarm
// count. It is the mesh's Source, called once per gossip round.
func (rt *Runtime) meshDigest() wdmesh.Digest {
	d := wdmesh.Digest{
		Healthy: true,
		Worst:   watchdog.StatusHealthy,
		Alarms:  rt.meshAlarms.Load(),
	}
	for _, st := range rt.driver.State() {
		if !st.HasLatest {
			continue
		}
		if status := st.Latest.Status; status.Abnormal() {
			d.Healthy = false
			d.Worst = wdmesh.WorseStatus(d.Worst, status)
			d.Abnormal = append(d.Abnormal, st.Name)
		}
	}
	return d
}

// onMeshVerdict journals cluster-verdict transitions as KindMesh events so
// the detection journal (ring + JSONL sink) records remote failures next to
// local ones. Raised verdicts carry the suspect's status — the gossiped worst
// status for intrinsic verdicts, stuck for unreachable peers — and clears
// land as healthy, mirroring a checker's recovery transition.
func (rt *Runtime) onMeshVerdict(v wdmesh.Verdict, raised bool) {
	if rt.obs == nil {
		return
	}
	rep := watchdog.Report{
		Checker: "wdmesh." + v.Node,
		Status:  watchdog.StatusHealthy,
		Time:    time.Now(),
	}
	if raised {
		if v.Kind == wdmesh.VerdictIntrinsic {
			rep.Status = v.Worst
			rep.Err = fmt.Errorf("cluster verdict: node %s reachable but its watchdog alarms (%d votes)", v.Node, v.Votes)
		} else {
			rep.Status = watchdog.StatusStuck
			rep.Err = fmt.Errorf("cluster verdict: node %s unreachable (%d votes)", v.Node, v.Votes)
		}
	}
	rt.obs.Journal().Append(wdobs.Event{Kind: wdobs.KindMesh, Report: rep})
}
