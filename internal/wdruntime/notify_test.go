package wdruntime_test

import (
	"errors"
	"flag"
	"net"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gowatchdog/internal/recovery"
	"gowatchdog/internal/sdnotify"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdruntime"
)

// notifySocket binds a fake supervisor-side NOTIFY_SOCKET and returns its
// path plus a channel of received datagrams.
func notifySocket(t *testing.T) (string, <-chan string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "notify.sock")
	conn, err := net.ListenUnixgram("unixgram", &net.UnixAddr{Name: path, Net: "unixgram"})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	msgs := make(chan string, 256)
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				close(msgs)
				return
			}
			msgs <- string(buf[:n])
		}
	}()
	return path, msgs
}

// drainMsgs empties pending datagrams and returns them.
func drainMsgs(msgs <-chan string) []string {
	var out []string
	for {
		select {
		case m := <-msgs:
			out = append(out, m)
		default:
			return out
		}
	}
}

// TestSdNotifyFeedGatedOnVerdict is the core feed contract: WATCHDOG=1 flows
// only while the intrinsic watchdog verdict is healthy. A daemon whose
// checkers are alarming goes silent and lets the external watchdog expire —
// the supervisor must restart on real failure, not on a live-but-failing
// process that keeps petting the timer.
func TestSdNotifyFeedGatedOnVerdict(t *testing.T) {
	path, msgs := notifySocket(t)
	var failing atomic.Bool
	rt, err := wdruntime.New(
		wdruntime.WithInterval(10*time.Millisecond),
		wdruntime.WithTimeout(200*time.Millisecond),
		wdruntime.WithNotifier(sdnotify.At(path)),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	rt.Driver().Register(watchdog.NewChecker("flaky", func(*watchdog.Context) error {
		if failing.Load() {
			return errors.New("wedged")
		}
		return nil
	}), watchdog.WithContext(readyContext()))

	if err := rt.Start(nil); err != nil {
		t.Fatalf("Start: %v", err)
	}

	// READY=1 first, then feeds while healthy.
	select {
	case m := <-msgs:
		if m != "READY=1" {
			t.Fatalf("first datagram = %q, want READY=1", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no READY=1 on Start")
	}
	waitFor(t, 2*time.Second, func() bool {
		for _, m := range drainMsgs(msgs) {
			if m == "WATCHDOG=1" {
				return true
			}
		}
		return false
	}, "a WATCHDOG=1 feed while healthy")

	// Break the checker; once the verdict flips, feeds must stop.
	failing.Store(true)
	waitFor(t, 2*time.Second, func() bool { return !rt.Driver().Healthy() }, "unhealthy verdict")
	drainMsgs(msgs) // discard feeds sent before the flip
	time.Sleep(100 * time.Millisecond)
	if fed := drainMsgs(msgs); len(fed) != 0 {
		t.Fatalf("got %v while unhealthy, want feed silence", fed)
	}

	// Health restored: feeds resume.
	failing.Store(false)
	waitFor(t, 2*time.Second, func() bool { return rt.Driver().Healthy() }, "healthy verdict")
	waitFor(t, 2*time.Second, func() bool {
		for _, m := range drainMsgs(msgs) {
			if m == "WATCHDOG=1" {
				return true
			}
		}
		return false
	}, "feeds resuming after recovery")

	// Drain disarms: STOPPING=1 is sent, and nothing follows it.
	if err := rt.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	deadline := time.After(2 * time.Second)
	var tail []string
collect:
	for {
		select {
		case m := <-msgs:
			tail = append(tail, m)
			if m == "STOPPING=1" {
				break collect
			}
		case <-deadline:
			t.Fatalf("no STOPPING=1 after Drain; saw %v", tail)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if late := drainMsgs(msgs); len(late) != 0 {
		t.Fatalf("datagrams after STOPPING=1: %v — the disarm must be final", late)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestSdNotifyNoopWithoutSocket: -sd-notify stays on by default, so the
// whole path must be a silent no-op when no supervisor provided a socket.
func TestSdNotifyNoopWithoutSocket(t *testing.T) {
	t.Setenv(sdnotify.EnvSocket, "")
	rt, err := wdruntime.New(
		wdruntime.WithInterval(5*time.Millisecond),
		wdruntime.WithSdNotify(),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rt.Driver().Register(watchdog.NewChecker("ok", func(*watchdog.Context) error { return nil }),
		watchdog.WithContext(readyContext()))
	if err := rt.Start(nil); err != nil {
		t.Fatalf("Start: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestEscalationExitSendsTrigger: when the recovery ladder's exit rung fires,
// the WATCHDOG=trigger datagram goes out before the (stubbed) process exit —
// the supervisor learns the restart is self-diagnosed, immediately.
func TestEscalationExitSendsTrigger(t *testing.T) {
	path, msgs := notifySocket(t)
	exited := make(chan int, 1)
	mgr := recovery.New(
		recovery.WithMaxAttempts(1),
		recovery.WithEscalationExit(70),
		recovery.WithExitFunc(func(code int) { exited <- code }),
	)
	mgr.Register(recovery.ForChecker("noop", "kvs.", func(watchdog.Report) error { return nil }))
	rt, err := wdruntime.New(
		wdruntime.WithNotifier(sdnotify.At(path)),
		wdruntime.WithRecovery(mgr),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()

	alarm := watchdog.Alarm{Report: watchdog.Report{
		Checker: "kvs.flusher", Status: watchdog.StatusError,
	}}
	mgr.HandleAlarm(alarm) // cheap attempt
	mgr.HandleAlarm(alarm) // threshold crossed, no escalation action → exit rung
	select {
	case code := <-exited:
		if code != 70 {
			t.Fatalf("exit code = %d, want 70", code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("exit rung did not fire")
	}
	waitFor(t, 2*time.Second, func() bool {
		for _, m := range drainMsgs(msgs) {
			if m == "WATCHDOG=trigger" {
				return true
			}
		}
		return false
	}, "WATCHDOG=trigger datagram")
}

// TestDrainCloseIdempotentConcurrent: racing Drains and Closes all settle on
// the first call's verdict — the lifecycle must tolerate a signal handler, a
// deferred Close, and a supervisor-driven shutdown all firing at once.
func TestDrainCloseIdempotentConcurrent(t *testing.T) {
	path, _ := notifySocket(t)
	rt, err := wdruntime.New(
		wdruntime.WithInterval(5*time.Millisecond),
		wdruntime.WithNotifier(sdnotify.At(path)),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rt.Driver().Register(watchdog.NewChecker("ok", func(*watchdog.Context) error { return nil }),
		watchdog.WithContext(readyContext()))
	if err := rt.Start(nil); err != nil {
		t.Fatalf("Start: %v", err)
	}

	const n = 8
	drainErrs := make(chan error, n)
	closeErrs := make(chan error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() { <-start; drainErrs <- rt.Drain() }()
		go func() { <-start; closeErrs <- rt.Close() }()
	}
	close(start)
	for i := 0; i < n; i++ {
		if err := <-drainErrs; err != nil {
			t.Fatalf("Drain[%d] = %v", i, err)
		}
		if err := <-closeErrs; err != nil {
			t.Fatalf("Close[%d] = %v", i, err)
		}
	}
	// Parity: repeated calls after the fact return the settled verdicts.
	if err := rt.Drain(); err != nil {
		t.Fatalf("late Drain = %v", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("late Close = %v", err)
	}
}

// TestSdNotifyFlagDefaults pins the new flag surface: -sd-notify defaults on
// (safe: no socket, no datagrams) and -episodes defaults to the path wdsuper
// hands its children via WDSUPER_EPISODES.
func TestSdNotifyFlagDefaults(t *testing.T) {
	t.Setenv("WDSUPER_EPISODES", "/tmp/led.jsonl")
	fs := flag.NewFlagSet("daemon", flag.ContinueOnError)
	f := wdruntime.BindFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !f.SdNotify {
		t.Fatal("-sd-notify should default to true")
	}
	if f.Episodes != "/tmp/led.jsonl" {
		t.Fatalf("-episodes default = %q, want WDSUPER_EPISODES value", f.Episodes)
	}
	rt, err := wdruntime.New(f.Options()...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	cfg := rt.Config()
	if !cfg.SdNotify || cfg.EpisodePath != "/tmp/led.jsonl" {
		t.Fatalf("config = SdNotify %v EpisodePath %q", cfg.SdNotify, cfg.EpisodePath)
	}
	if !strings.Contains(fs.Lookup("episodes").Usage, "WDSUPER_EPISODES") {
		t.Fatal("-episodes help should mention WDSUPER_EPISODES")
	}
}
