// Package wdruntime is the single lifecycle layer for the watchdog stack.
//
// The paper's watchdog is one abstraction — checkers + driver + context sync
// + isolation (§3.1–§3.2) — but a deployment also carries the pieces around
// it: hardening options (circuit breakers, alarm damping, hang budget),
// observability (wdobs metrics server + JSONL detection journal), and the
// recovery manager. wdruntime composes all of them behind one Config so that
// daemons, examples, and fault campaigns wire the exact same stack instead of
// each re-assembling it by hand.
//
// Lifecycle:
//
//	created ──Start──▶ started ──Drain──▶ drained ──Close──▶ closed
//
// Start serves the observability endpoint (if configured) and begins
// scheduling checks; a cancelled Start context stops scheduling early.
// Drain stops scheduling and waits — within the drain budget — for hung
// checker goroutines to be reaped. Close drains, then flushes and closes the
// journal sink, then shuts the observability server down, and finally waits
// for in-flight recovery retries: journal before obs so the last detection
// events hit disk while the server still answers /healthz, recovery last so
// every retry it spawned has a live stack to act on.
package wdruntime

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/gauge"
	"gowatchdog/internal/recovery"
	"gowatchdog/internal/sdnotify"
	"gowatchdog/internal/supervise/episode"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdcep"
	"gowatchdog/internal/wdmesh"
	"gowatchdog/internal/wdobs"
)

// Config is the fully-resolved runtime configuration. Build one through New's
// functional options (or BindFlags for CLI daemons); zero values of the
// hardening fields leave the corresponding defense disabled, matching the
// driver's own defaults.
type Config struct {
	// Interval is the driver check interval (default 1s).
	Interval time.Duration
	// Timeout is the checker liveness timeout (default 6s).
	Timeout time.Duration
	// Breaker configures per-checker circuit breakers; Threshold 0 disables.
	Breaker watchdog.BreakerConfig
	// DampWindow suppresses duplicate alarms inside the window; 0 disables.
	DampWindow time.Duration
	// HangBudget caps leaked hung checker goroutines; 0 means unlimited.
	HangBudget int
	// JitterSeed seeds scheduling jitter (default 1, the driver default).
	JitterSeed int64
	// DrainBudget bounds how long Drain waits for hung checker goroutines to
	// be reaped after scheduling stops (default 2×Timeout).
	DrainBudget time.Duration

	// ObsAddr, when non-empty, serves /metrics /healthz /watchdog /debug/pprof
	// there on Start.
	ObsAddr string
	// JournalPath, when non-empty, streams the detection journal to that file
	// as JSONL (wdreplay-compatible). Takes precedence over JournalSink.
	JournalPath string
	// JournalSink, when non-nil, receives the JSONL journal stream. The sink
	// stays caller-owned: Close flushes it (if it implements Flush() error)
	// but never closes it.
	JournalSink io.Writer
	// Registry, when non-nil, is exported alongside the watchdog metrics.
	Registry *gauge.Registry

	// MeshPeers lists the other nodes' mesh identities; non-empty enables the
	// cluster health plane (see internal/wdmesh). Each node gossips its
	// intrinsic watchdog digest to these peers and corroborates suspicion
	// into quorum-gated cluster verdicts.
	MeshPeers []string
	// MeshAddr is this node's mesh identity and, when MeshTransport is nil,
	// the TCP listen address for the health plane. Required when MeshPeers is
	// set; ":0" picks an ephemeral port (the bound address becomes the
	// identity).
	MeshAddr string
	// MeshInterval is the gossip period (default 1s).
	MeshInterval time.Duration
	// MeshSuspectAfter is how long without a fresh digest before a peer is
	// suspected unreachable (0 = 4×MeshInterval).
	MeshSuspectAfter time.Duration
	// MeshQuorum is the corroboration threshold for cluster verdicts
	// (default 2).
	MeshQuorum int
	// MeshFanout caps how many peers each gossip round samples (0 = the
	// wdmesh default). Below the cluster size, dissemination becomes
	// epidemic: O(N·K) messages per round instead of O(N²).
	MeshFanout int
	// MeshTransport overrides the TCP transport (campaigns and tests pass an
	// in-process wdmesh.MemNetwork endpoint).
	MeshTransport wdmesh.Transport

	// CEPRules, when non-empty, enables the temporal rule engine (see
	// internal/wdcep): journal events stream through a lock-free ring into
	// declarative rules, and firings synthesize alarms back through the
	// driver. Enabling rules forces the observability layer on — the engine
	// feeds off the detection journal.
	CEPRules []wdcep.Rule
	// CEPRulesFile, when non-empty, loads additional rules from a JSON rule
	// file (appended after CEPRules).
	CEPRulesFile string
	// CEPRingSize overrides the engine's event ring capacity (0 = the wdcep
	// default; rounded up to a power of two).
	CEPRingSize int
	// CEPEvalEvery floors the time between rule-evaluation passes
	// (0 = Interval).
	CEPEvalEvery time.Duration

	// EpisodePath, when non-empty, surfaces the supervision plane's outage
	// ledger (see internal/supervise/episode) on /watchdog and /metrics. The
	// ledger is read on each snapshot — the supervisor owns the writes.
	// wdsuper exports the path to its children as $WDSUPER_EPISODES, which
	// BindFlags picks up as the -episodes default.
	EpisodePath string

	// SdNotify enables the supervisor notification client (sd_notify
	// protocol, spoken by systemd and wdsuper): READY=1 once Start is
	// serving, WATCHDOG=1 each feed interval while the intrinsic watchdog
	// verdict is healthy, STOPPING=1 exactly once when Drain begins, and
	// WATCHDOG=trigger when the recovery manager's escalation-exit rung
	// fires. The socket comes from $NOTIFY_SOCKET; when unset everything
	// no-ops, so the flag is safe to leave on outside supervision.
	SdNotify bool
	// Notifier overrides the env-resolved sd_notify client (tests point it
	// at their own socket via sdnotify.At). Implies SdNotify.
	Notifier *sdnotify.Notifier

	// Factory, when non-nil, is the context factory the driver resolves
	// checker contexts from (hook-instrumented systems pass theirs here).
	Factory *watchdog.Factory
	// Clock, when non-nil, replaces the real clock (campaigns pass a virtual
	// one for bit-deterministic runs).
	Clock clock.Clock
	// Recovery, when non-nil, is wired to the driver (HandleAlarm on alarms,
	// ObserveReport on reports) before any other listener, and waited on
	// during Close.
	Recovery *recovery.Manager

	// DriverOptions are appended verbatim after the options derived from the
	// fields above, so they win on conflict (escape hatch for driver knobs
	// the Config does not model, e.g. WithHistory).
	DriverOptions []watchdog.Option
	// ObsOptions are prepended to the derived wdobs options. Setting any
	// forces the observability layer on even without ObsAddr/JournalPath.
	ObsOptions []wdobs.Option
}

// maxEpisodesInSnapshot caps how many episode entries one /watchdog snapshot
// carries; totals still count the full ledger.
const maxEpisodesInSnapshot = 32

// Option mutates a Config during New.
type Option func(*Config)

// WithInterval sets the driver check interval.
func WithInterval(d time.Duration) Option { return func(c *Config) { c.Interval = d } }

// WithTimeout sets the checker liveness timeout.
func WithTimeout(d time.Duration) Option { return func(c *Config) { c.Timeout = d } }

// WithBreaker enables per-checker circuit breakers.
func WithBreaker(cfg watchdog.BreakerConfig) Option { return func(c *Config) { c.Breaker = cfg } }

// WithAlarmDamping suppresses duplicate alarms inside the window.
func WithAlarmDamping(window time.Duration) Option {
	return func(c *Config) { c.DampWindow = window }
}

// WithHangBudget caps leaked hung checker goroutines.
func WithHangBudget(n int) Option { return func(c *Config) { c.HangBudget = n } }

// WithJitterSeed seeds scheduling (and breaker probe) jitter.
func WithJitterSeed(seed int64) Option { return func(c *Config) { c.JitterSeed = seed } }

// WithDrainBudget bounds how long Drain waits for hung goroutines.
func WithDrainBudget(d time.Duration) Option { return func(c *Config) { c.DrainBudget = d } }

// WithMesh enables the cluster health plane: addr is this node's mesh
// identity (and TCP listen address), peers are the other nodes.
func WithMesh(addr string, peers ...string) Option {
	return func(c *Config) {
		c.MeshAddr = addr
		c.MeshPeers = append(c.MeshPeers, peers...)
	}
}

// WithMeshInterval sets the mesh gossip period.
func WithMeshInterval(d time.Duration) Option { return func(c *Config) { c.MeshInterval = d } }

// WithMeshSuspectAfter sets the silence window before a peer is suspected.
func WithMeshSuspectAfter(d time.Duration) Option {
	return func(c *Config) { c.MeshSuspectAfter = d }
}

// WithMeshQuorum sets the corroboration threshold for cluster verdicts.
func WithMeshQuorum(k int) Option { return func(c *Config) { c.MeshQuorum = k } }

// WithMeshFanout caps how many peers each gossip round samples.
func WithMeshFanout(k int) Option { return func(c *Config) { c.MeshFanout = k } }

// WithMeshTransport replaces the TCP transport with a caller-provided one.
func WithMeshTransport(tr wdmesh.Transport) Option {
	return func(c *Config) { c.MeshTransport = tr }
}

// WithCEPRules enables the temporal rule engine with the given rules.
func WithCEPRules(rules ...wdcep.Rule) Option {
	return func(c *Config) { c.CEPRules = append(c.CEPRules, rules...) }
}

// WithCEPRulesFile loads temporal rules from a JSON rule file.
func WithCEPRulesFile(path string) Option { return func(c *Config) { c.CEPRulesFile = path } }

// WithCEPRingSize overrides the engine's event ring capacity.
func WithCEPRingSize(n int) Option { return func(c *Config) { c.CEPRingSize = n } }

// WithCEPEvalEvery floors the time between rule-evaluation passes.
func WithCEPEvalEvery(d time.Duration) Option { return func(c *Config) { c.CEPEvalEvery = d } }

// WithEpisodePath surfaces the outage-episode ledger at path on /watchdog.
func WithEpisodePath(path string) Option { return func(c *Config) { c.EpisodePath = path } }

// WithSdNotify enables the sd_notify client on the $NOTIFY_SOCKET socket.
func WithSdNotify() Option { return func(c *Config) { c.SdNotify = true } }

// WithNotifier sets an explicit sd_notify client (implies WithSdNotify).
func WithNotifier(n *sdnotify.Notifier) Option { return func(c *Config) { c.Notifier = n } }

// WithObsAddr serves the observability endpoints there on Start.
func WithObsAddr(addr string) Option { return func(c *Config) { c.ObsAddr = addr } }

// WithJournalPath streams the detection journal to the file as JSONL.
func WithJournalPath(path string) Option { return func(c *Config) { c.JournalPath = path } }

// WithJournalSink streams the detection journal to a caller-owned writer.
func WithJournalSink(w io.Writer) Option { return func(c *Config) { c.JournalSink = w } }

// WithRegistry exports the registry's gauges alongside the watchdog metrics.
func WithRegistry(r *gauge.Registry) Option { return func(c *Config) { c.Registry = r } }

// WithFactory sets the watchdog context factory.
func WithFactory(f *watchdog.Factory) Option { return func(c *Config) { c.Factory = f } }

// WithClock replaces the real clock.
func WithClock(clk clock.Clock) Option { return func(c *Config) { c.Clock = clk } }

// WithRecovery wires the manager to the driver and waits on it during Close.
func WithRecovery(m *recovery.Manager) Option { return func(c *Config) { c.Recovery = m } }

// WithDriverOptions appends raw driver options after the derived ones.
func WithDriverOptions(opts ...watchdog.Option) Option {
	return func(c *Config) { c.DriverOptions = append(c.DriverOptions, opts...) }
}

// WithObsOptions appends raw wdobs options (and forces the obs layer on).
func WithObsOptions(opts ...wdobs.Option) Option {
	return func(c *Config) { c.ObsOptions = append(c.ObsOptions, opts...) }
}

// Runtime owns one composed watchdog stack: driver, observability, journal
// sink, and recovery manager, with a deterministic shutdown ordering.
type Runtime struct {
	cfg      Config
	driver   *watchdog.Driver
	obs      *wdobs.Obs
	rec      *recovery.Manager
	journalF *os.File // owned only when opened from JournalPath

	mesh       *wdmesh.Mesh
	meshAlarms atomic.Int64
	cep        *wdcep.Engine
	notifier   *sdnotify.Notifier

	mu        sync.Mutex
	started   bool
	srv       *wdobs.Server
	watchStop chan struct{}
	feedStop  chan struct{}
	feedDone  chan struct{}

	drainOnce sync.Once
	drainErr  error
	closeOnce sync.Once
	closeErr  error
}

// New resolves the options into a Config and composes the stack: driver with
// hardening options, recovery listeners (always registered first, so campaign
// or daemon listeners added afterwards observe the same ordering), and — when
// any observability field is set — a wdobs instance with an optional JSONL
// journal sink. The driver is not started; register checkers first, then call
// Start.
func New(opts ...Option) (*Runtime, error) {
	cfg := Config{
		Interval:   time.Second,
		Timeout:    6 * time.Second,
		JitterSeed: 1,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("wdruntime: non-positive interval %v", cfg.Interval)
	}
	if cfg.Timeout <= 0 {
		return nil, fmt.Errorf("wdruntime: non-positive timeout %v", cfg.Timeout)
	}
	if cfg.DrainBudget <= 0 {
		cfg.DrainBudget = 2 * cfg.Timeout
	}
	if len(cfg.MeshPeers) > 0 && cfg.MeshAddr == "" {
		return nil, errors.New("wdruntime: mesh peers configured without a mesh identity (MeshAddr)")
	}

	dopts := []watchdog.Option{
		watchdog.WithInterval(cfg.Interval),
		watchdog.WithTimeout(cfg.Timeout),
		watchdog.WithJitterSeed(cfg.JitterSeed),
	}
	if cfg.Clock != nil {
		dopts = append(dopts, watchdog.WithClock(cfg.Clock))
	}
	if cfg.Factory != nil {
		dopts = append(dopts, watchdog.WithFactory(cfg.Factory))
	}
	if cfg.Breaker.Threshold > 0 {
		dopts = append(dopts, watchdog.WithBreaker(cfg.Breaker))
	}
	if cfg.DampWindow > 0 {
		dopts = append(dopts, watchdog.WithAlarmDamping(cfg.DampWindow))
	}
	if cfg.HangBudget > 0 {
		dopts = append(dopts, watchdog.WithHangBudget(cfg.HangBudget))
	}
	dopts = append(dopts, cfg.DriverOptions...)

	rt := &Runtime{cfg: cfg, driver: watchdog.New(dopts...), rec: cfg.Recovery}

	if cfg.ObsAddr != "" || cfg.JournalPath != "" || cfg.JournalSink != nil || len(cfg.ObsOptions) > 0 ||
		len(cfg.CEPRules) > 0 || cfg.CEPRulesFile != "" {
		oopts := append([]wdobs.Option(nil), cfg.ObsOptions...)
		if cfg.Registry != nil {
			oopts = append(oopts, wdobs.WithRegistry(cfg.Registry))
		}
		sink := cfg.JournalSink
		if cfg.JournalPath != "" {
			f, err := os.Create(cfg.JournalPath)
			if err != nil {
				return nil, fmt.Errorf("wdruntime: journal: %w", err)
			}
			rt.journalF = f
			sink = f
		}
		if sink != nil {
			oopts = append(oopts, wdobs.WithSink(sink))
		}
		rt.obs = wdobs.New(oopts...)
		rt.obs.Attach(rt.driver)
	}

	if rt.obs != nil {
		if err := rt.setupCEP(); err != nil {
			if rt.journalF != nil {
				_ = rt.journalF.Close()
			}
			return nil, err
		}
		if rt.rec != nil {
			rt.obs.SetRecovery(func() *wdobs.RecoverySnapshot {
				return &wdobs.RecoverySnapshot{
					Events:  rt.rec.TotalEvents(),
					Dropped: rt.rec.DroppedEvents(),
				}
			})
		}
		if path := cfg.EpisodePath; path != "" {
			rt.obs.SetEpisodes(func() *episode.Snapshot {
				eps, torn, err := episode.Read(path)
				if err != nil {
					return nil
				}
				return episode.SnapshotOf(eps, torn, maxEpisodesInSnapshot)
			})
		}
	}

	if cfg.Notifier != nil {
		rt.notifier = cfg.Notifier
	} else if cfg.SdNotify {
		rt.notifier = sdnotify.New()
	}

	if rt.rec != nil {
		if rt.obs != nil {
			// Journal recovery outcomes (KindRecovery) before the manager
			// handles any alarm, so every escalation and retry is recorded.
			rt.rec.OnEvent(rt.onRecoveryEvent)
		}
		if rt.notifier.Enabled() {
			// The escalation-exit rung logs EventExited synchronously before
			// calling its exit function, so the WATCHDOG=trigger datagram is
			// on the wire before the process dies — the supervisor restarts
			// immediately instead of waiting out the feed window.
			rt.rec.OnEvent(func(e recovery.Event) {
				if e.Kind == recovery.EventExited {
					_ = rt.notifier.Trigger()
				}
			})
		}
		rt.driver.OnAlarm(rt.rec.HandleAlarm)
		rt.driver.OnReport(rt.rec.ObserveReport)
	}
	if len(cfg.MeshPeers) > 0 {
		// The mesh digest carries a process-lifetime alarm count; tally it
		// here so the Source closure stays a cheap read.
		rt.driver.OnAlarm(func(watchdog.Alarm) { rt.meshAlarms.Add(1) })
	}
	return rt, nil
}

// Driver exposes the composed driver for checker registration and listeners.
func (rt *Runtime) Driver() *watchdog.Driver { return rt.driver }

// Obs returns the observability instance, or nil when none was configured.
func (rt *Runtime) Obs() *wdobs.Obs { return rt.obs }

// Recovery returns the wired recovery manager, or nil.
func (rt *Runtime) Recovery() *recovery.Manager { return rt.rec }

// Config returns a copy of the resolved configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Mesh returns the cluster health plane, or nil before Start or when no
// mesh peers were configured.
func (rt *Runtime) Mesh() *wdmesh.Mesh {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.mesh
}

// CEP returns the temporal rule engine, or nil when no rules were configured.
func (rt *Runtime) CEP() *wdcep.Engine { return rt.cep }

// ObsAddr returns the bound observability address after Start ("" when not
// serving).
func (rt *Runtime) ObsAddr() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.srv == nil {
		return ""
	}
	return rt.srv.Addr()
}

// Start serves the observability endpoint (when configured) and begins
// scheduling checks. When ctx is cancellable, its cancellation stops the
// driver's scheduling; the rest of the teardown still belongs to Close.
func (rt *Runtime) Start(ctx context.Context) error {
	rt.mu.Lock()
	if rt.started {
		rt.mu.Unlock()
		return errors.New("wdruntime: Start called twice")
	}
	rt.started = true
	rt.mu.Unlock()

	if rt.obs != nil && rt.cfg.ObsAddr != "" {
		srv, err := rt.obs.Serve(rt.cfg.ObsAddr)
		if err != nil {
			return fmt.Errorf("wdruntime: obs: %w", err)
		}
		rt.mu.Lock()
		rt.srv = srv
		rt.mu.Unlock()
	}
	if len(rt.cfg.MeshPeers) > 0 {
		if err := rt.startMesh(); err != nil {
			return err
		}
	}
	rt.driver.Start()
	if m := rt.Mesh(); m != nil {
		// Gossip only once the driver schedules checks, so the first digests
		// describe a live watchdog rather than a pre-start snapshot.
		m.Start()
	}
	if rt.notifier.Enabled() {
		_ = rt.notifier.Ready()
		stop, done := make(chan struct{}), make(chan struct{})
		rt.mu.Lock()
		rt.feedStop, rt.feedDone = stop, done
		rt.mu.Unlock()
		go rt.feedLoop(stop, done)
	}
	if ctx != nil && ctx.Done() != nil {
		stop := make(chan struct{})
		rt.mu.Lock()
		rt.watchStop = stop
		rt.mu.Unlock()
		go func() {
			select {
			case <-ctx.Done():
				rt.driver.Stop()
			case <-stop:
			}
		}()
	}
	return nil
}

// feedLoop feeds the supervisor's watchdog on wall-clock cadence (external
// watchdog timers run on wall time even when the driver is on a virtual
// clock), but only while the intrinsic verdict is healthy — feed silence
// must mean "hung or failing", never "the feeder was descheduled while the
// daemon burned". On stop it sends the STOPPING=1 disarm from the same
// goroutine, so no feed can ever be ordered after the disarm.
func (rt *Runtime) feedLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(rt.notifier.FeedInterval(rt.cfg.Interval))
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if rt.driver.Healthy() {
				_ = rt.notifier.Feed()
			}
		case <-stop:
			_ = rt.notifier.Stopping()
			return
		}
	}
}

// Drain stops scheduling and waits — up to the drain budget — for hung
// checker goroutines to be reaped, so a shutdown never races in-flight
// checks. It is idempotent; the first call's verdict is returned to all.
func (rt *Runtime) Drain() error {
	rt.drainOnce.Do(func() {
		rt.mu.Lock()
		if rt.watchStop != nil {
			close(rt.watchStop)
			rt.watchStop = nil
		}
		feedStop, feedDone := rt.feedStop, rt.feedDone
		rt.feedStop, rt.feedDone = nil, nil
		rt.mu.Unlock()
		if feedStop != nil {
			// Disarm the external watchdog before the driver stops: the
			// deliberate shutdown ahead must not read as a hang, and the
			// STOPPING=1 send is awaited so no later feed can re-arm it.
			close(feedStop)
			<-feedDone
		}
		rt.driver.Stop()
		// Hung checker goroutines outlive Stop by design (the reaper abandons
		// them); poll in real time — even under a virtual clock the leaked
		// goroutines run on the OS scheduler.
		deadline := time.Now().Add(rt.cfg.DrainBudget)
		for rt.driver.LeakedHung() > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if n := rt.driver.LeakedHung(); n > 0 {
			rt.drainErr = fmt.Errorf("wdruntime: %d hung checker goroutine(s) still leaked after the %v drain budget", n, rt.cfg.DrainBudget)
		}
	})
	return rt.drainErr
}

// Close tears the stack down in order: drain the driver, flush and release
// the journal sink, close the observability server, then wait for in-flight
// recovery retries. Idempotent; errors along the way are joined.
func (rt *Runtime) Close() error {
	rt.closeOnce.Do(func() {
		var errs []error
		// The mesh goes down first: peers should see a deliberate shutdown as
		// ordinary silence, and no gossip should observe a draining driver.
		if m := rt.Mesh(); m != nil {
			errs = append(errs, m.Close())
		}
		errs = append(errs, rt.Drain())
		// Drain the rule engine after the driver stops but before the journal
		// sink flushes: events already published must get their evaluation
		// pass, and any resulting KindCEP entries must reach the sink.
		if rt.cep != nil {
			rt.cep.Drain(rt.driver.Clock().Now())
		}
		if rt.journalF != nil {
			errs = append(errs, rt.journalF.Sync(), rt.journalF.Close())
		} else if f, ok := rt.cfg.JournalSink.(interface{ Flush() error }); ok {
			errs = append(errs, f.Flush())
		}
		if rt.obs != nil {
			errs = append(errs, rt.obs.Journal().SinkErr())
		}
		rt.mu.Lock()
		srv := rt.srv
		rt.srv = nil
		rt.mu.Unlock()
		if srv != nil {
			errs = append(errs, srv.Close())
		}
		if rt.rec != nil {
			rt.rec.Wait()
		}
		rt.closeErr = errors.Join(errs...)
	})
	return rt.closeErr
}
