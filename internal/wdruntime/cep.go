package wdruntime

import (
	"errors"
	"fmt"

	"gowatchdog/internal/gauge"
	"gowatchdog/internal/recovery"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdcep"
	"gowatchdog/internal/wdobs"
)

// setupCEP builds and wires the temporal rule engine during New, after the
// observability layer exists (the engine feeds off the detection journal).
// The data path:
//
//	journal.Append ──tap──▶ engine ring ──Pump (on each report, on the
//	driver's clock)──▶ rule evaluation ──OnFire──▶ KindCEP journal entry +
//	Driver.InjectAlarm
//
// Synthesized alarms ride the same damping/recovery/mesh path as intrinsic
// ones, and the KindCEP journal entry re-enters the engine through the tap —
// rules ignore the cep kind unless they opt in, so there is no feedback loop
// by default.
func (rt *Runtime) setupCEP() error {
	rules := append([]wdcep.Rule(nil), rt.cfg.CEPRules...)
	if rt.cfg.CEPRulesFile != "" {
		loaded, err := wdcep.LoadRules(rt.cfg.CEPRulesFile)
		if err != nil {
			return fmt.Errorf("wdruntime: cep: %w", err)
		}
		rules = append(rules, loaded...)
	}
	if len(rules) == 0 {
		return nil
	}
	evalEvery := rt.cfg.CEPEvalEvery
	if evalEvery == 0 {
		// Evaluate at most once per check interval: the stream is driven by
		// checker reports, so finer granularity buys nothing.
		evalEvery = rt.cfg.Interval
	}
	eng, err := wdcep.NewEngine(wdcep.Config{
		Rules:       rules,
		RingSize:    rt.cfg.CEPRingSize,
		EvalEvery:   evalEvery,
		GaugeSource: registryGaugeSource(rt.cfg.Registry),
		OnFire:      rt.onCEPFire,
	})
	if err != nil {
		return fmt.Errorf("wdruntime: cep: %w", err)
	}
	rt.cep = eng

	// The tap publishes into the engine's lock-free ring — non-blocking under
	// the journal lock, as SetTap requires.
	rt.obs.Journal().SetTap(func(e wdobs.Event) { eng.Publish(wdobs.CEPEvent(e)) })
	// Pump on every report, on the driver's clock so virtual-clock campaigns
	// evaluate deterministically. Pump itself gates on EvalEvery and uses
	// TryLock, so this listener stays cheap on the hot path.
	rt.driver.OnReport(func(watchdog.Report) { eng.Pump(rt.driver.Clock().Now()) })
	rt.obs.SetCEP(eng.Snapshot)
	return nil
}

// onCEPFire is the engine's OnFire hook: journal the firing as a KindCEP
// event, then synthesize an alarm through the driver so breakers, damping,
// recovery, and mesh gossip treat temporal detections uniformly with
// intrinsic ones. It runs under the engine lock; everything here is reentrant-
// safe with respect to it (the journal tap publishes lock-free, and the
// driver's alarm path never calls back into the engine's evaluation).
func (rt *Runtime) onCEPFire(f wdcep.Firing) {
	rep := watchdog.Report{
		Checker: "wdcep." + f.Rule,
		Status:  f.Status,
		Err:     errors.New(f.Detail),
		Time:    f.Time,
	}
	if rt.obs != nil {
		rt.obs.Journal().Append(wdobs.Event{
			Kind:        wdobs.KindCEP,
			Report:      rep,
			Consecutive: f.Count,
			Rule:        f.Rule,
		})
	}
	rt.driver.InjectAlarm(rep, f.Count)
}

// onRecoveryEvent journals recovery-manager outcomes as KindRecovery events,
// so escalations and retries land in the detection record (and the temporal
// rule stream) next to the alarms that drove them. Recovered outcomes carry
// healthy status — the repair succeeded — everything else carries error.
func (rt *Runtime) onRecoveryEvent(e recovery.Event) {
	status := watchdog.StatusError
	if e.Kind == recovery.EventRecovered {
		status = watchdog.StatusHealthy
	}
	rt.obs.Journal().Append(wdobs.Event{
		Kind: wdobs.KindRecovery,
		Report: watchdog.Report{
			Checker: e.Checker,
			Status:  status,
			Err:     e.Err,
			Time:    e.Time,
		},
		Outcome: e.Kind.String(),
		Action:  e.Action,
		Attempt: e.Attempt,
	})
}

// registryGaugeSource adapts a gauge.Registry into the engine's gauge lookup:
// gauges read their value, counters their running total, windows their mean.
// A nil registry resolves nothing, so gauge-gated rules never fire.
func registryGaugeSource(r *gauge.Registry) func(string) (float64, bool) {
	if r == nil {
		return nil
	}
	return func(name string) (float64, bool) {
		if g, ok := r.LookupGauge(name); ok {
			return g.Value(), true
		}
		if c, ok := r.LookupCounter(name); ok {
			return float64(c.Value()), true
		}
		if w, ok := r.LookupWindow(name); ok {
			return w.Mean(), true
		}
		return 0, false
	}
}
