package dfs

import (
	"fmt"
	"os"

	"gowatchdog/internal/watchdog"
)

// This file implements both generations of the DataNode disk checker from
// the paper's §3.3 example (HADOOP-13738):
//
//   - v1 (PermissionsChecker) "initially only checked directory
//     permissions" — a shallow structural check that passes while a volume
//     black-holes or corrupts real I/O;
//   - v2 (MimicDiskChecker) was "enhanced to create some files and invoke
//     functions from the DataNode main program to do real I/O in a similar
//     way" — it writes, reads back, verifies, and deletes a real block
//     through the same volume fault points as production writes.
//
// Experiment E8 runs both against a partially failed volume and reports
// which generation detects what.

// PermissionsChecker is the v1 disk checker: for each volume it stats the
// directory and confirms it is a writable directory. No data moves.
func (dn *DataNode) PermissionsChecker() watchdog.Checker {
	return watchdog.NewChecker("dfs.disk.v1", func(ctx *watchdog.Context) error {
		for _, v := range dn.vols {
			// The raw os.Stat is the point of v1: it reproduces the paper's
			// inadequate checker, un-pinpointed hang and all, so E8 can
			// contrast it with the wrapped v2 mimic below.
			//wdlint:ignore fateshare v1 deliberately bypasses watchdog.Op (§3.3 case study)
			fi, err := os.Stat(v.dir)
			if err != nil {
				return &watchdog.OpError{
					Site: watchdog.Site{Function: "dfs.PermissionsChecker", Op: "os.Stat"},
					Err:  err,
				}
			}
			if !fi.IsDir() {
				return fmt.Errorf("dfs: volume %d is not a directory", v.idx)
			}
			if fi.Mode().Perm()&0o200 == 0 {
				return fmt.Errorf("dfs: volume %d is not writable", v.idx)
			}
		}
		return nil
	})
}

// MimicDiskChecker is the v2 checker: a real write/read/verify/delete cycle
// on every volume, through the production write and read fault points, on a
// payload captured from real traffic by the WriteBlock hook when available.
func (dn *DataNode) MimicDiskChecker() watchdog.Checker {
	return watchdog.NewChecker("dfs.disk", func(ctx *watchdog.Context) error {
		payload := ctx.GetBytes("sample")
		if len(payload) == 0 {
			payload = []byte("dfs watchdog block probe payload")
		}
		for _, v := range dn.vols {
			site := watchdog.Site{
				Function: "dfs.(*DataNode).WriteBlock",
				Op:       fmt.Sprintf("volume%d/os.WriteFile", v.idx),
				File:     "internal/dfs/dfs.go",
				Line:     123,
			}
			err := watchdog.Op(ctx, site, func() error {
				if err := dn.inj.Fire(fmt.Sprintf("%s%d", FaultVolumeWritePrefix, v.idx)); err != nil {
					return err
				}
				probe := v.dir + "/__wd__probe.blk"
				if err := writeFileSync(probe, payload); err != nil {
					return err
				}
				if err := dn.inj.Fire(fmt.Sprintf("%s%d", FaultVolumeReadPrefix, v.idx)); err != nil {
					return err
				}
				got, err := os.ReadFile(probe)
				if err != nil {
					return err
				}
				if string(got) != string(payload) {
					return fmt.Errorf("volume %d read-back mismatch", v.idx)
				}
				return os.Remove(probe)
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
}

// InstallWatchdog registers both disk checker generations plus the block
// scanner checker on d.
func (dn *DataNode) InstallWatchdog(d *watchdog.Driver) {
	readyCtx := func() *watchdog.Context {
		c := watchdog.NewContext()
		c.MarkReady()
		return c
	}
	d.Register(dn.PermissionsChecker(), watchdog.WithContext(readyCtx()))
	d.Register(dn.MimicDiskChecker()) // hook-fed context (dfs.disk)
	d.Register(dn.scannerChecker(), watchdog.WithContext(readyCtx()))
}

// scannerChecker runs the block scanner as a heavyweight mimic check:
// any corrupt block is a safety violation with the block ID in the error.
func (dn *DataNode) scannerChecker() watchdog.Checker {
	site := watchdog.Site{
		Function: "dfs.(*DataNode).ScanBlocks",
		Op:       "crc32.Checksum",
		File:     "internal/dfs/dfs.go",
		Line:     176,
	}
	return watchdog.NewChecker("dfs.scanner", func(ctx *watchdog.Context) error {
		return watchdog.Op(ctx, site, func() error {
			corrupt, err := dn.ScanBlocks()
			if err != nil {
				return err
			}
			if len(corrupt) > 0 {
				return fmt.Errorf("%w: blocks %v", ErrBlockCorrupt, corrupt)
			}
			return nil
		})
	})
}
