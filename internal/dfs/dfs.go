// Package dfs implements a miniature HDFS-style DataNode: a block store
// spread across volumes, with block-level checksums and a periodic scanner.
//
// Its purpose in this repository is the paper's §3.3 disk-checker example
// (HADOOP-13738): the DataNode's original disk checker only examined
// directory permissions and missed real I/O faults; it was later enhanced
// into a mimic checker that creates files and performs real reads and
// writes the way the DataNode does. Both generations are implemented in
// watchdog.go so experiment E8 can compare them on a partially failed
// volume.
package dfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/gauge"
	"gowatchdog/internal/watchdog"
)

// Fault points. Volume-scoped points get the volume index appended
// ("dfs.volume.write.0"), so a *partial* disk failure — one bad volume among
// healthy ones — is expressible.
const (
	FaultVolumeWritePrefix = "dfs.volume.write."
	FaultVolumeReadPrefix  = "dfs.volume.read."
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors.
var (
	// ErrNoBlock is returned for reads of unknown blocks.
	ErrNoBlock = errors.New("dfs: no such block")
	// ErrBlockCorrupt is returned when a block fails its checksum.
	ErrBlockCorrupt = errors.New("dfs: block corrupt")
)

// volume is one disk directory holding block files.
type volume struct {
	dir string
	idx int
}

// blockFileName renders a block's on-disk name.
func blockFileName(id uint64) string { return fmt.Sprintf("blk_%016x", id) }

// DataNode stores checksummed blocks across volumes (round-robin placement).
type DataNode struct {
	vols    []*volume
	inj     *faultinject.Injector
	mets    *gauge.Registry
	factory *watchdog.Factory

	mu     sync.Mutex
	blocks map[uint64]int // block id -> volume index
	nextID uint64
}

// Config configures a DataNode.
type Config struct {
	// VolumeDirs are the volume root directories (at least one).
	VolumeDirs []string
	// Injector defaults to a disabled injector.
	Injector *faultinject.Injector
	// Metrics defaults to a private registry.
	Metrics *gauge.Registry
	// WatchdogFactory receives hook updates when set.
	WatchdogFactory *watchdog.Factory
}

// New creates the volume directories and returns a DataNode.
func New(cfg Config) (*DataNode, error) {
	if len(cfg.VolumeDirs) == 0 {
		return nil, errors.New("dfs: no volumes configured")
	}
	if cfg.Injector == nil {
		cfg.Injector = faultinject.New(clock.Real())
	}
	if cfg.Metrics == nil {
		cfg.Metrics = gauge.NewRegistry()
	}
	dn := &DataNode{
		inj:     cfg.Injector,
		mets:    cfg.Metrics,
		factory: cfg.WatchdogFactory,
		blocks:  make(map[uint64]int),
	}
	for i, dir := range cfg.VolumeDirs {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("dfs: volume %d: %w", i, err)
		}
		dn.vols = append(dn.vols, &volume{dir: dir, idx: i})
	}
	return dn, nil
}

// Volumes returns the number of volumes.
func (dn *DataNode) Volumes() int { return len(dn.vols) }

// Metrics returns the node's metric registry.
func (dn *DataNode) Metrics() *gauge.Registry { return dn.mets }

// Injector returns the node's fault injector.
func (dn *DataNode) Injector() *faultinject.Injector { return dn.inj }

// WriteBlock stores data as a new block and returns its ID. The block file
// is framed as 4-byte CRC32C + data and fsynced.
func (dn *DataNode) WriteBlock(data []byte) (uint64, error) {
	dn.mu.Lock()
	dn.nextID++
	id := dn.nextID
	vol := dn.vols[int(id)%len(dn.vols)]
	dn.mu.Unlock()

	// Watchdog hook: capture the write arguments before the vulnerable I/O.
	if dn.factory != nil {
		sample := data
		if len(sample) > 64 {
			sample = sample[:64]
		}
		dn.factory.Context("dfs.disk").PutAll(map[string]any{
			"volume": vol.idx,
			"block":  int64(id),
			"sample": sample,
		})
	}
	if err := dn.inj.Fire(fmt.Sprintf("%s%d", FaultVolumeWritePrefix, vol.idx)); err != nil {
		dn.mets.Counter("dfs.write.errors").Inc()
		return 0, err
	}
	framed := make([]byte, 4+len(data))
	binary.LittleEndian.PutUint32(framed[:4], crc32.Checksum(data, castagnoli))
	copy(framed[4:], data)
	path := filepath.Join(vol.dir, blockFileName(id))
	if err := writeFileSync(path, framed); err != nil {
		dn.mets.Counter("dfs.write.errors").Inc()
		return 0, err
	}
	dn.mu.Lock()
	dn.blocks[id] = vol.idx
	dn.mu.Unlock()
	dn.mets.Counter("dfs.blocks.written").Inc()
	return id, nil
}

// ReadBlock returns a block's data after checksum validation.
func (dn *DataNode) ReadBlock(id uint64) ([]byte, error) {
	dn.mu.Lock()
	volIdx, ok := dn.blocks[id]
	dn.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoBlock, id)
	}
	if err := dn.inj.Fire(fmt.Sprintf("%s%d", FaultVolumeReadPrefix, volIdx)); err != nil {
		dn.mets.Counter("dfs.read.errors").Inc()
		return nil, err
	}
	framed, err := os.ReadFile(filepath.Join(dn.vols[volIdx].dir, blockFileName(id)))
	if err != nil {
		dn.mets.Counter("dfs.read.errors").Inc()
		return nil, err
	}
	if len(framed) < 4 {
		return nil, fmt.Errorf("%w: block %d truncated", ErrBlockCorrupt, id)
	}
	want := binary.LittleEndian.Uint32(framed[:4])
	data := framed[4:]
	if crc32.Checksum(data, castagnoli) != want {
		dn.mets.Counter("dfs.corrupt.blocks").Inc()
		return nil, fmt.Errorf("%w: block %d", ErrBlockCorrupt, id)
	}
	dn.mets.Counter("dfs.blocks.read").Inc()
	return data, nil
}

// DeleteBlock removes a block.
func (dn *DataNode) DeleteBlock(id uint64) error {
	dn.mu.Lock()
	volIdx, ok := dn.blocks[id]
	if ok {
		delete(dn.blocks, id)
	}
	dn.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoBlock, id)
	}
	return os.Remove(filepath.Join(dn.vols[volIdx].dir, blockFileName(id)))
}

// BlockCount returns the number of live blocks.
func (dn *DataNode) BlockCount() int {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	return len(dn.blocks)
}

// ScanBlocks validates the checksum of every block (the DataNode's periodic
// block scanner). It returns the IDs of corrupt blocks.
func (dn *DataNode) ScanBlocks() ([]uint64, error) {
	dn.mu.Lock()
	ids := make([]uint64, 0, len(dn.blocks))
	for id := range dn.blocks {
		ids = append(ids, id)
	}
	dn.mu.Unlock()
	var corrupt []uint64
	for _, id := range ids {
		if _, err := dn.ReadBlock(id); err != nil {
			if errors.Is(err, ErrBlockCorrupt) {
				corrupt = append(corrupt, id)
				continue
			}
			return corrupt, err
		}
	}
	return corrupt, nil
}

// VolumeDir returns volume i's directory.
func (dn *DataNode) VolumeDir(i int) string { return dn.vols[i].dir }

// BlockPath returns the on-disk path of a block, for fault-injection tests.
func (dn *DataNode) BlockPath(id uint64) (string, bool) {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	volIdx, ok := dn.blocks[id]
	if !ok {
		return "", false
	}
	return filepath.Join(dn.vols[volIdx].dir, blockFileName(id)), true
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
