package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
)

func newNode(t *testing.T, volumes int, factory *watchdog.Factory) *DataNode {
	t.Helper()
	base := t.TempDir()
	dirs := make([]string, volumes)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("vol%d", i))
	}
	dn, err := New(Config{VolumeDirs: dirs, WatchdogFactory: factory})
	if err != nil {
		t.Fatal(err)
	}
	return dn
}

func TestWriteReadDeleteBlock(t *testing.T) {
	dn := newNode(t, 2, nil)
	id, err := dn.WriteBlock([]byte("block data"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := dn.ReadBlock(id)
	if err != nil || string(got) != "block data" {
		t.Fatalf("ReadBlock = %q, %v", got, err)
	}
	if dn.BlockCount() != 1 {
		t.Fatalf("BlockCount = %d", dn.BlockCount())
	}
	if err := dn.DeleteBlock(id); err != nil {
		t.Fatal(err)
	}
	if _, err := dn.ReadBlock(id); !errors.Is(err, ErrNoBlock) {
		t.Fatalf("read after delete: %v", err)
	}
	if err := dn.DeleteBlock(id); !errors.Is(err, ErrNoBlock) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestBlocksSpreadAcrossVolumes(t *testing.T) {
	dn := newNode(t, 3, nil)
	for i := 0; i < 9; i++ {
		if _, err := dn.WriteBlock([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		entries, err := os.ReadDir(dn.VolumeDir(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 3 {
			t.Fatalf("volume %d has %d blocks, want 3", i, len(entries))
		}
	}
}

func TestReadDetectsCorruptBlock(t *testing.T) {
	dn := newNode(t, 1, nil)
	id, _ := dn.WriteBlock([]byte("important"))
	path, ok := dn.BlockPath(id)
	if !ok {
		t.Fatal("BlockPath")
	}
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	if _, err := dn.ReadBlock(id); !errors.Is(err, ErrBlockCorrupt) {
		t.Fatalf("err = %v", err)
	}
}

func TestScanBlocksFindsCorruption(t *testing.T) {
	dn := newNode(t, 2, nil)
	var ids []uint64
	for i := 0; i < 6; i++ {
		id, _ := dn.WriteBlock([]byte(fmt.Sprintf("block %d", i)))
		ids = append(ids, id)
	}
	corrupt, err := dn.ScanBlocks()
	if err != nil || len(corrupt) != 0 {
		t.Fatalf("clean scan = %v, %v", corrupt, err)
	}
	path, _ := dn.BlockPath(ids[2])
	data, _ := os.ReadFile(path)
	data[5] ^= 0x01
	os.WriteFile(path, data, 0o644)
	corrupt, err = dn.ScanBlocks()
	if err != nil || len(corrupt) != 1 || corrupt[0] != ids[2] {
		t.Fatalf("scan = %v, %v", corrupt, err)
	}
}

func TestPartialVolumeFaultOnlyAffectsThatVolume(t *testing.T) {
	dn := newNode(t, 2, nil)
	dn.Injector().Arm(FaultVolumeWritePrefix+"0", faultinject.Fault{Kind: faultinject.Error})
	okWrites, badWrites := 0, 0
	for i := 0; i < 10; i++ {
		if _, err := dn.WriteBlock([]byte("x")); err != nil {
			badWrites++
		} else {
			okWrites++
		}
	}
	// Round-robin placement: half land on the failed volume.
	if okWrites != 5 || badWrites != 5 {
		t.Fatalf("ok=%d bad=%d, want 5/5", okWrites, badWrites)
	}
}

func TestPermissionsCheckerMissesIOFault(t *testing.T) {
	// The v1 checker passes while volume 0 fails all real I/O — the paper's
	// motivating inadequacy.
	dn := newNode(t, 2, nil)
	dn.Injector().Arm(FaultVolumeWritePrefix+"0", faultinject.Fault{Kind: faultinject.Error})
	d := watchdog.New()
	dn.InstallWatchdog(d)
	rep, err := d.CheckNow("dfs.disk.v1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != watchdog.StatusHealthy {
		t.Fatalf("v1 checker = %v, expected (wrongly) healthy", rep.Status)
	}
}

func TestMimicDiskCheckerCatchesIOFault(t *testing.T) {
	factory := watchdog.NewFactory()
	dn := newNode(t, 2, factory)
	dn.Injector().Arm(FaultVolumeWritePrefix+"0", faultinject.Fault{Kind: faultinject.Error})
	d := watchdog.New(watchdog.WithFactory(factory))
	dn.InstallWatchdog(d)
	// The mimic checker is hook-gated; drive one write through a healthy
	// volume first. Block 1 goes to volume 1 (id%2), so it succeeds.
	if _, err := dn.WriteBlock([]byte("traffic")); err != nil {
		t.Fatal(err)
	}
	rep, err := d.CheckNow("dfs.disk")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != watchdog.StatusError {
		t.Fatalf("mimic checker = %v, want error", rep.Status)
	}
	if rep.Site.Op != "volume0/os.WriteFile" {
		t.Fatalf("pinpoint = %v", rep.Site)
	}
}

func TestMimicDiskCheckerHangsOnBlackholedVolume(t *testing.T) {
	dn := newNode(t, 1, nil)
	dn.Injector().Arm(FaultVolumeWritePrefix+"0", faultinject.Fault{Kind: faultinject.Hang})
	defer dn.Injector().Clear()
	d := watchdog.New(watchdog.WithTimeout(200 * time.Millisecond))
	dn.InstallWatchdog(d)
	// Make the mimic checker runnable without traffic.
	d.Factory().Context("dfs.disk").MarkReady()
	done := make(chan watchdog.Report, 1)
	go func() {
		rep, _ := d.CheckNow("dfs.disk")
		done <- rep
	}()
	select {
	case rep := <-done:
		if rep.Status != watchdog.StatusStuck {
			t.Fatalf("status = %v, want stuck", rep.Status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("driver never timed out")
	}
}

func TestScannerCheckerFlagsCorruptBlocks(t *testing.T) {
	dn := newNode(t, 1, nil)
	d := watchdog.New()
	dn.InstallWatchdog(d)
	id, _ := dn.WriteBlock([]byte("scan me"))
	if rep, _ := d.CheckNow("dfs.scanner"); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("clean scanner = %v", rep.Status)
	}
	path, _ := dn.BlockPath(id)
	data, _ := os.ReadFile(path)
	data[4] ^= 0x10
	os.WriteFile(path, data, 0o644)
	rep, _ := d.CheckNow("dfs.scanner")
	if rep.Status != watchdog.StatusError {
		t.Fatalf("scanner on corrupt block = %v", rep.Status)
	}
}

func TestWriteBlockHookPopulatesContext(t *testing.T) {
	factory := watchdog.NewFactory()
	dn := newNode(t, 1, factory)
	dn.WriteBlock([]byte("hooked payload"))
	ctx := factory.Context("dfs.disk")
	if !ctx.Ready() {
		t.Fatal("hook did not mark context ready")
	}
	if string(ctx.GetBytes("sample")) != "hooked payload" {
		t.Fatalf("sample = %q", ctx.GetBytes("sample"))
	}
}

func TestNewRequiresVolumes(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no volumes succeeded")
	}
}

// Property: any written payload reads back identically.
func TestBlockRoundTripProperty(t *testing.T) {
	dn := newNode(t, 3, nil)
	f := func(data []byte) bool {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		id, err := dn.WriteBlock(data)
		if err != nil {
			return false
		}
		got, err := dn.ReadBlock(id)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
