package watchdog

import (
	"testing"
	"testing/quick"
)

func TestContextStartsNotReady(t *testing.T) {
	c := NewContext()
	if c.Ready() {
		t.Fatal("fresh context reports ready")
	}
	if c.Version() != 0 {
		t.Fatal("fresh context has nonzero version")
	}
}

func TestContextPutMakesReadyAndBumpsVersion(t *testing.T) {
	c := NewContext()
	c.Put("k", "v")
	if !c.Ready() {
		t.Fatal("context not ready after Put")
	}
	if c.Version() != 1 {
		t.Fatalf("version = %d, want 1", c.Version())
	}
	if got := c.GetString("k"); got != "v" {
		t.Fatalf("GetString = %q", got)
	}
	c.Put("k", "v2")
	if c.Version() != 2 {
		t.Fatalf("version = %d, want 2", c.Version())
	}
}

func TestContextPutAllAtomicVersion(t *testing.T) {
	c := NewContext()
	c.PutAll(map[string]any{"a": 1, "b": 2})
	if c.Version() != 1 {
		t.Fatalf("PutAll bumped version to %d, want 1", c.Version())
	}
	if c.GetInt("a") != 1 || c.GetInt("b") != 2 {
		t.Fatal("PutAll values missing")
	}
}

func TestContextByteReplication(t *testing.T) {
	c := NewContext()
	src := []byte("payload")
	c.Put("data", src)
	src[0] = 'X' // mutate the main program's buffer after the hook ran
	got := c.GetBytes("data")
	if string(got) != "payload" {
		t.Fatalf("context saw main-program mutation: %q", got)
	}
	got[0] = 'Y' // mutate the checker's copy
	if again := c.GetBytes("data"); string(again) != "payload" {
		t.Fatalf("checker mutation leaked into context: %q", again)
	}
}

type replicatingBox struct{ vals []int }

func (b *replicatingBox) WDReplicate() any {
	out := make([]int, len(b.vals))
	copy(out, b.vals)
	return &replicatingBox{vals: out}
}

func TestContextReplicatorInterface(t *testing.T) {
	c := NewContext()
	box := &replicatingBox{vals: []int{1, 2, 3}}
	c.Put("box", box)
	box.vals[0] = 99
	v, _ := c.Get("box")
	stored := v.(*replicatingBox)
	if stored.vals[0] != 1 {
		t.Fatal("Replicator copy shares state with original")
	}
}

func TestReplicateKinds(t *testing.T) {
	if Replicate(nil) != nil {
		t.Fatal("Replicate(nil) != nil")
	}
	s := []string{"a", "b"}
	rs := Replicate(s).([]string)
	s[0] = "x"
	if rs[0] != "a" {
		t.Fatal("[]string not copied")
	}
	m := map[string]string{"k": "v"}
	rm := Replicate(m).(map[string]string)
	m["k"] = "changed"
	if rm["k"] != "v" {
		t.Fatal("map[string]string not copied")
	}
	mi := map[string]int64{"k": 7}
	rmi := Replicate(mi).(map[string]int64)
	mi["k"] = 8
	if rmi["k"] != 7 {
		t.Fatal("map[string]int64 not copied")
	}
	is := []int{5}
	ris := Replicate(is).([]int)
	is[0] = 6
	if ris[0] != 5 {
		t.Fatal("[]int not copied")
	}
	i64 := []int64{5}
	ri64 := Replicate(i64).([]int64)
	i64[0] = 6
	if ri64[0] != 5 {
		t.Fatal("[]int64 not copied")
	}
}

func TestContextGetIntAcceptsIntegerKinds(t *testing.T) {
	c := NewContext()
	cases := map[string]any{
		"int": int(1), "i8": int8(2), "i16": int16(3), "i32": int32(4),
		"i64": int64(5), "u": uint(6), "u8": uint8(7), "u16": uint16(8),
		"u32": uint32(9), "u64": uint64(10),
	}
	want := map[string]int64{
		"int": 1, "i8": 2, "i16": 3, "i32": 4, "i64": 5,
		"u": 6, "u8": 7, "u16": 8, "u32": 9, "u64": 10,
	}
	for k, v := range cases {
		c.Put(k, v)
	}
	for k, w := range want {
		if got := c.GetInt(k); got != w {
			t.Errorf("GetInt(%q) = %d, want %d", k, got, w)
		}
	}
	if c.GetInt("missing") != 0 {
		t.Error("GetInt(missing) != 0")
	}
	c.Put("str", "notanint")
	if c.GetInt("str") != 0 {
		t.Error("GetInt on string != 0")
	}
}

func TestContextInvalidateAndMarkReady(t *testing.T) {
	c := NewContext()
	c.MarkReady()
	if !c.Ready() {
		t.Fatal("MarkReady did not set ready")
	}
	c.Invalidate()
	if c.Ready() {
		t.Fatal("Invalidate did not clear ready")
	}
}

func TestContextOpTracking(t *testing.T) {
	c := NewContext()
	if _, ok := c.CurrentOp(); ok {
		t.Fatal("fresh context has a current op")
	}
	site := Site{Function: "f", Op: "write"}
	c.EnterOp(site)
	got, ok := c.CurrentOp()
	if !ok || got != site {
		t.Fatalf("CurrentOp = %v, %v", got, ok)
	}
	c.ExitOp()
	if _, ok := c.CurrentOp(); ok {
		t.Fatal("CurrentOp still set after ExitOp")
	}
	if c.LastOp() != site {
		t.Fatal("LastOp lost the site")
	}
}

func TestContextSnapshotIsCopy(t *testing.T) {
	c := NewContext()
	c.Put("k", "v")
	snap := c.Snapshot()
	snap["k"] = "mutated"
	if c.GetString("k") != "v" {
		t.Fatal("snapshot mutation leaked into context")
	}
}

func TestFactorySharesContextsByName(t *testing.T) {
	f := NewFactory()
	a := f.Context("flusher")
	b := f.Context("flusher")
	if a != b {
		t.Fatal("factory returned different contexts for same name")
	}
	if f.Context("other") == a {
		t.Fatal("factory shared context across names")
	}
	names := f.Names()
	if len(names) != 2 {
		t.Fatalf("Names = %v", names)
	}
}

// Property: replication of byte slices always yields an equal but
// independent slice.
func TestReplicateBytesProperty(t *testing.T) {
	f := func(data []byte) bool {
		r := Replicate(data).([]byte)
		if len(r) != len(data) {
			return false
		}
		for i := range data {
			if r[i] != data[i] {
				return false
			}
		}
		if len(data) > 0 {
			old := data[0]
			data[0] = old + 1
			same := r[0] == data[0]
			data[0] = old
			if same && len(data) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSiteString(t *testing.T) {
	if (Site{}).String() != "<unknown>" {
		t.Fatal("zero site should render <unknown>")
	}
	s := Site{Function: "kvs.flush", Op: "wal.Append", File: "wal.go", Line: 42}
	want := "kvs.flush/wal.Append@wal.go:42"
	if s.String() != want {
		t.Fatalf("String = %q, want %q", s.String(), want)
	}
	if (Site{Op: "write"}).String() != "write" {
		t.Fatalf("op-only site = %q", (Site{Op: "write"}).String())
	}
}
