package watchdog

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"gowatchdog/internal/clock"
)

// PanicError wraps a panic value recovered from a checker execution.
type PanicError struct{ Value any }

// Error implements the error interface.
func (e *PanicError) Error() string { return fmt.Sprintf("checker panicked: %v", e.Value) }

// Driver manages checker scheduling and execution (§3.1). Each registered
// checker runs on its own cadence in its own goroutine; the driver catches
// the three failure signatures — error, crash, hang — classifies them,
// maintains a status ledger, and raises alarms once abnormal results cross a
// checker's threshold.
//
// The driver never blocks on a checker: a checker that hangs is abandoned
// past its timeout (the goroutine is reaped when it eventually returns) and
// the hang itself is reported as a liveness violation pinpointing the
// vulnerable operation that was executing.
type Driver struct {
	clk             clock.Clock
	factory         *Factory
	defaultInterval time.Duration
	defaultTimeout  time.Duration
	historyCap      int
	breakerCfg      BreakerConfig // default per-checker breaker; zero = disabled
	hangBudget      int           // max concurrently-leaked hung goroutines; 0 = unlimited
	dampWindow      time.Duration // alarm suppression window; 0 = no damping
	jitterSeed      int64

	mu           sync.Mutex
	checkers     map[string]*registered
	order        []string // registration order, for deterministic iteration
	listeners    []func(Report)
	alarmFns     []func(Alarm)
	obs          Observer
	history      []Report
	running      bool
	stop         chan struct{}
	wg           sync.WaitGroup
	rng          *rand.Rand // breaker backoff jitter; guarded by mu
	gate         *AlarmGate // non-nil when dampWindow > 0
	leakedHung   int        // hung checker goroutines currently awaiting reaping
	breakerSkips int64      // executions skipped because a breaker was open
	budgetSkips  int64      // executions skipped because the hang budget was exhausted
	suppressed   int64      // alarms swallowed by the damping gate
}

// registered couples a checker with its context and policy. Mutable fields
// are guarded by the driver mutex.
type registered struct {
	c         Checker
	ctx       *Context
	interval  time.Duration
	timeout   time.Duration
	threshold int
	validator func(Report) bool

	inFlight    bool
	paused      bool
	consecutive int
	alarmed     bool
	runs        int64
	abnormal    int64
	latest      Report
	hasLatest   bool

	brk         BreakerConfig // resolved breaker policy; disabled when Threshold <= 0
	brkState    BreakerState
	brkFailures int       // consecutive breaker-countable failures while closed
	brkStreak   int       // consecutive trips without an intervening close
	brkTrips    int64     // lifetime trip count
	brkNext     time.Time // next probe-eligible time while open
	flaps       int64     // alarms suppressed by damping for this checker
}

// Option configures a Driver.
type Option func(*Driver)

// WithClock sets the clock used for scheduling and timeouts.
func WithClock(c clock.Clock) Option { return func(d *Driver) { d.clk = c } }

// WithInterval sets the default check interval (default 1s).
func WithInterval(iv time.Duration) Option { return func(d *Driver) { d.defaultInterval = iv } }

// WithTimeout sets the default liveness timeout (default 6s, the paper's
// case-study configuration: 1s interval + 6s timeout ≈ 7s detection).
func WithTimeout(to time.Duration) Option { return func(d *Driver) { d.defaultTimeout = to } }

// WithHistory sets how many reports the driver retains (default 1024).
func WithHistory(n int) Option { return func(d *Driver) { d.historyCap = n } }

// WithFactory shares an existing context factory (e.g. one the generated
// hooks already write into).
func WithFactory(f *Factory) Option { return func(d *Driver) { d.factory = f } }

// WithObserver sets the driver's execution observer (see Observer).
func WithObserver(o Observer) Option { return func(d *Driver) { d.obs = o } }

// WithBreaker sets the default circuit breaker for every checker (overridable
// per checker with the Breaker option). The breaker is off by default: tests
// and experiments that deliberately crash-loop checkers rely on every
// execution running.
func WithBreaker(cfg BreakerConfig) Option { return func(d *Driver) { d.breakerCfg = cfg } }

// WithHangBudget caps how many hung checker goroutines the driver will leak
// concurrently. At the cap, executions that would start a new goroutine are
// skipped with a budget-exhausted StatusSkipped report until a hung checker
// returns and is reaped. Zero (the default) means unlimited.
func WithHangBudget(n int) Option { return func(d *Driver) { d.hangBudget = n } }

// WithAlarmDamping suppresses duplicate (checker, site, status) alarms inside
// window; the next escaped alarm carries the suppressed count in Flaps. Zero
// (the default) disables damping.
func WithAlarmDamping(window time.Duration) Option {
	return func(d *Driver) { d.dampWindow = window }
}

// WithJitterSeed seeds the breaker's backoff jitter for reproducible runs
// (default seed 1, so unseeded drivers are deterministic too).
func WithJitterSeed(seed int64) Option { return func(d *Driver) { d.jitterSeed = seed } }

// Observer receives execution telemetry from the driver: one callback per
// checker execution and one per raised alarm. It exists so an observability
// layer (internal/wdobs) can count runs, classify status transitions, and
// histogram latencies without re-deriving driver state from listeners.
//
// Callbacks run synchronously on the checker's scheduling goroutine, outside
// the driver lock, and must not block. A nil observer costs a single pointer
// check per execution, keeping the paper's §3.2 "watchdogs must stay cheap"
// property when observability is disabled.
type Observer interface {
	// ObserveReport is invoked after every execution with the resulting
	// report, the status of the previous report, and whether this is the
	// checker's first report (in which case prev is meaningless).
	ObserveReport(rep Report, prev Status, first bool)
	// ObserveAlarm is invoked when an abnormal streak crosses a checker's
	// threshold, after any validator has run.
	ObserveAlarm(a Alarm)
}

// New returns a Driver with the given options applied.
func New(opts ...Option) *Driver {
	d := &Driver{
		clk:             clock.Real(),
		defaultInterval: time.Second,
		defaultTimeout:  6 * time.Second,
		historyCap:      1024,
		jitterSeed:      1,
		checkers:        make(map[string]*registered),
		stop:            make(chan struct{}),
	}
	for _, o := range opts {
		o(d)
	}
	if d.factory == nil {
		d.factory = NewFactory()
	}
	d.rng = rand.New(rand.NewSource(d.jitterSeed))
	if d.dampWindow > 0 {
		d.gate = NewAlarmGate(d.clk, d.dampWindow)
	}
	return d
}

// Factory returns the driver's context factory; hooks in the main program
// write through it.
func (d *Driver) Factory() *Factory { return d.factory }

// Clock returns the driver's clock, shared with helper utilities.
func (d *Driver) Clock() clock.Clock { return d.clk }

// DefaultInterval returns the driver's default check interval, so checker
// installers can derive slower cadences for heavyweight checkers.
func (d *Driver) DefaultInterval() time.Duration { return d.defaultInterval }

// DefaultTimeout returns the driver's default liveness timeout.
func (d *Driver) DefaultTimeout() time.Duration { return d.defaultTimeout }

// CheckerOption configures one registered checker.
type CheckerOption func(*registered)

// Every overrides the check interval for this checker.
func Every(iv time.Duration) CheckerOption { return func(r *registered) { r.interval = iv } }

// Timeout overrides the liveness timeout for this checker.
func Timeout(to time.Duration) CheckerOption { return func(r *registered) { r.timeout = to } }

// Threshold sets how many consecutive abnormal reports raise an alarm
// (default 1).
func Threshold(n int) CheckerOption { return func(r *registered) { r.threshold = n } }

// ValidateWith installs a validator consulted when an alarm fires; typically
// a probe checker assessing end-to-end impact (§5.1).
func ValidateWith(fn func(Report) bool) CheckerOption {
	return func(r *registered) { r.validator = fn }
}

// WithContext binds the checker to a specific context instead of the
// factory-managed context named after the checker.
func WithContext(ctx *Context) CheckerOption { return func(r *registered) { r.ctx = ctx } }

// Breaker overrides the driver-wide circuit breaker for this checker. Pass a
// zero BreakerConfig to disable the breaker for a checker on a driver
// configured with WithBreaker.
func Breaker(cfg BreakerConfig) CheckerOption { return func(r *registered) { r.brk = cfg } }

// Register adds a checker. It panics if the driver is running or the name is
// already taken — checker sets are assembled at startup, mirroring the
// generated watchdogs that register every checker before the driver starts.
func (d *Driver) Register(c Checker, opts ...CheckerOption) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.running {
		panic("watchdog: Register after Start")
	}
	name := c.Name()
	if _, dup := d.checkers[name]; dup {
		panic("watchdog: duplicate checker " + name)
	}
	r := &registered{
		c:         c,
		interval:  d.defaultInterval,
		timeout:   d.defaultTimeout,
		threshold: 1,
		brk:       d.breakerCfg,
	}
	for _, o := range opts {
		o(r)
	}
	if r.ctx == nil {
		r.ctx = d.factory.Context(name)
	}
	r.brk = r.brk.withDefaults(r.interval)
	d.checkers[name] = r
	d.order = append(d.order, name)
}

// OnReport subscribes fn to every checker report. Must be called before
// Start. fn runs on the checker's scheduling goroutine and must not block.
func (d *Driver) OnReport(fn func(Report)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.listeners = append(d.listeners, fn)
}

// OnAlarm subscribes fn to alarms. Must be called before Start.
func (d *Driver) OnAlarm(fn func(Alarm)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.alarmFns = append(d.alarmFns, fn)
}

// SetObserver installs the execution observer. It panics if the driver is
// running: like Register, observability is wired at startup so executions
// are never half-observed.
func (d *Driver) SetObserver(o Observer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.running {
		panic("watchdog: SetObserver after Start")
	}
	d.obs = o
}

// Start launches one scheduling goroutine per checker.
func (d *Driver) Start() {
	d.mu.Lock()
	if d.running {
		d.mu.Unlock()
		return
	}
	d.running = true
	d.stop = make(chan struct{})
	names := append([]string(nil), d.order...)
	d.mu.Unlock()
	for _, name := range names {
		d.mu.Lock()
		r := d.checkers[name]
		d.mu.Unlock()
		d.wg.Add(1)
		go d.schedule(r)
	}
}

// Stop halts scheduling and waits for the scheduling goroutines. Checker
// executions that are stuck past their timeout are left to the reaper and do
// not block Stop.
func (d *Driver) Stop() {
	d.mu.Lock()
	if !d.running {
		d.mu.Unlock()
		return
	}
	d.running = false
	close(d.stop)
	d.mu.Unlock()
	d.wg.Wait()
}

func (d *Driver) schedule(r *registered) {
	defer d.wg.Done()
	tick := d.clk.NewTicker(r.interval)
	defer tick.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-tick.C():
			d.executeOnce(r)
		}
	}
}

// CheckNow runs the named checker once, synchronously, applying the same
// classification and alarm policy as scheduled runs. Experiments and tests
// use it to step the watchdog deterministically.
func (d *Driver) CheckNow(name string) (Report, error) {
	d.mu.Lock()
	r, ok := d.checkers[name]
	d.mu.Unlock()
	if !ok {
		return Report{}, fmt.Errorf("watchdog: unknown checker %q", name)
	}
	return d.executeOnce(r), nil
}

// CheckAll runs every registered checker once, in registration order.
func (d *Driver) CheckAll() []Report {
	d.mu.Lock()
	names := append([]string(nil), d.order...)
	d.mu.Unlock()
	out := make([]Report, 0, len(names))
	for _, n := range names {
		rep, err := d.CheckNow(n)
		if err == nil {
			out = append(out, rep)
		}
	}
	return out
}

// Pause suspends the named checker: scheduled and manual executions are
// skipped (reported as context-pending) and its abnormal streak resets.
// Use it around planned maintenance — a deliberately restarted component
// should not page anyone. It returns false for unknown checkers.
func (d *Driver) Pause(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.checkers[name]
	if !ok {
		return false
	}
	r.paused = true
	r.consecutive = 0
	r.alarmed = false
	return true
}

// Resume re-enables a paused checker.
func (d *Driver) Resume(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.checkers[name]
	if !ok {
		return false
	}
	r.paused = false
	return true
}

// Paused reports whether the named checker is paused.
func (d *Driver) Paused(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.checkers[name]
	return ok && r.paused
}

// executeOnce performs one scheduled execution of r and returns the report.
func (d *Driver) executeOnce(r *registered) Report {
	name := r.c.Name()

	d.mu.Lock()
	if r.paused {
		d.mu.Unlock()
		rep := Report{Checker: name, Status: StatusContextPending, Time: d.clk.Now()}
		d.record(r, rep)
		return rep
	}
	if r.brk.enabled() && r.brkState == BreakerOpen {
		now := d.clk.Now()
		if now.Before(r.brkNext) {
			d.breakerSkips++
			next := r.brkNext
			trips := r.brkTrips
			d.mu.Unlock()
			rep := Report{
				Checker: name,
				Status:  StatusSkipped,
				Err: fmt.Errorf("breaker open after %d trip(s); next probe eligible in %v",
					trips, next.Sub(now)),
				Time: now,
			}
			d.record(r, rep)
			return rep
		}
		// Backoff elapsed: admit exactly one probe execution.
		r.brkState = BreakerHalfOpen
	}
	if r.inFlight {
		// The previous execution is still blocked: every tick past the
		// timeout re-confirms the liveness violation.
		site := r.latest.Site
		d.mu.Unlock()
		rep := Report{
			Checker: name,
			Status:  StatusStuck,
			Err:     errors.New("checker still blocked from previous execution"),
			Site:    site,
			Latency: r.timeout,
			Time:    d.clk.Now(),
		}
		d.record(r, rep)
		return rep
	}
	if d.hangBudget > 0 && d.leakedHung >= d.hangBudget {
		// Starting another execution could leak another goroutine; degrade
		// gracefully instead of hanging the watchdog one goroutine at a time.
		d.budgetSkips++
		leaked := d.leakedHung
		budget := d.hangBudget
		d.mu.Unlock()
		rep := Report{
			Checker: name,
			Status:  StatusSkipped,
			Err: fmt.Errorf("hang budget exhausted: %d hung checker goroutine(s) awaiting reaping (budget %d)",
				leaked, budget),
			Time: d.clk.Now(),
		}
		d.record(r, rep)
		return rep
	}
	ctx := r.ctx
	timeout := r.timeout
	d.mu.Unlock()

	if !ctx.Ready() {
		rep := Report{Checker: name, Status: StatusContextPending, Time: d.clk.Now()}
		d.record(r, rep)
		return rep
	}

	start := d.clk.Now()
	resCh := make(chan error, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				resCh <- &PanicError{Value: p}
			}
		}()
		resCh <- r.c.Check(ctx)
	}()

	timer := d.clk.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-resCh:
		rep := d.classify(name, ctx, err, d.clk.Since(start))
		d.record(r, rep)
		return rep
	case <-timer.C():
		site, _ := ctx.CurrentOp()
		d.mu.Lock()
		r.inFlight = true
		d.leakedHung++
		d.mu.Unlock()
		// Reap the abandoned execution whenever it finally returns.
		go func() {
			<-resCh
			d.mu.Lock()
			r.inFlight = false
			d.leakedHung--
			d.mu.Unlock()
		}()
		rep := Report{
			Checker: name,
			Status:  StatusStuck,
			Err:     fmt.Errorf("checker exceeded %v timeout", timeout),
			Site:    site,
			Payload: ctx.Snapshot(),
			Latency: timeout,
			Time:    d.clk.Now(),
		}
		d.record(r, rep)
		return rep
	}
}

// classify turns a checker return value into a Report.
func (d *Driver) classify(name string, ctx *Context, err error, latency time.Duration) Report {
	rep := Report{Checker: name, Latency: latency, Time: d.clk.Now()}
	if err == nil {
		rep.Status = StatusHealthy
		return rep
	}
	rep.Err = err
	rep.Payload = ctx.Snapshot()
	var oe *OpError
	if errors.As(err, &oe) {
		rep.Site = oe.Site
	}
	var pe *PanicError
	var se *SlowError
	switch {
	case errors.As(err, &pe):
		rep.Status = StatusCrashed
	case errors.As(err, &se):
		rep.Status = StatusSlow
		rep.Site = se.Site
	default:
		rep.Status = StatusError
	}
	return rep
}

// record updates the ledger, notifies listeners, and applies alarm policy.
func (d *Driver) record(r *registered, rep Report) {
	d.mu.Lock()
	prev, first := r.latest.Status, !r.hasLatest
	r.latest = rep
	r.hasLatest = true
	r.runs++
	var alarm *Alarm
	switch {
	case rep.Status == StatusContextPending || rep.Status == StatusSkipped:
		// neither healthy nor abnormal; leave the streak untouched
	case rep.Status.Abnormal():
		r.abnormal++
		r.consecutive++
		if r.consecutive >= r.threshold && !r.alarmed {
			r.alarmed = true
			alarm = &Alarm{Report: rep, Consecutive: r.consecutive}
		}
	default:
		r.consecutive = 0
		r.alarmed = false
	}
	if r.brk.enabled() {
		switch rep.Status {
		case StatusError, StatusStuck, StatusCrashed:
			if r.brkState == BreakerHalfOpen {
				// Failed probe: reopen with a deeper backoff.
				d.tripLocked(r, rep.Time)
			} else if r.brkState == BreakerClosed {
				r.brkFailures++
				if r.brkFailures >= r.brk.Threshold {
					d.tripLocked(r, rep.Time)
				}
			}
		case StatusContextPending, StatusSkipped:
			// No execution happened; no breaker signal either way.
		default:
			// Healthy or slow: the checker completed, so it is serviceable.
			if r.brkState == BreakerHalfOpen {
				r.brkState = BreakerClosed
				r.brkStreak = 0
			}
			r.brkFailures = 0
		}
	}
	d.history = append(d.history, rep)
	if len(d.history) > d.historyCap {
		d.history = d.history[len(d.history)-d.historyCap:]
	}
	listeners := d.listeners
	alarmFns := d.alarmFns
	validator := r.validator
	obs := d.obs
	gate := d.gate
	d.mu.Unlock()

	if obs != nil {
		obs.ObserveReport(rep, prev, first)
	}
	for _, fn := range listeners {
		fn(rep)
	}
	if alarm != nil {
		if validator != nil {
			v := validator(rep)
			alarm.Validated = &v
		}
		if gate != nil {
			damped, ok := gate.Admit(*alarm)
			if !ok {
				// A duplicate inside the suppression window: swallow it so
				// recovery and the journal see the storm as one damped alarm.
				d.mu.Lock()
				r.flaps++
				d.suppressed++
				d.mu.Unlock()
				return
			}
			*alarm = damped
		}
		if obs != nil {
			obs.ObserveAlarm(*alarm)
		}
		for _, fn := range alarmFns {
			fn(*alarm)
		}
	}
}

// tripLocked opens r's breaker: bump the trip counters, compute the capped
// exponential backoff for the current trip streak, add jitter from the
// driver's seeded RNG, and set the next probe-eligible time. Caller holds
// d.mu.
func (d *Driver) tripLocked(r *registered, now time.Time) {
	r.brkTrips++
	r.brkStreak++
	r.brkState = BreakerOpen
	r.brkFailures = 0
	backoff := r.brk.backoff(r.brkStreak)
	if r.brk.JitterFrac > 0 {
		backoff += time.Duration(d.rng.Float64() * r.brk.JitterFrac * float64(backoff))
	}
	r.brkNext = now.Add(backoff)
}

// LeakedHung returns how many hung checker goroutines are currently leaked
// (abandoned past their timeout and awaiting reaping).
func (d *Driver) LeakedHung() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.leakedHung
}

// BreakerSkips returns the total executions skipped because a checker's
// breaker was open.
func (d *Driver) BreakerSkips() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.breakerSkips
}

// BudgetSkips returns the total executions skipped because the hang budget
// was exhausted.
func (d *Driver) BudgetSkips() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.budgetSkips
}

// BreakerTrips returns the total breaker trips across all checkers.
func (d *Driver) BreakerTrips() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for _, r := range d.checkers {
		n += r.brkTrips
	}
	return n
}

// InjectAlarm raises a synthesized alarm — one that did not originate from a
// registered checker's report stream, e.g. a fired wdcep temporal rule — and
// routes it through the same alarm policy intrinsic alarms get: the damping
// gate may swallow it (counted in AlarmsSuppressed; returns false), and an
// admitted alarm is delivered to every OnAlarm listener, so recovery, mesh
// gossip tallies, and campaign scoring treat synthesized detections uniformly
// with checker alarms. The execution observer is NOT notified: the injector
// owns the journal representation of its detection (wdruntime journals fired
// rules as KindCEP events) and a KindAlarm double-entry would make one
// detection look like two.
func (d *Driver) InjectAlarm(rep Report, consecutive int) bool {
	alarm := Alarm{Report: rep, Consecutive: consecutive}
	d.mu.Lock()
	gate := d.gate
	alarmFns := d.alarmFns
	d.mu.Unlock()
	if gate != nil {
		damped, ok := gate.Admit(alarm)
		if !ok {
			d.mu.Lock()
			d.suppressed++
			d.mu.Unlock()
			return false
		}
		alarm = damped
	}
	for _, fn := range alarmFns {
		fn(alarm)
	}
	return true
}

// AlarmsSuppressed returns the total alarms swallowed by damping.
func (d *Driver) AlarmsSuppressed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.suppressed
}

// Latest returns the most recent report for the named checker.
func (d *Driver) Latest(name string) (Report, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.checkers[name]
	if !ok || !r.hasLatest {
		return Report{}, false
	}
	return r.latest, true
}

// Healthy reports whether no checker is currently in an abnormal state.
func (d *Driver) Healthy() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range d.checkers {
		if r.hasLatest && r.latest.Status.Abnormal() {
			return false
		}
	}
	return true
}

// History returns a copy of the retained reports, oldest first.
func (d *Driver) History() []Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Report, len(d.history))
	copy(out, d.history)
	return out
}

// Checkers returns the sorted names of all registered checkers.
func (d *Driver) Checkers() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := append([]string(nil), d.order...)
	sort.Strings(out)
	return out
}

// Stats summarizes one checker's execution counters.
type Stats struct {
	// Runs is the number of completed executions (including skips).
	Runs int64
	// Abnormal is the number of abnormal reports.
	Abnormal int64
	// Consecutive is the current abnormal streak.
	Consecutive int
}

// CheckerStats returns counters for the named checker.
func (d *Driver) CheckerStats(name string) (Stats, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.checkers[name]
	if !ok {
		return Stats{}, false
	}
	return Stats{Runs: r.runs, Abnormal: r.abnormal, Consecutive: r.consecutive}, true
}

// CheckerState is a point-in-time view of one registered checker: its
// policy, counters, latest report, and the synchronization state of its
// context. Observability layers build live snapshots from it.
type CheckerState struct {
	// Name is the checker name.
	Name string
	// Paused reports whether the checker is currently paused.
	Paused bool
	// Interval and Timeout are the checker's effective schedule policy.
	Interval time.Duration
	Timeout  time.Duration
	// Threshold is the consecutive-abnormal count that raises an alarm.
	Threshold int
	// Runs, Abnormal, and Consecutive mirror Stats.
	Runs        int64
	Abnormal    int64
	Consecutive int
	// Alarmed reports whether the current abnormal streak already alarmed.
	Alarmed bool
	// Latest is the most recent report; valid only when HasLatest is true.
	Latest    Report
	HasLatest bool
	// ContextReady/ContextVersion/ContextSync describe the checker's
	// context; ContextSync is zero when no hook ever fired.
	ContextReady   bool
	ContextVersion uint64
	ContextSync    time.Time
	// BreakerEnabled reports whether a circuit breaker is configured for the
	// checker; the remaining breaker fields are meaningful only when true.
	BreakerEnabled bool
	// Breaker is the current breaker state.
	Breaker BreakerState
	// BreakerTrips counts how many times the breaker has tripped open.
	BreakerTrips int64
	// BreakerNext is the next probe-eligible time while the breaker is open;
	// zero otherwise.
	BreakerNext time.Time
	// Flaps counts alarms suppressed by damping for this checker.
	Flaps int64
}

// State returns a snapshot of every registered checker in registration
// order.
func (d *Driver) State() []CheckerState {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]CheckerState, 0, len(d.order))
	for _, name := range d.order {
		r := d.checkers[name]
		cs := CheckerState{
			Name:        name,
			Paused:      r.paused,
			Interval:    r.interval,
			Timeout:     r.timeout,
			Threshold:   r.threshold,
			Runs:        r.runs,
			Abnormal:    r.abnormal,
			Consecutive: r.consecutive,
			Alarmed:     r.alarmed,
			Latest:      r.latest,
			HasLatest:   r.hasLatest,
			Flaps:       r.flaps,
		}
		if r.brk.enabled() {
			cs.BreakerEnabled = true
			cs.Breaker = r.brkState
			cs.BreakerTrips = r.brkTrips
			if r.brkState == BreakerOpen {
				cs.BreakerNext = r.brkNext
			}
		}
		// Context methods take only the context's own lock; contexts never
		// take the driver lock, so this nesting cannot invert.
		cs.ContextReady = r.ctx.Ready()
		cs.ContextVersion = r.ctx.Version()
		cs.ContextSync, _ = r.ctx.LastSync()
		out = append(out, cs)
	}
	return out
}
