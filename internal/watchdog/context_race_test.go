package watchdog

import (
	"bytes"
	"sync"
	"testing"
)

// TestContextHookCheckerRace pins the Context memory-visibility contract
// under the race detector. The contract (§3.2 one-way synchronization):
//
//   - Hooks on the main execution path may Put/PutAll/MarkReady concurrently
//     with checkers calling Get*/Ready/Version/Snapshot; every access is
//     serialized by the context's lock, so there are no torn reads.
//   - Values are replicated on Put, so a hook mutating its buffer after the
//     Put — and a checker mutating what it read — never alias main-program
//     memory.
//   - Version increases monotonically with writes; a checker that records
//     the version before and after reading can detect mid-check updates.
//
// The test hammers one context from several hook and checker goroutines; it
// passes only when `go test -race` observes no data race.
func TestContextHookCheckerRace(t *testing.T) {
	f := NewFactory()
	ctx := f.Context("race.target")

	const (
		hooks    = 4
		checkers = 4
		rounds   = 500
	)
	var wg sync.WaitGroup

	// Hook side: PutAll + MarkReady with a payload the hook keeps mutating
	// after handing it over.
	for h := 0; h < hooks; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := []byte("payload-000")
			for i := 0; i < rounds; i++ {
				ctx.PutAll(map[string]any{
					"record": buf,
					"seq":    int64(i),
				})
				ctx.MarkReady()
				// Mutating after PutAll must be invisible to checkers.
				buf[len(buf)-1] = byte('0' + i%10)
			}
		}()
	}

	// Checker side: reads interleaved with version bookkeeping.
	errs := make(chan string, checkers)
	for c := 0; c < checkers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for i := 0; i < rounds; i++ {
				before := ctx.Version()
				if before < lastVersion {
					errs <- "version went backwards"
					return
				}
				lastVersion = before
				rec := ctx.GetBytes("record")
				if len(rec) > 0 && !bytes.HasPrefix(rec, []byte("payload-")) {
					errs <- "torn or aliased read: " + string(rec)
					return
				}
				// The checker may scribble on what it read without
				// corrupting the context or the hook's buffer.
				if len(rec) > 0 {
					rec[0] = 'X'
				}
				_ = ctx.GetInt("seq")
				snap := ctx.Snapshot()
				if v, ok := snap["record"].([]byte); ok && len(v) > 0 && v[0] == 'X' {
					errs <- "snapshot aliased a checker-mutated read"
					return
				}
				_ = ctx.Ready()
			}
		}()
	}

	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	if got := ctx.GetBytes("record"); !bytes.HasPrefix(got, []byte("payload-")) {
		t.Fatalf("final record corrupted: %q", got)
	}
	if ctx.Version() == 0 {
		t.Fatal("no writes observed")
	}
}
