// Package wdio provides the watchdog's I/O isolation mechanisms (§5.1).
//
// Mimic checkers perform real disk I/O so that environment faults (a dying
// disk, a full volume, a hung filesystem) manifest inside the checker just
// as they would in the main program. But their writes must never touch main
// data. FS redirects a checker's file operations into a shadow directory on
// the same volume — same device, same failure domain, different namespace —
// which is the paper's "redirection mechanism for common I/O side effects".
package wdio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// ErrQuota is returned when a write would push the shadow directory past its
// byte quota.
var ErrQuota = errors.New("wdio: shadow quota exceeded")

// FS is a shadow filesystem rooted in a directory. All paths are interpreted
// relative to the root; escaping the root is an error. FS is safe for
// concurrent use.
type FS struct {
	root  string
	quota int64
	used  atomic.Int64
}

// NewFS creates (if needed) the shadow root directory and returns an FS with
// the given byte quota (0 means 64 MiB).
func NewFS(root string, quota int64) (*FS, error) {
	if quota <= 0 {
		quota = 64 << 20
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("wdio: create shadow root: %w", err)
	}
	return &FS{root: root, quota: quota}, nil
}

// Root returns the shadow root directory.
func (f *FS) Root() string { return f.root }

// Used returns the number of bytes written through this FS and not yet
// released by Cleanup.
func (f *FS) Used() int64 { return f.used.Load() }

// Path resolves rel inside the shadow root. It returns an error if rel
// escapes the root.
func (f *FS) Path(rel string) (string, error) {
	clean := filepath.Clean("/" + rel) // forces the path to be root-relative
	full := filepath.Join(f.root, clean)
	if full != f.root && !strings.HasPrefix(full, f.root+string(filepath.Separator)) {
		return "", fmt.Errorf("wdio: path %q escapes shadow root", rel)
	}
	return full, nil
}

// PreparePath resolves rel like Path and additionally creates its parent
// directories, for checkers that hand the path to their own writers.
func (f *FS) PreparePath(rel string) (string, error) {
	full, err := f.Path(rel)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return "", err
	}
	return full, nil
}

// WriteFile writes data to rel inside the shadow, creating parent
// directories, enforcing the quota, and syncing to disk so the I/O truly
// exercises the storage stack.
func (f *FS) WriteFile(rel string, data []byte) error {
	full, err := f.Path(rel)
	if err != nil {
		return err
	}
	if f.used.Add(int64(len(data))) > f.quota {
		f.used.Add(-int64(len(data)))
		return ErrQuota
	}
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		f.used.Add(-int64(len(data)))
		return err
	}
	file, err := os.OpenFile(full, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		f.used.Add(-int64(len(data)))
		return err
	}
	if _, err := file.Write(data); err != nil {
		file.Close()
		f.used.Add(-int64(len(data)))
		return err
	}
	if err := file.Sync(); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// ReadFile reads rel from the shadow.
func (f *FS) ReadFile(rel string) ([]byte, error) {
	full, err := f.Path(rel)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(full)
}

// Remove deletes rel from the shadow. Quota accounting is adjusted by the
// file's size when it can be determined.
func (f *FS) Remove(rel string) error {
	full, err := f.Path(rel)
	if err != nil {
		return err
	}
	if fi, err := os.Stat(full); err == nil && !fi.IsDir() {
		f.used.Add(-fi.Size())
	}
	return os.Remove(full)
}

// Cleanup removes everything under the shadow root and resets the quota
// accounting. The root itself is kept so the FS remains usable.
func (f *FS) Cleanup() error {
	entries, err := os.ReadDir(f.root)
	if err != nil {
		return err
	}
	var firstErr error
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(f.root, e.Name())); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	f.used.Store(0)
	return firstErr
}

// RoundTrip writes data to rel, reads it back, verifies the contents match,
// and removes the file. This is the canonical mimic disk check (the
// HDFS-13738 pattern: "create some files ... do real I/O in a similar way").
func (f *FS) RoundTrip(rel string, data []byte) error {
	if err := f.WriteFile(rel, data); err != nil {
		return fmt.Errorf("write: %w", err)
	}
	got, err := f.ReadFile(rel)
	if err != nil {
		return fmt.Errorf("read back: %w", err)
	}
	if len(got) != len(data) {
		return fmt.Errorf("read back %d bytes, wrote %d", len(got), len(data))
	}
	for i := range got {
		if got[i] != data[i] {
			return fmt.Errorf("read-back mismatch at byte %d", i)
		}
	}
	if err := f.Remove(rel); err != nil {
		return fmt.Errorf("remove: %w", err)
	}
	return nil
}
