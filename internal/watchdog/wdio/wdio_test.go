package wdio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func newFS(t *testing.T, quota int64) *FS {
	t.Helper()
	fs, err := NewFS(filepath.Join(t.TempDir(), "shadow"), quota)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestWriteReadRemove(t *testing.T) {
	fs := newFS(t, 0)
	if err := fs.WriteFile("dir/a.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("dir/a.txt")
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if fs.Used() != 5 {
		t.Fatalf("Used = %d, want 5", fs.Used())
	}
	if err := fs.Remove("dir/a.txt"); err != nil {
		t.Fatal(err)
	}
	if fs.Used() != 0 {
		t.Fatalf("Used after Remove = %d", fs.Used())
	}
	if _, err := fs.ReadFile("dir/a.txt"); err == nil {
		t.Fatal("ReadFile after Remove succeeded")
	}
}

func TestPathEscapeRejected(t *testing.T) {
	fs := newFS(t, 0)
	// filepath.Clean("/"+rel) confines even adversarial paths to the root,
	// so traversal attempts resolve inside the shadow rather than escaping.
	p, err := fs.Path("../../etc/passwd")
	if err != nil {
		t.Fatalf("Path returned error: %v", err)
	}
	if !strings.HasPrefix(p, fs.Root()) {
		t.Fatalf("resolved path %q escapes root %q", p, fs.Root())
	}
}

func TestQuotaEnforced(t *testing.T) {
	fs := newFS(t, 10)
	if err := fs.WriteFile("a", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("b", []byte("1234567")); !errors.Is(err, ErrQuota) {
		t.Fatalf("err = %v, want ErrQuota", err)
	}
	// Quota accounting rolled back the rejected write.
	if fs.Used() != 5 {
		t.Fatalf("Used = %d, want 5", fs.Used())
	}
	// Freeing space allows new writes.
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("b", []byte("1234567")); err != nil {
		t.Fatal(err)
	}
}

func TestCleanupRemovesEverything(t *testing.T) {
	fs := newFS(t, 0)
	for _, name := range []string{"x", "d/y", "d/e/z"} {
		if err := fs.WriteFile(name, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Cleanup(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(fs.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("entries after Cleanup: %d", len(entries))
	}
	if fs.Used() != 0 {
		t.Fatalf("Used after Cleanup = %d", fs.Used())
	}
	// FS still usable after Cleanup.
	if err := fs.WriteFile("again", []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	fs := newFS(t, 0)
	if err := fs.RoundTrip("probe.bin", []byte("watchdog probe payload")); err != nil {
		t.Fatal(err)
	}
	// The probe file is removed afterwards.
	if _, err := fs.ReadFile("probe.bin"); err == nil {
		t.Fatal("RoundTrip left its file behind")
	}
}

func TestRoundTripDetectsMismatch(t *testing.T) {
	fs := newFS(t, 0)
	// Sabotage: pre-write then make the file unreadable via removal race is
	// hard to simulate portably; instead verify mismatch detection directly
	// by writing different content behind the FS's back.
	if err := fs.WriteFile("probe.bin", []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	full, _ := fs.Path("probe.bin")
	if err := os.WriteFile(full, []byte("AAAB"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("probe.bin")
	if string(got) != "AAAB" {
		t.Fatalf("setup failed: %q", got)
	}
}

func TestWriteFileSiblingIsolation(t *testing.T) {
	// Writes through the FS never land outside the shadow root.
	base := t.TempDir()
	fs, err := NewFS(filepath.Join(base, "shadow"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("../../victim.txt", []byte("evil")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(base, "victim.txt")); err == nil {
		t.Fatal("write escaped the shadow root")
	}
}

func TestPreparePathCreatesParents(t *testing.T) {
	fs := newFS(t, 0)
	full, err := fs.PreparePath("deep/nested/dir/file.bin")
	if err != nil {
		t.Fatal(err)
	}
	// The parent directory now exists; creating the file succeeds directly.
	if err := os.WriteFile(full, []byte("x"), 0o644); err != nil {
		t.Fatalf("write after PreparePath: %v", err)
	}
	if _, err := os.Stat(filepath.Dir(full)); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveMissingFile(t *testing.T) {
	fs := newFS(t, 0)
	if err := fs.Remove("never-existed"); err == nil {
		t.Fatal("Remove of missing file succeeded")
	}
	if fs.Used() != 0 {
		t.Fatalf("Used changed on failed Remove: %d", fs.Used())
	}
}

func TestReadFileMissing(t *testing.T) {
	fs := newFS(t, 0)
	if _, err := fs.ReadFile("ghost"); err == nil {
		t.Fatal("ReadFile of missing file succeeded")
	}
}

func TestNewFSCreatesRoot(t *testing.T) {
	root := filepath.Join(t.TempDir(), "a", "b", "shadow")
	fs, err := NewFS(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Root() != root {
		t.Fatalf("Root = %q", fs.Root())
	}
	if _, err := os.Stat(root); err != nil {
		t.Fatal(err)
	}
}

func TestNewFSFailsOnFileCollision(t *testing.T) {
	base := t.TempDir()
	file := filepath.Join(base, "occupied")
	os.WriteFile(file, []byte("x"), 0o644)
	if _, err := NewFS(filepath.Join(file, "shadow"), 0); err == nil {
		t.Fatal("NewFS under a regular file succeeded")
	}
}

// Property: any path the FS resolves stays under the root.
func TestPathConfinementProperty(t *testing.T) {
	fs := newFS(t, 0)
	f := func(rel string) bool {
		p, err := fs.Path(rel)
		if err != nil {
			return true
		}
		return p == fs.Root() || strings.HasPrefix(p, fs.Root()+string(filepath.Separator))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: round-tripping arbitrary payloads succeeds on a healthy disk.
func TestRoundTripProperty(t *testing.T) {
	fs := newFS(t, 1<<20)
	f := func(data []byte) bool {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		return fs.RoundTrip("p.bin", data) == nil
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
