package watchdog

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gowatchdog/internal/clock"
)

func healthyChecker(name string) Checker {
	return NewChecker(name, func(*Context) error { return nil })
}

func TestCheckNowHealthy(t *testing.T) {
	d := New()
	d.Register(healthyChecker("ok"))
	d.Factory().Context("ok").MarkReady()
	rep, err := d.CheckNow("ok")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != StatusHealthy {
		t.Fatalf("status = %v", rep.Status)
	}
	if !d.Healthy() {
		t.Fatal("driver not healthy after healthy report")
	}
}

func TestCheckNowUnknownChecker(t *testing.T) {
	d := New()
	if _, err := d.CheckNow("ghost"); err == nil {
		t.Fatal("CheckNow on unknown checker returned nil error")
	}
}

func TestContextGatingSkipsChecker(t *testing.T) {
	d := New()
	ran := false
	d.Register(NewChecker("gated", func(*Context) error { ran = true; return nil }))
	rep, _ := d.CheckNow("gated")
	if rep.Status != StatusContextPending {
		t.Fatalf("status = %v, want context-pending", rep.Status)
	}
	if ran {
		t.Fatal("checker ran with unready context")
	}
	if !d.Healthy() {
		t.Fatal("context-pending should not mark driver unhealthy")
	}
	// Once the hook fires, the checker runs.
	d.Factory().Context("gated").Put("state", "ready")
	rep, _ = d.CheckNow("gated")
	if rep.Status != StatusHealthy || !ran {
		t.Fatalf("status = %v, ran = %v", rep.Status, ran)
	}
}

func TestErrorClassificationWithSite(t *testing.T) {
	d := New()
	site := Site{Function: "kvs.flush", Op: "wal.Append", File: "f.go", Line: 10}
	d.Register(NewChecker("err", func(ctx *Context) error {
		return Op(ctx, site, func() error { return errors.New("disk fault") })
	}))
	d.Factory().Context("err").MarkReady()
	rep, _ := d.CheckNow("err")
	if rep.Status != StatusError {
		t.Fatalf("status = %v", rep.Status)
	}
	if rep.Site != site {
		t.Fatalf("site = %v, want %v", rep.Site, site)
	}
	if rep.Err == nil {
		t.Fatal("error report without error")
	}
	if d.Healthy() {
		t.Fatal("driver healthy after error report")
	}
}

func TestPanicInsideOpClassifiedAsCrash(t *testing.T) {
	d := New()
	site := Site{Function: "f", Op: "boom"}
	d.Register(NewChecker("crash", func(ctx *Context) error {
		return Op(ctx, site, func() error { panic("kaput") })
	}))
	d.Factory().Context("crash").MarkReady()
	rep, _ := d.CheckNow("crash")
	if rep.Status != StatusCrashed {
		t.Fatalf("status = %v, want crashed", rep.Status)
	}
	if rep.Site != site {
		t.Fatalf("site = %v", rep.Site)
	}
}

func TestPanicOutsideOpIsConfined(t *testing.T) {
	d := New()
	d.Register(NewChecker("wild", func(*Context) error { panic("untamed") }))
	d.Factory().Context("wild").MarkReady()
	rep, _ := d.CheckNow("wild")
	if rep.Status != StatusCrashed {
		t.Fatalf("status = %v, want crashed", rep.Status)
	}
}

func TestSlowClassification(t *testing.T) {
	v := clock.NewVirtualAt(time.Unix(0, 0))
	d := New(WithClock(v))
	site := Site{Function: "f", Op: "slowop"}
	d.Register(NewChecker("slow", func(ctx *Context) error {
		fakeNow := time.Unix(0, 0)
		step := func() time.Time {
			fakeNow = fakeNow.Add(500 * time.Millisecond)
			return fakeNow
		}
		return OpTimed(ctx, site, 100*time.Millisecond, step, func() error { return nil })
	}))
	d.Factory().Context("slow").MarkReady()
	rep, _ := d.CheckNow("slow")
	if rep.Status != StatusSlow {
		t.Fatalf("status = %v, want slow", rep.Status)
	}
	if rep.Site != site {
		t.Fatalf("site = %v", rep.Site)
	}
}

func TestStuckCheckerDetectedWithPinpoint(t *testing.T) {
	v := clock.NewVirtual()
	d := New(WithClock(v), WithTimeout(6*time.Second))
	site := Site{Function: "coord.sync", Op: "net.Write", File: "sync.go", Line: 7}
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	d.Register(NewChecker("hang", func(ctx *Context) error {
		return Op(ctx, site, func() error { entered <- struct{}{}; <-release; return nil })
	}))
	d.Factory().Context("hang").MarkReady()

	type result struct{ rep Report }
	done := make(chan result, 1)
	go func() {
		rep, _ := d.CheckNow("hang")
		done <- result{rep}
	}()
	// Wait until the checker is inside the vulnerable op, then fire the
	// timeout timer (the only clock waiter; the checker blocks on a channel).
	<-entered
	v.BlockUntil(1)
	v.Advance(6 * time.Second)
	res := <-done
	if res.rep.Status != StatusStuck {
		t.Fatalf("status = %v, want stuck", res.rep.Status)
	}
	if res.rep.Site != site {
		t.Fatalf("pinpointed site = %v, want %v", res.rep.Site, site)
	}

	// While the execution is still blocked, another tick re-reports stuck
	// without starting a second execution.
	rep2, _ := d.CheckNow("hang")
	if rep2.Status != StatusStuck {
		t.Fatalf("second status = %v, want stuck", rep2.Status)
	}

	// Releasing the hang lets the reaper clear inFlight; a later run is
	// healthy again.
	close(release)
	deadline := time.Now().Add(time.Second)
	for {
		rep3, _ := d.CheckNow("hang")
		if rep3.Status == StatusHealthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("checker never recovered: %v", rep3)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAlarmThresholdAndReset(t *testing.T) {
	d := New()
	fail := true
	d.Register(NewChecker("flaky", func(*Context) error {
		if fail {
			return errors.New("bad")
		}
		return nil
	}), Threshold(3))
	d.Factory().Context("flaky").MarkReady()

	var mu sync.Mutex
	var alarms []Alarm
	d.OnAlarm(func(a Alarm) { mu.Lock(); alarms = append(alarms, a); mu.Unlock() })

	for i := 0; i < 2; i++ {
		d.CheckNow("flaky")
	}
	mu.Lock()
	n := len(alarms)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("alarm before threshold: %d", n)
	}
	d.CheckNow("flaky") // third consecutive abnormal crosses threshold
	mu.Lock()
	n = len(alarms)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("alarms = %d, want 1", n)
	}
	// Further abnormal reports do not re-alarm until a healthy reset.
	d.CheckNow("flaky")
	mu.Lock()
	n = len(alarms)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("alarm storm: %d", n)
	}
	// Healthy report resets the streak; threshold must be crossed again.
	fail = false
	d.CheckNow("flaky")
	fail = true
	d.CheckNow("flaky")
	d.CheckNow("flaky")
	mu.Lock()
	n = len(alarms)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("alarm fired before re-crossing threshold: %d", n)
	}
	d.CheckNow("flaky")
	mu.Lock()
	n = len(alarms)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("alarms = %d, want 2", n)
	}
}

func TestAlarmValidation(t *testing.T) {
	d := New()
	d.Register(NewChecker("mimic", func(*Context) error { return errors.New("x") }),
		ValidateWith(func(Report) bool { return true }))
	d.Factory().Context("mimic").MarkReady()
	var got *Alarm
	d.OnAlarm(func(a Alarm) { got = &a })
	d.CheckNow("mimic")
	if got == nil {
		t.Fatal("no alarm")
	}
	if got.Validated == nil || !*got.Validated {
		t.Fatalf("Validated = %v, want true", got.Validated)
	}
}

func TestOnReportSeesEveryExecution(t *testing.T) {
	d := New()
	d.Register(healthyChecker("a"))
	d.Register(NewChecker("b", func(*Context) error { return errors.New("x") }))
	d.Factory().Context("a").MarkReady()
	d.Factory().Context("b").MarkReady()
	var mu sync.Mutex
	var seen []string
	d.OnReport(func(r Report) {
		mu.Lock()
		seen = append(seen, r.Checker+":"+r.Status.String())
		mu.Unlock()
	})
	d.CheckAll()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] != "a:healthy" || seen[1] != "b:error" {
		t.Fatalf("seen = %v", seen)
	}
}

func TestScheduledExecutionWithVirtualClock(t *testing.T) {
	v := clock.NewVirtual()
	d := New(WithClock(v), WithInterval(time.Second), WithTimeout(10*time.Second))
	var mu sync.Mutex
	runs := 0
	d.Register(NewChecker("tick", func(*Context) error {
		mu.Lock()
		runs++
		mu.Unlock()
		return nil
	}))
	d.Factory().Context("tick").MarkReady()
	reports := make(chan Report, 16)
	d.OnReport(func(r Report) { reports <- r })
	d.Start()
	defer d.Stop()
	v.BlockUntil(1) // the scheduling ticker
	for i := 0; i < 3; i++ {
		v.Advance(time.Second)
		select {
		case <-reports:
		case <-time.After(2 * time.Second):
			t.Fatalf("no report after tick %d", i)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if runs != 3 {
		t.Fatalf("runs = %d, want 3", runs)
	}
}

func TestStopHaltsScheduling(t *testing.T) {
	v := clock.NewVirtual()
	d := New(WithClock(v), WithInterval(time.Second))
	d.Register(healthyChecker("x"))
	d.Factory().Context("x").MarkReady()
	d.Start()
	v.BlockUntil(1)
	d.Stop()
	// After Stop, ticks do nothing.
	v.Advance(10 * time.Second)
	if st, _ := d.CheckerStats("x"); st.Runs > 10 {
		t.Fatalf("runs after stop = %d", st.Runs)
	}
	// Stop twice is fine; Start again works.
	d.Stop()
}

func TestRegisterDuplicatePanics(t *testing.T) {
	d := New()
	d.Register(healthyChecker("dup"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	d.Register(healthyChecker("dup"))
}

func TestRegisterAfterStartPanics(t *testing.T) {
	d := New()
	d.Register(healthyChecker("x"))
	d.Factory().Context("x").MarkReady()
	d.Start()
	defer d.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("Register after Start did not panic")
		}
	}()
	d.Register(healthyChecker("y"))
}

func TestPauseResume(t *testing.T) {
	d := New()
	d.Register(NewChecker("maint", func(*Context) error { return errors.New("x") }))
	d.Factory().Context("maint").MarkReady()
	var alarms int
	d.OnAlarm(func(Alarm) { alarms++ })

	// Build up an abnormal streak, then pause mid-incident.
	d.CheckNow("maint")
	if alarms != 1 {
		t.Fatalf("alarms = %d", alarms)
	}
	if !d.Pause("maint") {
		t.Fatal("Pause failed")
	}
	if !d.Paused("maint") {
		t.Fatal("Paused = false")
	}
	// Paused executions are skips: no checker run, no alarm.
	rep, _ := d.CheckNow("maint")
	if rep.Status != StatusContextPending {
		t.Fatalf("paused run = %v", rep.Status)
	}
	if alarms != 1 {
		t.Fatalf("alarm during pause: %d", alarms)
	}
	// Resume: the streak restarts from zero, so the next abnormal report
	// re-alarms (the latch was cleared on Pause).
	if !d.Resume("maint") {
		t.Fatal("Resume failed")
	}
	d.CheckNow("maint")
	if alarms != 2 {
		t.Fatalf("alarms after resume = %d", alarms)
	}
	if d.Pause("ghost") || d.Resume("ghost") || d.Paused("ghost") {
		t.Fatal("unknown checker pause/resume succeeded")
	}
}

func TestHistoryBounded(t *testing.T) {
	d := New(WithHistory(5))
	d.Register(healthyChecker("h"))
	d.Factory().Context("h").MarkReady()
	for i := 0; i < 12; i++ {
		d.CheckNow("h")
	}
	if got := len(d.History()); got != 5 {
		t.Fatalf("history length = %d, want 5", got)
	}
}

func TestCheckerStatsAndLatest(t *testing.T) {
	d := New()
	d.Register(NewChecker("s", func(*Context) error { return errors.New("x") }))
	d.Factory().Context("s").MarkReady()
	if _, ok := d.Latest("s"); ok {
		t.Fatal("Latest before any run")
	}
	d.CheckNow("s")
	d.CheckNow("s")
	st, ok := d.CheckerStats("s")
	if !ok || st.Runs != 2 || st.Abnormal != 2 || st.Consecutive != 2 {
		t.Fatalf("stats = %+v, ok=%v", st, ok)
	}
	rep, ok := d.Latest("s")
	if !ok || rep.Status != StatusError {
		t.Fatalf("latest = %v, %v", rep, ok)
	}
	if _, ok := d.CheckerStats("ghost"); ok {
		t.Fatal("stats for unknown checker")
	}
}

func TestCheckersSorted(t *testing.T) {
	d := New()
	d.Register(healthyChecker("zeta"))
	d.Register(healthyChecker("alpha"))
	got := d.Checkers()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Checkers = %v", got)
	}
}

func TestWithContextOption(t *testing.T) {
	d := New()
	ctx := NewContext()
	ctx.MarkReady()
	d.Register(healthyChecker("custom"), WithContext(ctx))
	rep, _ := d.CheckNow("custom")
	if rep.Status != StatusHealthy {
		t.Fatalf("status = %v", rep.Status)
	}
}

func TestStatusStringAndAbnormal(t *testing.T) {
	cases := map[Status]struct {
		s  string
		ab bool
	}{
		StatusHealthy:        {"healthy", false},
		StatusContextPending: {"context-pending", false},
		StatusError:          {"error", true},
		StatusStuck:          {"stuck", true},
		StatusCrashed:        {"crashed", true},
		StatusSlow:           {"slow", true},
		Status(42):           {"Status(42)", false},
	}
	for st, want := range cases {
		if st.String() != want.s {
			t.Errorf("String(%d) = %q", int(st), st.String())
		}
		if st.Abnormal() != want.ab {
			t.Errorf("Abnormal(%v) = %v", st, st.Abnormal())
		}
	}
}

func TestReportString(t *testing.T) {
	r := Report{Checker: "c", Status: StatusError, Err: errors.New("bad"),
		Site: Site{Op: "write"}}
	want := "[c] error: bad at write"
	if r.String() != want {
		t.Fatalf("String = %q, want %q", r.String(), want)
	}
}

func TestOpErrorUnwrap(t *testing.T) {
	inner := errors.New("inner")
	oe := &OpError{Site: Site{Op: "w"}, Err: inner}
	if !errors.Is(oe, inner) {
		t.Fatal("OpError does not unwrap")
	}
}
